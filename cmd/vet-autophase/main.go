// Command vet-autophase is the repo's contract vettool: a go/analysis-style
// suite (internal/contractvet) that statically enforces the engine's
// determinism, changed-report, panic-containment and lock-discipline
// contracts. It speaks the `go vet -vettool` protocol:
//
//	go build -o vet-autophase ./cmd/vet-autophase
//	go vet -vettool=$PWD/vet-autophase ./...
//
// Individual analyzers can be toggled, e.g.
//
//	go vet -vettool=$PWD/vet-autophase -nondeterminism=false ./...
//
// See the contractvet package documentation for the contract each analyzer
// encodes and the escape-hatch annotations.
package main

import "autophase/internal/contractvet"

func main() { contractvet.Main() }
