// Command autophase optimizes a program's compiler phase ordering for HLS.
//
// Usage:
//
//	autophase -program matmul -algo ppo            # optimize one benchmark
//	autophase -program rand:42 -algo greedy        # random program by seed
//	autophase -program file:prog.ir -algo opentuner
//	autophase -program sha -features               # dump the Table 2 features
//	autophase -program aes -passes "mem2reg,loop-rotate,loop-unroll"
//	autophase -program gsm -rtl                    # emit the scheduled RTL
//	autophase -train 10 -agent agent.json          # train a generalizer
//	autophase -agent agent.json -program sha       # zero-shot inference
//	autophase -list                                # available programs/algos
//	autophase lint -program file:prog.ir           # static analysis + diagnostics
//	autophase -program sha -sanitize               # optimize with the pass sanitizer
//	autophase -program aes -algo genetic -workers 8  # parallel candidate scoring
//	autophase collect -program gsm -episodes 32    # exploration tuples + win rates
//	autophase -program sha -algo random -faults "pass-panic:0.02" -crashdir crashes
//	autophase replay crashes/crash-sha-panic-1a2b3c4d.json  # re-run a crash bundle
//
// Algorithms: ppo (histogram obs), ppo-multi (§5.2), a3c, es, greedy,
// genetic, opentuner, random, o3, o0. The population-style algorithms
// (es, a3c, genetic, opentuner, random) and the collect subcommand score
// candidates through a -workers wide evaluation pool; results are
// identical at any worker count (OpenTuner batches its bandit rounds, so
// its trajectory depends on -workers, deterministically).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"math/rand"

	"autophase/internal/analysis"
	"autophase/internal/artifact"
	"autophase/internal/cliutil"
	"autophase/internal/core"
	"autophase/internal/faults"
	"autophase/internal/features"
	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/profiling"
	"autophase/internal/progen"
	"autophase/internal/rl"
	"autophase/internal/search"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(lintMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "collect" {
		runCollect(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	prog := flag.String("program", "matmul", "benchmark name, rand:<seed>, or file:<path.ir>")
	algo := flag.String("algo", "ppo", "ppo, ppo-multi, a3c, es, greedy, genetic, opentuner, random, o3, o0")
	budget := flag.Int("budget", 800, "sample/step budget for the chosen algorithm")
	seqLen := flag.Int("len", 45, "maximum pass-sequence length")
	dumpFeatures := flag.Bool("features", false, "print the 56 Table 2 features and exit")
	dumpGraph := flag.Bool("graph-features", false, "with -features, also print the structural graph feature block")
	passList := flag.String("passes", "", "apply this comma-separated pass list instead of searching")
	rtl := flag.Bool("rtl", false, "emit scheduled RTL for the optimized design")
	binding := flag.Bool("binding", false, "print the functional-unit binding report")
	dot := flag.Bool("dot", false, "print the optimized main function's CFG in GraphViz dot syntax")
	objective := flag.String("objective", "cycles", "optimize for: cycles, area, areadelay")
	emitIR := flag.String("emit-ir", "", "write the optimized IR to this file")
	trainN := flag.Int("train", 0, "train a generalization agent on N random programs and save it to -agent")
	agentPath := flag.String("agent", "", "path of a saved agent (write with -train, read for inference)")
	verbose := flag.Bool("verbose", false, "print per-pass statistics for the final sequence")
	sanitize := flag.Bool("sanitize", false, "run the pass sanitizer during optimization; on miscompilation print the minimized repro and exit 1")
	list := flag.Bool("list", false, "list available programs, algorithms and passes")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel candidate evaluations (results identical at any count)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultSpec := flag.String("faults", "", `fault-injection spec, e.g. "pass-panic:0.01,interp-stall:0.005,profile-err:0.01"`)
	faultSeed := flag.Int64("faults-seed", 1, "deterministic seed for the -faults injector")
	crashDirFlag := flag.String("crashdir", "", "write a crash-repro bundle here for every contained panic/deadline fault")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline per profile, e.g. 2s (0 = unbounded)")
	engineFlag := flag.String("engine", "auto", "profiler backend: auto (static → vm → interp cascade), static, vm, or interp")
	cacheDir := flag.String("cache-dir", "", "persistent artifact cache directory (profiles, features, lowered bytecode survive restarts)")
	cacheBudget := flag.Int64("cache-budget", 0, "artifact cache size budget in bytes (0 = 512 MiB default); whole segments evict oldest-first")
	flag.Parse()

	// Reject meaningless knob values with a usage error (exit 2) before any
	// work starts. Historically -workers silently clamped to 1 and a
	// negative -deadline was silently ignored; both were almost certainly
	// typos the user wanted to hear about.
	if err := cliutil.FirstErr(
		cliutil.MinInt("budget", *budget, 1),
		cliutil.MinInt("len", *seqLen, 1),
		cliutil.MinInt("workers", *workers, 1),
		cliutil.MinInt("train", *trainN, 0),
		cliutil.NonNegDuration("deadline", *deadline),
		cliutil.MinInt64("cache-budget", *cacheBudget, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, "autophase:", err)
		os.Exit(2)
	}

	engine, err := hls.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}

	closeArtifacts, err := openArtifacts(*cacheDir, *cacheBudget)
	if err != nil {
		fatal(err)
	}
	defer closeArtifacts()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		fmt.Println("programs:", strings.Join(progen.BenchmarkNames, ", "), "+ rand:<seed>")
		fmt.Println("algorithms: ppo, ppo-multi, a3c, es, greedy, genetic, opentuner, random, o3, o0")
		fmt.Println("passes (Table 1):")
		for i, n := range passes.Table1Names {
			fmt.Printf("  %2d %s\n", i, n)
		}
		return
	}

	if *trainN > 0 {
		if *agentPath == "" {
			fatal(fmt.Errorf("-train requires -agent <path>"))
		}
		trainGeneralizer(*trainN, *budget, *agentPath)
		return
	}

	m, err := loadProgram(*prog)
	if err != nil {
		fatal(err)
	}
	if *dumpFeatures {
		f := features.Extract(m)
		for i, v := range f {
			fmt.Printf("%2d %-55s %d\n", i, features.Names[i], v)
		}
		if *dumpGraph {
			g := features.ExtractGraph(m)
			for i, v := range g {
				fmt.Printf("g%2d %-54s %d\n", i, features.GraphNames[i], v)
			}
		}
		return
	}

	p, err := core.NewProgram(*prog, m)
	if err != nil {
		fatal(err)
	}
	if *sanitize {
		p.EnableSanitizer()
	}
	if engine != hls.EngineAuto {
		p.SetEngine(engine)
	}
	if *crashDirFlag != "" {
		core.SetCrashDir(*crashDirFlag)
	}
	if *deadline > 0 {
		lim := interp.DefaultLimits
		lim.Deadline = *deadline
		p.SetLimits(lim)
	}
	// Injection starts after NewProgram so the O0/O3 baselines are organic.
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		faults.Enable(spec)
		defer faults.Disable()
	}
	fmt.Printf("program %s: O0=%d cycles, O3=%d cycles\n", *prog, p.O0Cycles, p.O3Cycles)

	var seq []int
	switch {
	case *agentPath != "":
		seq = inferWithAgent(p, *agentPath)
		c, _, ok := p.Compile(seq)
		if !ok {
			failCompile(p)
		}
		report(p, seq, c)
	case *passList != "":
		seq, err = parsePasses(*passList)
		if err != nil {
			fatal(err)
		}
		c, _, ok := p.Compile(seq)
		if !ok {
			failCompile(p)
		}
		report(p, seq, c)
	case *algo == "o0":
		report(p, nil, p.O0Cycles)
	case *algo == "o3":
		seq = passes.O3Sequence
		report(p, seq, p.O3Cycles)
	default:
		ev := core.NewEvaluator(p, *workers)
		seq = optimize(p, ev, *algo, *budget, *seqLen, *objective, engine)
		best, bestSeq := p.BestCycles()
		if bestSeq != nil {
			seq = bestSeq
		}
		report(p, seq, best)
		fmt.Println("evaluator:", ev.Stats())
	}

	if rep := p.SanitizerReport(); rep != nil {
		fmt.Print(rep.String())
		fatal(fmt.Errorf("sanitizer detected a miscompiling pass sequence"))
	}

	if *verbose {
		pm := passes.NewManager()
		pm.VerifyEach = true
		opt := p.Module()
		pm.Apply(opt, seq)
		fmt.Print(pm.Report())
		if after, err := pm.FirstVerifyError(); err != nil {
			fmt.Printf("verifier failed after %s: %v\n", after, err)
		}
	}
	if *emitIR != "" {
		opt := p.Module()
		passes.Apply(opt, seq)
		if err := os.WriteFile(*emitIR, []byte(opt.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote optimized IR to", *emitIR)
	}
	if *rtl || *binding || *dot {
		opt := p.Module()
		passes.Apply(opt, seq)
		if *dot {
			if mf := opt.Func("main"); mf != nil {
				fmt.Print(ir.DotCFG(mf))
			}
		}
		sched := hls.Schedule(opt, hls.DefaultConfig)
		if *binding {
			fmt.Print(sched.Bind(opt).Report())
		}
		if *rtl {
			fmt.Println(sched.EmitRTL(opt))
		}
	}
}

func loadProgram(name string) (*ir.Module, error) { return loadModule(name, true) }

// loadModule resolves a program spec; verify=false skips the IR verifier so
// the lint subcommand can analyze (and diagnose) broken modules instead of
// dying on the first violation.
func loadModule(name string, verify bool) (*ir.Module, error) {
	if seedStr, ok := strings.CutPrefix(name, "rand:"); ok {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", seedStr)
		}
		m, _ := progen.GenerateFiltered(seed, progen.DefaultGen)
		return m, nil
	}
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m, err := ir.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if verify {
			if err := m.Verify(); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
		}
		return m, nil
	}
	m := progen.Benchmark(name)
	if m == nil {
		return nil, fmt.Errorf("unknown program %q (try -list)", name)
	}
	return m, nil
}

// lintDiag is the machine-readable rendering of one diagnostic for
// `autophase lint -json`: one JSON object per line, fields empty when the
// finding is module- or function-level.
type lintDiag struct {
	Severity string `json:"severity"`
	Check    string `json:"check"`
	Func     string `json:"func,omitempty"`
	Block    string `json:"block,omitempty"`
	Instr    string `json:"instr,omitempty"`
	Msg      string `json:"msg"`
}

// lintMain is the `autophase lint` subcommand: load a program, run the
// collect-all verifier, the dataflow analyses and the interprocedural
// checks, and print every diagnostic. It returns the process exit status:
// 1 when any Error-severity diagnostic fired, 0 otherwise (warnings alone
// never fail the lint), and 2 for usage or load failures — so callers like
// scripts/lint-baseline.sh can tell "findings" from "lint never ran".
func lintMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	prog := fs.String("program", "matmul", "benchmark name, rand:<seed>, or file:<path.ir>")
	passList := fs.String("passes", "", "apply this comma-separated pass list before analyzing")
	stats := fs.Bool("stats", false, "also print per-function analysis statistics")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic line (exit 1 on errors, as in text mode)")
	engineFlag := fs.String("engine", "auto", "profiler backend name accepted for CLI uniformity: auto, static, vm, or interp (lint never profiles)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := hls.ParseEngine(*engineFlag); err != nil {
		fmt.Fprintln(stderr, "autophase:", err)
		return 2
	}

	m, err := loadModule(*prog, false)
	if err != nil {
		fmt.Fprintln(stderr, "autophase:", err)
		return 2
	}
	if *passList != "" {
		seq, err := parsePasses(*passList)
		if err != nil {
			fmt.Fprintln(stderr, "autophase:", err)
			return 2
		}
		passes.Apply(m, seq)
	}
	diags := analysis.VerifyAll(m)
	diags = append(diags, analysis.VerifyAttrs(m)...)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			enc.Encode(lintDiag{
				Severity: d.Sev.String(), Check: d.Check,
				Func: d.Func, Block: d.Block, Instr: d.Instr, Msg: d.Msg,
			})
		}
		if diags.HasErrors() {
			return 1
		}
		return 0
	}
	if len(diags) > 0 {
		fmt.Fprint(stdout, diags.String())
	}
	if *stats {
		for _, f := range m.Funcs {
			lv := analysis.ComputeLiveness(f)
			ae := analysis.ComputeAvailExpr(f)
			maxLive := 0
			for _, s := range lv.LiveOut {
				if len(s) > maxLive {
					maxLive = len(s)
				}
			}
			fmt.Fprintf(stdout, "@%s: %d blocks, %d instrs, max live-out %d, %d dead defs, %d redundant exprs\n",
				f.Name, len(f.Blocks), f.NumInstrs(), maxLive, len(lv.DeadDefs()), len(ae.Redundant()))
			sc := analysis.ComputeSCEV(f)
			for _, l := range sc.Loops() {
				tr := sc.TripsOf(l)
				if tr.Kind == analysis.TripFinite {
					fmt.Fprintf(stdout, "  loop %s (depth %d): %d trips, iv {%d,+,%d} i%d\n",
						l.Header.Name, l.Depth, tr.BodyTrips, tr.IV.Start, tr.IV.Step, tr.IV.Bits)
				} else {
					fmt.Fprintf(stdout, "  loop %s (depth %d): %s trip count\n", l.Header.Name, l.Depth, tr.Kind)
				}
			}
		}
	}
	if diags.HasErrors() {
		fmt.Fprintf(stdout, "lint: %d errors, %d warnings\n", len(diags.Errors()), len(diags.Warnings()))
		return 1
	}
	fmt.Fprintf(stdout, "lint: ok (%d warnings)\n", len(diags.Warnings()))
	return 0
}

// runCollect is the `autophase collect` subcommand: run high-exploration
// random episodes through the parallel tuple collector (§4's data-gathering
// phase) and print the per-pass win rates plus the evaluation-engine stats.
func runCollect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	prog := fs.String("program", "matmul", "benchmark name, rand:<seed>, or file:<path.ir>")
	episodes := fs.Int("episodes", 16, "random-exploration episodes")
	epLen := fs.Int("len", 14, "passes per episode")
	seed := fs.Int64("seed", 1, "exploration RNG seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel episode workers (tuples identical at any count)")
	cacheDir := fs.String("cache-dir", "", "persistent artifact cache directory")
	cacheBudget := fs.Int64("cache-budget", 0, "artifact cache size budget in bytes (0 = 512 MiB default)")
	fs.Parse(args)

	if err := cliutil.FirstErr(
		cliutil.MinInt("episodes", *episodes, 1),
		cliutil.MinInt("len", *epLen, 1),
		cliutil.MinInt("workers", *workers, 1),
		cliutil.MinInt64("cache-budget", *cacheBudget, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, "autophase collect:", err)
		os.Exit(2)
	}

	closeArtifacts, err := openArtifacts(*cacheDir, *cacheBudget)
	if err != nil {
		fatal(err)
	}
	defer closeArtifacts()

	m, err := loadProgram(*prog)
	if err != nil {
		fatal(err)
	}
	p, err := core.NewProgram(*prog, m)
	if err != nil {
		fatal(err)
	}
	tuples := core.CollectTuplesParallel([]*core.Program{p}, *episodes, *epLen,
		rand.New(rand.NewSource(*seed)), *workers)
	seen := make([]int, passes.NumActions)
	wins := make([]int, passes.NumActions)
	for _, t := range tuples {
		seen[t.Action]++
		if t.Improved {
			wins[t.Action]++
		}
	}
	fmt.Printf("collected %d tuples from %d episodes (len %d) on %s\n",
		len(tuples), *episodes, *epLen, *prog)
	fmt.Println("pass win rates (fraction of applications that reduced cycles):")
	for a := 0; a < passes.NumActions; a++ {
		if seen[a] == 0 {
			continue
		}
		fmt.Printf("  %-28s %3d/%3d  %.2f\n", passes.Table1Names[a], wins[a], seen[a],
			float64(wins[a])/float64(seen[a]))
	}
	fmt.Println("evaluator:", p.EvalStats())
}

func parsePasses(s string) ([]int, error) {
	var seq []int
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := -1
		for i, n := range passes.Table1Names {
			if n == name || n == "-"+name {
				found = i
				break
			}
		}
		if found < 0 {
			v, err := strconv.Atoi(name)
			if err != nil {
				return nil, fmt.Errorf("unknown pass %q", name)
			}
			if err := passes.CheckIndex(v); err != nil {
				return nil, fmt.Errorf("pass %q: %w", name, err)
			}
			found = v
		}
		seq = append(seq, found)
	}
	// Belt and braces: the engine rejects invalid sequences at its boundary
	// too, but a typed error here beats a FaultBadSeq downstream.
	if err := passes.CheckSeq(seq); err != nil {
		return nil, err
	}
	return seq, nil
}

func optimize(p *core.Program, ev *core.Evaluator, algo string, budget, seqLen int, objective string, engine hls.Engine) []int {
	cfgEnv := core.DefaultEnv()
	cfgEnv.EpisodeLen = seqLen
	cfgEnv.Engine = engine
	switch objective {
	case "area":
		cfgEnv.Objective = core.MinimizeArea
	case "areadelay":
		cfgEnv.Objective = core.MinimizeAreaDelay
	}
	obj := ev.Objective(seqLen)
	switch algo {
	case "ppo":
		cfgEnv.Obs = core.ObsHistogram
		var env core.Env = core.NewPhaseEnv(p, cfgEnv)
		cfg := rl.DefaultPPO()
		cfg.RolloutSteps = 128
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, budget, nil)
		return env.Sequence()
	case "ppo-multi":
		cfgEnv.Obs = core.ObsBoth
		var env core.Env = core.NewMultiPhaseEnv(p, cfgEnv, seqLen, seqLen)
		cfg := rl.DefaultPPO()
		cfg.RolloutSteps = 128
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, budget, nil)
		return env.Sequence()
	case "a3c":
		cfgEnv.Obs = core.ObsFeatures
		proto := core.NewPhaseEnv(p, cfgEnv)
		cfg := rl.DefaultA3C()
		cfg.Workers = ev.Workers()
		agent := rl.NewA3C(cfg, proto.ObsSize(), proto.ActionDims())
		agent.Train(func(int) rl.Env { return core.NewPhaseEnv(p, cfgEnv) }, budget, nil)
		return nil
	case "es":
		cfgEnv.Obs = core.ObsFeatures
		cfg := rl.DefaultES()
		cfg.Workers = ev.Workers()
		// One environment per worker: candidate i runs on env i%w, so the
		// perturbation order (and hence the result) is worker-invariant.
		first := core.NewPhaseEnv(p, cfgEnv)
		envs := []rl.Env{first}
		for i := 1; i < ev.Workers(); i++ {
			envs = append(envs, core.NewPhaseEnv(p, cfgEnv))
		}
		agent := rl.NewES(cfg, first.ObsSize(), first.ActionDims())
		agent.Train(envs, budget, nil)
		return first.Sequence()
	case "greedy":
		return search.Greedy(obj, budget).Seq
	case "genetic":
		return search.Genetic(obj, rngFor(p.Name), search.DefaultGA(), budget).Seq
	case "opentuner":
		return search.OpenTuner(obj, rngFor(p.Name), budget).Seq
	case "random":
		return search.Random(obj, rngFor(p.Name), budget).Seq
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
		return nil
	}
}

func report(p *core.Program, seq []int, cycles int64) {
	// The final validation run must be organic even when the search ran
	// under -faults injection.
	faults.Disable()
	var names []string
	for _, s := range seq {
		names = append(names, passes.Table1Names[s])
	}
	fmt.Printf("sequence (%d passes): %s\n", len(seq), strings.Join(names, " "))
	fmt.Printf("cycles: %d  (%+.1f%% vs -O3, %+.1f%% vs -O0)  samples used: %d\n",
		cycles, p.SpeedupOverO3(cycles)*100,
		(float64(p.O0Cycles)/float64(cycles)-1)*100, p.Samples())

	// Validate the optimized design still behaves identically (the paper's
	// final logic-simulation check, here via the interpreter).
	opt := p.Module()
	passes.Apply(opt, seq)
	ref, err1 := interp.Run(p.Module(), interp.DefaultLimits)
	got, err2 := interp.Run(opt, interp.DefaultLimits)
	if err1 != nil || err2 != nil || ref.Exit != got.Exit || len(ref.Trace) != len(got.Trace) {
		fmt.Println("VALIDATION FAILED: optimized design diverges from reference")
		os.Exit(1)
	}
	fmt.Println("validation: optimized design matches reference behaviour")
}

// genCfg is the inference/training environment configuration a saved agent
// uses: combined observation, §5.3 technique-2 normalization, log reward.
func genCfg(seqLen int) core.EnvConfig {
	return core.EnvConfig{
		Obs: core.ObsBoth, Norm: core.NormTotal,
		EpisodeLen: seqLen, RewardLog: true,
	}
}

// trainGeneralizer trains a PPO agent across N random programs (§6.2) and
// saves it for later zero-shot inference.
func trainGeneralizer(n, steps int, path string) {
	fmt.Printf("training on %d random programs for %d steps...\n", n, steps)
	train, err := experimentsRandomPrograms(n)
	if err != nil {
		fatal(err)
	}
	cfg := genCfg(45)
	envs := make([]rl.Env, len(train))
	for i, p := range train {
		envs[i] = core.NewPhaseEnv(p, cfg)
	}
	pcfg := rl.DefaultPPO()
	pcfg.Hidden = []int{128, 128}
	agent := rl.NewPPO(pcfg, envs[0].ObsSize(), envs[0].ActionDims())
	agent.Train(envs, steps, func(st rl.Stats) {
		fmt.Printf("  steps=%6d episodes=%4d reward-mean=%.1f\n",
			st.TotalSteps, st.TotalEpisodes, st.EpisodeRewardMean)
	})
	if err := agent.Snapshot().Save(path); err != nil {
		fatal(err)
	}
	fmt.Println("saved agent to", path)
}

func experimentsRandomPrograms(n int) ([]*core.Program, error) {
	var ps []*core.Program
	seed := int64(9000)
	for i := 0; i < n; i++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		seed = used + 1
		p, err := core.NewProgram(fmt.Sprintf("rand%d", used), m)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// inferWithAgent runs one greedy rollout with a saved agent (one profiler
// sample, as in Figure 9).
func inferWithAgent(p *core.Program, path string) []int {
	snap, err := rl.LoadSnapshot(path)
	if err != nil {
		fatal(err)
	}
	agent, err := rl.RestorePPO(snap)
	if err != nil {
		fatal(err)
	}
	seq, _, _ := core.InferGreedy(p, genCfg(45), func(obs []float64) int {
		return agent.Act(obs, true)[0]
	})
	return seq
}

func rngFor(name string) *rand.Rand {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return rand.New(rand.NewSource(h))
}

// failCompile dies on a failed compile, printing the sanitizer's minimized
// repro first when one is available (the usual reason a sanitized compile
// fails).
func failCompile(p *core.Program) {
	if rep := p.SanitizerReport(); rep != nil {
		fmt.Print(rep.String())
		fatal(fmt.Errorf("sanitizer detected a miscompiling pass sequence"))
	}
	fatal(fmt.Errorf("compilation failed"))
}

// openArtifacts opens the persistent artifact cache when -cache-dir is set
// and installs it as the process default, so every Program built afterwards
// (baselines included) reads through and writes behind it. The returned
// closer drains pending writes; with no -cache-dir it is a no-op.
func openArtifacts(dir string, budget int64) (func(), error) {
	if dir == "" {
		return func() {}, nil
	}
	st, err := artifact.Open(dir, budget)
	if err != nil {
		return nil, err
	}
	core.SetDefaultArtifacts(st)
	return func() {
		core.SetDefaultArtifacts(nil)
		st.Close()
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autophase:", err)
	os.Exit(1)
}
