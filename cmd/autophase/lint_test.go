package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLintMain captures one lintMain invocation.
func runLintMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = lintMain(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestLintJSONGolden pins the machine-readable lint format: one JSON
// object per diagnostic line, byte-identical to the committed golden.
func TestLintJSONGolden(t *testing.T) {
	stdout, stderr, code := runLintMain(t,
		"-program", "file:"+filepath.Join("testdata", "lint", "dominance.ir"), "-json")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (the fixture has an error-severity finding); stderr: %s", code, stderr)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "lint", "dominance.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(golden) {
		t.Errorf("lint -json output differs from testdata/lint/dominance.golden:\n--- got ---\n%s--- want ---\n%s", stdout, golden)
	}
}

// TestLintJSONOneObjectPerLine checks the contract baseline consumers
// (scripts/lint-baseline.sh, CI diffing) rely on: every non-empty stdout
// line is a standalone JSON object with the documented fields.
func TestLintJSONOneObjectPerLine(t *testing.T) {
	stdout, _, code := runLintMain(t,
		"-program", "file:"+filepath.Join("testdata", "lint", "dominance.ir"), "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want >= 2 diagnostics (one error, one warning), got %d:\n%s", len(lines), stdout)
	}
	sawError := false
	for _, line := range lines {
		var d lintDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line is not a standalone JSON object: %q: %v", line, err)
		}
		if d.Severity == "" || d.Check == "" || d.Msg == "" {
			t.Errorf("diagnostic missing required fields: %+v", d)
		}
		if d.Severity == "error" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("fixture produced no error-severity diagnostic")
	}
}

// TestLintCleanProgramExitsZero: a verifiable benchmark yields no errors
// and exit status 0 even when warnings are present.
func TestLintCleanProgramExitsZero(t *testing.T) {
	stdout, stderr, code := runLintMain(t, "-program", "matmul", "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	for _, line := range strings.Split(strings.TrimRight(stdout, "\n"), "\n") {
		if line == "" {
			continue
		}
		var d lintDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.Severity == "error" {
			t.Errorf("clean benchmark produced an error diagnostic: %+v", d)
		}
	}
}

// TestLintLoadFailureExitsTwo: a program that cannot load is a usage
// failure (2), distinct from findings (1), so baseline scripts can refuse
// to record a truncated run.
func TestLintLoadFailureExitsTwo(t *testing.T) {
	_, stderr, code := runLintMain(t, "-program", "no-such-benchmark", "-json")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-benchmark") {
		t.Errorf("stderr does not name the bad program: %q", stderr)
	}
}

// TestLintTextMode covers the human-readable path's summary line and exit
// code.
func TestLintTextMode(t *testing.T) {
	stdout, _, code := runLintMain(t,
		"-program", "file:"+filepath.Join("testdata", "lint", "dominance.ir"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout, "lint: 1 errors, 1 warnings") {
		t.Errorf("missing summary line in text output:\n%s", stdout)
	}

	stdout, _, code = runLintMain(t, "-program", "matmul")
	if code != 0 {
		t.Fatalf("clean text-mode exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, "lint: ok") {
		t.Errorf("missing ok line in clean text output:\n%s", stdout)
	}
}

// TestLintEngineFlag: lint accepts every engine name the profiler knows
// (scripts/lint-baseline.sh passes -engine auto on every invocation) and
// rejects unknown names as a usage failure (2), not findings.
func TestLintEngineFlag(t *testing.T) {
	for _, name := range []string{"auto", "static", "vm", "interp"} {
		_, stderr, code := runLintMain(t, "-program", "matmul", "-engine", name, "-json")
		if code != 0 {
			t.Errorf("-engine %s: exit code = %d, want 0; stderr: %s", name, code, stderr)
		}
	}
	_, stderr, code := runLintMain(t, "-program", "matmul", "-engine", "jit", "-json")
	if code != 2 {
		t.Fatalf("-engine jit: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "jit") {
		t.Errorf("stderr does not name the bad engine: %q", stderr)
	}
}
