package main

import (
	"flag"
	"fmt"
	"os"

	"autophase/internal/core"
	"autophase/internal/faults"
	"autophase/internal/ir"
	"autophase/internal/passes"
)

// runReplay is the `autophase replay` subcommand: load a crash-repro bundle
// written by -crashdir, rebuild the faulting compile from it (preferring the
// inlined pre-optimization IR over the benchmark name, so replays survive
// benchmark drift), and re-run the recorded pass sequence.
//
// Exit status 0 means the fault reproduced; 1 means it did not (stale
// bundle, or a fault that needs -faults re-enabled to manifest).
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	faultSpec := fs.String("faults", "", "re-enable fault injection with this spec while replaying")
	faultSeed := fs.Int64("faults-seed", 1, "deterministic seed for the -faults injector")
	verbose := fs.Bool("verbose", false, "also print the recorded panic stack")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: autophase replay [-faults spec] <bundle.json>"))
	}

	b, err := core.ReadCrashBundle(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bundle: program=%s kind=%s stage=%s seq=%v\n", b.Program, b.Kind, b.Stage, b.Seq)
	if b.Pass >= 0 && b.Pass < passes.NumPasses {
		fmt.Printf("recorded faulting pass: %s (index %d, position %d)\n",
			passes.Table1Names[b.Pass], b.Pass, b.Pos)
	}
	fmt.Printf("recorded error: %s\n", b.Err)
	if *verbose && b.Stack != "" {
		fmt.Println("recorded stack:")
		fmt.Println(b.Stack)
	}

	var m *ir.Module
	if b.BeforeIR != "" {
		if m, err = ir.Parse(b.BeforeIR); err != nil {
			fatal(fmt.Errorf("bundle IR does not parse: %w", err))
		}
	} else if m, err = loadProgram(b.Program); err != nil {
		fatal(fmt.Errorf("bundle has no inlined IR and program %q failed to load: %v", b.Program, err))
	}
	p, err := core.NewProgram(b.Program, m)
	if err != nil {
		fatal(err)
	}
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		faults.Enable(spec)
		defer faults.Disable()
	}

	var got *core.EvalFault
	p.SetFaultHook(func(f *core.EvalFault) { got = f })
	cycles, _, ok := p.Compile(b.Seq)
	switch {
	case got != nil:
		fmt.Printf("replay: fault REPRODUCED [%s/%s]: %s\n", got.Kind, got.Stage, got.Err)
		if got.Kind.String() != b.Kind {
			fmt.Printf("note: fault kind differs from the bundle (recorded %s, replayed %s)\n",
				b.Kind, got.Kind)
		}
	case !ok:
		fmt.Println("replay: compile failed, but with a profile error or sanitizer flag, not a contained panic/deadline fault")
		os.Exit(1)
	default:
		fmt.Printf("replay: fault did NOT reproduce — compile succeeded (%d cycles)\n", cycles)
		if b.Err != "" && *faultSpec == "" {
			fmt.Println("hint: if the bundle records an injected fault, re-run with the original -faults spec and seed")
		}
		os.Exit(1)
	}
}
