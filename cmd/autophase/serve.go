package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"autophase/internal/cliutil"
	"autophase/internal/faults"
	"autophase/internal/serve"
)

// runServe is the `autophase serve` subcommand: the multi-tenant
// phase-ordering service. It listens until SIGINT/SIGTERM, then degrades
// gracefully — admission turns into explicit 503s, queued work drains
// inside -drain, and whatever does not finish is checkpointed to
// -checkpoint so the next start resumes it.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent search runners")
	queueCap := fs.Int("queue", 1024, "global queued-job bound; past it submissions shed with 503")
	tenantRate := fs.Float64("tenant-rate", 50, "per-tenant submission rate (jobs/second)")
	tenantBurst := fs.Float64("tenant-burst", 100, "per-tenant submission burst")
	tenantJobs := fs.Int("tenant-jobs", 64, "per-tenant queued+running quota (0 = unlimited)")
	defBudget := fs.Int("default-budget", 64, "sample budget for jobs that do not name one")
	maxBudget := fs.Int("max-budget", 4096, "largest accepted per-job sample budget")
	maxLen := fs.Int("max-len", 45, "largest accepted pass-sequence length")
	defDeadline := fs.Duration("default-deadline", 0, "wall budget for jobs that do not name one (0 = unbounded)")
	maxDeadline := fs.Duration("max-deadline", 10*time.Minute, "largest accepted per-job wall budget")
	brkFaults := fs.Int("breaker-faults", 3, "consecutive faulted jobs that trip a tenant's circuit breaker (0 disables)")
	brkCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	checkpoint := fs.String("checkpoint", "", "unfinished-job checkpoint file; restart with the same path to resume")
	cacheDir := fs.String("cache-dir", "", "persistent artifact cache directory, shared across all tenants")
	cacheBudget := fs.Int64("cache-budget", 0, "artifact cache size budget in bytes (0 = 512 MiB default)")
	faultSpec := fs.String("faults", "", `chaos-mode fault-injection spec, e.g. "serve-panic:0.02,pass-panic:0.01"`)
	faultSeed := fs.Int64("faults-seed", 1, "deterministic seed for the -faults injector")
	fs.Parse(args)

	if err := cliutil.FirstErr(
		cliutil.MinInt("workers", *workers, 1),
		cliutil.MinInt("queue", *queueCap, 1),
		cliutil.PosFloat("tenant-rate", *tenantRate),
		cliutil.PosFloat("tenant-burst", *tenantBurst),
		cliutil.MinInt("tenant-jobs", *tenantJobs, 0),
		cliutil.MinInt("default-budget", *defBudget, 1),
		cliutil.MinInt("max-budget", *maxBudget, 1),
		cliutil.MinInt("max-len", *maxLen, 1),
		cliutil.NonNegDuration("default-deadline", *defDeadline),
		cliutil.NonNegDuration("max-deadline", *maxDeadline),
		cliutil.MinInt("breaker-faults", *brkFaults, 0),
		cliutil.PosDuration("breaker-cooldown", *brkCooldown),
		cliutil.PosDuration("drain", *drain),
		cliutil.MinInt64("cache-budget", *cacheBudget, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, "autophase serve:", err)
		os.Exit(2)
	}

	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		faults.Enable(spec)
		defer faults.Disable()
	}

	cfg := serve.DefaultConfig()
	cfg.Workers = *workers
	cfg.QueueCap = *queueCap
	cfg.TenantRate = *tenantRate
	cfg.TenantBurst = *tenantBurst
	cfg.TenantJobs = *tenantJobs
	cfg.DefaultBudget = *defBudget
	cfg.MaxBudget = *maxBudget
	cfg.MaxSeqLen = *maxLen
	cfg.DefaultDeadline = *defDeadline
	cfg.MaxDeadline = *maxDeadline
	cfg.BreakerFaults = *brkFaults
	cfg.BreakerCooldown = *brkCooldown
	cfg.DrainTimeout = *drain
	cfg.CheckpointPath = *checkpoint
	cfg.ArtifactDir = *cacheDir
	cfg.ArtifactBudget = *cacheBudget

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("autophase serve: listening on %s (%d workers)\n", *addr, *workers)

	select {
	case sig := <-sigc:
		fmt.Printf("autophase serve: %s, draining (up to %s)...\n", sig, *drain)
	case err := <-errc:
		fatal(err)
	}

	// Shed first, drain second, checkpoint last. The HTTP listener stays up
	// through the drain so clients can keep polling and see explicit 503s on
	// new submissions rather than connection refusals.
	if err := srv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "autophase serve: checkpoint:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "autophase serve:", err)
	}
	st := srv.Stats()
	fmt.Printf("autophase serve: stopped — accepted=%d shed429=%d shed503=%d drained=%d checkpointed=%d\n",
		st.Accepted, st.Shed429, st.Shed503, st.Drained, st.Checkpointed)
}
