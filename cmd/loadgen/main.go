// Command loadgen is the serve layer's flagship benchmark: it floods an
// autophase service with concurrent phase-ordering searches across many
// synthetic tenants and reports latency, throughput and shed behaviour.
//
// Usage:
//
//	loadgen -jobs 1000 -tenants 8 -conc 64              # in-process server
//	loadgen -addr 127.0.0.1:8080 -jobs 500              # against a live server
//	loadgen -jobs 1000 -faults "serve-panic:0.02,pass-panic:0.01" -check
//	loadgen -jobs 400 -poison 2 -check                  # cross-tenant isolation proof
//	loadgen -report BENCH_loadgen.json                  # machine-readable report
//
// The client behaves like a well-raised tenant: submissions that are shed
// with 429/503 honour the server's Retry-After (with jitter) and retry up
// to -retries times. -poison adds tenants that submit organically
// pathological modules (baseline profiling blows the interpreter's step
// limit in every engine); their jobs fault, their circuit breakers trip,
// and -check asserts none of that leaks into a healthy tenant's results.
// -check also asserts the engine's accounting invariant — samples ==
// successes + faults + flagged — across the whole multi-tenant run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"autophase/internal/cliutil"
	"autophase/internal/faults"
	"autophase/internal/progen"
	"autophase/internal/serve"
)

// poisonIR is the poison tenants' module: a loop whose statically computed
// step count exceeds interp.DefaultLimits.MaxSteps, so the static
// estimator declines it and the VM/interpreter blow the limit — every
// engine faults organically, no injection needed.
const poisonIR = `define i32 @main() {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %inc = add i32 %i, 1
  %c = icmp slt i32 %inc, 100000000
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %i
}
`

type jobSpec struct {
	tenant string
	ir     string
	poison bool
}

type jobResult struct {
	spec    jobSpec
	id      string
	state   string
	retries int
	gaveUp  bool // retry budget exhausted while shed (expected for poisoned tenants)
	failed  bool // submit failed with a non-shed error
	badShed bool // a rejection arrived without explicit 429/503 + Retry-After
	latency time.Duration
}

func main() {
	addr := flag.String("addr", "", "target server address; empty starts an in-process server")
	jobs := flag.Int("jobs", 1000, "healthy-tenant jobs to submit")
	tenants := flag.Int("tenants", 8, "healthy synthetic tenants")
	poison := flag.Int("poison", 0, "poison tenants submitting organically faulting modules")
	poisonJobs := flag.Int("poison-jobs", 16, "jobs each poison tenant submits")
	conc := flag.Int("conc", 64, "concurrent client submitters")
	budget := flag.Int("budget", 12, "samples per job")
	seqLen := flag.Int("len", 6, "pass-sequence length per job")
	deadline := flag.Duration("deadline", 0, "per-job wall budget sent with each submission (0 = none)")
	modules := flag.Int("modules", 8, "distinct synthetic modules shared round-robin by healthy jobs")
	seed := flag.Int64("seed", 1, "synthetic module generator seed")
	retries := flag.Int("retries", 12, "max resubmissions after a shed")
	faultSpec := flag.String("faults", "", `chaos mode: fault-injection spec for the in-process server, e.g. "serve-panic:0.02,pass-panic:0.01"`)
	faultSeed := flag.Int64("faults-seed", 1, "deterministic seed for -faults")
	report := flag.String("report", "", "write the JSON report here (BENCH_loadgen.json)")
	check := flag.Bool("check", false, "exit 1 unless accounting, shed and isolation invariants all hold")
	// In-process server tuning; ignored with -addr.
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "in-process server worker pool")
	queueCap := flag.Int("queue", 4096, "in-process server queue bound")
	tenantRate := flag.Float64("tenant-rate", 200, "in-process per-tenant submission rate")
	tenantBurst := flag.Float64("tenant-burst", 50, "in-process per-tenant burst")
	tenantJobs := flag.Int("tenant-jobs", 256, "in-process per-tenant concurrency quota")
	cacheDir := flag.String("cache-dir", "", "in-process server artifact cache directory")
	flag.Parse()

	if err := cliutil.FirstErr(
		cliutil.MinInt("jobs", *jobs, 1),
		cliutil.MinInt("tenants", *tenants, 1),
		cliutil.MinInt("poison", *poison, 0),
		cliutil.MinInt("poison-jobs", *poisonJobs, 1),
		cliutil.MinInt("conc", *conc, 1),
		cliutil.MinInt("budget", *budget, 1),
		cliutil.MinInt("len", *seqLen, 1),
		cliutil.NonNegDuration("deadline", *deadline),
		cliutil.MinInt("modules", *modules, 1),
		cliutil.MinInt("retries", *retries, 0),
		cliutil.MinInt("workers", *workers, 1),
		cliutil.MinInt("queue", *queueCap, 1),
		cliutil.PosFloat("tenant-rate", *tenantRate),
		cliutil.PosFloat("tenant-burst", *tenantBurst),
		cliutil.MinInt("tenant-jobs", *tenantJobs, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	base := "http://" + *addr
	var shutdown func()
	if *addr == "" {
		cfg := serve.DefaultConfig()
		cfg.Workers = *workers
		cfg.QueueCap = *queueCap
		cfg.TenantRate = *tenantRate
		cfg.TenantBurst = *tenantBurst
		cfg.TenantJobs = *tenantJobs
		cfg.MaxBudget = *budget
		cfg.ArtifactDir = *cacheDir
		srv, err := serve.New(cfg)
		if err != nil {
			fatal(err)
		}
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() {
			srv.Shutdown(neverDone{})
			hs.Close()
			srv.Close()
		}
		fmt.Printf("loadgen: in-process server on %s (%d workers)\n", base, *workers)
	}
	if *faultSpec != "" {
		if *addr != "" {
			fatal(fmt.Errorf("-faults only works with the in-process server; pass -faults to the remote `autophase serve` instead"))
		}
		spec, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		faults.Enable(spec)
		defer faults.Disable()
	}

	// Build the synthetic module pool once; healthy jobs share it
	// round-robin so the server's shared artifact store gets to prove its
	// cross-tenant warm hits.
	pool := make([]string, *modules)
	s := *seed
	for i := range pool {
		m, used := progen.GenerateFiltered(s, progen.DefaultGen)
		s = used + 1
		pool[i] = m.String()
	}

	specs := make([]jobSpec, 0, *jobs+*poison**poisonJobs)
	for i := 0; i < *jobs; i++ {
		specs = append(specs, jobSpec{
			tenant: fmt.Sprintf("t%02d", i%*tenants),
			ir:     pool[i%len(pool)],
		})
	}
	for p := 0; p < *poison; p++ {
		for i := 0; i < *poisonJobs; i++ {
			specs = append(specs, jobSpec{tenant: fmt.Sprintf("poison%d", p), ir: poisonIR, poison: true})
		}
	}
	// Interleave tenants so arrival order is adversarial (every tenant
	// floods at once), then hammer the server.
	rand.New(rand.NewSource(*seed)).Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	client := &http.Client{Timeout: 60 * time.Second}
	results := make([]jobResult, len(specs))
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for i := range work {
				results[i] = runOne(client, base, specs[i], *budget, *seqLen, *deadline, *retries, rng)
			}
		}(w)
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	stats, statsErr := fetchStats(client, base)
	if shutdown != nil {
		shutdown()
	}
	if statsErr != nil {
		fatal(fmt.Errorf("fetching /v1/stats: %w", statsErr))
	}

	rep := summarize(results, stats, wall, *faultSpec != "")
	printReport(&rep)
	if *report != "" {
		data, _ := json.MarshalIndent(&rep, "", "  ")
		if err := os.WriteFile(*report, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("loadgen: wrote", *report)
	}
	if *check && !rep.ChecksOK {
		fmt.Fprintln(os.Stderr, "loadgen: CHECK FAILED:", rep.CheckFailures)
		os.Exit(1)
	}
}

// neverDone satisfies serve.Shutdown's context parameter for a drain that
// only the drain timeout bounds.
type neverDone struct{}

func (neverDone) Done() <-chan struct{} { return nil }

// runOne submits one job (retrying sheds with Retry-After-honouring
// backoff) and polls it to a terminal state.
func runOne(client *http.Client, base string, spec jobSpec, budget, seqLen int, deadline time.Duration, retries int, rng *rand.Rand) jobResult {
	res := jobResult{spec: spec}
	body, _ := json.Marshal(serve.SubmitRequest{
		Tenant: spec.tenant, IR: spec.ir, Algo: "random",
		Budget: budget, SeqLen: seqLen, DeadlineMS: deadline.Milliseconds(),
	})
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			res.failed = true
			return res
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var ack serve.SubmitResponse
			if err := json.Unmarshal(payload, &ack); err != nil {
				res.failed = true
				return res
			}
			res.id = ack.ID
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			// Any rejection that is not an explicit shed is a contract
			// violation (or a client bug) — surface it either way.
			res.failed = true
			res.badShed = true
			return res
		}
		wait, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || wait < 1 {
			res.badShed = true
			wait = 1
		}
		if attempt >= retries {
			res.gaveUp = true
			return res
		}
		res.retries++
		// Honour Retry-After, jittered ±25% so retry storms decorrelate;
		// capped so a pathological header cannot wedge the benchmark.
		sleep := time.Duration(wait) * time.Second
		if sleep > 5*time.Second {
			sleep = 5 * time.Second
		}
		sleep = sleep/2 + time.Duration(rng.Int63n(int64(sleep)))/2 + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
		time.Sleep(sleep)
	}
	for {
		resp, err := client.Get(base + "/v1/jobs/" + res.id + "?wait=5s")
		if err != nil {
			res.failed = true
			return res
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st serve.JobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			res.failed = true
			return res
		}
		if st.State != "queued" && st.State != "running" {
			res.state = st.State
			res.latency = time.Since(t0)
			return res
		}
	}
}

func fetchStats(client *http.Client, base string) (*serve.StatsReport, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rep serve.StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Report is the benchmark's machine-readable output (BENCH_loadgen.json).
type Report struct {
	Jobs          int     `json:"jobs"`
	Tenants       int     `json:"tenants"`
	PoisonTenants int     `json:"poison_tenants"`
	Accepted      int     `json:"accepted"`
	Done          int     `json:"done"`
	Faulted       int     `json:"faulted"`
	Deadlined     int     `json:"deadlined"`
	GaveUp        int     `json:"gave_up"`
	ClientErrors  int     `json:"client_errors"`
	Retries       int     `json:"retries"`
	Shed429       int64   `json:"shed_429"`
	Shed503       int64   `json:"shed_503"`
	ShedRate      float64 `json:"shed_rate"`
	WallS         float64 `json:"wall_s"`
	Throughput    float64 `json:"throughput_jobs_per_s"`
	P50MS         float64 `json:"latency_p50_ms"`
	P90MS         float64 `json:"latency_p90_ms"`
	P99MS         float64 `json:"latency_p99_ms"`
	Samples       int64   `json:"samples"`
	Successes     int64   `json:"successes"`
	Faults        int64   `json:"faults"`
	Flagged       int64   `json:"flagged"`
	InvariantOK   bool    `json:"invariant_ok"`
	IsolationOK   bool    `json:"isolation_ok"`
	ShedsExplicit bool    `json:"sheds_explicit"`
	AllTerminal   bool    `json:"all_terminal"`
	ChecksOK      bool    `json:"checks_ok"`
	CheckFailures string  `json:"check_failures,omitempty"`
	Aggregate     string  `json:"aggregate"`
}

func summarize(results []jobResult, stats *serve.StatsReport, wall time.Duration, injecting bool) Report {
	rep := Report{WallS: wall.Seconds(), Aggregate: stats.Aggregate}
	tenants := map[string]bool{}
	poisonTenants := map[string]bool{}
	var lats []time.Duration
	healthyBroken := 0
	rep.ShedsExplicit = true
	rep.AllTerminal = true
	for _, r := range results {
		if r.spec.poison {
			poisonTenants[r.spec.tenant] = true
		} else {
			rep.Jobs++
			tenants[r.spec.tenant] = true
		}
		if r.badShed {
			rep.ShedsExplicit = false
		}
		rep.Retries += r.retries
		switch {
		case r.failed:
			rep.ClientErrors++
		case r.gaveUp:
			rep.GaveUp++
		default:
			rep.Accepted++
			lats = append(lats, r.latency)
			switch r.state {
			case "done":
				rep.Done++
			case "fault":
				rep.Faulted++
				if !r.spec.poison {
					healthyBroken++
				}
			case "deadline":
				rep.Deadlined++
				if !r.spec.poison {
					healthyBroken++
				}
			case "checkpointed":
				// Terminal but unfinished: only a draining server does this.
			default:
				rep.AllTerminal = false
			}
		}
	}
	rep.Tenants = len(tenants)
	rep.PoisonTenants = len(poisonTenants)
	rep.Shed429 = stats.Shed429
	rep.Shed503 = stats.Shed503
	if att := float64(stats.Accepted + stats.Shed429 + stats.Shed503); att > 0 {
		rep.ShedRate = float64(stats.Shed429+stats.Shed503) / att
	}
	if rep.WallS > 0 {
		rep.Throughput = float64(rep.Accepted) / rep.WallS
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50MS = percentileMS(lats, 0.50)
	rep.P90MS = percentileMS(lats, 0.90)
	rep.P99MS = percentileMS(lats, 0.99)
	for _, t := range stats.Tenants {
		rep.Samples += t.Samples
		rep.Successes += t.Successes
		rep.Faults += t.Faults
		rep.Flagged += t.Flagged
	}
	rep.InvariantOK = rep.Samples == rep.Successes+rep.Faults+rep.Flagged
	// Isolation: with no global injection, a healthy tenant's jobs must
	// never fault or miss deadlines because a poison tenant is melting down
	// next door. Under global injection every tenant is being shot at, so
	// only the accounting and explicit-shed contracts are assertable.
	rep.IsolationOK = injecting || healthyBroken == 0
	rep.ChecksOK = true
	fail := func(msg string) {
		rep.ChecksOK = false
		if rep.CheckFailures != "" {
			rep.CheckFailures += "; "
		}
		rep.CheckFailures += msg
	}
	if !rep.InvariantOK {
		fail(fmt.Sprintf("samples=%d != successes+faults+flagged=%d", rep.Samples, rep.Successes+rep.Faults+rep.Flagged))
	}
	if !rep.IsolationOK {
		fail(fmt.Sprintf("%d healthy-tenant jobs failed with no injection enabled", healthyBroken))
	}
	if !rep.ShedsExplicit {
		fail("a rejection arrived without explicit 429/503 + Retry-After")
	}
	if !rep.AllTerminal {
		fail("an accepted job never reached a terminal state")
	}
	if rep.ClientErrors > 0 {
		fail(fmt.Sprintf("%d client transport/protocol errors", rep.ClientErrors))
	}
	return rep
}

func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func printReport(r *Report) {
	fmt.Printf("loadgen: %d jobs / %d tenants (+%d poison), %d accepted, %d done, %d fault, %d deadline, %d gave up\n",
		r.Jobs, r.Tenants, r.PoisonTenants, r.Accepted, r.Done, r.Faulted, r.Deadlined, r.GaveUp)
	fmt.Printf("loadgen: wall %.2fs  throughput %.1f jobs/s  latency p50=%.0fms p90=%.0fms p99=%.0fms\n",
		r.WallS, r.Throughput, r.P50MS, r.P90MS, r.P99MS)
	fmt.Printf("loadgen: shed 429=%d 503=%d (rate %.1f%%)  client retries=%d\n",
		r.Shed429, r.Shed503, r.ShedRate*100, r.Retries)
	fmt.Printf("loadgen: engine samples=%d successes=%d faults=%d flagged=%d  invariant=%v isolation=%v explicit-sheds=%v\n",
		r.Samples, r.Successes, r.Faults, r.Flagged, r.InvariantOK, r.IsolationOK, r.ShedsExplicit)
	fmt.Printf("loadgen: server aggregate: %s\n", r.Aggregate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
