// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig7 [-scale quick|full]
//	experiments -exp fig5 | fig6 | fig8 | fig9 | table3 | randomgen | all
//	experiments -exp fig5 -csv        # machine-readable heat map
//	experiments -exp fig7 -workers 8  # parallel candidate evaluation
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"autophase/internal/artifact"
	"autophase/internal/cliutil"
	"autophase/internal/core"
	"autophase/internal/experiments"
	"autophase/internal/faults"
	"autophase/internal/hls"
	"autophase/internal/profiling"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5, fig6, fig7, fig8, fig9, table3, randomgen, graphobs, all")
	scale := flag.String("scale", "quick", "budget scale: quick or full")
	csv := flag.Bool("csv", false, "emit heat maps as CSV instead of ASCII")
	workers := flag.Int("workers", 0, "evaluation parallelism (0 = the scale's default: quick pins 1, full uses all CPUs)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultSpec := flag.String("faults", "", `fault-injection spec, e.g. "pass-panic:0.01,interp-stall:0.005"`)
	faultSeed := flag.Int64("faults-seed", 1, "deterministic seed for the -faults injector")
	crashDir := flag.String("crashdir", "", "write crash-repro bundles here for contained panic/deadline faults")
	engineFlag := flag.String("engine", "auto", "profiler backend: auto (static → vm → interp cascade), static, vm, or interp")
	cacheDir := flag.String("cache-dir", "", "persistent artifact cache directory (profiles, features, lowered bytecode survive restarts)")
	cacheBudget := flag.Int64("cache-budget", 0, "artifact cache size budget in bytes (0 = 512 MiB default)")
	flag.Parse()

	// Reject meaningless knob values up front with a usage error (exit 2)
	// instead of silently clamping; -workers 0 stays legal as the "scale
	// decides" sentinel.
	if err := cliutil.FirstErr(
		cliutil.MinInt("workers", *workers, 0),
		cliutil.MinInt64("cache-budget", *cacheBudget, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	engine, err := hls.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *cacheDir != "" {
		st, err := artifact.Open(*cacheDir, *cacheBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		core.SetDefaultArtifacts(st)
		defer func() {
			core.SetDefaultArtifacts(nil)
			st.Close()
		}()
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *crashDir != "" {
		core.SetCrashDir(*crashDir)
	}
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		faults.Enable(spec)
		defer faults.Disable()
	}

	sc := experiments.Quick()
	if *scale == "full" {
		sc = experiments.Full()
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	sc.Engine = engine
	runErr := run(*exp, sc, *csv)
	stopProf()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(exp string, sc experiments.Scale, csv bool) error {
	switch exp {
	case "table3":
		fmt.Print(experiments.RenderTable3())
		return nil
	case "fig7":
		return runFig7(sc)
	case "graphobs":
		return runGraphObs(sc)
	case "fig5", "fig6", "fig8", "fig9", "randomgen", "all":
		// These need the random-program training set and the forest
		// importance analysis.
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}

	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		return err
	}
	imp := experiments.Importance(train, sc, 1)

	switch exp {
	case "fig5":
		renderHeat(csv, "Figure 5: importance of program features per pass", imp.FeatureByPass)
		if !csv {
			fmt.Print(experiments.RenderImportanceSummary(imp, sc.KeepFeatures, sc.KeepPasses))
		}
	case "fig6":
		renderHeat(csv, "Figure 6: importance of previously applied passes per pass", imp.PassByPass)
	case "fig8":
		fmt.Print(experiments.RenderCurves(experiments.Fig8(train, imp, sc)))
	case "fig9":
		return runFig9(train, imp, sc)
	case "randomgen":
		return runRandomGen(train, imp, sc)
	case "all":
		fmt.Print(experiments.RenderTable3())
		fmt.Println()
		if err := runFig7(sc); err != nil {
			return err
		}
		fmt.Println()
		renderHeat(false, "Figure 5: importance of program features per pass", imp.FeatureByPass)
		fmt.Println()
		renderHeat(false, "Figure 6: importance of previously applied passes per pass", imp.PassByPass)
		fmt.Println()
		fmt.Print(experiments.RenderImportanceSummary(imp, sc.KeepFeatures, sc.KeepPasses))
		fmt.Println()
		fmt.Print(experiments.RenderCurves(experiments.Fig8(train, imp, sc)))
		fmt.Println()
		if err := runFig9(train, imp, sc); err != nil {
			return err
		}
		fmt.Println()
		return runRandomGen(train, imp, sc)
	}
	return nil
}

func renderHeat(csv bool, title string, rows [][]float64) {
	if csv {
		fmt.Print(experiments.HeatMapCSV(rows))
		return
	}
	fmt.Print(experiments.RenderHeatMap(title, rows))
}

func runFig7(sc experiments.Scale) error {
	programs, err := experiments.BenchmarkPrograms()
	if err != nil {
		return err
	}
	rows := experiments.Fig7(programs, sc)
	fmt.Print(experiments.RenderAlgoResults(
		"Figure 7: circuit speedup over -O3 and samples per program ("+sc.Name+" scale)", rows))
	fmt.Println()
	fmt.Print(experiments.RenderPerProgram(rows))
	return nil
}

func runFig9(train []*core.Program, imp *core.Importance, sc experiments.Scale) error {
	test, err := experiments.BenchmarkPrograms()
	if err != nil {
		return err
	}
	rows := experiments.Fig9(train, test, imp, sc)
	fmt.Print(experiments.RenderAlgoResults(
		"Figure 9: zero-shot generalization to the nine benchmarks ("+sc.Name+" scale)", rows))
	fmt.Println()
	fmt.Print(experiments.RenderPerProgram(rows))
	return nil
}

// runGraphObs is the graph-observation ablation: two generalizers that
// differ only in whether the structural feature block extends the
// observation, compared zero-shot on the nine benchmarks.
func runGraphObs(sc experiments.Scale) error {
	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		return err
	}
	test, err := experiments.BenchmarkPrograms()
	if err != nil {
		return err
	}
	fmt.Printf("Graph-observation ablation (%s scale):\n", sc.Name)
	for _, r := range experiments.GraphObsAB(train, test, sc) {
		fmt.Printf("  %-14s obs=%3d  final-reward=%7.1f  zero-shot vs -O3: %+.1f%%\n",
			r.Name, r.ObsSize, r.Final, r.Mean*100)
	}
	return nil
}

func runRandomGen(train []*core.Program, imp *core.Importance, sc experiments.Scale) error {
	set := experiments.GenSettings(imp, sc)[2] // filtered-norm2, the paper's best
	agent, _ := experiments.TrainGeneralizer(train, set, sc, 42)
	mean, err := experiments.RandomGeneralization(agent, set.Cfg, sc.TestRandom, 777000)
	if err != nil {
		return err
	}
	fmt.Printf("§6.2 random-program generalization (filtered-norm2, %d unseen programs): %+.1f%% vs -O3\n",
		sc.TestRandom, mean*100)
	return nil
}
