// Command progen emits the suite's programs as textual IR files: the nine
// CHStone-style benchmarks and CSmith-style random programs by seed. The
// files round-trip through ir.Parse and feed cmd/autophase -program
// file:<path>.
//
// Usage:
//
//	progen -out dir                # write all nine benchmarks
//	progen -rand 5 -seed 100 -out dir   # plus five filtered random programs
//	progen -program matmul         # print one program to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"autophase/internal/progen"
)

func main() {
	out := flag.String("out", "", "directory to write .ir files into")
	one := flag.String("program", "", "print a single benchmark to stdout")
	nRand := flag.Int("rand", 0, "number of random programs to generate")
	seed := flag.Int64("seed", 1, "starting seed for random programs")
	flag.Parse()

	if *one != "" {
		m := progen.Benchmark(*one)
		if m == nil {
			fmt.Fprintf(os.Stderr, "progen: unknown benchmark %q\n", *one)
			os.Exit(1)
		}
		fmt.Print(m.String())
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "progen: -out directory required (or -program)")
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "progen:", err)
		os.Exit(1)
	}
	write := func(name, content string) {
		path := filepath.Join(*out, name+".ir")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "progen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	for _, name := range progen.BenchmarkNames {
		write(name, progen.Benchmark(name).String())
	}
	s := *seed
	for i := 0; i < *nRand; i++ {
		m, used := progen.GenerateFiltered(s, progen.DefaultGen)
		s = used + 1
		write(m.Name, m.String())
	}
}
