module autophase

go 1.22
