package rl

import (
	"math"
	"math/rand"

	"autophase/internal/nn"
)

// PPOConfig holds the Proximal Policy Optimization hyperparameters. The
// defaults follow RLlib's PPO defaults scaled to this problem size with the
// paper's 256×256 fully connected network.
type PPOConfig struct {
	Hidden        []int
	Gamma         float64
	Lambda        float64
	Clip          float64
	LR            float64
	Epochs        int
	MinibatchSize int
	RolloutSteps  int
	EntCoef       float64
	VfCoef        float64
	Seed          int64
	// NoObsFilter disables the running mean/std observation filter
	// (RLlib's default preprocessor, on unless disabled).
	NoObsFilter bool
	// ZeroRewards replicates the paper's RL-PPO1 control: every reward is
	// forced to 0, testing whether learning signal matters.
	ZeroRewards bool
}

// DefaultPPO mirrors the paper's setting (256x256 net).
func DefaultPPO() PPOConfig {
	return PPOConfig{
		Hidden:        []int{256, 256},
		Gamma:         0.99,
		Lambda:        0.95,
		Clip:          0.2,
		LR:            5e-4,
		Epochs:        6,
		MinibatchSize: 64,
		RolloutSteps:  256,
		EntCoef:       0.01,
		VfCoef:        0.5,
		Seed:          1,
	}
}

// PPO is the clipped-surrogate PPO learner.
type PPO struct {
	Cfg    PPOConfig
	Policy *Policy
	Value  *nn.MLP
	Filter *MeanStd
	rng    *rand.Rand
	optP   *nn.Adam
	optV   *nn.Adam

	iter     int
	steps    int
	episodes int
}

// NewPPO builds a PPO agent for the given observation/action shape.
func NewPPO(cfg PPOConfig, obsSize int, dims []int) *PPO {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pol := NewPolicy(rng, obsSize, dims, cfg.Hidden...)
	vsizes := append(append([]int{obsSize}, cfg.Hidden...), 1)
	val := nn.NewMLP(rng, nn.ReLU, vsizes...)
	p := &PPO{Cfg: cfg, Policy: pol, Value: val, rng: rng}
	if !cfg.NoObsFilter {
		p.Filter = NewMeanStd(obsSize)
	}
	p.optP = nn.NewAdam(pol.Net, cfg.LR)
	p.optV = nn.NewAdam(val, cfg.LR)
	p.optP.MaxNorm = 10
	p.optV.MaxNorm = 10
	return p
}

// Act picks an action tuple for obs; greedy selects the mode. The
// observation passes through the (frozen) filter.
func (p *PPO) Act(obs []float64, greedy bool) []int {
	obs = applyFilter(p.Filter, obs)
	if greedy {
		return p.Policy.Greedy(obs)
	}
	a, _ := p.Policy.Sample(p.rng, obs)
	return a
}

// TrainIteration collects one rollout across the environments (cycled
// round-robin on episode end) and performs the PPO update, returning
// iteration statistics.
func (p *PPO) TrainIteration(envs []Env) Stats {
	p.iter++
	buf := make([]Transition, 0, p.Cfg.RolloutSteps)
	ei := p.rng.Intn(len(envs))
	env := envs[ei]
	obs := observeFilter(p.Filter, env.Reset())
	epReward, rewardSum := 0.0, 0.0
	epRews := newRewardWindow(0)

	for len(buf) < p.Cfg.RolloutSteps {
		actions, logp := p.Policy.Sample(p.rng, obs)
		val := p.Value.Forward(obs)[0]
		next, r, done := env.Step(actions)
		if p.Cfg.ZeroRewards {
			r = 0
		}
		buf = append(buf, Transition{
			Obs: append([]float64(nil), obs...), Actions: actions,
			Reward: r, Done: done, LogP: logp, Value: val,
		})
		epReward += r
		rewardSum += r
		obs = observeFilter(p.Filter, next)
		p.steps++
		if done {
			epRews.add(epReward)
			epReward = 0
			p.episodes++
			ei = (ei + 1) % len(envs)
			env = envs[ei]
			obs = observeFilter(p.Filter, env.Reset())
		}
	}
	lastVal := p.Value.Forward(obs)[0]
	computeGAE(buf, p.Cfg.Gamma, p.Cfg.Lambda, lastVal)

	// Advantage normalization (RLlib default).
	var mean, sq float64
	for _, tr := range buf {
		mean += tr.Adv
	}
	mean /= float64(len(buf))
	for _, tr := range buf {
		d := tr.Adv - mean
		sq += d * d
	}
	std := math.Sqrt(sq/float64(len(buf))) + 1e-8
	for i := range buf {
		buf[i].Adv = (buf[i].Adv - mean) / std
	}

	stats := Stats{Iteration: p.iter, TotalSteps: p.steps, TotalEpisodes: p.episodes}
	if epRews.count() > 0 {
		stats.EpisodeRewardMean = epRews.mean()
	} else {
		stats.EpisodeRewardMean = rewardSum
	}

	// Minibatch epochs over the rollout.
	idx := make([]int, len(buf))
	for i := range idx {
		idx[i] = i
	}
	var plSum, vlSum, entSum float64
	var nUpd int
	for e := 0; e < p.Cfg.Epochs; e++ {
		p.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += p.Cfg.MinibatchSize {
			end := start + p.Cfg.MinibatchSize
			if end > len(idx) {
				end = len(idx)
			}
			mb := idx[start:end]
			gp := p.Policy.Net.NewGrads()
			gv := p.Value.NewGrads()
			for _, i := range mb {
				tr := &buf[i]
				logp, logits, ent := p.Policy.LogProb(tr.Obs, tr.Actions)
				ratio := math.Exp(logp - tr.LogP)
				clipped := ratio < 1-p.Cfg.Clip || ratio > 1+p.Cfg.Clip
				// Surrogate: L = -min(r*A, clip(r)*A); gradient flows only
				// through the unclipped branch when it is the active min.
				pgCoef := 0.0
				if !clipped || (tr.Adv > 0 && ratio < 1-p.Cfg.Clip) || (tr.Adv < 0 && ratio > 1+p.Cfg.Clip) {
					pgCoef = tr.Adv * ratio
				}
				scale := 1.0 / float64(len(mb))
				grad := p.Policy.gradForHeads(logits, tr.Actions, pgCoef*scale, p.Cfg.EntCoef*scale)
				p.Policy.Net.Backward(tr.Obs, grad, gp)

				v := p.Value.Forward(tr.Obs)[0]
				dv := v - tr.Ret
				p.Value.Backward(tr.Obs, []float64{2 * p.Cfg.VfCoef * dv * scale}, gv)

				plSum += -pgCoef
				vlSum += dv * dv
				entSum += ent
				nUpd++
			}
			p.optP.Step(p.Policy.Net, gp)
			p.optV.Step(p.Value, gv)
		}
	}
	if nUpd > 0 {
		stats.PolicyLoss = plSum / float64(nUpd)
		stats.ValueLoss = vlSum / float64(nUpd)
		stats.Entropy = entSum / float64(nUpd)
	}
	return stats
}

// Train runs iterations until totalSteps environment steps have been
// consumed, invoking cb (if non-nil) after each iteration.
func (p *PPO) Train(envs []Env, totalSteps int, cb func(Stats)) {
	for p.steps < totalSteps {
		st := p.TrainIteration(envs)
		if cb != nil {
			cb(st)
		}
	}
}
