package rl

import (
	"math/rand"

	"autophase/internal/nn"
)

// DQNConfig holds the deep Q-network hyperparameters. DQN is the algorithm
// the AutoPhase line started from (the FCCM'19 predecessor paper used
// Q-learning before the MLSys'20 paper moved to policy-gradient methods);
// it is included as an extension baseline for single-head action spaces.
type DQNConfig struct {
	Hidden        []int
	Gamma         float64
	LR            float64
	BufferSize    int
	BatchSize     int
	TargetEvery   int     // target-network sync period (gradient steps)
	EpsStart      float64 // epsilon-greedy schedule
	EpsEnd        float64
	EpsDecaySteps int
	LearnStart    int // steps before learning begins
	Seed          int64
}

// DefaultDQN is a small-problem configuration.
func DefaultDQN() DQNConfig {
	return DQNConfig{
		Hidden:        []int{64, 64},
		Gamma:         0.99,
		LR:            1e-3,
		BufferSize:    4096,
		BatchSize:     32,
		TargetEvery:   200,
		EpsStart:      1.0,
		EpsEnd:        0.05,
		EpsDecaySteps: 2000,
		LearnStart:    200,
		Seed:          1,
	}
}

// replayItem is one transition in the replay buffer.
type replayItem struct {
	obs    []float64
	action int
	reward float64
	next   []float64
	done   bool
}

// DQN is a deep Q-learning agent over a single categorical action head.
type DQN struct {
	Cfg    DQNConfig
	Q      *nn.MLP
	Target *nn.MLP
	Filter *MeanStd

	rng      *rand.Rand
	opt      *nn.Adam
	buf      []replayItem
	bufPos   int
	steps    int
	episodes int
	updates  int
}

// NewDQN builds the online and target networks.
func NewDQN(cfg DQNConfig, obsSize, numActions int) *DQN {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append(append([]int{obsSize}, cfg.Hidden...), numActions)
	q := nn.NewMLP(rng, nn.ReLU, sizes...)
	d := &DQN{
		Cfg: cfg, Q: q, Target: q.Clone(),
		Filter: NewMeanStd(obsSize), rng: rng,
	}
	d.opt = nn.NewAdam(q, cfg.LR)
	d.opt.MaxNorm = 10
	return d
}

func (d *DQN) epsilon() float64 {
	frac := float64(d.steps) / float64(d.Cfg.EpsDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return d.Cfg.EpsStart + (d.Cfg.EpsEnd-d.Cfg.EpsStart)*frac
}

// Act picks an action; greedy disables exploration. The observation passes
// through the frozen filter.
func (d *DQN) Act(obs []float64, greedy bool) []int {
	fobs := applyFilter(d.Filter, obs)
	if !greedy && d.rng.Float64() < d.epsilon() {
		n := d.Q.Sizes[len(d.Q.Sizes)-1]
		return []int{d.rng.Intn(n)}
	}
	return []int{nn.Argmax(d.Q.Forward(fobs))}
}

// Train runs epsilon-greedy episodes with replay until totalSteps
// environment steps are consumed. Only single-head environments are
// supported.
func (d *DQN) Train(env Env, totalSteps int, cb func(Stats)) {
	if len(env.ActionDims()) != 1 {
		panic("rl: DQN supports single-head action spaces only")
	}
	obs := observeFilter(d.Filter, env.Reset())
	epReward := 0.0
	epRews := newRewardWindow(32)
	for d.steps < totalSteps {
		var action int
		if d.rng.Float64() < d.epsilon() {
			action = d.rng.Intn(env.ActionDims()[0])
		} else {
			action = nn.Argmax(d.Q.Forward(obs))
		}
		rawNext, r, done := env.Step([]int{action})
		next := observeFilter(d.Filter, rawNext)
		d.push(replayItem{
			obs: append([]float64(nil), obs...), action: action,
			reward: r, next: append([]float64(nil), next...), done: done,
		})
		epReward += r
		obs = next
		d.steps++
		if len(d.buf) >= d.Cfg.LearnStart {
			d.learn()
		}
		if done {
			d.episodes++
			epRews.add(epReward)
			if cb != nil {
				cb(Stats{
					TotalSteps: d.steps, TotalEpisodes: d.episodes,
					EpisodeRewardMean: epRews.mean(),
				})
			}
			epReward = 0
			obs = observeFilter(d.Filter, env.Reset())
		}
	}
}

func (d *DQN) push(it replayItem) {
	if len(d.buf) < d.Cfg.BufferSize {
		d.buf = append(d.buf, it)
		return
	}
	d.buf[d.bufPos] = it
	d.bufPos = (d.bufPos + 1) % d.Cfg.BufferSize
}

// learn performs one minibatch TD update against the target network.
func (d *DQN) learn() {
	g := d.Q.NewGrads()
	scale := 1.0 / float64(d.Cfg.BatchSize)
	for k := 0; k < d.Cfg.BatchSize; k++ {
		it := d.buf[d.rng.Intn(len(d.buf))]
		target := it.reward
		if !it.done {
			target += d.Cfg.Gamma * maxOf(d.Target.Forward(it.next))
		}
		qs := d.Q.Forward(it.obs)
		td := qs[it.action] - target
		grad := make([]float64, len(qs))
		grad[it.action] = 2 * td * scale
		d.Q.Backward(it.obs, grad, g)
	}
	d.opt.Step(d.Q, g)
	d.updates++
	if d.updates%d.Cfg.TargetEvery == 0 {
		d.Target.CopyFrom(d.Q)
	}
}

func maxOf(v []float64) float64 {
	best := v[0]
	for _, x := range v[1:] {
		if x > best {
			best = x
		}
	}
	return best
}
