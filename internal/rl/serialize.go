package rl

import (
	"encoding/json"
	"fmt"
	"os"

	"autophase/internal/nn"
)

// Snapshot is the persisted form of a trained agent: the policy network,
// the action-head layout, and the frozen observation-filter statistics, so
// inference sessions reproduce training-time behaviour exactly.
type Snapshot struct {
	Kind       string    `json:"kind"` // "ppo", "a3c", "es"
	Dims       []int     `json:"dims"`
	Policy     *nn.MLP   `json:"policy"`
	Value      *nn.MLP   `json:"value,omitempty"`
	FilterN    float64   `json:"filter_n"`
	FilterMean []float64 `json:"filter_mean"`
	FilterM2   []float64 `json:"filter_m2"`
}

func filterState(f *MeanStd) (float64, []float64, []float64) {
	if f == nil {
		return 0, nil, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n, append([]float64(nil), f.mean...), append([]float64(nil), f.m2...)
}

func restoreFilter(n float64, mean, m2 []float64) *MeanStd {
	if mean == nil {
		return nil
	}
	return &MeanStd{n: n, mean: mean, m2: m2}
}

// Snapshot captures the PPO agent's inference-relevant state.
func (p *PPO) Snapshot() *Snapshot {
	n, mean, m2 := filterState(p.Filter)
	return &Snapshot{
		Kind: "ppo", Dims: p.Policy.Dims,
		Policy: p.Policy.Net, Value: p.Value,
		FilterN: n, FilterMean: mean, FilterM2: m2,
	}
}

// RestorePPO rebuilds an inference-ready PPO agent from a snapshot.
func RestorePPO(s *Snapshot) (*PPO, error) {
	if s.Kind != "ppo" {
		return nil, fmt.Errorf("rl: snapshot kind %q is not ppo", s.Kind)
	}
	cfg := DefaultPPO()
	p := NewPPO(cfg, s.Policy.Sizes[0], s.Dims)
	p.Policy.Net = s.Policy
	if s.Value != nil {
		p.Value = s.Value
	}
	p.Filter = restoreFilter(s.FilterN, s.FilterMean, s.FilterM2)
	return p, nil
}

// Save writes the snapshot to a JSON file.
func (s *Snapshot) Save(path string) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSnapshot reads a snapshot from a JSON file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("rl: %s: %w", path, err)
	}
	if s.Policy == nil || len(s.Dims) == 0 {
		return nil, fmt.Errorf("rl: %s: incomplete snapshot", path)
	}
	return &s, nil
}
