// Package rl implements the deep reinforcement-learning algorithms the
// paper evaluates — PPO (clipped surrogate with GAE), A3C (asynchronous
// advantage actor-critic) and OpenAI-style evolution strategies — over a
// gym-like environment interface with factored categorical actions (the
// multiple-passes-per-action variant of §5.2 needs N simultaneous
// sub-actions).
package rl

import (
	"math/rand"

	"autophase/internal/nn"
)

// Env is a gym-like episodic environment. Actions are factored: one
// categorical choice per entry of ActionDims (a single-action space is
// ActionDims() == [K]).
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies one action tuple; it returns the next observation, the
	// reward, and whether the episode ended.
	Step(actions []int) (obs []float64, reward float64, done bool)
	// ActionDims lists the cardinality of each action head.
	ActionDims() []int
	// ObsSize is the observation vector length.
	ObsSize() int
}

// Policy wraps a logits network over factored heads.
type Policy struct {
	Net  *nn.MLP
	Dims []int
}

// NewPolicy builds a policy MLP with the given hidden sizes.
func NewPolicy(rng *rand.Rand, obsSize int, dims []int, hidden ...int) *Policy {
	total := 0
	for _, d := range dims {
		total += d
	}
	sizes := append(append([]int{obsSize}, hidden...), total)
	return &Policy{Net: nn.NewMLP(rng, nn.ReLU, sizes...), Dims: dims}
}

// heads slices flat logits into per-head logit vectors.
func (p *Policy) heads(logits []float64) [][]float64 {
	out := make([][]float64, len(p.Dims))
	off := 0
	for i, d := range p.Dims {
		out[i] = logits[off : off+d]
		off += d
	}
	return out
}

// Sample draws an action tuple and returns it with its total log-prob.
func (p *Policy) Sample(rng *rand.Rand, obs []float64) (actions []int, logp float64) {
	logits := p.Net.Forward(obs)
	for _, h := range p.heads(logits) {
		probs := nn.Softmax(h)
		a := nn.SampleCategorical(rng, probs)
		actions = append(actions, a)
		logp += nn.LogSoftmax(h)[a]
	}
	return actions, logp
}

// Greedy returns the argmax action tuple.
func (p *Policy) Greedy(obs []float64) []int {
	logits := p.Net.Forward(obs)
	var actions []int
	for _, h := range p.heads(logits) {
		actions = append(actions, nn.Argmax(h))
	}
	return actions
}

// LogProb computes the total log-probability of an action tuple, plus the
// per-head logits (for gradient computation) and mean entropy.
func (p *Policy) LogProb(obs []float64, actions []int) (logp float64, logits []float64, entropy float64) {
	logits = p.Net.Forward(obs)
	hs := p.heads(logits)
	for i, h := range hs {
		logp += nn.LogSoftmax(h)[actions[i]]
		entropy += nn.Entropy(nn.Softmax(h))
	}
	entropy /= float64(len(hs))
	return logp, logits, entropy
}

// gradForHeads assembles dL/dlogits (flat) from per-head contributions:
// policy-gradient coefficient pgCoef (multiplying -grad logp) and entropy
// bonus entCoef (ascending entropy => descending -entCoef*H).
func (p *Policy) gradForHeads(logits []float64, actions []int, pgCoef, entCoef float64) []float64 {
	grad := make([]float64, len(logits))
	off := 0
	for i, d := range p.Dims {
		h := logits[off : off+d]
		pg := nn.CategoricalGrad(h, actions[i], pgCoef)
		var eg []float64
		if entCoef != 0 {
			eg = nn.EntropyGrad(h)
		}
		for j := 0; j < d; j++ {
			g := pg[j]
			if eg != nil {
				g -= entCoef * eg[j] / float64(len(p.Dims))
			}
			grad[off+j] = g
		}
		off += d
	}
	return grad
}

// Transition is one environment step in a rollout buffer.
type Transition struct {
	Obs     []float64
	Actions []int
	Reward  float64
	Done    bool
	LogP    float64
	Value   float64
	Adv     float64
	Ret     float64
}

// computeGAE fills Adv and Ret over a rollout using generalized advantage
// estimation: delta_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t) and
// adv_t = delta_t + γλ·(1−done_t)·adv_{t+1}. lastValue bootstraps a rollout
// truncated mid-episode.
func computeGAE(buf []Transition, gamma, lambda, lastValue float64) {
	adv := 0.0
	nextValue := lastValue
	for i := len(buf) - 1; i >= 0; i-- {
		nonTerm := 1.0
		if buf[i].Done {
			nonTerm = 0
		}
		delta := buf[i].Reward + gamma*nextValue*nonTerm - buf[i].Value
		adv = delta + gamma*lambda*nonTerm*adv
		buf[i].Adv = adv
		buf[i].Ret = adv + buf[i].Value
		nextValue = buf[i].Value
	}
}

// applyFilter standardizes obs through f without updating its statistics
// (the frozen, inference-time path); a nil filter passes obs through.
func applyFilter(f *MeanStd, obs []float64) []float64 {
	if f == nil {
		return obs
	}
	return f.Apply(obs)
}

// observeFilter folds obs into f's running statistics and returns it
// standardized (the training-time path); a nil filter passes obs through.
func observeFilter(f *MeanStd, obs []float64) []float64 {
	if f == nil {
		return obs
	}
	return f.ObserveApply(obs)
}

// rewardWindow tracks a sliding window of finished-episode returns — the
// EpisodeRewardMean bookkeeping every trainer needs. size<=0 keeps every
// return.
type rewardWindow struct {
	size int
	rews []float64
}

func newRewardWindow(size int) *rewardWindow { return &rewardWindow{size: size} }

func (w *rewardWindow) add(r float64) {
	w.rews = append(w.rews, r)
	if w.size > 0 && len(w.rews) > w.size {
		w.rews = w.rews[len(w.rews)-w.size:]
	}
}

func (w *rewardWindow) count() int { return len(w.rews) }

func (w *rewardWindow) mean() float64 {
	if len(w.rews) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range w.rews {
		s += r
	}
	return s / float64(len(w.rews))
}

// Stats reports one training iteration.
type Stats struct {
	Iteration         int
	TotalSteps        int
	TotalEpisodes     int
	EpisodeRewardMean float64
	PolicyLoss        float64
	ValueLoss         float64
	Entropy           float64
}
