package rl

import (
	"math"
	"sync"
)

// MeanStd is a running observation normalizer (Welford's algorithm) —
// RLlib's default MeanStdFilter, which the paper's agents ran behind. Raw
// program-feature observations span orders of magnitude; without the
// filter the policy network saturates before it can learn.
type MeanStd struct {
	mu   sync.Mutex
	n    float64
	mean []float64
	m2   []float64
}

// NewMeanStd builds a filter for dim-sized observations.
func NewMeanStd(dim int) *MeanStd {
	return &MeanStd{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Observe folds one raw observation into the running statistics.
func (f *MeanStd) Observe(obs []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	for i, x := range obs {
		if i >= len(f.mean) {
			break
		}
		d := x - f.mean[i]
		f.mean[i] += d / f.n
		f.m2[i] += d * (x - f.mean[i])
	}
}

// Apply returns the standardized observation (x−mean)/std without updating
// the statistics.
func (f *MeanStd) Apply(obs []float64) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]float64, len(obs))
	for i, x := range obs {
		if i >= len(f.mean) || f.n < 2 {
			out[i] = x
			continue
		}
		std := math.Sqrt(f.m2[i]/(f.n-1)) + 1e-8
		out[i] = (x - f.mean[i]) / std
	}
	return out
}

// ObserveApply updates the statistics with obs and returns it filtered —
// the training-time path.
func (f *MeanStd) ObserveApply(obs []float64) []float64 {
	f.Observe(obs)
	return f.Apply(obs)
}
