package rl

import (
	"math/rand"
	"testing"
)

// chainEnv is a small contextual task: the agent sees a one-hot context and
// earns 1 for matching it, over 6-step episodes. Solvable only by using the
// observation, so it validates that the learners actually learn.
type chainEnv struct {
	rng  *rand.Rand
	ctx  int
	step int
	n    int
}

func newChainEnv(seed int64) *chainEnv {
	return &chainEnv{rng: rand.New(rand.NewSource(seed)), n: 4}
}

func (c *chainEnv) obs() []float64 {
	o := make([]float64, c.n)
	o[c.ctx] = 1
	return o
}

func (c *chainEnv) Reset() []float64 {
	c.step = 0
	c.ctx = c.rng.Intn(c.n)
	return c.obs()
}

func (c *chainEnv) Step(actions []int) ([]float64, float64, bool) {
	r := 0.0
	if actions[0] == c.ctx {
		r = 1
	}
	c.step++
	c.ctx = c.rng.Intn(c.n)
	return c.obs(), r, c.step >= 6
}

func (c *chainEnv) ActionDims() []int { return []int{c.n} }
func (c *chainEnv) ObsSize() int      { return c.n }

func TestPPOLearnsContextualTask(t *testing.T) {
	cfg := DefaultPPO()
	cfg.Hidden = []int{32}
	cfg.RolloutSteps = 128
	cfg.Seed = 3
	p := NewPPO(cfg, 4, []int{4})
	envs := []Env{newChainEnv(1), newChainEnv(2)}
	var last Stats
	p.Train(envs, 12000, func(s Stats) { last = s })
	if last.EpisodeRewardMean < 4.5 { // max 6
		t.Fatalf("PPO failed to learn: reward mean %.2f", last.EpisodeRewardMean)
	}
	// Greedy policy should match contexts.
	correct := 0
	for ctx := 0; ctx < 4; ctx++ {
		o := make([]float64, 4)
		o[ctx] = 1
		if p.Act(o, true)[0] == ctx {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("greedy policy only matches %d/4 contexts", correct)
	}
}

func TestPPOZeroRewardsDoesNotLearn(t *testing.T) {
	cfg := DefaultPPO()
	cfg.Hidden = []int{32}
	cfg.RolloutSteps = 128
	cfg.Seed = 3
	cfg.ZeroRewards = true // the paper's RL-PPO1 control
	p := NewPPO(cfg, 4, []int{4})
	envs := []Env{newChainEnv(1)}
	p.Train(envs, 6000, nil)
	correct := 0
	for ctx := 0; ctx < 4; ctx++ {
		o := make([]float64, 4)
		o[ctx] = 1
		if p.Act(o, true)[0] == ctx {
			correct++
		}
	}
	if correct == 4 {
		t.Fatalf("zero-reward PPO should not solve the task")
	}
}

func TestA3CLearnsContextualTask(t *testing.T) {
	cfg := DefaultA3C()
	cfg.Hidden = []int{32}
	cfg.Workers = 3
	cfg.Seed = 5
	a := NewA3C(cfg, 4, []int{4})
	var last Stats
	a.Train(func(w int) Env { return newChainEnv(int64(10 + w)) }, 20000,
		func(s Stats) { last = s })
	if last.EpisodeRewardMean < 4.0 {
		t.Fatalf("A3C failed to learn: reward mean %.2f", last.EpisodeRewardMean)
	}
}

func TestESImprovesFitness(t *testing.T) {
	cfg := DefaultES()
	cfg.Hidden = []int{16}
	cfg.Population = 10
	cfg.Seed = 7
	e := NewES(cfg, 4, []int{4})
	envs := []Env{newChainEnv(21), newChainEnv(22)}
	first := e.Generation(envs)
	var last Stats
	for i := 0; i < 60; i++ {
		last = e.Generation(envs)
	}
	if last.EpisodeRewardMean <= first.EpisodeRewardMean {
		t.Fatalf("ES did not improve: first %.2f last %.2f",
			first.EpisodeRewardMean, last.EpisodeRewardMean)
	}
}

func TestMultiHeadPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPolicy(rng, 3, []int{3, 3, 3}, 16)
	obs := []float64{0.1, 0.5, -0.3}
	a, logp := p.Sample(rng, obs)
	if len(a) != 3 {
		t.Fatalf("want 3 heads, got %d", len(a))
	}
	for _, x := range a {
		if x < 0 || x > 2 {
			t.Fatalf("action out of range: %v", a)
		}
	}
	lp, _, ent := p.LogProb(obs, a)
	if lp > 0 || ent < 0 {
		t.Fatalf("bad logp %f or entropy %f", lp, ent)
	}
	if diff := lp - logp; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("LogProb disagrees with Sample: %f vs %f", lp, logp)
	}
}

func TestGAEMatchesHandComputed(t *testing.T) {
	buf := []Transition{
		{Reward: 1, Value: 0.5},
		{Reward: 0, Value: 0.4},
		{Reward: 2, Value: 0.3, Done: true},
	}
	gamma, lambda := 0.9, 0.8
	computeGAE(buf, gamma, lambda, 99 /* ignored: final transition is done */)
	// Backward by hand.
	d2 := 2 + 0 - 0.3
	a2 := d2
	d1 := 0 + gamma*0.3 - 0.4
	a1 := d1 + gamma*lambda*a2
	d0 := 1 + gamma*0.4 - 0.5
	a0 := d0 + gamma*lambda*a1
	for i, want := range []float64{a0, a1, a2} {
		if diff := buf[i].Adv - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("adv[%d]=%f want %f", i, buf[i].Adv, want)
		}
		if diff := buf[i].Ret - (want + buf[i].Value); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ret[%d] mismatch", i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultPPO()
	cfg.Hidden = []int{16}
	p := NewPPO(cfg, 4, []int{4})
	envs := []Env{newChainEnv(1)}
	p.Train(envs, 1500, nil)

	path := t.TempDir() + "/agent.json"
	if err := p.Snapshot().Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := RestorePPO(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The restored agent must act identically (greedy) on arbitrary obs.
	for ctx := 0; ctx < 4; ctx++ {
		o := make([]float64, 4)
		o[ctx] = 1
		if a, b := p.Act(o, true)[0], q.Act(o, true)[0]; a != b {
			t.Fatalf("restored agent diverges: %d vs %d on ctx %d", a, b, ctx)
		}
	}
}

func TestSnapshotRejectsBadKind(t *testing.T) {
	s := &Snapshot{Kind: "es"}
	if _, err := RestorePPO(s); err == nil {
		t.Fatal("accepted wrong snapshot kind")
	}
	if _, err := LoadSnapshot("/nonexistent/agent.json"); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestDQNLearnsContextualTask(t *testing.T) {
	cfg := DefaultDQN()
	cfg.Hidden = []int{32}
	cfg.Seed = 13
	d := NewDQN(cfg, 4, 4)
	env := newChainEnv(31)
	var last Stats
	d.Train(env, 10000, func(s Stats) { last = s })
	if last.EpisodeRewardMean < 4.0 { // max 6
		t.Fatalf("DQN failed to learn: reward mean %.2f", last.EpisodeRewardMean)
	}
	correct := 0
	for ctx := 0; ctx < 4; ctx++ {
		o := make([]float64, 4)
		o[ctx] = 1
		if d.Act(o, true)[0] == ctx {
			correct++
		}
	}
	if correct < 3 {
		t.Fatalf("greedy DQN policy only matches %d/4 contexts", correct)
	}
}

func TestDQNEpsilonSchedule(t *testing.T) {
	cfg := DefaultDQN()
	d := NewDQN(cfg, 2, 3)
	if e := d.epsilon(); e != cfg.EpsStart {
		t.Fatalf("initial epsilon %f", e)
	}
	d.steps = cfg.EpsDecaySteps * 2
	if e := d.epsilon(); e < cfg.EpsEnd-1e-9 || e > cfg.EpsEnd+1e-9 {
		t.Fatalf("final epsilon %f", e)
	}
}

func TestDQNReplayRingBuffer(t *testing.T) {
	cfg := DefaultDQN()
	cfg.BufferSize = 8
	d := NewDQN(cfg, 2, 2)
	for i := 0; i < 20; i++ {
		d.push(replayItem{reward: float64(i)})
	}
	if len(d.buf) != 8 {
		t.Fatalf("buffer grew past capacity: %d", len(d.buf))
	}
	// Oldest entries must have been overwritten.
	minR := d.buf[0].reward
	for _, it := range d.buf {
		if it.reward < minR {
			minR = it.reward
		}
	}
	if minR < 8 {
		t.Fatalf("ring buffer kept stale entries: min reward %f", minR)
	}
}
