package rl

import (
	"math"
	"math/rand"
	"sync"

	"autophase/internal/nn"
)

// A3CConfig holds the asynchronous advantage actor-critic hyperparameters.
type A3CConfig struct {
	Hidden  []int
	Gamma   float64
	LR      float64
	EntCoef float64
	VfCoef  float64
	NSteps  int // n-step bootstrap horizon
	Workers int
	Seed    int64
}

// DefaultA3C mirrors the paper's setting.
func DefaultA3C() A3CConfig {
	return A3CConfig{
		Hidden:  []int{256, 256},
		Gamma:   0.99,
		LR:      5e-4,
		EntCoef: 0.01,
		VfCoef:  0.5,
		NSteps:  8,
		Workers: 4,
		Seed:    1,
	}
}

// A3C runs asynchronous workers that compute n-step actor-critic gradients
// against a shared parameter server (mutex-guarded, as in the original
// Hogwild-style implementation).
type A3C struct {
	Cfg    A3CConfig
	Policy *Policy
	Value  *nn.MLP
	Filter *MeanStd

	mu       sync.Mutex
	optP     *nn.Adam
	optV     *nn.Adam
	steps    int
	episodes int
	epRews   *rewardWindow
}

// NewA3C builds the shared networks.
func NewA3C(cfg A3CConfig, obsSize int, dims []int) *A3C {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pol := NewPolicy(rng, obsSize, dims, cfg.Hidden...)
	vsizes := append(append([]int{obsSize}, cfg.Hidden...), 1)
	val := nn.NewMLP(rng, nn.ReLU, vsizes...)
	a := &A3C{Cfg: cfg, Policy: pol, Value: val, Filter: NewMeanStd(obsSize),
		epRews: newRewardWindow(64)}
	a.optP = nn.NewAdam(pol.Net, cfg.LR)
	a.optV = nn.NewAdam(val, cfg.LR)
	a.optP.MaxNorm = 10
	a.optV.MaxNorm = 10
	return a
}

// Act picks an action tuple with the shared policy.
func (a *A3C) Act(obs []float64, greedy bool) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	obs = applyFilter(a.Filter, obs)
	if greedy {
		return a.Policy.Greedy(obs)
	}
	rng := rand.New(rand.NewSource(int64(a.steps) + a.Cfg.Seed))
	act, _ := a.Policy.Sample(rng, obs)
	return act
}

// Train runs the asynchronous workers until totalSteps environment steps
// are consumed. envFactory must return an independent environment per
// worker (they run concurrently).
func (a *A3C) Train(envFactory func(worker int) Env, totalSteps int, cb func(Stats)) {
	var wg sync.WaitGroup
	per := a.Cfg.Workers
	if per < 1 {
		per = 1
	}
	for w := 0; w < per; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a.worker(w, envFactory(w), totalSteps, cb)
		}(w)
	}
	wg.Wait()
}

func (a *A3C) worker(id int, env Env, totalSteps int, cb func(Stats)) {
	rng := rand.New(rand.NewSource(a.Cfg.Seed + int64(id)*7919))
	// Local snapshots of the shared parameters.
	a.mu.Lock()
	localP := a.Policy.Net.Clone()
	localV := a.Value.Clone()
	a.mu.Unlock()
	pol := &Policy{Net: localP, Dims: a.Policy.Dims}

	obs := observeFilter(a.Filter, env.Reset())
	epReward := 0.0
	for {
		a.mu.Lock()
		if a.steps >= totalSteps {
			a.mu.Unlock()
			return
		}
		localP.CopyFrom(a.Policy.Net)
		localV.CopyFrom(a.Value)
		a.mu.Unlock()

		// Collect up to NSteps transitions with the local nets.
		var buf []Transition
		done := false
		for t := 0; t < a.Cfg.NSteps && !done; t++ {
			actions, logp := pol.Sample(rng, obs)
			v := localV.Forward(obs)[0]
			next, r, d := env.Step(actions)
			buf = append(buf, Transition{
				Obs: append([]float64(nil), obs...), Actions: actions,
				Reward: r, Done: d, LogP: logp, Value: v,
			})
			epReward += r
			obs = observeFilter(a.Filter, next)
			done = d
		}
		// n-step returns with bootstrap.
		ret := 0.0
		if !done {
			ret = localV.Forward(obs)[0]
		}
		rets := make([]float64, len(buf))
		advs := make([]float64, len(buf))
		for i := len(buf) - 1; i >= 0; i-- {
			ret = buf[i].Reward + a.Cfg.Gamma*ret
			rets[i] = ret
			advs[i] = ret - buf[i].Value
		}
		// Normalize advantages within the batch: raw rewards are cycle
		// counts whose magnitude would otherwise saturate the policy.
		var mean, sq float64
		for _, v := range advs {
			mean += v
		}
		mean /= float64(len(advs))
		for _, v := range advs {
			d := v - mean
			sq += d * d
		}
		std := math.Sqrt(sq/float64(len(advs))) + 1e-8
		gp := localP.NewGrads()
		gv := localV.NewGrads()
		for i := range buf {
			tr := &buf[i]
			adv := (advs[i] - mean) / std
			_, logits, _ := pol.LogProb(tr.Obs, tr.Actions)
			grad := pol.gradForHeads(logits, tr.Actions, adv, a.Cfg.EntCoef)
			localP.Backward(tr.Obs, grad, gp)
			v := localV.Forward(tr.Obs)[0]
			localV.Backward(tr.Obs, []float64{2 * a.Cfg.VfCoef * (v - rets[i])}, gv)
		}
		scale := 1.0 / float64(len(buf))
		gp.Scale(scale)
		gv.Scale(scale)

		// Apply to the shared parameters.
		a.mu.Lock()
		a.optP.Step(a.Policy.Net, gp)
		a.optV.Step(a.Value, gv)
		a.steps += len(buf)
		if done {
			a.episodes++
			a.epRews.add(epReward)
			if cb != nil {
				cb(Stats{
					TotalSteps:        a.steps,
					TotalEpisodes:     a.episodes,
					EpisodeRewardMean: a.epRews.mean(),
				})
			}
		}
		a.mu.Unlock()
		if done {
			epReward = 0
			obs = observeFilter(a.Filter, env.Reset())
		}
	}
}
