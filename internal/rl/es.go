package rl

import (
	"math"
	"math/rand"
)

// ESConfig holds the evolution-strategies hyperparameters (Salimans et al.
// 2017: antithetic sampling, rank-shaped fitness, SGD on the natural
// gradient estimate). The paper's RL-ES uses this to update the same policy
// network A3C uses, replacing backpropagation.
type ESConfig struct {
	Hidden          []int
	Population      int // perturbation pairs per generation
	Sigma           float64
	LR              float64
	Seed            int64
	EpisodesPerEval int
}

// DefaultES mirrors the paper's setting.
func DefaultES() ESConfig {
	return ESConfig{
		Hidden:          []int{256, 256},
		Population:      8,
		Sigma:           0.05,
		LR:              0.02,
		Seed:            1,
		EpisodesPerEval: 1,
	}
}

// ES trains a policy network with evolution strategies.
type ES struct {
	Cfg    ESConfig
	Policy *Policy
	Filter *MeanStd
	rng    *rand.Rand

	steps    int
	episodes int
}

// NewES builds the policy network.
func NewES(cfg ESConfig, obsSize int, dims []int) *ES {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &ES{Cfg: cfg, Policy: NewPolicy(rng, obsSize, dims, cfg.Hidden...),
		Filter: NewMeanStd(obsSize), rng: rng}
}

// Act picks an action tuple.
func (e *ES) Act(obs []float64, greedy bool) []int {
	obs = e.Filter.Apply(obs)
	if greedy {
		return e.Policy.Greedy(obs)
	}
	a, _ := e.Policy.Sample(e.rng, obs)
	return a
}

// evaluate runs the (stochastic) policy for EpisodesPerEval episodes and
// returns the mean return.
func (e *ES) evaluate(pol *Policy, env Env) float64 {
	total := 0.0
	for ep := 0; ep < e.Cfg.EpisodesPerEval; ep++ {
		obs := e.Filter.ObserveApply(env.Reset())
		for {
			a, _ := pol.Sample(e.rng, obs)
			next, r, done := env.Step(a)
			total += r
			e.steps++
			obs = e.Filter.ObserveApply(next)
			if done {
				e.episodes++
				break
			}
		}
	}
	return total / float64(e.Cfg.EpisodesPerEval)
}

// Generation runs one ES generation over the environments (each
// perturbation is evaluated on a cycling environment) and applies the
// meta-update. It returns iteration statistics.
func (e *ES) Generation(envs []Env) Stats {
	n := e.Policy.Net.NumParams()
	type cand struct {
		eps []float64
		fit float64
	}
	cands := make([]cand, 0, 2*e.Cfg.Population)
	ei := 0
	for p := 0; p < e.Cfg.Population; p++ {
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = e.rng.NormFloat64()
		}
		for _, sign := range []float64{1, -1} {
			trial := e.Policy.Net.Clone()
			signed := make([]float64, n)
			for i := range eps {
				signed[i] = sign * eps[i]
			}
			trial.AddNoise(signed, e.Cfg.Sigma)
			tp := &Policy{Net: trial, Dims: e.Policy.Dims}
			fit := e.evaluate(tp, envs[ei%len(envs)])
			ei++
			cands = append(cands, cand{signed, fit})
		}
	}
	// Rank-shaped fitness (centered ranks), as in Salimans et al.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if cands[order[j]].fit < cands[order[i]].fit {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	shaped := make([]float64, len(cands))
	for rank, idx := range order {
		shaped[idx] = float64(rank)/float64(len(cands)-1) - 0.5
	}
	// Gradient estimate g = (1/(N*sigma)) * sum shaped_i * eps_i, applied
	// ascending (we maximize return): theta += lr * g.
	upd := make([]float64, n)
	for i, c := range cands {
		w := shaped[i]
		for k, v := range c.eps {
			upd[k] += w * v
		}
	}
	e.Policy.Net.AddNoise(upd, e.Cfg.LR/(float64(len(cands))*e.Cfg.Sigma))

	best := math.Inf(-1)
	mean := 0.0
	for _, c := range cands {
		mean += c.fit
		if c.fit > best {
			best = c.fit
		}
	}
	mean /= float64(len(cands))
	return Stats{
		TotalSteps:        e.steps,
		TotalEpisodes:     e.episodes,
		EpisodeRewardMean: mean,
	}
}

// Train runs generations until totalSteps environment steps are consumed.
func (e *ES) Train(envs []Env, totalSteps int, cb func(Stats)) {
	for e.steps < totalSteps {
		st := e.Generation(envs)
		if cb != nil {
			cb(st)
		}
	}
}
