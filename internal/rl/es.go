package rl

import (
	"math"
	"math/rand"
	"sync"
)

// ESConfig holds the evolution-strategies hyperparameters (Salimans et al.
// 2017: antithetic sampling, rank-shaped fitness, SGD on the natural
// gradient estimate). The paper's RL-ES uses this to update the same policy
// network A3C uses, replacing backpropagation.
type ESConfig struct {
	Hidden          []int
	Population      int // perturbation pairs per generation
	Sigma           float64
	LR              float64
	Seed            int64
	EpisodesPerEval int
	// Workers caps how many perturbations are evaluated concurrently.
	// Parallelism comes from running different environments at once:
	// candidate i always executes on envs[i%len(envs)], candidates sharing
	// an environment run in submission order, every candidate samples its
	// actions from a private RNG stream seeded before evaluation starts,
	// and the observation filter is frozen during the generation and
	// updated afterwards in candidate order — so a generation's outcome is
	// bit-identical at Workers=1 and Workers=N.
	Workers int
}

// DefaultES mirrors the paper's setting.
func DefaultES() ESConfig {
	return ESConfig{
		Hidden:          []int{256, 256},
		Population:      8,
		Sigma:           0.05,
		LR:              0.02,
		Seed:            1,
		EpisodesPerEval: 1,
		Workers:         1,
	}
}

// ES trains a policy network with evolution strategies.
type ES struct {
	Cfg    ESConfig
	Policy *Policy
	Filter *MeanStd
	rng    *rand.Rand

	steps    int
	episodes int
}

// NewES builds the policy network.
func NewES(cfg ESConfig, obsSize int, dims []int) *ES {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &ES{Cfg: cfg, Policy: NewPolicy(rng, obsSize, dims, cfg.Hidden...),
		Filter: NewMeanStd(obsSize), rng: rng}
}

// Act picks an action tuple.
func (e *ES) Act(obs []float64, greedy bool) []int {
	obs = applyFilter(e.Filter, obs)
	if greedy {
		return e.Policy.Greedy(obs)
	}
	a, _ := e.Policy.Sample(e.rng, obs)
	return a
}

// esCand is one perturbation under evaluation: its signed noise, the
// perturbed policy, a private action-sampling RNG, and the rollout record
// (raw observations for the deferred filter update, step/episode counts).
type esCand struct {
	eps      []float64
	pol      *Policy
	rng      *rand.Rand
	fit      float64
	obs      [][]float64
	steps    int
	episodes int
}

// evaluate runs one candidate for EpisodesPerEval episodes on env. The
// observation filter is applied frozen; raw observations are recorded so
// Generation can fold them into the filter deterministically afterwards.
func (e *ES) evaluate(c *esCand, env Env) {
	for ep := 0; ep < e.Cfg.EpisodesPerEval; ep++ {
		raw := env.Reset()
		c.obs = append(c.obs, raw)
		obs := applyFilter(e.Filter, raw)
		for {
			a, _ := c.pol.Sample(c.rng, obs)
			next, r, done := env.Step(a)
			c.fit += r
			c.steps++
			c.obs = append(c.obs, next)
			obs = applyFilter(e.Filter, next)
			if done {
				c.episodes++
				break
			}
		}
	}
	c.fit /= float64(e.Cfg.EpisodesPerEval)
}

// Generation runs one ES generation over the environments (candidate i is
// evaluated on envs[i%len(envs)], concurrently up to Cfg.Workers
// environments at a time) and applies the meta-update. It returns
// iteration statistics.
func (e *ES) Generation(envs []Env) Stats {
	n := e.Policy.Net.NumParams()
	cands := make([]*esCand, 0, 2*e.Cfg.Population)
	// All shared-RNG draws (noise and per-candidate action seeds) happen
	// here, sequentially, before any evaluation starts.
	for p := 0; p < e.Cfg.Population; p++ {
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = e.rng.NormFloat64()
		}
		for _, sign := range []float64{1, -1} {
			trial := e.Policy.Net.Clone()
			signed := make([]float64, n)
			for i := range eps {
				signed[i] = sign * eps[i]
			}
			trial.AddNoise(signed, e.Cfg.Sigma)
			cands = append(cands, &esCand{
				eps: signed,
				pol: &Policy{Net: trial, Dims: e.Policy.Dims},
				rng: rand.New(rand.NewSource(e.rng.Int63())),
			})
		}
	}
	// Evaluate. One goroutine per environment group (candidates i with
	// i%len(envs) == g run in order on envs[g]), at most Workers groups in
	// flight; workers<=1 is the plain sequential loop.
	if e.Cfg.Workers <= 1 || len(envs) <= 1 {
		for i, c := range cands {
			e.evaluate(c, envs[i%len(envs)])
		}
	} else {
		ng := len(envs)
		if ng > len(cands) {
			ng = len(cands)
		}
		sem := make(chan struct{}, e.Cfg.Workers)
		var wg sync.WaitGroup
		for g := 0; g < ng; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				for i := g; i < len(cands); i += len(envs) {
					e.evaluate(cands[i], envs[g])
				}
			}(g)
		}
		wg.Wait()
	}
	// Deferred, order-deterministic bookkeeping: filter statistics and
	// step/episode counts fold in candidate order regardless of which
	// goroutine finished first.
	for _, c := range cands {
		for _, o := range c.obs {
			e.Filter.Observe(o)
		}
		e.steps += c.steps
		e.episodes += c.episodes
	}
	// Rank-shaped fitness (centered ranks), as in Salimans et al.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if cands[order[j]].fit < cands[order[i]].fit {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	shaped := make([]float64, len(cands))
	for rank, idx := range order {
		shaped[idx] = float64(rank)/float64(len(cands)-1) - 0.5
	}
	// Gradient estimate g = (1/(N*sigma)) * sum shaped_i * eps_i, applied
	// ascending (we maximize return): theta += lr * g.
	upd := make([]float64, n)
	for i, c := range cands {
		w := shaped[i]
		for k, v := range c.eps {
			upd[k] += w * v
		}
	}
	e.Policy.Net.AddNoise(upd, e.Cfg.LR/(float64(len(cands))*e.Cfg.Sigma))

	best := math.Inf(-1)
	mean := 0.0
	for _, c := range cands {
		mean += c.fit
		if c.fit > best {
			best = c.fit
		}
	}
	mean /= float64(len(cands))
	return Stats{
		TotalSteps:        e.steps,
		TotalEpisodes:     e.episodes,
		EpisodeRewardMean: mean,
	}
}

// Train runs generations until totalSteps environment steps are consumed.
func (e *ES) Train(envs []Env, totalSteps int, cb func(Stats)) {
	for e.steps < totalSteps {
		st := e.Generation(envs)
		if cb != nil {
			cb(st)
		}
	}
}
