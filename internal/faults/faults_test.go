package faults

import (
	"errors"
	"testing"
)

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("pass-panic:0.01, interp-stall:0.005,profile-err:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.Rates[PassPanic] != 0.01 || sp.Rates[InterpStall] != 0.005 ||
		sp.Rates[ProfileErr] != 1 {
		t.Fatalf("bad spec: %+v", sp)
	}
	if sp, err := ParseSpec("", 1); err != nil || len(sp.Rates) != 0 {
		t.Fatalf("empty spec: %+v, %v", sp, err)
	}
	for _, bad := range []string{"nonsense:0.1", "pass-panic", "pass-panic:2", "pass-panic:x"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestInactiveNeverHits(t *testing.T) {
	Disable()
	for i := 0; i < 1000; i++ {
		if Hit(PassPanic) || Fail(ProfileErr) != nil {
			t.Fatal("inactive injector hit")
		}
	}
	if Draws() != nil {
		t.Fatal("inactive injector reported draws")
	}
}

// Same seed, same rates, same call order => identical decision streams.
func TestDeterministicStream(t *testing.T) {
	defer Disable()
	sp := Spec{Seed: 42, Rates: map[Point]float64{PassPanic: 0.2, ProfileErr: 0.05}}
	record := func() []bool {
		if err := Enable(sp); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, Hit(PassPanic), Hit(ProfileErr))
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical runs", i)
		}
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits at rate 0.2 over 500 draws")
	}
}

func TestRateOneAlwaysHits(t *testing.T) {
	defer Disable()
	if err := Enable(Spec{Seed: 1, Rates: map[Point]float64{InterpStall: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !Hit(InterpStall) {
			t.Fatal("rate-1 point missed")
		}
		if Hit(PassPanic) {
			t.Fatal("zero-rate point hit")
		}
	}
	if err := Fail(InterpStall); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fail: %v", err)
	}
	if Draws()[InterpStall] != 101 {
		t.Fatalf("draw count: %v", Draws())
	}
}
