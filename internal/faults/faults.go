// Package faults is a deterministic, seed-driven fault injector for the
// evaluation stack. Injection points are registered in the packages whose
// failures the containment layer must survive (passes, interp, hls,
// features); each point draws from a counter-hashed splitmix64 stream, so a
// given (seed, point, draw-number) triple always decides the same way. A
// single-threaded run is therefore exactly reproducible, and a concurrent
// run produces a fixed multiset of decisions regardless of interleaving.
//
// The injector is process-global and disabled by default: an inactive
// injector costs one atomic load per potential injection site, and the
// per-point draw counters do not advance, so runs with injection disabled
// are bit-identical to builds that predate the injector.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Point identifies one registered injection site class.
type Point int

// Registered injection points.
const (
	// PassPanic panics inside a transform pass run (registered in
	// passes.Apply, surfaced as a passes.PassPanic).
	PassPanic Point = iota
	// InterpStall simulates a wall-clock stall in the interpreter's step
	// loop (registered at interp's deadline poll, surfaced as
	// interp.ErrDeadline).
	InterpStall
	// ProfileErr fails an HLS profile invocation with an error (registered
	// in hls.ProfileFast / hls.ProfileChecked).
	ProfileErr
	// FeaturePanic panics inside feature extraction (registered in
	// features.Extract).
	FeaturePanic
	// VMPanic panics inside the bytecode VM's dispatch setup (registered in
	// vm.Run, contained by core's profile-stage recover boundary). The VM
	// also draws InterpStall at its strided poll, exactly like the
	// tree-walking interpreter.
	VMPanic
	// DiskCorrupt marks a record in the persistent artifact store as
	// corrupt while it is decoded (registered in artifact.Store's segment
	// loader). The store's contract turns corruption into a cache miss, so
	// a hit at this point exercises the rewrite path, never an error path.
	DiskCorrupt
	// ServePanic panics inside the serve layer's job runner, outside any
	// compile-stage boundary (registered in serve's runJob). The server must
	// contain it: the job fails cleanly as a fault, the worker survives, and
	// no other tenant's jobs are disturbed.
	ServePanic

	numPoints
)

var pointNames = [numPoints]string{
	PassPanic:    "pass-panic",
	InterpStall:  "interp-stall",
	ProfileErr:   "profile-err",
	FeaturePanic: "feature-panic",
	VMPanic:      "vm-panic",
	DiskCorrupt:  "disk-corrupt",
	ServePanic:   "serve-panic",
}

// String returns the spec name of the point ("pass-panic", ...).
func (p Point) String() string {
	if p < 0 || p >= numPoints {
		return fmt.Sprintf("faults.Point(%d)", int(p))
	}
	return pointNames[p]
}

// ErrInjected marks every failure the injector manufactures; containment
// and replay tooling can tell injected faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Spec configures the injector: a per-point probability in [0,1] and the
// seed of the decision stream.
type Spec struct {
	Seed  int64
	Rates map[Point]float64
}

// ParseSpec parses the CLI form "pass-panic:0.01,interp-stall:0.005". An
// empty string yields an empty (all-zero-rate) spec.
func ParseSpec(s string, seed int64) (Spec, error) {
	sp := Spec{Seed: seed, Rates: make(map[Point]float64)}
	if strings.TrimSpace(s) == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, rateStr, ok := strings.Cut(field, ":")
		if !ok {
			return Spec{}, fmt.Errorf("faults: bad spec entry %q (want point:rate)", field)
		}
		point := Point(-1)
		for p, n := range pointNames {
			if n == strings.TrimSpace(name) {
				point = Point(p)
				break
			}
		}
		if point < 0 {
			return Spec{}, fmt.Errorf("faults: unknown injection point %q (known: %s)",
				name, strings.Join(pointNames[:], ", "))
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("faults: bad rate %q for %s (want 0..1)", rateStr, point)
		}
		sp.Rates[point] = rate
	}
	return sp, nil
}

// injector is one enabled configuration plus its per-point draw counters.
type injector struct {
	seed  int64
	rates [numPoints]float64
	ctr   [numPoints]atomic.Uint64
}

var current atomic.Pointer[injector]

// Enable activates injection under the given spec, replacing any previous
// configuration and resetting the draw counters.
func Enable(sp Spec) error {
	inj := &injector{seed: sp.Seed}
	for p, r := range sp.Rates {
		if p < 0 || p >= numPoints {
			return fmt.Errorf("faults: unknown injection point %d", int(p))
		}
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %v for %s out of range 0..1", r, p)
		}
		inj.rates[p] = r
	}
	current.Store(inj)
	return nil
}

// Disable deactivates injection; sites fall back to the one-atomic-load
// fast path.
func Disable() { current.Store(nil) }

// Active reports whether an injector is enabled.
func Active() bool { return current.Load() != nil }

// Hit draws the next decision for p: true means the site must inject its
// fault. Inactive injectors (and zero-rate points) never hit and never
// advance a counter.
func Hit(p Point) bool {
	inj := current.Load()
	if inj == nil {
		return false
	}
	rate := inj.rates[p]
	if rate <= 0 {
		return false
	}
	n := inj.ctr[p].Add(1)
	x := splitmix64(uint64(inj.seed) ^ (uint64(p)+1)<<56 ^ n)
	return float64(x>>11)/(1<<53) < rate
}

// Fail is Hit for error-returning sites: a non-nil result is the injected
// failure the site must return.
func Fail(p Point) error {
	if Hit(p) {
		return fmt.Errorf("%s: %w", p, ErrInjected)
	}
	return nil
}

// Draws reports how many decisions each point has drawn since Enable —
// chaos tests use it to confirm the points actually fired.
func Draws() map[Point]uint64 {
	inj := current.Load()
	if inj == nil {
		return nil
	}
	out := make(map[Point]uint64, numPoints)
	for p := Point(0); p < numPoints; p++ {
		if n := inj.ctr[p].Load(); n > 0 {
			out[p] = n
		}
	}
	return out
}

// splitmix64 is the standard 64-bit finalizing mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
