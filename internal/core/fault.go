package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync/atomic"

	"autophase/internal/faults"
	"autophase/internal/interp"
	"autophase/internal/passes"
)

// FaultKind classifies an EvalFault; the kind decides the retry and
// quarantine policy.
type FaultKind int

// Fault taxonomy. The policy per kind:
//
//   - FaultPanic: a pass, the feature extractor or the profiler panicked.
//     Deterministic by construction (same IR, same code path), so zero
//     retries and permanent quarantine — only dropping the whole cache
//     (ResetSamples(true)) forgets it.
//   - FaultDeadline: the profiler blew its wall-clock deadline (or an
//     injected stall simulated one). Transient under contention, so the
//     compile gets one bounded retry; if both attempts fault the sequence
//     is quarantined, but SetLimits clears deadline-class entries because
//     their verdicts depend on the configured limits.
//   - FaultProfile: the profiler returned an error (trap, step/memory limit,
//     injected profile-err). Exactly the pre-existing failed-profile class:
//     never cached, re-evaluated (and re-charged as a sample) on every
//     query, never quarantined — the verdict depends on the limits.
//   - FaultBadSeq: the sequence carries a pass index outside Table 1. Caught
//     at the API boundary before any pass runs; never executed, never
//     quarantined, re-charged per query like FaultProfile.
const (
	FaultPanic FaultKind = iota
	FaultDeadline
	FaultProfile
	FaultBadSeq
)

var faultKindNames = [...]string{"panic", "deadline", "profile", "bad-seq"}

// String returns the bundle-format name of the kind.
func (k FaultKind) String() string {
	if k < 0 || int(k) >= len(faultKindNames) {
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
	return faultKindNames[k]
}

// EvalFault is the typed record of one contained evaluation failure: what
// died (kind, stage, pass), on which input (program, sequence), and the
// evidence (error text, stack). It is what a panic becomes instead of a
// dead process.
type EvalFault struct {
	Kind    FaultKind
	Stage   string // "pass", "features", "profile", "boundary"
	Pass    int    // Table 1 index of the faulting pass; -1 when unknown
	Pos     int    // position of that pass within Seq; -1 when unknown
	Program string
	Seq     []int
	Err     string
	Stack   string // captured for panic-class faults, empty otherwise
}

// Error implements error; EvalFault values flow through error-shaped APIs.
func (f *EvalFault) Error() string {
	return fmt.Sprintf("core: eval fault [%s/%s] on %s seq=%v: %s",
		f.Kind, f.Stage, f.Program, f.Seq, f.Err)
}

// Injected reports whether the fault was manufactured by the faults
// injector rather than organic.
func (f *EvalFault) Injected() bool {
	return strings.Contains(f.Err, faults.ErrInjected.Error())
}

// quarantinable reports whether the kind is remembered across queries.
func (k FaultKind) quarantinable() bool { return k == FaultPanic || k == FaultDeadline }

// newPanicFault builds the panic-class fault for a recovered value,
// unwrapping the pass attribution when the panic came through passes.Apply.
func newPanicFault(v any, stage string, name string, seq []int) *EvalFault {
	f := &EvalFault{Kind: FaultPanic, Stage: stage, Pass: -1, Pos: -1,
		Program: name, Seq: append([]int(nil), seq...)}
	if pp, ok := v.(*passes.PassPanic); ok {
		f.Stage = "pass"
		f.Pass = pp.Index
		f.Pos = pp.Pos
		f.Err = fmt.Sprintf("panic in %s: %v", pp.Name, pp.Val)
		f.Stack = string(pp.Stack)
		return f
	}
	f.Err = fmt.Sprintf("panic: %v", v)
	f.Stack = string(debug.Stack())
	return f
}

// classifyProfileErr maps a profiler error onto the fault taxonomy.
func classifyProfileErr(err error, name string, seq []int) *EvalFault {
	kind := FaultProfile
	if errors.Is(err, interp.ErrDeadline) {
		kind = FaultDeadline
	}
	return &EvalFault{Kind: kind, Stage: "profile", Pass: -1, Pos: -1,
		Program: name, Seq: append([]int(nil), seq...), Err: err.Error()}
}

// FaultHook observes contained panic- and deadline-class faults as they
// happen (physical occurrences only; quarantine hits do not re-fire it).
// The hook runs on the faulting worker's goroutine with no engine locks
// held beyond the compile-configuration read lock — it must not call
// SetLimits, ResetSamples or EnableSanitizer on the same Program.
type FaultHook func(*EvalFault)

// crashDirVal is the process-wide crash-bundle directory (SetCrashDir);
// programs without an explicit hook write bundles here.
var crashDirVal atomic.Pointer[string]

// SetCrashDir routes a crash-repro bundle for every contained panic- or
// deadline-class fault (on any Program without its own FaultHook) into dir.
// An empty dir disables the default sink.
func SetCrashDir(dir string) {
	if dir == "" {
		crashDirVal.Store(nil)
		return
	}
	crashDirVal.Store(&dir)
}

func crashDir() string {
	if p := crashDirVal.Load(); p != nil {
		return *p
	}
	return ""
}

// CrashBundle is the on-disk crash-repro format: everything `autophase
// replay` needs to rebuild the faulting compile — the program (by name,
// with the unoptimized IR inlined when cheap), the pass sequence, and the
// fault evidence.
type CrashBundle struct {
	Version  int    `json:"version"`
	Program  string `json:"program"`
	Kind     string `json:"kind"`
	Stage    string `json:"stage"`
	Pass     int    `json:"pass"`
	Pos      int    `json:"pos"`
	Seq      []int  `json:"seq"`
	Err      string `json:"err"`
	Stack    string `json:"stack,omitempty"`
	BeforeIR string `json:"before_ir,omitempty"`
}

// bundleIRCap bounds the inlined IR text: "before-IR when cheap".
const bundleIRCap = 256 << 10

// WriteCrashBundle serializes the fault (plus p's unoptimized IR, when it
// fits) into dir and returns the bundle path. The filename is a pure
// function of the fault, so replays of the same fault overwrite rather
// than accumulate.
func WriteCrashBundle(dir string, p *Program, f *EvalFault) (string, error) {
	b := &CrashBundle{
		Version: 1, Program: f.Program, Kind: f.Kind.String(), Stage: f.Stage,
		Pass: f.Pass, Pos: f.Pos, Seq: f.Seq, Err: f.Err, Stack: f.Stack,
	}
	if p != nil {
		if ir := p.orig.String(); len(ir) <= bundleIRCap {
			b.BeforeIR = ir
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("crash-%s-%s-%s.json",
		sanitizeName(f.Program), f.Kind, seqHash(f.Seq))
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadCrashBundle loads and validates a bundle written by WriteCrashBundle.
func ReadCrashBundle(path string) (*CrashBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b CrashBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("core: bad crash bundle %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("core: crash bundle %s: unsupported version %d", path, b.Version)
	}
	if err := passes.CheckSeq(b.Seq); err != nil {
		return nil, fmt.Errorf("core: crash bundle %s: %w", path, err)
	}
	return &b, nil
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// seqHash is a short FNV-1a digest of the sequence, for bundle filenames.
func seqHash(seq []int) string {
	h := uint64(1469598103934665603)
	for _, s := range seq {
		h = (h ^ uint64(uint32(s))) * 1099511628211
	}
	return fmt.Sprintf("%08x", uint32(h)^uint32(h>>32))
}
