package core

import (
	"math/rand"
	"testing"

	"autophase/internal/passes"
)

// TestSanitizedEnvTransparent runs a sanitized episode with the (correct)
// built-in passes and asserts the sanitizer changes nothing: compiles
// succeed, rewards still telescope, and no report is filed. The sanitizer
// must be a pure tripwire, not a behavior change.
func TestSanitizedEnvTransparent(t *testing.T) {
	p := mustProgram(t, "qsort")
	cfg := DefaultEnv()
	cfg.EpisodeLen = 8
	cfg.Sanitize = true
	env := NewPhaseEnv(p, cfg)
	env.Reset()
	rng := rand.New(rand.NewSource(3))
	done := false
	for !done {
		_, _, done = env.Step([]int{rng.Intn(passes.NumActions)})
	}
	if rep := p.SanitizerReport(); rep != nil {
		t.Fatalf("built-in passes flagged by sanitizer:\n%s", rep)
	}
	if _, _, ok := p.Compile(passes.O3Sequence); !ok {
		t.Fatal("sanitized compile of -O3 failed")
	}
	// Sanitized and unsanitized compiles agree on the result.
	clean := mustProgram(t, "qsort")
	seq := []int{38, 31, 30, 7, 28}
	cs, _, _ := p.Compile(seq)
	cc, _, _ := clean.Compile(seq)
	if cs != cc {
		t.Fatalf("sanitized compile diverged: %d vs %d cycles", cs, cc)
	}
}
