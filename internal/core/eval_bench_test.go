package core

import (
	"fmt"
	"math/rand"
	"testing"

	"autophase/internal/progen"
)

// BenchmarkCompileParallel measures batch-evaluation throughput at
// increasing worker counts over one matmul-scale program. Each iteration
// drops the compile cache first, so the benchmark measures real compiles
// plus the sharded-cache coordination, not memoized lookups. The acceptance
// bar for the sharded design is ≥2x throughput at 4 workers over workers=1.
func BenchmarkCompileParallel(b *testing.B) {
	p, err := NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		b.Fatal(err)
	}
	seqs := randSeqs(rand.New(rand.NewSource(17)), 64, 8)

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ev := NewEvaluator(p, workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ResetSamples(true)
				ev.EvalBatch(seqs)
			}
			b.ReportMetric(float64(b.N*len(seqs))/b.Elapsed().Seconds(), "compiles/s")
		})
	}
}

// BenchmarkCompileNoOpSuffix measures the no-op fast path: every sequence
// is a changing optimization prefix followed by a distinct all-no-op suffix
// (lowerinvoke/loweratomic never fire), so each Compile walks buildIR for a
// new key but must reuse the prefix module and its fingerprint outright —
// no clone, no re-hash, no physical profile. The suffix encodes the
// iteration index in base 2 over the two no-op passes so no key repeats
// within a run.
func BenchmarkCompileNoOpSuffix(b *testing.B) {
	p, err := NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		b.Fatal(err)
	}
	prefix := []int{38, 31, 30} // mem2reg, simplifycfg, instcombine
	if _, _, ok := p.Compile(prefix); !ok {
		b.Fatal("prefix compile failed")
	}
	noop := [2]int{2, 44} // lowerinvoke, loweratomic
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := append([]int(nil), prefix...)
		for v := i; ; v /= 2 {
			seq = append(seq, noop[v%2])
			if v < 2 {
				break
			}
		}
		if _, _, ok := p.Compile(seq); !ok {
			b.Fatal("compile failed")
		}
	}
	b.StopTimer()
	st := p.EvalStats()
	if st.Compiles != 1 {
		b.Fatalf("no-op suffixes triggered %d physical compiles, want 1", st.Compiles)
	}
	b.ReportMetric(float64(st.NoopIR), "noop-reuses")
}
