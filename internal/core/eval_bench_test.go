package core

import (
	"fmt"
	"math/rand"
	"testing"

	"autophase/internal/progen"
)

// BenchmarkCompileParallel measures batch-evaluation throughput at
// increasing worker counts over one matmul-scale program. Each iteration
// drops the compile cache first, so the benchmark measures real compiles
// plus the sharded-cache coordination, not memoized lookups. The acceptance
// bar for the sharded design is ≥2x throughput at 4 workers over workers=1.
func BenchmarkCompileParallel(b *testing.B) {
	p, err := NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		b.Fatal(err)
	}
	seqs := randSeqs(rand.New(rand.NewSource(17)), 64, 8)

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ev := NewEvaluator(p, workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ResetSamples(true)
				ev.EvalBatch(seqs)
			}
			b.ReportMetric(float64(b.N*len(seqs))/b.Elapsed().Seconds(), "compiles/s")
		})
	}
}
