package core

import (
	"math/rand"

	"autophase/internal/features"
	"autophase/internal/forest"
	"autophase/internal/passes"
)

// Tuple is one feature–action–reward record (§4): the program state before
// a pass was applied, the histogram of previously applied passes, the pass,
// and whether it improved the estimated cycle count.
type Tuple struct {
	Features []int64
	Hist     []int
	Action   int
	Improved bool
}

// CollectTuples gathers tuples by running high-exploration episodes
// (uniform-random pass choices, the limiting case of the paper's
// high-exploration PPO) over the given programs.
func CollectTuples(programs []*Program, episodes, episodeLen int, rng *rand.Rand) []Tuple {
	return CollectTuplesParallel(programs, episodes, episodeLen, rng, 1)
}

// CollectTuplesParallel is CollectTuples with a worker pool over episodes.
// Every episode's action sequence is drawn from rng up front, in episode
// order, so the tuple set is a function of the seed alone: workers only
// decide which episodes replay concurrently, and the concatenated result is
// bit-identical at workers=1 and workers=N.
func CollectTuplesParallel(programs []*Program, episodes, episodeLen int, rng *rand.Rand, workers int) []Tuple {
	type episode struct {
		prog    *Program
		actions []int
		tuples  []Tuple
	}
	var eps []*episode
	for _, p := range programs {
		for e := 0; e < episodes; e++ {
			actions := make([]int, episodeLen)
			for i := range actions {
				actions[i] = rng.Intn(passes.NumActions)
			}
			eps = append(eps, &episode{prog: p, actions: actions})
		}
	}
	runIndexed(len(eps), workers, func(i int) {
		defer func() { _ = recover() }() // a faulting episode contributes no tuples
		ep := eps[i]
		p := ep.prog
		var seq []int
		hist := make([]int, passes.NumActions)
		cycles, feats, ok := p.Compile(nil)
		if !ok {
			return
		}
		for _, a := range ep.actions {
			tu := Tuple{
				Features: append([]int64(nil), feats...),
				Hist:     append([]int(nil), hist...),
				Action:   a,
			}
			seq = append(seq, a)
			hist[a]++
			nc, nf, ok := p.Compile(seq)
			if !ok {
				break
			}
			tu.Improved = nc < cycles
			cycles, feats = nc, nf
			ep.tuples = append(ep.tuples, tu)
		}
	}, nil)
	var tuples []Tuple
	for _, ep := range eps {
		tuples = append(tuples, ep.tuples...)
	}
	return tuples
}

// Importance holds the two §4 heat maps: for every pass, the importance of
// each program feature (Figure 5) and of each previously-applied pass
// (Figure 6) in predicting whether applying the pass helps. Rows are
// normalized to sum to 1 (or all-zero when a pass never had signal).
type Importance struct {
	FeatureByPass [][]float64 // [pass][feature]
	PassByPass    [][]float64 // [pass][previous pass]
	// WinRate is the empirical fraction of applications of each pass that
	// improved the cycle count in the tuple set.
	WinRate []float64
}

// AnalyzeImportance trains two random forests per pass, one on program
// features and one on applied-pass histograms, and extracts Gini
// importances.
func AnalyzeImportance(tuples []Tuple, cfg forest.Config) *Importance {
	imp := &Importance{
		FeatureByPass: make([][]float64, passes.NumActions),
		PassByPass:    make([][]float64, passes.NumActions),
		WinRate:       make([]float64, passes.NumActions),
	}
	seen := make([]int, passes.NumActions)
	wins := make([]int, passes.NumActions)
	for _, t := range tuples {
		if t.Action >= 0 && t.Action < passes.NumActions {
			seen[t.Action]++
			if t.Improved {
				wins[t.Action]++
			}
		}
	}
	for a := range imp.WinRate {
		if seen[a] > 0 {
			imp.WinRate[a] = float64(wins[a]) / float64(seen[a])
		}
	}
	for a := 0; a < passes.NumActions; a++ {
		var Xf, Xh [][]float64
		var y []int
		for _, t := range tuples {
			if t.Action != a {
				continue
			}
			xf := make([]float64, len(t.Features))
			for i, v := range t.Features {
				xf[i] = float64(v)
			}
			xh := make([]float64, len(t.Hist))
			for i, v := range t.Hist {
				xh[i] = float64(v)
			}
			Xf = append(Xf, xf)
			Xh = append(Xh, xh)
			if t.Improved {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
		if len(y) < cfg.MinSamples {
			imp.FeatureByPass[a] = make([]float64, features.NumFeatures)
			imp.PassByPass[a] = make([]float64, passes.NumActions)
			continue
		}
		fcfg := cfg
		fcfg.Seed = cfg.Seed + int64(a)
		imp.FeatureByPass[a] = forest.Fit(fcfg, Xf, y).Importances()
		fcfg.Seed += 1000
		imp.PassByPass[a] = forest.Fit(fcfg, Xh, y).Importances()
	}
	return imp
}

// TopFeatures ranks features by total importance across passes and returns
// the best n indices (ascending index order), the §4 filtered state space.
func (imp *Importance) TopFeatures(n int) []int {
	return topIndices(imp.FeatureByPass, features.NumFeatures, n)
}

// TopPasses ranks passes by their total importance as *previously applied*
// passes (how much having run them matters), returning the best n indices —
// the §4 filtered action space. Passes that never improved any program in
// the tuple set are excluded outright: a pass with zero empirical wins
// cannot be "impactful on the performance" (§4.2) however the forests'
// impurity noise ranks it.
func (imp *Importance) TopPasses(n int) []int {
	total := make([]float64, passes.NumActions)
	for _, row := range imp.PassByPass {
		for i, v := range row {
			total[i] += v
		}
	}
	type iv struct {
		i     int
		score float64
	}
	// Enabler passes (e.g. -functionattrs certifying calls for -licm)
	// never improve the cycle count by themselves, but Figure 6 assigns
	// them high history importance. Keep a pass when it either wins
	// empirically or its column importance is clearly above the median.
	med := medianPositive(total)
	var order []iv
	for i := 0; i < passes.NumActions; i++ {
		if imp.WinRate != nil && imp.WinRate[i] <= 0 && total[i] <= med {
			continue
		}
		// Importance carries the ranking; the win rate breaks ties and
		// keeps empirically strong passes ahead of impurity noise.
		score := total[i]
		if imp.WinRate != nil {
			score += imp.WinRate[i]
		}
		order = append(order, iv{i, score})
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].score > order[i].score {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	if n > len(order) {
		n = len(order)
	}
	picked := make([]int, 0, n)
	for i := 0; i < n; i++ {
		picked = append(picked, order[i].i)
	}
	for i := 0; i < len(picked); i++ {
		for j := i + 1; j < len(picked); j++ {
			if picked[j] < picked[i] {
				picked[i], picked[j] = picked[j], picked[i]
			}
		}
	}
	return picked
}

// medianPositive returns the median of the strictly positive entries
// (zero when none are positive).
func medianPositive(v []float64) float64 {
	var pos []float64
	for _, x := range v {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return 0
	}
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if pos[j] < pos[i] {
				pos[i], pos[j] = pos[j], pos[i]
			}
		}
	}
	return pos[len(pos)/2]
}

func topIndices(rows [][]float64, width, n int) []int {
	total := make([]float64, width)
	for _, row := range rows {
		for i, v := range row {
			if i < width {
				total[i] += v
			}
		}
	}
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, width)
	for i, v := range total {
		order[i] = iv{i, v}
	}
	// Selection of the n largest, then ascending index order.
	for i := 0; i < n && i < len(order); i++ {
		maxJ := i
		for j := i + 1; j < len(order); j++ {
			if order[j].v > order[maxJ].v {
				maxJ = j
			}
		}
		order[i], order[maxJ] = order[maxJ], order[i]
	}
	if n > width {
		n = width
	}
	picked := make([]int, n)
	for i := 0; i < n; i++ {
		picked[i] = order[i].i
	}
	// Ascending index order for stable observation layouts.
	for i := 0; i < len(picked); i++ {
		for j := i + 1; j < len(picked); j++ {
			if picked[j] < picked[i] {
				picked[i], picked[j] = picked[j], picked[i]
			}
		}
	}
	return picked
}
