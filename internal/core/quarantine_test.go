package core

import (
	"testing"
	"time"

	"autophase/internal/faults"
	"autophase/internal/interp"
)

// findDeadlineSeq compiles candidate sequences under interp-stall injection
// until one takes the interpreter path (the static estimator answers some
// matmul sequences without running the interpreter, and those cannot stall)
// and comes back as a deadline-class fault.
func findDeadlineSeq(t *testing.T, p *Program) []int {
	t.Helper()
	candidates := [][]int{
		{38, 38}, {0, 0}, {3, 3}, {5, 5}, {10, 10}, {21, 21},
		{38, 0}, {0, 3}, {31, 31}, {30, 30}, {1, 1}, {2, 2},
	}
	for _, seq := range candidates {
		r := p.compile(seq)
		if r.fault != nil && r.fault.Kind == FaultDeadline {
			return seq
		}
	}
	t.Fatal("no candidate sequence reached the interpreter under stall injection")
	return nil
}

func TestDeadlineQuarantineRetryAndSetLimits(t *testing.T) {
	p := mustProgram(t, "matmul")

	// Panic-class entry first.
	enableFaults(t, "pass-panic:1")
	pseq := []int{7, 8}
	if r := p.compile(pseq); r.fault == nil || r.fault.Kind != FaultPanic {
		t.Fatalf("want panic fault, got %v", r.fault)
	}
	faults.Disable()

	// Deadline-class entry: injected stalls surface as interp.ErrDeadline.
	enableFaults(t, "interp-stall:1")
	r0 := p.retries.Load()
	dseq := findDeadlineSeq(t, p)
	faults.Disable()
	if d := p.retries.Load() - r0; d < 1 {
		t.Fatalf("deadline faults get one bounded retry, retries delta %d", d)
	}
	if f, q := p.IsQuarantined(dseq); !q || f.Kind != FaultDeadline {
		t.Fatalf("deadline fault not quarantined after failed retry: %v %v", f, q)
	}
	if _, q := p.IsQuarantined(pseq); !q {
		t.Fatal("panic entry lost before SetLimits")
	}

	// SetLimits grants deadline-class entries a fresh trial but keeps
	// panic-class entries: a panicking pass panics under any limit.
	p.SetLimits(interp.DefaultLimits)
	if _, q := p.IsQuarantined(dseq); q {
		t.Fatal("SetLimits must clear deadline-class quarantine entries")
	}
	if _, q := p.IsQuarantined(pseq); !q {
		t.Fatal("SetLimits must keep panic-class quarantine entries")
	}
	if _, _, ok := p.Compile(dseq); !ok {
		t.Fatal("deadline-quarantined sequence should compile cleanly after SetLimits")
	}
	if r := p.compile(pseq); r.ok || r.fault == nil || r.fault.Kind != FaultPanic {
		t.Fatalf("panic-quarantined sequence must stay faulted, got ok=%v fault=%v", r.ok, r.fault)
	}
}

func TestQuarantineLeavesHealthyCacheAlone(t *testing.T) {
	p := mustProgram(t, "matmul")
	healthy := []int{38, 31}
	c1, _, ok := p.Compile(healthy)
	if !ok {
		t.Fatal("healthy compile failed")
	}
	fp0 := len(p.fpEntries)

	enableFaults(t, "pass-panic:1")
	if r := p.compile([]int{4, 6}); r.fault == nil {
		t.Fatal("injection did not fault")
	}
	faults.Disable()

	if got := len(p.fpEntries); got != fp0 {
		t.Fatalf("a fault must not disturb the fingerprint store: %d entries, was %d", got, fp0)
	}
	h0 := p.cacheHits.Load()
	c2, _, ok := p.Compile(healthy)
	if !ok || c2 != c1 {
		t.Fatalf("healthy entry damaged: ok=%v cycles %d, was %d", ok, c2, c1)
	}
	if d := p.cacheHits.Load() - h0; d != 1 {
		t.Fatalf("healthy re-query should be a cache hit, hits delta %d", d)
	}
}

func TestWallClockDeadline(t *testing.T) {
	p := mustProgram(t, "matmul")
	lim := interp.DefaultLimits
	lim.Deadline = time.Nanosecond
	p.SetLimits(lim)
	// Any sequence answered by the interpreter trips a 1ns deadline on its
	// first poll; static-path answers are immune, so scan candidates.
	found := false
	for _, seq := range [][]int{{38, 38}, {0, 0}, {3, 3}, {5, 5}, {31, 31}, {1, 1}} {
		r := p.compile(seq)
		if r.fault != nil && r.fault.Kind == FaultDeadline {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("1ns deadline never tripped — deadline polling is broken")
	}
	// Restoring sane limits clears the deadline verdicts.
	p.SetLimits(interp.DefaultLimits)
	if n := p.QuarantineCount(); n != 0 {
		t.Fatalf("deadline-only quarantine should be empty after SetLimits, got %d", n)
	}
}
