package core_test

import (
	"fmt"

	"autophase/internal/core"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// ExampleProgram demonstrates the Figure 4 loop by hand: compile a pass
// sequence, read the clock-cycle estimate and the new feature vector.
func ExampleProgram() {
	p, err := core.NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		panic(err)
	}
	// mem2reg -> loop-rotate -> loop-unroll: the enabling chain the paper's
	// agents learn.
	seq := []int{38, 23, 33}
	cycles, feats, ok := p.Compile(seq)
	fmt.Println("compiled:", ok)
	fmt.Println("faster than -O0:", cycles < p.O0Cycles)
	fmt.Println("feature count:", len(feats))
	fmt.Println("profiler samples:", p.Samples())
	// Output:
	// compiled: true
	// faster than -O0: true
	// feature count: 56
	// profiler samples: 1
}

// ExamplePhaseEnv shows the gym-style environment of §5.1.
func ExamplePhaseEnv() {
	p, err := core.NewProgram("sha", progen.Benchmark("sha"))
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultEnv()
	cfg.Obs = core.ObsHistogram
	cfg.EpisodeLen = 3
	env := core.NewPhaseEnv(p, cfg)

	obs := env.Reset()
	fmt.Println("observation size:", len(obs))
	_, reward, done := env.Step([]int{38}) // -mem2reg
	fmt.Println("mem2reg reward positive:", reward > 0)
	fmt.Println("done after one step:", done)
	fmt.Println("actions:", env.ActionDims()[0] == passes.NumActions)
	// Output:
	// observation size: 45
	// mem2reg reward positive: true
	// done after one step: false
	// actions: true
}
