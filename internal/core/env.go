package core

import (
	"autophase/internal/features"
	"autophase/internal/hls"
	"autophase/internal/passes"
)

// Env is the common surface of the phase-ordering environments: the
// gym-style subset (Reset/Step/ObsSize/ActionDims) the rl trainers consume,
// plus the episode read-backs (Sequence/BestCycles) the drivers use to
// score a rollout. Both the §5.1 single-action and the §5.2 multi-action
// formulations implement it, so drivers and trainers never need the
// concrete types.
type Env interface {
	Reset() []float64
	Step(actions []int) (obs []float64, reward float64, done bool)
	ObsSize() int
	ActionDims() []int
	Sequence() []int
	BestCycles() int64
}

var (
	_ Env = (*PhaseEnv)(nil)
	_ Env = (*MultiPhaseEnv)(nil)
)

// PhaseEnv is the single-action phase-ordering environment of §5.1: each
// step applies one more pass to the current sequence, the observation is
// the program-feature vector and/or the applied-pass histogram, and the
// reward is the drop in estimated clock cycles.
type PhaseEnv struct {
	Cfg     EnvConfig
	Program *Program

	seq       []int
	hist      []int
	cycles    int64
	best      int64
	steps     int     // actions taken this episode, including rolled-back faults
	lastFeats []int64 // features of the last healthy compile, for fault observations
}

// NewPhaseEnv builds an environment over one program.
func NewPhaseEnv(p *Program, cfg EnvConfig) *PhaseEnv {
	if cfg.Sanitize {
		p.EnableSanitizer()
	}
	if cfg.Engine != hls.EngineAuto {
		p.SetEngine(cfg.Engine)
	}
	return &PhaseEnv{Cfg: cfg, Program: p}
}

// ObsSize implements rl.Env.
func (e *PhaseEnv) ObsSize() int {
	n := 0
	switch e.Cfg.Obs {
	case ObsFeatures:
		n = len(e.Cfg.featIdx())
	case ObsHistogram:
		n = len(e.Cfg.actions())
	case ObsBoth:
		n = len(e.Cfg.actions()) + len(e.Cfg.featIdx())
	}
	if e.Cfg.GraphObs && e.Cfg.Obs != ObsHistogram {
		n += features.NumGraphFeatures
	}
	return n
}

// ActionDims implements rl.Env: one categorical head over the (possibly
// filtered) pass list.
func (e *PhaseEnv) ActionDims() []int { return []int{len(e.Cfg.actions())} }

func (e *PhaseEnv) observe(rawFeats []int64) []float64 {
	var obs []float64
	if e.Cfg.Obs == ObsHistogram || e.Cfg.Obs == ObsBoth {
		for _, h := range e.hist {
			obs = append(obs, float64(h))
		}
	}
	if e.Cfg.Obs == ObsFeatures || e.Cfg.Obs == ObsBoth {
		obs = append(obs, e.Cfg.normalizeFeatures(rawFeats)...)
		if e.Cfg.GraphObs {
			// Quarantinable faults roll e.seq back before observing, so the
			// graph block describes the same module as rawFeats everywhere
			// except the terminal failing-compile observation, where the
			// episode is over anyway.
			obs = append(obs, e.Cfg.normalizeGraph(e.Program.GraphFeaturesAfter(e.seq))...)
		}
	}
	return obs
}

// cost evaluates the configured objective for the sequence.
func (e *PhaseEnv) cost(seq []int) (int64, []int64, bool, *EvalFault) {
	if e.Cfg.NoProfile {
		// Inference mode: observation only, no profiler sample, no reward.
		return 0, e.Program.FeaturesAfter(seq), true, nil
	}
	r := e.Program.compile(seq)
	switch e.Cfg.Objective {
	case MinimizeArea:
		return r.area, r.feats, r.ok, r.fault
	case MinimizeAreaDelay:
		// Scaled area-delay product keeps rewards in a trainable range.
		return r.cycles * r.area / 1024, r.feats, r.ok, r.fault
	default:
		return r.cycles, r.feats, r.ok, r.fault
	}
}

// Reset implements rl.Env.
func (e *PhaseEnv) Reset() []float64 {
	e.seq = e.seq[:0]
	e.hist = make([]int, len(e.Cfg.actions()))
	e.steps = 0
	cycles, feats, ok, _ := e.cost(nil)
	if !ok {
		cycles = e.Program.O0Cycles
		feats = e.Program.Features()
	}
	e.cycles = cycles
	e.best = cycles
	e.lastFeats = feats
	return e.observe(feats)
}

// Step implements rl.Env. The action indexes the configured pass list; the
// environment applies the pass, recompiles, and rewards the cycle drop.
//
// A contained panic- or deadline-class fault does not forfeit the episode:
// the faulting pass is rolled back (it is quarantined and would fault again
// anyway), the agent is charged a −1 reward, and the episode continues from
// the last healthy state. The done condition counts actions taken, not
// sequence length, so sustained faults cannot starve episode termination.
func (e *PhaseEnv) Step(actions []int) ([]float64, float64, bool) {
	acts := e.Cfg.actions()
	a := actions[0]
	if a < 0 || a >= len(acts) {
		a = 0
	}
	pass := acts[a]
	e.seq = append(e.seq, pass)
	e.hist[a]++
	e.steps++

	cycles, feats, ok, fault := e.cost(e.seq)
	done := e.steps >= e.Cfg.EpisodeLen || pass == passes.TerminateIndex
	if !ok {
		if fault != nil && fault.Kind.quarantinable() {
			e.seq = e.seq[:len(e.seq)-1]
			e.hist[a]--
			return e.observe(e.lastFeats), -1, done
		}
		// A failing compile (limit blowout, sanitizer flag) ends the
		// episode with a strong penalty, as before containment existed.
		return e.observe(e.Program.Features()), -1, true
	}
	r := e.Cfg.reward(e.cycles, cycles, e.Program.O0Cycles)
	e.cycles = cycles
	if cycles < e.best {
		e.best = cycles
	}
	e.lastFeats = feats
	return e.observe(feats), r, done
}

// Sequence returns the passes applied so far this episode.
func (e *PhaseEnv) Sequence() []int { return append([]int(nil), e.seq...) }

// BestCycles returns the best cycle count seen this episode.
func (e *PhaseEnv) BestCycles() int64 { return e.best }

// CurrentCycles returns the cycle count of the current sequence.
func (e *PhaseEnv) CurrentCycles() int64 { return e.cycles }

// MultiPhaseEnv is the §5.2 alternative action formulation: the agent
// maintains all N pass slots at once (initialized to K/2) and each step
// nudges every slot by −1, 0 or +1, evaluating the whole sequence per step.
type MultiPhaseEnv struct {
	Cfg     EnvConfig
	Program *Program
	Slots   int // N
	Steps   int // RL steps per episode

	slots     []int
	step      int
	cycles    int64
	best      int64
	lastFeats []int64 // features of the last healthy compile, for fault observations
}

// NewMultiPhaseEnv builds the multiple-passes-per-action environment.
func NewMultiPhaseEnv(p *Program, cfg EnvConfig, slots, steps int) *MultiPhaseEnv {
	if cfg.Sanitize {
		p.EnableSanitizer()
	}
	if cfg.Engine != hls.EngineAuto {
		p.SetEngine(cfg.Engine)
	}
	return &MultiPhaseEnv{Cfg: cfg, Program: p, Slots: slots, Steps: steps}
}

// ObsSize implements rl.Env: the current slot vector plus (optionally) the
// program features.
func (e *MultiPhaseEnv) ObsSize() int {
	n := e.Slots
	if e.Cfg.Obs == ObsFeatures || e.Cfg.Obs == ObsBoth {
		n += len(e.Cfg.featIdx())
		if e.Cfg.GraphObs {
			n += features.NumGraphFeatures
		}
	}
	return n
}

// ActionDims implements rl.Env: N ternary heads ([-1, 0, +1] per slot).
func (e *MultiPhaseEnv) ActionDims() []int {
	dims := make([]int, e.Slots)
	for i := range dims {
		dims[i] = 3
	}
	return dims
}

func (e *MultiPhaseEnv) sequence() []int {
	acts := e.Cfg.actions()
	seq := make([]int, len(e.slots))
	for i, s := range e.slots {
		seq[i] = acts[s]
	}
	return seq
}

func (e *MultiPhaseEnv) observe(rawFeats []int64) []float64 {
	obs := make([]float64, 0, e.ObsSize())
	k := float64(len(e.Cfg.actions()))
	for _, s := range e.slots {
		obs = append(obs, float64(s)/k)
	}
	if e.Cfg.Obs == ObsFeatures || e.Cfg.Obs == ObsBoth {
		obs = append(obs, e.Cfg.normalizeFeatures(rawFeats)...)
		if e.Cfg.GraphObs {
			obs = append(obs, e.Cfg.normalizeGraph(e.Program.GraphFeaturesAfter(e.sequence()))...)
		}
	}
	return obs
}

// Reset implements rl.Env: every slot returns to K/2 (§5.2).
func (e *MultiPhaseEnv) Reset() []float64 {
	k := len(e.Cfg.actions())
	e.slots = make([]int, e.Slots)
	for i := range e.slots {
		e.slots[i] = k / 2
	}
	e.step = 0
	cycles, feats, ok := e.Program.Compile(e.sequence())
	if !ok {
		cycles, feats = e.Program.O0Cycles, e.Program.Features()
	}
	e.cycles = cycles
	e.best = cycles
	e.lastFeats = feats
	return e.observe(feats)
}

// Step implements rl.Env: one −1/0/+1 update per slot, then a single
// compilation of the whole sequence. As in PhaseEnv, a contained panic- or
// deadline-class fault restores the previous slot vector, charges a −1
// reward, and lets the episode continue.
func (e *MultiPhaseEnv) Step(actions []int) ([]float64, float64, bool) {
	k := len(e.Cfg.actions())
	prev := append([]int(nil), e.slots...)
	for i := 0; i < e.Slots && i < len(actions); i++ {
		e.slots[i] += actions[i] - 1
		if e.slots[i] < 0 {
			e.slots[i] = 0
		}
		if e.slots[i] >= k {
			e.slots[i] = k - 1
		}
	}
	e.step++
	res := e.Program.compile(e.sequence())
	done := e.step >= e.Steps
	if !res.ok {
		if res.fault != nil && res.fault.Kind.quarantinable() {
			e.slots = prev
			return e.observe(e.lastFeats), -1, done
		}
		return e.observe(e.Program.Features()), -1, true
	}
	r := e.Cfg.reward(e.cycles, res.cycles, e.Program.O0Cycles)
	e.cycles = res.cycles
	if res.cycles < e.best {
		e.best = res.cycles
	}
	e.lastFeats = res.feats
	return e.observe(res.feats), r, done
}

// BestCycles returns the best cycle count seen this episode.
func (e *MultiPhaseEnv) BestCycles() int64 { return e.best }

// Sequence returns the current slot-decoded pass sequence.
func (e *MultiPhaseEnv) Sequence() []int { return e.sequence() }

// InferGreedy runs one inference rollout: the policy picks passes from
// observations served by a NoProfile environment (feature extraction only),
// and the resulting sequence is profiled once at the end — one profiler
// sample, as the paper counts deep-RL inference.
func InferGreedy(p *Program, cfg EnvConfig, policy func(obs []float64) int) (seq []int, cycles int64, ok bool) {
	cfg.NoProfile = true
	acts := cfg.actions()
	var env Env = NewPhaseEnv(p, cfg)
	obs := env.Reset()
	done := cfg.EpisodeLen <= 0
	for !done {
		a := policy(obs)
		// Out-of-range and explicit-terminate actions end the rollout
		// before stepping (Step would clamp them into the sequence).
		if a < 0 || a >= len(acts) || acts[a] == passes.TerminateIndex {
			break
		}
		obs, _, done = env.Step([]int{a})
	}
	seq = env.Sequence()
	cycles, _, ok = p.Compile(seq)
	return seq, cycles, ok
}
