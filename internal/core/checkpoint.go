package core

import "sort"

// QuarantineRecords returns a copy of every fault remembered by the
// quarantine tier, sorted by sequence (shortest first, then
// lexicographically) so the snapshot is a function of the quarantine *set*,
// not of map iteration order. The serve layer persists these into job
// checkpoints so a restarted search does not re-run sequences already known
// to panic or stall.
func (p *Program) QuarantineRecords() []*EvalFault {
	p.quarMu.Lock()
	recs := make([]*EvalFault, 0, len(p.quar))
	for _, f := range p.quar {
		recs = append(recs, f)
	}
	p.quarMu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return lessSeq(recs[i].Seq, recs[j].Seq) })
	return recs
}

// RestoreQuarantine seeds the quarantine tier from checkpointed records.
// Only quarantinable kinds (panic, deadline) are accepted; anything else in
// a tampered checkpoint is dropped rather than poisoning the profile-error
// re-charge semantics. Restored entries behave exactly like organically
// quarantined ones: every query is re-charged one sample and one fault, and
// SetLimits clears the deadline-class entries.
func (p *Program) RestoreQuarantine(recs []*EvalFault) {
	p.quarMu.Lock()
	defer p.quarMu.Unlock()
	for _, f := range recs {
		if f == nil || !f.Kind.quarantinable() {
			continue
		}
		if p.quar == nil {
			p.quar = make(map[string]*EvalFault)
		}
		cp := *f
		cp.Seq = append([]int(nil), f.Seq...)
		p.quar[seqKey(cp.Seq)] = &cp
	}
}
