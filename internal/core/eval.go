package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autophase/internal/passes"
	"autophase/internal/search"
)

// Evaluator is the concurrent batch-evaluation engine: a fixed-size worker
// pool scoring candidate pass sequences against one Program through its
// sharded compile cache. Results come back in submission order, so callers
// that generate candidates deterministically get bit-identical outcomes at
// Workers=1 and Workers=N; the only nondeterminism under concurrency is
// *which* duplicate compile wins the singleflight race, and that is
// invisible in the results.
type Evaluator struct {
	p        *Program
	workers  int
	batches  atomic.Int64
	wallNS   atomic.Int64
	restarts atomic.Int64 // workers replaced after an escaped panic
}

// NewEvaluator wraps p with a worker pool of the given width (minimum 1).
func NewEvaluator(p *Program, workers int) *Evaluator {
	if workers < 1 {
		workers = 1
	}
	return &Evaluator{p: p, workers: workers}
}

// Program returns the underlying program.
func (e *Evaluator) Program() *Program { return e.p }

// Workers returns the pool width.
func (e *Evaluator) Workers() int { return e.workers }

// EvalResult is one scored sequence. A compile that faulted reports
// Ok=false with the contained fault attached.
type EvalResult struct {
	Seq    []int
	Cycles int64
	Area   int64
	Feats  []int64
	Ok     bool
	Fault  *EvalFault
}

// EvalBatch scores every sequence and returns results in submission order.
// Work is spread over min(Workers, len(seqs)) goroutines pulling from a
// shared index, so a slow compile never stalls the rest of the batch.
// Compiles are contained (a faulting sequence yields Ok=false, not a dead
// process); should a panic still escape the containment boundaries, the
// worker is replaced rather than leaked and the batch completes, with the
// interrupted index reported as Ok=false.
func (e *Evaluator) EvalBatch(seqs [][]int) []EvalResult {
	//contractvet:allow nondeterminism -- BatchWall is observability only; results and accounting are wall-clock independent
	start := time.Now()
	out := make([]EvalResult, len(seqs))
	for i := range out {
		out[i].Seq = seqs[i]
	}
	runIndexed(len(seqs), e.workers, func(i int) {
		r := e.p.compile(seqs[i])
		out[i] = EvalResult{Seq: seqs[i], Cycles: r.cycles, Area: r.area,
			Feats: r.feats, Ok: r.ok, Fault: r.fault}
	}, func(i int, v any) {
		e.restarts.Add(1)
	})
	e.batches.Add(1)
	//contractvet:allow nondeterminism -- observability only, as above
	e.wallNS.Add(time.Since(start).Nanoseconds())
	return out
}

// WorkerRestarts reports how many pool workers were replaced after an
// escaped panic.
func (e *Evaluator) WorkerRestarts() int64 { return e.restarts.Load() }

// Objective adapts the Evaluator to the search package's batch interface:
// candidates are scored EvalBatch-wide, and Batch tells sequential
// algorithms (OpenTuner's bandit rounds) how many proposals to score per
// round. n is the candidate sequence length.
func (e *Evaluator) Objective(n int) *search.Objective {
	return &search.Objective{
		K:     passes.NumActions,
		N:     n,
		Batch: e.workers,
		EvalBatch: func(seqs [][]int) []search.EvalOutcome {
			rs := e.EvalBatch(seqs)
			outs := make([]search.EvalOutcome, len(rs))
			for i, r := range rs {
				outs[i] = search.EvalOutcome{Val: r.Cycles, Ok: r.Ok}
			}
			return outs
		},
	}
}

// EvalStats is a snapshot of the evaluation engine's counters. All fields
// are monotone over a Program's lifetime except Samples, which ResetSamples
// zeroes between runs.
type EvalStats struct {
	Samples    int64 // logical profiler samples (the paper's accounting unit)
	Compiles   int64 // physical compile+profile executions
	CacheHits  int64 // memoized answers (sum of ShardHits)
	Merges     int64 // concurrent duplicate compiles folded by singleflight
	StaticHits int64 // profiles answered by the SCEV static estimator
	VMHits     int64 // profiles answered by the bytecode VM
	InterpHits int64 // profiles answered by the tree-walking interpreter
	FPHits     int64 // new sequences whose IR fingerprint matched an existing profile
	NoopIR     int64 // pass suffixes that changed nothing (base module reused, no re-hash)
	// Persistent artifact-store tier (all zero when no store is attached).
	// DiskHits are profiles answered from disk with no engine run;
	// BytecodeDiskHits are lowered programs restored instead of re-lowered;
	// the write/byte/corrupt counters are store-wide (profiles, features,
	// bytecode together).
	DiskHits         int64
	BytecodeDiskHits int64
	DiskWrites       int64
	DiskBytes        int64
	DiskCorrupt      int64
	// In-memory lowered-bytecode cache (vm.Cache) counters.
	LowerHits      int64
	LowerDeclines  int64
	LowerMisses    int64
	LowerEvictions int64
	// FPMismatches counts sanitizer-mode recomputes that disagreed with the
	// fingerprint store; nonzero means fingerprint sharing aliased distinct
	// results and must be treated as a miscompilation signal.
	FPMismatches int64
	Batches      int64 // EvalBatch invocations
	BatchWall    time.Duration
	ShardHits    [cacheShards]int64 // cache hits per shard
	// Fault-containment accounting. The invariant
	//   Samples == Successes + Faults + Flagged
	// holds at every quiescent point regardless of worker count.
	Successes   int64 // samples that produced a usable profile
	Faults      int64 // samples answered by a contained fault (incl. quarantine hits)
	Flagged     int64 // samples rejected by the pass sanitizer
	Retries     int64 // bounded deadline-class retries attempted
	Quarantined int64 // sequences currently held in the quarantine tier
	// Serve-layer counters: zero outside `autophase serve`, where the server
	// aggregates per-job EvalStats across tenants and folds its admission
	// and drain accounting in. All of them follow the nonzero-only printing
	// convention, so engine output away from the service is unchanged.
	Tenants      int64 // distinct tenants observed by the server
	Shed         int64 // requests rejected with an explicit 429/503
	Drained      int64 // jobs completed during graceful shutdown's drain window
	Checkpointed int64 // jobs persisted (not lost) by graceful shutdown
	Resumed      int64 // checkpointed jobs re-admitted after a restart
}

// Add accumulates o's engine counters into s (the serve layer folds many
// per-job stats into one aggregate). BatchWall sums; the per-shard hit
// vector sums element-wise.
func (s *EvalStats) Add(o EvalStats) {
	s.Samples += o.Samples
	s.Compiles += o.Compiles
	s.CacheHits += o.CacheHits
	s.Merges += o.Merges
	s.StaticHits += o.StaticHits
	s.VMHits += o.VMHits
	s.InterpHits += o.InterpHits
	s.FPHits += o.FPHits
	s.NoopIR += o.NoopIR
	s.DiskHits += o.DiskHits
	s.BytecodeDiskHits += o.BytecodeDiskHits
	s.DiskWrites += o.DiskWrites
	s.DiskBytes += o.DiskBytes
	s.DiskCorrupt += o.DiskCorrupt
	s.LowerHits += o.LowerHits
	s.LowerDeclines += o.LowerDeclines
	s.LowerMisses += o.LowerMisses
	s.LowerEvictions += o.LowerEvictions
	s.FPMismatches += o.FPMismatches
	s.Batches += o.Batches
	s.BatchWall += o.BatchWall
	s.Successes += o.Successes
	s.Faults += o.Faults
	s.Flagged += o.Flagged
	s.Retries += o.Retries
	s.Quarantined += o.Quarantined
	s.Tenants += o.Tenants
	s.Shed += o.Shed
	s.Drained += o.Drained
	s.Checkpointed += o.Checkpointed
	s.Resumed += o.Resumed
	for i := range s.ShardHits {
		s.ShardHits[i] += o.ShardHits[i]
	}
}

// String renders the one-line form the CLI prints.
func (s EvalStats) String() string {
	hot := 0
	for _, h := range s.ShardHits {
		if h > 0 {
			hot++
		}
	}
	str := fmt.Sprintf("samples=%d compiles=%d fp-hits=%d noop-ir=%d cache-hits=%d (%d/%d shards) merges=%d static=%d vm=%d interp=%d",
		s.Samples, s.Compiles, s.FPHits, s.NoopIR, s.CacheHits, hot, cacheShards, s.Merges, s.StaticHits, s.VMHits, s.InterpHits)
	if s.FPMismatches > 0 {
		str += fmt.Sprintf(" FP-MISMATCHES=%d", s.FPMismatches)
	}
	if s.DiskHits > 0 || s.BytecodeDiskHits > 0 || s.DiskWrites > 0 || s.DiskCorrupt > 0 {
		str += fmt.Sprintf(" disk-hits=%d disk-bc-hits=%d disk-writes=%d disk-bytes=%d disk-corrupt=%d",
			s.DiskHits, s.BytecodeDiskHits, s.DiskWrites, s.DiskBytes, s.DiskCorrupt)
	}
	if s.LowerHits > 0 || s.LowerDeclines > 0 || s.LowerEvictions > 0 {
		str += fmt.Sprintf(" lower-hits=%d lower-declines=%d lower-misses=%d lower-evictions=%d",
			s.LowerHits, s.LowerDeclines, s.LowerMisses, s.LowerEvictions)
	}
	if s.Faults > 0 || s.Quarantined > 0 || s.Retries > 0 {
		str += fmt.Sprintf(" faults=%d quarantined=%d retries=%d",
			s.Faults, s.Quarantined, s.Retries)
	}
	if s.Tenants > 0 {
		str += fmt.Sprintf(" tenants=%d", s.Tenants)
	}
	if s.Shed > 0 {
		str += fmt.Sprintf(" shed=%d", s.Shed)
	}
	if s.Drained > 0 || s.Checkpointed > 0 || s.Resumed > 0 {
		str += fmt.Sprintf(" drained=%d checkpointed=%d resumed=%d",
			s.Drained, s.Checkpointed, s.Resumed)
	}
	if s.Batches > 0 {
		str += fmt.Sprintf(" batches=%d batch-wall=%s", s.Batches,
			s.BatchWall.Round(time.Millisecond))
	}
	return str
}

// EvalStats snapshots the program-level counters (everything except the
// per-batch numbers, which live on an Evaluator).
func (p *Program) EvalStats() EvalStats {
	eng := p.profiler.Stats()
	s := EvalStats{
		Samples:          p.samples.Load(),
		Compiles:         p.compiles.Load(),
		CacheHits:        p.cacheHits.Load(),
		Merges:           p.merges.Load(),
		StaticHits:       eng.StaticHits,
		VMHits:           eng.VMHits,
		InterpHits:       eng.InterpHits,
		DiskHits:         eng.DiskHits,
		BytecodeDiskHits: eng.BytecodeDiskHits,
		DiskWrites:       eng.DiskWrites,
		DiskBytes:        eng.DiskBytes,
		DiskCorrupt:      eng.DiskCorrupt,
		LowerHits:        eng.LowerHits,
		LowerDeclines:    eng.LowerDeclines,
		LowerMisses:      eng.LowerMisses,
		LowerEvictions:   eng.LowerEvictions,
		FPHits:           p.fpHits.Load(),
		NoopIR:           p.noopIR.Load(),
		FPMismatches:     p.fpMismatches.Load(),
		Successes:        p.successes.Load(),
		Faults:           p.faults.Load(),
		Flagged:          p.flagged.Load(),
		Retries:          p.retries.Load(),
		Quarantined:      int64(p.QuarantineCount()),
	}
	for i := range p.shards {
		s.ShardHits[i] = p.shards[i].hits.Load()
	}
	return s
}

// Stats snapshots the program-level counters plus this Evaluator's batch
// accounting.
func (e *Evaluator) Stats() EvalStats {
	s := e.p.EvalStats()
	s.Batches = e.batches.Load()
	s.BatchWall = time.Duration(e.wallNS.Load())
	return s
}

// runIndexed runs fn(i) for every i in [0,n) across min(workers, n)
// goroutines pulling indices from a shared counter. fn must only write
// state owned by its own index. workers<=1 degenerates to a plain
// sequential loop with no goroutines at all.
//
// onPanic, when non-nil, turns escaped panics into worker restarts: the
// dying worker reports (index, recovered value) and a replacement goroutine
// is spawned so pool width — and the WaitGroup ledger — never shrinks. The
// panicked index is skipped (fn observed it once); with onPanic nil a panic
// propagates as before. In the sequential degenerate case onPanic is
// honored too, so Workers=1 and Workers=N agree on containment semantics.
func runIndexed(n, workers int, fn func(i int), onPanic func(i int, v any)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runOne(i, fn, onPanic)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var body func()
	body = func() {
		i := -1
		defer func() {
			if v := recover(); v != nil {
				if onPanic == nil {
					panic(v)
				}
				onPanic(i, v)
				go body() // replace the dead worker; wg balance unchanged
				return
			}
			wg.Done()
		}()
		for {
			i = int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go body()
	}
	wg.Wait()
}

// runOne is the sequential arm of runIndexed: one fn(i) call with the same
// panic containment the pool workers get.
func runOne(i int, fn func(i int), onPanic func(i int, v any)) {
	defer func() {
		if v := recover(); v != nil {
			if onPanic == nil {
				panic(v)
			}
			onPanic(i, v)
		}
	}()
	fn(i)
}
