package core

import (
	"testing"

	"autophase/internal/features"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// TestGraphObsExtendsObservation: GraphObs appends exactly the graph block
// and leaves the default observation prefix bit-identical — the opt-in can
// never perturb the paper's 56-feature vector.
func TestGraphObsExtendsObservation(t *testing.T) {
	p := mustProgram(t, "blowfish")
	base := EnvConfig{Obs: ObsBoth, Norm: NormLog, EpisodeLen: 6}
	gcfg := base
	gcfg.GraphObs = true

	e0 := NewPhaseEnv(p, base)
	e1 := NewPhaseEnv(p, gcfg)
	if e1.ObsSize() != e0.ObsSize()+features.NumGraphFeatures {
		t.Fatalf("GraphObs ObsSize %d, want %d+%d", e1.ObsSize(), e0.ObsSize(), features.NumGraphFeatures)
	}
	o0, o1 := e0.Reset(), e1.Reset()
	if len(o0) != e0.ObsSize() || len(o1) != e1.ObsSize() {
		t.Fatalf("observation lengths %d/%d do not match ObsSize %d/%d", len(o0), len(o1), e0.ObsSize(), e1.ObsSize())
	}
	for i := range o0 {
		if o0[i] != o1[i] {
			t.Fatalf("reset obs diverges at %d: %v vs %v — default prefix must be bit-identical", i, o0[i], o1[i])
		}
	}
	s0, r0, d0 := e0.Step([]int{5})
	s1, r1, d1 := e1.Step([]int{5})
	if r0 != r1 || d0 != d1 {
		t.Fatalf("reward/done diverge: %v/%v vs %v/%v", r0, d0, r1, d1)
	}
	for i := range s0 {
		if s0[i] != s1[i] {
			t.Fatalf("step obs diverges at %d", i)
		}
	}
	tail := s1[len(s0):]
	nonzero := false
	for _, v := range tail {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("graph block is all zero on a call-bearing benchmark")
	}

	// Histogram-only observations carry no feature vector to extend.
	hcfg := EnvConfig{Obs: ObsHistogram, EpisodeLen: 6, GraphObs: true}
	eh := NewPhaseEnv(p, hcfg)
	if eh.ObsSize() != passes.NumActions {
		t.Errorf("GraphObs must not extend histogram-only observations: %d", eh.ObsSize())
	}
}

// TestGraphObsMultiEnv mirrors the PhaseEnv guarantees on MultiPhaseEnv.
func TestGraphObsMultiEnv(t *testing.T) {
	p := mustProgram(t, "dhrystone")
	base := EnvConfig{Obs: ObsFeatures, Norm: NormTotal, EpisodeLen: 4}
	gcfg := base
	gcfg.GraphObs = true

	m0 := NewMultiPhaseEnv(p, base, 6, 3)
	m1 := NewMultiPhaseEnv(p, gcfg, 6, 3)
	if m1.ObsSize() != m0.ObsSize()+features.NumGraphFeatures {
		t.Fatalf("GraphObs ObsSize %d, want %d+%d", m1.ObsSize(), m0.ObsSize(), features.NumGraphFeatures)
	}
	o0, o1 := m0.Reset(), m1.Reset()
	if len(o0) != m0.ObsSize() || len(o1) != m1.ObsSize() {
		t.Fatalf("observation lengths %d/%d do not match ObsSize %d/%d", len(o0), len(o1), m0.ObsSize(), m1.ObsSize())
	}
	for i := range o0 {
		if o0[i] != o1[i] {
			t.Fatalf("reset obs diverges at %d", i)
		}
	}
}

// TestGraphFeaturesAfter pins the Program-level accessor to the direct
// extraction and its fault behavior.
func TestGraphFeaturesAfter(t *testing.T) {
	p := mustProgram(t, "qsort")
	seq := []int{38}
	g := p.GraphFeaturesAfter(seq)
	if len(g) != features.NumGraphFeatures {
		t.Fatalf("got %d graph features, want %d", len(g), features.NumGraphFeatures)
	}
	m := progen.Benchmark("qsort")
	passes.Apply(m, seq)
	want := features.ExtractGraph(m)
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("feature %d (%s) = %d, want %d", i, features.GraphNames[i], g[i], want[i])
		}
	}
	if g[14] < 1 {
		t.Error("qsort is recursive; the recursive-function count must be >= 1")
	}
	g2 := p.GraphFeaturesAfter(seq)
	for i := range g {
		if g[i] != g2[i] {
			t.Fatal("memoized re-query returned different values")
		}
	}
	bad := p.GraphFeaturesAfter([]int{9999})
	if len(bad) != features.NumGraphFeatures {
		t.Fatalf("invalid sequence must still yield a %d-vector", features.NumGraphFeatures)
	}
	for i, v := range bad {
		if v != 0 {
			t.Fatalf("invalid sequence must yield the zero vector, got %d at %d", v, i)
		}
	}
}
