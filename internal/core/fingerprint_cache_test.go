package core

import (
	"math/rand"
	"reflect"
	"testing"

	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
	"autophase/internal/search"
)

// TestSeqKeyWideIndices pins the two-byte sequence encoding: pass indices
// that collide modulo 256 must key differently, and the byte-prefix ⟺
// sequence-prefix equivalence the IR cache depends on must hold.
func TestSeqKeyWideIndices(t *testing.T) {
	if seqKey([]int{1, 2}) == seqKey([]int{257, 2}) {
		t.Fatal("indices 1 and 257 alias under seqKey")
	}
	if seqKey([]int{0}) == seqKey([]int{256}) {
		t.Fatal("indices 0 and 256 alias under seqKey")
	}
	seq := []int{38, 31, 300, 7, 45}
	key := seqKey(seq)
	if len(key) != 2*len(seq) {
		t.Fatalf("key length %d, want %d", len(key), 2*len(seq))
	}
	for i := 0; i <= len(seq); i++ {
		if seqKey(seq[:i]) != key[:2*i] {
			t.Fatalf("prefix of length %d does not match key prefix", i)
		}
	}
}

// TestFingerprintCollisionBehaviour pins what happens when two modules hash
// to the same fingerprint: the store treats them as equal and the second
// sequence silently shares the first profile. The test fabricates the
// "collision" by pre-publishing a sentinel profile under the fingerprint a
// sequence is about to produce.
func TestFingerprintCollisionBehaviour(t *testing.T) {
	p := mustProgram(t, "matmul")
	seq := []int{38, 31}
	m := p.Module()
	passes.Apply(m, seq)
	fp := m.Fingerprint()

	const sentinelCycles, sentinelArea = 123456789, 777
	p.fpPublish(fp, sentinelCycles, sentinelArea, false)

	cycles, area, ok := p.CompileArea(seq)
	if !ok {
		t.Fatal("compile failed")
	}
	if cycles != sentinelCycles || area != sentinelArea {
		t.Fatalf("colliding sequence did not share the stored profile: got (%d,%d), want (%d,%d)",
			cycles, area, sentinelCycles, sentinelArea)
	}
	st := p.EvalStats()
	if st.FPHits != 1 || st.Compiles != 0 {
		t.Fatalf("fp-hits=%d compiles=%d, want exactly one shared hit and no physical compile",
			st.FPHits, st.Compiles)
	}
}

// TestFingerprintStoreEviction pins the refcount discipline: over-cap
// eviction removes only unreferenced entries, so no cached sequence-index
// entry is ever orphaned, while unreferenced (seed) entries do get evicted.
func TestFingerprintStoreEviction(t *testing.T) {
	oldCap := fpStoreCap
	fpStoreCap = 6
	defer func() { fpStoreCap = oldCap }()

	p := mustProgram(t, "gsm")
	seqs := randSeqs(rand.New(rand.NewSource(21)), 10, 4)
	type want struct {
		cycles int64
		ok     bool
	}
	wants := make([]want, len(seqs))
	for i, s := range seqs {
		c, _, ok := p.Compile(s)
		wants[i] = want{c, ok}
	}

	// Flood the store with unreferenced fabricated entries to force
	// evictions well past the cap.
	for i := 0; i < 64; i++ {
		p.fpPublish(ir.Fingerprint{Hi: 0xdead, Lo: uint64(i)}, 1, 1, false)
	}

	p.fpMu.Lock()
	if len(p.fpEntries) != len(p.fpOrder) {
		p.fpMu.Unlock()
		t.Fatalf("fpOrder out of sync: %d vs %d", len(p.fpOrder), len(p.fpEntries))
	}
	referenced := 0
	for _, e := range p.fpEntries {
		if e.refs > 0 {
			referenced++
		}
	}
	total := len(p.fpEntries)
	p.fpMu.Unlock()
	if total > fpStoreCap+referenced {
		t.Fatalf("store holds %d entries (%d referenced), cap %d: unreferenced entries not evicted",
			total, referenced, fpStoreCap)
	}

	// Every cached sequence must still resolve without a single new sample:
	// eviction never orphans the sequence index.
	before := p.Samples()
	for i, s := range seqs {
		c, _, ok := p.Compile(s)
		if c != wants[i].cycles || ok != wants[i].ok {
			t.Fatalf("seq %v changed answer after eviction: (%d,%v) vs (%d,%v)",
				s, c, ok, wants[i].cycles, wants[i].ok)
		}
	}
	if extra := p.Samples() - before; extra != 0 {
		t.Fatalf("%d cached sequences recompiled after eviction", extra)
	}
}

// TestStaleSeqIndexRecovers drives the degenerate white-box state where a
// sequence-index entry outlives its fingerprint-store record (fabricated by
// clearing the store directly): the next Compile must fall through to a
// clean recompute instead of returning garbage.
func TestStaleSeqIndexRecovers(t *testing.T) {
	p := mustProgram(t, "matmul")
	seq := []int{38, 31, 30}
	c1, _, ok := p.Compile(seq)
	if !ok {
		t.Fatal("compile failed")
	}
	p.fpMu.Lock()
	p.fpEntries = make(map[ir.Fingerprint]*fpEntry)
	p.fpOrder = nil
	p.fpMu.Unlock()

	c2, _, ok := p.Compile(seq)
	if !ok || c2 != c1 {
		t.Fatalf("stale index recompute: got (%d,%v), want (%d,true)", c2, ok, c1)
	}
}

// TestFingerprintSharedMatchesFresh is the sharing differential: every
// result served through the fingerprint store on a long-lived Program must
// be identical to a fresh Program compiling the sequence from scratch, on
// every benchmark, and hls.Recheck must reproduce the stored verdicts from
// the optimized IR alone.
func TestFingerprintSharedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, name := range progen.BenchmarkNames {
		shared := mustProgram(t, name)
		pipelines := [][]int{
			passes.O3Sequence[:10],
			{2, 44, 2, 44}, // pure no-op pipeline: resolves to the O0 profile
		}
		pipelines = append(pipelines, randSeqs(rng, 3, 6)...)
		// Duplicate each pipeline with a no-op suffix so fingerprint sharing
		// actually triggers on every benchmark.
		for _, s := range pipelines[:len(pipelines):len(pipelines)] {
			pipelines = append(pipelines, append(append([]int(nil), s...), 2, 44))
		}
		for _, seq := range pipelines {
			sc, sa, sok := shared.CompileArea(seq)
			fresh := mustProgram(t, name)
			fc, fa, fok := fresh.CompileArea(seq)
			if sc != fc || sa != fa || sok != fok {
				t.Fatalf("%s seq %v: shared (%d,%d,%v) != fresh (%d,%d,%v)",
					name, seq, sc, sa, sok, fc, fa, fok)
			}
			if !reflect.DeepEqual(shared.FeaturesAfter(seq), fresh.FeaturesAfter(seq)) {
				t.Fatalf("%s seq %v: shared features differ from fresh", name, seq)
			}
			if sok {
				// Recompute-and-compare from the optimized IR alone.
				m := fresh.Module()
				passes.Apply(m, seq)
				if err := hls.Recheck(m, hls.DefaultConfig, interp.DefaultLimits, sc, sa); err != nil {
					t.Fatalf("%s seq %v: %v", name, seq, err)
				}
			}
		}
		if st := shared.EvalStats(); st.FPHits == 0 {
			t.Fatalf("%s: no fingerprint sharing across %d pipelines", name, len(pipelines))
		}
	}
}

// TestSanitizedDifferentialAgreesWithShared runs the same workload through
// a sanitized Program — which never takes the fingerprint shortcut and
// cross-checks the store against every recompute — and requires zero
// mismatches and zero sanitizer reports.
func TestSanitizedDifferentialAgreesWithShared(t *testing.T) {
	shared := mustProgram(t, "gsm")
	san := mustProgram(t, "gsm")
	san.EnableSanitizer()
	rng := rand.New(rand.NewSource(33))
	seqs := append(randSeqs(rng, 4, 5), passes.O3Sequence[:8], []int{2, 44})
	for _, seq := range seqs {
		sc, _, sok := shared.Compile(seq)
		dc, _, dok := san.Compile(seq)
		if sok != dok || (sok && sc != dc) {
			t.Fatalf("seq %v: shared (%d,%v) vs sanitized (%d,%v)", seq, sc, sok, dc, dok)
		}
	}
	if rep := san.SanitizerReport(); rep != nil {
		t.Fatalf("sanitizer report on a clean workload:\n%v", rep)
	}
	if st := san.EvalStats(); st.FPMismatches != 0 {
		t.Fatalf("fingerprint store disagreed with %d sanitized recomputes", st.FPMismatches)
	}
}

// TestGeneticProfileSharing is the headline acceptance check: on a genetic
// search, fingerprint sharing must answer at least as many distinct
// sequences as physical profiling does — i.e. the physical profile count is
// at most half of what the one-level cache (Compiles+FPHits) would have
// paid.
func TestGeneticProfileSharing(t *testing.T) {
	p := mustProgram(t, "matmul")
	obj := NewEvaluator(p, 1).Objective(8)
	search.Genetic(obj, rand.New(rand.NewSource(9)), search.DefaultGA(), 120)
	st := p.EvalStats()
	if st.Compiles == 0 || st.FPHits == 0 {
		t.Fatalf("degenerate run: compiles=%d fp-hits=%d", st.Compiles, st.FPHits)
	}
	if st.FPHits < st.Compiles {
		t.Fatalf("fingerprint sharing below 2x: compiles=%d fp-hits=%d (one-level cache would pay %d)",
			st.Compiles, st.FPHits, st.Compiles+st.FPHits)
	}
}
