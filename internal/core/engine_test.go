package core

import (
	"testing"

	"autophase/internal/hls"
)

// TestEngineStatsAttribution: the per-engine hit counters in EvalStats
// attribute every profile to the backend that answered it, and the Auto
// cascade prefers the cheapest engine that can.
func TestEngineStatsAttribution(t *testing.T) {
	p := mustProgram(t, "matmul")
	if p.Engine() != hls.EngineAuto {
		t.Fatalf("fresh program engine = %v, want Auto", p.Engine())
	}
	// NewProgram already profiled the original module and its -O3 form.
	st := p.EvalStats()
	if st.StaticHits+st.VMHits+st.InterpHits == 0 {
		t.Fatal("constructor profiles were not attributed to any engine")
	}
	before := st.VMHits + st.StaticHits + st.InterpHits

	if _, _, ok := p.Compile([]int{38}); !ok {
		t.Fatal("mem2reg compile failed")
	}
	st = p.EvalStats()
	if got := st.VMHits + st.StaticHits + st.InterpHits; got != before+1 {
		t.Fatalf("one fresh compile added %d engine hits, want 1", got-before)
	}
	if st.InterpHits != 0 {
		t.Fatalf("auto cascade fell through to the interpreter on a lowerable module: %+v", st)
	}
}

// TestSetEnginePins: pinning an engine routes every subsequent profile
// through it without changing the answer, and cached results are reused
// across the switch (the engines are bit-identical, so no invalidation).
func TestSetEnginePins(t *testing.T) {
	p := mustProgram(t, "qsort")
	seq := []int{38, 31, 30}
	autoCycles, _, ok := p.Compile(seq)
	if !ok {
		t.Fatal("auto compile failed")
	}
	compiles := p.EvalStats().Compiles

	p.SetEngine(hls.EngineInterp)
	if p.Engine() != hls.EngineInterp {
		t.Fatalf("Engine() = %v after SetEngine(Interp)", p.Engine())
	}
	// The memoized result survives the engine switch: same cycles, no new
	// physical compile.
	pinnedCycles, _, ok := p.Compile(seq)
	if !ok || pinnedCycles != autoCycles {
		t.Fatalf("pinned recompile: cycles=%d ok=%v, want %d", pinnedCycles, ok, autoCycles)
	}
	if got := p.EvalStats().Compiles; got != compiles {
		t.Fatalf("engine switch invalidated the compile cache: %d -> %d compiles", compiles, got)
	}
	// A fresh sequence under the pinned interpreter agrees with Auto's
	// answer for the same IR and is attributed to InterpHits.
	fresh := []int{38, 31}
	pinned, _, ok := p.Compile(fresh)
	if !ok {
		t.Fatal("pinned fresh compile failed")
	}
	if p.EvalStats().InterpHits == 0 {
		t.Fatal("pinned interpreter profile not counted in InterpHits")
	}
	q := mustProgram(t, "qsort")
	auto, _, ok := q.Compile(fresh)
	if !ok || auto != pinned {
		t.Fatalf("pinned interpreter cycles %d != auto cycles %d", pinned, auto)
	}
}

// TestEnvConfigEngineThreading: EnvConfig.Engine pins the program's
// profiler when an environment is built (the -engine flag's path into the
// RL loop); the zero value leaves the Auto cascade untouched.
func TestEnvConfigEngineThreading(t *testing.T) {
	p := mustProgram(t, "matmul")
	cfg := DefaultEnv()
	NewPhaseEnv(p, cfg)
	if p.Engine() != hls.EngineAuto {
		t.Fatalf("zero-value EnvConfig changed the engine to %v", p.Engine())
	}

	cfg.Engine = hls.EngineInterp
	NewPhaseEnv(p, cfg)
	if p.Engine() != hls.EngineInterp {
		t.Fatalf("EnvConfig.Engine not threaded through NewPhaseEnv: %v", p.Engine())
	}

	p2 := mustProgram(t, "qsort")
	cfg2 := DefaultEnv()
	cfg2.Engine = hls.EngineVM
	NewMultiPhaseEnv(p2, cfg2, 8, 8)
	if p2.Engine() != hls.EngineVM {
		t.Fatalf("EnvConfig.Engine not threaded through NewMultiPhaseEnv: %v", p2.Engine())
	}
}
