package core

import (
	"strings"
	"testing"
	"time"
)

// TestStatsStringCleanByteIdentical pins the exact one-line output of a
// clean single-tenant run. The serve-layer counters (tenants, shed,
// drained/checkpointed/resumed) follow the nonzero-only convention, so
// this string must never change when the engine runs outside `autophase
// serve` — any drift here is a CLI-output regression.
func TestStatsStringCleanByteIdentical(t *testing.T) {
	clean := EvalStats{Samples: 10, Compiles: 10}
	const want = "samples=10 compiles=10 fp-hits=0 noop-ir=0 cache-hits=0 (0/32 shards) merges=0 static=0 vm=0 interp=0"
	if got := clean.String(); got != want {
		t.Fatalf("clean stats output drifted:\n got  %q\n want %q", got, want)
	}
}

// TestStatsStringServeCountersConditional: the serve counters appear when
// (and only when) nonzero.
func TestStatsStringServeCountersConditional(t *testing.T) {
	s := EvalStats{Samples: 4, Tenants: 3, Shed: 2, Checkpointed: 1}
	str := s.String()
	for _, want := range []string{"tenants=3", "shed=2", "checkpointed=1"} {
		if !strings.Contains(str, want) {
			t.Fatalf("serve stats should mention %s: %q", want, str)
		}
	}
	clean := EvalStats{Samples: 4}
	for _, banned := range []string{"tenants=", "shed=", "drained=", "checkpointed=", "resumed="} {
		if strings.Contains(clean.String(), banned) {
			t.Fatalf("non-serve stats must not mention %s: %q", banned, clean.String())
		}
	}
}

// TestStatsAdd: the serve layer's aggregation must sum every counter,
// including the per-shard hit vector and the batch wall clock.
func TestStatsAdd(t *testing.T) {
	a := EvalStats{Samples: 3, Successes: 2, Faults: 1, Compiles: 3, BatchWall: time.Second}
	a.ShardHits[0] = 2
	b := EvalStats{Samples: 5, Successes: 5, Compiles: 4, Tenants: 1, BatchWall: time.Second}
	b.ShardHits[0] = 1
	b.ShardHits[7] = 4
	a.Add(b)
	if a.Samples != 8 || a.Successes != 7 || a.Faults != 1 || a.Compiles != 7 {
		t.Fatalf("Add missed a core counter: %+v", a)
	}
	if a.Samples != a.Successes+a.Faults+a.Flagged {
		t.Fatalf("Add broke the accounting invariant: %+v", a)
	}
	if a.ShardHits[0] != 3 || a.ShardHits[7] != 4 {
		t.Fatalf("Add must sum shard hits element-wise: %v", a.ShardHits)
	}
	if a.BatchWall != 2*time.Second || a.Tenants != 1 {
		t.Fatalf("Add missed BatchWall or Tenants: %+v", a)
	}
}
