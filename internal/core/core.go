// Package core is the AutoPhase framework (Figure 4 of the paper): it wires
// the compiler passes, the IR feature extractor and the HLS clock-cycle
// profiler into a gym-style reinforcement-learning environment, collects
// the feature–action–reward tuples the random-forest analysis consumes, and
// reduces the state/action spaces from the forests' importances.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"autophase/internal/artifact"
	"autophase/internal/features"
	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
)

// cacheShards is the number of key-hashed shards the compile/feature cache
// is split into. 32 comfortably exceeds GOMAXPROCS on the machines this
// runs on, so two workers rarely contend on the same shard lock, while the
// per-shard map overhead stays negligible next to one compiled module.
const cacheShards = 32

// Program wraps one input program with compilation caching: the paper
// counts "samples" as clock-cycle profiler invocations, so repeated
// evaluations of the same pass sequence are memoized and free.
//
// Program is safe for concurrent use. The memoized compile and feature
// results live in key-hashed shards, each guarded by its own RWMutex so
// cache hits (the common case inside an episode) only take a read lock,
// and misses on different sequences compile in parallel. Concurrent misses
// on the *same* sequence are deduplicated singleflight-style: one goroutine
// compiles, the rest wait on its result and are counted as merges — the
// duplicated work is accounted for, not repeated.
//
// The cache is two-level. The per-shard sequence index maps a pass sequence
// to the structural fingerprint of the IR it produces; the fingerprint-keyed
// store holds the physical profile (cycles, area) and, through featMemo, the
// feature vector. Distinct sequences that converge on the same IR — the
// common case, since most passes are no-ops most of the time — share one
// profiler run and one feature extraction (counted as FPHits rather than
// Compiles).
type Program struct {
	Name string
	orig *ir.Module
	// origFP is the fingerprint of the unoptimized module: the empty
	// sequence's entry in the fingerprint store, and the fingerprint every
	// all-no-op sequence resolves to without profiling.
	origFP ir.Fingerprint

	O0Cycles int64 // cycles with no optimization
	O3Cycles int64 // cycles after the -O3 reference pipeline

	hlsCfg hls.Config

	// profiler is the unified engine front end (static → VM → interpreter
	// under EngineAuto). It owns the lowered-bytecode cache and the
	// per-engine hit counters; its limits/engine/cross-check knobs are only
	// ever changed under cfgMu so in-flight compiles (which hold cfgMu for
	// read) never observe a mid-compile switch.
	profiler *hls.Profiler

	// cfgMu guards the compile configuration (interpreter limits, engine
	// selection, sanitizer mode) against whole-cache operations: compiles
	// hold it for read, so SetLimits/ResetSamples/EnableSanitizer observe
	// no in-flight compile using the old configuration.
	cfgMu    sync.RWMutex
	sanitize bool // guarded by cfgMu

	shards [cacheShards]cacheShard

	// The fingerprint store: physical profile results keyed by the
	// structural fingerprint of the optimized IR. Entries referenced by a
	// cached sequence-index entry (refs > 0) are never evicted, so the thin
	// index cannot be orphaned; unreferenced entries (the O0/O3 seeds, or
	// leftovers after SetLimits) go first when the store exceeds fpStoreCap.
	fpMu      sync.Mutex
	fpEntries map[ir.Fingerprint]*fpEntry // guarded by fpMu
	fpOrder   []ir.Fingerprint            // guarded by fpMu; insertion order (eviction)

	// featMemo memoizes feature vectors by fingerprint: feature extraction
	// is pure in the IR, so IR-equal modules share one extraction.
	featMemo features.Memo

	// graphMemo memoizes the opt-in graph feature block, also by
	// fingerprint, in its own keyspace (the vectors have different shapes).
	graphMemo features.Memo

	// artifacts is the optional persistent tier beneath the in-memory
	// memos: feature and graph-feature vectors for previously seen
	// fingerprints are read from disk instead of re-extracted, and fresh
	// extractions are written behind. The profiler holds the same store for
	// profile verdicts and lowered bytecode. Nil means memory-only.
	artifacts atomic.Pointer[artifact.Store]

	irMu    sync.Mutex
	irCache map[string]irEntry // guarded by irMu; optimized IR + fingerprint per prefix
	irOrder []string           // guarded by irMu; irCache keys in insertion order (eviction)

	// The atomic stats block (EvalStats is its snapshot): samples is the
	// paper's accounting unit, the rest are the evaluation engine's
	// observability surface. Every sample-charged query resolves to exactly
	// one of successes/faults/flagged, so samples = successes + faults +
	// flagged holds at any worker count (the chaos suite's invariant).
	samples      atomic.Int64
	successes    atomic.Int64 // sample-charged queries that returned ok
	faults       atomic.Int64 // sample-charged queries that returned a fault
	flagged      atomic.Int64 // sample-charged queries the sanitizer failed
	retries      atomic.Int64 // bounded retries of deadline-class faults
	compiles     atomic.Int64 // physical compile+profile executions
	cacheHits    atomic.Int64
	merges       atomic.Int64 // singleflight-deduplicated concurrent compiles
	fpHits       atomic.Int64 // new sequences sharing an existing profile by fingerprint
	noopIR       atomic.Int64 // pass suffixes that changed nothing (module reused outright)
	fpMismatches atomic.Int64 // sanitizer: stored fp profile disagreed with recompute

	// The quarantine tier: sequences whose compile faulted with a
	// remembered kind (panic forever, deadline until SetLimits). A
	// quarantined sequence is never re-run and never cached as valid;
	// every query of it is re-charged as one sample and one fault, exactly
	// as a failed profile is, so accounting is worker-count invariant.
	quarMu sync.Mutex
	quar   map[string]*EvalFault // guarded by quarMu

	// faultHook (SetFaultHook) observes physical panic/deadline faults;
	// when unset, crash bundles go to the process-wide SetCrashDir sink.
	hookMu    sync.Mutex
	faultHook FaultHook // guarded by hookMu

	bestMu  sync.Mutex
	best    int64 // guarded by bestMu; best cycle count seen since the last reset
	bestSeq []int // guarded by bestMu

	// Sanitizer mode (EnableSanitizer): every compile runs the pass
	// sanitizer; a failing sequence is marked bad (Compile returns !ok, so
	// the environment ends the episode with a penalty instead of learning
	// from a corrupted reward) and the first report is retained.
	sanMu     sync.Mutex
	sanBad    map[string]bool         // guarded by sanMu
	sanReport *passes.SanitizerReport // guarded by sanMu
}

type cacheShard struct {
	mu       sync.RWMutex
	cache    map[string]seqEntry  // guarded by mu
	inflight map[string]*inflight // guarded by mu
	hits     atomic.Int64
}

// seqEntry is one sequence-index record: the fingerprint of the IR the
// sequence produces (profile and features live in the fingerprint store),
// or a cached failure verdict (ok=false, sanitizer-flagged sequences).
type seqEntry struct {
	fp ir.Fingerprint
	ok bool
}

// fpEntry is one fingerprint-store record. refs counts the sequence-index
// entries resolving to it; referenced entries are never evicted.
type fpEntry struct {
	cycles, area int64
	hasProfile   bool
	refs         int
}

// irEntry pairs a cached optimized module with its fingerprint, so prefix
// extension and no-op reuse never re-hash a module already fingerprinted.
type irEntry struct {
	m  *ir.Module
	fp ir.Fingerprint
}

// inflight is one in-progress compilation. Waiters block on done; the
// channel close publishes res and cached to them.
type inflight struct {
	done   chan struct{}
	res    compileResult
	cached bool
}

// irCacheCap bounds the per-program optimized-IR cache; episodes extend
// sequences one pass at a time, so the previous prefix is almost always
// resident and each compile costs one pass application instead of the
// whole sequence. It is a variable only so tests can shrink it.
var irCacheCap = 2048

// fpStoreCap bounds the fingerprint store. Only unreferenced entries are
// evictable, so the store can exceed the cap while every entry is live.
// It is a variable only so tests can shrink it.
var fpStoreCap = 1 << 15

type compileResult struct {
	cycles int64
	area   int64
	feats  []int64
	fp     ir.Fingerprint
	ok     bool
	fault  *EvalFault // non-nil when ok=false because the compile faulted
}

// defaultArtifacts is the process-wide store NewProgram attaches to every
// new Program (SetDefaultArtifacts). A global is the right shape here: the
// store is content-addressed, so every Program in the process shares one
// correctly by construction, and the baseline profiles inside NewProgram
// warm from disk too — an explicit post-construction attach would miss
// them.
var defaultArtifacts atomic.Pointer[artifact.Store]

// SetDefaultArtifacts sets (nil clears) the persistent artifact store that
// subsequent NewProgram calls attach. Programs hold the store they were
// built with; callers own Close ordering (close after the programs are
// done).
func SetDefaultArtifacts(st *artifact.Store) { defaultArtifacts.Store(st) }

// NewProgram profiles the unoptimized and -O3 baselines and returns the
// wrapped program. The module is cloned; the caller's copy is not touched.
func NewProgram(name string, m *ir.Module) (*Program, error) {
	p := &Program{
		Name:      name,
		orig:      m.Clone(),
		hlsCfg:    hls.DefaultConfig,
		profiler:  hls.NewProfiler(hls.ProfileOptions{}),
		irCache:   make(map[string]irEntry),
		fpEntries: make(map[ir.Fingerprint]*fpEntry),
	}
	if st := defaultArtifacts.Load(); st != nil {
		p.artifacts.Store(st)
		p.profiler.SetArtifacts(st)
	}
	p.origFP = p.orig.Fingerprint()
	for i := range p.shards {
		p.shards[i].cache = make(map[string]seqEntry)
	}
	r0, err := p.profile(p.orig, p.origFP, true)
	if err != nil {
		return nil, fmt.Errorf("core: O0 profile of %s: %w", name, err)
	}
	p.O0Cycles = r0.Cycles
	o3 := p.orig.Clone()
	passes.ApplyO3(o3)
	fp3 := o3.Fingerprint()
	r3, err := p.profile(o3, fp3, true)
	if err != nil {
		return nil, fmt.Errorf("core: O3 profile of %s: %w", name, err)
	}
	p.O3Cycles = r3.Cycles
	// Seed the fingerprint store with the baselines: a search sequence that
	// reproduces the unoptimized or the -O3 IR shares these profiles instead
	// of re-running the profiler. Unreferenced, so evictable.
	p.fpPublish(p.origFP, r0.Cycles, int64(r0.AreaLUT), false)
	p.fpPublish(fp3, r3.Cycles, int64(r3.AreaLUT), false)
	return p, nil
}

// profile estimates m's cycle count through the unified engine front end
// (static estimator → bytecode VM → tree-walking interpreter under the
// default EngineAuto policy; SetEngine pins one). Callers that already
// hold m's fingerprint pass it so the lowered-bytecode cache never
// re-hashes. Under the sanitizer every engine runs and must agree exactly.
func (p *Program) profile(m *ir.Module, fp ir.Fingerprint, haveFP bool) (*hls.Report, error) {
	if haveFP {
		return p.profiler.ProfileFP(m, fp)
	}
	return p.profiler.Profile(m)
}

// Module returns a fresh clone of the original (unoptimized) module.
func (p *Program) Module() *ir.Module { return p.orig.Clone() }

// SetArtifacts attaches (nil detaches) a persistent artifact store to this
// Program and its profiler. Tests use it for explicit stores; production
// wiring goes through SetDefaultArtifacts so the NewProgram baselines warm
// too.
func (p *Program) SetArtifacts(st *artifact.Store) {
	p.artifacts.Store(st)
	p.profiler.SetArtifacts(st)
}

// EnableSanitizer switches every subsequent Compile into sanitized mode:
// after each pass of a sequence the collect-all verifier and the dataflow
// consistency checks run, and a sequence that corrupts the module compiles
// as failed (ok=false) instead of feeding a bogus cycle count into the
// reward. The first failure's delta-minimized report is kept.
func (p *Program) EnableSanitizer() {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.sanitize = true
	// Profiles join in: every engine (static, VM, interpreter) runs and
	// must agree bit-for-bit, so a miscompiled reward can't slip through
	// whichever engine happened to answer.
	p.profiler.SetCrossCheck(true)
	p.sanMu.Lock()
	if p.sanBad == nil {
		p.sanBad = make(map[string]bool)
	}
	p.sanMu.Unlock()
}

// SanitizerReport returns the report of the first miscompiling sequence a
// sanitized Compile observed, or nil when none failed.
func (p *Program) SanitizerReport() *passes.SanitizerReport {
	p.sanMu.Lock()
	defer p.sanMu.Unlock()
	return p.sanReport
}

// Features returns the feature vector of the unoptimized program. It is an
// observation-only surface, so a contained extraction fault degrades to an
// all-zero vector instead of failing the caller.
func (p *Program) Features() []int64 {
	if f, fault := p.extractSafe(p.orig, p.origFP, nil); fault == nil {
		return f
	}
	return make([]int64, features.NumFeatures)
}

// seqKey encodes a sequence as two big-endian bytes per pass index. The
// fixed width keeps the byte-prefix ⟺ sequence-prefix equivalence the IR
// cache's prefix reuse and eviction protection depend on, while indices up
// to 65535 encode without aliasing (byte(s) collapsed 256+i onto i).
func seqKey(seq []int) string {
	b := make([]byte, 2*len(seq))
	for i, s := range seq {
		b[2*i] = byte(s >> 8)
		b[2*i+1] = byte(s)
	}
	return string(b)
}

// shardIndex hashes a sequence key onto a cache shard (FNV-1a).
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % cacheShards)
}

// Compile applies the pass sequence to a clone of the program, extracts
// features and profiles the estimated cycle count. Results are memoized;
// each cache miss counts as one profiler sample.
func (p *Program) Compile(seq []int) (cycles int64, feats []int64, ok bool) {
	r := p.compile(seq)
	return r.cycles, r.feats, r.ok
}

// CompileArea is Compile's area-objective variant: it returns the
// functional-unit area estimate (LUTs) alongside the cycle count, for the
// §5.1 alternative rewards (area, or multi-objective combinations).
func (p *Program) CompileArea(seq []int) (cycles, area int64, ok bool) {
	r := p.compile(seq)
	return r.cycles, r.area, r.ok
}

// resolve materializes a compileResult from a sequence-index entry. It
// fails (second return false) only when the entry went stale — its
// fingerprint-store record lost its profile or its feature memo entry was
// dropped — in which case the caller recomputes as a miss.
func (p *Program) resolve(e seqEntry) (compileResult, bool) {
	if !e.ok {
		return compileResult{}, true // cached failure verdict
	}
	cyc, area, ok := p.fpPeek(e.fp)
	if !ok {
		return compileResult{}, false
	}
	feats := p.featMemo.Get(e.fp)
	if feats == nil {
		return compileResult{}, false
	}
	return compileResult{cycles: cyc, area: area, feats: feats, fp: e.fp, ok: true}, true
}

// fpPeek reads a fingerprint-store profile without touching refcounts.
func (p *Program) fpPeek(fp ir.Fingerprint) (cycles, area int64, ok bool) {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	if e := p.fpEntries[fp]; e != nil && e.hasProfile {
		return e.cycles, e.area, true
	}
	return 0, 0, false
}

// fpShare is the fingerprint fast path: if fp already has a profile, take a
// reference (the caller will cache a sequence-index entry resolving to it)
// and return the shared result.
func (p *Program) fpShare(fp ir.Fingerprint) (cycles, area int64, ok bool) {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	if e := p.fpEntries[fp]; e != nil && e.hasProfile {
		e.refs++
		return e.cycles, e.area, true
	}
	return 0, 0, false
}

// fpPublish records a physical profile under fp, taking a reference when
// the caller caches a sequence-index entry for it (ref), and evicts
// unreferenced entries once the store exceeds its cap.
func (p *Program) fpPublish(fp ir.Fingerprint, cycles, area int64, ref bool) {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	e := p.fpEntries[fp]
	if e == nil {
		e = &fpEntry{}
		p.fpEntries[fp] = e
		p.fpOrder = append(p.fpOrder, fp)
	}
	e.cycles, e.area, e.hasProfile = cycles, area, true
	if ref {
		e.refs++
	}
	for len(p.fpEntries) > fpStoreCap {
		victim := -1
		for i, k := range p.fpOrder {
			if v := p.fpEntries[k]; v != nil && v.refs == 0 && k != fp {
				victim = i
				break
			}
		}
		if victim < 0 {
			return // every entry is referenced; over-cap is the safe state
		}
		delete(p.fpEntries, p.fpOrder[victim])
		p.fpOrder = append(p.fpOrder[:victim], p.fpOrder[victim+1:]...)
	}
}

// fpUnref releases a sequence-index entry's reference.
func (p *Program) fpUnref(fp ir.Fingerprint) {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	if e := p.fpEntries[fp]; e != nil && e.refs > 0 {
		e.refs--
	}
}

// compile is the shared memoized entry point: boundary validation, then
// the quarantine gate, then the shard read-lock fast path, then
// singleflight on a miss.
func (p *Program) compile(seq []int) compileResult {
	// The API boundary for externally supplied sequences: an out-of-range
	// index becomes a typed fault, not a ByIndex panic. Re-charged on every
	// query (nothing is cached for a sequence that never ran).
	if err := passes.CheckSeq(seq); err != nil {
		f := &EvalFault{Kind: FaultBadSeq, Stage: "boundary", Pass: -1, Pos: -1,
			Program: p.Name, Seq: append([]int(nil), seq...), Err: err.Error()}
		p.samples.Add(1)
		p.faults.Add(1)
		return compileResult{fault: f}
	}
	key := seqKey(seq)
	// Quarantine gate: remembered faults short-circuit the compile — the
	// sequence is never re-run — but are re-charged as one sample and one
	// fault per query, mirroring the failed-profile accounting rule.
	if f := p.quarGet(key); f != nil {
		p.samples.Add(1)
		p.faults.Add(1)
		return compileResult{fault: f}
	}
	sh := &p.shards[shardIndex(key)]
	sh.mu.RLock()
	e, hit := sh.cache[key]
	sh.mu.RUnlock()
	if hit {
		if r, ok := p.resolve(e); ok {
			p.cacheHits.Add(1)
			sh.hits.Add(1)
			return r
		}
	}

	sh.mu.Lock()
	if e, hit := sh.cache[key]; hit {
		if r, ok := p.resolve(e); ok {
			sh.mu.Unlock()
			p.cacheHits.Add(1)
			sh.hits.Add(1)
			return r
		}
		// Stale index entry (fingerprint store cleared under it): drop it
		// and recompute through the singleflight path.
		delete(sh.cache, key)
		if e.ok {
			p.fpUnref(e.fp)
		}
	}
	if fl, busy := sh.inflight[key]; busy {
		sh.mu.Unlock()
		<-fl.done
		p.merges.Add(1)
		switch {
		case fl.res.fault != nil:
			// A fault is re-charged to every merged waiter: sequentially,
			// each of these queries would have hit the quarantine gate (or
			// re-run a transient failure) and paid one sample + one fault,
			// so the merged path must charge the same.
			p.samples.Add(1)
			p.faults.Add(1)
		case !fl.cached:
			// Sequential behaviour re-counts an uncached (failed) compile as
			// a fresh sample on every query; a merged waiter counts the same
			// way so sample totals are identical at any worker count.
			p.samples.Add(1)
		}
		return fl.res
	}
	fl := &inflight{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[string]*inflight)
	}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	res, cacheable := p.compileGuarded(seq, key)

	sh.mu.Lock()
	if cacheable {
		// The fingerprint-store reference for this entry was taken inside
		// compileMiss (fpShare/fpPublish), exactly once per cached entry.
		sh.cache[key] = seqEntry{fp: res.fp, ok: res.ok}
	}
	delete(sh.inflight, key)
	sh.mu.Unlock()
	fl.res, fl.cached = res, cacheable
	close(fl.done)
	return res
}

// compileGuarded is the outermost containment boundary around the
// singleflight owner's work: the staged boundaries inside compileMiss
// attribute pass, feature and profile panics precisely, and this catch-all
// converts anything that still escapes (cache bookkeeping, stats) into a
// panic-class fault instead of unwinding into the worker pool with the
// inflight entry still registered — which would deadlock every waiter.
func (p *Program) compileGuarded(seq []int, key string) (res compileResult, cacheable bool) {
	defer func() {
		if v := recover(); v != nil {
			res = p.faultResult(newPanicFault(v, "boundary", p.Name, seq), key)
			cacheable = false
		}
	}()
	return p.compileMiss(seq, key)
}

// faultResult charges and records one physical fault occurrence: the fault
// counter, the quarantine tier (for remembered kinds), and the forensics
// sink (hook or crash directory) for panic/deadline-class faults. The
// sample for the query was already charged by compileMiss.
func (p *Program) faultResult(f *EvalFault, key string) compileResult {
	p.faults.Add(1)
	if f.Kind.quarantinable() {
		p.quarMu.Lock()
		if p.quar == nil {
			p.quar = make(map[string]*EvalFault)
		}
		p.quar[key] = f
		p.quarMu.Unlock()
		p.hookMu.Lock()
		hook := p.faultHook
		p.hookMu.Unlock()
		if hook != nil {
			hook(f)
		} else if dir := crashDir(); dir != "" {
			// Best-effort forensics: a failing write must not turn a
			// contained fault back into a hard failure.
			_, _ = WriteCrashBundle(dir, p, f)
		}
	}
	return compileResult{fault: f}
}

// quarGet returns the remembered fault for key, or nil.
func (p *Program) quarGet(key string) *EvalFault {
	p.quarMu.Lock()
	defer p.quarMu.Unlock()
	return p.quar[key]
}

// IsQuarantined reports whether seq is quarantined, and with which fault.
func (p *Program) IsQuarantined(seq []int) (*EvalFault, bool) {
	f := p.quarGet(seqKey(seq))
	return f, f != nil
}

// QuarantineCount returns the number of quarantined sequences.
func (p *Program) QuarantineCount() int {
	p.quarMu.Lock()
	defer p.quarMu.Unlock()
	return len(p.quar)
}

// SetFaultHook routes physical panic/deadline-class faults to h instead of
// the SetCrashDir sink. A nil h restores the default.
func (p *Program) SetFaultHook(h FaultHook) {
	p.hookMu.Lock()
	p.faultHook = h
	p.hookMu.Unlock()
}

// IRText returns the textual IR of the unoptimized module — what a custom
// FaultHook embeds in its own crash bundles.
func (p *Program) IRText() string { return p.orig.String() }

// compileMiss does the uncached work — build the optimized IR, then either
// share an existing profile by fingerprint or physically profile — outside
// any shard lock, so misses on different sequences run in parallel. Each
// stage (pass execution, feature extraction, profiling) runs behind its own
// containment boundary; a stage panic becomes a typed fault, not a dead
// worker.
func (p *Program) compileMiss(seq []int, key string) (res compileResult, cacheable bool) {
	p.cfgMu.RLock()
	defer p.cfgMu.RUnlock()
	p.samples.Add(1)
	m, fp, irOK, fault := p.buildIRSafe(seq, key, p.sanitize)
	if fault != nil {
		return p.faultResult(fault, key), false
	}
	if !irOK {
		// The sanitizer flagged this sequence: fail the compile loudly
		// rather than profiling a miscompiled module.
		p.flagged.Add(1)
		return compileResult{}, true
	}
	// Features are extracted (and memoized) before the profile so a
	// feature-stage fault is caught while no fingerprint-store reference is
	// held yet.
	feats, ffault := p.extractSafe(m, fp, seq)
	if ffault != nil {
		return p.faultResult(ffault, key), false
	}
	if !p.sanitize {
		// Fingerprint fast path: another sequence already reached this exact
		// IR, so its profile (and feature vector) carry over wholesale.
		if cyc, area, ok := p.fpShare(fp); ok {
			p.fpHits.Add(1)
			p.successes.Add(1)
			res = compileResult{cycles: cyc, area: area, feats: feats, fp: fp, ok: true}
			p.recordBest(cyc, seq)
			return res, true
		}
	}
	p.compiles.Add(1)
	rep, pfault := p.profileSafe(m, fp, seq)
	if pfault != nil {
		// Profile-class faults (limit overruns, traps, injected errors) are
		// deliberately not cached or quarantined: the verdict depends on the
		// configured interp.Limits and must be re-evaluated — and re-counted
		// as a sample and a fault — on every query. Panic/deadline-class
		// faults are quarantined inside faultResult.
		return p.faultResult(pfault, key), false
	}
	if p.sanitize {
		// Differential mode never takes the fingerprint shortcut; instead it
		// cross-checks the store against every recompute-from-scratch.
		if cyc, area, ok := p.fpPeek(fp); ok && (cyc != rep.Cycles || area != int64(rep.AreaLUT)) {
			p.fpMismatches.Add(1)
		}
	}
	p.fpPublish(fp, rep.Cycles, int64(rep.AreaLUT), true)
	p.successes.Add(1)
	res = compileResult{cycles: rep.Cycles, area: int64(rep.AreaLUT),
		feats: feats, fp: fp, ok: true}
	p.recordBest(rep.Cycles, seq)
	return res, true
}

// buildIRSafe is buildIR behind the pass-stage containment boundary: a
// panicking pass (attributed by passes.Apply as a *PassPanic) surfaces as a
// typed panic-class fault.
func (p *Program) buildIRSafe(seq []int, key string, sanitize bool) (m *ir.Module, fp ir.Fingerprint, ok bool, fault *EvalFault) {
	defer func() {
		if v := recover(); v != nil {
			m, fp, ok = nil, ir.Fingerprint{}, false
			fault = newPanicFault(v, "pass", p.Name, seq)
		}
	}()
	m, fp, ok = p.buildIR(seq, key, sanitize)
	return
}

// extractSafe is memoized feature extraction behind the feature-stage
// containment boundary, with the persistent tier underneath the memo: a
// disk record for the fingerprint skips extraction entirely (features are
// pure in the IR, so the stored vector IS the extraction), and fresh
// extractions are written behind.
func (p *Program) extractSafe(m *ir.Module, fp ir.Fingerprint, seq []int) (feats []int64, fault *EvalFault) {
	defer func() {
		if v := recover(); v != nil {
			feats = nil
			fault = newPanicFault(v, "features", p.Name, seq)
		}
	}()
	st := p.artifacts.Load()
	if st == nil {
		return p.featMemo.Extract(m, fp), nil
	}
	if f := p.featMemo.Get(fp); f != nil {
		return f, nil
	}
	k := artifact.Key{FP: fp, Kind: artifact.KindFeatures}
	if data, ok := st.Get(k); ok {
		if vec, ok := decodeVec(data, features.NumFeatures); ok {
			return p.featMemo.Put(fp, vec), nil
		}
		st.NoteCorrupt(k)
	}
	f := p.featMemo.Extract(m, fp)
	st.Put(k, encodeVec(f))
	return f, nil
}

// graphExtract is extractSafe's shape for the graph feature block (no
// containment boundary of its own: GraphFeaturesAfter carries one).
func (p *Program) graphExtract(m *ir.Module, fp ir.Fingerprint) []int64 {
	st := p.artifacts.Load()
	if st == nil {
		return p.graphMemo.ExtractGraph(m, fp)
	}
	if f := p.graphMemo.Get(fp); f != nil {
		return f
	}
	k := artifact.Key{FP: fp, Kind: artifact.KindGraphFeatures}
	if data, ok := st.Get(k); ok {
		if vec, ok := decodeVec(data, features.NumGraphFeatures); ok {
			return p.graphMemo.Put(fp, vec)
		}
		st.NoteCorrupt(k)
	}
	f := p.graphMemo.ExtractGraph(m, fp)
	st.Put(k, encodeVec(f))
	return f
}

// encodeVec/decodeVec carry a feature vector as packed little-endian i64s.
// The expected element count is part of the contract: a record of any
// other length is corruption (or a feature-set version change, which must
// read as a miss so the new extractor's vector overwrites it).
func encodeVec(v []int64) []byte {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
	}
	return buf
}

func decodeVec(data []byte, n int) ([]int64, bool) {
	if len(data) != 8*n {
		return nil, false
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return v, true
}

// profileSafe is the profiler behind the profile-stage containment
// boundary, with the retry policy applied: deadline-class failures
// (transient under contention) get one bounded retry; everything else gets
// none. Panics inside scheduling, the interpreter or the static estimator
// become panic-class faults.
func (p *Program) profileSafe(m *ir.Module, fp ir.Fingerprint, seq []int) (*hls.Report, *EvalFault) {
	rep, err, fault := p.profileRecover(m, fp, seq)
	if fault != nil {
		return nil, fault
	}
	if err != nil && errors.Is(err, interp.ErrDeadline) {
		p.retries.Add(1)
		rep, err, fault = p.profileRecover(m, fp, seq)
		if fault != nil {
			return nil, fault
		}
	}
	if err != nil {
		return nil, classifyProfileErr(err, p.Name, seq)
	}
	return rep, nil
}

func (p *Program) profileRecover(m *ir.Module, fp ir.Fingerprint, seq []int) (rep *hls.Report, err error, fault *EvalFault) {
	defer func() {
		if v := recover(); v != nil {
			rep, err = nil, nil
			fault = newPanicFault(v, "profile", p.Name, seq)
		}
	}()
	rep, err = p.profile(m, fp, true)
	return
}

// recordBest updates the incumbent. Ties on the cycle count break towards
// the shorter, then lexicographically smaller sequence, so the incumbent is
// a function of the *set* of evaluated sequences rather than of evaluation
// order — the determinism contract batch evaluation relies on.
func (p *Program) recordBest(cycles int64, seq []int) {
	p.bestMu.Lock()
	defer p.bestMu.Unlock()
	switch {
	case p.best == 0 || cycles < p.best:
	case cycles == p.best && lessSeq(seq, p.bestSeq):
	default:
		return
	}
	p.best = cycles
	p.bestSeq = append([]int(nil), seq...)
}

// lessSeq orders sequences by length, then lexicographically.
func lessSeq(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (p *Program) flaggedBad(key string) bool {
	p.sanMu.Lock()
	defer p.sanMu.Unlock()
	return p.sanBad[key]
}

// buildIR produces the optimized module for seq and its fingerprint,
// reusing the longest cached prefix so that sequence extensions apply only
// the new suffix. The suffix runs on a copy-on-write clone of the cached
// base, so passes deep-copy only the functions they rewrite — and a suffix
// that changes nothing reuses the base module and its fingerprint outright
// (no clone, no re-hash, counted in NoopIR). Cached modules are immutable
// once published, so the apply work runs outside the cache lock. Callers
// hold cfgMu for read and pass the sanitize flag down to avoid
// re-acquiring it. ok=false means the sanitizer flagged the sequence; the
// returned module is the corrupted evidence and the fingerprint is zero.
func (p *Program) buildIR(seq []int, key string, sanitize bool) (_ *ir.Module, _ ir.Fingerprint, ok bool) {
	p.irMu.Lock()
	if e, hit := p.irCache[key]; hit {
		p.irMu.Unlock()
		return e.m, e.fp, true
	}
	// Longest cached prefix (the empty prefix is the original program).
	start := 0
	base := irEntry{m: p.orig, fp: p.origFP}
	for i := len(seq) - 1; i > 0; i-- {
		if e, hit := p.irCache[key[:2*i]]; hit {
			base, start = e, i
			break
		}
	}
	p.irMu.Unlock()

	if sanitize {
		// The sanitizer's verifiers renumber instructions and replay
		// prefixes, so this path works on a deep clone, never shares, and
		// always re-derives the fingerprint.
		m := base.m.Clone()
		pm := passes.NewManager()
		pm.Sanitize = true
		pm.Apply(m, seq[start:])
		if rep := pm.SanitizerReport(); rep != nil {
			p.sanMu.Lock()
			p.sanBad[key] = true
			if p.sanReport == nil {
				p.sanReport = rep
			}
			p.sanMu.Unlock()
			// Do not cache the corrupted module: extensions of this
			// sequence must re-derive (and re-flag) from a clean prefix.
			return m, ir.Fingerprint{}, false
		}
		fp := m.Fingerprint()
		p.irMu.Lock()
		p.irCachePut(key, irEntry{m: m, fp: fp})
		p.irMu.Unlock()
		return m, fp, true
	}

	m, changed := passes.RunSequence(base.m, seq[start:])
	fp := base.fp
	if changed {
		fp = m.Fingerprint()
	} else {
		p.noopIR.Add(1)
	}
	p.irMu.Lock()
	p.irCachePut(key, irEntry{m: m, fp: fp})
	p.irMu.Unlock()
	return m, fp, true
}

// irCachePut inserts key into the bounded IR cache, evicting the oldest
// entries first but never a strict prefix of key: episodes extend one
// sequence a pass at a time, and evicting the active episode's own prefix
// chain would force every subsequent step to recompile from scratch.
//
//contractvet:locked irCache,irOrder -- callers hold irMu
func (p *Program) irCachePut(key string, e irEntry) {
	if _, ok := p.irCache[key]; !ok {
		for len(p.irCache) >= irCacheCap {
			victim := -1
			for i, k := range p.irOrder {
				if len(k) < len(key) && key[:len(k)] == k {
					continue // prefix of the sequence being extended
				}
				victim = i
				break
			}
			if victim < 0 {
				// Everything resident is a prefix of key. Evict the oldest
				// (shortest) one: buildIR only needs the longest prefix.
				victim = 0
			}
			delete(p.irCache, p.irOrder[victim])
			p.irOrder = append(p.irOrder[:victim], p.irOrder[victim+1:]...)
		}
		p.irOrder = append(p.irOrder, key)
	}
	p.irCache[key] = e
}

// BestCycles returns the best cycle count (and its sequence) observed by
// any Compile since the last ResetSamples — how the evaluation scores each
// algorithm's run on a program.
func (p *Program) BestCycles() (int64, []int) {
	p.bestMu.Lock()
	defer p.bestMu.Unlock()
	if p.best == 0 {
		return p.O0Cycles, nil
	}
	return p.best, append([]int(nil), p.bestSeq...)
}

// Samples reports the number of profiler invocations (cache misses).
func (p *Program) Samples() int { return int(p.samples.Load()) }

// ResetSamples zeroes the per-run accounting (samples and its
// successes/faults/flagged/retries decomposition, e.g. between search
// runs), and optionally drops the memoization cache — quarantine included —
// so every algorithm pays full cost.
func (p *Program) ResetSamples(dropCache bool) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.samples.Store(0)
	p.successes.Store(0)
	p.faults.Store(0)
	p.flagged.Store(0)
	p.retries.Store(0)
	p.bestMu.Lock()
	p.best = 0
	p.bestSeq = nil
	p.bestMu.Unlock()
	if dropCache {
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.Lock()
			sh.cache = make(map[string]seqEntry)
			sh.mu.Unlock()
		}
		p.irMu.Lock()
		p.irCache = make(map[string]irEntry)
		p.irOrder = nil
		p.irMu.Unlock()
		p.fpMu.Lock()
		p.fpEntries = make(map[ir.Fingerprint]*fpEntry)
		p.fpOrder = nil
		p.fpMu.Unlock()
		p.featMemo.Reset()
		p.graphMemo.Reset()
		p.quarMu.Lock()
		p.quar = nil
		p.quarMu.Unlock()
	}
}

// StaticProfiles reports how many profiler invocations were answered by the
// SCEV-based static estimator instead of a dynamic engine run (baselines
// included).
func (p *Program) StaticProfiles() int { return int(p.profiler.Stats().StaticHits) }

// SetEngine pins the profiler backend used by subsequent profiles
// (hls.EngineAuto restores the static → VM → interpreter cascade). Caches
// survive an engine switch: all engines produce bit-identical reports
// wherever they overlap, which is exactly the contract the sanitizer's
// cross-check mode enforces.
func (p *Program) SetEngine(e hls.Engine) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.profiler.SetEngine(e)
}

// Engine returns the current profiler backend policy.
func (p *Program) Engine() hls.Engine { return p.profiler.Engine() }

// SetLimits replaces the interpreter limits used by subsequent profiles and
// drops the memoized compile results, whose success verdicts depend on the
// limits: the sequence index is cleared and every fingerprint-store profile
// verdict is invalidated (and unreferenced). The optimized-IR cache and the
// fingerprint-keyed feature memo are kept: IR and features do not depend on
// the limits.
func (p *Program) SetLimits(lim interp.Limits) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.profiler.SetLimits(lim)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.cache = make(map[string]seqEntry)
		sh.mu.Unlock()
	}
	p.fpMu.Lock()
	for _, e := range p.fpEntries {
		e.hasProfile = false
		e.refs = 0
	}
	p.fpMu.Unlock()
	// Deadline-class quarantine verdicts depend on the limits, so new
	// limits grant those sequences a fresh trial. Panic-class entries stay:
	// a panicking pass panics under any limit.
	p.quarMu.Lock()
	for k, f := range p.quar {
		if f.Kind == FaultDeadline {
			delete(p.quar, k)
		}
	}
	p.quarMu.Unlock()
}

// SpeedupOverO3 converts a cycle count into the paper's headline metric:
// the fractional circuit-performance improvement over -O3 (positive is
// faster than -O3).
func (p *Program) SpeedupOverO3(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(p.O3Cycles)/float64(cycles) - 1
}

// ObsKind selects the observation space of Table 3.
type ObsKind int

// Observation spaces.
const (
	ObsFeatures  ObsKind = iota // program features (RL-A3C, RL-ES)
	ObsHistogram                // action history histogram (RL-PPO2)
	ObsBoth                     // histogram ++ features (RL-PPO3, generalization nets)
)

// Normalize selects the §5.3 feature/reward normalization technique.
type Normalize int

// Normalization techniques.
const (
	NormNone  Normalize = iota
	NormLog             // technique 1: log(1+x) of features
	NormTotal           // technique 2: divide by total instruction count
)

// Objective selects what the environment's reward optimizes (§5.1: "It is
// possible to define a different reward for different objectives", e.g.
// circuit area, or a combination).
type Objective int

// Optimization objectives.
const (
	MinimizeCycles    Objective = iota // the paper's default: circuit speed
	MinimizeArea                       // negative area as reward
	MinimizeAreaDelay                  // area·cycles product (balanced QoR)
)

// EnvConfig configures a phase-ordering environment.
type EnvConfig struct {
	Obs        ObsKind
	Norm       Normalize
	Objective  Objective
	EpisodeLen int // N, the maximum passes per episode (45 in §6.1)
	// RewardLog applies the §6.2 log-scaled reward so large programs do not
	// dominate multi-program training (normalization technique 1 applied
	// to rewards).
	RewardLog bool
	// RewardRelative divides the cycle improvement by the program's
	// unoptimized cycle count (§5.3 technique 2 applied to rewards):
	// rewards become fractions of the problem size.
	RewardRelative bool
	// FeatureMask restricts the observed features to these indices (the §4
	// filtered state space); nil keeps all 56.
	FeatureMask []int
	// ActionList restricts the action space to these pass indices (the §4
	// filtered action space); nil allows all 45 passes.
	ActionList []int
	// Sanitize runs the pass sanitizer on every compile: a miscompiling
	// sequence fails the episode with a penalty instead of contributing a
	// corrupted reward, and the minimized repro is available from
	// Program.SanitizerReport. Training gets slower but cannot silently
	// learn from a broken reward oracle.
	Sanitize bool
	// Engine pins the profiler backend (hls.EngineStatic, hls.EngineVM,
	// hls.EngineInterp); the zero value hls.EngineAuto keeps the default
	// static → VM → interpreter cascade. All engines are bit-identical
	// where they overlap, so this trades speed, not results.
	Engine hls.Engine
	// NoProfile puts the environment in inference mode: steps extend the
	// sequence and observe features through the profiler-free FeaturesAfter
	// path, but the clock-cycle profiler never runs, rewards are zero and
	// no samples are consumed. InferGreedy uses it to reach the paper's
	// 1 sample per program (Figure 9).
	NoProfile bool
	// GraphObs appends the structural graph feature block (CFG shape, loop
	// nesting, call-graph topology, effect aggregates — see
	// features.GraphNames) to the feature section of the observation. Off
	// by default: the paper's 56-feature observation stays bit-identical
	// unless an experiment opts in.
	GraphObs bool
}

// DefaultEnv matches the per-program evaluation setting of §6.1.
func DefaultEnv() EnvConfig {
	return EnvConfig{Obs: ObsBoth, Norm: NormNone, EpisodeLen: 45}
}

func (c EnvConfig) actions() []int {
	if c.ActionList != nil {
		return c.ActionList
	}
	all := make([]int, passes.NumActions)
	for i := range all {
		all[i] = i
	}
	return all
}

func (c EnvConfig) featIdx() []int {
	if c.FeatureMask != nil {
		return c.FeatureMask
	}
	all := make([]int, features.NumFeatures)
	for i := range all {
		all[i] = i
	}
	return all
}

// normalizeFeatures maps raw features into the observation under the
// configured technique.
func (c EnvConfig) normalizeFeatures(raw []int64) []float64 {
	idx := c.featIdx()
	out := make([]float64, len(idx))
	switch c.Norm {
	case NormLog:
		for i, fi := range idx {
			out[i] = math.Log1p(float64(raw[fi]))
		}
	case NormTotal:
		den := float64(raw[features.TotalInstructions])
		if den <= 0 {
			den = 1
		}
		for i, fi := range idx {
			out[i] = float64(raw[fi]) / den
		}
	default:
		for i, fi := range idx {
			out[i] = float64(raw[fi])
		}
	}
	return out
}

// normalizeGraph maps the raw graph feature block into observation space.
// NormLog applies the same log(1+x) squash as the 56-feature block;
// NormTotal has no meaningful denominator here (the block carries no
// instruction count), so graph features pass through raw under it.
func (c EnvConfig) normalizeGraph(raw []int64) []float64 {
	out := make([]float64, len(raw))
	for i, v := range raw {
		if c.Norm == NormLog {
			out[i] = math.Log1p(float64(v))
		} else {
			out[i] = float64(v)
		}
	}
	return out
}

func (c EnvConfig) reward(prev, cur, base int64) float64 {
	// §5.1: R = c_prev − c_cur.
	d := float64(prev - cur)
	switch {
	case c.RewardLog:
		// §6.2: log-scaled improvement, sign preserved.
		if d > 0 {
			return math.Log1p(d)
		}
		return -math.Log1p(-d)
	case c.RewardRelative && base > 0:
		// Technique 2: improvement as a fraction of the unoptimized
		// program (scaled so typical rewards land near unit range).
		return 100 * d / float64(base)
	}
	return d
}

// FeaturesAfter applies the pass sequence and extracts features without
// invoking the clock-cycle profiler. Inference needs the next observation
// but no reward, so this does not count as a sample — which is how the
// paper's deep-RL inference reaches 1 sample per program (Figure 9).
// An extraction or pass fault degrades to an all-zero observation: this is
// the inference path, where a crash would cost the whole rollout.
func (p *Program) FeaturesAfter(seq []int) []int64 {
	key := seqKey(seq)
	if passes.CheckSeq(seq) != nil || p.quarGet(key) != nil {
		return make([]int64, features.NumFeatures)
	}
	sh := &p.shards[shardIndex(key)]
	sh.mu.RLock()
	e, hit := sh.cache[key]
	sh.mu.RUnlock()
	if hit && e.ok {
		if f := p.featMemo.Get(e.fp); f != nil {
			return f
		}
	}
	p.cfgMu.RLock()
	m, fp, ok, fault := p.buildIRSafe(seq, key, p.sanitize)
	p.cfgMu.RUnlock()
	if fault != nil {
		return make([]int64, features.NumFeatures)
	}
	if !ok {
		// Sanitizer-flagged sequence: observe the corrupted module without
		// polluting the fingerprint-keyed memo.
		return features.Extract(m)
	}
	f, ffault := p.extractSafe(m, fp, seq)
	if ffault != nil {
		return make([]int64, features.NumFeatures)
	}
	return f
}

// GraphFeaturesAfter is FeaturesAfter for the opt-in graph feature block:
// it applies the sequence and extracts the structural features, memoized by
// the resulting IR fingerprint, without ever invoking the profiler. Like
// FeaturesAfter it degrades to an all-zero observation on any fault — it
// feeds observations, where a crash would cost the whole rollout.
func (p *Program) GraphFeaturesAfter(seq []int) (out []int64) {
	defer func() {
		if recover() != nil {
			out = make([]int64, features.NumGraphFeatures)
		}
	}()
	key := seqKey(seq)
	if passes.CheckSeq(seq) != nil || p.quarGet(key) != nil {
		return make([]int64, features.NumGraphFeatures)
	}
	sh := &p.shards[shardIndex(key)]
	sh.mu.RLock()
	e, hit := sh.cache[key]
	sh.mu.RUnlock()
	if hit && e.ok {
		if f := p.graphMemo.Get(e.fp); f != nil {
			return f
		}
	}
	p.cfgMu.RLock()
	m, fp, ok, fault := p.buildIRSafe(seq, key, p.sanitize)
	p.cfgMu.RUnlock()
	if fault != nil {
		return make([]int64, features.NumGraphFeatures)
	}
	if !ok {
		// Sanitizer-flagged sequence: observe the corrupted module without
		// polluting the fingerprint-keyed memo.
		return features.ExtractGraph(m)
	}
	return p.graphExtract(m, fp)
}
