// Package core is the AutoPhase framework (Figure 4 of the paper): it wires
// the compiler passes, the IR feature extractor and the HLS clock-cycle
// profiler into a gym-style reinforcement-learning environment, collects
// the feature–action–reward tuples the random-forest analysis consumes, and
// reduces the state/action spaces from the forests' importances.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"autophase/internal/features"
	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
)

// cacheShards is the number of key-hashed shards the compile/feature cache
// is split into. 32 comfortably exceeds GOMAXPROCS on the machines this
// runs on, so two workers rarely contend on the same shard lock, while the
// per-shard map overhead stays negligible next to one compiled module.
const cacheShards = 32

// Program wraps one input program with compilation caching: the paper
// counts "samples" as clock-cycle profiler invocations, so repeated
// evaluations of the same pass sequence are memoized and free.
//
// Program is safe for concurrent use. The memoized compile and feature
// results live in key-hashed shards, each guarded by its own RWMutex so
// cache hits (the common case inside an episode) only take a read lock,
// and misses on different sequences compile in parallel. Concurrent misses
// on the *same* sequence are deduplicated singleflight-style: one goroutine
// compiles, the rest wait on its result and are counted as merges — the
// duplicated work is accounted for, not repeated.
type Program struct {
	Name string
	orig *ir.Module

	O0Cycles int64 // cycles with no optimization
	O3Cycles int64 // cycles after the -O3 reference pipeline

	hlsCfg hls.Config

	// cfgMu guards the compile configuration (interpreter limits, sanitizer
	// mode) against whole-cache operations: compiles hold it for read, so
	// SetLimits/ResetSamples/EnableSanitizer observe no in-flight compile
	// using the old configuration.
	cfgMu    sync.RWMutex
	lim      interp.Limits
	sanitize bool

	shards [cacheShards]cacheShard

	irMu    sync.Mutex
	irCache map[string]*ir.Module // optimized IR per sequence prefix
	irOrder []string              // irCache keys in insertion order (eviction)

	// The atomic stats block (EvalStats is its snapshot): samples is the
	// paper's accounting unit, the rest are the evaluation engine's
	// observability surface.
	samples    atomic.Int64
	compiles   atomic.Int64 // physical compile+profile executions
	cacheHits  atomic.Int64
	merges     atomic.Int64 // singleflight-deduplicated concurrent compiles
	staticHits atomic.Int64 // profiles answered by the SCEV static estimator

	bestMu  sync.Mutex
	best    int64 // best cycle count seen since the last reset
	bestSeq []int

	// Sanitizer mode (EnableSanitizer): every compile runs the pass
	// sanitizer; a failing sequence is marked bad (Compile returns !ok, so
	// the environment ends the episode with a penalty instead of learning
	// from a corrupted reward) and the first report is retained.
	sanMu     sync.Mutex
	sanBad    map[string]bool
	sanReport *passes.SanitizerReport
}

type cacheShard struct {
	mu       sync.RWMutex
	cache    map[string]compileResult
	feats    map[string][]int64
	inflight map[string]*inflight
	hits     atomic.Int64
}

// inflight is one in-progress compilation. Waiters block on done; the
// channel close publishes res and cached to them.
type inflight struct {
	done   chan struct{}
	res    compileResult
	cached bool
}

// irCacheCap bounds the per-program optimized-IR cache; episodes extend
// sequences one pass at a time, so the previous prefix is almost always
// resident and each compile costs one pass application instead of the
// whole sequence. It is a variable only so tests can shrink it.
var irCacheCap = 2048

type compileResult struct {
	cycles int64
	area   int64
	feats  []int64
	ok     bool
}

// NewProgram profiles the unoptimized and -O3 baselines and returns the
// wrapped program. The module is cloned; the caller's copy is not touched.
func NewProgram(name string, m *ir.Module) (*Program, error) {
	p := &Program{
		Name:    name,
		orig:    m.Clone(),
		hlsCfg:  hls.DefaultConfig,
		lim:     interp.DefaultLimits,
		irCache: make(map[string]*ir.Module),
	}
	for i := range p.shards {
		p.shards[i].cache = make(map[string]compileResult)
	}
	r0, err := p.profile(p.orig)
	if err != nil {
		return nil, fmt.Errorf("core: O0 profile of %s: %w", name, err)
	}
	p.O0Cycles = r0.Cycles
	o3 := p.orig.Clone()
	passes.ApplyO3(o3)
	r3, err := p.profile(o3)
	if err != nil {
		return nil, fmt.Errorf("core: O3 profile of %s: %w", name, err)
	}
	p.O3Cycles = r3.Cycles
	return p, nil
}

// profile estimates m's cycle count, preferring the SCEV static fast path
// over an interpreter run. Under the sanitizer both paths run and must
// agree exactly. Callers hold cfgMu for read (or own p exclusively).
func (p *Program) profile(m *ir.Module) (*hls.Report, error) {
	var rep *hls.Report
	var err error
	if p.sanitize {
		rep, err = hls.ProfileChecked(m, p.hlsCfg, p.lim)
	} else {
		rep, err = hls.ProfileFast(m, p.hlsCfg, p.lim)
	}
	if err == nil && rep.Static {
		p.staticHits.Add(1)
	}
	return rep, err
}

// Module returns a fresh clone of the original (unoptimized) module.
func (p *Program) Module() *ir.Module { return p.orig.Clone() }

// EnableSanitizer switches every subsequent Compile into sanitized mode:
// after each pass of a sequence the collect-all verifier and the dataflow
// consistency checks run, and a sequence that corrupts the module compiles
// as failed (ok=false) instead of feeding a bogus cycle count into the
// reward. The first failure's delta-minimized report is kept.
func (p *Program) EnableSanitizer() {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.sanitize = true
	p.sanMu.Lock()
	if p.sanBad == nil {
		p.sanBad = make(map[string]bool)
	}
	p.sanMu.Unlock()
}

// SanitizerReport returns the report of the first miscompiling sequence a
// sanitized Compile observed, or nil when none failed.
func (p *Program) SanitizerReport() *passes.SanitizerReport {
	p.sanMu.Lock()
	defer p.sanMu.Unlock()
	return p.sanReport
}

// Features returns the feature vector of the unoptimized program.
func (p *Program) Features() []int64 { return features.Extract(p.orig) }

func seqKey(seq []int) string {
	b := make([]byte, len(seq))
	for i, s := range seq {
		b[i] = byte(s)
	}
	return string(b)
}

// shardIndex hashes a sequence key onto a cache shard (FNV-1a).
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % cacheShards)
}

// Compile applies the pass sequence to a clone of the program, extracts
// features and profiles the estimated cycle count. Results are memoized;
// each cache miss counts as one profiler sample.
func (p *Program) Compile(seq []int) (cycles int64, feats []int64, ok bool) {
	r := p.compile(seq)
	return r.cycles, r.feats, r.ok
}

// CompileArea is Compile's area-objective variant: it returns the
// functional-unit area estimate (LUTs) alongside the cycle count, for the
// §5.1 alternative rewards (area, or multi-objective combinations).
func (p *Program) CompileArea(seq []int) (cycles, area int64, ok bool) {
	r := p.compile(seq)
	return r.cycles, r.area, r.ok
}

// compile is the shared memoized entry point: shard read-lock fast path,
// then singleflight on a miss.
func (p *Program) compile(seq []int) compileResult {
	key := seqKey(seq)
	sh := &p.shards[shardIndex(key)]
	sh.mu.RLock()
	r, hit := sh.cache[key]
	sh.mu.RUnlock()
	if hit {
		p.cacheHits.Add(1)
		sh.hits.Add(1)
		return r
	}

	sh.mu.Lock()
	if r, hit := sh.cache[key]; hit {
		sh.mu.Unlock()
		p.cacheHits.Add(1)
		sh.hits.Add(1)
		return r
	}
	if fl, busy := sh.inflight[key]; busy {
		sh.mu.Unlock()
		<-fl.done
		p.merges.Add(1)
		if !fl.cached {
			// Sequential behaviour re-counts an uncached (failed) compile as
			// a fresh sample on every query; a merged waiter counts the same
			// way so sample totals are identical at any worker count.
			p.samples.Add(1)
		}
		return fl.res
	}
	fl := &inflight{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[string]*inflight)
	}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	res, cacheable := p.compileMiss(seq, key)

	sh.mu.Lock()
	if cacheable {
		sh.cache[key] = res
	}
	delete(sh.inflight, key)
	sh.mu.Unlock()
	fl.res, fl.cached = res, cacheable
	close(fl.done)
	return res
}

// compileMiss does the uncached work — build the optimized IR, profile it —
// outside any shard lock, so misses on different sequences run in parallel.
func (p *Program) compileMiss(seq []int, key string) (res compileResult, cacheable bool) {
	p.cfgMu.RLock()
	defer p.cfgMu.RUnlock()
	p.samples.Add(1)
	p.compiles.Add(1)
	m := p.buildIR(seq, key, p.sanitize)
	if p.sanitize && p.flaggedBad(key) {
		// The sanitizer flagged this sequence: fail the compile loudly
		// rather than profiling a miscompiled module.
		return compileResult{}, true
	}
	rep, err := p.profile(m)
	if err != nil {
		// Failed profiles (limit overruns, traps) are deliberately not
		// cached: a limit error depends on the configured interp.Limits and
		// must be re-evaluated — and re-counted as a sample — on every query.
		return compileResult{}, false
	}
	res = compileResult{cycles: rep.Cycles, area: int64(rep.AreaLUT),
		feats: features.Extract(m), ok: true}
	p.recordBest(rep.Cycles, seq)
	return res, true
}

// recordBest updates the incumbent. Ties on the cycle count break towards
// the shorter, then lexicographically smaller sequence, so the incumbent is
// a function of the *set* of evaluated sequences rather than of evaluation
// order — the determinism contract batch evaluation relies on.
func (p *Program) recordBest(cycles int64, seq []int) {
	p.bestMu.Lock()
	defer p.bestMu.Unlock()
	switch {
	case p.best == 0 || cycles < p.best:
	case cycles == p.best && lessSeq(seq, p.bestSeq):
	default:
		return
	}
	p.best = cycles
	p.bestSeq = append([]int(nil), seq...)
}

// lessSeq orders sequences by length, then lexicographically.
func lessSeq(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (p *Program) flaggedBad(key string) bool {
	p.sanMu.Lock()
	defer p.sanMu.Unlock()
	return p.sanBad[key]
}

// buildIR produces the optimized module for seq, reusing the longest cached
// prefix so that sequence extensions apply only the new suffix. Cached
// modules are immutable once published, so the clone-and-apply work runs
// outside the cache lock. Callers hold cfgMu for read and pass the
// sanitize flag down to avoid re-acquiring it.
func (p *Program) buildIR(seq []int, key string, sanitize bool) *ir.Module {
	p.irMu.Lock()
	if m, ok := p.irCache[key]; ok {
		p.irMu.Unlock()
		return m
	}
	// Longest cached prefix (the empty prefix is the original program).
	start := 0
	var base *ir.Module = p.orig
	for i := len(seq) - 1; i > 0; i-- {
		if m, ok := p.irCache[key[:i]]; ok {
			base, start = m, i
			break
		}
	}
	p.irMu.Unlock()

	m := base.Clone()
	if sanitize {
		pm := passes.NewManager()
		pm.Sanitize = true
		pm.Apply(m, seq[start:])
		if rep := pm.SanitizerReport(); rep != nil {
			p.sanMu.Lock()
			p.sanBad[key] = true
			if p.sanReport == nil {
				p.sanReport = rep
			}
			p.sanMu.Unlock()
			// Do not cache the corrupted module: extensions of this
			// sequence must re-derive (and re-flag) from a clean prefix.
			return m
		}
	} else {
		passes.Apply(m, seq[start:])
	}
	p.irMu.Lock()
	p.irCachePut(key, m)
	p.irMu.Unlock()
	return m
}

// irCachePut inserts key into the bounded IR cache, evicting the oldest
// entries first but never a strict prefix of key: episodes extend one
// sequence a pass at a time, and evicting the active episode's own prefix
// chain would force every subsequent step to recompile from scratch.
// Callers hold irMu.
func (p *Program) irCachePut(key string, m *ir.Module) {
	if _, ok := p.irCache[key]; !ok {
		for len(p.irCache) >= irCacheCap {
			victim := -1
			for i, k := range p.irOrder {
				if len(k) < len(key) && key[:len(k)] == k {
					continue // prefix of the sequence being extended
				}
				victim = i
				break
			}
			if victim < 0 {
				// Everything resident is a prefix of key. Evict the oldest
				// (shortest) one: buildIR only needs the longest prefix.
				victim = 0
			}
			delete(p.irCache, p.irOrder[victim])
			p.irOrder = append(p.irOrder[:victim], p.irOrder[victim+1:]...)
		}
		p.irOrder = append(p.irOrder, key)
	}
	p.irCache[key] = m
}

// BestCycles returns the best cycle count (and its sequence) observed by
// any Compile since the last ResetSamples — how the evaluation scores each
// algorithm's run on a program.
func (p *Program) BestCycles() (int64, []int) {
	p.bestMu.Lock()
	defer p.bestMu.Unlock()
	if p.best == 0 {
		return p.O0Cycles, nil
	}
	return p.best, append([]int(nil), p.bestSeq...)
}

// Samples reports the number of profiler invocations (cache misses).
func (p *Program) Samples() int { return int(p.samples.Load()) }

// ResetSamples zeroes the sample counter (e.g. between search runs), and
// optionally drops the memoization cache so every algorithm pays full cost.
func (p *Program) ResetSamples(dropCache bool) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.samples.Store(0)
	p.bestMu.Lock()
	p.best = 0
	p.bestSeq = nil
	p.bestMu.Unlock()
	if dropCache {
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.Lock()
			sh.cache = make(map[string]compileResult)
			sh.feats = nil
			sh.mu.Unlock()
		}
		p.irMu.Lock()
		p.irCache = make(map[string]*ir.Module)
		p.irOrder = nil
		p.irMu.Unlock()
	}
}

// StaticProfiles reports how many profiler invocations were answered by the
// SCEV-based static estimator instead of an interpreter run (baselines
// included).
func (p *Program) StaticProfiles() int { return int(p.staticHits.Load()) }

// SetLimits replaces the interpreter limits used by subsequent profiles and
// drops the memoized compile results, whose success verdicts depend on the
// limits. The optimized-IR and feature caches are kept: IR does not.
func (p *Program) SetLimits(lim interp.Limits) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	p.lim = lim
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.cache = make(map[string]compileResult)
		sh.mu.Unlock()
	}
}

// SpeedupOverO3 converts a cycle count into the paper's headline metric:
// the fractional circuit-performance improvement over -O3 (positive is
// faster than -O3).
func (p *Program) SpeedupOverO3(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(p.O3Cycles)/float64(cycles) - 1
}

// ObsKind selects the observation space of Table 3.
type ObsKind int

// Observation spaces.
const (
	ObsFeatures  ObsKind = iota // program features (RL-A3C, RL-ES)
	ObsHistogram                // action history histogram (RL-PPO2)
	ObsBoth                     // histogram ++ features (RL-PPO3, generalization nets)
)

// Normalize selects the §5.3 feature/reward normalization technique.
type Normalize int

// Normalization techniques.
const (
	NormNone  Normalize = iota
	NormLog             // technique 1: log(1+x) of features
	NormTotal           // technique 2: divide by total instruction count
)

// Objective selects what the environment's reward optimizes (§5.1: "It is
// possible to define a different reward for different objectives", e.g.
// circuit area, or a combination).
type Objective int

// Optimization objectives.
const (
	MinimizeCycles    Objective = iota // the paper's default: circuit speed
	MinimizeArea                       // negative area as reward
	MinimizeAreaDelay                  // area·cycles product (balanced QoR)
)

// EnvConfig configures a phase-ordering environment.
type EnvConfig struct {
	Obs        ObsKind
	Norm       Normalize
	Objective  Objective
	EpisodeLen int // N, the maximum passes per episode (45 in §6.1)
	// RewardLog applies the §6.2 log-scaled reward so large programs do not
	// dominate multi-program training (normalization technique 1 applied
	// to rewards).
	RewardLog bool
	// RewardRelative divides the cycle improvement by the program's
	// unoptimized cycle count (§5.3 technique 2 applied to rewards):
	// rewards become fractions of the problem size.
	RewardRelative bool
	// FeatureMask restricts the observed features to these indices (the §4
	// filtered state space); nil keeps all 56.
	FeatureMask []int
	// ActionList restricts the action space to these pass indices (the §4
	// filtered action space); nil allows all 45 passes.
	ActionList []int
	// Sanitize runs the pass sanitizer on every compile: a miscompiling
	// sequence fails the episode with a penalty instead of contributing a
	// corrupted reward, and the minimized repro is available from
	// Program.SanitizerReport. Training gets slower but cannot silently
	// learn from a broken reward oracle.
	Sanitize bool
	// NoProfile puts the environment in inference mode: steps extend the
	// sequence and observe features through the profiler-free FeaturesAfter
	// path, but the clock-cycle profiler never runs, rewards are zero and
	// no samples are consumed. InferGreedy uses it to reach the paper's
	// 1 sample per program (Figure 9).
	NoProfile bool
}

// DefaultEnv matches the per-program evaluation setting of §6.1.
func DefaultEnv() EnvConfig {
	return EnvConfig{Obs: ObsBoth, Norm: NormNone, EpisodeLen: 45}
}

func (c EnvConfig) actions() []int {
	if c.ActionList != nil {
		return c.ActionList
	}
	all := make([]int, passes.NumActions)
	for i := range all {
		all[i] = i
	}
	return all
}

func (c EnvConfig) featIdx() []int {
	if c.FeatureMask != nil {
		return c.FeatureMask
	}
	all := make([]int, features.NumFeatures)
	for i := range all {
		all[i] = i
	}
	return all
}

// normalizeFeatures maps raw features into the observation under the
// configured technique.
func (c EnvConfig) normalizeFeatures(raw []int64) []float64 {
	idx := c.featIdx()
	out := make([]float64, len(idx))
	switch c.Norm {
	case NormLog:
		for i, fi := range idx {
			out[i] = math.Log1p(float64(raw[fi]))
		}
	case NormTotal:
		den := float64(raw[features.TotalInstructions])
		if den <= 0 {
			den = 1
		}
		for i, fi := range idx {
			out[i] = float64(raw[fi]) / den
		}
	default:
		for i, fi := range idx {
			out[i] = float64(raw[fi])
		}
	}
	return out
}

func (c EnvConfig) reward(prev, cur, base int64) float64 {
	// §5.1: R = c_prev − c_cur.
	d := float64(prev - cur)
	switch {
	case c.RewardLog:
		// §6.2: log-scaled improvement, sign preserved.
		if d > 0 {
			return math.Log1p(d)
		}
		return -math.Log1p(-d)
	case c.RewardRelative && base > 0:
		// Technique 2: improvement as a fraction of the unoptimized
		// program (scaled so typical rewards land near unit range).
		return 100 * d / float64(base)
	}
	return d
}

// FeaturesAfter applies the pass sequence and extracts features without
// invoking the clock-cycle profiler. Inference needs the next observation
// but no reward, so this does not count as a sample — which is how the
// paper's deep-RL inference reaches 1 sample per program (Figure 9).
func (p *Program) FeaturesAfter(seq []int) []int64 {
	key := seqKey(seq)
	sh := &p.shards[shardIndex(key)]
	sh.mu.RLock()
	if r, hit := sh.cache[key]; hit && r.ok {
		sh.mu.RUnlock()
		return r.feats
	}
	f, hit := sh.feats[key]
	sh.mu.RUnlock()
	if hit {
		return f
	}
	p.cfgMu.RLock()
	m := p.buildIR(seq, key, p.sanitize)
	p.cfgMu.RUnlock()
	f = features.Extract(m)
	sh.mu.Lock()
	if sh.feats == nil {
		sh.feats = make(map[string][]int64)
	}
	sh.feats[key] = f
	sh.mu.Unlock()
	return f
}
