package core

import (
	"strings"
	"sync"
	"testing"

	"autophase/internal/faults"
	"autophase/internal/passes"
)

// enableFaults turns on deterministic injection for one test and guarantees
// it is off again afterwards (the injector is process-global).
func enableFaults(t *testing.T, spec string) {
	t.Helper()
	s, err := faults.ParseSpec(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(s)
	t.Cleanup(faults.Disable)
}

// invariantDelta asserts samples == successes + faults + flagged over the
// counters accumulated since the snapshot.
type counterSnap struct{ samples, successes, faults, flagged, compiles, hits int64 }

func snap(p *Program) counterSnap {
	return counterSnap{
		samples: p.samples.Load(), successes: p.successes.Load(),
		faults: p.faults.Load(), flagged: p.flagged.Load(),
		compiles: p.compiles.Load(), hits: p.cacheHits.Load(),
	}
}

func checkInvariant(t *testing.T, p *Program, s0 counterSnap) {
	t.Helper()
	s1 := snap(p)
	ds := s1.samples - s0.samples
	if got := (s1.successes - s0.successes) + (s1.faults - s0.faults) + (s1.flagged - s0.flagged); got != ds {
		t.Fatalf("accounting invariant broken: samples delta %d, successes+faults+flagged delta %d", ds, got)
	}
}

func TestBadSeqFaultRecharged(t *testing.T) {
	p := mustProgram(t, "matmul")
	s0 := snap(p)
	bad := []int{passes.NumPasses + 5}
	for i := 1; i <= 3; i++ {
		r := p.compile(bad)
		if r.ok || r.fault == nil || r.fault.Kind != FaultBadSeq {
			t.Fatalf("query %d: want bad-seq fault, got ok=%v fault=%v", i, r.ok, r.fault)
		}
		if d := p.samples.Load() - s0.samples; d != int64(i) {
			t.Fatalf("query %d: bad-seq must re-charge one sample per query, samples delta %d", i, d)
		}
	}
	if n := p.QuarantineCount(); n != 0 {
		t.Fatalf("bad-seq faults must never be quarantined, got %d entries", n)
	}
	checkInvariant(t, p, s0)
}

func TestPassPanicFaultAndQuarantine(t *testing.T) {
	p := mustProgram(t, "matmul")
	s0 := snap(p)
	seq := []int{0, 1, 2}

	enableFaults(t, "pass-panic:1")
	r := p.compile(seq)
	if r.ok || r.fault == nil {
		t.Fatalf("want contained fault, got ok=%v fault=%v", r.ok, r.fault)
	}
	if r.fault.Kind != FaultPanic || r.fault.Stage != "pass" {
		t.Fatalf("want panic/pass fault, got %s/%s", r.fault.Kind, r.fault.Stage)
	}
	if r.fault.Pass != seq[0] || r.fault.Pos != 0 {
		t.Fatalf("pass attribution wrong: pass=%d pos=%d, want %d/0", r.fault.Pass, r.fault.Pos, seq[0])
	}
	if !r.fault.Injected() {
		t.Fatalf("fault should identify as injected: %q", r.fault.Err)
	}
	if r.fault.Stack == "" || !strings.Contains(r.fault.Stack, "goroutine") {
		t.Fatalf("panic fault should carry a stack, got %q", r.fault.Stack)
	}
	faults.Disable()

	// Quarantined: the sequence is never re-run (injection is off, so a
	// re-run would succeed), and each query re-charges sample + fault.
	r2 := p.compile(seq)
	if r2.ok || r2.fault != r.fault {
		t.Fatalf("quarantine must return the remembered fault, got ok=%v fault=%v", r2.ok, r2.fault)
	}
	if f, q := p.IsQuarantined(seq); !q || f != r.fault {
		t.Fatalf("IsQuarantined disagrees: %v %v", f, q)
	}
	if d := p.samples.Load() - s0.samples; d != 2 {
		t.Fatalf("samples delta %d, want 2 (one per query)", d)
	}
	if d := p.faults.Load() - s0.faults; d != 2 {
		t.Fatalf("faults delta %d, want 2", d)
	}
	if d := p.compiles.Load() - s0.compiles; d != 0 {
		t.Fatalf("a pass panic precedes profiling, compiles delta %d, want 0", d)
	}
	checkInvariant(t, p, s0)

	// Healthy sequences are unaffected.
	if _, _, ok := p.Compile([]int{38}); !ok {
		t.Fatal("healthy sequence failed after an unrelated quarantine entry")
	}
}

// TestFaultMergeRecharge is the singleflight regression test: when G
// concurrent queries for the same faulting sequence race, every one of them
// must be charged one sample and one fault — whether it owned the compile,
// merged onto the inflight entry, or arrived after quarantine — so the
// totals are identical to G sequential queries.
func TestFaultMergeRecharge(t *testing.T) {
	p := mustProgram(t, "sha")
	s0 := snap(p)
	enableFaults(t, "pass-panic:1")

	const G = 8
	seq := []int{3, 4, 5}
	var start sync.WaitGroup
	var done sync.WaitGroup
	start.Add(1)
	for i := 0; i < G; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			r := p.compile(seq)
			if r.ok || r.fault == nil {
				t.Errorf("want fault, got ok=%v", r.ok)
			}
		}()
	}
	start.Done()
	done.Wait()

	if d := p.samples.Load() - s0.samples; d != G {
		t.Fatalf("samples delta %d, want %d (one per query at any interleaving)", d, G)
	}
	if d := p.faults.Load() - s0.faults; d != G {
		t.Fatalf("faults delta %d, want %d", d, G)
	}
	if d := p.successes.Load() - s0.successes; d != 0 {
		t.Fatalf("successes delta %d, want 0", d)
	}
	if d := p.cacheHits.Load() - s0.hits; d != 0 {
		t.Fatalf("faults must never be cached as valid entries, cache hits delta %d", d)
	}
	if n := p.QuarantineCount(); n != 1 {
		t.Fatalf("quarantine entries %d, want 1", n)
	}
	checkInvariant(t, p, s0)
}

func TestEvalBatchReportsFaults(t *testing.T) {
	p := mustProgram(t, "matmul")
	ev := NewEvaluator(p, 4)
	rs := ev.EvalBatch([][]int{{38}, {passes.NumPasses + 1}, nil})
	if !rs[0].Ok || rs[0].Fault != nil {
		t.Fatalf("healthy seq: ok=%v fault=%v", rs[0].Ok, rs[0].Fault)
	}
	if rs[1].Ok || rs[1].Fault == nil || rs[1].Fault.Kind != FaultBadSeq {
		t.Fatalf("bad seq: ok=%v fault=%v", rs[1].Ok, rs[1].Fault)
	}
	if got := rs[1].Seq; len(got) != 1 {
		t.Fatalf("faulted result must keep its sequence, got %v", got)
	}
	if !rs[2].Ok {
		t.Fatal("empty sequence should compile")
	}
}

func TestStatsStringFaultsConditional(t *testing.T) {
	clean := EvalStats{Samples: 10, Compiles: 10}
	if s := clean.String(); strings.Contains(s, "faults=") {
		t.Fatalf("clean stats must not mention faults: %q", s)
	}
	dirty := EvalStats{Samples: 10, Faults: 2, Quarantined: 1, Retries: 1}
	s := dirty.String()
	if !strings.Contains(s, "faults=2") || !strings.Contains(s, "quarantined=1") || !strings.Contains(s, "retries=1") {
		t.Fatalf("faulty stats should surface containment counters: %q", s)
	}
}

func TestRunIndexedWorkerRestart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		const n = 100
		seen := make([]bool, n)
		panics := 0
		runIndexed(n, workers, func(i int) {
			if i%10 == 3 {
				panic("boom")
			}
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		}, func(i int, v any) {
			mu.Lock()
			panics++
			mu.Unlock()
		})
		if panics != n/10 {
			t.Fatalf("workers=%d: %d panics recorded, want %d", workers, panics, n/10)
		}
		for i, ok := range seen {
			if i%10 == 3 {
				continue
			}
			if !ok {
				t.Fatalf("workers=%d: index %d never ran — a panicked worker was not replaced", workers, i)
			}
		}
	}
}

func TestEnvStepDegradesOnFault(t *testing.T) {
	p := mustProgram(t, "matmul")
	cfg := DefaultEnv()
	cfg.Obs = ObsHistogram
	cfg.EpisodeLen = 5
	env := NewPhaseEnv(p, cfg)
	env.Reset()

	enableFaults(t, "pass-panic:1")
	var rewards []float64
	steps := 0
	for {
		_, r, done := env.Step([]int{0})
		rewards = append(rewards, r)
		steps++
		if done {
			break
		}
		if steps > 2*cfg.EpisodeLen {
			t.Fatal("episode never terminated under sustained faults")
		}
	}
	if steps != cfg.EpisodeLen {
		t.Fatalf("episode length %d, want %d (faulted steps still count)", steps, cfg.EpisodeLen)
	}
	for i, r := range rewards {
		if r != -1 {
			t.Fatalf("step %d: reward %v, want -1 penalty per faulted step", i, r)
		}
	}
	if got := env.Sequence(); len(got) != 0 {
		t.Fatalf("faulting passes must be rolled back from the sequence, got %v", got)
	}
}
