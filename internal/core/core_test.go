package core

import (
	"math"
	"math/rand"
	"testing"

	"autophase/internal/features"
	"autophase/internal/forest"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

func mustProgram(t *testing.T, name string) *Program {
	t.Helper()
	p, err := NewProgram(name, progen.Benchmark(name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramBaselines(t *testing.T) {
	p := mustProgram(t, "matmul")
	if p.O0Cycles <= 0 || p.O3Cycles <= 0 {
		t.Fatalf("bad baselines O0=%d O3=%d", p.O0Cycles, p.O3Cycles)
	}
	if p.O3Cycles >= p.O0Cycles {
		t.Fatalf("-O3 should improve matmul: O0=%d O3=%d", p.O0Cycles, p.O3Cycles)
	}
	if s := p.SpeedupOverO3(p.O3Cycles); math.Abs(s) > 1e-12 {
		t.Fatalf("speedup at O3 cycles should be 0, got %f", s)
	}
}

func TestCompileCaching(t *testing.T) {
	p := mustProgram(t, "sha")
	seq := []int{38, 31, 30}
	c1, f1, ok := p.Compile(seq)
	if !ok {
		t.Fatal("compile failed")
	}
	n := p.Samples()
	c2, f2, _ := p.Compile(seq)
	if p.Samples() != n {
		t.Fatal("cache miss on identical sequence")
	}
	if c1 != c2 || len(f1) != len(f2) {
		t.Fatal("cache returned different result")
	}
	p.ResetSamples(true)
	if p.Samples() != 0 {
		t.Fatal("ResetSamples failed")
	}
	p.Compile(seq)
	if p.Samples() != 1 {
		t.Fatal("cache not dropped")
	}
}

func TestPhaseEnvEpisode(t *testing.T) {
	p := mustProgram(t, "mpeg2")
	cfg := DefaultEnv()
	cfg.EpisodeLen = 10
	env := NewPhaseEnv(p, cfg)
	obs := env.Reset()
	if len(obs) != env.ObsSize() {
		t.Fatalf("obs size %d != %d", len(obs), env.ObsSize())
	}
	if env.ActionDims()[0] != passes.NumActions {
		t.Fatalf("action dim %v", env.ActionDims())
	}
	total := 0.0
	steps := 0
	rng := rand.New(rand.NewSource(1))
	done := false
	for !done {
		var r float64
		obs, r, done = env.Step([]int{rng.Intn(passes.NumActions)})
		if len(obs) != env.ObsSize() {
			t.Fatal("obs size changed mid-episode")
		}
		total += r
		steps++
		if steps > cfg.EpisodeLen+1 {
			t.Fatal("episode did not terminate")
		}
	}
	// Sum of rewards telescopes to c_start - c_end.
	want := float64(p.O0Cycles - env.CurrentCycles())
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("reward sum %f != telescoped %f", total, want)
	}
}

func TestPhaseEnvHistogramObs(t *testing.T) {
	p := mustProgram(t, "adpcm")
	cfg := EnvConfig{Obs: ObsHistogram, EpisodeLen: 5}
	env := NewPhaseEnv(p, cfg)
	obs := env.Reset()
	if len(obs) != passes.NumActions {
		t.Fatalf("histogram obs size %d", len(obs))
	}
	obs, _, _ = env.Step([]int{7})
	if obs[7] != 1 {
		t.Fatalf("histogram not updated: %v", obs[:10])
	}
	obs, _, _ = env.Step([]int{7})
	if obs[7] != 2 {
		t.Fatal("histogram should count repeats")
	}
}

func TestNormalizationTechniques(t *testing.T) {
	p := mustProgram(t, "gsm")
	raw := p.Features()

	cLog := EnvConfig{Norm: NormLog}
	vLog := cLog.normalizeFeatures(raw)
	for i, v := range vLog {
		if want := math.Log1p(float64(raw[i])); math.Abs(v-want) > 1e-12 {
			t.Fatalf("log norm wrong at %d", i)
		}
	}
	cTot := EnvConfig{Norm: NormTotal}
	vTot := cTot.normalizeFeatures(raw)
	den := float64(raw[features.TotalInstructions])
	if math.Abs(vTot[features.TotalInstructions]-1.0) > 1e-12 {
		t.Fatalf("feature 51 should normalize to 1, got %f (den %f)", vTot[features.TotalInstructions], den)
	}
}

func TestFilteredSpaces(t *testing.T) {
	p := mustProgram(t, "blowfish")
	cfg := DefaultEnv()
	cfg.FeatureMask = []int{17, 23, 51}
	cfg.ActionList = []int{23, 33, 38}
	cfg.Obs = ObsBoth
	env := NewPhaseEnv(p, cfg)
	if env.ObsSize() != 3+3 {
		t.Fatalf("filtered obs size %d", env.ObsSize())
	}
	if env.ActionDims()[0] != 3 {
		t.Fatalf("filtered action dims %v", env.ActionDims())
	}
	env.Reset()
	env.Step([]int{0})
	if seq := env.Sequence(); len(seq) != 1 || seq[0] != 23 {
		t.Fatalf("action remap wrong: %v", seq)
	}
}

func TestMultiPhaseEnv(t *testing.T) {
	p := mustProgram(t, "aes")
	cfg := DefaultEnv()
	env := NewMultiPhaseEnv(p, cfg, 8, 6)
	obs := env.Reset()
	if len(obs) != env.ObsSize() {
		t.Fatalf("obs size %d != %d", len(obs), env.ObsSize())
	}
	if dims := env.ActionDims(); len(dims) != 8 || dims[0] != 3 {
		t.Fatalf("multi action dims %v", dims)
	}
	// All slots start at K/2.
	seq := env.Sequence()
	for _, s := range seq {
		if s != passes.NumActions/2 {
			t.Fatalf("slots not initialized to K/2: %v", seq)
		}
	}
	// A +1 on slot 0, -1 on slot 1, 0 elsewhere.
	acts := []int{2, 0, 1, 1, 1, 1, 1, 1}
	_, _, done := env.Step(acts)
	if done {
		t.Fatal("episode ended early")
	}
	seq = env.Sequence()
	if seq[0] != passes.NumActions/2+1 || seq[1] != passes.NumActions/2-1 || seq[2] != passes.NumActions/2 {
		t.Fatalf("slot updates wrong: %v", seq)
	}
	steps := 1
	for {
		_, _, done = env.Step(acts)
		steps++
		if done {
			break
		}
		if steps > 10 {
			t.Fatal("episode did not end")
		}
	}
	if steps != 6 {
		t.Fatalf("episode length %d want 6", steps)
	}
}

func TestImportancePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var progs []*Program
	seed := int64(300)
	for i := 0; i < 3; i++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		seed = used + 1
		p, err := NewProgram("r", m)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	tuples := CollectTuples(progs, 4, 12, rng)
	if len(tuples) < 100 {
		t.Fatalf("too few tuples: %d", len(tuples))
	}
	cfg := forest.DefaultConfig
	cfg.Trees = 8
	imp := AnalyzeImportance(tuples, cfg)
	if len(imp.FeatureByPass) != passes.NumActions {
		t.Fatal("bad importance shape")
	}
	feats := imp.TopFeatures(24)
	if len(feats) != 24 {
		t.Fatalf("TopFeatures returned %d", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i] <= feats[i-1] {
			t.Fatal("TopFeatures not ascending/unique")
		}
	}
	pss := imp.TopPasses(16)
	// Win-rate gating may eliminate passes that never improved anything in
	// a small tuple set, so up to 16 come back.
	if len(pss) == 0 || len(pss) > 16 {
		t.Fatalf("TopPasses returned %d", len(pss))
	}
	for _, p := range pss {
		if p < 0 || p >= passes.NumActions {
			t.Fatalf("pass index out of range: %v", pss)
		}
	}
}

func TestAreaObjective(t *testing.T) {
	p := mustProgram(t, "matmul")
	cfg := DefaultEnv()
	cfg.Objective = MinimizeArea
	cfg.EpisodeLen = 4
	env := NewPhaseEnv(p, cfg)
	env.Reset()
	area0 := env.CurrentCycles()
	_, r, _ := env.Step([]int{38}) // mem2reg shrinks both area and cycles
	if env.CurrentCycles() < area0 && r <= 0 {
		t.Fatalf("area drop must earn a positive reward: r=%f", r)
	}
	// Cross-check against the profiler's area numbers.
	c, a, ok := p.CompileArea([]int{38})
	if !ok || a <= 0 || c <= 0 {
		t.Fatalf("CompileArea: c=%d a=%d ok=%v", c, a, ok)
	}
	if env.CurrentCycles() != a {
		t.Fatalf("area objective should track area: env=%d profiler=%d", env.CurrentCycles(), a)
	}
}

func TestAreaDelayObjective(t *testing.T) {
	p := mustProgram(t, "sha")
	cfg := DefaultEnv()
	cfg.Objective = MinimizeAreaDelay
	cfg.EpisodeLen = 3
	env := NewPhaseEnv(p, cfg)
	env.Reset()
	c, a, _ := p.CompileArea(nil)
	if want := c * a / 1024; env.CurrentCycles() != want {
		t.Fatalf("area-delay objective: env=%d want=%d", env.CurrentCycles(), want)
	}
}

func TestInferGreedyCostsOneSample(t *testing.T) {
	p := mustProgram(t, "mpeg2")
	p.ResetSamples(true)
	cfg := DefaultEnv()
	cfg.EpisodeLen = 10
	// A fixed "policy" applying mem2reg then simplifycfg then stopping via
	// out-of-range.
	step := 0
	seq, cycles, ok := InferGreedy(p, cfg, func(obs []float64) int {
		step++
		switch step {
		case 1:
			return 38
		case 2:
			return 31
		default:
			return -1
		}
	})
	if !ok || cycles <= 0 {
		t.Fatal("inference failed")
	}
	if len(seq) != 2 || seq[0] != 38 || seq[1] != 31 {
		t.Fatalf("sequence %v", seq)
	}
	if p.Samples() != 1 {
		t.Fatalf("inference cost %d samples, want 1 (features are free)", p.Samples())
	}
}

func TestIncrementalCompileMatchesFromScratch(t *testing.T) {
	// The prefix-cached IR path must produce identical results to a cold
	// compile of the full sequence.
	p1 := mustProgram(t, "aes")
	p2 := mustProgram(t, "aes")
	seq := []int{38, 23, 29, 33, 30, 31, 7, 28}
	// p1: incremental (prefix by prefix, as an env would).
	for i := 1; i <= len(seq); i++ {
		p1.Compile(seq[:i])
	}
	c1, f1, ok1 := p1.Compile(seq)
	// p2: straight to the full sequence.
	c2, f2, ok2 := p2.Compile(seq)
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatalf("incremental %d vs cold %d (ok %v/%v)", c1, c2, ok1, ok2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("feature %d differs: %d vs %d", i, f1[i], f2[i])
		}
	}
}
