package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"autophase/internal/passes"
)

// randSeqs draws n random pass sequences of length l.
func randSeqs(rng *rand.Rand, n, l int) [][]int {
	seqs := make([][]int, n)
	for i := range seqs {
		s := make([]int, l)
		for j := range s {
			s[j] = rng.Intn(passes.NumActions)
		}
		seqs[i] = s
	}
	return seqs
}

func TestEvalBatchMatchesSequential(t *testing.T) {
	seqs := randSeqs(rand.New(rand.NewSource(7)), 40, 6)

	ref := mustProgram(t, "matmul")
	type want struct {
		cycles int64
		feats  []int64
		ok     bool
	}
	wants := make([]want, len(seqs))
	for i, s := range seqs {
		c, f, ok := ref.Compile(s)
		wants[i] = want{c, f, ok}
	}

	p := mustProgram(t, "matmul")
	got := NewEvaluator(p, 8).EvalBatch(seqs)
	if len(got) != len(seqs) {
		t.Fatalf("got %d results for %d seqs", len(got), len(seqs))
	}
	for i, r := range got {
		if r.Cycles != wants[i].cycles || r.Ok != wants[i].ok || !reflect.DeepEqual(r.Feats, wants[i].feats) {
			t.Fatalf("seq %d: batch (%d,%v) != sequential (%d,%v)",
				i, r.Cycles, r.Ok, wants[i].cycles, wants[i].ok)
		}
	}
	if p.Samples() != ref.Samples() {
		t.Fatalf("sample accounting diverged: batch %d, sequential %d", p.Samples(), ref.Samples())
	}
}

func TestEvalStatsAccounting(t *testing.T) {
	p := mustProgram(t, "gsm")
	distinct := randSeqs(rand.New(rand.NewSource(3)), 12, 5)
	var seqs [][]int
	for round := 0; round < 3; round++ {
		seqs = append(seqs, distinct...)
	}
	ev := NewEvaluator(p, 6)
	out := ev.EvalBatch(seqs)
	st := ev.Stats()

	// Every duplicate must be answered from the cache or folded by
	// singleflight, never recompiled. Failed profiles are not cached and may
	// recompile, so only count successful distinct sequences as the ceiling
	// basis; fingerprint sharing can push physical compiles below that —
	// Compiles + FPHits together account for every successful first
	// evaluation.
	okDistinct := 0
	for i := range distinct {
		if out[i].Ok {
			okDistinct++
		}
	}
	if okDistinct == 0 {
		t.Fatal("want at least one successful compile in the batch")
	}
	maxCompiles := int64(len(seqs) - 2*okDistinct)
	if st.Compiles < 1 || st.Compiles > maxCompiles {
		t.Fatalf("compiles=%d want within [1,%d] for %d seqs (%d distinct ok)",
			st.Compiles, maxCompiles, len(seqs), okDistinct)
	}
	if st.Compiles+st.FPHits < int64(okDistinct) {
		t.Fatalf("compiles=%d fp-hits=%d don't cover %d distinct ok seqs",
			st.Compiles, st.FPHits, okDistinct)
	}
	if st.CacheHits+st.Merges+st.Compiles+st.FPHits < int64(len(seqs)) {
		t.Fatalf("hits=%d merges=%d compiles=%d fp-hits=%d don't cover %d queries",
			st.CacheHits, st.Merges, st.Compiles, st.FPHits, len(seqs))
	}
	if st.FPMismatches != 0 {
		t.Fatalf("fp mismatches: %d", st.FPMismatches)
	}
	var shardSum int64
	for _, h := range st.ShardHits {
		shardSum += h
	}
	if shardSum != st.CacheHits {
		t.Fatalf("shard hits sum %d != cache hits %d", shardSum, st.CacheHits)
	}
	if st.Batches != 1 || st.BatchWall <= 0 {
		t.Fatalf("batches=%d wall=%s, want 1 batch with positive wall", st.Batches, st.BatchWall)
	}

	// Duplicates must agree with their first occurrence bit-for-bit.
	for i, r := range out {
		first := out[i%len(distinct)]
		if r.Cycles != first.Cycles || r.Ok != first.Ok {
			t.Fatalf("duplicate %d: (%d,%v) != first (%d,%v)", i, r.Cycles, r.Ok, first.Cycles, first.Ok)
		}
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats string")
	}
}

func TestCollectTuplesWorkerInvariant(t *testing.T) {
	run := func(workers int) ([]Tuple, int) {
		p1 := mustProgram(t, "matmul")
		p2 := mustProgram(t, "qsort")
		rng := rand.New(rand.NewSource(11))
		tuples := CollectTuplesParallel([]*Program{p1, p2}, 6, 8, rng, workers)
		return tuples, p1.Samples() + p2.Samples()
	}
	t1, s1 := run(1)
	t8, s8 := run(8)
	if len(t1) == 0 {
		t.Fatal("no tuples collected")
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Fatalf("tuple sets differ between workers=1 (%d tuples) and workers=8 (%d tuples)",
			len(t1), len(t8))
	}
	if s1 != s8 {
		t.Fatalf("sample counts differ: workers=1 %d, workers=8 %d", s1, s8)
	}
}

// TestProgramParallelStress hammers one Program from 32 goroutines with
// overlapping prefixes of a shared base sequence plus private extensions —
// the access pattern of a population algorithm under the sharded cache.
// Run under -race in CI; the correctness check is that every goroutine
// observes identical cycle counts for identical sequences.
func TestProgramParallelStress(t *testing.T) {
	p := mustProgram(t, "matmul")
	base := []int{38, 31, 30, 12, 3, 5, 20, 7}
	const goroutines = 32

	results := make([]map[string]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			got := make(map[string]int64)
			for iter := 0; iter < 20; iter++ {
				// Shared prefix (heavy singleflight/cache contention)...
				seq := append([]int(nil), base[:rng.Intn(len(base)+1)]...)
				// ...plus an occasionally-private suffix.
				if rng.Intn(2) == 0 {
					seq = append(seq, rng.Intn(passes.NumActions))
				}
				c, _, ok := p.Compile(seq)
				if ok {
					got[fmt.Sprint(seq)] = c
				}
			}
			results[g] = got
		}()
	}
	wg.Wait()

	merged := make(map[string]int64)
	for g, got := range results {
		for k, c := range got {
			if prev, seen := merged[k]; seen && prev != c {
				t.Fatalf("goroutine %d saw %d cycles for %s, another saw %d", g, c, k, prev)
			}
			merged[k] = c
		}
	}
	if len(merged) == 0 {
		t.Fatal("no successful compiles under stress")
	}
}
