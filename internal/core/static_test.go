package core

import (
	"testing"

	"autophase/internal/interp"
)

// TestIRCacheEvictionOrder pins the irCache replacement policy: the cache
// never exceeds its cap, unrelated sequences are evicted oldest-first, and
// extending an episode never evicts the extension's own prefix chain.
func TestIRCacheEvictionOrder(t *testing.T) {
	oldCap := irCacheCap
	irCacheCap = 4
	defer func() { irCacheCap = oldCap }()

	p := mustProgram(t, "matmul")
	episode := []int{38, 31, 30, 29, 23, 30}
	for i := 1; i <= len(episode); i++ {
		p.Compile(episode[:i])
		if len(p.irCache) > irCacheCap {
			t.Fatalf("after %d extensions irCache holds %d modules, cap %d",
				i, len(p.irCache), irCacheCap)
		}
		if len(p.irCache) != len(p.irOrder) {
			t.Fatalf("irOrder out of sync: %d keys vs %d modules", len(p.irOrder), len(p.irCache))
		}
	}
	// The episode is longer than the cap, so early prefixes were evicted —
	// but the longest prefix (the episode's direct parent) must be resident
	// so the next extension applies exactly one pass.
	if _, ok := p.irCache[seqKey(episode[:len(episode)-1])]; !ok {
		t.Fatal("direct parent prefix of the active episode was evicted")
	}
	// Unrelated sequences are evicted before the active episode's prefixes.
	p.ResetSamples(true)
	for _, seq := range [][]int{{5}, {6}, {7}} {
		p.Compile(seq)
	}
	for i := 1; i <= 4; i++ {
		p.Compile(episode[:i])
	}
	for i := 1; i <= 4; i++ {
		if _, ok := p.irCache[seqKey(episode[:i])]; !ok {
			t.Fatalf("episode prefix of length %d evicted while unrelated entries were cached", i)
		}
	}
	for _, seq := range [][]int{{5}, {6}, {7}} {
		if _, ok := p.irCache[seqKey(seq)]; ok {
			t.Fatalf("unrelated sequence %v survived eviction ahead of the active episode", seq)
		}
	}
}

// TestLimitErrorsNotCached: a profile failing on interpreter limits must
// not be memoized as a compile result — every retry pays (and counts) a
// fresh profiler sample, since the verdict depends on the configured
// limits.
func TestLimitErrorsNotCached(t *testing.T) {
	p := mustProgram(t, "matmul")
	p.SetLimits(interp.Limits{MaxSteps: 10, MaxDepth: 256, MaxCells: 1 << 20})
	seq := []int{38}
	if _, _, ok := p.Compile(seq); ok {
		t.Fatal("compile must fail under a 10-step limit")
	}
	n := p.Samples()
	if _, _, ok := p.Compile(seq); ok {
		t.Fatal("second compile must fail too")
	}
	if p.Samples() != n+1 {
		t.Fatalf("failed compile was served from cache: samples %d -> %d", n, p.Samples())
	}
	// Restoring the limits makes the same sequence compile again.
	p.SetLimits(interp.DefaultLimits)
	if _, _, ok := p.Compile(seq); !ok {
		t.Fatal("compile must succeed under default limits")
	}
	n = p.Samples()
	if _, _, ok := p.Compile(seq); !ok || p.Samples() != n {
		t.Fatal("successful compile must be cached")
	}
}

// TestEnvStaticFastPath: a phase-ordering episode on matmul reaches the
// SCEV static estimator end-to-end — the reward comes back without an
// interpreter run once mem2reg exposes the counted loops.
func TestEnvStaticFastPath(t *testing.T) {
	p := mustProgram(t, "matmul")
	env := NewPhaseEnv(p, DefaultEnv())
	env.Reset()
	before := p.StaticProfiles()
	_, r, done := env.Step([]int{38}) // mem2reg
	if done {
		t.Fatal("episode ended on the first step")
	}
	if p.StaticProfiles() <= before {
		t.Fatalf("mem2reg'd matmul did not take the static fast path (hits %d -> %d, reward %f)",
			before, p.StaticProfiles(), r)
	}
	// The static-path reward must be the same one the interpreter yields:
	// recompiling the same sequence under the sanitizer cross-checks it.
	cycles, _, ok := p.Compile([]int{38})
	if !ok {
		t.Fatal("compile failed")
	}
	p2 := mustProgram(t, "matmul")
	p2.EnableSanitizer()
	c2, _, ok2 := p2.Compile([]int{38})
	if !ok2 || c2 != cycles {
		t.Fatalf("sanitized compile disagrees: %d vs %d (ok=%v)", c2, cycles, ok2)
	}
}
