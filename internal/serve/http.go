package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"autophase/internal/core"
	"autophase/internal/ir"
)

// SubmitRequest is the POST /v1/jobs body: one IR module plus search
// parameters. Zero-valued knobs take server defaults.
type SubmitRequest struct {
	Tenant     string `json:"tenant"`
	IR         string `json:"ir"`
	Algo       string `json:"algo"`        // "random" (default) or "genetic"
	Budget     int    `json:"budget"`      // samples; default Config.DefaultBudget
	SeqLen     int    `json:"len"`         // sequence length; default 8
	DeadlineMS int64  `json:"deadline_ms"` // total wall budget incl. queue wait; default Config.DefaultDeadline
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/jobs        submit a module, get a job ID (202) or a shed (429/503)
//	GET  /v1/jobs/{id}   poll a job; ?wait=2s long-polls until terminal or timeout
//	GET  /v1/stats       service-wide and per-tenant counters
//	GET  /healthz        200 while accepting, 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeShed turns an admission rejection into its explicit wire form: the
// 429/503 status plus a Retry-After in whole seconds (rounded up, floor 1,
// so "try again in 300ms" never becomes "retry immediately").
func writeShed(w http.ResponseWriter, e *shedError) {
	secs := int64(math.Ceil(e.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, e.code, errorBody{Error: e.reason})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := s.cfg.MaxBody
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, errText := s.buildJob(&req)
	if errText != "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: errText})
		return
	}
	if shed := s.admit(j); shed != nil {
		writeShed(w, shed)
		return
	}
	// j.ID is immutable once admitted; the state is read as a constant here
	// because a worker may already have dispatched the job.
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID, State: StateQueued.String()})
}

// buildJob validates a submission and constructs the (not yet admitted)
// job, or explains why the request is malformed. Validation failures are
// 400s, not sheds: the request was wrong, not the load.
func (s *Server) buildJob(req *SubmitRequest) (*Job, string) {
	if req.Tenant == "" {
		return nil, "missing tenant"
	}
	if req.IR == "" {
		return nil, "missing ir"
	}
	switch req.Algo {
	case "":
		req.Algo = "random"
	case "random", "genetic":
	default:
		return nil, fmt.Sprintf("unknown algo %q (want random or genetic)", req.Algo)
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.Budget < 1 || (s.cfg.MaxBudget > 0 && req.Budget > s.cfg.MaxBudget) {
		return nil, fmt.Sprintf("budget must be in [1, %d] (got %d)", s.cfg.MaxBudget, req.Budget)
	}
	if req.SeqLen == 0 {
		req.SeqLen = 8
	}
	if req.SeqLen < 1 || (s.cfg.MaxSeqLen > 0 && req.SeqLen > s.cfg.MaxSeqLen) {
		return nil, fmt.Sprintf("len must be in [1, %d] (got %d)", s.cfg.MaxSeqLen, req.SeqLen)
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Sprintf("deadline_ms must not be negative (got %d)", req.DeadlineMS)
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && deadline > s.cfg.MaxDeadline {
		return nil, fmt.Sprintf("deadline_ms must not exceed %d (got %d)", s.cfg.MaxDeadline.Milliseconds(), req.DeadlineMS)
	}
	mod, err := ir.Parse(req.IR)
	if err != nil {
		return nil, "bad ir: " + err.Error()
	}
	return &Job{
		Tenant:   req.Tenant,
		Algo:     req.Algo,
		Budget:   req.Budget,
		SeqLen:   req.SeqLen,
		Deadline: deadline,
		irText:   req.IR,
		mod:      mod,
	}, ""
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad wait duration"})
			return
		}
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// TenantReport is one tenant's slice of /v1/stats.
type TenantReport struct {
	ID          string `json:"id"`
	Admitted    int64  `json:"admitted"`
	Shed        int64  `json:"shed"`
	Done        int64  `json:"done"`
	Faulted     int64  `json:"faulted"`
	Deadlined   int64  `json:"deadlined"`
	Pending     int    `json:"pending"` // queued + running right now
	BreakerOpen bool   `json:"breaker_open,omitempty"`
	Samples     int64  `json:"samples"`
	Successes   int64  `json:"successes"`
	Faults      int64  `json:"faults"`
	Flagged     int64  `json:"flagged"`
}

// StatsReport is the GET /v1/stats body: service-wide admission and
// shutdown counters, the aggregate engine stats of all finished jobs (in
// the engine's own one-line format), and a per-tenant breakdown.
type StatsReport struct {
	Accepted     int64          `json:"accepted"`
	Shed429      int64          `json:"shed_429"`
	Shed503      int64          `json:"shed_503"`
	Queued       int            `json:"queued"`
	Running      int            `json:"running"`
	Drained      int64          `json:"drained"`
	Checkpointed int64          `json:"checkpointed"`
	Resumed      int64          `json:"resumed"`
	Aggregate    string         `json:"aggregate"`
	Tenants      []TenantReport `json:"tenants"`
}

// Stats snapshots the whole service. The aggregate line carries the
// serve-layer counters through core.EvalStats' usual nonzero-only
// printing, so a clean single-tenant run reads exactly like the CLI's.
func (s *Server) Stats() StatsReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	rep := StatsReport{
		Accepted: s.accepted, Shed429: s.shed429, Shed503: s.shed503,
		Queued: s.queued, Running: s.running,
		Drained: s.drainedJobs, Checkpointed: s.checkpointed, Resumed: s.resumed,
	}
	var agg core.EvalStats
	for _, id := range s.tenantIDs {
		t := s.tenants[id]
		agg.Add(t.agg)
		rep.Tenants = append(rep.Tenants, TenantReport{
			ID: t.id, Admitted: t.admitted, Shed: t.shed,
			Done: t.done, Faulted: t.faulted, Deadlined: t.deadlined,
			Pending:     t.active,
			BreakerOpen: t.brk.tripped(now, s.cfg.BreakerFaults),
			Samples:     t.agg.Samples, Successes: t.agg.Successes,
			Faults: t.agg.Faults, Flagged: t.agg.Flagged,
		})
	}
	agg.Tenants = int64(len(s.tenantIDs))
	agg.Shed = s.shed429 + s.shed503
	agg.Drained = s.drainedJobs
	agg.Checkpointed = s.checkpointed
	agg.Resumed = s.resumed
	rep.Aggregate = agg.String()
	return rep
}
