package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"autophase/internal/faults"
)

// testIR is a tiny, quickly profiled module every engine handles.
const testIR = `define i32 @main() {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %sum, %loop ]
  %sum = add i32 %acc, %i
  %inc = add i32 %i, 1
  %c = icmp slt i32 %inc, 64
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %sum
}
`

// poisonIR faults organically in every engine: the static estimator
// computes a step count past the interpreter limit and declines, and the
// VM/interpreter then blow MaxSteps for real.
const poisonIR = `define i32 @main() {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %inc = add i32 %i, 1
  %c = icmp slt i32 %inc, 100000000
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %i
}
`

// fakeClock drives the server's injectable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.TenantRate = 1000
	cfg.TenantBurst = 1000
	cfg.DrainTimeout = 30 * time.Second
	return cfg
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "queued" && st.State != "running" {
			return st
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	var b tokenBucket
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(clk.now(), 1, 3); !ok {
			t.Fatalf("take %d should succeed within the burst", i)
		}
	}
	ok, retry := b.take(clk.now(), 1, 3)
	if ok {
		t.Fatal("bucket should be empty")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	clk.advance(time.Second)
	if ok, _ := b.take(clk.now(), 1, 3); !ok {
		t.Fatal("one token should have refilled after a second")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	var b breaker
	const threshold = 3
	cooldown := 10 * time.Second

	for i := 0; i < threshold; i++ {
		if ok, _ := b.admit(clk.now(), threshold); !ok {
			t.Fatalf("breaker should admit before tripping (failure %d)", i)
		}
		b.record(clk.now(), true, threshold, cooldown)
	}
	if ok, retry := b.admit(clk.now(), threshold); ok || retry <= 0 {
		t.Fatalf("tripped breaker should reject with a positive Retry-After (ok=%v retry=%v)", ok, retry)
	}
	clk.advance(cooldown + time.Second)
	if ok, _ := b.admit(clk.now(), threshold); !ok {
		t.Fatal("cooled-down breaker should admit one half-open probe")
	}
	if ok, _ := b.admit(clk.now(), threshold); ok {
		t.Fatal("only one probe may be in flight at a time")
	}
	// A faulting probe re-opens the breaker.
	b.record(clk.now(), true, threshold, cooldown)
	if ok, _ := b.admit(clk.now(), threshold); ok {
		t.Fatal("breaker should re-open after a faulting probe")
	}
	clk.advance(cooldown + time.Second)
	if ok, _ := b.admit(clk.now(), threshold); !ok {
		t.Fatal("second probe should be admitted after another cooldown")
	}
	// A clean probe closes it entirely.
	b.record(clk.now(), false, threshold, cooldown)
	for i := 0; i < 5; i++ {
		if ok, _ := b.admit(clk.now(), threshold); !ok {
			t.Fatal("closed breaker should admit freely")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, testConfig())
	defer s.Close()
	cases := []struct {
		name string
		req  SubmitRequest
		want string
	}{
		{"missing tenant", SubmitRequest{IR: testIR}, "missing tenant"},
		{"missing ir", SubmitRequest{Tenant: "a"}, "missing ir"},
		{"bad algo", SubmitRequest{Tenant: "a", IR: testIR, Algo: "ppo"}, "unknown algo"},
		{"budget too big", SubmitRequest{Tenant: "a", IR: testIR, Budget: 1 << 20}, "budget"},
		{"negative budget", SubmitRequest{Tenant: "a", IR: testIR, Budget: -1}, "budget"},
		{"len too big", SubmitRequest{Tenant: "a", IR: testIR, SeqLen: 1000}, "len"},
		{"negative deadline", SubmitRequest{Tenant: "a", IR: testIR, DeadlineMS: -5}, "deadline_ms"},
		{"bad ir", SubmitRequest{Tenant: "a", IR: "definitely not ir"}, "bad ir"},
	}
	for _, tc := range cases {
		if _, errText := s.buildJob(&tc.req); !strings.Contains(errText, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, errText, tc.want)
		}
	}
}

// TestAdmissionQuotaAndQueue exercises the per-tenant concurrency quota
// (429) and the global queue bound (503) without any workers running, so
// every accepted job stays queued.
func TestAdmissionQuotaAndQueue(t *testing.T) {
	cfg := testConfig()
	cfg.TenantJobs = 2
	cfg.QueueCap = 3
	s := newTestServer(t, cfg)
	defer s.Close()

	mk := func(tenant string) *Job {
		j, errText := s.buildJob(&SubmitRequest{Tenant: tenant, IR: testIR})
		if errText != "" {
			t.Fatal(errText)
		}
		return j
	}
	for i := 0; i < 2; i++ {
		if shed := s.admit(mk("a")); shed != nil {
			t.Fatalf("admit %d: unexpected shed %v", i, shed)
		}
	}
	shed := s.admit(mk("a"))
	if shed == nil || shed.code != http.StatusTooManyRequests {
		t.Fatalf("third job should hit tenant a's quota with 429, got %+v", shed)
	}
	if shed.retryAfter <= 0 {
		t.Fatal("quota shed must carry a Retry-After")
	}
	if shed := s.admit(mk("b")); shed != nil {
		t.Fatalf("tenant b should be unaffected by a's quota: %v", shed)
	}
	shed = s.admit(mk("c"))
	if shed == nil || shed.code != http.StatusServiceUnavailable {
		t.Fatalf("queue is full (3): tenant c should shed with 503, got %+v", shed)
	}
	st := s.Stats()
	if st.Shed429 != 1 || st.Shed503 != 1 || st.Accepted != 3 {
		t.Fatalf("counters: accepted=%d shed429=%d shed503=%d, want 3/1/1", st.Accepted, st.Shed429, st.Shed503)
	}
}

func TestRateLimitRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 1
	cfg.TenantBurst = 1
	s := newTestServer(t, cfg)
	defer s.Close()
	clk := newFakeClock()
	s.now = clk.now

	mk := func() *Job {
		j, errText := s.buildJob(&SubmitRequest{Tenant: "a", IR: testIR})
		if errText != "" {
			t.Fatal(errText)
		}
		return j
	}
	if shed := s.admit(mk()); shed != nil {
		t.Fatalf("burst token should admit: %v", shed)
	}
	shed := s.admit(mk())
	if shed == nil || shed.code != http.StatusTooManyRequests || shed.retryAfter <= 0 {
		t.Fatalf("rate-limited submit should shed 429 with Retry-After, got %+v", shed)
	}
	clk.advance(1100 * time.Millisecond)
	if shed := s.admit(mk()); shed != nil {
		t.Fatalf("after a refill period the tenant should be admitted: %v", shed)
	}
}

// TestStrideFairness floods tenant a's queue and checks that tenant b's
// jobs are interleaved at fair share instead of waiting behind the flood.
func TestStrideFairness(t *testing.T) {
	cfg := testConfig()
	s := newTestServer(t, cfg)
	defer s.Close()

	submitOne := func(tenant string) {
		j, errText := s.buildJob(&SubmitRequest{Tenant: tenant, IR: testIR})
		if errText != "" {
			t.Fatal(errText)
		}
		if shed := s.admit(j); shed != nil {
			t.Fatal(shed)
		}
	}
	for i := 0; i < 6; i++ {
		submitOne("a")
	}
	for i := 0; i < 2; i++ {
		submitOne("b")
	}
	var order []string
	for i := 0; i < 8; i++ {
		j := s.next()
		if j == nil {
			t.Fatal("next returned nil with jobs queued")
		}
		order = append(order, j.Tenant)
	}
	want := []string{"a", "b", "a", "b", "a", "a", "a", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (b must not starve behind a's flood)", order, want)
		}
	}
}

// TestStrideWeights gives tenant a twice the weight and checks it is
// served roughly twice as often under backlog.
func TestStrideWeights(t *testing.T) {
	cfg := testConfig()
	cfg.Weights = map[string]int{"a": 2}
	s := newTestServer(t, cfg)
	defer s.Close()
	for i := 0; i < 8; i++ {
		for _, tenant := range []string{"a", "b"} {
			j, errText := s.buildJob(&SubmitRequest{Tenant: tenant, IR: testIR})
			if errText != "" {
				t.Fatal(errText)
			}
			if shed := s.admit(j); shed != nil {
				t.Fatal(shed)
			}
		}
	}
	aServed := 0
	for i := 0; i < 9; i++ {
		if j := s.next(); j.Tenant == "a" {
			aServed++
		}
	}
	if aServed != 6 {
		t.Fatalf("weight-2 tenant got %d of the first 9 dispatches, want 6", aServed)
	}
}

// TestDeadlineSpentInQueue: a job whose wall budget evaporates while it
// waits must terminate as a deadline miss without burning any samples —
// queue wait counts against the budget.
func TestDeadlineSpentInQueue(t *testing.T) {
	cfg := testConfig()
	s := newTestServer(t, cfg)
	defer s.Close()
	clk := newFakeClock()
	s.now = clk.now

	j, errText := s.buildJob(&SubmitRequest{Tenant: "a", IR: testIR, DeadlineMS: 50})
	if errText != "" {
		t.Fatal(errText)
	}
	if shed := s.admit(j); shed != nil {
		t.Fatal(shed)
	}
	clk.advance(100 * time.Millisecond)
	got := s.next()
	if got != j {
		t.Fatal("dispatched a different job")
	}
	s.runJob(got)
	s.mu.Lock()
	state, errMsg, samples := j.state, j.errText, j.samplesUsed
	deadlined := s.tenants["a"].deadlined
	s.mu.Unlock()
	if state != StateDeadline {
		t.Fatalf("state = %v, want deadline", state)
	}
	if !strings.Contains(errMsg, "queued") {
		t.Fatalf("error %q should say the budget died in the queue", errMsg)
	}
	if samples != 0 {
		t.Fatalf("an expired job must not burn samples, used %d", samples)
	}
	if deadlined != 1 {
		t.Fatalf("tenant deadlined counter = %d, want 1", deadlined)
	}
}

func TestServeEndToEnd(t *testing.T) {
	s := newTestServer(t, testConfig())
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	defer s.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 4; i++ {
		tenant := []string{"acme", "globex"}[i%2]
		resp, body := submit(t, ts, SubmitRequest{Tenant: tenant, IR: testIR, Budget: 8, SeqLen: 4})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d body %s", i, resp.StatusCode, body)
		}
		var ack SubmitResponse
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ack.ID)
	}
	for _, id := range ids {
		st := waitTerminal(t, ts, id)
		if st.State != "done" {
			t.Fatalf("job %s: state %s (%s), want done", id, st.State, st.Error)
		}
		if st.SamplesUsed != 8 {
			t.Fatalf("job %s used %d samples, want the full budget 8", id, st.SamplesUsed)
		}
		if st.BestCycles <= 0 {
			t.Fatalf("job %s reported no best cycles", id)
		}
		if st.Stats == "" || st.LatencyMS <= 0 {
			t.Fatalf("terminal job %s should report stats and latency: %+v", id, st)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rep StatsReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 4 || len(rep.Tenants) != 2 {
		t.Fatalf("stats: accepted=%d tenants=%d, want 4 and 2", rep.Accepted, len(rep.Tenants))
	}
	var samples, successes, faultsN, flagged int64
	for _, tr := range rep.Tenants {
		samples += tr.Samples
		successes += tr.Successes
		faultsN += tr.Faults
		flagged += tr.Flagged
	}
	if samples != successes+faultsN+flagged {
		t.Fatalf("accounting invariant broken across tenants: %d != %d+%d+%d", samples, successes, faultsN, flagged)
	}
	if !strings.Contains(rep.Aggregate, "tenants=2") {
		t.Fatalf("aggregate line should carry the serve counters: %q", rep.Aggregate)
	}
	if hr, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz should be 200 while accepting (err=%v)", err)
	} else {
		hr.Body.Close()
	}
}

// TestServePanicContained: an injected panic inside the job runner must
// become a fault-classed job, and the worker must survive to run the next
// one.
func TestServePanicContained(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.BreakerFaults = 0 // keep the breaker out of this test's way
	s := newTestServer(t, cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	defer s.Shutdown(context.Background())

	spec, err := faults.ParseSpec("serve-panic:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(spec)
	resp, body := submit(t, ts, SubmitRequest{Tenant: "a", IR: testIR, Budget: 4})
	if resp.StatusCode != http.StatusAccepted {
		faults.Disable()
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var ack SubmitResponse
	json.Unmarshal(body, &ack)
	st := waitTerminal(t, ts, ack.ID)
	faults.Disable()
	if st.State != "fault" || !strings.Contains(st.Error, "contained job panic") {
		t.Fatalf("injected panic should surface as a contained fault, got %s (%s)", st.State, st.Error)
	}

	// The worker that contained the panic must still be alive.
	resp, body = submit(t, ts, SubmitRequest{Tenant: "a", IR: testIR, Budget: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after panic: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ack)
	if st := waitTerminal(t, ts, ack.ID); st.State != "done" {
		t.Fatalf("post-panic job state %s (%s), want done", st.State, st.Error)
	}
}

// TestBreakerShieldsOtherTenants is the cross-tenant isolation proof: a
// tenant whose modules organically fault trips its own breaker and starts
// shedding with 429, while a healthy tenant's jobs keep completing
// untouched.
func TestBreakerShieldsOtherTenants(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.BreakerFaults = 2
	cfg.BreakerCooldown = time.Hour
	s := newTestServer(t, cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	defer s.Shutdown(context.Background())

	for i := 0; i < 2; i++ {
		resp, body := submit(t, ts, SubmitRequest{Tenant: "poison", IR: poisonIR, Budget: 2})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poison submit %d: %d %s", i, resp.StatusCode, body)
		}
		var ack SubmitResponse
		json.Unmarshal(body, &ack)
		if st := waitTerminal(t, ts, ack.ID); st.State != "fault" {
			t.Fatalf("poison job should fault, got %s (%s)", st.State, st.Error)
		}
	}
	resp, _ := submit(t, ts, SubmitRequest{Tenant: "poison", IR: poisonIR, Budget: 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tripped tenant should shed with 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker shed must carry Retry-After")
	}

	resp, body := submit(t, ts, SubmitRequest{Tenant: "healthy", IR: testIR, Budget: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy tenant must be untouched by poison's breaker: %d %s", resp.StatusCode, body)
	}
	var ack SubmitResponse
	json.Unmarshal(body, &ack)
	if st := waitTerminal(t, ts, ack.ID); st.State != "done" {
		t.Fatalf("healthy job state %s (%s), want done", st.State, st.Error)
	}
}

// TestGracefulShutdownDrains: jobs in flight when Shutdown begins must
// complete inside the drain window; new submissions must shed with an
// explicit 503; healthz must flip to 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, testConfig())
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		resp, body := submit(t, ts, SubmitRequest{Tenant: "a", IR: testIR, Budget: 8})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var ack SubmitResponse
		json.Unmarshal(body, &ack)
		ids = append(ids, ack.ID)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st := waitTerminal(t, ts, id); st.State != "done" {
			t.Fatalf("job %s should drain to done, got %s (%s)", id, st.State, st.Error)
		}
	}
	resp, _ := submit(t, ts, SubmitRequest{Tenant: "a", IR: testIR})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server must shed submissions with 503, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed must carry Retry-After")
	}
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hr.StatusCode)
	}
	if st := s.Stats(); st.Checkpointed != 0 {
		t.Fatalf("everything drained, nothing should be checkpointed: %+v", st)
	}
}

// TestCheckpointRestartResume is the restart-and-resume acceptance test:
// a server stopped with queued jobs checkpoints every one of them, and a
// new server built on the same path resumes and finishes them under their
// original IDs.
func TestCheckpointRestartResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	cfg := testConfig()
	cfg.CheckpointPath = path

	// Life 1: no workers started, so every accepted job stays queued.
	s1 := newTestServer(t, cfg)
	var ids []string
	for i := 0; i < 3; i++ {
		j, errText := s1.buildJob(&SubmitRequest{Tenant: "a", IR: testIR, Budget: 6})
		if errText != "" {
			t.Fatal(errText)
		}
		if shed := s1.admit(j); shed != nil {
			t.Fatal(shed)
		}
		ids = append(ids, j.ID)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if st := s1.Stats(); st.Checkpointed != 3 {
		t.Fatalf("checkpointed = %d, want 3", st.Checkpointed)
	}
	s1.mu.Lock()
	for _, id := range ids {
		if got := s1.jobs[id].state; got != StateCheckpointed {
			t.Fatalf("job %s state %v, want checkpointed", id, got)
		}
	}
	s1.mu.Unlock()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	// Life 2: the same path resumes all three, and workers finish them.
	s2 := newTestServer(t, cfg)
	if st := s2.Stats(); st.Resumed != 3 {
		t.Fatalf("resumed = %d, want 3", st.Resumed)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file should be consumed on load, stat err = %v", err)
	}
	s2.Start()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	defer s2.Close()
	defer s2.Shutdown(context.Background())
	for _, id := range ids {
		st := waitTerminal(t, ts, id)
		if st.State != "done" {
			t.Fatalf("resumed job %s: state %s (%s), want done", id, st.State, st.Error)
		}
		if !st.Resumed {
			t.Fatalf("job %s should be marked resumed", id)
		}
		if st.SamplesUsed != 6 {
			t.Fatalf("resumed job %s used %d samples, want 6", id, st.SamplesUsed)
		}
	}
	if !strings.Contains(s2.Stats().Aggregate, "resumed=3") {
		t.Fatalf("aggregate should count resumes: %q", s2.Stats().Aggregate)
	}
}

// TestCheckpointPartialProgress: a job interrupted mid-search checkpoints
// its spent samples and incumbent, and the next life only runs the
// remainder — prior work is neither lost nor redone.
func TestCheckpointPartialProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	recs := []jobRecord{{
		ID: "j000042", Tenant: "a", Algo: "random", IR: testIR,
		Budget: 10, SeqLen: 4, SamplesUsed: 4,
		BestCycles: 1, BestSeq: []int{0},
	}}
	if err := writeCheckpoint(path, recs); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CheckpointPath = path
	s := newTestServer(t, cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	defer s.Shutdown(context.Background())

	st := waitTerminal(t, ts, "j000042")
	if st.State != "done" {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	if st.SamplesUsed != 10 {
		t.Fatalf("samples_used = %d, want prior 4 + remaining 6 = 10", st.SamplesUsed)
	}
	// The checkpointed incumbent (an impossibly good 1 cycle) must survive:
	// this life cannot have beaten it.
	if st.BestCycles != 1 {
		t.Fatalf("resumed incumbent lost: best_cycles = %d, want 1", st.BestCycles)
	}
	s.mu.Lock()
	thisLife := s.jobs["j000042"].stats.Samples
	s.mu.Unlock()
	if thisLife != 6 {
		t.Fatalf("this life ran %d samples, want exactly the remaining 6", thisLife)
	}
}

// TestDrainInterruptCheckpoint: a running job cancelled when the drain
// window closes is checkpointed with partial progress, and a restart
// finishes exactly the remainder.
func TestDrainInterruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	cfg := testConfig()
	cfg.CheckpointPath = path
	s := newTestServer(t, cfg)

	j, errText := s.buildJob(&SubmitRequest{Tenant: "a", IR: testIR, Budget: 4096, SeqLen: 6})
	if errText != "" {
		t.Fatal(errText)
	}
	if shed := s.admit(j); shed != nil {
		t.Fatal(shed)
	}
	// Run the job on a hand-driven worker so the interruption timing is
	// deterministic: wait for real progress, then slam the drain shut.
	got := s.next()
	done := make(chan struct{})
	go func() {
		s.runJob(got)
		close(done)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		progressed := j.samplesUsed > 0
		s.mu.Unlock()
		if progressed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.abort()
	<-done
	if err := s.checkpointRemaining(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.mu.Lock()
	state, used := j.state, j.samplesUsed
	s.mu.Unlock()
	if state != StateCheckpointed {
		t.Fatalf("interrupted job state %v, want checkpointed", state)
	}
	if used <= 0 || used >= 4096 {
		t.Fatalf("interrupted job should checkpoint partial progress, samplesUsed = %d", used)
	}

	s2 := newTestServer(t, cfg)
	s2.Start()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	defer s2.Close()
	defer s2.Shutdown(context.Background())
	st := waitTerminal(t, ts, j.ID)
	if st.State != "done" {
		t.Fatalf("resumed job state %s (%s), want done", st.State, st.Error)
	}
	if st.SamplesUsed != 4096 {
		t.Fatalf("resumed job finished with %d samples, want the full 4096", st.SamplesUsed)
	}
	s2.mu.Lock()
	thisLife := s2.jobs[j.ID].stats.Samples
	s2.mu.Unlock()
	if int(thisLife) != 4096-used {
		t.Fatalf("second life ran %d samples, want exactly the remaining %d", thisLife, 4096-used)
	}
}
