// Package serve is the robustness shell that turns the evaluation engine
// into a multi-tenant phase-ordering service: an stdlib net/http server
// that accepts IR modules, runs searches asynchronously (submit → job ID →
// poll), and shares one warm artifact store across tenants. The routing is
// deliberately thin; the substance is the isolation discipline:
//
//   - Admission control: a per-tenant token bucket (rate + burst), a
//     per-tenant concurrency quota, and a global queue bound. Every
//     rejection is an explicit 429/503 with a Retry-After — load is shed
//     loudly, never by silent queueing collapse.
//   - Weighted-fair scheduling: stride scheduling over tenant queues, so a
//     tenant that floods its queue cannot starve anyone else's jobs.
//   - Deadlines as budgets: a job's wall-clock deadline covers its whole
//     life, queue wait included, and propagates into interp.Limits.Deadline
//     so a single pathological profile cannot overshoot it either.
//   - Quarantine as a cross-tenant shield: each job evaluates in its own
//     core.Program (per-tenant fault containment by construction), and a
//     tenant whose jobs keep faulting trips a per-tenant circuit breaker —
//     its submissions bounce with 429 while everyone else is untouched.
//   - Graceful degradation: shutdown stops admission, drains in-flight work
//     inside a bounded window, and checkpoints whatever did not finish so a
//     restart resumes instead of losing accepted jobs.
package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"autophase/internal/artifact"
	"autophase/internal/core"
	"autophase/internal/faults"
	"autophase/internal/interp"
	"autophase/internal/passes"
	"autophase/internal/search"
)

// Config tunes the service. The zero value is unusable; call
// DefaultConfig and override.
type Config struct {
	Workers  int // concurrent search-runner goroutines
	QueueCap int // global queued-job bound (backpressure past it → 503)

	TenantRate  float64 // token-bucket refill, submissions/second/tenant
	TenantBurst float64 // token-bucket capacity
	TenantJobs  int     // per-tenant queued+running quota

	// Weights assigns stride-scheduling weights per tenant ID; tenants not
	// listed (and all tenants when nil) get weight 1.
	Weights map[string]int

	DefaultBudget int // samples per job when the request leaves it 0
	MaxBudget     int // request budgets are clamped by validation, not silently
	MaxSeqLen     int

	DefaultDeadline time.Duration // job wall budget when the request leaves it 0 (0 = unbounded)
	MaxDeadline     time.Duration

	BreakerFaults   int           // consecutive fault-classed jobs that trip a tenant's breaker
	BreakerCooldown time.Duration // open duration before a half-open probe

	DrainTimeout   time.Duration // graceful shutdown's bounded drain window
	CheckpointPath string        // unfinished-job state file ("" disables checkpointing)

	ArtifactDir    string // shared persistent artifact store ("" = memory only)
	ArtifactBudget int64

	MaxBody int64 // request body bound
}

// DefaultConfig returns a service tuning that suits tests and small
// deployments; production overrides per flag.
func DefaultConfig() Config {
	return Config{
		Workers:         4,
		QueueCap:        1024,
		TenantRate:      50,
		TenantBurst:     100,
		TenantJobs:      64,
		DefaultBudget:   64,
		MaxBudget:       4096,
		MaxSeqLen:       45,
		DefaultDeadline: 0,
		MaxDeadline:     10 * time.Minute,
		BreakerFaults:   3,
		BreakerCooldown: 5 * time.Second,
		DrainTimeout:    10 * time.Second,
		MaxBody:         1 << 20,
	}
}

// Server is the phase-ordering service. Create with New, wire Handler into
// an http.Server, call Start, and Shutdown on the way out.
type Server struct {
	cfg   Config
	now   func() time.Time
	store *artifact.Store

	mu   sync.Mutex
	cond *sync.Cond

	tenants   map[string]*tenant // guarded by mu
	tenantIDs []string           // guarded by mu; sorted, for deterministic scheduling scans
	jobs      map[string]*Job    // guarded by mu
	queued    int                // guarded by mu; jobs waiting across all tenants
	running   int                // guarded by mu; jobs on a worker
	cancels   map[string]func()  // guarded by mu; cancel hooks of running jobs
	draining  bool               // guarded by mu; admission off, workers drain the queue
	aborting  bool               // guarded by mu; drain window over, stop dispatch and cancel
	nextID    uint64             // guarded by mu

	accepted     int64 // guarded by mu
	shed429      int64 // guarded by mu
	shed503      int64 // guarded by mu
	drainedJobs  int64 // guarded by mu; jobs that finished inside the drain window
	checkpointed int64 // guarded by mu
	resumed      int64 // guarded by mu

	wg sync.WaitGroup
}

// New builds a Server. When cfg.CheckpointPath names a checkpoint written
// by a previous life, its unfinished jobs are re-admitted (bypassing
// admission control — they were admitted once already) before any new
// traffic arrives.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("serve: config needs at least one worker (got %d)", cfg.Workers)
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("serve: config needs a positive queue capacity (got %d)", cfg.QueueCap)
	}
	s := &Server{
		cfg:     cfg,
		now:     wallNow,
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*Job),
		cancels: make(map[string]func()),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.ArtifactDir != "" {
		st, err := artifact.Open(cfg.ArtifactDir, cfg.ArtifactBudget)
		if err != nil {
			return nil, err
		}
		s.store = st
		core.SetDefaultArtifacts(st)
	}
	if cfg.CheckpointPath != "" {
		if err := s.loadCheckpoint(cfg.CheckpointPath); err != nil {
			if s.store != nil {
				core.SetDefaultArtifacts(nil)
				s.store.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close releases the shared artifact store. Call after Shutdown.
func (s *Server) Close() error {
	if s.store != nil {
		core.SetDefaultArtifacts(nil)
		return s.store.Close()
	}
	return nil
}

// tenantLocked returns (creating if needed) the tenant record. Callers
// hold mu.
//
//contractvet:locked tenants,tenantIDs -- callers hold mu
func (s *Server) tenantLocked(id string) *tenant {
	t := s.tenants[id]
	if t == nil {
		w := 1
		if s.cfg.Weights != nil && s.cfg.Weights[id] > 0 {
			w = s.cfg.Weights[id]
		}
		t = &tenant{id: id, weight: w}
		// A new tenant starts at the current maximum pass, not zero:
		// joining late must not grant a catch-up burst over tenants that
		// have been scheduled all along.
		for _, other := range s.tenantIDs {
			if p := s.tenants[other].pass; p > t.pass {
				t.pass = p
			}
		}
		s.tenants[id] = t
		s.tenantIDs = append(s.tenantIDs, id)
		sort.Strings(s.tenantIDs)
	}
	return t
}

// shedError is one explicit load-shedding decision: the HTTP status to
// send (always 429 or 503) and the Retry-After to advertise.
type shedError struct {
	code       int
	retryAfter time.Duration
	reason     string
}

func (e *shedError) Error() string { return e.reason }

// admit applies the full admission stack for one submission and either
// enqueues the job or returns the shed decision. Every rejection path is
// explicit: the caller turns it into a 429/503 with Retry-After.
func (s *Server) admit(j *Job) *shedError {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if s.draining {
		s.shed503++
		return &shedError{code: http.StatusServiceUnavailable, retryAfter: 5 * time.Second,
			reason: "server is draining; resubmit to the replacement instance"}
	}
	if s.queued >= s.cfg.QueueCap {
		s.shed503++
		return &shedError{code: http.StatusServiceUnavailable, retryAfter: time.Second,
			reason: "queue full; backpressure"}
	}
	t := s.tenantLocked(j.Tenant)
	if s.cfg.TenantJobs > 0 && t.active >= s.cfg.TenantJobs {
		t.shed++
		s.shed429++
		return &shedError{code: http.StatusTooManyRequests, retryAfter: time.Second,
			reason: "tenant concurrency quota exhausted"}
	}
	if s.cfg.TenantRate > 0 {
		if ok, wait := t.bucket.take(now, s.cfg.TenantRate, s.cfg.TenantBurst); !ok {
			t.shed++
			s.shed429++
			return &shedError{code: http.StatusTooManyRequests, retryAfter: wait,
				reason: "tenant submission rate exceeded"}
		}
	}
	// The breaker goes last: granting its half-open probe slot commits the
	// job to run, so no later check may reject it (a rejected probe would
	// leave the slot latched with no job completion to release it).
	if ok, wait := t.brk.admit(now, s.cfg.BreakerFaults); !ok {
		t.shed++
		s.shed429++
		return &shedError{code: http.StatusTooManyRequests, retryAfter: wait,
			reason: "tenant circuit breaker open: recent jobs kept faulting"}
	}
	s.nextID++
	j.ID = fmt.Sprintf("j%06d", s.nextID)
	j.submitted = now
	j.state = StateQueued
	j.done = make(chan struct{})
	s.jobs[j.ID] = j
	t.queue = append(t.queue, j)
	t.active++
	t.admitted++
	s.queued++
	s.accepted++
	s.cond.Signal()
	return nil
}

// enqueueResumed re-admits one checkpointed job, bypassing admission
// control. Callers hold mu.
//
//contractvet:locked jobs,queued,accepted,resumed,nextID -- callers hold mu (loadCheckpoint runs before the server is shared, but takes mu anyway)
func (s *Server) enqueueResumed(j *Job) {
	t := s.tenantLocked(j.Tenant)
	j.state = StateQueued
	j.resumed = true
	j.submitted = s.now()
	j.done = make(chan struct{})
	s.jobs[j.ID] = j
	t.queue = append(t.queue, j)
	t.active++
	t.admitted++
	s.queued++
	s.accepted++
	s.resumed++
	// Keep new IDs clear of resumed ones.
	if n, err := strconv.ParseUint(strings.TrimPrefix(j.ID, "j"), 10, 64); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// worker is one search runner: pull the next fair-share job, run it,
// repeat until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// next blocks until a job is dispatchable and claims it, or returns nil
// when the server is done handing out work (drained or aborting). Dispatch
// order is stride scheduling: among backlogged tenants, the one with the
// smallest virtual pass goes first, ties broken by tenant ID so the
// schedule is deterministic for a given arrival order.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.aborting {
			return nil
		}
		var pick *tenant
		for _, id := range s.tenantIDs {
			t := s.tenants[id]
			if len(t.queue) == 0 {
				continue
			}
			if pick == nil || t.pass < pick.pass {
				pick = t
			}
		}
		if pick != nil {
			j := pick.queue[0]
			pick.queue = pick.queue[1:]
			pick.pass += pick.stride()
			s.queued--
			s.running++
			j.state = StateRunning
			j.started = s.now()
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// searchOutcome is what one runSearch attempt reports back to the job
// bookkeeping under mu.
type searchOutcome struct {
	interrupted bool // drain cancellation: job goes back to the queue for checkpointing
	state       JobState
	errText     string
	stats       core.EvalStats
	bestCycles  int64
	bestSeq     []int
	quar        []*core.EvalFault
}

// runJob runs one job to an outcome and applies it. The runner itself is a
// containment boundary: an escaped panic (organic or the serve-panic
// injection point) becomes a fault-classed job, never a dead worker —
// which is what keeps one tenant's pathological module from shrinking the
// pool everyone shares.
func (s *Server) runJob(j *Job) {
	cancel := make(chan struct{})
	var once sync.Once
	s.mu.Lock()
	s.cancels[j.ID] = func() { once.Do(func() { close(cancel) }) }
	// A resumed job arrives with samples already spent in a previous life;
	// this life's engine counters start from zero and add on top.
	prior := j.samplesUsed
	s.mu.Unlock()

	out := s.runSearch(j, prior, cancel)

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, j.ID)
	s.running--
	t := s.tenantLocked(j.Tenant)
	if out.interrupted {
		// Drain cancellation: record progress and hand the job back to the
		// queue so the checkpoint pass persists it. aborting is set, so no
		// worker will re-dispatch it in this life.
		j.consumed += s.now().Sub(j.submitted)
		j.submitted = time.Time{}
		j.state = StateQueued
		j.samplesUsed = clampSamples(int64(prior)+out.stats.Samples, j.Budget)
		if out.bestSeq != nil {
			j.bestCycles, j.bestSeq = out.bestCycles, out.bestSeq
		}
		j.quar = out.quar
		t.queue = append(t.queue, j)
		s.queued++
		s.cond.Broadcast()
		return
	}
	j.state = out.state
	j.errText = out.errText
	j.stats = out.stats
	j.samplesUsed = clampSamples(int64(prior)+out.stats.Samples, j.Budget)
	if out.bestSeq != nil && (j.bestSeq == nil || out.bestCycles < j.bestCycles) {
		j.bestCycles, j.bestSeq = out.bestCycles, out.bestSeq
	}
	j.latency = j.consumed + s.now().Sub(j.submitted)
	t.active--
	t.agg.Add(out.stats)
	faulted := out.state == StateFault
	switch out.state {
	case StateDone:
		t.done++
	case StateFault:
		t.faulted++
	case StateDeadline:
		t.deadlined++
	}
	t.brk.record(s.now(), faulted, s.cfg.BreakerFaults, s.cfg.BreakerCooldown)
	if s.draining {
		s.drainedJobs++
	}
	close(j.done)
	s.cond.Broadcast()
}

func clampSamples(n int64, budget int) int {
	if n > int64(budget) {
		return budget
	}
	return int(n)
}

// runSearch executes the job's remaining sample budget under its remaining
// wall budget. The deadline is honored at every stage: the budget clock
// started at submission (queue wait already spent part of it), each
// physical profile runs under interp.Limits.Deadline bounded by what is
// left, and the batch loop re-checks between chunks.
func (s *Server) runSearch(j *Job, prior int, cancel <-chan struct{}) (out searchOutcome) {
	defer func() {
		if v := recover(); v != nil {
			out = searchOutcome{state: StateFault, errText: fmt.Sprintf("serve: contained job panic: %v", v)}
		}
	}()
	if faults.Hit(faults.ServePanic) {
		panic(fmt.Errorf("serve runner: %w", faults.ErrInjected))
	}
	rem := j.remaining(s.now())
	if rem <= 0 {
		return searchOutcome{state: StateDeadline, errText: "deadline exhausted while queued"}
	}
	p, err := core.NewProgram(j.ID, j.mod)
	if err != nil {
		// Baseline profiling failed: the module itself is pathological
		// (stalls, traps, blows limits). Fault-classed — this is exactly
		// what feeds the tenant's breaker.
		return searchOutcome{state: StateFault, errText: err.Error()}
	}
	if len(j.quar) > 0 {
		p.RestoreQuarantine(j.quar)
	}
	if j.Deadline > 0 {
		lim := interp.DefaultLimits
		lim.Deadline = rem
		p.SetLimits(lim)
	}
	ev := core.NewEvaluator(p, 1)

	var interrupted, deadlined bool
	expired := func() bool {
		select {
		case <-cancel:
			interrupted = true
			return true
		default:
		}
		if j.remaining(s.now()) <= 0 {
			deadlined = true
			return true
		}
		return false
	}
	const chunk = 16
	obj := &search.Objective{
		K:     passes.NumActions,
		N:     j.SeqLen,
		Batch: chunk,
		EvalBatch: func(seqs [][]int) []search.EvalOutcome {
			if interrupted || deadlined || expired() {
				// Shed the rest of the search without touching the engine:
				// the algorithm fast-forwards over all-failed outcomes and
				// returns promptly, bounded by candidate generation only.
				outs := make([]search.EvalOutcome, len(seqs))
				return outs
			}
			rs := ev.EvalBatch(seqs)
			outs := make([]search.EvalOutcome, len(rs))
			for i, r := range rs {
				outs[i] = search.EvalOutcome{Val: r.Cycles, Ok: r.Ok}
			}
			s.recordProgress(j, p, prior)
			return outs
		},
	}
	budget := j.Budget - prior
	if budget > 0 {
		rng := rand.New(rand.NewSource(jobSeed(j.ID) ^ int64(prior)))
		switch j.Algo {
		case "genetic":
			search.Genetic(obj, rng, search.DefaultGA(), budget)
		default: // "random"
			search.Random(obj, rng, budget)
		}
	}

	stats := p.EvalStats()
	best, seq := p.BestCycles()
	out = searchOutcome{stats: stats, bestCycles: best, bestSeq: seq}
	switch {
	case interrupted:
		out.interrupted = true
		out.quar = p.QuarantineRecords()
	case deadlined:
		out.state = StateDeadline
		out.errText = "wall-clock budget exhausted mid-search"
	case stats.Samples > 0 && stats.Successes == 0:
		out.state = StateFault
		out.errText = "every sample faulted"
	default:
		out.state = StateDone
	}
	return out
}

// recordProgress publishes a running job's partial result so polls see
// live progress.
func (s *Server) recordProgress(j *Job, p *core.Program, prior int) {
	best, seq := p.BestCycles()
	st := p.EvalStats()
	s.mu.Lock()
	j.samplesUsed = clampSamples(int64(prior)+st.Samples, j.Budget)
	if seq != nil && (j.bestSeq == nil || best < j.bestCycles) {
		j.bestCycles, j.bestSeq = best, seq
	}
	s.mu.Unlock()
}

// jobSeed hashes a job ID into the search RNG seed (FNV-1a).
func jobSeed(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return int64(h &^ (1 << 63))
}

// Shutdown gracefully stops the service: admission turns into explicit
// 503s immediately, workers keep draining queued jobs until the bounded
// drain window closes, anything still unfinished is checkpointed (when
// configured) and marked StateCheckpointed. Safe to call once; the ctx can
// end the drain early.
func (s *Server) Shutdown(ctx contextLike) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()

	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-workersDone:
	case <-timer.C:
		s.abort()
		<-workersDone
	case <-ctx.Done():
		s.abort()
		<-workersDone
	}
	return s.checkpointRemaining()
}

// contextLike is the subset of context.Context Shutdown needs; declared
// locally so the package's public surface documents exactly what it uses.
type contextLike interface{ Done() <-chan struct{} }

// abort ends the drain window: no further dispatch, running jobs are
// cancelled so they can be checkpointed instead of running long.
func (s *Server) abort() {
	s.mu.Lock()
	s.aborting = true
	for _, cancel := range s.cancels {
		cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Draining reports whether admission has been stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
