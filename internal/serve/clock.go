package serve

import "time"

// wallNow is the server's single wall-clock read. Everything in this
// package that needs the time — admission token buckets, deadline budgets,
// breaker cooldowns, latency metrics — goes through Server.now, which tests
// replace with a fake clock and production binds to this function, so the
// package has exactly one annotated nondeterminism escape hatch.
//
//contractvet:allow nondeterminism -- the serve layer's one wall-clock source; deadlines and admission are wall-clock products by design, and rewards never flow through this package
func wallNow() time.Time { return time.Now() }
