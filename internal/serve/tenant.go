package serve

import (
	"time"

	"autophase/internal/core"
)

// tokenBucket is the per-tenant admission rate limiter: rate tokens per
// second refill up to burst, one token per accepted submission. It carries
// no clock of its own; callers pass the current time, so tests drive it
// deterministically.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// take withdraws one token, refilling first. On failure it reports how long
// the caller must wait for the next token — the Retry-After the server
// sends back with a 429.
func (b *tokenBucket) take(now time.Time, rate, burst float64) (ok bool, retryAfter time.Duration) {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rate
	return false, time.Duration(need * float64(time.Second))
}

// breaker is the per-tenant circuit breaker: the quarantine discipline
// promoted to a cross-tenant shield. A tenant whose jobs keep ending in
// fault-classed failures trips its own breaker — submissions are rejected
// with 429 until a cooldown passes, then exactly one probe job is admitted
// (half-open); a clean probe closes the breaker, a faulting one re-opens
// it. Other tenants never see any of this: their buckets, quotas and queue
// slots are untouched by a neighbour's pathological modules.
type breaker struct {
	failures  int       // consecutive fault-classed job completions
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe job is in flight
}

// admit reports whether the breaker allows a new job now, and the wait to
// advertise when it does not.
func (b *breaker) admit(now time.Time, threshold int) (ok bool, retryAfter time.Duration) {
	if threshold <= 0 || b.failures < threshold {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	// Cooldown elapsed: half-open. One probe at a time.
	if b.probing {
		return false, time.Second
	}
	b.probing = true
	return true, 0
}

// record feeds one job outcome back. Fault-classed outcomes count toward
// the trip threshold; a success resets the breaker entirely.
func (b *breaker) record(now time.Time, faulted bool, threshold int, cooldown time.Duration) {
	b.probing = false
	if !faulted {
		b.failures = 0
		b.openUntil = time.Time{}
		return
	}
	b.failures++
	if threshold > 0 && b.failures >= threshold {
		b.openUntil = now.Add(cooldown)
	}
}

// tripped reports whether the breaker currently rejects non-probe traffic.
func (b *breaker) tripped(now time.Time, threshold int) bool {
	return threshold > 0 && b.failures >= threshold && now.Before(b.openUntil)
}

// tenant is one tenant's complete service state. All fields are guarded by
// the server's mu; the struct has no locking of its own.
type tenant struct {
	id     string
	weight int // weighted-fair share; defaults to 1

	// pass is the tenant's virtual time for stride scheduling: each
	// dispatched job advances it by strideScale/weight, and the scheduler
	// always serves the backlogged tenant with the smallest pass. A tenant
	// that floods its queue therefore cannot starve anyone: its pass races
	// ahead and everyone else's jobs are interleaved at their fair share.
	pass uint64

	bucket tokenBucket
	brk    breaker

	queue  []*Job // waiting jobs, FIFO within the tenant
	active int    // queued + running jobs (the concurrency quota's unit)

	// Outcome counters, reported by /v1/stats.
	admitted  int64
	shed      int64
	done      int64
	faulted   int64
	deadlined int64

	agg core.EvalStats // aggregate engine stats of finished jobs
}

// strideScale is the stride numerator: pass advances by strideScale/weight
// per dispatched job, so a weight-2 tenant is served twice as often as a
// weight-1 tenant under backlog.
const strideScale = 1 << 16

func (t *tenant) stride() uint64 {
	w := t.weight
	if w < 1 {
		w = 1
	}
	return strideScale / uint64(w)
}
