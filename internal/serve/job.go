package serve

import (
	"time"

	"autophase/internal/core"
	"autophase/internal/ir"
)

// JobState is a job's lifecycle position. Accepted jobs always reach a
// terminal state: the service's contract is that work is finished, failed
// loudly, or checkpointed — never silently lost.
type JobState int

// Job lifecycle states. Terminal states are StateDone, StateFault,
// StateDeadline and StateCheckpointed.
const (
	StateQueued JobState = iota
	StateRunning
	StateDone         // search finished inside its budget and deadline
	StateFault        // the job itself failed (baseline fault, escaped panic, all samples faulted)
	StateDeadline     // the wall-clock budget ran out (queue wait included)
	StateCheckpointed // graceful shutdown persisted the job for a later restart
)

var jobStateNames = [...]string{"queued", "running", "done", "fault", "deadline", "checkpointed"}

// String returns the wire name of the state.
func (s JobState) String() string {
	if s < 0 || int(s) >= len(jobStateNames) {
		return "unknown"
	}
	return jobStateNames[s]
}

// terminal reports whether the state ends the job.
func (s JobState) terminal() bool { return s >= StateDone }

// Job is one accepted phase-ordering search. Mutable fields are guarded by
// the server's mu; done is closed exactly once, when the job reaches a
// terminal state.
type Job struct {
	ID     string
	Tenant string
	Algo   string
	Budget int
	SeqLen int
	// Deadline is the job's total wall-clock budget, queue wait included;
	// zero means unbounded. It is a budget, not an instant: a checkpointed
	// job resumes with whatever was left when the server stopped.
	Deadline time.Duration

	irText string
	mod    *ir.Module

	state       JobState
	submitted   time.Time     // when this server life accepted/resumed the job
	consumed    time.Duration // budget spent in previous server lives
	started     time.Time     // when a worker picked it up (zero while queued)
	samplesUsed int
	bestCycles  int64
	bestSeq     []int
	errText     string
	stats       core.EvalStats
	resumed     bool
	quar        []*core.EvalFault // quarantine carried across a restart
	latency     time.Duration     // submit → terminal, this life

	done chan struct{}
}

// remaining returns the wall budget left at now, or a large positive value
// when the job is unbounded.
func (j *Job) remaining(now time.Time) time.Duration {
	if j.Deadline <= 0 {
		return time.Duration(1<<62 - 1)
	}
	elapsed := j.consumed
	if !j.submitted.IsZero() {
		elapsed += now.Sub(j.submitted)
	}
	return j.Deadline - elapsed
}

// JobStatus is the wire rendering of a job, returned by GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	State       string  `json:"state"`
	Algo        string  `json:"algo"`
	Budget      int     `json:"budget"`
	SamplesUsed int     `json:"samples_used"`
	BestCycles  int64   `json:"best_cycles,omitempty"`
	BestSeq     []int   `json:"best_seq,omitempty"`
	Error       string  `json:"error,omitempty"`
	Resumed     bool    `json:"resumed,omitempty"`
	Stats       string  `json:"stats,omitempty"`
	LatencyMS   float64 `json:"latency_ms,omitempty"`
}

// status snapshots the job. Callers hold the server's mu.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID: j.ID, Tenant: j.Tenant, State: j.state.String(), Algo: j.Algo,
		Budget: j.Budget, SamplesUsed: j.samplesUsed, Resumed: j.resumed,
		Error: j.errText,
	}
	if j.bestSeq != nil || j.bestCycles > 0 {
		st.BestCycles = j.bestCycles
		st.BestSeq = j.bestSeq
	}
	if j.state.terminal() {
		st.Stats = j.stats.String()
		st.LatencyMS = float64(j.latency) / float64(time.Millisecond)
	}
	return st
}
