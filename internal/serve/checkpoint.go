package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"autophase/internal/core"
	"autophase/internal/ir"
)

// checkpointVersion guards the on-disk format; a mismatch is an error, not
// a silent misparse.
const checkpointVersion = 1

// jobRecord is one unfinished job's persistent form: everything needed to
// resume it in a later server life — the module source, the search
// parameters, how much of the sample budget and wall budget it already
// spent, the incumbent so progress is not redone, and the quarantine
// records so known-bad sequences stay fenced without re-faulting.
type jobRecord struct {
	ID          string            `json:"id"`
	Tenant      string            `json:"tenant"`
	Algo        string            `json:"algo"`
	IR          string            `json:"ir"`
	Budget      int               `json:"budget"`
	SeqLen      int               `json:"len"`
	SamplesUsed int               `json:"samples_used"`
	DeadlineMS  int64             `json:"deadline_ms"`
	ConsumedMS  int64             `json:"consumed_ms"`
	BestCycles  int64             `json:"best_cycles,omitempty"`
	BestSeq     []int             `json:"best_seq,omitempty"`
	Quarantine  []*core.EvalFault `json:"quarantine,omitempty"`
}

type checkpointFile struct {
	Version int         `json:"version"`
	Jobs    []jobRecord `json:"jobs"`
}

// checkpointRemaining runs at the end of Shutdown, after every worker has
// exited: whatever jobs are still non-terminal (queued from the start, or
// interrupted mid-run and re-queued with their progress) are marked
// StateCheckpointed and, when a checkpoint path is configured, persisted
// atomically so the next life resumes them. This is the "no accepted job
// is silently lost" half of graceful shutdown; the drain window is the
// "finish what you can" half.
func (s *Server) checkpointRemaining() error {
	s.mu.Lock()
	var recs []jobRecord
	for _, id := range s.tenantIDs {
		t := s.tenants[id]
		for _, j := range t.queue {
			recs = append(recs, jobRecord{
				ID: j.ID, Tenant: j.Tenant, Algo: j.Algo, IR: j.irText,
				Budget: j.Budget, SeqLen: j.SeqLen, SamplesUsed: j.samplesUsed,
				DeadlineMS: j.Deadline.Milliseconds(), ConsumedMS: j.consumed.Milliseconds(),
				BestCycles: j.bestCycles, BestSeq: j.bestSeq, Quarantine: j.quar,
			})
			j.state = StateCheckpointed
			t.active--
			s.queued--
			s.checkpointed++
			close(j.done)
		}
		t.queue = nil
	}
	ckpt := s.checkpointed
	s.mu.Unlock()

	path := s.cfg.CheckpointPath
	if path == "" {
		return nil
	}
	if len(recs) == 0 {
		// Nothing unfinished: drop any stale checkpoint so a future start
		// does not resurrect long-dead jobs.
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	if err := writeCheckpoint(path, recs); err != nil {
		return fmt.Errorf("serve: checkpointing %d unfinished jobs: %w", ckpt, err)
	}
	return nil
}

// writeCheckpoint persists records atomically (temp file + rename), so a
// crash mid-write leaves either the old checkpoint or the new one, never a
// torn file.
func writeCheckpoint(path string, recs []jobRecord) error {
	data, err := json.MarshalIndent(checkpointFile{Version: checkpointVersion, Jobs: recs}, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint re-admits a previous life's unfinished jobs. Resumed jobs
// bypass admission control (they were admitted once and the service owes
// them a result) and keep their IDs, spent budgets, incumbents and
// quarantine records. The file is consumed: a later crash before the next
// checkpoint cannot double-resume.
func (s *Server) loadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var ckpt checkpointFile
	if err := json.Unmarshal(data, &ckpt); err != nil {
		return fmt.Errorf("serve: corrupt checkpoint %s: %w", path, err)
	}
	if ckpt.Version != checkpointVersion {
		return fmt.Errorf("serve: checkpoint %s has version %d, want %d", path, ckpt.Version, checkpointVersion)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ckpt.Jobs {
		r := &ckpt.Jobs[i]
		mod, err := ir.Parse(r.IR)
		if err != nil {
			// The module parsed when the job was admitted; a checkpoint
			// that no longer does is corrupt. Fail loudly rather than
			// silently dropping an owed job.
			return fmt.Errorf("serve: checkpoint job %s: bad ir: %w", r.ID, err)
		}
		j := &Job{
			ID: r.ID, Tenant: r.Tenant, Algo: r.Algo,
			Budget: r.Budget, SeqLen: r.SeqLen,
			Deadline:    time.Duration(r.DeadlineMS) * time.Millisecond,
			irText:      r.IR,
			mod:         mod,
			consumed:    time.Duration(r.ConsumedMS) * time.Millisecond,
			samplesUsed: r.SamplesUsed,
			bestCycles:  r.BestCycles,
			bestSeq:     r.BestSeq,
			quar:        r.Quarantine,
		}
		s.enqueueResumed(j)
	}
	return os.Remove(path)
}
