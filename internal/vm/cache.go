package vm

import (
	"sync"

	"autophase/internal/ir"
)

// Cache memoizes lowering results by module fingerprint, including negative
// results: a module the lowerer declines will decline identically every
// time (lowering is deterministic), so the decline is cached and the
// interpreter fallback pays no repeated lowering attempt. Entries are
// evicted FIFO at capacity — like the profile store, the sequence spaces
// explored by search revisit recent fingerprints heavily.
//
// A cache is bound to one HLS schedule config by construction: the folded
// block weights inside a Program depend on it, so callers must key one
// Cache per config (hls.Profiler owns exactly one).
type Cache struct {
	mu    sync.Mutex
	cap   int
	items map[ir.Fingerprint]cacheEntry
	order []ir.Fingerprint // insertion order for FIFO eviction

	hits      int64 // guarded by mu; Get served a lowered program
	declines  int64 // guarded by mu; Get served a cached negative result
	misses    int64 // guarded by mu; Get found nothing
	evictions int64 // guarded by mu; entries dropped by FIFO capacity
}

// CacheStats is a snapshot of a Cache's counters. Hits and Declines are
// both "answered from cache" — they are split because a decline hit means
// the profiler went to the interpreter without even attempting to lower.
type CacheStats struct {
	Hits      int64
	Declines  int64
	Misses    int64
	Evictions int64
}

type cacheEntry struct {
	prog *Program
	err  error
}

// DefaultCacheCap bounds the lowered-program store; programs are a few KB,
// so this is a few MB at worst.
const DefaultCacheCap = 512

// NewCache returns a cache holding at most capacity lowered programs
// (DefaultCacheCap if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:   capacity,
		items: make(map[ir.Fingerprint]cacheEntry, capacity),
	}
}

// Get returns the cached lowering outcome for fp. ok reports whether the
// fingerprint was present; when it is, exactly one of prog/err is non-nil.
func (c *Cache) Get(fp ir.Fingerprint) (prog *Program, err error, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[fp]
	switch {
	case !ok:
		c.misses++
	case e.err != nil:
		c.declines++
	default:
		c.hits++
	}
	return e.prog, e.err, ok
}

// Put records the lowering outcome for fp, evicting the oldest entry at
// capacity. Programs are immutable once published, so concurrent readers
// of an entry being evicted keep a consistent value.
func (c *Cache) Put(fp ir.Fingerprint, prog *Program, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.items[fp]; exists {
		return // first writer wins; lowering is deterministic anyway
	}
	for len(c.items) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.items, oldest)
		c.evictions++
	}
	c.items[fp] = cacheEntry{prog: prog, err: err}
	c.order = append(c.order, fp)
}

// Len reports the number of cached entries (positive and negative).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Declines:  c.declines,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
