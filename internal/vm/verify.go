package vm

import "fmt"

// Verify checks the structural safety of a lowered Program: every register
// field in range, every jump target inside the code, every call and switch
// descriptor well formed, every block of code ending in a control transfer.
// A verified program cannot index out of the register file or run off the
// end of its code no matter what values flow at runtime, so the dispatch
// loop needs no bounds checks of its own. Lowering is expected to always
// produce verifiable code; Verify is the cheap independent proof of that,
// run once per cache fill.
func Verify(p *Program) error {
	if p.main >= len(p.funcs) {
		return fmt.Errorf("vm: verify: main index %d out of range", p.main)
	}
	for _, g := range p.globals {
		if g.cells < 0 {
			return fmt.Errorf("vm: verify: global with negative size")
		}
		if len(g.init) > g.cells {
			// Run copies min(len(init), cells); longer init data would be
			// silently dropped, which lowering never produces.
			return fmt.Errorf("vm: verify: global initializer longer than storage")
		}
	}
	for fi := range p.funcs {
		if err := verifyFunc(p, &p.funcs[fi]); err != nil {
			return fmt.Errorf("vm: verify: %s: %w", p.funcs[fi].name, err)
		}
	}
	return nil
}

func verifyFunc(p *Program, fc *funcCode) error {
	n := len(fc.code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	if fc.nparams < 0 || fc.numRegs < fc.nparams {
		return fmt.Errorf("register file smaller than parameter list")
	}
	if fc.constBase < 0 || int(fc.constBase)+len(fc.consts) > fc.numRegs {
		return fmt.Errorf("constant pool outside register file")
	}
	reg := func(r int32) error {
		if r < 0 || int(r) >= fc.numRegs {
			return fmt.Errorf("register %d out of range [0,%d)", r, fc.numRegs)
		}
		return nil
	}
	target := func(t int32) error {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("jump target %d out of range [0,%d)", t, n)
		}
		return nil
	}
	for pc := range fc.code {
		in := &fc.code[pc]
		var err error
		switch in.op {
		case opEnter:
			if in.a < 0 || in.imm < 0 {
				err = fmt.Errorf("enter with negative phi count or weight")
			}
		case opMove:
			err = firstErr(reg(in.dst), reg(in.a))
		case opGoto, opJmp:
			err = target(in.a)
		case opSelect:
			err = firstErr(reg(in.dst), reg(in.a), reg(in.b), reg(in.c))
		case opAlloca:
			if in.imm < 0 {
				err = fmt.Errorf("alloca of negative size")
			} else {
				err = reg(in.dst)
			}
		case opLoad, opTrunc, opZExt, opSExt, opCopy:
			err = firstErr(reg(in.dst), reg(in.a))
		case opStore:
			err = firstErr(reg(in.a), reg(in.b))
		case opGEP:
			err = firstErr(reg(in.dst), reg(in.a), reg(in.b))
		case opMemset:
			err = firstErr(reg(in.a), reg(in.b), reg(in.c))
		case opCall:
			if in.a < 0 || int(in.a) >= len(fc.calls) {
				err = fmt.Errorf("call descriptor %d out of range", in.a)
				break
			}
			cd := &fc.calls[in.a]
			if cd.fn < 0 || int(cd.fn) >= len(p.funcs) {
				err = fmt.Errorf("callee index %d out of range", cd.fn)
				break
			}
			callee := &p.funcs[cd.fn]
			if len(cd.args) != callee.nparams {
				err = fmt.Errorf("call passes %d args to %d-param %s", len(cd.args), callee.nparams, callee.name)
				break
			}
			for _, r := range cd.args {
				if err = reg(r); err != nil {
					break
				}
			}
			if err == nil && in.dst >= 0 {
				err = reg(in.dst)
			}
		case opPrint:
			err = reg(in.a)
		case opRet:
			if in.a >= 0 {
				err = reg(in.a)
			}
		case opBr:
			err = firstErr(reg(in.a), target(in.b), target(in.c))
		case opSwitch:
			if in.b < 0 || int(in.b) >= len(fc.switches) {
				err = fmt.Errorf("switch descriptor %d out of range", in.b)
				break
			}
			sd := &fc.switches[in.b]
			if len(sd.targets) != len(sd.cases) {
				err = fmt.Errorf("switch with %d targets for %d cases", len(sd.targets), len(sd.cases))
				break
			}
			err = firstErr(reg(in.a), target(sd.deflt))
			for _, t := range sd.targets {
				if err != nil {
					break
				}
				err = target(t)
			}
		case opUnreachable:
			// no operands
		default:
			if in.op >= opAdd && in.op <= opUge {
				err = firstErr(reg(in.dst), reg(in.a), reg(in.b))
				if err == nil && in.op >= opShl && in.op <= opAShr && in.w == 0 {
					// The shift-amount modulus divides by w.
					err = fmt.Errorf("shift at width 0")
				}
			} else {
				err = fmt.Errorf("invalid opcode %d", in.op)
			}
		}
		if err != nil {
			return fmt.Errorf("pc %d (%s): %w", pc, in.op, err)
		}
		// Execution must never fall off the end of the code array.
		if pc == n-1 {
			switch in.op {
			case opGoto, opJmp, opBr, opSwitch, opRet, opUnreachable:
			default:
				return fmt.Errorf("pc %d (%s): code falls off the end", pc, in.op)
			}
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
