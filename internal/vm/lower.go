package vm

import (
	"errors"
	"fmt"

	"autophase/internal/ir"
)

// ErrDecline wraps every lowering refusal: IR the lowerer cannot prove it
// reproduces bit-exactly (unterminated blocks, foreign operands, widths
// outside the encodable range, dominance violations, ...). Callers fall
// back to the tree-walking interpreter, which defines the semantics for
// those cases; declining is always safe, only slower.
var ErrDecline = errors.New("vm: lowering declined")

func declinef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrDecline, fmt.Sprintf(format, args...))
}

// Lower flattens mod to bytecode, folding weight(b) — the HLS schedule's
// per-block FSM state count — into each block's entry instruction so the
// profile is accumulated by the dispatch loop itself. The returned Program
// is self-contained (no live ir pointers), so it may be cached past the
// module's lifetime, keyed by the module fingerprint and the schedule's
// config.
//
// Every function is lowered independently; a function that declines is
// stubbed, and the module declines only if a stubbed function is reachable
// from main through lowered call sites (dead helpers with unloweable
// bodies don't block the fast path, exactly as the interpreter never
// executes them).
func Lower(mod *ir.Module, weight func(*ir.Block) int) (*Program, error) {
	fnIdx := make(map[*ir.Func]int32, len(mod.Funcs))
	for i, f := range mod.Funcs {
		fnIdx[f] = int32(i)
	}
	p := &Program{main: -1}
	gaddr := make(map[*ir.Global]int64, len(mod.Globals))
	for i, g := range mod.Globals {
		n := g.NumElems()
		if n < 0 {
			return nil, declinef("global @%s has negative size", g.Name)
		}
		// Address of global i is a compile-time constant under the
		// interpreter's allocation scheme: objects are numbered in module
		// order starting at 0, and encodePtr(i, 0) == (i+1)<<offBits.
		gaddr[g] = int64(i+1) << offBits
		p.globals = append(p.globals, globalInit{
			cells: n,
			init:  append([]int64(nil), g.Init...),
		})
	}

	errs := make([]error, len(mod.Funcs))
	p.funcs = make([]funcCode, len(mod.Funcs))
	for i, f := range mod.Funcs {
		fc, err := lowerFunc(f, fnIdx, gaddr, weight)
		if err != nil {
			errs[i] = err
			// Never-executed stub: reachability below declines the module
			// before a call could land here. Parameter count is kept real
			// so call-site arg copies verify against it.
			p.funcs[i] = funcCode{
				name:    f.Name,
				code:    []inst{{op: opUnreachable, dst: -1, a: -1, b: -1, c: -1}},
				nparams: len(f.Params),
				numRegs: len(f.Params),
			}
			continue
		}
		p.funcs[i] = fc
	}
	for i, f := range mod.Funcs {
		if f.Name == "main" {
			p.main = i
			break
		}
	}
	if p.main >= 0 {
		// BFS over lowered call sites from main: every function the VM
		// could actually invoke must have lowered.
		seen := make([]bool, len(p.funcs))
		queue := []int{p.main}
		seen[p.main] = true
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			if errs[fi] != nil {
				return nil, errs[fi]
			}
			for _, cd := range p.funcs[fi].calls {
				if !seen[cd.fn] {
					seen[cd.fn] = true
					queue = append(queue, int(cd.fn))
				}
			}
		}
	}
	return p, nil
}

// Width encodings. The inst.w byte must make the VM's trunc/maskOf/minOf
// helpers agree exactly with ir's TruncVal/Mask/minOf and shiftAmt for the
// type in question; widths that cannot be encoded exactly decline.

// widthBin encodes a binary op's result type: shiftAmt, TruncVal and the
// division saturation threshold all key off it, so only 1..64-bit ints (and
// non-int types, where all three degrade to 64-bit behaviour) are exact.
func widthBin(t *ir.Type) (uint8, bool) {
	if !t.IsInt() {
		return 64, true
	}
	if t.Bits < 1 || t.Bits > 64 {
		return 0, false
	}
	return uint8(t.Bits), true
}

// widthTrunc encodes TruncVal semantics: identity at >=64 bits or non-int,
// sign-truncation below (0 bits collapses to 0, which trunc reproduces).
func widthTrunc(t *ir.Type) (uint8, bool) {
	if !t.IsInt() || t.Bits >= 64 {
		return 64, true
	}
	if t.Bits < 0 {
		return 0, false
	}
	return uint8(t.Bits), true
}

// widthMask encodes Mask semantics for zext (full mask at >=64 or non-int).
func widthMask(t *ir.Type) (uint8, bool) {
	if !t.IsInt() || t.Bits >= 64 {
		return 64, true
	}
	if t.Bits < 0 {
		return 0, false
	}
	return uint8(t.Bits), true
}

// widthICmp encodes the comparison width CmpPred.Eval derives from the
// left operand's type.
func widthICmp(t *ir.Type) (uint8, bool) {
	if !t.IsInt() || t.Bits >= 64 {
		return 64, true
	}
	if t.Bits < 0 {
		return 0, false
	}
	return uint8(t.Bits), true
}

type blockInfo struct {
	phis []*ir.Instr
	term int   // index of the terminator (always last, or the block declined)
	head int32 // pc of the block's opEnter
}

func lowerFunc(f *ir.Func, fnIdx map[*ir.Func]int32, gaddr map[*ir.Global]int64, weight func(*ir.Block) int) (funcCode, error) {
	fail := func(err error) (funcCode, error) { return funcCode{}, err }
	if len(f.Blocks) == 0 {
		return fail(declinef("%s: empty function", f.Name))
	}
	if len(f.Entry().Phis()) > 0 {
		return fail(declinef("%s: phi in entry block", f.Name))
	}
	reach := f.ReachableBlocks()
	dt := ir.NewDomTree(f)

	// Pass 1: shape checks and register assignment. Every value-producing
	// instruction of a reachable block gets a dense register; uses of
	// anything else (dead blocks, post-terminator code) decline via the
	// missing map entry. Iteration follows f.Blocks order throughout, so
	// the emitted code and pool layout are deterministic.
	nparams := len(f.Params)
	paramOf := make(map[*ir.Param]int32, nparams)
	for i, pr := range f.Params {
		paramOf[pr] = int32(i)
	}
	regOf := make(map[*ir.Instr]int32)
	info := make(map[*ir.Block]*blockInfo)
	var rblocks []*ir.Block
	next := int32(nparams)
	maxPhis := 0
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		term := -1
		for i, in := range b.Instrs {
			if in.IsTerminator() {
				term = i
				break
			}
		}
		if term < 0 {
			return fail(declinef("%s/%s: no terminator", f.Name, b.Name))
		}
		if term != len(b.Instrs)-1 {
			// The interpreter branches at the first terminator, but Succs()
			// (hence reachability and dominance) reads the last instruction:
			// the analyses would describe a different CFG than the one
			// executed. Decline rather than trust either.
			return fail(declinef("%s/%s: instructions after terminator", f.Name, b.Name))
		}
		phis := b.Phis()
		for _, in := range b.Instrs[len(phis):term] {
			if in.Op == ir.OpPhi {
				return fail(declinef("%s/%s: phi after non-phi", f.Name, b.Name))
			}
		}
		if len(phis) > maxPhis {
			maxPhis = len(phis)
		}
		for _, in := range b.Instrs {
			if !in.Ty.IsVoid() {
				regOf[in] = next
				next++
			}
		}
		rblocks = append(rblocks, b)
		info[b] = &blockInfo{phis: phis, term: term}
	}

	// Register file layout: [params | results | phi staging | consts].
	// Staging sits before the pool because the pool keeps growing while
	// code (including edge stubs that need staging indices) is emitted.
	stagingBase := next
	constBase := stagingBase + int32(maxPhis)
	constReg := make(map[int64]int32)
	var consts []int64
	constRegFor := func(v int64) int32 {
		if r, ok := constReg[v]; ok {
			return r
		}
		r := constBase + int32(len(consts))
		constReg[v] = r
		consts = append(consts, v)
		return r
	}
	operand := func(v ir.Value) (int32, error) {
		switch x := v.(type) {
		case *ir.Const:
			return constRegFor(x.Val), nil
		case *ir.Undef:
			return constRegFor(0), nil
		case *ir.Global:
			a, ok := gaddr[x]
			if !ok {
				return 0, declinef("%s: foreign global %s", f.Name, x.Ref())
			}
			return constRegFor(a), nil
		case *ir.Param:
			r, ok := paramOf[x]
			if !ok {
				return 0, declinef("%s: foreign param %s", f.Name, x.Ref())
			}
			return r, nil
		case *ir.Instr:
			r, ok := regOf[x]
			if !ok {
				return 0, declinef("%s: use of unlowered value %s", f.Name, x.Ref())
			}
			return r, nil
		default:
			return 0, declinef("%s: unknown operand kind %T", f.Name, v)
		}
	}
	// arg resolves an operand of use and proves its definition reaches it;
	// dominance is what lets the dispatch loop read registers without
	// definedness tracking (the interpreter errors on undefined values).
	arg := func(v ir.Value, use *ir.Instr) (int32, error) {
		if !dt.DominatesInstr(v, use) {
			return 0, declinef("%s: operand %s does not dominate its use", f.Name, v.Ref())
		}
		return operand(v)
	}
	mustDst := func(in *ir.Instr) (int32, error) {
		r, ok := regOf[in]
		if !ok {
			return 0, declinef("%s: value instruction %s with void type", f.Name, in.Op)
		}
		return r, nil
	}

	// Phase A: block bodies. Terminator targets can't resolve until the
	// edge stubs exist, so they are recorded as patches against (pred,
	// succ) and filled in phase C.
	type patch struct {
		pc    int
		field int // 0 = a, 1 = b, 2 = c
		pred  *ir.Block
		succ  *ir.Block
	}
	type swPatch struct {
		desc int
		idx  int // case index; -1 = default
		pred *ir.Block
		succ *ir.Block
	}
	var (
		code      []inst
		patches   []patch
		swPatches []swPatch
		calls     []callDesc
		switches  []switchDesc
	)
	emit := func(i inst) int {
		code = append(code, i)
		return len(code) - 1
	}
	for _, b := range rblocks {
		bi := info[b]
		w := weight(b)
		if w < 0 {
			return fail(declinef("%s/%s: negative block weight", f.Name, b.Name))
		}
		bi.head = int32(len(code))
		emit(inst{op: opEnter, dst: -1, a: int32(len(bi.phis)), b: -1, c: -1, imm: int64(w)})
		for _, in := range b.Instrs[len(bi.phis):] {
			switch {
			case in.Op.IsBinary():
				if len(in.Args) < 2 {
					return fail(declinef("%s: %s with %d operands", f.Name, in.Op, len(in.Args)))
				}
				w, ok := widthBin(in.Ty)
				if !ok {
					return fail(declinef("%s: %s at unencodable width %s", f.Name, in.Op, in.Ty))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opAdd + op(in.Op-ir.OpAdd), w: w, dst: d, a: a, b: bb, c: -1})
			case in.Op == ir.OpICmp:
				if len(in.Args) < 2 {
					return fail(declinef("%s: icmp with %d operands", f.Name, len(in.Args)))
				}
				if in.Pred > ir.CmpUGE {
					return fail(declinef("%s: icmp with unknown predicate", f.Name))
				}
				w, ok := widthICmp(in.Args[0].Type())
				if !ok {
					return fail(declinef("%s: icmp at unencodable width", f.Name))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opEq + op(in.Pred), w: w, dst: d, a: a, b: bb, c: -1})
			case in.Op == ir.OpSelect:
				if len(in.Args) < 3 {
					return fail(declinef("%s: select with %d operands", f.Name, len(in.Args)))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				cc, err := arg(in.Args[2], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opSelect, dst: d, a: a, b: bb, c: cc})
			case in.Op == ir.OpAlloca:
				if in.AllocTy == nil {
					return fail(declinef("%s: alloca without allocated type", f.Name))
				}
				n := 1
				if in.AllocTy.Kind == ir.ArrayKind {
					n = in.AllocTy.Len
				}
				if n < 0 {
					return fail(declinef("%s: alloca of negative size", f.Name))
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opAlloca, dst: d, a: -1, b: -1, c: -1, imm: int64(n)})
			case in.Op == ir.OpLoad:
				if len(in.Args) < 1 {
					return fail(declinef("%s: load without address", f.Name))
				}
				w, ok := widthTrunc(in.Ty)
				if !ok {
					return fail(declinef("%s: load at unencodable width %s", f.Name, in.Ty))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opLoad, w: w, dst: d, a: a, b: -1, c: -1})
			case in.Op == ir.OpStore:
				if len(in.Args) < 2 {
					return fail(declinef("%s: store with %d operands", f.Name, len(in.Args)))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opStore, dst: -1, a: a, b: bb, c: -1})
			case in.Op == ir.OpGEP:
				if len(in.Args) < 2 {
					return fail(declinef("%s: gep with %d operands", f.Name, len(in.Args)))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opGEP, dst: d, a: a, b: bb, c: -1})
			case in.Op == ir.OpMemset:
				if len(in.Args) < 3 {
					return fail(declinef("%s: memset with %d operands", f.Name, len(in.Args)))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				bb, err := arg(in.Args[1], in)
				if err != nil {
					return fail(err)
				}
				cc, err := arg(in.Args[2], in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opMemset, dst: -1, a: a, b: bb, c: cc})
			case in.Op.IsCast():
				if len(in.Args) < 1 {
					return fail(declinef("%s: cast without operand", f.Name))
				}
				var (
					o  op
					w  uint8
					ok bool
				)
				switch in.Op {
				case ir.OpTrunc:
					o = opTrunc
					w, ok = widthTrunc(in.Ty)
				case ir.OpZExt:
					o = opZExt
					w, ok = widthMask(in.Args[0].Type())
				case ir.OpSExt:
					o = opSExt
					w, ok = widthTrunc(in.Args[0].Type())
				default: // bitcast
					o, w, ok = opCopy, 64, true
				}
				if !ok {
					return fail(declinef("%s: %s at unencodable width", f.Name, in.Op))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				d, err := mustDst(in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: o, w: w, dst: d, a: a, b: -1, c: -1})
			case in.Op == ir.OpCall:
				callee := in.Callee
				if callee == nil {
					return fail(declinef("%s: call without callee", f.Name))
				}
				ci, ok := fnIdx[callee]
				if !ok {
					return fail(declinef("%s: call to foreign function %s", f.Name, callee.Name))
				}
				np := len(callee.Params)
				if len(in.Args) < np {
					// The interpreter leaves the missing parameters
					// undefined; registers can't represent that.
					return fail(declinef("%s: call to %s with %d of %d args", f.Name, callee.Name, len(in.Args), np))
				}
				// The interpreter evaluates every actual, including extras
				// beyond the parameter list, so all must resolve; only the
				// bound prefix is passed.
				args := make([]int32, 0, np)
				for k, av := range in.Args {
					r, err := arg(av, in)
					if err != nil {
						return fail(err)
					}
					if k < np {
						args = append(args, r)
					}
				}
				d := int32(-1)
				if !in.Ty.IsVoid() {
					var err error
					if d, err = mustDst(in); err != nil {
						return fail(err)
					}
				}
				calls = append(calls, callDesc{fn: ci, args: args})
				emit(inst{op: opCall, dst: d, a: int32(len(calls) - 1), b: -1, c: -1})
			case in.Op == ir.OpPrint:
				if len(in.Args) < 1 {
					return fail(declinef("%s: print without operand", f.Name))
				}
				a, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				emit(inst{op: opPrint, dst: -1, a: a, b: -1, c: -1})
			case in.Op == ir.OpRet:
				a := int32(-1)
				if len(in.Args) > 0 {
					var err error
					if a, err = arg(in.Args[0], in); err != nil {
						return fail(err)
					}
				}
				emit(inst{op: opRet, dst: -1, a: a, b: -1, c: -1})
			case in.Op == ir.OpBr:
				switch len(in.Blocks) {
				case 1:
					pc := emit(inst{op: opJmp, dst: -1, a: -1, b: -1, c: -1})
					patches = append(patches, patch{pc, 0, b, in.Blocks[0]})
				case 2:
					if len(in.Args) < 1 {
						return fail(declinef("%s: conditional br without condition", f.Name))
					}
					cond, err := arg(in.Args[0], in)
					if err != nil {
						return fail(err)
					}
					pc := emit(inst{op: opBr, dst: -1, a: cond, b: -1, c: -1})
					patches = append(patches,
						patch{pc, 1, b, in.Blocks[0]},
						patch{pc, 2, b, in.Blocks[1]})
				default:
					return fail(declinef("%s: br with %d targets", f.Name, len(in.Blocks)))
				}
			case in.Op == ir.OpSwitch:
				if len(in.Args) < 1 {
					return fail(declinef("%s: switch without operand", f.Name))
				}
				if len(in.Blocks) < len(in.Cases)+1 {
					return fail(declinef("%s: switch with %d targets for %d cases", f.Name, len(in.Blocks), len(in.Cases)))
				}
				v, err := arg(in.Args[0], in)
				if err != nil {
					return fail(err)
				}
				si := len(switches)
				switches = append(switches, switchDesc{
					cases:   append([]int64(nil), in.Cases...),
					targets: make([]int32, len(in.Cases)),
				})
				emit(inst{op: opSwitch, dst: -1, a: v, b: int32(si), c: -1})
				swPatches = append(swPatches, swPatch{si, -1, b, in.Blocks[0]})
				for k := range in.Cases {
					swPatches = append(swPatches, swPatch{si, k, b, in.Blocks[k+1]})
				}
			case in.Op == ir.OpUnreachable:
				emit(inst{op: opUnreachable, dst: -1, a: -1, b: -1, c: -1})
			default:
				return fail(declinef("%s: unhandled op %s", f.Name, in.Op))
			}
		}
	}

	// Phase B: one stub per executed (pred, succ) edge. Edges into phi-free
	// blocks jump straight to the head; phi edges copy the incoming values
	// with the interpreter's read-all-then-write-all atomicity (via staging
	// registers when a destination doubles as a source).
	type edgeKey struct{ pred, succ *ir.Block }
	edgePC := make(map[edgeKey]int32)
	for _, b := range rblocks {
		t := b.Instrs[info[b].term]
		var targets []*ir.Block
		switch t.Op {
		case ir.OpBr:
			targets = t.Blocks
		case ir.OpSwitch:
			// Blocks beyond Cases+1 are never dispatched to; don't force
			// their phi edges to lower.
			targets = t.Blocks[:len(t.Cases)+1]
		}
		for _, succ := range targets {
			key := edgeKey{b, succ}
			if _, seen := edgePC[key]; seen {
				continue
			}
			sbi, ok := info[succ]
			if !ok {
				return fail(declinef("%s/%s: edge into unlowered block", f.Name, b.Name))
			}
			if len(sbi.phis) == 0 {
				edgePC[key] = sbi.head
				continue
			}
			stub := int32(len(code))
			srcs := make([]int32, len(sbi.phis))
			dsts := make([]int32, len(sbi.phis))
			for j, phi := range sbi.phis {
				v, ok := phi.PhiIncoming(b)
				if !ok {
					return fail(declinef("%s/%s: phi missing incoming for pred %s", f.Name, succ.Name, b.Name))
				}
				r, err := arg(v, phi)
				if err != nil {
					return fail(err)
				}
				srcs[j] = r
				d, err := mustDst(phi)
				if err != nil {
					return fail(err)
				}
				dsts[j] = d
			}
			overlap := false
			for _, d := range dsts {
				for _, s := range srcs {
					if d == s {
						overlap = true
					}
				}
			}
			if overlap {
				for j := range srcs {
					emit(inst{op: opMove, dst: stagingBase + int32(j), a: srcs[j], b: -1, c: -1})
				}
				for j := range dsts {
					emit(inst{op: opMove, dst: dsts[j], a: stagingBase + int32(j), b: -1, c: -1})
				}
			} else {
				for j := range dsts {
					if dsts[j] != srcs[j] {
						emit(inst{op: opMove, dst: dsts[j], a: srcs[j], b: -1, c: -1})
					}
				}
			}
			emit(inst{op: opGoto, dst: -1, a: sbi.head, b: -1, c: -1})
			edgePC[key] = stub
		}
	}

	// Phase C: resolve the recorded branch targets to stub addresses.
	for _, pt := range patches {
		pc, ok := edgePC[edgeKey{pt.pred, pt.succ}]
		if !ok {
			return fail(declinef("%s: unresolved branch edge", f.Name))
		}
		switch pt.field {
		case 0:
			code[pt.pc].a = pc
		case 1:
			code[pt.pc].b = pc
		case 2:
			code[pt.pc].c = pc
		}
	}
	for _, sp := range swPatches {
		pc, ok := edgePC[edgeKey{sp.pred, sp.succ}]
		if !ok {
			return fail(declinef("%s: unresolved switch edge", f.Name))
		}
		if sp.idx < 0 {
			switches[sp.desc].deflt = pc
		} else {
			switches[sp.desc].targets[sp.idx] = pc
		}
	}

	return funcCode{
		name:      f.Name,
		code:      code,
		consts:    consts,
		constBase: constBase,
		nparams:   nparams,
		numRegs:   int(constBase) + len(consts),
		calls:     calls,
		switches:  switches,
	}, nil
}
