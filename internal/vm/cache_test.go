package vm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"autophase/internal/ir"
)

// TestCacheStats: the four counters track hits, decline hits, misses and
// FIFO evictions exactly.
func TestCacheStats(t *testing.T) {
	c := NewCache(2)
	fp := func(i int) ir.Fingerprint { return ir.Fingerprint{Hi: uint64(i), Lo: 1} }

	c.Get(fp(1)) // miss
	c.Put(fp(1), &Program{}, nil)
	c.Put(fp(2), nil, errors.New("declined"))
	c.Get(fp(1))                  // hit
	c.Get(fp(2))                  // decline hit
	c.Put(fp(3), &Program{}, nil) // evicts fp(1)
	c.Get(fp(1))                  // miss again

	got := c.Stats()
	want := CacheStats{Hits: 1, Declines: 1, Misses: 2, Evictions: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestCacheConcurrentChurn drives parallel Get/Put traffic over a keyspace
// several times the cache capacity, so FIFO eviction runs continuously
// while readers race it. Run under -race this is the memory-safety proof;
// the invariant checks prove eviction bookkeeping never desyncs from the
// item map.
func TestCacheConcurrentChurn(t *testing.T) {
	const capacity = 32
	const keys = capacity * 8
	c := NewCache(capacity)
	progs := make([]*Program, keys)
	for i := range progs {
		progs[i] = &Program{Area: i}
	}
	fp := func(i int) ir.Fingerprint { return ir.Fingerprint{Hi: uint64(i), Lo: ^uint64(i)} }

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (i*7 + w*13) % keys
				if w%2 == 0 {
					if k%5 == 0 {
						c.Put(fp(k), nil, errors.New("declined"))
					} else {
						c.Put(fp(k), progs[k], nil)
					}
				} else {
					prog, err, ok := c.Get(fp(k))
					if !ok {
						continue
					}
					// An entry holds exactly one of prog/err, and a served
					// program must be the one put under that key.
					if (prog == nil) == (err == nil) {
						panic(fmt.Sprintf("entry for %d holds prog=%v err=%v", k, prog != nil, err))
					}
					if prog != nil && prog.Area != k {
						panic(fmt.Sprintf("key %d served program %d", k, prog.Area))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn past capacity produced no evictions")
	}
	if st.Hits == 0 && st.Declines == 0 {
		t.Fatal("no reader ever hit")
	}
}
