package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary serialization of lowered Programs, so a persistent artifact store
// can hand a warm process its bytecode without re-lowering. The format is
// fixed-width little-endian — no compression, no varints — because decode
// speed and auditability beat size here (programs are a few KB). The codec
// carries a version byte of its own: the encoding can evolve independently
// of the artifact store's segment format.
//
// Decode is defensive (every length bounds-checked against the remaining
// input, every count bounded before allocation) but deliberately not a
// semantic validator: callers restoring a Program from untrusted bytes must
// re-run Verify on the result, exactly as the lowering path does on a cache
// fill. A checksum-valid record whose payload fails Decode or Verify is a
// corrupt artifact, not an execution candidate.

const (
	codecMagic   = "AVMP"
	codecVersion = 1
)

// ErrCodec marks every decode failure, so callers can fold "undecodable
// bytecode" into their corruption-is-a-miss policy with errors.Is.
var ErrCodec = errors.New("vm: undecodable program")

// Encode serializes p. The inverse is Decode.
func Encode(p *Program) []byte {
	buf := make([]byte, 0, 4096)
	buf = append(buf, codecMagic...)
	buf = append(buf, codecVersion)
	buf = appendI64(buf, int64(p.main))
	buf = appendI64(buf, int64(p.Area))
	buf = appendU32(buf, uint32(len(p.globals)))
	for _, g := range p.globals {
		buf = appendU32(buf, uint32(g.cells))
		buf = appendI64s(buf, g.init)
	}
	buf = appendU32(buf, uint32(len(p.funcs)))
	for fi := range p.funcs {
		fc := &p.funcs[fi]
		buf = appendU32(buf, uint32(len(fc.name)))
		buf = append(buf, fc.name...)
		buf = appendU32(buf, uint32(fc.nparams))
		buf = appendU32(buf, uint32(fc.numRegs))
		buf = appendU32(buf, uint32(fc.constBase))
		buf = appendI64s(buf, fc.consts)
		buf = appendU32(buf, uint32(len(fc.calls)))
		for _, cd := range fc.calls {
			buf = appendU32(buf, uint32(cd.fn))
			buf = appendU32(buf, uint32(len(cd.args)))
			for _, a := range cd.args {
				buf = appendU32(buf, uint32(a))
			}
		}
		buf = appendU32(buf, uint32(len(fc.switches)))
		for _, sd := range fc.switches {
			buf = appendI64s(buf, sd.cases)
			for _, t := range sd.targets {
				buf = appendU32(buf, uint32(t))
			}
			buf = appendU32(buf, uint32(sd.deflt))
		}
		buf = appendU32(buf, uint32(len(fc.code)))
		for _, in := range fc.code {
			buf = append(buf, byte(in.op), in.w)
			buf = appendU32(buf, uint32(in.dst))
			buf = appendU32(buf, uint32(in.a))
			buf = appendU32(buf, uint32(in.b))
			buf = appendU32(buf, uint32(in.c))
			buf = appendI64(buf, in.imm)
		}
	}
	return buf
}

// Decode reconstructs a Program from Encode's output. Any truncation, bad
// magic, version skew or implausible count returns an error wrapping
// ErrCodec. The result is structurally plausible but unproven: run Verify
// before executing it.
func Decode(data []byte) (*Program, error) {
	r := reader{data: data}
	if string(r.bytes(4)) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	if v := r.u8(); v != codecVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCodec, v, codecVersion)
	}
	p := &Program{
		main: int(r.i64()),
		Area: int(r.i64()),
	}
	ng := r.count(4)
	p.globals = make([]globalInit, 0, ng)
	for i := 0; i < ng && r.err == nil; i++ {
		g := globalInit{cells: int(r.u32()), init: r.i64s()}
		p.globals = append(p.globals, g)
	}
	nf := r.count(16)
	p.funcs = make([]funcCode, 0, nf)
	for i := 0; i < nf && r.err == nil; i++ {
		var fc funcCode
		fc.name = string(r.bytes(r.count(1)))
		fc.nparams = int(r.u32())
		fc.numRegs = int(r.u32())
		fc.constBase = int32(r.u32())
		fc.consts = r.i64s()
		nc := r.count(8)
		fc.calls = make([]callDesc, 0, nc)
		for j := 0; j < nc && r.err == nil; j++ {
			cd := callDesc{fn: int32(r.u32())}
			na := r.count(4)
			cd.args = make([]int32, 0, na)
			for k := 0; k < na && r.err == nil; k++ {
				cd.args = append(cd.args, int32(r.u32()))
			}
			fc.calls = append(fc.calls, cd)
		}
		ns := r.count(8)
		fc.switches = make([]switchDesc, 0, ns)
		for j := 0; j < ns && r.err == nil; j++ {
			sd := switchDesc{cases: r.i64s()}
			sd.targets = make([]int32, 0, len(sd.cases))
			for k := 0; k < len(sd.cases) && r.err == nil; k++ {
				sd.targets = append(sd.targets, int32(r.u32()))
			}
			sd.deflt = int32(r.u32())
			fc.switches = append(fc.switches, sd)
		}
		ni := r.count(26)
		fc.code = make([]inst, 0, ni)
		for j := 0; j < ni && r.err == nil; j++ {
			in := inst{op: op(r.u8()), w: r.u8()}
			in.dst = int32(r.u32())
			in.a = int32(r.u32())
			in.b = int32(r.u32())
			in.c = int32(r.u32())
			in.imm = r.i64()
			fc.code = append(fc.code, in)
		}
		p.funcs = append(p.funcs, fc)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.data)-r.off)
	}
	return p, nil
}

// reader is a bounds-checked cursor: the first short read sticks in err and
// every later accessor returns zeros, so decode loops need one error check
// per object, not per field.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCodec, r.off)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || n > len(r.data)-r.off {
		r.fail()
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i64() int64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// count reads a u32 element count and rejects any value whose elements
// (elemSize bytes each, minimum) could not fit in the remaining input — a
// corrupted count can then never drive a giant allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > (len(r.data)-r.off)/elemSize+1) {
		r.fail()
	}
	if r.err != nil {
		return 0
	}
	return n
}

func (r *reader) i64s() []int64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]int64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.i64())
	}
	return out
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendI64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

func appendI64s(buf []byte, vs []int64) []byte {
	if len(vs) > math.MaxUint32 {
		panic("vm: encode: slice too long") // unreachable for lowered programs
	}
	buf = appendU32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = appendI64(buf, v)
	}
	return buf
}
