package vm

import (
	"errors"
	"strings"
	"testing"

	"autophase/internal/faults"
	"autophase/internal/interp"
	"autophase/internal/ir"
)

// testWeight assigns each block a small deterministic weight so the folded
// cycle formula is exercised with non-uniform per-block costs. The same
// closure is reused after lowering to compute the expected cycles from the
// interpreter's block profile.
func testWeight() func(*ir.Block) int {
	seen := make(map[*ir.Block]int)
	return func(b *ir.Block) int {
		if w, ok := seen[b]; ok {
			return w
		}
		w := len(seen)%5 + 1
		seen[b] = w
		return w
	}
}

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func lower(t *testing.T, src string, w func(*ir.Block) int) *Program {
	t.Helper()
	p, err := Lower(parse(t, src), w)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

// runDiff runs src under both engines and demands bit-identical outcomes:
// same error class, or same exit/steps/trace and the exact folded-cycle
// identity Cycles == Σ weight(b)·count(b) + memset cells + Σ calls.
func runDiff(t *testing.T, src string, lim interp.Limits) {
	t.Helper()
	m := parse(t, src)
	w := testWeight()
	p, err := Lower(m, w)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	vres, verr := Run(p, lim)
	ires, ierr := interp.Run(m, lim)
	if (verr == nil) != (ierr == nil) {
		t.Fatalf("engine disagreement: vm err=%v, interp err=%v", verr, ierr)
	}
	if verr != nil {
		for _, cls := range []error{
			interp.ErrStepLimit, interp.ErrDepthLimit, interp.ErrMemLimit,
			interp.ErrDivByZero, interp.ErrOOB, interp.ErrNoMain,
			interp.ErrUnreach, interp.ErrDeadline,
		} {
			if errors.Is(ierr, cls) != errors.Is(verr, cls) {
				t.Fatalf("error class mismatch: vm %v, interp %v", verr, ierr)
			}
		}
		return
	}
	if vres.Exit != ires.Exit || vres.Steps != ires.Steps {
		t.Fatalf("vm exit=%d steps=%d, interp exit=%d steps=%d",
			vres.Exit, vres.Steps, ires.Exit, ires.Steps)
	}
	if len(vres.Trace) != len(ires.Trace) {
		t.Fatalf("trace length: vm %d, interp %d", len(vres.Trace), len(ires.Trace))
	}
	for i := range vres.Trace {
		if vres.Trace[i] != ires.Trace[i] {
			t.Fatalf("trace[%d]: vm %d, interp %d", i, vres.Trace[i], ires.Trace[i])
		}
	}
	var want int64
	for b, n := range ires.Blocks {
		want += n * int64(w(b))
	}
	want += ires.MemsetCells
	for _, n := range ires.Calls {
		want += n
	}
	if vres.Cycles != want {
		t.Fatalf("cycles: vm %d, folded-weight formula %d", vres.Cycles, want)
	}
}

const fibSrc = `define i32 @main() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %c, %loop ]
  %c = add i32 %a, %b
  %i2 = add i32 %i, 1
  %cmp = icmp slt i32 %i2, 20
  br i1 %cmp, label %loop, label %done

done:
  print(%a)
  ret i32 %a
}
`

// The fib loop's phis swap registers along the back edge (%a reads %b while
// %b is being overwritten), forcing the two-phase staging moves.
func TestLoopPhiSwap(t *testing.T) {
	runDiff(t, fibSrc, interp.DefaultLimits)
}

func TestRecursionDifferential(t *testing.T) {
	src := `define i32 @fact(i32 %n) {
entry:
  %c = icmp sle i32 %n, 1
  br i1 %c, label %base, label %rec

base:
  ret i32 1

rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(%n1)
  %m = mul i32 %n, %r
  ret i32 %m
}

define i32 @main() {
entry:
  %r = call i32 @fact(10)
  print(%r)
  ret i32 %r
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestDepthLimit(t *testing.T) {
	src := `define i32 @loop(i32 %n) {
entry:
  %n1 = add i32 %n, 1
  %r = call i32 @loop(%n1)
  ret i32 %r
}

define i32 @main() {
entry:
  %r = call i32 @loop(0)
  ret i32 %r
}
`
	lim := interp.DefaultLimits
	lim.MaxDepth = 17
	runDiff(t, src, lim)
}

func TestMemsetAndGlobals(t *testing.T) {
	src := `@tab = constant [4 x i32] [10 20 30 40]

define i64 @main() {
entry:
  %p = alloca [8 x i64]
  memset(%p, 7, 8)
  %q = getelementptr i64* %p, 3
  %v = load i64, i64* %q
  %g = getelementptr i32* @tab, 2
  %w = load i32, i32* %g
  %we = sext i32 %w to i64
  %s = add i64 %v, %we
  print(%s)
  ret i64 %s
}
`
	runDiff(t, src, interp.DefaultLimits)
}

// A GEP offset of exactly 1<<28 wraps the 28-bit pointer offset field back
// to zero in both engines.
func TestPointerOffsetWraparound(t *testing.T) {
	src := `define i64 @main() {
entry:
  %p = alloca [8 x i64]
  memset(%p, 3, 8)
  %q = getelementptr i64* %p, 268435456
  %v = load i64, i64* %q
  ret i64 %v
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestSwitchLoop(t *testing.T) {
	src := `define i32 @main() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %join ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %join ]
  %r = srem i32 %i, 4
  switch i32 %r, label %def [0: label %a, 1: label %b]

a:
  br label %join

b:
  br label %join

def:
  br label %join

join:
  %d = phi i32 [ 5, %a ], [ 7, %b ], [ 11, %def ]
  %acc2 = add i32 %acc, %d
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 12
  br i1 %c, label %loop, label %done

done:
  print(%acc)
  ret i32 %acc
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestSelectCastsAndUnsignedCompare(t *testing.T) {
	src := `define i64 @main() {
entry:
  %a = add i32 -5, 0
  %b = add i32 3, 0
  %c = icmp ult i32 %a, %b
  %s = select i1 %c, i32 %a, i32 %b
  %t = trunc i32 %s to i8
  %z = zext i8 %t to i64
  %x = sext i8 %t to i64
  %sh = lshr i8 %t, 2
  %she = zext i8 %sh to i64
  %sum = add i64 %z, %x
  %sum2 = add i64 %sum, %she
  print(%sum2)
  ret i64 %sum2
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestDivTraps(t *testing.T) {
	// Division by a dynamically-computed zero traps identically.
	src := `define i32 @main() {
entry:
  %a = add i32 7, 0
  %z = sub i32 %a, %a
  %q = sdiv i32 %a, %z
  ret i32 %q
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestDivMinOverflowSaturates(t *testing.T) {
	// minint / -1 saturates to 0 in ir.EvalBinary; both engines agree.
	src := `define i64 @main() {
entry:
  %m = add i64 -9223372036854775808, 0
  %n = add i64 -1, 0
  %q = sdiv i64 %m, %n
  %r = srem i64 %m, %n
  %s = add i64 %q, %r
  print(%s)
  ret i64 %s
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestOOBLoad(t *testing.T) {
	src := `define i64 @main() {
entry:
  %p = alloca [8 x i64]
  %q = getelementptr i64* %p, 100
  %v = load i64, i64* %q
  ret i64 %v
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestUnreachableTrap(t *testing.T) {
	src := `define i32 @main() {
entry:
  unreachable
}
`
	runDiff(t, src, interp.DefaultLimits)
}

func TestStepLimit(t *testing.T) {
	lim := interp.DefaultLimits
	lim.MaxSteps = 37
	runDiff(t, fibSrc, lim)
}

func TestMemLimit(t *testing.T) {
	src := `define i64 @main() {
entry:
  %p = alloca [64 x i64]
  ret i64 0
}
`
	lim := interp.DefaultLimits
	lim.MaxCells = 16
	runDiff(t, src, lim)
}

func TestNoMain(t *testing.T) {
	src := `define i32 @f() {
entry:
  ret i32 0
}
`
	m := parse(t, src)
	p, err := Lower(m, func(*ir.Block) int { return 1 })
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := Run(p, interp.DefaultLimits); !errors.Is(err, interp.ErrNoMain) {
		t.Fatalf("want ErrNoMain, got %v", err)
	}
}

func TestDeclineShortCall(t *testing.T) {
	// The interpreter leaves missing parameters undefined; the VM declines.
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  ret i32 %a
}

define i32 @main() {
entry:
  %r = call i32 @f(1)
  ret i32 %r
}
`
	_, err := Lower(parse(t, src), func(*ir.Block) int { return 1 })
	if !errors.Is(err, ErrDecline) {
		t.Fatalf("want ErrDecline, got %v", err)
	}
}

func TestDeclineNegativeWeight(t *testing.T) {
	_, err := Lower(parse(t, fibSrc), func(*ir.Block) int { return -1 })
	if !errors.Is(err, ErrDecline) {
		t.Fatalf("want ErrDecline, got %v", err)
	}
}

func TestDeclineCodeAfterTerminator(t *testing.T) {
	// Block.Term() sees only a trailing terminator, so Succs/dominators
	// would describe a different CFG than the interpreter executes;
	// lowering must refuse rather than guess.
	src := `define i32 @main() {
entry:
  ret i32 1
  %x = add i32 1, 2
}
`
	_, err := Lower(parse(t, src), func(*ir.Block) int { return 1 })
	if !errors.Is(err, ErrDecline) {
		t.Fatalf("want ErrDecline, got %v", err)
	}
}

// A declined function only poisons the module when main can reach it.
func TestDeclineOnlyWhenReachable(t *testing.T) {
	src := `define i32 @dead() {
entry:
  ret i32 1
  %x = add i32 1, 2
}

define i32 @main() {
entry:
  ret i32 0
}
`
	p, err := Lower(parse(t, src), func(*ir.Block) int { return 1 })
	if err != nil {
		t.Fatalf("lower with unreachable declined func: %v", err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Run(p, interp.DefaultLimits)
	if err != nil || res.Exit != 0 {
		t.Fatalf("run: exit=%v err=%v", res, err)
	}
}

func TestVerifyCorruption(t *testing.T) {
	fresh := func() *Program { return lower(t, fibSrc, func(*ir.Block) int { return 2 }) }

	p := fresh()
	fc := &p.funcs[p.main]
	fc.code = fc.code[:len(fc.code)-1]
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "falls off the end") {
		t.Fatalf("truncated code: %v", err)
	}

	p = fresh()
	fc = &p.funcs[p.main]
	for i := range fc.code {
		if fc.code[i].dst >= 0 {
			fc.code[i].dst = int32(fc.numRegs) + 5
			break
		}
	}
	if err := Verify(p); err == nil {
		t.Fatal("out-of-range dst accepted")
	}

	p = fresh()
	fc = &p.funcs[p.main]
	for i := range fc.code {
		if fc.code[i].op >= opShl && fc.code[i].op <= opAShr {
			fc.code[i].w = 0
			if err := Verify(p); err == nil || !strings.Contains(err.Error(), "width 0") {
				t.Fatalf("zero-width shift: %v", err)
			}
			break
		}
	}
}

func TestVerifyCallAndSwitchCorruption(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}

define i32 @main() {
entry:
  %r = call i32 @f(3, 4)
  switch i32 %r, label %d [7: label %a]

a:
  ret i32 1

d:
  ret i32 0
}
`
	p := lower(t, src, func(*ir.Block) int { return 1 })
	fc := &p.funcs[p.main]
	if len(fc.calls) != 1 || len(fc.switches) != 1 {
		t.Fatalf("expected one call and one switch, got %d/%d", len(fc.calls), len(fc.switches))
	}
	saved := fc.calls[0].args
	fc.calls[0].args = saved[:1]
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("call arity: %v", err)
	}
	fc.calls[0].args = saved

	fc.switches[0].targets = fc.switches[0].targets[:0]
	if err := Verify(p); err == nil {
		t.Fatal("switch target/case mismatch accepted")
	}
}

func TestCache(t *testing.T) {
	c := NewCache(2)
	fp := func(s string) ir.Fingerprint {
		m, err := ir.Parse("define i32 @main() {\nentry:\n  ret i32 " + s + "\n}\n")
		if err != nil {
			t.Fatal(err)
		}
		return m.Fingerprint()
	}
	f1, f2, f3 := fp("1"), fp("2"), fp("3")

	if _, _, ok := c.Get(f1); ok {
		t.Fatal("hit on empty cache")
	}
	prog := &Program{main: -1}
	c.Put(f1, prog, nil)
	if got, err, ok := c.Get(f1); !ok || got != prog || err != nil {
		t.Fatalf("positive entry: %v %v %v", got, err, ok)
	}

	// Negative caching: a decline is remembered too.
	declErr := declinef("test decline")
	c.Put(f2, nil, declErr)
	if got, err, ok := c.Get(f2); !ok || got != nil || !errors.Is(err, ErrDecline) {
		t.Fatalf("negative entry: %v %v %v", got, err, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}

	// FIFO eviction at capacity: f1 (oldest) goes first.
	c.Put(f3, prog, nil)
	if c.Len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", c.Len())
	}
	if _, _, ok := c.Get(f1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, _, ok := c.Get(f3); !ok {
		t.Fatal("newest entry missing")
	}

	// First writer wins: a second Put for f3 does not replace.
	other := &Program{main: -1}
	c.Put(f3, other, nil)
	if got, _, _ := c.Get(f3); got != prog {
		t.Fatal("second Put replaced entry")
	}
}

func TestInjectedStall(t *testing.T) {
	sp, err := faults.ParseSpec("interp-stall:1.0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Enable(sp); err != nil {
		t.Fatal(err)
	}
	defer faults.Disable()

	p := lower(t, fibSrc, func(*ir.Block) int { return 1 })
	if _, err := Run(p, interp.DefaultLimits); !errors.Is(err, interp.ErrDeadline) {
		t.Fatalf("want injected ErrDeadline, got %v", err)
	}
}

func TestInjectedPanic(t *testing.T) {
	sp, err := faults.ParseSpec("vm-panic:1.0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Enable(sp); err != nil {
		t.Fatal(err)
	}
	defer faults.Disable()

	p := lower(t, fibSrc, func(*ir.Block) int { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	Run(p, interp.DefaultLimits)
}
