package vm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"autophase/internal/interp"
)

// codecSources covers every structural feature the encoding carries:
// multiple functions with calls, switch tables, globals with initializers,
// memset, phi moves, and the full cast/compare opcode range.
var codecSources = []struct {
	name string
	src  string
}{
	{"loop", `define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %n, %loop ]
  %n = add i64 %i, 1
  %c = icmp slt i64 %n, 10
  br i1 %c, label %loop, label %done

done:
  ret i64 %i
}
`},
	{"calls-and-global", `@tab = constant [4 x i32] [10 20 30 40]

define i32 @get(i32 %i) {
entry:
  %g = getelementptr i32* @tab, %i
  %v = load i32, i32* %g
  ret i32 %v
}

define i32 @main() {
entry:
  %a = call i32 @get(1)
  %b = call i32 @get(3)
  %s = add i32 %a, %b
  print(%s)
  ret i32 %s
}
`},
	{"switch-memset", `define i64 @main() {
entry:
  %p = alloca [8 x i64]
  memset(%p, 7, 8)
  %v = load i64, i64* %p
  %vt = trunc i64 %v to i32
  switch i32 %vt, label %other [7: label %seven]

seven:
  ret i64 1

other:
  ret i64 0
}
`},
}

// TestCodecRoundTrip: Encode→Decode reproduces the Program field-for-field,
// Verify accepts the copy, and Run produces bit-identical results.
func TestCodecRoundTrip(t *testing.T) {
	lim := interp.Limits{MaxSteps: 1 << 20, MaxDepth: 64, MaxCells: 1 << 16}
	for _, tc := range codecSources {
		t.Run(tc.name, func(t *testing.T) {
			p := lower(t, tc.src, testWeight())
			data := Encode(p)
			q, err := Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := Verify(q); err != nil {
				t.Fatalf("verify decoded: %v", err)
			}
			// Nil and empty slices encode identically, so canonical-form
			// equality is re-encoding equality.
			if !bytes.Equal(data, Encode(q)) {
				t.Fatalf("decoded program re-encodes differently")
			}
			r1, err1 := Run(p, lim)
			r2, err2 := Run(q, lim)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("run divergence: %v vs %v", err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(r1, r2) {
				t.Fatalf("result divergence: %+v vs %+v", r1, r2)
			}
		})
	}
}

// TestCodecTruncation: every proper prefix of a valid encoding must fail
// decoding cleanly (no panic, no success with trailing loss).
func TestCodecTruncation(t *testing.T) {
	p := lower(t, codecSources[1].src, testWeight())
	data := Encode(p)
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(data))
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCodec", n, err)
		}
	}
}

// TestCodecBitFlips: single-byte corruption anywhere in the stream must
// never panic decoding or pass Verify with an out-of-range structure. (A
// flip in payload data — a constant, a weight, a name byte — may decode to
// a different but well-formed program; that is fine, because the artifact
// store's checksum is the integrity layer and corrupt bytes never reach
// Decode in production. The codec only has to stay memory-safe, and it is
// not asked to make corrupt programs executable: a forged goto-only cycle
// would evade the step limit, which is why consumers gate Run behind the
// checksum, not just Verify.)
func TestCodecBitFlips(t *testing.T) {
	p := lower(t, codecSources[2].src, testWeight())
	data := Encode(p)
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		q, err := Decode(mut)
		if err != nil {
			continue
		}
		Verify(q) // must not panic; rejection vs. acceptance is payload-dependent
	}
}

// TestCodecTrailingBytes: extra bytes after a valid stream are corruption,
// not padding.
func TestCodecTrailingBytes(t *testing.T) {
	p := lower(t, codecSources[0].src, testWeight())
	data := append(Encode(p), 0)
	if _, err := Decode(data); !errors.Is(err, ErrCodec) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestCodecBadMagicAndVersion: wrong magic or a future version must be
// rejected up front.
func TestCodecBadMagicAndVersion(t *testing.T) {
	p := lower(t, codecSources[0].src, testWeight())
	data := Encode(p)

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("bad magic accepted: %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[4] = codecVersion + 1
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("future version accepted: %v", err)
	}
}
