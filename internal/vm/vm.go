// Package vm executes IR modules lowered once to a flat register-based
// bytecode. It is the fast engine for the dynamic (non-static) fragment of
// the reward path: where hls.StaticProfile declines, the tree-walking
// interpreter in internal/interp used to be the only option, paying a map
// lookup per operand and a map increment per block. The lowered form
// preresolves every operand to a dense register index, folds the per-block
// FSM-state weights of the HLS schedule directly into the instruction
// stream (profiling is a counter bump, not a map), and dispatches through
// one dense opcode switch.
//
// The dispatch loop reproduces interp.Run's observable semantics exactly —
// step accounting, limit checks, pointer encoding, trap behaviour, the
// strided deadline/fault-injection poll — and shares interp's error
// sentinels so errors.Is-based policies (deadline retries, quarantine
// classification) treat both engines identically. Lowering declines any
// construct whose interpretation it cannot reproduce bit-exactly (see
// lower.go); callers fall back to the interpreter.
package vm

import (
	"fmt"
	"sync"
	"time"

	"autophase/internal/faults"
	"autophase/internal/interp"
)

// op is a bytecode opcode. Order matters: every op after opGoto charges one
// interpreter step before executing, mirroring the tree-walker's uniform
// per-instruction accounting; the three ops at the front are synthetic
// bookkeeping (block entry, phi edge copies) with their own step rules.
type op uint8

const (
	opEnter op = iota // block head: a = #phis, imm = folded FSM-state weight
	opMove            // dst = regs[a]; phi edge copy, charged via opEnter's phi count
	opGoto            // pc = a; edge-stub tail jump, no step (the branch already charged one)

	// Binary arithmetic/bitwise ops: dst = trunc(regs[a] ⊙ regs[b], w).
	// The block must stay parallel to ir.OpAdd..ir.OpAShr (lowering maps by
	// offset).
	opAdd
	opSub
	opMul
	opSDiv
	opSRem
	opAnd
	opOr
	opXor
	opShl
	opLShr
	opAShr

	// Comparisons, one opcode per predicate: dst = 0/1. w is the compared
	// width; unsigned predicates mask to it, signed ones compare the
	// canonical sign-extended values raw (as ir.CmpPred.Eval does).
	opEq
	opNe
	opSlt
	opSle
	opSgt
	opSge
	opUlt
	opUle
	opUgt
	opUge

	opSelect // dst = regs[a]!=0 ? regs[b] : regs[c]
	opAlloca // dst = new object of imm cells
	opLoad   // dst = trunc(mem[regs[a]], w)
	opStore  // mem[regs[b]] = regs[a]
	opGEP    // dst = regs[a] advanced by regs[b] cells (28-bit offset wrap)
	opMemset // memset(ptr=regs[a], val=regs[b], len=regs[c])

	opTrunc // dst = sign-trunc(regs[a], w); w = destination bits
	opZExt  // dst = regs[a] & mask(w);      w = source bits
	opSExt  // dst = sign-trunc(regs[a], w); w = source bits
	opCopy  // dst = regs[a]; bitcast (charged a step, unlike opMove)

	opCall  // invoke calls[a]; dst = return value (-1 for void)
	opPrint // append regs[a] to the trace
	opRet   // return regs[a] (a = -1: return 0)

	opJmp         // pc = a
	opBr          // pc = regs[a] != 0 ? b : c
	opSwitch      // pc = switches[b] dispatched on regs[a]
	opUnreachable // trap

	numOps
)

var opNames = [numOps]string{
	opEnter: "enter", opMove: "move", opGoto: "goto",
	opAdd: "add", opSub: "sub", opMul: "mul", opSDiv: "sdiv", opSRem: "srem",
	opAnd: "and", opOr: "or", opXor: "xor", opShl: "shl", opLShr: "lshr",
	opAShr: "ashr",
	opEq:   "eq", opNe: "ne", opSlt: "slt", opSle: "sle", opSgt: "sgt",
	opSge: "sge", opUlt: "ult", opUle: "ule", opUgt: "ugt", opUge: "uge",
	opSelect: "select", opAlloca: "alloca", opLoad: "load", opStore: "store",
	opGEP: "gep", opMemset: "memset",
	opTrunc: "trunc", opZExt: "zext", opSExt: "sext", opCopy: "copy",
	opCall: "call", opPrint: "print", opRet: "ret",
	opJmp: "jmp", opBr: "br", opSwitch: "switch", opUnreachable: "unreachable",
}

func (o op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// inst is one lowered instruction. Operand slots are register indices into
// the frame's register file, preresolved at lowering time; -1 marks an
// unused slot.
type inst struct {
	op      op
	w       uint8 // operand bit width where the op needs one (64 = full width)
	dst     int32 // result register (-1 = none)
	a, b, c int32 // operand registers or jump targets, per op
	imm     int64 // alloca cell count / opEnter cycle weight
}

// callDesc is one preresolved call site: callee index and argument
// registers in the caller's frame. Lowering guarantees len(args) equals the
// callee's parameter count.
type callDesc struct {
	fn   int32
	args []int32
}

// switchDesc is one preresolved switch table: case values and their stub
// targets, scanned in source order exactly like the interpreter.
type switchDesc struct {
	cases   []int64
	targets []int32
	deflt   int32
}

// funcCode is one function's lowered body. The frame register file is laid
// out [params | instruction results | phi staging | constant pool]; the
// constant pool is copied in at frame entry so operand fetch never
// branches on operand kind.
type funcCode struct {
	name      string
	code      []inst
	consts    []int64
	constBase int32
	nparams   int
	numRegs   int
	calls     []callDesc
	switches  []switchDesc
}

// globalInit is one module global's storage shape, captured at lowering so
// the Program is self-contained (no live ir pointers; cache entries may
// outlive the module they were lowered from).
type globalInit struct {
	cells int
	init  []int64
}

// Program is one module lowered to bytecode, bound to a specific HLS
// schedule: the per-block cycle weights are folded into the instruction
// stream, so it must be cached keyed by both the module fingerprint and a
// fixed hls.Config (hls.Profiler holds one Config per cache).
type Program struct {
	funcs   []funcCode
	globals []globalInit
	main    int // index into funcs; -1 when the module has no main

	// Area is the schedule's functional-unit area estimate, carried
	// alongside the folded weights so a profile needs no re-schedule.
	Area int
}

// Result is the outcome of executing a lowered module's main function,
// mirroring the fields of interp.Result that the profiler and the
// cross-check consume. Cycles is already the full HLS estimate
// (Σ weight·entries + memset cells + one handshake per call, main
// included) — the weights were folded at lowering.
type Result struct {
	Cycles int64
	Steps  int
	Exit   int64
	Trace  []int64
}

// Pointer encoding and poll stride are the interpreter's, bit for bit.
const (
	offBits    = 28
	offMask    = 1<<offBits - 1
	pollStride = 4096
)

type object struct{ cells []int64 }

type machine struct {
	p        *Program
	lim      interp.Limits
	regs     []int64 // frame windows carved at [base, base+numRegs)
	objs     []object
	cells    int
	steps    int
	nextPoll int
	deadline time.Time
	cycles   int64
	mset     int64
	trace    []int64
}

// Run executes p's main function under the given limits. Errors are the
// interp package's sentinels (wrapped where the interpreter wraps), so one
// errors.Is policy covers both engines.
// regPool recycles register stacks across runs: the search loop profiles
// millions of modules and a fresh 32 KiB zeroed stack per run dominated
// the allocation profile. Reuse is sound because lowering proves every
// non-parameter register is written before it is read (operand dominance),
// parameters of called functions are always copied in, and only main's
// parameter window — which no caller fills — needs explicit zeroing.
var regPool = sync.Pool{New: func() any {
	s := make([]int64, 4096)
	return &s
}}

func Run(p *Program, lim interp.Limits) (*Result, error) {
	if p.main < 0 {
		return nil, interp.ErrNoMain
	}
	if faults.Hit(faults.VMPanic) {
		panic("vm: injected dispatch panic")
	}
	rp := regPool.Get().(*[]int64)
	m := &machine{p: p, lim: lim, regs: *rp}
	defer func() {
		*rp = m.regs
		regPool.Put(rp)
	}()
	mainFc := &p.funcs[p.main]
	for i := 0; i < mainFc.nparams && i < len(m.regs); i++ {
		m.regs[i] = 0
	}
	if lim.Deadline > 0 {
		//contractvet:allow nondeterminism -- deadline anchor for the opt-in wall-clock bound; never read when Deadline is 0
		m.deadline = time.Now().Add(lim.Deadline)
	}
	for _, g := range p.globals {
		if m.cells+g.cells > lim.MaxCells {
			return nil, interp.ErrMemLimit
		}
		cells := make([]int64, g.cells)
		copy(cells, g.init)
		m.objs = append(m.objs, object{cells: cells})
		m.cells += g.cells
	}
	exit, err := m.exec(mainFc, 0, 0)
	if err != nil {
		return nil, err
	}
	return &Result{
		Cycles: m.cycles + m.mset,
		Steps:  m.steps,
		Exit:   exit,
		Trace:  m.trace,
	}, nil
}

// poll is the strided liveness check, identical to the interpreter's: the
// injection draw cadence and the deadline read match interp.Run exactly.
func (m *machine) poll() error {
	m.nextPoll = m.steps + pollStride
	if faults.Hit(faults.InterpStall) {
		return fmt.Errorf("%w (injected stall)", interp.ErrDeadline)
	}
	//contractvet:allow nondeterminism -- Limits.Deadline is opt-in (default 0 = off) and polled exactly as in interp
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		return interp.ErrDeadline
	}
	return nil
}

func oob(obj int, off int64) error {
	return fmt.Errorf("%w: obj=%d off=%d", interp.ErrOOB, obj, off)
}

// trunc sign-truncates v to the given width (ir.Type.TruncVal over a plain
// bit count).
func trunc(v int64, bits uint8) int64 {
	if bits >= 64 {
		return v
	}
	s := 64 - uint(bits)
	return int64(uint64(v)<<s) >> s
}

func maskOf(bits uint8) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

func minOf(bits uint8) int64 {
	if bits >= 64 {
		return -1 << 63
	}
	return -(int64(1) << (bits - 1))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// exec runs one frame. The register window is [base, base+fc.numRegs) of
// m.regs; growth may reallocate m.regs, but the captured slice stays valid
// because callee windows always live strictly above the caller's.
func (m *machine) exec(fc *funcCode, base, depth int) (int64, error) {
	if depth > m.lim.MaxDepth {
		return 0, interp.ErrDepthLimit
	}
	m.cycles++ // return handshake, one per invocation (main included)
	if need := base + fc.numRegs; need > len(m.regs) {
		m.regs = append(m.regs, make([]int64, need-len(m.regs))...)
	}
	regs := m.regs[base : base+fc.numRegs]
	copy(regs[fc.constBase:], fc.consts)
	code := fc.code
	maxSteps := m.lim.MaxSteps
	pc := 0
	for {
		in := &code[pc]
		if in.op > opGoto {
			m.steps++
			if m.steps > maxSteps {
				return 0, interp.ErrStepLimit
			}
		}
		switch in.op {
		case opEnter:
			m.cycles += in.imm
			if m.steps >= m.nextPoll {
				if err := m.poll(); err != nil {
					return 0, err
				}
			}
			// The interpreter charges one step per phi after the poll and
			// checks the limit once the whole edge has been copied.
			if k := int(in.a); k > 0 {
				m.steps += k
				if m.steps > maxSteps {
					return 0, interp.ErrStepLimit
				}
			}
			pc++
		case opMove:
			regs[in.dst] = regs[in.a]
			pc++
		case opGoto:
			pc = int(in.a)

		case opAdd:
			regs[in.dst] = trunc(regs[in.a]+regs[in.b], in.w)
			pc++
		case opSub:
			regs[in.dst] = trunc(regs[in.a]-regs[in.b], in.w)
			pc++
		case opMul:
			regs[in.dst] = trunc(regs[in.a]*regs[in.b], in.w)
			pc++
		case opSDiv:
			b := regs[in.b]
			if b == 0 {
				return 0, interp.ErrDivByZero
			}
			if a := regs[in.a]; a == minOf(in.w) && b == -1 {
				regs[in.dst] = 0 // ir.EvalBinary saturates MinInt/-1 to 0
			} else {
				regs[in.dst] = trunc(a/b, in.w)
			}
			pc++
		case opSRem:
			b := regs[in.b]
			if b == 0 {
				return 0, interp.ErrDivByZero
			}
			if a := regs[in.a]; a == minOf(in.w) && b == -1 {
				regs[in.dst] = 0
			} else {
				regs[in.dst] = trunc(a%b, in.w)
			}
			pc++
		case opAnd:
			regs[in.dst] = trunc(regs[in.a]&regs[in.b], in.w)
			pc++
		case opOr:
			regs[in.dst] = trunc(regs[in.a]|regs[in.b], in.w)
			pc++
		case opXor:
			regs[in.dst] = trunc(regs[in.a]^regs[in.b], in.w)
			pc++
		case opShl:
			sh := uint(uint64(regs[in.b]) % uint64(in.w))
			regs[in.dst] = trunc(regs[in.a]<<sh, in.w)
			pc++
		case opLShr:
			sh := uint(uint64(regs[in.b]) % uint64(in.w))
			regs[in.dst] = trunc(int64((uint64(regs[in.a])&maskOf(in.w))>>sh), in.w)
			pc++
		case opAShr:
			sh := uint(uint64(regs[in.b]) % uint64(in.w))
			regs[in.dst] = trunc(trunc(regs[in.a], in.w)>>sh, in.w)
			pc++

		case opEq:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
			pc++
		case opNe:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
			pc++
		case opSlt:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
			pc++
		case opSle:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
			pc++
		case opSgt:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
			pc++
		case opSge:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
			pc++
		case opUlt:
			mk := maskOf(in.w)
			regs[in.dst] = b2i(uint64(regs[in.a])&mk < uint64(regs[in.b])&mk)
			pc++
		case opUle:
			mk := maskOf(in.w)
			regs[in.dst] = b2i(uint64(regs[in.a])&mk <= uint64(regs[in.b])&mk)
			pc++
		case opUgt:
			mk := maskOf(in.w)
			regs[in.dst] = b2i(uint64(regs[in.a])&mk > uint64(regs[in.b])&mk)
			pc++
		case opUge:
			mk := maskOf(in.w)
			regs[in.dst] = b2i(uint64(regs[in.a])&mk >= uint64(regs[in.b])&mk)
			pc++

		case opSelect:
			if regs[in.a] != 0 {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.c]
			}
			pc++
		case opAlloca:
			n := int(in.imm)
			if m.cells+n > m.lim.MaxCells {
				return 0, interp.ErrMemLimit
			}
			m.objs = append(m.objs, object{cells: make([]int64, n)})
			m.cells += n
			regs[in.dst] = int64(len(m.objs)) << offBits
			pc++
		case opLoad:
			p := regs[in.a]
			obj, off := int(p>>offBits)-1, p&offMask
			if obj < 0 || obj >= len(m.objs) || off >= int64(len(m.objs[obj].cells)) {
				return 0, oob(obj, off)
			}
			regs[in.dst] = trunc(m.objs[obj].cells[off], in.w)
			pc++
		case opStore:
			p := regs[in.b]
			obj, off := int(p>>offBits)-1, p&offMask
			if obj < 0 || obj >= len(m.objs) || off >= int64(len(m.objs[obj].cells)) {
				return 0, oob(obj, off)
			}
			m.objs[obj].cells[off] = regs[in.a]
			pc++
		case opGEP:
			p := regs[in.a]
			regs[in.dst] = p>>offBits<<offBits | (p+regs[in.b])&offMask
			pc++
		case opMemset:
			p, v, n := regs[in.a], regs[in.b], regs[in.c]
			obj, off := int(p>>offBits)-1, p&offMask
			m.mset += n
			// One step per written cell, no step-limit check inside the
			// loop, per-cell bounds with 28-bit offset wrap — exactly the
			// interpreter's store(encodePtr(obj, off+i), v) loop.
			for i := int64(0); i < n; i++ {
				m.steps++
				eff := (off + i) & offMask
				if obj < 0 || obj >= len(m.objs) || eff >= int64(len(m.objs[obj].cells)) {
					return 0, oob(obj, eff)
				}
				m.objs[obj].cells[eff] = v
			}
			pc++

		case opTrunc, opSExt:
			regs[in.dst] = trunc(regs[in.a], in.w)
			pc++
		case opZExt:
			regs[in.dst] = int64(uint64(regs[in.a]) & maskOf(in.w))
			pc++
		case opCopy:
			regs[in.dst] = regs[in.a]
			pc++

		case opCall:
			cd := &fc.calls[in.a]
			child := &m.p.funcs[cd.fn]
			childBase := base + fc.numRegs
			if need := childBase + child.numRegs; need > len(m.regs) {
				m.regs = append(m.regs, make([]int64, need-len(m.regs))...)
			}
			for i, r := range cd.args {
				m.regs[childBase+i] = regs[r]
			}
			rv, err := m.exec(child, childBase, depth+1)
			if err != nil {
				return 0, err
			}
			if in.dst >= 0 {
				regs[in.dst] = rv
			}
			pc++
		case opPrint:
			m.trace = append(m.trace, regs[in.a])
			pc++
		case opRet:
			if in.a < 0 {
				return 0, nil
			}
			return regs[in.a], nil

		case opJmp:
			pc = int(in.a)
		case opBr:
			if regs[in.a] != 0 {
				pc = int(in.b)
			} else {
				pc = int(in.c)
			}
		case opSwitch:
			v := regs[in.a]
			sd := &fc.switches[in.b]
			pc = int(sd.deflt)
			for i, cv := range sd.cases {
				if cv == v {
					pc = int(sd.targets[i])
					break
				}
			}
		case opUnreachable:
			return 0, interp.ErrUnreach
		default:
			return 0, fmt.Errorf("vm: invalid opcode %d at %s+%d", in.op, fc.name, pc)
		}
	}
}
