package nn

import (
	"encoding/json"
	"fmt"
)

// mlpJSON is the stable on-disk form of an MLP.
type mlpJSON struct {
	Sizes []int       `json:"sizes"`
	Act   Activation  `json:"act"`
	W     [][]float64 `json:"w"`
	B     [][]float64 `json:"b"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	return json.Marshal(mlpJSON{Sizes: m.Sizes, Act: m.Act, W: m.W, B: m.B})
}

// UnmarshalJSON implements json.Unmarshaler, validating shape consistency.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var raw mlpJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Sizes) < 2 {
		return fmt.Errorf("nn: network needs at least 2 layer sizes")
	}
	if len(raw.W) != len(raw.Sizes)-1 || len(raw.B) != len(raw.Sizes)-1 {
		return fmt.Errorf("nn: layer count mismatch")
	}
	for l := 0; l+1 < len(raw.Sizes); l++ {
		if len(raw.W[l]) != raw.Sizes[l]*raw.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d weight shape mismatch", l)
		}
		if len(raw.B[l]) != raw.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d bias shape mismatch", l)
		}
	}
	m.Sizes = raw.Sizes
	m.Act = raw.Act
	m.W = raw.W
	m.B = raw.B
	return nil
}
