package nn

import (
	"math"
	"math/rand"
)

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	p := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		p[i] = e
		sum += e
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// LogSoftmax returns log probabilities.
func LogSoftmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxv)
	}
	lse := maxv + math.Log(sum)
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = v - lse
	}
	return out
}

// SampleCategorical draws an index from the distribution given by probs.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	var c float64
	for i, p := range probs {
		c += p
		if u < c {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the maximum element.
func Argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Entropy computes the Shannon entropy of a probability vector.
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 1e-12 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// CategoricalGrad returns dL/dlogits for L = -coef*logp[action] (policy
// gradient through a softmax): grad = coef * (softmax - onehot(action)).
func CategoricalGrad(logits []float64, action int, coef float64) []float64 {
	p := Softmax(logits)
	g := make([]float64, len(p))
	for i := range p {
		g[i] = coef * p[i]
	}
	g[action] -= coef
	return g
}

// EntropyGrad returns dH/dlogits for the softmax entropy H (ascending):
// dH/dlogit_i = -p_i * (log p_i + H)... negated by the caller as needed.
func EntropyGrad(logits []float64) []float64 {
	p := Softmax(logits)
	h := Entropy(p)
	g := make([]float64, len(p))
	for i := range p {
		lp := math.Log(math.Max(p[i], 1e-12))
		g[i] = -p[i] * (lp + h)
	}
	return g
}
