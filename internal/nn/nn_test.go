package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGradientCheck verifies backprop against finite differences for a
// scalar loss L = sum(y) on a two-hidden-layer net.
func TestGradientCheck(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh} {
		rng := rand.New(rand.NewSource(1))
		m := NewMLP(rng, act, 5, 7, 6, 3)
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		gradOut := []float64{1, 1, 1}
		g := m.NewGrads()
		m.Backward(x, gradOut, g)

		loss := func() float64 {
			y := m.Forward(x)
			var s float64
			for _, v := range y {
				s += v
			}
			return s
		}
		const eps = 1e-6
		checked := 0
		for l := range m.W {
			for i := 0; i < len(m.W[l]); i += 7 {
				old := m.W[l][i]
				m.W[l][i] = old + eps
				lp := loss()
				m.W[l][i] = old - eps
				lm := loss()
				m.W[l][i] = old
				num := (lp - lm) / (2 * eps)
				if math.Abs(num-g.W[l][i]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("act=%v layer %d w[%d]: analytic %g numeric %g", act, l, i, g.W[l][i], num)
				}
				checked++
			}
		}
		if checked < 10 {
			t.Fatal("gradient check covered too few weights")
		}
	}
}

func TestGradientCheckInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, Tanh, 4, 8, 2)
	x := []float64{0.3, -0.2, 0.9, 0.05}
	g := m.NewGrads()
	dx := m.Backward(x, []float64{1, 1}, g)
	const eps = 1e-6
	for i := range x {
		old := x[i]
		x[i] = old + eps
		yp := m.Forward(x)
		x[i] = old - eps
		ym := m.Forward(x)
		x[i] = old
		num := (yp[0] + yp[1] - ym[0] - ym[1]) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %g numeric %g", i, dx[i], num)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			logits = append(logits, math.Mod(v, 50))
		}
		p := Softmax(logits)
		var sum float64
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		lp := LogSoftmax(logits)
		for i := range p {
			if p[i] > 1e-12 && math.Abs(math.Exp(lp[i])-p[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalGradDirection(t *testing.T) {
	// Descending the policy-gradient loss for positive coef should raise
	// the chosen action's probability... with coef = -advantage; check the
	// finite-difference consistency instead: L = -coef*logp[a].
	logits := []float64{0.1, -0.5, 1.2}
	a := 1
	coef := 0.7
	g := CategoricalGrad(logits, a, coef)
	const eps = 1e-6
	for i := range logits {
		lp := append([]float64(nil), logits...)
		lm := append([]float64(nil), logits...)
		lp[i] += eps
		lm[i] -= eps
		num := (-coef*LogSoftmax(lp)[a] + coef*LogSoftmax(lm)[a]) / (2 * eps)
		if math.Abs(num-g[i]) > 1e-6 {
			t.Fatalf("grad %d: analytic %g numeric %g", i, g[i], num)
		}
	}
}

func TestEntropyGrad(t *testing.T) {
	logits := []float64{0.3, -1.1, 0.8, 0.0}
	g := EntropyGrad(logits)
	const eps = 1e-6
	for i := range logits {
		lp := append([]float64(nil), logits...)
		lm := append([]float64(nil), logits...)
		lp[i] += eps
		lm[i] -= eps
		num := (Entropy(Softmax(lp)) - Entropy(Softmax(lm))) / (2 * eps)
		if math.Abs(num-g[i]) > 1e-6 {
			t.Fatalf("entropy grad %d: analytic %g numeric %g", i, g[i], num)
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, ReLU, 3, 16, 1)
	opt := NewAdam(m, 1e-2)
	target := func(x []float64) float64 { return 2*x[0] - x[1] + 0.5*x[2] }
	loss := func() float64 {
		var s float64
		r := rand.New(rand.NewSource(7))
		for k := 0; k < 32; k++ {
			x := []float64{r.Float64(), r.Float64(), r.Float64()}
			d := m.Forward(x)[0] - target(x)
			s += d * d
		}
		return s / 32
	}
	before := loss()
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 300; step++ {
		g := m.NewGrads()
		for k := 0; k < 32; k++ {
			x := []float64{r.Float64(), r.Float64(), r.Float64()}
			d := m.Forward(x)[0] - target(x)
			m.Backward(x, []float64{2 * d / 32}, g)
		}
		opt.Step(m, g)
	}
	after := loss()
	if after > before/10 {
		t.Fatalf("Adam failed to fit linear target: before=%g after=%g", before, after)
	}
}

func TestSampleCategoricalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := []float64{0.2, 0.5, 0.3}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		a := SampleCategorical(rng, p)
		if a < 0 || a > 2 {
			t.Fatalf("out of range sample %d", a)
		}
		counts[a]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("sampling ignores probabilities: %v", counts)
	}
}

func TestCloneAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, Tanh, 4, 5, 2)
	c := m.Clone()
	eps := make([]float64, m.NumParams())
	for i := range eps {
		eps[i] = 1
	}
	c.AddNoise(eps, 0.01)
	diff := 0.0
	for l := range m.W {
		for i := range m.W[l] {
			diff += math.Abs(c.W[l][i] - m.W[l][i])
		}
	}
	if diff == 0 {
		t.Fatal("AddNoise changed nothing")
	}
	x := []float64{1, 2, 3, 4}
	y0 := m.Forward(x)
	c.CopyFrom(m)
	y1 := c.Forward(x)
	for i := range y0 {
		if y0[i] != y1[i] {
			t.Fatal("CopyFrom did not restore parameters")
		}
	}
}

func TestMLPJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, Tanh, 3, 8, 2)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := m2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -1, 2}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("serialized net computes differently")
		}
	}
	// Shape validation.
	if err := m2.UnmarshalJSON([]byte(`{"sizes":[3,2],"act":0,"w":[[1]],"b":[[1,2]]}`)); err == nil {
		t.Fatal("accepted malformed weights")
	}
}
