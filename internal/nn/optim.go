package nn

import "math"

// Adam is the Adam optimizer over an MLP's parameters.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	mW, vW  [][]float64
	mB, vB  [][]float64
	t       int
	MaxNorm float64 // optional global gradient-norm clip; 0 disables
}

// NewAdam returns an Adam optimizer bound to m's shapes.
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for l := range m.W {
		a.mW = append(a.mW, make([]float64, len(m.W[l])))
		a.vW = append(a.vW, make([]float64, len(m.W[l])))
		a.mB = append(a.mB, make([]float64, len(m.B[l])))
		a.vB = append(a.vB, make([]float64, len(m.B[l])))
	}
	return a
}

// Step applies one Adam update of m against gradients g (descending).
func (a *Adam) Step(m *MLP, g *Grads) {
	if a.MaxNorm > 0 {
		clipGrads(g, a.MaxNorm)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for l := range m.W {
		adamUpdate(m.W[l], g.W[l], a.mW[l], a.vW[l], a, bc1, bc2)
		adamUpdate(m.B[l], g.B[l], a.mB[l], a.vB[l], a, bc1, bc2)
	}
}

func adamUpdate(p, g, mm, vv []float64, a *Adam, bc1, bc2 float64) {
	for i := range p {
		mm[i] = a.Beta1*mm[i] + (1-a.Beta1)*g[i]
		vv[i] = a.Beta2*vv[i] + (1-a.Beta2)*g[i]*g[i]
		mh := mm[i] / bc1
		vh := vv[i] / bc2
		p[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
	}
}

func clipGrads(g *Grads, maxNorm float64) {
	var sq float64
	for l := range g.W {
		for _, v := range g.W[l] {
			sq += v * v
		}
		for _, v := range g.B[l] {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		g.Scale(maxNorm / norm)
	}
}

// SGD applies plain gradient descent (used by the ES meta-update).
type SGD struct{ LR float64 }

// Step applies one SGD update (descending).
func (s SGD) Step(m *MLP, g *Grads) {
	for l := range m.W {
		for i := range m.W[l] {
			m.W[l][i] -= s.LR * g.W[l][i]
		}
		for i := range m.B[l] {
			m.B[l][i] -= s.LR * g.B[l][i]
		}
	}
}
