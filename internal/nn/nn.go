// Package nn is a minimal dense neural-network library with reverse-mode
// gradients and the Adam optimizer — enough to train the paper's 256×256
// fully connected policy and value networks without any external ML
// dependency.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects the nonlinearity between hidden layers.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	}
	return x
}

func (a Activation) deriv(x, y float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return 1
	case Tanh:
		return 1 - y*y
	}
	return 1
}

// MLP is a fully connected network with a linear output layer. Weights are
// stored flat: W[l][o*in+i].
type MLP struct {
	Sizes []int // layer widths, input first, output last
	Act   Activation
	W     [][]float64
	B     [][]float64
}

// NewMLP builds a network with Xavier-uniform initialization from rng.
func NewMLP(rng *rand.Rand, act Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), Act: act}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		limit := math.Sqrt(6.0 / float64(in+out))
		w := make([]float64, in*out)
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// NumLayers returns the number of weight layers.
func (m *MLP) NumLayers() int { return len(m.W) }

// Forward computes the network output for a single input vector.
func (m *MLP) Forward(x []float64) []float64 {
	h := x
	for l := range m.W {
		h = m.layerForward(l, h, l < len(m.W)-1)
	}
	return h
}

func (m *MLP) layerForward(l int, h []float64, activate bool) []float64 {
	in, out := m.Sizes[l], m.Sizes[l+1]
	if len(h) != in {
		panic(fmt.Sprintf("nn: layer %d wants %d inputs, got %d", l, in, len(h)))
	}
	y := make([]float64, out)
	w := m.W[l]
	for o := 0; o < out; o++ {
		s := m.B[l][o]
		row := w[o*in : (o+1)*in]
		for i, v := range h {
			s += row[i] * v
		}
		if activate {
			s = m.Act.apply(s)
		}
		y[o] = s
	}
	return y
}

// Grads accumulates parameter gradients with the same shapes as the MLP.
type Grads struct {
	W [][]float64
	B [][]float64
	N int // samples accumulated
}

// NewGrads allocates a gradient buffer for m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{}
	for l := range m.W {
		g.W = append(g.W, make([]float64, len(m.W[l])))
		g.B = append(g.B, make([]float64, len(m.B[l])))
	}
	return g
}

// Zero clears the buffer.
func (g *Grads) Zero() {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] = 0
		}
		for i := range g.B[l] {
			g.B[l][i] = 0
		}
	}
	g.N = 0
}

// Add accumulates another gradient buffer into g.
func (g *Grads) Add(o *Grads) {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] += o.W[l][i]
		}
		for i := range g.B[l] {
			g.B[l][i] += o.B[l][i]
		}
	}
	g.N += o.N
}

// Scale multiplies all gradients by k.
func (g *Grads) Scale(k float64) {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] *= k
		}
		for i := range g.B[l] {
			g.B[l][i] *= k
		}
	}
}

// Backward runs forward on x, then backpropagates dL/dy (gradOut) through
// the network, accumulating parameter gradients into g and returning
// dL/dx.
func (m *MLP) Backward(x []float64, gradOut []float64, g *Grads) []float64 {
	L := len(m.W)
	// Forward, caching pre-activations and activations.
	acts := make([][]float64, L+1)
	pre := make([][]float64, L)
	acts[0] = x
	for l := 0; l < L; l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		z := make([]float64, out)
		a := make([]float64, out)
		w := m.W[l]
		for o := 0; o < out; o++ {
			s := m.B[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range acts[l] {
				s += row[i] * v
			}
			z[o] = s
			if l < L-1 {
				a[o] = m.Act.apply(s)
			} else {
				a[o] = s
			}
		}
		pre[l] = z
		acts[l+1] = a
	}
	// Backward.
	delta := append([]float64(nil), gradOut...)
	for l := L - 1; l >= 0; l-- {
		in, out := m.Sizes[l], m.Sizes[l+1]
		if l < L-1 {
			for o := 0; o < out; o++ {
				delta[o] *= m.Act.deriv(pre[l][o], acts[l+1][o])
			}
		}
		w := m.W[l]
		gw := g.W[l]
		gb := g.B[l]
		prev := acts[l]
		next := make([]float64, in)
		for o := 0; o < out; o++ {
			d := delta[o]
			gb[o] += d
			row := w[o*in : (o+1)*in]
			grow := gw[o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				grow[i] += d * prev[i]
				next[i] += d * row[i]
			}
		}
		delta = next
	}
	g.N++
	return delta
}

// Clone deep-copies the network (A3C workers snapshot the shared net).
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for l := range m.W {
		c.W = append(c.W, append([]float64(nil), m.W[l]...))
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// CopyFrom overwrites m's parameters with src's.
func (m *MLP) CopyFrom(src *MLP) {
	for l := range m.W {
		copy(m.W[l], src.W[l])
		copy(m.B[l], src.B[l])
	}
}

// NumParams counts trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// AddNoise perturbs parameters in place with sigma-scaled entries of eps
// (used by evolution strategies); eps must have NumParams entries.
func (m *MLP) AddNoise(eps []float64, sigma float64) {
	k := 0
	for l := range m.W {
		for i := range m.W[l] {
			m.W[l][i] += sigma * eps[k]
			k++
		}
		for i := range m.B[l] {
			m.B[l][i] += sigma * eps[k]
			k++
		}
	}
}
