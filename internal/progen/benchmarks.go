package progen

import "autophase/internal/ir"

// BenchmarkNames lists the nine real benchmarks in the paper's order
// (adapted from CHStone and the LegUp examples).
var BenchmarkNames = []string{
	"adpcm", "aes", "blowfish", "dhrystone", "gsm", "matmul", "mpeg2", "qsort", "sha",
}

// Benchmark builds the named benchmark module from scratch.
func Benchmark(name string) *ir.Module {
	switch name {
	case "adpcm":
		return Adpcm()
	case "aes":
		return AES()
	case "blowfish":
		return Blowfish()
	case "dhrystone":
		return Dhrystone()
	case "gsm":
		return GSM()
	case "matmul":
		return MatMul()
	case "mpeg2":
		return MPEG2()
	case "qsort":
		return QSort()
	case "sha":
		return SHA()
	}
	return nil
}

// Benchmarks builds all nine in order.
func Benchmarks() []*ir.Module {
	ms := make([]*ir.Module, len(BenchmarkNames))
	for i, n := range BenchmarkNames {
		ms[i] = Benchmark(n)
	}
	return ms
}

// rom synthesizes deterministic read-only table contents.
func rom(n int, seed int64, mask int64) []int64 {
	v := make([]int64, n)
	x := seed
	for i := range v {
		x = (x*1103515245 + 12345) & 0x7fffffff
		v[i] = x & mask
	}
	return v
}

// Adpcm models the CHStone ADPCM encoder: per-sample delta computation with
// a step-size table lookup and index clamping.
func Adpcm() *ir.Module {
	m := ir.NewModule("adpcm")
	step := m.NewGlobal("stepsize", ir.ArrayOf(ir.I32, 16), []int64{
		16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
	}, true)

	fe := NewFE(m)
	// encode(sample, state) with state packed: low 16 bits valpred, high
	// bits index — kept as two globals instead for simplicity.
	fe.Begin("main", ir.I32)
	fe.Var("valpred", 0)
	fe.Var("index", 0)
	fe.Var("checksum", 0)
	fe.Var("x", 7)
	fe.For("i", 0, 256, 1, func(iv func() ir.Value) {
		// Next pseudo-sample.
		fe.Set("x", fe.And(fe.Add(fe.Mul(fe.V("x"), fe.C(1103)), fe.C(12345)), fe.C(0xffff)))
		sample := fe.Sub(fe.V("x"), fe.C(0x8000))
		diff := fe.Sub(sample, fe.V("valpred"))
		fe.Var("sign", 0)
		fe.Var("d", 0)
		fe.Set("d", diff)
		fe.If(fe.Cmp(ir.CmpSLT, diff, fe.C(0)), func() {
			fe.Set("sign", fe.C(8))
			fe.Set("d", fe.Sub(fe.C(0), diff))
		}, nil)
		st := fe.GetG(step, fe.V("index"))
		// delta = min(7, d*4/step)
		fe.Var("delta", 0)
		fe.Set("delta", fe.Div(fe.Mul(fe.V("d"), fe.C(4)), st))
		fe.If(fe.Cmp(ir.CmpSGT, fe.V("delta"), fe.C(7)), func() {
			fe.Set("delta", fe.C(7))
		}, nil)
		// valpred update: vp += sign? -delta*step/4 : delta*step/4
		upd := fe.Div(fe.Mul(fe.V("delta"), st), fe.C(4))
		fe.If(fe.Cmp(ir.CmpEQ, fe.V("sign"), fe.C(8)), func() {
			fe.Set("valpred", fe.Sub(fe.V("valpred"), upd))
		}, func() {
			fe.Set("valpred", fe.Add(fe.V("valpred"), upd))
		})
		// index adaptation with clamping.
		fe.If(fe.Cmp(ir.CmpSGE, fe.V("delta"), fe.C(4)), func() {
			fe.Set("index", fe.Add(fe.V("index"), fe.C(2)))
		}, func() {
			fe.Set("index", fe.Sub(fe.V("index"), fe.C(1)))
		})
		fe.If(fe.Cmp(ir.CmpSLT, fe.V("index"), fe.C(0)), func() {
			fe.Set("index", fe.C(0))
		}, nil)
		fe.If(fe.Cmp(ir.CmpSGT, fe.V("index"), fe.C(15)), func() {
			fe.Set("index", fe.C(15))
		}, nil)
		fe.Set("checksum", fe.Xor(fe.Add(fe.V("checksum"), fe.V("delta")), fe.V("valpred")))
		_ = iv
	})
	fe.Print(fe.V("checksum"))
	fe.Print(fe.V("valpred"))
	fe.Ret(fe.And(fe.V("checksum"), fe.C(0xff)))
	return m
}

// AES models the CHStone AES core: S-box substitution, row rotation and a
// mix/key-add step over a 16-byte state for 10 rounds.
func AES() *ir.Module {
	m := ir.NewModule("aes")
	sbox := m.NewGlobal("sbox", ir.ArrayOf(ir.I32, 256), rom(256, 99, 0xff), true)

	fe := NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("state", 16)
	fe.Arr("key", 16)
	fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
		fe.Put("state", iv(), fe.And(fe.Mul(iv(), fe.C(37)), fe.C(0xff)))
		fe.Put("key", iv(), fe.And(fe.Add(fe.Mul(iv(), fe.C(91)), fe.C(7)), fe.C(0xff)))
	})
	fe.For("round", 0, 10, 1, func(rv func() ir.Value) {
		// SubBytes.
		fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
			fe.Put("state", iv(), fe.GetG(sbox, fe.Get("state", iv())))
		})
		// ShiftRows: rotate row r left by r (4x4 column-major layout).
		fe.Arr("tmp", 16)
		fe.For("r", 0, 4, 1, func(rr func() ir.Value) {
			fe.For("c", 0, 4, 1, func(cc func() ir.Value) {
				src := fe.Add(rr(), fe.Mul(fe.And(fe.Add(cc(), rr()), fe.C(3)), fe.C(4)))
				dst := fe.Add(rr(), fe.Mul(cc(), fe.C(4)))
				fe.Put("tmp", dst, fe.Get("state", src))
			})
		})
		// MixColumns-ish xor mixing + AddRoundKey.
		fe.For("c", 0, 4, 1, func(cc func() ir.Value) {
			base := fe.Mul(cc(), fe.C(4))
			a0 := fe.Get("tmp", base)
			a1 := fe.Get("tmp", fe.Add(base, fe.C(1)))
			a2 := fe.Get("tmp", fe.Add(base, fe.C(2)))
			a3 := fe.Get("tmp", fe.Add(base, fe.C(3)))
			mix := fe.Xor(fe.Xor(a0, a1), fe.Xor(a2, a3))
			fe.For("r", 0, 4, 1, func(rr func() ir.Value) {
				i := fe.Add(base, rr())
				v := fe.Xor(fe.Get("tmp", i), mix)
				v = fe.Xor(v, fe.Get("key", i))
				v = fe.And(fe.Add(v, rv()), fe.C(0xff))
				fe.Put("state", i, v)
			})
		})
		// Key schedule step.
		fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
			nk := fe.Xor(fe.Get("key", iv()), fe.GetG(sbox, fe.Get("key", fe.And(fe.Add(iv(), fe.C(1)), fe.C(15)))))
			fe.Put("key", iv(), fe.And(nk, fe.C(0xff)))
		})
	})
	fe.Var("checksum", 0)
	fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
		fe.Set("checksum", fe.Xor(fe.Add(fe.Shl(fe.V("checksum"), fe.C(1)), fe.Get("state", iv())), fe.V("checksum")))
	})
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.And(fe.V("checksum"), fe.C(0x7fffffff)))
	return m
}

// Blowfish models the CHStone blowfish core: a 16-round Feistel network
// whose round function does S-box lookups.
func Blowfish() *ir.Module {
	m := ir.NewModule("blowfish")
	parr := m.NewGlobal("P", ir.ArrayOf(ir.I32, 18), rom(18, 1234, 0xffffff), true)
	s0 := m.NewGlobal("S0", ir.ArrayOf(ir.I32, 64), rom(64, 7, 0xffffff), true)
	s1 := m.NewGlobal("S1", ir.ArrayOf(ir.I32, 64), rom(64, 8, 0xffffff), true)

	fe := NewFE(m)
	ff := fe.Begin("F", ir.I32, "x")
	{
		a := fe.And(fe.Shr(fe.V("x"), fe.C(8)), fe.C(63))
		b := fe.And(fe.V("x"), fe.C(63))
		fe.Ret(fe.And(fe.Add(fe.GetG(s0, a), fe.Xor(fe.GetG(s1, b), fe.V("x"))), fe.C(0xffffff)))
	}

	fe.Begin("main", ir.I32)
	fe.Var("checksum", 0)
	fe.For("blk", 0, 24, 1, func(bv func() ir.Value) {
		fe.Var("L", 0)
		fe.Var("R", 0)
		fe.Set("L", fe.And(fe.Mul(bv(), fe.C(0x9e37)), fe.C(0xffffff)))
		fe.Set("R", fe.And(fe.Mul(bv(), fe.C(0x7f4a)), fe.C(0xffffff)))
		fe.For("round", 0, 16, 1, func(rv func() ir.Value) {
			fe.Set("L", fe.Xor(fe.V("L"), fe.GetG(parr, rv())))
			fe.Set("R", fe.Xor(fe.V("R"), fe.Call(ff, fe.V("L"))))
			// swap
			fe.Var("t", 0)
			fe.Set("t", fe.V("L"))
			fe.Set("L", fe.V("R"))
			fe.Set("R", fe.V("t"))
		})
		fe.Set("L", fe.Xor(fe.V("L"), fe.GetG(parr, fe.C(16))))
		fe.Set("R", fe.Xor(fe.V("R"), fe.GetG(parr, fe.C(17))))
		fe.Set("checksum", fe.And(fe.Add(fe.V("checksum"), fe.Xor(fe.V("L"), fe.V("R"))), fe.C(0x7fffffff)))
	})
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.V("checksum"))
	return m
}

// Dhrystone models the classic integer benchmark: small procedures called
// in a measurement loop with branchy record/array manipulation.
func Dhrystone() *ir.Module {
	m := ir.NewModule("dhrystone")
	fe := NewFE(m)

	p7 := fe.Begin("Proc7", ir.I32, "a", "b")
	{
		fe.Ret(fe.Add(fe.Add(fe.V("a"), fe.C(2)), fe.V("b")))
	}
	p8base := fe.Begin("Func1", ir.I32, "c1", "c2")
	{
		fe.If(fe.Cmp(ir.CmpEQ, fe.V("c1"), fe.V("c2")), func() {
			fe.Ret(fe.C(0))
		}, nil)
		fe.Ret(fe.C(1))
	}

	fe.Begin("main", ir.I32)
	fe.Arr("arr1", 32)
	fe.Arr("arr2", 32)
	fe.Var("int1", 0)
	fe.Var("int2", 0)
	fe.Var("int3", 0)
	fe.Var("checksum", 0)
	fe.For("run", 0, 64, 1, func(rv func() ir.Value) {
		fe.Set("int1", fe.C(2))
		fe.Set("int2", fe.Add(fe.C(3), fe.V("int1")))
		fe.Set("int3", fe.Call(p7, fe.V("int1"), fe.V("int2")))
		// Proc8-like array work.
		idx := fe.And(rv(), fe.C(31))
		fe.Put("arr1", idx, fe.V("int3"))
		fe.Put("arr1", fe.And(fe.Add(idx, fe.C(1)), fe.C(31)), fe.Add(fe.V("int3"), fe.C(1)))
		fe.For("i", 0, 8, 1, func(iv func() ir.Value) {
			j := fe.And(fe.Add(idx, iv()), fe.C(31))
			fe.Put("arr2", j, fe.Add(fe.Get("arr1", idx), iv()))
		})
		fe.If(fe.Cmp(ir.CmpEQ, fe.Call(p8base, fe.V("int1"), fe.V("int2")), fe.C(1)), func() {
			fe.Set("checksum", fe.Add(fe.V("checksum"), fe.Get("arr2", idx)))
		}, func() {
			fe.Set("checksum", fe.Sub(fe.V("checksum"), fe.C(1)))
		})
		// String-compare-like loop.
		fe.Var("eq", 1)
		fe.For("k", 0, 16, 1, func(kv func() ir.Value) {
			a := fe.And(fe.Add(kv(), rv()), fe.C(31))
			fe.If(fe.Cmp(ir.CmpNE, fe.Get("arr1", fe.And(a, fe.C(31))), fe.Get("arr2", fe.And(a, fe.C(31)))), func() {
				fe.Set("eq", fe.C(0))
			}, nil)
		})
		fe.Set("checksum", fe.Add(fe.V("checksum"), fe.V("eq")))
	})
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.And(fe.V("checksum"), fe.C(0xffff)))
	return m
}

// GSM models the GSM LTP (long-term predictor): a cross-correlation search
// for the best lag — multiply-heavy nested loops with a running maximum.
func GSM() *ir.Module {
	m := ir.NewModule("gsm")
	fe := NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("d", 160)
	fe.Var("x", 3)
	fe.For("i", 0, 160, 1, func(iv func() ir.Value) {
		fe.Set("x", fe.And(fe.Add(fe.Mul(fe.V("x"), fe.C(75)), fe.C(74)), fe.C(0x3fff)))
		fe.Put("d", iv(), fe.Sub(fe.V("x"), fe.C(0x2000)))
	})
	fe.Var("bestGain", -1)
	fe.Var("bestLag", 40)
	fe.For("lambda", 40, 120, 1, func(lv func() ir.Value) {
		fe.Var("gain", 0)
		fe.For("k", 0, 40, 1, func(kv func() ir.Value) {
			a := fe.Get("d", fe.Add(kv(), fe.C(120)))
			b := fe.Get("d", fe.Sub(fe.Add(kv(), fe.C(120)), lv()))
			fe.Set("gain", fe.Add(fe.V("gain"), fe.Sar(fe.Mul(a, b), fe.C(6))))
		})
		fe.If(fe.Cmp(ir.CmpSGT, fe.V("gain"), fe.V("bestGain")), func() {
			fe.Set("bestGain", fe.V("gain"))
			fe.Set("bestLag", lv())
		}, nil)
	})
	fe.Print(fe.V("bestGain"))
	fe.Print(fe.V("bestLag"))
	fe.Ret(fe.And(fe.Add(fe.V("bestGain"), fe.V("bestLag")), fe.C(0x7fffffff)))
	return m
}

// MatMul is the dense matrix multiply example from the LegUp suite.
func MatMul() *ir.Module {
	m := ir.NewModule("matmul")
	const n = 12
	fe := NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("A", n*n)
	fe.Arr("B", n*n)
	fe.Arr("C", n*n)
	fe.For("i", 0, n*n, 1, func(iv func() ir.Value) {
		fe.Put("A", iv(), fe.And(fe.Mul(iv(), fe.C(13)), fe.C(0xff)))
		fe.Put("B", iv(), fe.And(fe.Mul(iv(), fe.C(29)), fe.C(0xff)))
		fe.Put("C", iv(), fe.C(0))
	})
	fe.For("i", 0, n, 1, func(iv func() ir.Value) {
		fe.For("j", 0, n, 1, func(jv func() ir.Value) {
			fe.Var("sum", 0)
			fe.For("k", 0, n, 1, func(kv func() ir.Value) {
				a := fe.Get("A", fe.Add(fe.Mul(iv(), fe.C(n)), kv()))
				b := fe.Get("B", fe.Add(fe.Mul(kv(), fe.C(n)), jv()))
				fe.Set("sum", fe.Add(fe.V("sum"), fe.Mul(a, b)))
			})
			fe.Put("C", fe.Add(fe.Mul(iv(), fe.C(n)), jv()), fe.V("sum"))
		})
	})
	fe.Var("checksum", 0)
	fe.For("i", 0, n*n, 1, func(iv func() ir.Value) {
		fe.Set("checksum", fe.Xor(fe.Add(fe.V("checksum"), fe.Get("C", iv())), fe.C(0x5a5a)))
	})
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.And(fe.V("checksum"), fe.C(0x7fffffff)))
	return m
}

// MPEG2 models the mpeg2 motion/IDCT kernels: a row/column butterfly
// transform over an 8x8 block followed by a SAD loop.
func MPEG2() *ir.Module {
	m := ir.NewModule("mpeg2")
	fe := NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("blk", 64)
	fe.Arr("ref", 64)
	fe.For("i", 0, 64, 1, func(iv func() ir.Value) {
		fe.Put("blk", iv(), fe.Sub(fe.And(fe.Mul(iv(), fe.C(31)), fe.C(0xff)), fe.C(128)))
		fe.Put("ref", iv(), fe.Sub(fe.And(fe.Mul(iv(), fe.C(17)), fe.C(0xff)), fe.C(128)))
	})
	// Row butterflies.
	fe.For("r", 0, 8, 1, func(rv func() ir.Value) {
		base := fe.Mul(rv(), fe.C(8))
		fe.For("k", 0, 4, 1, func(kv func() ir.Value) {
			i0 := fe.Add(base, kv())
			i1 := fe.Add(base, fe.Sub(fe.C(7), kv()))
			a := fe.Get("blk", i0)
			b := fe.Get("blk", i1)
			fe.Put("blk", i0, fe.Sar(fe.Add(a, b), fe.C(1)))
			fe.Put("blk", i1, fe.Sar(fe.Sub(a, b), fe.C(1)))
		})
	})
	// Column butterflies.
	fe.For("c", 0, 8, 1, func(cv func() ir.Value) {
		fe.For("k", 0, 4, 1, func(kv func() ir.Value) {
			i0 := fe.Add(cv(), fe.Mul(kv(), fe.C(8)))
			i1 := fe.Add(cv(), fe.Mul(fe.Sub(fe.C(7), kv()), fe.C(8)))
			a := fe.Get("blk", i0)
			b := fe.Get("blk", i1)
			fe.Put("blk", i0, fe.Add(a, b))
			fe.Put("blk", i1, fe.Sub(a, b))
		})
	})
	// SAD over the transformed block vs the reference.
	fe.Var("sad", 0)
	fe.For("i", 0, 64, 1, func(iv func() ir.Value) {
		d := fe.Sub(fe.Get("blk", iv()), fe.Get("ref", iv()))
		neg := fe.Sub(fe.C(0), d)
		abs := fe.B.Select(fe.Cmp(ir.CmpSLT, d, fe.C(0)), neg, d)
		fe.Set("sad", fe.Add(fe.V("sad"), abs))
	})
	fe.Print(fe.V("sad"))
	fe.Ret(fe.And(fe.V("sad"), fe.C(0x7fffffff)))
	return m
}

// QSort is the recursive quicksort from the LegUp examples, exercising the
// call-heavy path (inlining, tail calls).
func QSort() *ir.Module {
	m := ir.NewModule("qsort")
	g := m.NewGlobal("data", ir.ArrayOf(ir.I32, 128), rom(128, 42, 0xffff), false)

	fe := NewFE(m)
	qs := fe.Begin("quicksort", ir.Void, "lo", "hi")
	{
		fe.If(fe.Cmp(ir.CmpSGE, fe.V("lo"), fe.V("hi")), func() {
			fe.Ret(nil)
		}, nil)
		fe.Var("pivot", 0)
		fe.Set("pivot", fe.GetG(g, fe.V("hi")))
		fe.Var("i", 0)
		fe.Set("i", fe.Sub(fe.V("lo"), fe.C(1)))
		fe.Var("j", 0)
		fe.Set("j", fe.V("lo"))
		fe.While(func() ir.Value {
			return fe.Cmp(ir.CmpSLT, fe.V("j"), fe.V("hi"))
		}, func() {
			fe.If(fe.Cmp(ir.CmpSLE, fe.GetG(g, fe.V("j")), fe.V("pivot")), func() {
				fe.Set("i", fe.Add(fe.V("i"), fe.C(1)))
				fe.Var("t", 0)
				fe.Set("t", fe.GetG(g, fe.V("i")))
				fe.PutG(g, fe.V("i"), fe.GetG(g, fe.V("j")))
				fe.PutG(g, fe.V("j"), fe.V("t"))
			}, nil)
			fe.Set("j", fe.Add(fe.V("j"), fe.C(1)))
		})
		p := fe.Add(fe.V("i"), fe.C(1))
		fe.Var("t2", 0)
		fe.Set("t2", fe.GetG(g, p))
		fe.PutG(g, p, fe.GetG(g, fe.V("hi")))
		fe.PutG(g, fe.V("hi"), fe.V("t2"))
		fe.Call(fe.F.Module().Func("quicksort"), fe.V("lo"), fe.Sub(p, fe.C(1)))
		fe.Call(fe.F.Module().Func("quicksort"), fe.Add(p, fe.C(1)), fe.V("hi"))
		fe.Ret(nil)
	}
	_ = qs

	fe.Begin("main", ir.I32)
	fe.Call(m.Func("quicksort"), fe.C(0), fe.C(127))
	fe.Var("checksum", 0)
	fe.Var("sorted", 1)
	fe.For("i", 0, 127, 1, func(iv func() ir.Value) {
		fe.If(fe.Cmp(ir.CmpSGT, fe.GetG(g, iv()), fe.GetG(g, fe.Add(iv(), fe.C(1)))), func() {
			fe.Set("sorted", fe.C(0))
		}, nil)
		fe.Set("checksum", fe.Add(fe.V("checksum"), fe.Mul(fe.GetG(g, iv()), iv())))
	})
	fe.Print(fe.V("sorted"))
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.V("sorted"))
	return m
}

// CallHeavy is a three-level call-chain stress benchmark for the
// interprocedural static profiler: main calls mix per iteration, mix calls
// lookup twice, lookup calls hash — every body branch-free, every trip
// count static, so the whole program is decidable without the interpreter.
// It is deliberately NOT in BenchmarkNames: the paper's nine benchmarks
// stay the evaluation set, and this one exists for profiler tests and
// examples/callheavy.ir (kept in sync by a progen test).
func CallHeavy() *ir.Module {
	m := ir.NewModule("callheavy")
	tab := m.NewGlobal("tab", ir.ArrayOf(ir.I32, 64), rom(64, 5, 0xffff), true)

	fe := NewFE(m)
	hash := fe.Begin("hash", ir.I32, "x")
	{
		v := fe.And(fe.Mul(fe.V("x"), fe.C(0x9e37)), fe.C(0xffff))
		fe.Ret(fe.Xor(v, fe.Shr(v, fe.C(7))))
	}
	lookup := fe.Begin("lookup", ir.I32, "x")
	{
		idx := fe.And(fe.Call(hash, fe.V("x")), fe.C(63))
		fe.Ret(fe.GetG(tab, idx))
	}
	mix := fe.Begin("mix", ir.I32, "a", "b")
	{
		l := fe.Call(lookup, fe.V("a"))
		r := fe.Call(lookup, fe.V("b"))
		fe.Ret(fe.And(fe.Add(l, fe.Xor(r, fe.V("a"))), fe.C(0xffffff)))
	}

	fe.Begin("main", ir.I32)
	fe.Var("acc", 1)
	fe.For("i", 0, 96, 1, func(iv func() ir.Value) {
		fe.Set("acc", fe.Call(mix, fe.V("acc"), iv()))
	})
	fe.Print(fe.V("acc"))
	fe.Ret(fe.V("acc"))
	return m
}

// SHA models the CHStone SHA-1 transform: message-schedule expansion with
// rotations and an 80-round compression with a per-20-round function switch.
func SHA() *ir.Module {
	m := ir.NewModule("sha")
	fe := NewFE(m)

	rotl := fe.Begin("rotl", ir.I32, "x", "n")
	{
		l := fe.Shl(fe.V("x"), fe.V("n"))
		r := fe.Shr(fe.And(fe.V("x"), fe.C(0xffffffff)), fe.Sub(fe.C(32), fe.V("n")))
		fe.Ret(fe.And(fe.Or(l, r), fe.C(0xffffffff)))
	}

	fe.Begin("main", ir.I32)
	fe.Arr("W", 80)
	fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
		fe.Put("W", iv(), fe.And(fe.Mul(fe.Add(iv(), fe.C(1)), fe.C(0x9e3779b1)), fe.C(0xffffffff)))
	})
	fe.For("t", 16, 80, 1, func(tv func() ir.Value) {
		w := fe.Xor(fe.Xor(fe.Get("W", fe.Sub(tv(), fe.C(3))), fe.Get("W", fe.Sub(tv(), fe.C(8)))),
			fe.Xor(fe.Get("W", fe.Sub(tv(), fe.C(14))), fe.Get("W", fe.Sub(tv(), fe.C(16)))))
		fe.Put("W", tv(), fe.Call(rotl, w, fe.C(1)))
	})
	fe.Var("a", 0x67452301)
	fe.Var("b", 0x7fffffff)
	fe.Var("c", 0x12345678)
	fe.Var("d", 0x10325476)
	fe.Var("e", 0x3c2d1e0f)
	fe.For("t", 0, 80, 1, func(tv func() ir.Value) {
		fe.Var("f", 0)
		fe.Var("k", 0)
		q := fe.Div(tv(), fe.C(20))
		fe.Switch(q, []int64{0, 1, 2}, []func(){
			func() {
				fe.Set("f", fe.Or(fe.And(fe.V("b"), fe.V("c")), fe.And(fe.Xor(fe.V("b"), fe.C(-1)), fe.V("d"))))
				fe.Set("k", fe.C(0x5a827999))
			},
			func() {
				fe.Set("f", fe.Xor(fe.Xor(fe.V("b"), fe.V("c")), fe.V("d")))
				fe.Set("k", fe.C(0x6ed9eba1))
			},
			func() {
				fe.Set("f", fe.Or(fe.And(fe.V("b"), fe.V("c")), fe.Or(fe.And(fe.V("b"), fe.V("d")), fe.And(fe.V("c"), fe.V("d")))))
				fe.Set("k", fe.C(0x8f1bbcdc))
			},
		}, func() {
			fe.Set("f", fe.Xor(fe.Xor(fe.V("b"), fe.V("c")), fe.V("d")))
			fe.Set("k", fe.C(0xca62c1d6))
		})
		tmp := fe.And(fe.Add(fe.Add(fe.Call(rotl, fe.V("a"), fe.C(5)), fe.V("f")),
			fe.Add(fe.Add(fe.V("e"), fe.V("k")), fe.Get("W", tv()))), fe.C(0xffffffff))
		fe.Set("e", fe.V("d"))
		fe.Set("d", fe.V("c"))
		fe.Set("c", fe.Call(rotl, fe.V("b"), fe.C(30)))
		fe.Set("b", fe.V("a"))
		fe.Set("a", tmp)
	})
	sum := fe.Xor(fe.Xor(fe.V("a"), fe.V("b")), fe.Xor(fe.V("c"), fe.Xor(fe.V("d"), fe.V("e"))))
	fe.Print(sum)
	fe.Ret(fe.And(sum, fe.C(0x7fffffff)))
	return m
}
