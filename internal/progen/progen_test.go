package progen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
)

func TestBenchmarksVerifyAndRun(t *testing.T) {
	for _, name := range BenchmarkNames {
		name := name
		t.Run(name, func(t *testing.T) {
			m := Benchmark(name)
			if m == nil {
				t.Fatalf("Benchmark(%q) returned nil", name)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res, err := interp.Run(m, interp.DefaultLimits)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Trace) == 0 {
				t.Fatalf("benchmark prints nothing; not observable")
			}
			rep, err := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp}).Profile(m)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if rep.Cycles <= 0 {
				t.Fatalf("non-positive cycle estimate %d", rep.Cycles)
			}
			t.Logf("%s: cycles=%d steps=%d exit=%d trace=%v",
				name, rep.Cycles, rep.Steps, res.Exit, res.Trace)
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range BenchmarkNames {
		a, _ := interp.Run(Benchmark(name), interp.DefaultLimits)
		b, _ := interp.Run(Benchmark(name), interp.DefaultLimits)
		if a.Exit != b.Exit || len(a.Trace) != len(b.Trace) {
			t.Fatalf("%s: nondeterministic result", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Generate(seed, DefaultGen)
		b := Generate(seed, DefaultGen)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}

func TestGenerateFilteredRuns(t *testing.T) {
	seed := int64(100)
	for i := 0; i < 10; i++ {
		m, used := GenerateFiltered(seed, DefaultGen)
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", used, err)
		}
		res, err := interp.Run(m, interp.DefaultLimits)
		if err != nil {
			t.Fatalf("seed %d: run: %v", used, err)
		}
		if len(res.Trace) == 0 {
			t.Errorf("seed %d: no observable output", used)
		}
		seed = used + 1
	}
}

func TestGeneratedProgramsAreO0Shaped(t *testing.T) {
	m, _ := GenerateFiltered(1, DefaultGen)
	// Every local must be an alloca in main's entry block; at least a few
	// loads should exist (the -O0 shape mem2reg exists to clean up).
	main := m.Func("main")
	if main == nil {
		t.Fatal("no main")
	}
	allocas, loads := 0, 0
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.Op.String() {
			case "alloca":
				allocas++
			case "load":
				loads++
			}
		}
	}
	if allocas < 2 || loads < 5 {
		t.Fatalf("generated main does not look like -O0 output: %d allocas, %d loads", allocas, loads)
	}
}

// TestGeneratedProgramsSafety: every generated program must execute without
// traps and within limits across many seeds — the safety contract the
// speculative passes (licm's load hoisting) rely on.
func TestGeneratedProgramsSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("many seeds")
	}
	bad := 0
	for seed := int64(2000); seed < 2060; seed++ {
		m := Generate(seed, DefaultGen)
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		if _, err := interp.Run(m, interp.DefaultLimits); err != nil {
			// Programs may exceed limits (filtered later) but must never
			// trap on memory or division.
			if errors.Is(err, interp.ErrDivByZero) || errors.Is(err, interp.ErrOOB) {
				t.Fatalf("seed %d: unsafe program: %v", seed, err)
			}
			bad++
		}
	}
	if bad > 20 {
		t.Fatalf("%d/60 programs exceeded limits; generator too aggressive", bad)
	}
}

// TestBenchmarkCycleBudgets: benchmarks must be heavy enough that phase
// ordering matters, but light enough for fast iteration.
func TestBenchmarkCycleBudgets(t *testing.T) {
	prof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	for _, name := range BenchmarkNames {
		rep, err := prof.Profile(Benchmark(name))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles < 1000 {
			t.Errorf("%s: only %d cycles; too small to optimize meaningfully", name, rep.Cycles)
		}
		if rep.Cycles > 1_000_000 {
			t.Errorf("%s: %d cycles; too slow for the evaluation loop", name, rep.Cycles)
		}
	}
}

// TestPrintParseRoundTrip round-trips every benchmark and several random
// programs through the textual IR format, requiring stable output and
// identical execution behaviour.
func TestPrintParseRoundTrip(t *testing.T) {
	subjects := map[string]*ir.Module{}
	for _, name := range BenchmarkNames {
		subjects[name] = Benchmark(name)
	}
	seed := int64(4000)
	for i := 0; i < 5; i++ {
		m, used := GenerateFiltered(seed, DefaultGen)
		seed = used + 1
		subjects[m.Name] = m
	}
	for name, m := range subjects {
		s1 := m.String()
		m2, err := ir.Parse(s1)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := m2.Verify(); err != nil {
			t.Fatalf("%s: parsed module fails verify: %v", name, err)
		}
		if s2 := m2.String(); s1 != s2 {
			// Find the first diverging line for a usable failure message.
			l1, l2 := strings.Split(s1, "\n"), strings.Split(s2, "\n")
			for i := range l1 {
				if i >= len(l2) || l1[i] != l2[i] {
					t.Fatalf("%s: round trip diverges at line %d:\n  printed:  %q\n  reparsed: %q",
						name, i+1, l1[i], lineOrEOF(l2, i))
				}
			}
			t.Fatalf("%s: reparsed output longer than original", name)
		}
		r1, err1 := interp.Run(m, interp.DefaultLimits)
		r2, err2 := interp.Run(m2, interp.DefaultLimits)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: execution divergence: %v vs %v", name, err1, err2)
		}
		if err1 == nil && (r1.Exit != r2.Exit || len(r1.Trace) != len(r2.Trace)) {
			t.Fatalf("%s: behaviour divergence after round trip", name)
		}
	}
}

func lineOrEOF(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<EOF>"
}

// TestCallHeavyExampleInSync pins examples/callheavy.ir to the CallHeavy
// builder: the checked-in text must parse to a structurally identical
// module (same fingerprint). Regenerate the file from the builder's
// String() output when the builder changes.
func TestCallHeavyExampleInSync(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "callheavy.ir"))
	if err != nil {
		t.Fatalf("read examples/callheavy.ir: %v", err)
	}
	parsed, err := ir.Parse(string(src))
	if err != nil {
		t.Fatalf("parse examples/callheavy.ir: %v", err)
	}
	if err := parsed.Verify(); err != nil {
		t.Fatalf("verify examples/callheavy.ir: %v", err)
	}
	built := CallHeavy()
	if parsed.Fingerprint() != built.Fingerprint() {
		t.Fatalf("examples/callheavy.ir is out of sync with progen.CallHeavy(); regenerate it from the builder's String() output")
	}
	for _, name := range BenchmarkNames {
		if name == "callheavy" {
			t.Fatal("callheavy must not join BenchmarkNames: the paper's nine benchmarks are the evaluation set")
		}
	}
}
