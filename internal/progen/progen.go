package progen

import (
	"fmt"
	"math/rand"

	"autophase/internal/hls"
	"autophase/internal/ir"
)

// GenConfig bounds the shape of generated programs.
type GenConfig struct {
	MaxStmts    int // statements per block body
	MaxDepth    int // nesting depth of control structures
	MaxLoops    int // loop budget per function (keeps runtimes bounded)
	MaxHelpers  int // helper functions callable from main
	ArraySize   int // power-of-two array length
	MaxTripHint int // loop bounds drawn from [1, MaxTripHint]
}

// DefaultGen mirrors the scale of the paper's CSmith programs after their
// five-minute filter: loopy integer programs of a few hundred instructions.
var DefaultGen = GenConfig{
	MaxStmts:    6,
	MaxDepth:    3,
	MaxLoops:    6,
	MaxHelpers:  3,
	ArraySize:   32,
	MaxTripHint: 24,
}

// Generate builds a random, terminating, trap-free program. The same seed
// always yields the same program.
func Generate(seed int64, cfg GenConfig) *ir.Module {
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
		m:   ir.NewModule(fmt.Sprintf("rand%d", seed)),
	}
	g.fe = NewFE(g.m)
	// A read-only table gives globalopt/constmerge something to chew on.
	g.tab = g.m.NewGlobal("tab", ir.ArrayOf(ir.I32, int64ToInt(int64(cfg.ArraySize))),
		rom(cfg.ArraySize, seed|1, 0xffff), true)

	nh := 1 + g.rng.Intn(cfg.MaxHelpers)
	for i := 0; i < nh; i++ {
		g.genHelper(i)
	}
	g.genMain()
	return g.m
}

func int64ToInt(v int64) int { return int(v) }

type gen struct {
	rng     *rand.Rand
	cfg     GenConfig
	m       *ir.Module
	fe      *FE
	tab     *ir.Global
	helpers []*ir.Func

	scalars []string // declared scalar variable names in current function
	arrays  []string // declared arrays in current function
	loops   int      // loops emitted in current function
	uniq    int
}

func (g *gen) name(prefix string) string {
	g.uniq++
	return fmt.Sprintf("%s%d", prefix, g.uniq)
}

// genHelper emits a small pure-ish helper function of 1–3 parameters.
func (g *gen) genHelper(i int) {
	fe := g.fe
	np := 1 + g.rng.Intn(3)
	params := make([]string, np)
	for j := range params {
		params[j] = fmt.Sprintf("p%d", j)
	}
	f := fe.Begin(fmt.Sprintf("helper%d", i), ir.I32, params...)
	g.scalars = append([]string(nil), params...)
	g.arrays = nil
	g.loops = 0
	for s := 0; s < 1+g.rng.Intn(2); s++ {
		v := g.name("h")
		fe.Var(v, int64(g.rng.Intn(64)))
		g.scalars = append(g.scalars, v)
	}
	g.genStmts(1+g.rng.Intn(g.cfg.MaxStmts), g.cfg.MaxDepth-1)
	fe.Ret(g.expr(2))
	g.helpers = append(g.helpers, f)
}

// genMain emits the main function: declarations, a statement soup, and a
// printed checksum so every computation is observable.
func (g *gen) genMain() {
	fe := g.fe
	fe.Begin("main", ir.I32)
	g.scalars = nil
	g.arrays = nil
	g.loops = 0
	nv := 2 + g.rng.Intn(4)
	for i := 0; i < nv; i++ {
		v := g.name("v")
		fe.Var(v, int64(g.rng.Intn(256)))
		g.scalars = append(g.scalars, v)
	}
	na := 1 + g.rng.Intn(2)
	for i := 0; i < na; i++ {
		a := g.name("arr")
		fe.Arr(a, g.cfg.ArraySize)
		g.arrays = append(g.arrays, a)
		// Initialize so reads are deterministic even without stores.
		fe.For(g.name("ini"), 0, int64(g.cfg.ArraySize), 1, func(iv func() ir.Value) {
			fe.Put(a, iv(), fe.And(fe.Mul(iv(), fe.C(int64(3+g.rng.Intn(61)))), fe.C(0xffff)))
		})
	}
	g.genStmts(2+g.rng.Intn(g.cfg.MaxStmts), g.cfg.MaxDepth)

	// Checksum: print and return a mix of everything live.
	sum := fe.C(0)
	for _, v := range g.scalars {
		sum = fe.Xor(fe.Add(sum, fe.V(v)), fe.Shl(sum, fe.C(1)))
	}
	for _, a := range g.arrays {
		acc := g.name("acc")
		fe.Var(acc, 0)
		fe.For(g.name("chk"), 0, int64(g.cfg.ArraySize), 1, func(iv func() ir.Value) {
			fe.Set(acc, fe.Add(fe.V(acc), fe.Get(a, iv())))
		})
		sum = fe.Xor(sum, fe.V(acc))
	}
	fe.Print(sum)
	fe.Ret(fe.And(sum, fe.C(0x7fffffff)))
}

// idx returns an in-bounds array index expression (masked to the
// power-of-two array size, so every access is safe even if speculated).
func (g *gen) idx() ir.Value {
	return g.fe.And(g.expr(1), g.fe.C(int64(g.cfg.ArraySize-1)))
}

// expr builds a random integer expression of bounded depth from the live
// scalars, array reads, table reads and helper calls.
func (g *gen) expr(depth int) ir.Value {
	fe := g.fe
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fe.C(int64(g.rng.Intn(512) - 128))
		default:
			if len(g.scalars) == 0 {
				return fe.C(int64(g.rng.Intn(64)))
			}
			return fe.V(g.scalars[g.rng.Intn(len(g.scalars))])
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return fe.Add(g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fe.Sub(g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fe.Mul(g.expr(depth-1), g.expr(depth-1))
	case 3:
		// Division by a guaranteed non-zero value: (e | 1).
		return fe.Div(g.expr(depth-1), fe.Or(g.expr(depth-1), fe.C(1)))
	case 4:
		return fe.Rem(g.expr(depth-1), fe.Or(g.expr(depth-1), fe.C(1)))
	case 5:
		return fe.And(g.expr(depth-1), g.expr(depth-1))
	case 6:
		return fe.Or(g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fe.Xor(g.expr(depth-1), g.expr(depth-1))
	case 8:
		return fe.Shl(g.expr(depth-1), fe.C(int64(g.rng.Intn(5))))
	case 9:
		return fe.Sar(g.expr(depth-1), fe.C(int64(g.rng.Intn(5))))
	case 10:
		if len(g.arrays) > 0 {
			return fe.Get(g.arrays[g.rng.Intn(len(g.arrays))], g.idx())
		}
		return fe.GetG(g.tab, g.idx())
	default:
		if len(g.helpers) > 0 && g.rng.Intn(2) == 0 {
			h := g.helpers[g.rng.Intn(len(g.helpers))]
			args := make([]ir.Value, len(h.Params))
			for i := range args {
				args[i] = g.expr(depth - 1)
			}
			return fe.Call(h, args...)
		}
		return fe.GetG(g.tab, g.idx())
	}
}

// cond builds a random i1 condition.
func (g *gen) cond() ir.Value {
	preds := []ir.CmpPred{ir.CmpEQ, ir.CmpNE, ir.CmpSLT, ir.CmpSLE, ir.CmpSGT, ir.CmpSGE}
	return g.fe.Cmp(preds[g.rng.Intn(len(preds))], g.expr(1), g.expr(1))
}

// genStmts emits n random statements at the given remaining nesting depth.
func (g *gen) genStmts(n, depth int) {
	for i := 0; i < n; i++ {
		g.genStmt(depth)
	}
}

func (g *gen) genStmt(depth int) {
	fe := g.fe
	// Weighted statement mix: loops and conditionals dominate real HLS
	// kernels, so they are drawn more often than straight-line assignments.
	choice := [...]int{0, 0, 1, 2, 3, 4, 5, 6, 6, 7, 7, 8, 9, 10}[g.rng.Intn(14)]
	if depth <= 0 && choice >= 6 {
		choice = g.rng.Intn(6)
	}
	switch choice {
	case 0, 1, 2: // assignment
		if len(g.scalars) > 0 {
			fe.Set(g.scalars[g.rng.Intn(len(g.scalars))], g.expr(2))
			return
		}
		fallthrough
	case 3: // array store
		if len(g.arrays) > 0 {
			fe.Put(g.arrays[g.rng.Intn(len(g.arrays))], g.idx(), g.expr(2))
			return
		}
		fe.Set(g.scalars[g.rng.Intn(len(g.scalars))], g.expr(2))
	case 4: // new variable
		v := g.name("t")
		fe.Var(v, int64(g.rng.Intn(128)))
		g.scalars = append(g.scalars, v)
	case 5: // compound assignment through an if-free mix
		if len(g.scalars) > 0 {
			v := g.scalars[g.rng.Intn(len(g.scalars))]
			fe.Set(v, fe.Add(fe.V(v), g.expr(1)))
		}
	case 6: // if / if-else
		var els func()
		if g.rng.Intn(2) == 0 {
			els = func() { g.genStmts(1+g.rng.Intn(2), depth-1) }
		}
		fe.If(g.cond(), func() { g.genStmts(1+g.rng.Intn(2), depth-1) }, els)
	case 7: // counted loop
		if g.loops >= g.cfg.MaxLoops {
			g.genStmt(0)
			return
		}
		g.loops++
		trip := int64(1 + g.rng.Intn(g.cfg.MaxTripHint))
		fe.For(g.name("i"), 0, trip, 1, func(iv func() ir.Value) {
			g.genStmts(1+g.rng.Intn(2), depth-1)
			if len(g.scalars) > 0 && g.rng.Intn(2) == 0 {
				v := g.scalars[g.rng.Intn(len(g.scalars))]
				fe.Set(v, fe.Add(fe.V(v), iv()))
			}
		})
	case 8: // switch
		nv := 2 + g.rng.Intn(3)
		vals := make([]int64, nv)
		cases := make([]func(), nv)
		for i := range vals {
			vals[i] = int64(i)
			cases[i] = func() { g.genStmts(1, depth-1) }
		}
		fe.Switch(fe.And(g.expr(1), fe.C(7)), vals, cases,
			func() { g.genStmts(1, depth-1) })
	case 9: // reduction loop with a helper call (the mag()/norm() idiom)
		if g.loops >= g.cfg.MaxLoops || len(g.helpers) == 0 || len(g.scalars) == 0 {
			g.genStmt(0)
			return
		}
		g.loops++
		h := g.helpers[g.rng.Intn(len(g.helpers))]
		acc := g.scalars[g.rng.Intn(len(g.scalars))]
		// Half the reductions pass a loop-invariant argument (LICM bait,
		// the mag() idiom); the other half genuinely depend on the
		// induction variable so hoisting is not always the answer.
		invariant := g.rng.Intn(2) == 0
		inv := g.expr(1)
		trip := int64(4 + g.rng.Intn(g.cfg.MaxTripHint))
		fe.For(g.name("r"), 0, trip, 1, func(iv func() ir.Value) {
			args := make([]ir.Value, len(h.Params))
			for i := range args {
				if i == 0 && invariant {
					args[i] = inv
				} else {
					args[i] = iv()
				}
			}
			fe.Set(acc, fe.Add(fe.V(acc), fe.Call(h, args...)))
		})
	default: // print (observability points)
		fe.Print(g.expr(2))
	}
}

// GenerateFiltered draws programs from successive seeds until one passes
// the execution filter (terminates within limits), mirroring the paper's
// CSmith filtering step. It returns the module and the seed that produced
// it.
// filterProfiler is the execution filter's engine: pinned to the
// interpreter so the accepted-seed sequence never depends on which backend
// the auto cascade would pick.
var filterProfiler = hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})

func GenerateFiltered(startSeed int64, cfg GenConfig) (*ir.Module, int64) {
	for seed := startSeed; ; seed++ {
		m := Generate(seed, cfg)
		if err := m.Verify(); err != nil {
			continue
		}
		if _, err := filterProfiler.Profile(m); err != nil {
			continue
		}
		return m, seed
	}
}
