// Package progen supplies the programs AutoPhase optimizes: nine hand-built
// benchmarks with the computational skeletons of the paper's CHStone/LegUp
// suite, and a seeded random program generator standing in for CSmith.
//
// Both emit deliberately naive -O0-style IR — every local variable is an
// alloca, every use is a load, loops are in while form — so the transform
// passes have the same work to do that they have on Clang -O0 output.
package progen

import "autophase/internal/ir"

// FE is a tiny C-like frontend: it lowers structured statements into the
// canonical unoptimized IR shape (locals as allocas, while-form loops).
type FE struct {
	M     *ir.Module
	B     *ir.Builder
	F     *ir.Func
	entry *ir.Block
	vars  map[string]*ir.Instr // name -> alloca (scalar or array)
	nblk  int
}

// NewFE returns a frontend for module m.
func NewFE(m *ir.Module) *FE {
	return &FE{M: m, B: ir.NewBuilder()}
}

// Begin starts a function with i32 parameters; parameters are spilled to
// allocas exactly as an unoptimized C compiler would.
func (fe *FE) Begin(name string, ret *ir.Type, params ...string) *ir.Func {
	types := make([]*ir.Type, len(params))
	for i := range params {
		types[i] = ir.I32
	}
	fe.F = fe.M.NewFunc(name, ret, types...)
	fe.vars = make(map[string]*ir.Instr)
	fe.entry = fe.F.NewBlock("entry")
	fe.B.SetInsert(fe.entry)
	for i, pn := range params {
		fe.F.Params[i].Name = pn
		al := fe.allocaInEntry(ir.I32)
		al.Name = pn + ".addr"
		fe.B.Store(fe.F.Params[i], al)
		fe.vars[pn] = al
	}
	return fe.F
}

func (fe *FE) block(name string) *ir.Block {
	fe.nblk++
	return fe.F.NewBlock(name)
}

// brIfOpen branches to dest unless the current block already ended (a body
// closure may have emitted a ret).
func (fe *FE) brIfOpen(dest *ir.Block) {
	if fe.B.Block().Term() == nil {
		fe.B.Br(dest)
	}
}

// allocaInEntry places an alloca at the top of the entry block, exactly as
// Clang does for every C local regardless of scope.
func (fe *FE) allocaInEntry(ty *ir.Type) *ir.Instr {
	elem := ty
	if ty.Kind == ir.ArrayKind {
		elem = ty.Elem
	}
	al := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PointerTo(elem), AllocTy: ty}
	pos := 0
	for pos < len(fe.entry.Instrs) && fe.entry.Instrs[pos].Op == ir.OpAlloca {
		pos++
	}
	if pos == len(fe.entry.Instrs) {
		fe.entry.Append(al)
	} else {
		fe.entry.InsertBefore(al, fe.entry.Instrs[pos])
	}
	return al
}

// Var declares an i32 local initialized to init. The alloca lands in the
// entry block; the initializing store lands at the current position.
func (fe *FE) Var(name string, init int64) {
	al := fe.allocaInEntry(ir.I32)
	al.Name = name
	fe.B.Store(ir.ConstInt(ir.I32, init), al)
	fe.vars[name] = al
}

// Arr declares a local i32 array of n elements (zero initialized cells are
// the interpreter default; explicit stores must initialize what is read).
func (fe *FE) Arr(name string, n int) {
	al := fe.allocaInEntry(ir.ArrayOf(ir.I32, n))
	al.Name = name
	fe.vars[name] = al
}

// Addr returns the alloca of a declared variable.
func (fe *FE) Addr(name string) *ir.Instr { return fe.vars[name] }

// V loads the current value of a scalar variable.
func (fe *FE) V(name string) ir.Value { return fe.B.Load(fe.vars[name]) }

// C is an i32 constant.
func (fe *FE) C(v int64) ir.Value { return ir.ConstInt(ir.I32, v) }

// Set stores v into a scalar variable.
func (fe *FE) Set(name string, v ir.Value) { fe.B.Store(v, fe.vars[name]) }

// Idx returns the address of arr[i].
func (fe *FE) Idx(name string, i ir.Value) ir.Value {
	return fe.B.GEP(fe.vars[name], i)
}

// Get loads arr[i].
func (fe *FE) Get(name string, i ir.Value) ir.Value {
	return fe.B.Load(fe.B.GEP(fe.vars[name], i))
}

// Put stores v into arr[i].
func (fe *FE) Put(name string, i, v ir.Value) {
	fe.B.Store(v, fe.B.GEP(fe.vars[name], i))
}

// GetG loads g[i] from a module global.
func (fe *FE) GetG(g *ir.Global, i ir.Value) ir.Value {
	return fe.B.Load(fe.B.GEP(g, i))
}

// PutG stores v into g[i].
func (fe *FE) PutG(g *ir.Global, i, v ir.Value) {
	fe.B.Store(v, fe.B.GEP(g, i))
}

// Arithmetic and comparison sugar.

// Add emits a + b.
func (fe *FE) Add(a, b ir.Value) ir.Value { return fe.B.Add(a, b) }

// Sub emits a - b.
func (fe *FE) Sub(a, b ir.Value) ir.Value { return fe.B.Sub(a, b) }

// Mul emits a * b.
func (fe *FE) Mul(a, b ir.Value) ir.Value { return fe.B.Mul(a, b) }

// Div emits a / b (caller guarantees b != 0).
func (fe *FE) Div(a, b ir.Value) ir.Value { return fe.B.SDiv(a, b) }

// Rem emits a % b (caller guarantees b != 0).
func (fe *FE) Rem(a, b ir.Value) ir.Value { return fe.B.SRem(a, b) }

// And emits a & b.
func (fe *FE) And(a, b ir.Value) ir.Value { return fe.B.And(a, b) }

// Or emits a | b.
func (fe *FE) Or(a, b ir.Value) ir.Value { return fe.B.Or(a, b) }

// Xor emits a ^ b.
func (fe *FE) Xor(a, b ir.Value) ir.Value { return fe.B.Xor(a, b) }

// Shl emits a << b.
func (fe *FE) Shl(a, b ir.Value) ir.Value { return fe.B.Shl(a, b) }

// Shr emits a >> b (logical).
func (fe *FE) Shr(a, b ir.Value) ir.Value { return fe.B.LShr(a, b) }

// Sar emits a >> b (arithmetic).
func (fe *FE) Sar(a, b ir.Value) ir.Value { return fe.B.AShr(a, b) }

// Cmp emits a comparison.
func (fe *FE) Cmp(p ir.CmpPred, a, b ir.Value) ir.Value { return fe.B.ICmp(p, a, b) }

// Call emits a call.
func (fe *FE) Call(f *ir.Func, args ...ir.Value) ir.Value { return fe.B.Call(f, args...) }

// Print emits the observable-output intrinsic.
func (fe *FE) Print(v ir.Value) { fe.B.Print(v) }

// Ret returns v (nil for void).
func (fe *FE) Ret(v ir.Value) { fe.B.Ret(v) }

// For emits the canonical unoptimized counted loop
//
//	for (name = lo; name < hi; name += step) body
//
// in while form: a header re-testing the bound each iteration.
func (fe *FE) For(name string, lo, hi, step int64, body func(iv func() ir.Value)) {
	fe.Var(name, lo)
	header := fe.block(name + ".cond")
	bodyB := fe.block(name + ".body")
	latch := fe.block(name + ".inc")
	exit := fe.block(name + ".end")
	fe.B.Br(header)

	fe.B.SetInsert(header)
	cond := fe.B.ICmp(ir.CmpSLT, fe.V(name), fe.C(hi))
	fe.B.CondBr(cond, bodyB, exit)

	fe.B.SetInsert(bodyB)
	body(func() ir.Value { return fe.V(name) })
	fe.brIfOpen(latch)

	fe.B.SetInsert(latch)
	fe.Set(name, fe.B.Add(fe.V(name), fe.C(step)))
	fe.B.Br(header)

	fe.B.SetInsert(exit)
}

// While emits a general while loop; cond is evaluated in the header.
func (fe *FE) While(cond func() ir.Value, body func()) {
	header := fe.block("while.cond")
	bodyB := fe.block("while.body")
	exit := fe.block("while.end")
	fe.B.Br(header)

	fe.B.SetInsert(header)
	fe.B.CondBr(cond(), bodyB, exit)

	fe.B.SetInsert(bodyB)
	body()
	fe.brIfOpen(header)

	fe.B.SetInsert(exit)
}

// If emits an if/else; els may be nil.
func (fe *FE) If(cond ir.Value, then func(), els func()) {
	thenB := fe.block("if.then")
	exit := fe.block("if.end")
	elseB := exit
	if els != nil {
		elseB = fe.block("if.else")
	}
	fe.B.CondBr(cond, thenB, elseB)

	fe.B.SetInsert(thenB)
	then()
	fe.brIfOpen(exit)

	if els != nil {
		fe.B.SetInsert(elseB)
		els()
		fe.brIfOpen(exit)
	}
	fe.B.SetInsert(exit)
}

// Switch emits a C switch with break semantics (no fallthrough).
func (fe *FE) Switch(v ir.Value, vals []int64, cases []func(), def func()) {
	exit := fe.block("sw.end")
	defB := exit
	if def != nil {
		defB = fe.block("sw.default")
	}
	targets := make([]*ir.Block, len(vals))
	for i := range vals {
		targets[i] = fe.block("sw.case" + string(rune('a'+i%26)))
	}
	fe.B.Switch(v, defB, vals, targets)
	for i, t := range targets {
		fe.B.SetInsert(t)
		cases[i]()
		fe.brIfOpen(exit)
	}
	if def != nil {
		fe.B.SetInsert(defB)
		def()
		fe.brIfOpen(exit)
	}
	fe.B.SetInsert(exit)
}
