package analysis_test

import (
	"strings"
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// base builds a minimal well-formed module:
//
//	entry: v = add(x, 1); c = icmp slt v, 5; br c, then, exit
//	then:  w = mul(v, 2); br exit
//	exit:  r = phi [v, entry], [w, then]; ret r
func base() (*ir.Module, map[string]*ir.Instr) {
	m := ir.NewModule("fixture")
	f := m.NewFunc("main", ir.I32, ir.I32)
	x := f.Params[0]
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	v := b.Add(x, ir.ConstInt(ir.I32, 1))
	c := b.ICmp(ir.CmpSLT, v, ir.ConstInt(ir.I32, 5))
	b.CondBr(c, then, exit)
	b.SetInsert(then)
	w := b.Mul(v, ir.ConstInt(ir.I32, 2))
	b.Br(exit)
	b.SetInsert(exit)
	r := b.Phi(ir.I32)
	r.SetPhiIncoming(entry, v)
	r.SetPhiIncoming(then, w)
	b.Ret(r)
	return m, map[string]*ir.Instr{"v": v, "c": c, "w": w, "r": r}
}

func fblock(m *ir.Module, name string) *ir.Block {
	return blockNamed(m.Funcs[0], name)
}

// TestVerifyAllBrokenModules breaks the base module one invariant at a time
// and asserts the exact check ID fires (and that ir.Verify agrees a module
// is broken).
func TestVerifyAllBrokenModules(t *testing.T) {
	cases := []struct {
		name  string
		brk   func(m *ir.Module, ins map[string]*ir.Instr)
		check string
	}{
		{
			name: "detached value",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				// Remove w's defining instruction but keep the phi's use.
				fblock(m, "then").Remove(ins["w"])
			},
			check: analysis.CheckDetachedValue,
		},
		{
			name: "phi incoming from non-pred",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				// Retarget then's branch away from exit; the phi still
				// claims an incoming from then.
				fblock(m, "then").Term().ReplaceTarget(fblock(m, "exit"), fblock(m, "then"))
			},
			check: analysis.CheckPhiNonPred,
		},
		{
			name: "phi missing incoming",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				ins["r"].RemovePhiIncoming(fblock(m, "then"))
			},
			check: analysis.CheckPhiMissing,
		},
		{
			name: "phi duplicate incoming",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				r := ins["r"]
				r.Blocks = append(r.Blocks, fblock(m, "entry"))
				r.Args = append(r.Args, ins["v"])
			},
			check: analysis.CheckPhiDupPred,
		},
		{
			name: "dominance violation",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				// Make entry's add consume then's mul: then does not
				// dominate entry.
				ins["v"].Args[0] = ins["w"]
			},
			check: analysis.CheckDominance,
		},
		{
			name: "dead-def use (use before def in block)",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				// Move w's def after its block's use point by inserting a
				// same-block consumer above it.
				then := fblock(m, "then")
				use := &ir.Instr{Op: ir.OpAdd, Ty: ir.I32,
					Args: []ir.Value{ins["w"], ir.ConstInt(ir.I32, 1)}}
				then.Prepend(use)
			},
			check: analysis.CheckDeadDefUse,
		},
		{
			name: "entry block phi",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				phi := &ir.Instr{Op: ir.OpPhi, Ty: ir.I32}
				fblock(m, "entry").Prepend(phi)
			},
			check: analysis.CheckEntryPhi,
		},
		{
			name: "foreign parameter use",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				other := m.NewFunc("other", ir.I32, ir.I32)
				ob := other.NewBlock("entry")
				bld := ir.NewBuilder()
				bld.SetInsert(ob)
				bld.Ret(other.Params[0])
				ins["v"].Args[0] = other.Params[0]
			},
			check: analysis.CheckForeignParam,
		},
		{
			name: "terminator misplacement",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				exit := fblock(m, "exit")
				exit.Append(&ir.Instr{Op: ir.OpAdd, Ty: ir.I32,
					Args: []ir.Value{ins["r"], ir.ConstInt(ir.I32, 1)}})
			},
			check: analysis.CheckTerminator,
		},
		{
			name: "call arity mismatch",
			brk: func(m *ir.Module, ins map[string]*ir.Instr) {
				callee := m.NewFunc("callee", ir.I32, ir.I32, ir.I32)
				cb := callee.NewBlock("entry")
				bld := ir.NewBuilder()
				bld.SetInsert(cb)
				bld.Ret(ir.ConstInt(ir.I32, 0))
				call := &ir.Instr{Op: ir.OpCall, Ty: ir.I32, Callee: callee,
					Args: []ir.Value{ir.ConstInt(ir.I32, 1)}}
				fblock(m, "entry").Prepend(call)
			},
			check: analysis.CheckCallArity,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, ins := base()
			if ds := analysis.VerifyAll(m); ds.HasErrors() {
				t.Fatalf("base fixture not clean:\n%s", ds)
			}
			tc.brk(m, ins)
			ds := analysis.VerifyAll(m)
			if !ds.HasErrors() {
				t.Fatalf("break %q: VerifyAll found no errors", tc.name)
			}
			if len(ds.ByCheck(tc.check)) == 0 {
				t.Errorf("break %q: check %s did not fire; got checks %v\n%s",
					tc.name, tc.check, ds.Checks(), ds)
			}
			if err := m.Verify(); err == nil {
				t.Errorf("break %q: ir.Verify still passes", tc.name)
			}
		})
	}
}

// TestVerifyAllCollectsAll seeds two independent violations and asserts
// both are reported in one run — the property ir.Verify lacks.
func TestVerifyAllCollectsAll(t *testing.T) {
	m, ins := base()
	fblock(m, "then").Remove(ins["w"])             // detached value
	ins["r"].RemovePhiIncoming(fblock(m, "entry")) // missing incoming
	ds := analysis.VerifyAll(m)
	if len(ds.ByCheck(analysis.CheckDetachedValue)) == 0 ||
		len(ds.ByCheck(analysis.CheckPhiMissing)) == 0 {
		t.Fatalf("expected both checks to fire, got:\n%s", ds)
	}
}

// TestDiagnosticRendering pins the diagnostic string format lint prints.
func TestDiagnosticRendering(t *testing.T) {
	d := analysis.Diagnostic{
		Sev: analysis.Error, Check: analysis.CheckDominance,
		Func: "main", Block: "exit", Instr: "add",
		Msg: "use of %3 does not satisfy dominance",
	}
	s := d.String()
	for _, want := range []string{"error", "[verify.dominance]", "@main/exit/add", "dominance"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
}
