package analysis_test

import (
	"math/rand"
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// refExitCount is the reference oracle: the exit-test simulation the loop
// passes used before SCEV, verbatim. The closed form must agree with it
// everywhere it terminates.
func refExitCount(start, step, bound int64, bits int, pred ir.CmpPred, onNext, exitWhen bool, max int64) (int64, bool) {
	ty := ir.IntType(bits)
	cur := ty.TruncVal(start)
	for n := int64(1); n <= max; n++ {
		next := ir.EvalBinary(ir.OpAdd, ty, cur, step)
		x := cur
		if onNext {
			x = next
		}
		if pred.Eval(x, bound, bits) == exitWhen {
			return n, true
		}
		cur = next
	}
	return 0, false
}

var allPreds = []ir.CmpPred{
	ir.CmpEQ, ir.CmpNE, ir.CmpSLT, ir.CmpSLE, ir.CmpSGT, ir.CmpSGE,
	ir.CmpULT, ir.CmpULE, ir.CmpUGT, ir.CmpUGE,
}

func TestExitCountDirected(t *testing.T) {
	cases := []struct {
		name               string
		start, step, bound int64
		bits               int
		pred               ir.CmpPred
		onNext, exitWhen   bool
		wantN              int64
		wantKind           analysis.TripKind
	}{
		// for (i = 0; i < 10; i++) — while form, exit when !(i < 10).
		{"count-up-slt", 0, 1, 10, 32, ir.CmpSLT, false, false, 11, analysis.TripFinite},
		// do { i++ } while (i < 10) — rotated, test on the incremented value.
		{"rotated-slt", 0, 1, 10, 32, ir.CmpSLT, true, false, 10, analysis.TripFinite},
		// for (i = 0; i != 40; i += 4)
		{"ne-stride", 0, 4, 40, 32, ir.CmpNE, false, false, 11, analysis.TripFinite},
		// i != 3 with step 4: 4k ≡ 3 (mod 2^32) has no solution.
		{"ne-unreachable", 0, 4, 3, 32, ir.CmpNE, false, false, 0, analysis.TripInfinite},
		// Step 0 and the first test fails: nothing ever changes.
		{"step-zero", 5, 0, 10, 32, ir.CmpSGE, false, true, 0, analysis.TripInfinite},
		// i8 loop with a bound beyond the type: i < 300 is always true.
		{"i8-wide-bound-exit", 0, 1, 300, 8, ir.CmpSLT, false, true, 1, analysis.TripFinite},
		{"i8-wide-bound-never", 0, 1, 300, 8, ir.CmpSLT, false, false, 0, analysis.TripInfinite},
		// Wraparound: i8 counting up from 100 by 10 exits once it wraps
		// negative: 100, 110, 120, -126 (at n=4).
		{"i8-wrap", 100, 10, 0, 8, ir.CmpSLT, false, true, 4, analysis.TripFinite},
		// Unsigned: for (i = 0; i ult 7; i += 3) — 0, 3, 6, 9: exit at 9.
		{"ult-stride", 0, 3, 7, 32, ir.CmpULT, false, false, 4, analysis.TripFinite},
		// Unsigned with a negative (= huge) start: exits immediately.
		{"ult-neg-start", -1, 1, 10, 32, ir.CmpULT, false, false, 1, analysis.TripFinite},
		// Down-counting: for (i = 9; i > 0; i--)
		{"count-down", 9, -1, 0, 32, ir.CmpSGT, false, false, 10, analysis.TripFinite},
		// eq on the exact lattice point: i == 6 with step 2 from 0.
		{"eq-hit", 0, 2, 6, 16, ir.CmpEQ, false, true, 4, analysis.TripFinite},
		// 64-bit: no wraparound epoch needed, huge counts still closed form.
		{"i64-large", 0, 1, 1 << 40, 64, ir.CmpSLT, false, false, 1<<40 + 1, analysis.TripFinite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, kind := analysis.ExitCount(tc.start, tc.step, tc.bound, tc.bits, tc.pred, tc.onNext, tc.exitWhen)
			if n != tc.wantN || kind != tc.wantKind {
				t.Fatalf("ExitCount = (%d, %v), want (%d, %v)", n, kind, tc.wantN, tc.wantKind)
			}
			if tc.wantKind == analysis.TripFinite && tc.wantN <= 1<<21 {
				rn, ok := refExitCount(tc.start, tc.step, tc.bound, tc.bits, tc.pred, tc.onNext, tc.exitWhen, 1<<21)
				if !ok || rn != tc.wantN {
					t.Fatalf("reference simulation = (%d, %v), want (%d, true)", rn, ok, tc.wantN)
				}
			}
		})
	}
}

// TestExitCountDifferential cross-checks the closed form against the
// simulation oracle on randomized parameters. For widths <= 16 the value
// sequence's full period fits under the simulation cap, so TripInfinite
// claims are verified exactly, not just up to the cap.
func TestExitCountDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const simCap = 1 << 18
	widths := []int{1, 8, 16, 32, 64}
	kinds := map[analysis.TripKind]int{}
	trials := 30000
	if testing.Short() {
		trials = 3000
	}
	for trial := 0; trial < trials; trial++ {
		bits := widths[rng.Intn(len(widths))]
		span := int64(1) << 10
		if bits < 10 {
			span = int64(1) << uint(bits+2)
		}
		r := func() int64 {
			v := rng.Int63n(2*span+1) - span
			if rng.Intn(8) == 0 {
				// Occasionally push values far outside the type to exercise
				// truncation and non-representable bounds.
				v = rng.Int63() - rng.Int63()
			}
			return v
		}
		start, step, bound := r(), r(), r()
		pred := allPreds[rng.Intn(len(allPreds))]
		onNext := rng.Intn(2) == 0
		exitWhen := rng.Intn(2) == 0

		n, kind := analysis.ExitCount(start, step, bound, bits, pred, onNext, exitWhen)
		kinds[kind]++
		rn, rok := refExitCount(start, step, bound, bits, pred, onNext, exitWhen, simCap)
		ctx := func() string {
			return "start=" + itoa(start) + " step=" + itoa(step) + " bound=" + itoa(bound) +
				" bits=" + itoa(int64(bits)) + " pred=" + pred.String() +
				" onNext=" + bstr(onNext) + " exitWhen=" + bstr(exitWhen)
		}
		switch kind {
		case analysis.TripFinite:
			if n <= simCap {
				if !rok || rn != n {
					t.Fatalf("%s: closed form says n=%d, simulation says (%d, %v)", ctx(), n, rn, rok)
				}
			} else if rok {
				t.Fatalf("%s: closed form says n=%d, but simulation exits at %d", ctx(), n, rn)
			}
		case analysis.TripInfinite:
			if rok {
				t.Fatalf("%s: closed form says infinite, but simulation exits at %d", ctx(), rn)
			}
		case analysis.TripUnknown:
			// Allowed: the caller falls back to bounded simulation.
		}
	}
	if kinds[analysis.TripFinite] < 5000 || kinds[analysis.TripInfinite] < 1000 {
		t.Fatalf("kind distribution too skewed for a meaningful test: %v", kinds)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = -u
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func bstr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// whileLoop builds the canonical while-form counted loop
//
//	entry:  br header
//	header: i = phi [start, entry], [inext, latch]; c = icmp pred i, bound; br c, body, exit
//	body:   br latch
//	latch:  inext = add i, step; br header
//	exit:   ret 0
func whileLoop(start, step, bound int64, pred ir.CmpPred) (*ir.Module, *ir.Instr) {
	m := ir.NewModule("scev")
	f := m.NewFunc("main", ir.I32)
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	b.Br(header)
	b.SetInsert(header)
	i := b.Phi(ir.I32)
	c := b.ICmp(pred, i, ir.ConstInt(ir.I32, bound))
	b.CondBr(c, body, exit)
	b.SetInsert(body)
	b.Br(latch)
	b.SetInsert(latch)
	inext := b.Add(i, ir.ConstInt(ir.I32, step))
	b.Br(header)
	b.SetInsert(exit)
	b.Ret(ir.ConstInt(ir.I32, 0))
	i.SetPhiIncoming(entry, ir.ConstInt(ir.I32, start))
	i.SetPhiIncoming(latch, inext)
	return m, i
}

func TestComputeSCEVWhileLoop(t *testing.T) {
	m, phi := whileLoop(0, 1, 10, ir.CmpSLT)
	f := m.Func("main")
	sc := analysis.ComputeSCEV(f)
	if len(sc.Loops()) != 1 {
		t.Fatalf("found %d loops, want 1", len(sc.Loops()))
	}
	l := sc.Loops()[0]
	tr := sc.TripsOf(l)
	if tr.Kind != analysis.TripFinite || tr.BodyTrips != 10 || tr.HeaderExecs != 11 || !tr.HeaderExit {
		t.Fatalf("trips = %+v, want finite body=10 header=11 headerExit", tr)
	}
	rec, ok := sc.AddRecOf(phi)
	if !ok || rec.Start != 0 || rec.Step != 1 || rec.Bits != 32 {
		t.Fatalf("AddRecOf = %+v (ok=%v), want {0,+,1} i32", rec, ok)
	}
	iv, ok := sc.PhiRange(phi)
	if !ok || iv != (analysis.Interval{Lo: 0, Hi: 10}) {
		t.Fatalf("PhiRange = %v (ok=%v), want [0, 10]", iv, ok)
	}
}

func TestComputeSCEVRotatedLoop(t *testing.T) {
	// do { i++ } while (i < 10): single-block loop, header == latch.
	m := ir.NewModule("scev")
	f := m.NewFunc("main", ir.I32)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	b.Br(loop)
	b.SetInsert(loop)
	i := b.Phi(ir.I32)
	inext := b.Add(i, ir.ConstInt(ir.I32, 1))
	c := b.ICmp(ir.CmpSLT, inext, ir.ConstInt(ir.I32, 10))
	b.CondBr(c, loop, exit)
	b.SetInsert(exit)
	b.Ret(ir.ConstInt(ir.I32, 0))
	i.SetPhiIncoming(entry, ir.ConstInt(ir.I32, 0))
	i.SetPhiIncoming(loop, inext)

	sc := analysis.ComputeSCEV(f)
	if len(sc.Loops()) != 1 {
		t.Fatalf("found %d loops, want 1", len(sc.Loops()))
	}
	tr := sc.TripsOf(sc.Loops()[0])
	if tr.Kind != analysis.TripFinite || tr.BodyTrips != 10 || tr.HeaderExecs != 10 || tr.HeaderExit {
		t.Fatalf("trips = %+v, want finite body=10 header=10 latch-exit", tr)
	}
}

func TestComputeSCEVInfinite(t *testing.T) {
	// for (i = 0; i != 3; i += 4): 4k ≡ 3 (mod 2^32) has no solution.
	m, _ := whileLoop(0, 4, 3, ir.CmpNE)
	sc := analysis.ComputeSCEV(m.Func("main"))
	tr := sc.TripsOf(sc.Loops()[0])
	if tr.Kind != analysis.TripInfinite {
		t.Fatalf("trips = %+v, want infinite", tr)
	}
}
