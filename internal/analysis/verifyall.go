package analysis

import (
	"autophase/internal/ir"
)

// Check IDs emitted by VerifyAll. Structural checks mirror ir.Verify (same
// invariants, collect-all instead of first-error); the dataflow.* and mem.*
// checks are the sanitizer's independent cross-validation layer, computed
// with the dataflow engine rather than the verifier's dominance walk.
const (
	CheckNoBlocks      = "verify.no-blocks"       // function with no blocks
	CheckEmptyBlock    = "verify.empty-block"     // block without instructions
	CheckWrongParent   = "verify.wrong-parent"    // instruction parent mismatch
	CheckTerminator    = "verify.terminator"      // missing/misplaced terminator
	CheckPhiPlacement  = "verify.phi-placement"   // phi after a non-phi
	CheckEntryPhi      = "verify.entry-phi"       // phi in the entry block
	CheckNilOperand    = "verify.nil-operand"     // nil operand slot
	CheckDetachedValue = "verify.detached-value"  // operand defined outside the function
	CheckNilTarget     = "verify.nil-target"      // nil branch target
	CheckDetachedBlock = "verify.detached-block"  // branch to a block not in the function
	CheckPhiShape      = "verify.phi-shape"       // phi arg/block count mismatch
	CheckBrShape       = "verify.br-shape"        // conditional br without condition
	CheckSwitchShape   = "verify.switch-shape"    // switch case/target mismatch
	CheckPhiDupPred    = "verify.phi-dup-pred"    // duplicate incoming block
	CheckPhiNonPred    = "verify.phi-non-pred"    // incoming from a non-predecessor
	CheckPhiMissing    = "verify.phi-missing"     // missing incoming for a predecessor
	CheckDominance     = "verify.dominance"       // use not dominated by def
	CheckNilCallee     = "verify.nil-callee"      // call without callee
	CheckDetachedFunc  = "verify.detached-callee" // call to a function not in the module
	CheckCallArity     = "verify.call-arity"      // call arg/param count mismatch
	CheckForeignParam  = "verify.foreign-param"   // use of another function's parameter

	CheckDataflowReach = "dataflow.reach"     // a cross-block use the def does not reach (reaching-defs cross-check)
	CheckDeadDefUse    = "dataflow.dead-def"  // a same-block use before the def point (the def is not yet live)
	CheckUnknownMemObj = "mem.unknown-object" // load/store/memset through a pointer with no known root
	CheckUndefMemObj   = "mem.undef-object"   // reachable load/store/memset through an undef pointer

	// Range-analysis lints (Warning severity: the module still executes,
	// but the flagged operation is provably broken when reached).
	CheckRangeGEPOOB  = "range.gep-out-of-bounds" // access offset provably outside the object's cells
	CheckRangeDivZero = "range.div-by-zero"       // divisor is provably always zero
	CheckRangeShift   = "range.shift-oversized"   // shift amount provably >= width or negative
	CheckRangeInfLoop = "range.infinite-loop"     // loop exit condition provably never fires

	// Interprocedural lints (Warning severity except attr-overclaim),
	// computed over the call graph and effect summaries. They only run on
	// structurally clean modules — a broken CFG would make the call graph
	// and the summaries nonsense.
	CheckUnreachableFunc   = "ipa.unreachable-func"   // function unreachable from main through call edges
	CheckInfiniteRecursion = "ipa.infinite-recursion" // every path from entry recurses before any return
	CheckPureResultUnused  = "ipa.pure-result-unused" // call to a pure function whose result is never used
	CheckGlobalNeverRead   = "ipa.global-never-read"  // global no function ever provably reads
	CheckAttrOverclaim     = "ipa.attr-overclaim"     // derived attribute stronger than the effect summary allows (Error)
)

// VerifyAll checks every structural invariant ir.Verify enforces, plus the
// dataflow-consistency and memory-rooting checks, and returns every finding
// rather than the first. A module is healthy when the result has no
// Error-severity diagnostics.
func VerifyAll(m *ir.Module) Diagnostics {
	var c collector
	for _, f := range m.Funcs {
		// Ids are normally assigned by the printer; a freshly parsed (or
		// never-printed) module would render every unnamed value as %0 in
		// diagnostics without this.
		f.Renumber()
		c.fn = f
		verifyFuncAll(&c, m, f)
	}
	c.fn = nil
	if !c.diags.HasErrors() {
		verifyIPA(&c, m)
	}
	return c.diags
}

// verifyFuncAll runs all per-function checks, appending to c.
func verifyFuncAll(c *collector, m *ir.Module, f *ir.Func) {
	if len(f.Blocks) == 0 {
		c.errf(CheckNoBlocks, nil, nil, "function has no blocks")
		return
	}
	if len(f.Entry().Phis()) > 0 {
		c.errf(CheckEntryPhi, f.Entry(), nil, "phi in entry block")
	}
	inFunc := make(map[*ir.Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	structOK := true // gates the dataflow layer: it needs a well-formed CFG
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			c.errf(CheckEmptyBlock, b, nil, "block has no instructions")
			structOK = false
			continue
		}
		for i, in := range b.Instrs {
			if in.Parent() != b {
				c.errf(CheckWrongParent, b, in, "instruction has wrong parent")
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				c.errf(CheckTerminator, b, in, "terminator misplacement at %d", i)
				structOK = false
			}
			if in.Op == ir.OpPhi && i > 0 && b.Instrs[i-1].Op != ir.OpPhi {
				c.errf(CheckPhiPlacement, b, in, "phi not at block head")
			}
			for ai, a := range in.Args {
				if a == nil {
					c.errf(CheckNilOperand, b, in, "operand %d is nil", ai)
					structOK = false
					continue
				}
				if def, ok := a.(*ir.Instr); ok {
					if def.Parent() == nil || !inFunc[def.Parent()] {
						c.errf(CheckDetachedValue, b, in, "uses detached value %s", def.Ref())
					}
				}
				if p, ok := a.(*ir.Param); ok && p.Parent != f {
					owner := "<detached>"
					if p.Parent != nil {
						owner = "@" + p.Parent.Name
					}
					c.errf(CheckForeignParam, b, in, "uses parameter %s of foreign function %s", p.Ref(), owner)
				}
			}
			for _, t := range in.Blocks {
				if t == nil {
					c.errf(CheckNilTarget, b, in, "nil branch target")
					structOK = false
					continue
				}
				if !inFunc[t] {
					c.errf(CheckDetachedBlock, b, in, "targets detached block %s", t.Label())
					structOK = false
				}
			}
			switch in.Op {
			case ir.OpPhi:
				if len(in.Args) != len(in.Blocks) {
					c.errf(CheckPhiShape, b, in, "phi has %d values for %d blocks", len(in.Args), len(in.Blocks))
				}
			case ir.OpBr:
				if len(in.Blocks) == 2 && len(in.Args) != 1 {
					c.errf(CheckBrShape, b, in, "conditional br without condition")
				}
			case ir.OpSwitch:
				if len(in.Blocks) != len(in.Cases)+1 {
					c.errf(CheckSwitchShape, b, in, "switch has %d targets for %d cases", len(in.Blocks), len(in.Cases))
				}
			case ir.OpCall:
				if in.Callee == nil {
					c.errf(CheckNilCallee, b, in, "call with nil callee")
				} else {
					if m.Func(in.Callee.Name) != in.Callee {
						c.errf(CheckDetachedFunc, b, in, "call to detached function @%s", in.Callee.Name)
					}
					if len(in.Args) != len(in.Callee.Params) {
						c.errf(CheckCallArity, b, in, "call to @%s with %d args, want %d",
							in.Callee.Name, len(in.Args), len(in.Callee.Params))
					}
				}
			}
		}
	}
	if !structOK {
		// A broken CFG would make Preds/Succs, the dominator tree and the
		// dataflow solver report nonsense; the structural findings above
		// already fail the module.
		return
	}
	reach := f.ReachableBlocks()
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		preds := b.Preds()
		predSet := make(map[*ir.Block]bool, len(preds))
		for _, p := range preds {
			predSet[p] = true
		}
		for _, phi := range b.Phis() {
			seen := make(map[*ir.Block]bool)
			for _, pb := range phi.Blocks {
				if pb == nil {
					continue
				}
				if seen[pb] {
					c.errf(CheckPhiDupPred, b, phi, "duplicate incoming block %s", pb.Label())
				}
				seen[pb] = true
				if !predSet[pb] {
					c.errf(CheckPhiNonPred, b, phi, "incoming from non-pred %s", pb.Label())
				}
			}
			for _, p := range preds {
				if !seen[p] {
					c.errf(CheckPhiMissing, b, phi, "missing incoming for pred %s", p.Label())
				}
			}
		}
	}
	dt := ir.NewDomTree(f)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == nil {
					continue
				}
				if !dt.DominatesInstr(a, in) {
					c.errf(CheckDominance, b, in, "use of %s does not satisfy dominance", a.Ref())
				}
			}
		}
	}
	verifyDataflow(c, f, reach)
	verifyRanges(c, f, reach)
}

// verifyRanges is the range-powered lint layer: interval facts strong
// enough to prove an operation broken on every execution that reaches it.
// All findings are warnings — the module is still structurally valid and
// executable (the interpreter will trap or spin at runtime).
func verifyRanges(c *collector, f *ir.Func, reach map[*ir.Block]bool) {
	r := ComputeRanges(f)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpSDiv, ir.OpSRem:
				if r.At(in.Args[1], b) == Point(0) {
					c.warnf(CheckRangeDivZero, b, in, "divisor %s is provably always zero", in.Args[1].Ref())
				}
			case ir.OpShl, ir.OpLShr, ir.OpAShr:
				width := int64(64)
				if in.Ty.IsInt() && in.Ty.Bits > 0 {
					width = int64(in.Ty.Bits)
				}
				amt := r.At(in.Args[1], b)
				if amt.Lo >= width || amt.Hi < 0 {
					c.warnf(CheckRangeShift, b, in, "shift amount %s is provably %s (width %d)",
						in.Args[1].Ref(), amt.String(), width)
				}
			case ir.OpLoad, ir.OpStore:
				checkAccessBounds(c, r, b, in)
			}
		}
	}
	for _, l := range r.SCEV().Loops() {
		if !reach[l.Header] || r.SCEV().TripsOf(l).Kind != TripInfinite {
			continue
		}
		if loopEscapes(l) {
			continue
		}
		c.warnf(CheckRangeInfLoop, l.Header, l.Header.Term(),
			"loop at %s: exit condition provably never fires", l.Header.Label())
	}
}

// ptrOffBits mirrors the interpreter's pointer encoding: offsets live in a
// 28-bit signed field, so offset arithmetic is only faithful (and an
// out-of-bounds proof only valid) while every intermediate sum stays inside
// that field.
const ptrOffBits = 28

// checkAccessBounds warns when a load/store address provably lands outside
// its object. The address must resolve through a GEP/bitcast chain to an
// alloca or global with a known cell count, and the accumulated offset
// interval must avoid the interpreter's pointer-offset wraparound.
func checkAccessBounds(c *collector, r *Ranges, b *ir.Block, in *ir.Instr) {
	addr := in.Args[len(in.Args)-1] // load: [ptr]; store: [val, ptr]
	off := Point(0)
	lim := Interval{-(1 << (ptrOffBits - 1)), 1<<(ptrOffBits-1) - 1}
	v := addr
	for {
		instr, ok := v.(*ir.Instr)
		if !ok {
			break
		}
		switch instr.Op {
		case ir.OpGEP:
			off = evalBinaryIvl(ir.OpAdd, ir.I64, off, r.At(instr.Args[1], b))
			if !lim.ContainsIvl(off) {
				return // offset may wrap in the 28-bit field; no proof
			}
			v = instr.Args[0]
			continue
		case ir.OpBitCast:
			v = instr.Args[0]
			continue
		}
		break
	}
	cells := int64(-1)
	switch obj := v.(type) {
	case *ir.Instr:
		if obj.Op == ir.OpAlloca {
			cells = 1
			if obj.AllocTy != nil && obj.AllocTy.Kind == ir.ArrayKind {
				cells = int64(obj.AllocTy.Len)
			}
		}
	case *ir.Global:
		cells = int64(obj.NumElems())
	}
	if cells < 0 {
		return
	}
	if off.Hi < 0 || off.Lo >= cells {
		c.warnf(CheckRangeGEPOOB, b, in, "access offset %s provably outside object of %d cells",
			off.String(), cells)
	}
}

// loopEscapes reports whether l's body can leave the loop without taking
// the recognized exit edge — a ret leaves the function, an unreachable (or
// a possibly-trapping division) aborts execution.
func loopEscapes(l *ir.Loop) bool {
	for _, b := range l.Body {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpRet, ir.OpUnreachable, ir.OpCall:
				return true
			case ir.OpSDiv, ir.OpSRem:
				if cv, ok := ir.IsConst(in.Args[1]); !ok || cv == 0 {
					return true
				}
			}
		}
	}
	return false
}

// verifyDataflow is the sanitizer's independent consistency layer: the
// reaching-definitions and liveness solutions must agree with the uses the
// code actually performs, and memory operations must address a known
// object. It assumes a structurally valid CFG.
func verifyDataflow(c *collector, f *ir.Func, reach map[*ir.Block]bool) {
	rd := ComputeReaching(f)
	al := ComputeAliases(f)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				def, ok := a.(*ir.Instr)
				if !ok || def.Parent() == nil {
					continue
				}
				if in.Op != ir.OpPhi && def.Parent() == b {
					if !defPrecedesUse(b, def, in) {
						c.errf(CheckDeadDefUse, b, in, "use of %s before its definition point", def.Ref())
					}
				} else if !rd.ReachesUse(def, in) {
					c.errf(CheckDataflowReach, b, in, "use of %s not reached by its definition", def.Ref())
				}
			}
			if addr := addrOperand(in); addr != nil {
				rs := al.RootsOf(addr)
				for _, r := range rs {
					switch r.Kind {
					case RootUnknown:
						c.errf(CheckUnknownMemObj, b, in, "memory access through pointer with unknown object")
					case RootUndef:
						c.warnf(CheckUndefMemObj, b, in, "memory access through undef pointer")
					}
				}
			}
		}
	}
}

// defPrecedesUse reports whether def appears strictly before use in block b.
func defPrecedesUse(b *ir.Block, def, use *ir.Instr) bool {
	for _, in := range b.Instrs {
		if in == def {
			return true
		}
		if in == use {
			return false
		}
	}
	return false
}
