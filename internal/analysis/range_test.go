package analysis_test

import (
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

func TestIntervalOps(t *testing.T) {
	a := analysis.Interval{Lo: -3, Hi: 7}
	if !a.Contains(0) || a.Contains(8) || a.Contains(-4) {
		t.Fatal("Contains is wrong")
	}
	if h := a.Hull(analysis.Point(10)); h != (analysis.Interval{Lo: -3, Hi: 10}) {
		t.Fatalf("Hull = %v", h)
	}
	if x, ok := a.Intersect(analysis.Interval{Lo: 5, Hi: 20}); !ok || x != (analysis.Interval{Lo: 5, Hi: 7}) {
		t.Fatalf("Intersect = %v, %v", x, ok)
	}
	if _, ok := a.Intersect(analysis.Point(100)); ok {
		t.Fatal("disjoint Intersect should report empty")
	}
	if !analysis.Full.IsFull() || analysis.Full.IsPoint() || !analysis.Point(4).IsPoint() {
		t.Fatal("Full/Point classification is wrong")
	}
}

// TestRangesLoopPhi: a counted loop's IV phi gets the exact closed-form
// hull, and derived values inherit tight ranges from it.
func TestRangesLoopPhi(t *testing.T) {
	m, phi := whileLoop(0, 1, 10, ir.CmpSLT)
	f := m.Func("main")
	r := analysis.ComputeRanges(f)
	if got := r.Of(phi); got != (analysis.Interval{Lo: 0, Hi: 10}) {
		t.Fatalf("Of(phi) = %v, want [0, 10]", got)
	}
	// Inside the loop body the header condition i < 10 has been taken.
	body := blockNamed(f, "body")
	if got := r.At(phi, body); got != (analysis.Interval{Lo: 0, Hi: 9}) {
		t.Fatalf("At(phi, body) = %v, want [0, 9]", got)
	}
	// And after the loop the exit edge pins the final value exactly... only
	// via Of, since the exit is reached when i < 10 is false.
	exit := blockNamed(f, "exit")
	if got := r.At(phi, exit); got != (analysis.Interval{Lo: 10, Hi: 10}) {
		t.Fatalf("At(phi, exit) = %v, want [10, 10]", got)
	}
}

// TestRangesBranchRefinement: At narrows a param-derived value under a
// dominating branch condition.
func TestRangesBranchRefinement(t *testing.T) {
	m, ins := base()
	f := m.Func("main")
	r := analysis.ComputeRanges(f)
	v := ins["v"]
	if got := r.Of(v); got != (analysis.Interval{Lo: ir.I32.MinVal(), Hi: ir.I32.MaxVal()}) {
		t.Fatalf("Of(v) = %v, want the i32 range", got)
	}
	then := blockNamed(f, "then")
	want := analysis.Interval{Lo: ir.I32.MinVal(), Hi: 4}
	if got := r.At(v, then); got != want {
		t.Fatalf("At(v, then) = %v, want %v", got, want)
	}
	// w = v*2 re-evaluates with the refined v; 2*[min64, 4] overflows the
	// raw range, so only the canonical type bound survives.
	if got := r.At(ins["w"], then); !got.ContainsIvl(analysis.Point(8)) {
		t.Fatalf("At(w, then) = %v, must contain 8", got)
	}
}

func TestRangesConstUndefCall(t *testing.T) {
	m, _ := whileLoop(0, 1, 3, ir.CmpSLT)
	f := m.Func("main")
	r := analysis.ComputeRanges(f)
	if got := r.Of(ir.ConstInt(ir.I32, 42)); got != analysis.Point(42) {
		t.Fatalf("Of(const) = %v", got)
	}
	if got := r.Of(&ir.Undef{Ty: ir.I32}); got != analysis.Point(0) {
		t.Fatalf("Of(undef) = %v, want [0, 0] (the interpreter reads undef as 0)", got)
	}
}

// lintModule builds a module with one reachable broken operation per check.
func lintFixture(build func(b *ir.Builder, f *ir.Func, entry *ir.Block)) *ir.Module {
	m := ir.NewModule("lint")
	f := m.NewFunc("main", ir.I32)
	entry := f.NewBlock("entry")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	build(b, f, entry)
	return m
}

func TestRangeLintDivByZero(t *testing.T) {
	m := lintFixture(func(b *ir.Builder, f *ir.Func, entry *ir.Block) {
		zero := b.Sub(ir.ConstInt(ir.I32, 7), ir.ConstInt(ir.I32, 7))
		q := b.SDiv(ir.ConstInt(ir.I32, 100), zero)
		b.Ret(q)
	})
	ds := analysis.VerifyAll(m)
	if len(ds.ByCheck(analysis.CheckRangeDivZero)) == 0 {
		t.Fatalf("want %s finding, got: %v", analysis.CheckRangeDivZero, ds)
	}
	if ds.HasErrors() {
		t.Fatalf("range lints must stay warnings, got errors: %v", ds)
	}
}

func TestRangeLintShiftOversized(t *testing.T) {
	m := lintFixture(func(b *ir.Builder, f *ir.Func, entry *ir.Block) {
		amt := b.Add(ir.ConstInt(ir.I32, 30), ir.ConstInt(ir.I32, 10))
		v := b.Shl(ir.ConstInt(ir.I32, 1), amt)
		b.Ret(v)
	})
	ds := analysis.VerifyAll(m)
	if len(ds.ByCheck(analysis.CheckRangeShift)) == 0 {
		t.Fatalf("want %s finding, got: %v", analysis.CheckRangeShift, ds)
	}
	if ds.HasErrors() {
		t.Fatalf("range lints must stay warnings, got errors: %v", ds)
	}
}

func TestRangeLintGEPOutOfBounds(t *testing.T) {
	m := lintFixture(func(b *ir.Builder, f *ir.Func, entry *ir.Block) {
		arr := b.Alloca(ir.ArrayOf(ir.I32, 4))
		p := b.GEP(arr, ir.ConstInt(ir.I64, 9))
		v := b.Load(p)
		b.Ret(v)
	})
	ds := analysis.VerifyAll(m)
	if len(ds.ByCheck(analysis.CheckRangeGEPOOB)) == 0 {
		t.Fatalf("want %s finding, got: %v", analysis.CheckRangeGEPOOB, ds)
	}
	if ds.HasErrors() {
		t.Fatalf("range lints must stay warnings, got errors: %v", ds)
	}
	// An in-bounds loop access must stay silent: for (i = 0; i < 4; i++)
	// arr[i] is provably fine via the refined IV range.
	ok, _ := whileLoop(0, 1, 4, ir.CmpSLT)
	fn := ok.Func("main")
	bb := blockNamed(fn, "body")
	bld := ir.NewBuilder()
	// Rebuild body: arr[i] load before the br.
	br := bb.Instrs[len(bb.Instrs)-1]
	bb.Instrs = bb.Instrs[:len(bb.Instrs)-1]
	bld.SetInsert(blockNamed(fn, "entry"))
	entryBr := bld.Block().Instrs[len(bld.Block().Instrs)-1]
	bld.Block().Instrs = bld.Block().Instrs[:len(bld.Block().Instrs)-1]
	arr := bld.Alloca(ir.ArrayOf(ir.I32, 4))
	bld.Block().Append(entryBr)
	bld.SetInsert(bb)
	iv := fn.Blocks[1].Phis()[0]
	p := bld.GEP(arr, iv)
	bld.Load(p)
	bb.Append(br)
	if ds := analysis.VerifyAll(ok); len(ds.ByCheck(analysis.CheckRangeGEPOOB)) != 0 {
		t.Fatalf("in-bounds loop access flagged: %v", ds)
	}
}

func TestRangeLintInfiniteLoop(t *testing.T) {
	// for (i = 0; i != 3; i += 4): the exit equality can never hold.
	m, _ := whileLoop(0, 4, 3, ir.CmpNE)
	ds := analysis.VerifyAll(m)
	if len(ds.ByCheck(analysis.CheckRangeInfLoop)) == 0 {
		t.Fatalf("want %s finding, got: %v", analysis.CheckRangeInfLoop, ds)
	}
	if ds.HasErrors() {
		t.Fatalf("range lints must stay warnings, got errors: %v", ds)
	}
	// The terminating variant must stay silent.
	m2, _ := whileLoop(0, 4, 40, ir.CmpNE)
	if ds := analysis.VerifyAll(m2); len(ds.ByCheck(analysis.CheckRangeInfLoop)) != 0 {
		t.Fatalf("terminating loop flagged: %v", ds)
	}
}
