package analysis

import (
	"math/big"

	"autophase/internal/ir"
)

// This file is the scalar-evolution layer: it recognizes affine
// add-recurrences {start,+,step} among loop-header phis and derives
// closed-form exit counts for counted loops, replacing the O(n) exit-test
// simulation the loop passes used with an O(1) query. The closed form is
// exact with respect to the interpreter's two's-complement semantics
// (ir.Type.TruncVal wraparound, ir.CmpPred.Eval mixed signed/unsigned
// comparison), which the randomized differential tests pin down.

// TripKind classifies an exit-count query.
type TripKind int

// Exit-count results.
const (
	TripUnknown  TripKind = iota // no closed form; the caller may simulate
	TripFinite                   // the exit is taken at a known evaluation
	TripInfinite                 // the exit condition provably never holds
)

// String renders the kind.
func (k TripKind) String() string {
	switch k {
	case TripFinite:
		return "finite"
	case TripInfinite:
		return "infinite"
	}
	return "unknown"
}

// maxWrapEpochs bounds how many times ExitCount follows the recurrence
// around the 2^bits torus before giving up. Each epoch is O(1); real loops
// flip their exit condition within the first wrap.
const maxWrapEpochs = 4

// ExitCount computes the smallest n >= 1 at which a loop exit test on an
// affine recurrence fires. The tested value at evaluation n is
//
//	x_n = TruncVal(start + (n-1+off)*step), off = 0 (phi) or 1 (onNext),
//
// and the exit fires when pred.Eval(x_n, bound, bits) == exitWhen — exactly
// the semantics of iterating cur = EvalBinary(OpAdd, ty, cur, step) from
// TruncVal(start) and testing cur (or its successor) each round.
//
// Returns (n, TripFinite) when the exit fires at evaluation n, (0,
// TripInfinite) when it provably never fires, and (0, TripUnknown) when no
// closed form was derived (the caller may fall back to bounded simulation).
func ExitCount(start, step, bound int64, bits int, pred ir.CmpPred, onNext, exitWhen bool) (int64, TripKind) {
	if bits <= 0 || bits > 64 {
		bits = 64
	}
	ty := ir.IntType(bits)
	s := ty.TruncVal(step)
	off := int64(0)
	if onNext {
		off = 1
	}
	// First tested value. int64 addition wraps mod 2^64 and TruncVal reduces
	// mod 2^bits, so this equals the iterated form.
	v0 := ty.TruncVal(start + off*step)
	if pred.Eval(v0, bound, bits) == exitWhen {
		return 1, TripFinite
	}
	if s == 0 {
		// The recurrence is constant and the first test already failed.
		return 0, TripInfinite
	}
	switch pred {
	case ir.CmpEQ, ir.CmpNE:
		return equalityExitCount(start, s, bound, bits, pred, off, exitWhen)
	default:
		return orderedExitCount(v0, s, bound, bits, pred, off, exitWhen)
	}
}

// equalityExitCount solves eq/ne exits as a linear congruence
// step*k ≡ bound-start (mod 2^bits) over the evaluation index k = n-1+off.
func equalityExitCount(start, s, bound int64, bits int, pred ir.CmpPred, off int64, exitWhen bool) (int64, TripKind) {
	ty := ir.IntType(bits)
	cb := ty.TruncVal(bound)
	// CmpPred.Eval compares eq/ne on the raw (sign-extended) int64s, so a
	// bound outside the canonical bits-wide range can never equal the
	// recurrence's canonical values.
	representable := cb == bound
	exitOnEqual := (pred == ir.CmpEQ) == exitWhen
	if !exitOnEqual {
		// Exit on inequality. The first test failed, so x_1 == bound; the
		// step is nonzero mod 2^bits, hence x_2 != x_1 == bound.
		if !representable {
			return 0, TripInfinite // x_n == bound held, impossible
		}
		return 2, TripFinite
	}
	if !representable {
		return 0, TripInfinite
	}
	mod := big.NewInt(1)
	mod.Lsh(mod, uint(bits))
	su := new(big.Int).And(big.NewInt(s), new(big.Int).Sub(mod, big.NewInt(1)))
	d := new(big.Int).Sub(big.NewInt(cb), big.NewInt(ty.TruncVal(start)))
	d.Mod(d, mod)
	g := new(big.Int).GCD(nil, nil, su, mod)
	if new(big.Int).Mod(d, g).Sign() != 0 {
		return 0, TripInfinite // congruence unsolvable: never equal
	}
	period := new(big.Int).Div(mod, g)
	inv := new(big.Int).ModInverse(new(big.Int).Div(su, g), period)
	if inv == nil {
		return 0, TripUnknown // cannot happen after the gcd division
	}
	k := new(big.Int).Div(d, g)
	k.Mul(k, inv)
	k.Mod(k, period)
	if k.Cmp(big.NewInt(off)) < 0 {
		k.Add(k, period)
	}
	return tripFromIndex(k, off)
}

// orderedExitCount handles the ordered predicates by following the affine
// recurrence across the bits-wide domain, one wrap epoch at a time. Within
// an epoch the values are exactly start + j*step, the predicate is a
// half-line, and the first entry index is a ceiling division.
func orderedExitCount(v0, s, bound int64, bits int, pred ir.CmpPred, off int64, exitWhen bool) (int64, TripKind) {
	signed := pred == ir.CmpSLT || pred == ir.CmpSLE || pred == ir.CmpSGT || pred == ir.CmpSGE
	mod := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	var lo, hi, val, bnd *big.Int
	mask := new(big.Int).Sub(mod, big.NewInt(1))
	if signed {
		hi = new(big.Int).Sub(new(big.Int).Rsh(mod, 1), big.NewInt(1)) // 2^(bits-1)-1
		lo = new(big.Int).Neg(new(big.Int).Rsh(mod, 1))                // -2^(bits-1)
		val = big.NewInt(v0)
		// Signed predicates compare the raw bound, which may lie outside
		// the canonical domain; the half-line machinery handles that.
		bnd = big.NewInt(bound)
	} else {
		lo = big.NewInt(0)
		hi = mask
		val = new(big.Int).And(big.NewInt(v0), mask)
		bnd = new(big.Int).And(big.NewInt(bound), mask)
	}
	// Normalize "pred(v, bound) == exitWhen" to a half-line target
	// {v <= t} (wantLE) or {v >= t}.
	var t *big.Int
	var wantLE bool
	switch pred {
	case ir.CmpSLT, ir.CmpULT:
		t, wantLE = new(big.Int).Sub(bnd, big.NewInt(1)), true
	case ir.CmpSLE, ir.CmpULE:
		t, wantLE = new(big.Int).Set(bnd), true
	case ir.CmpSGT, ir.CmpUGT:
		t, wantLE = new(big.Int).Add(bnd, big.NewInt(1)), false
	default: // SGE, UGE
		t, wantLE = new(big.Int).Set(bnd), false
	}
	if !exitWhen {
		if wantLE {
			t, wantLE = new(big.Int).Add(t, big.NewInt(1)), false
		} else {
			t, wantLE = new(big.Int).Sub(t, big.NewInt(1)), true
		}
	}
	// Target empty over the whole domain: the loop can never exit.
	if wantLE && t.Cmp(lo) < 0 {
		return 0, TripInfinite
	}
	if !wantLE && t.Cmp(hi) > 0 {
		return 0, TripInfinite
	}
	inTarget := func(v *big.Int) bool {
		if wantLE {
			return v.Cmp(t) <= 0
		}
		return v.Cmp(t) >= 0
	}
	sb := big.NewInt(s)
	k := big.NewInt(off)
	for epoch := 0; epoch < maxWrapEpochs; epoch++ {
		if inTarget(val) {
			return tripFromIndex(k, off)
		}
		// First j >= 1 with val + j*s in the target, ignoring wraparound.
		var jFlip *big.Int
		if wantLE && s < 0 {
			// Need val + j*s <= t, i.e. j >= (val-t)/(-s).
			jFlip = ceilDiv(new(big.Int).Sub(val, t), new(big.Int).Neg(sb))
		} else if !wantLE && s > 0 {
			jFlip = ceilDiv(new(big.Int).Sub(t, val), sb)
		}
		// First j >= 1 at which val + j*s leaves [lo, hi].
		var jWrap *big.Int
		if s > 0 {
			jWrap = new(big.Int).Div(new(big.Int).Sub(hi, val), sb)
		} else {
			jWrap = new(big.Int).Div(new(big.Int).Sub(val, lo), new(big.Int).Neg(sb))
		}
		jWrap.Add(jWrap, big.NewInt(1))
		if jFlip != nil && jFlip.Cmp(jWrap) < 0 {
			k.Add(k, jFlip)
			return tripFromIndex(k, off)
		}
		// Advance to the wrap point and fold back into the domain.
		k.Add(k, jWrap)
		val.Add(val, new(big.Int).Mul(jWrap, sb))
		if s > 0 {
			val.Sub(val, mod)
		} else {
			val.Add(val, mod)
		}
	}
	return 0, TripUnknown
}

// ceilDiv returns ceil(a/b) for b > 0, never less than 1.
func ceilDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	if r.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	if q.Cmp(big.NewInt(1)) < 0 {
		q.SetInt64(1)
	}
	return q
}

// tripFromIndex converts an evaluation index k (= n-1+off) into the
// 1-based trip count, guarding against int64 overflow.
func tripFromIndex(k *big.Int, off int64) (int64, TripKind) {
	n := new(big.Int).Sub(k, big.NewInt(off))
	n.Add(n, big.NewInt(1))
	if !n.IsInt64() {
		return 0, TripUnknown
	}
	return n.Int64(), TripFinite
}

// AddRec is an affine add-recurrence {Start,+,Step}: a loop-header phi with
// a constant initial value from the preheader and a constant-step add from
// the latch.
type AddRec struct {
	Phi   *ir.Instr
	Next  *ir.Instr // the add feeding the backedge
	Start int64
	Step  int64
	Bits  int
}

// LoopTrips is the closed-form trip information of one natural loop.
type LoopTrips struct {
	Loop *ir.Loop
	Kind TripKind
	// BodyTrips is the number of body executions per loop entry and
	// HeaderExecs the number of header executions (BodyTrips+1 for
	// header-exiting "while" loops, equal for latch-exiting rotated loops).
	// Both are valid only when Kind == TripFinite.
	BodyTrips   int64
	HeaderExecs int64
	HeaderExit  bool      // exit test in the header rather than the latch
	Exiting     *ir.Block // the unique exiting block the count was derived from
	IV          AddRec    // the controlling induction variable
	NoWrap      bool      // the IV provably never wraps while the loop runs
}

// SCEV holds the per-function scalar-evolution results: the recognized
// add-recurrences and the per-loop closed-form trip counts.
type SCEV struct {
	fn        *ir.Func
	dt        *ir.DomTree
	loops     []*ir.Loop
	recs      map[*ir.Instr]AddRec
	trips     map[*ir.Loop]*LoopTrips
	innermost map[*ir.Block]*ir.Loop
}

// ComputeSCEV analyzes f's natural loops over the dominator tree and
// returns the scalar-evolution results.
func ComputeSCEV(f *ir.Func) *SCEV {
	s := &SCEV{
		fn:        f,
		recs:      make(map[*ir.Instr]AddRec),
		trips:     make(map[*ir.Loop]*LoopTrips),
		innermost: make(map[*ir.Block]*ir.Loop),
	}
	if len(f.Blocks) == 0 {
		return s
	}
	s.dt = ir.NewDomTree(f)
	s.loops = ir.FindLoops(f, s.dt)
	for _, b := range f.Blocks {
		var best *ir.Loop
		for _, l := range s.loops {
			if l.Contains(b) && (best == nil || len(l.Body) < len(best.Body)) {
				best = l
			}
		}
		if best != nil {
			s.innermost[b] = best
		}
	}
	for _, l := range s.loops {
		s.analyzeLoop(l)
	}
	return s
}

// Loops returns the natural loops of the analyzed function.
func (s *SCEV) Loops() []*ir.Loop { return s.loops }

// Dom returns the dominator tree the analysis was computed over.
func (s *SCEV) Dom() *ir.DomTree { return s.dt }

// AddRecOf returns the recurrence a loop-header phi evolves as.
func (s *SCEV) AddRecOf(phi *ir.Instr) (AddRec, bool) {
	r, ok := s.recs[phi]
	return r, ok
}

// TripsOf returns the trip information of l (never nil for loops returned
// by Loops; Kind is TripUnknown when no closed form was derived).
func (s *SCEV) TripsOf(l *ir.Loop) *LoopTrips {
	if t, ok := s.trips[l]; ok {
		return t
	}
	return &LoopTrips{Loop: l, Kind: TripUnknown}
}

// InnermostLoop returns the smallest loop containing b, or nil.
func (s *SCEV) InnermostLoop(b *ir.Block) *ir.Loop { return s.innermost[b] }

func (s *SCEV) analyzeLoop(l *ir.Loop) {
	tr := &LoopTrips{Loop: l, Kind: TripUnknown}
	s.trips[l] = tr
	ph := l.Preheader()
	latch := l.SingleLatch()
	if ph == nil || latch == nil {
		return
	}
	var recs []AddRec
	for _, phi := range l.Header.Phis() {
		vp, okP := phi.PhiIncoming(ph)
		vl, okL := phi.PhiIncoming(latch)
		if !okP || !okL {
			continue
		}
		init, ok := ir.IsConst(vp)
		if !ok {
			continue
		}
		add, isI := vl.(*ir.Instr)
		if !isI || add.Op != ir.OpAdd || !l.Contains(add.Parent()) {
			continue
		}
		var stepV ir.Value
		switch {
		case add.Args[0] == ir.Value(phi):
			stepV = add.Args[1]
		case add.Args[1] == ir.Value(phi):
			stepV = add.Args[0]
		}
		if stepV == nil {
			continue
		}
		step, ok := ir.IsConst(stepV)
		if !ok {
			continue
		}
		bits := 64
		if t := phi.Ty; t.IsInt() {
			bits = t.Bits
		}
		rec := AddRec{Phi: phi, Next: add, Start: init, Step: step, Bits: bits}
		s.recs[phi] = rec
		recs = append(recs, rec)
	}
	ex := l.ExitingBlocks()
	if len(ex) != 1 {
		return
	}
	e := ex[0]
	t := e.Term()
	if t == nil || !t.IsConditionalBr() {
		return
	}
	in0, in1 := l.Contains(t.Blocks[0]), l.Contains(t.Blocks[1])
	if in0 == in1 {
		return
	}
	cmp, ok := t.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return
	}
	bound, ok := ir.IsConst(cmp.Args[1])
	if !ok {
		return
	}
	bits := 64
	if ct := cmp.Args[0].Type(); ct.IsInt() {
		bits = ct.Bits
	}
	exitWhen := !in0
	for _, rec := range recs {
		var onNext bool
		switch cmp.Args[0] {
		case ir.Value(rec.Phi):
			onNext = false
		case ir.Value(rec.Next):
			onNext = true
		default:
			continue
		}
		if e == latch {
			// Rotated (do-while) form, including single-block loops where
			// header == latch: the test runs once per body execution.
			n, kind := ExitCount(rec.Start, rec.Step, bound, bits, cmp.Pred, onNext, exitWhen)
			tr.Kind = kind
			tr.Exiting, tr.IV, tr.HeaderExit = e, rec, false
			if kind == TripFinite {
				tr.BodyTrips, tr.HeaderExecs = n, n
				tr.NoWrap = recNoWrap(rec, n)
			}
			return
		}
		if e == l.Header && !onNext {
			// While form: the header tests the phi before each body run; the
			// exiting evaluation is the last header execution.
			h, kind := ExitCount(rec.Start, rec.Step, bound, bits, cmp.Pred, false, exitWhen)
			tr.Kind = kind
			tr.Exiting, tr.IV, tr.HeaderExit = e, rec, true
			if kind == TripFinite {
				tr.HeaderExecs, tr.BodyTrips = h, h-1
				tr.NoWrap = recNoWrap(rec, h)
			}
			return
		}
	}
}

// recNoWrap reports whether the IV's phi values over execs header
// executions (indices 0..execs-1) stay inside the canonical signed range,
// i.e. the mathematical affine form never wraps.
func recNoWrap(rec AddRec, execs int64) bool {
	ty := ir.IntType(rec.Bits)
	last := new(big.Int).Mul(big.NewInt(rec.Step), big.NewInt(execs-1))
	last.Add(last, big.NewInt(ty.TruncVal(rec.Start)))
	return last.Cmp(big.NewInt(ty.MinVal())) >= 0 && last.Cmp(big.NewInt(ty.MaxVal())) <= 0
}

// PhiRange returns the exact interval a counted loop's IV phi ranges over
// (including the final value observed at the exiting evaluation), when the
// loop's trip count is known and the IV provably does not wrap.
func (s *SCEV) PhiRange(phi *ir.Instr) (Interval, bool) {
	rec, ok := s.recs[phi]
	if !ok {
		return Interval{}, false
	}
	l := s.innermost[phi.Parent()]
	if l == nil || l.Header != phi.Parent() {
		return Interval{}, false
	}
	tr := s.trips[l]
	if tr == nil || tr.Kind != TripFinite || !tr.NoWrap || tr.IV.Phi != phi {
		return Interval{}, false
	}
	start := ir.IntType(rec.Bits).TruncVal(rec.Start)
	last := start + (tr.HeaderExecs-1)*rec.Step // in-range per NoWrap
	if last < start {
		return Interval{Lo: last, Hi: start}, true
	}
	return Interval{Lo: start, Hi: last}, true
}
