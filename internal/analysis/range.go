package analysis

import (
	"math"
	"math/big"

	"autophase/internal/ir"
)

// This file is the value-range layer: a flow-insensitive interval fixpoint
// over the SSA values of a function (with widening for termination), an
// exact override for counted-loop induction variables from the SCEV layer,
// and a flow-sensitive refinement query At(v, b) that sharpens intervals
// with the branch conditions dominating b. Soundness contract: every value
// the interpreter can produce for v lies inside Of(v) (and inside At(v, b)
// whenever control reaches b). Intervals are over the raw int64
// representation the interpreter carries — which is canonical for
// TruncVal-ed results but may be non-canonical for e.g. icmp results
// (stored as raw 1 even at i1, whose canonical values are -1 and 0).

// Interval is an inclusive integer interval [Lo, Hi].
type Interval struct {
	Lo, Hi int64
}

// Full is the interval of all int64 values (the lattice top).
var Full = Interval{math.MinInt64, math.MaxInt64}

// Point returns the single-value interval [v, v].
func Point(v int64) Interval { return Interval{v, v} }

// IsFull reports whether i is the full interval.
func (i Interval) IsFull() bool { return i == Full }

// IsPoint reports whether i contains exactly one value.
func (i Interval) IsPoint() bool { return i.Lo == i.Hi }

// Contains reports whether v lies in i.
func (i Interval) Contains(v int64) bool { return i.Lo <= v && v <= i.Hi }

// ContainsIvl reports whether o is a subset of i.
func (i Interval) ContainsIvl(o Interval) bool { return i.Lo <= o.Lo && o.Hi <= i.Hi }

// Hull returns the smallest interval containing both i and o.
func (i Interval) Hull(o Interval) Interval {
	if o.Lo < i.Lo {
		i.Lo = o.Lo
	}
	if o.Hi > i.Hi {
		i.Hi = o.Hi
	}
	return i
}

// Intersect returns the intersection, reporting false when it is empty.
func (i Interval) Intersect(o Interval) (Interval, bool) {
	if o.Lo > i.Lo {
		i.Lo = o.Lo
	}
	if o.Hi < i.Hi {
		i.Hi = o.Hi
	}
	return i, i.Lo <= i.Hi
}

// String renders the interval.
func (i Interval) String() string {
	if i.IsFull() {
		return "[-inf, +inf]"
	}
	return "[" + itoa(i.Lo) + ", " + itoa(i.Hi) + "]"
}

func itoa(v int64) string { return big.NewInt(v).String() }

// typeInterval is the canonical (post-TruncVal) range of an integer type.
func typeInterval(ty *ir.Type) Interval {
	if !ty.IsInt() {
		return Full
	}
	return Interval{ty.MinVal(), ty.MaxVal()}
}

// widenThreshold is how many strict interval growths a value may undergo
// before widening snaps the moving bound to the int64 extreme.
const widenThreshold = 16

// refineDepth bounds the operand re-evaluation recursion of At.
const refineDepth = 6

// Ranges holds the per-function value-range results.
type Ranges struct {
	fn      *ir.Func
	scev    *SCEV
	of      map[ir.Value]Interval
	grown   map[ir.Value]int
	pinned  map[ir.Value]bool
	conds   map[*ir.Block][]pathCond
	callRet func(*ir.Instr) Interval
}

// pathCond is a branch condition known to hold on entry to a block: the
// icmp pred(x, bound) evaluated to holds.
type pathCond struct {
	x     ir.Value
	pred  ir.CmpPred
	bound int64
	bits  int
	holds bool
}

// ComputeRanges runs the interval analysis on f with unconstrained
// parameters.
func ComputeRanges(f *ir.Func) *Ranges { return ComputeRangesHint(f, nil) }

// ComputeRangesHint runs the interval analysis with per-parameter seed
// intervals (indexed by parameter position; missing entries mean Full). The
// hints let callers model a known calling context, e.g. the interpreter
// invoking main with all-zero arguments.
func ComputeRangesHint(f *ir.Func, hints []Interval) *Ranges {
	return ComputeRangesCtx(f, hints, nil)
}

// ComputeRangesCtx additionally takes a callee-return hook consulted for
// every OpCall: it must return a sound interval for the raw value the call
// may return (Full when unknown). A nil hook keeps calls at Full. This is
// how the interprocedural static-profile layer threads callee result ranges
// back into the caller without the range analysis knowing about summaries.
func ComputeRangesCtx(f *ir.Func, hints []Interval, callRet func(*ir.Instr) Interval) *Ranges {
	r := &Ranges{
		fn:     f,
		of:     make(map[ir.Value]Interval),
		grown:  make(map[ir.Value]int),
		pinned: make(map[ir.Value]bool),
		conds:  make(map[*ir.Block][]pathCond),
	}
	r.callRet = callRet
	if len(f.Blocks) == 0 {
		return r
	}
	for i, p := range f.Params {
		if i < len(hints) {
			r.of[p] = hints[i]
		} else {
			r.of[p] = Full
		}
		r.pinned[p] = true
	}
	r.scev = ComputeSCEV(f)
	// Counted-loop IVs get their exact closed-form hull and are pinned: the
	// generic phi transfer would also admit the one-past-the-exit value the
	// phi never actually takes.
	for _, l := range r.scev.Loops() {
		for _, phi := range l.Header.Phis() {
			if iv, ok := r.scev.PhiRange(phi); ok {
				r.of[phi] = iv
				r.pinned[phi] = true
			}
		}
	}
	Propagate(f, func(b *ir.Block) bool {
		changed := false
		for _, in := range b.Instrs {
			if in.Ty.IsVoid() || !in.Ty.IsInt() || r.pinned[in] {
				continue
			}
			if r.update(in, r.eval(in, r.Of)) {
				changed = true
			}
		}
		return changed
	})
	return r
}

// SCEV returns the scalar-evolution results the analysis was built over.
func (r *Ranges) SCEV() *SCEV { return r.scev }

// Of returns the flow-insensitive interval of v. Non-integer and untracked
// values are Full.
func (r *Ranges) Of(v ir.Value) Interval {
	switch x := v.(type) {
	case *ir.Const:
		return Point(x.Val)
	case *ir.Undef:
		// The interpreter evaluates undef as 0.
		return Point(0)
	}
	if iv, ok := r.of[v]; ok {
		return iv
	}
	return Full
}

// update monotonically grows v's stored interval toward nv, widening after
// repeated growth, and reports whether the interval changed.
func (r *Ranges) update(v ir.Value, nv Interval) bool {
	old, seen := r.of[v]
	if !seen {
		r.of[v] = nv
		return true
	}
	merged := old.Hull(nv)
	if merged == old {
		return false
	}
	r.grown[v]++
	if r.grown[v] > widenThreshold {
		if merged.Lo < old.Lo {
			merged.Lo = math.MinInt64
		}
		if merged.Hi > old.Hi {
			merged.Hi = math.MaxInt64
		}
	}
	r.of[v] = merged
	return true
}

// eval computes the transfer function of one instruction from its operand
// intervals (looked up through get, so At can re-evaluate with refined
// operands).
func (r *Ranges) eval(in *ir.Instr, get func(ir.Value) Interval) Interval {
	ty := in.Ty
	switch {
	case in.Op == ir.OpPhi:
		out := Interval{math.MaxInt64, math.MinInt64} // empty; hull of nothing
		for i := range in.Args {
			if in.Args[i] == nil {
				return typeInterval(ty)
			}
			iv := get(in.Args[i])
			if i == 0 {
				out = iv
			} else {
				out = out.Hull(iv)
			}
		}
		if len(in.Args) == 0 {
			return typeInterval(ty)
		}
		return out
	case in.Op.IsBinary():
		return evalBinaryIvl(in.Op, ty, get(in.Args[0]), get(in.Args[1]))
	case in.Op == ir.OpICmp:
		bits := 64
		if t := in.Args[0].Type(); t.IsInt() {
			bits = t.Bits
		}
		a, b := get(in.Args[0]), get(in.Args[1])
		switch decidePred(in.Pred, a, b, bits) {
		case +1:
			return Point(1) // the interpreter stores icmp results as raw 1
		case -1:
			return Point(0)
		}
		return Interval{0, 1}
	case in.Op == ir.OpSelect:
		c := get(in.Args[0])
		t, f := get(in.Args[1]), get(in.Args[2])
		if !c.Contains(0) {
			return t
		}
		if c == Point(0) {
			return f
		}
		return t.Hull(f)
	case in.Op.IsCast():
		return evalCastIvl(in.Op, in.Args[0].Type(), ty, get(in.Args[0]))
	case in.Op == ir.OpLoad:
		// Loads truncate to the loaded type, so the result is canonical.
		return typeInterval(ty)
	case in.Op == ir.OpCall:
		// Returned values travel raw (a callee may return a non-canonical
		// icmp bit), so not even the type bound applies — unless a
		// callee-return hook supplies a context-derived interval.
		if r.callRet != nil {
			return r.callRet(in)
		}
		return Full
	}
	return Full
}

// evalBinaryIvl is the interval transfer of ir.EvalBinary: compute the raw
// mathematical range in big.Int and keep it when the truncation to ty is the
// identity over it; otherwise fall back to the canonical type range.
func evalBinaryIvl(op ir.Op, ty *ir.Type, a, b Interval) Interval {
	if a.IsPoint() && b.IsPoint() {
		if (op == ir.OpSDiv || op == ir.OpSRem) && b.Lo == 0 {
			// The interpreter traps here; EvalBinary's saturation value is
			// irrelevant but still a safe point to report.
			return Point(0)
		}
		return Point(ir.EvalBinary(op, ty, a.Lo, b.Lo))
	}
	al, ah := big.NewInt(a.Lo), big.NewInt(a.Hi)
	bl, bh := big.NewInt(b.Lo), big.NewInt(b.Hi)
	var lo, hi *big.Int
	switch op {
	case ir.OpAdd:
		lo, hi = new(big.Int).Add(al, bl), new(big.Int).Add(ah, bh)
	case ir.OpSub:
		lo, hi = new(big.Int).Sub(al, bh), new(big.Int).Sub(ah, bl)
	case ir.OpMul:
		lo = new(big.Int).Mul(al, bl)
		hi = new(big.Int).Set(lo)
		for _, p := range []*big.Int{
			new(big.Int).Mul(al, bh),
			new(big.Int).Mul(ah, bl),
			new(big.Int).Mul(ah, bh),
		} {
			if p.Cmp(lo) < 0 {
				lo = p
			}
			if p.Cmp(hi) > 0 {
				hi = p
			}
		}
	case ir.OpAnd:
		// A non-negative operand bounds the result on its own: when m >= 0
		// the mask clears the sign bit and every bit above m's highest, so
		// the raw x & m lies in [0, m] for ANY x — the masking idiom
		// (x & 63) needs no knowledge of x. Sound only while truncation to
		// ty is the identity over the bound.
		m := int64(-1)
		if a.Lo >= 0 {
			m = a.Hi
		}
		if b.Lo >= 0 && (m < 0 || b.Hi < m) {
			m = b.Hi
		}
		if m >= 0 {
			out := Interval{0, m}
			if typeInterval(ty).ContainsIvl(out) {
				return out
			}
		}
		return typeInterval(ty)
	case ir.OpSRem:
		// rem keeps the dividend's sign with |rem| < |divisor| — but the
		// saturation cases make a precise bound fiddly; the canonical range
		// is already sound.
		return typeInterval(ty)
	default:
		return typeInterval(ty)
	}
	tlo, thi := big.NewInt(ty.MinVal()), big.NewInt(ty.MaxVal())
	if lo.Cmp(tlo) >= 0 && hi.Cmp(thi) <= 0 {
		return Interval{lo.Int64(), hi.Int64()}
	}
	return typeInterval(ty)
}

// evalCastIvl is the interval transfer of ir.EvalCast.
func evalCastIvl(op ir.Op, from, to *ir.Type, a Interval) Interval {
	if a.IsPoint() {
		return Point(ir.EvalCast(op, from, to, a.Lo))
	}
	switch op {
	case ir.OpTrunc:
		if typeInterval(to).ContainsIvl(a) {
			return a
		}
		return typeInterval(to)
	case ir.OpZExt:
		if !from.IsInt() || from.Bits >= 64 {
			return a
		}
		if a.Lo >= 0 && uint64(a.Hi) <= from.Mask() {
			return a
		}
		return Interval{0, int64(from.Mask())}
	case ir.OpSExt:
		if typeInterval(from).ContainsIvl(a) {
			return a
		}
		return typeInterval(from)
	case ir.OpBitCast:
		return a
	}
	return Full
}

// decidePred resolves pred(a, b) over intervals: +1 when it must hold, -1
// when it cannot, 0 when undecided. Signed and equality predicates compare
// the raw int64s (matching ir.CmpPred.Eval); unsigned ones are only decided
// when both intervals survive the bit mask unchanged.
func decidePred(pred ir.CmpPred, a, b Interval, bits int) int {
	switch pred {
	case ir.CmpEQ:
		if a.IsPoint() && a == b {
			return +1
		}
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return -1
		}
		return 0
	case ir.CmpNE:
		switch decidePred(ir.CmpEQ, a, b, bits) {
		case +1:
			return -1
		case -1:
			return +1
		}
		return 0
	case ir.CmpSLT:
		if a.Hi < b.Lo {
			return +1
		}
		if a.Lo >= b.Hi {
			return -1
		}
		return 0
	case ir.CmpSLE:
		if a.Hi <= b.Lo {
			return +1
		}
		if a.Lo > b.Hi {
			return -1
		}
		return 0
	case ir.CmpSGT:
		return -decidePred(ir.CmpSLE, a, b, bits)
	case ir.CmpSGE:
		return -decidePred(ir.CmpSLT, a, b, bits)
	case ir.CmpULT, ir.CmpULE, ir.CmpUGT, ir.CmpUGE:
		if !maskIdentity(a, bits) || !maskIdentity(b, bits) {
			return 0
		}
		switch pred {
		case ir.CmpULT:
			return decidePred(ir.CmpSLT, a, b, bits)
		case ir.CmpULE:
			return decidePred(ir.CmpSLE, a, b, bits)
		case ir.CmpUGT:
			return decidePred(ir.CmpSGT, a, b, bits)
		default:
			return decidePred(ir.CmpSGE, a, b, bits)
		}
	}
	return 0
}

// maskIdentity reports whether masking to bits leaves every value of a
// unchanged, so an unsigned comparison coincides with the signed one.
func maskIdentity(a Interval, bits int) bool {
	if bits >= 64 {
		return a.Lo >= 0
	}
	return a.Lo >= 0 && uint64(a.Hi) <= (uint64(1)<<uint(bits))-1
}

// At returns the interval of v at block b, refined by the branch conditions
// that dominate b. It is always a subset of Of(v).
func (r *Ranges) At(v ir.Value, b *ir.Block) Interval {
	return r.refine(v, r.condsAt(b), refineDepth)
}

// condsAt collects (and caches) the path conditions holding on entry to b:
// for every block d on b's dominator chain with a unique predecessor ending
// in a conditional branch on an icmp-vs-constant, the branch edge into d
// decides the icmp.
func (r *Ranges) condsAt(b *ir.Block) []pathCond {
	if cs, ok := r.conds[b]; ok {
		return cs
	}
	var cs []pathCond
	if r.scev != nil && r.scev.Dom() != nil {
		dt := r.scev.Dom()
		for d := b; d != nil; d = dt.IDom(d) {
			preds := d.Preds()
			if len(preds) != 1 {
				continue
			}
			t := preds[0].Term()
			if t == nil || !t.IsConditionalBr() || t.Blocks[0] == t.Blocks[1] {
				continue
			}
			cmp, ok := t.Args[0].(*ir.Instr)
			if !ok || cmp.Op != ir.OpICmp {
				continue
			}
			bound, ok := ir.IsConst(cmp.Args[1])
			if !ok {
				continue
			}
			bits := 64
			if ct := cmp.Args[0].Type(); ct.IsInt() {
				bits = ct.Bits
			}
			cs = append(cs, pathCond{
				x:     cmp.Args[0],
				pred:  cmp.Pred,
				bound: bound,
				bits:  bits,
				holds: t.Blocks[0] == d,
			})
		}
	}
	r.conds[b] = cs
	return cs
}

// refine narrows v's interval under the given path conditions, recursing
// into operand re-evaluation up to depth.
func (r *Ranges) refine(v ir.Value, cs []pathCond, depth int) Interval {
	base := r.Of(v)
	for _, c := range cs {
		if c.x != v {
			continue
		}
		if cut, ok := condInterval(c, base); ok {
			if narrowed, nonEmpty := base.Intersect(cut); nonEmpty {
				base = narrowed
			}
		}
	}
	if in, ok := v.(*ir.Instr); ok && depth > 0 && in.Ty.IsInt() && !r.pinned[v] && in.Op != ir.OpPhi {
		re := r.eval(in, func(a ir.Value) Interval { return r.refine(a, cs, depth-1) })
		if narrowed, nonEmpty := base.Intersect(re); nonEmpty {
			base = narrowed
		}
	}
	return base
}

// condInterval converts a path condition on x into an interval constraint,
// when one exists that is sound over base (the values x may take).
func condInterval(c pathCond, base Interval) (Interval, bool) {
	pred := c.pred
	if !c.holds {
		pred = pred.Invert()
	}
	switch pred {
	case ir.CmpEQ:
		return Point(c.bound), true
	case ir.CmpNE:
		return Interval{}, false // not expressible as one interval
	case ir.CmpSLT:
		if c.bound == math.MinInt64 {
			return Interval{}, false
		}
		return Interval{math.MinInt64, c.bound - 1}, true
	case ir.CmpSLE:
		return Interval{math.MinInt64, c.bound}, true
	case ir.CmpSGT:
		if c.bound == math.MaxInt64 {
			return Interval{}, false
		}
		return Interval{c.bound + 1, math.MaxInt64}, true
	case ir.CmpSGE:
		return Interval{c.bound, math.MaxInt64}, true
	case ir.CmpULT, ir.CmpULE:
		// Unsigned upper bounds translate to signed ones only when x's
		// values coincide with their masked form.
		if !maskIdentity(base, c.bits) {
			return Interval{}, false
		}
		bu, ok := maskedBound(c.bound, c.bits)
		if !ok {
			return Interval{}, false
		}
		if pred == ir.CmpULT {
			if bu == 0 {
				return Interval{}, false // x < 0 unsigned: impossible
			}
			return Interval{0, bu - 1}, true
		}
		return Interval{0, bu}, true
	}
	// UGT/UGE refinements are rarely profitable here; skip them.
	return Interval{}, false
}

// maskedBound returns the bits-masked value of bound as a non-negative
// int64, when it fits.
func maskedBound(bound int64, bits int) (int64, bool) {
	if bits >= 64 {
		if bound < 0 {
			return 0, false
		}
		return bound, true
	}
	return int64(uint64(bound) & ((uint64(1) << uint(bits)) - 1)), true
}
