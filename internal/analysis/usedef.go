package analysis

import "autophase/internal/ir"

// Use is one operand slot referencing a value.
type Use struct {
	User *ir.Instr // the instruction consuming the value
	Idx  int       // operand index within User.Args
}

// UseDef holds the def-use and use-def chains of a function, built in one
// flow-insensitive walk. In SSA these chains are exact: each tracked value
// has a single definition.
type UseDef struct {
	fn   *ir.Func
	uses map[ir.Value][]Use
}

// ComputeUseDef builds the chains for f.
func ComputeUseDef(f *ir.Func) *UseDef {
	ud := &UseDef{fn: f, uses: make(map[ir.Value][]Use)}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if trackedValue(a) {
					ud.uses[a] = append(ud.uses[a], Use{User: in, Idx: i})
				}
			}
		}
	}
	return ud
}

// UsesOf returns the operand slots referencing v, in block order.
func (ud *UseDef) UsesOf(v ir.Value) []Use { return ud.uses[v] }

// NumUses returns the number of operand slots referencing v.
func (ud *UseDef) NumUses(v ir.Value) int { return len(ud.uses[v]) }

// DefOf returns the defining instruction of v, or nil when v is not an
// instruction result (constants, params, globals, undef have no def site).
func (ud *UseDef) DefOf(v ir.Value) *ir.Instr {
	if in, ok := v.(*ir.Instr); ok {
		return in
	}
	return nil
}

// SingleUser returns the sole using instruction of v, or nil when v has
// zero or multiple users.
func (ud *UseDef) SingleUser(v ir.Value) *ir.Instr {
	us := ud.uses[v]
	if len(us) == 0 {
		return nil
	}
	first := us[0].User
	for _, u := range us[1:] {
		if u.User != first {
			return nil
		}
	}
	return first
}
