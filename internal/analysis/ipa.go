package analysis

import "autophase/internal/ir"

// verifyIPA runs the interprocedural lint layer: checks that need the call
// graph or the effect summaries and therefore only make sense on a module
// whose per-function structure already verified clean.
func verifyIPA(c *collector, m *ir.Module) {
	s := ComputeEffects(m)
	cg := s.CG

	// ipa.unreachable-func: a function main can never call (directly or
	// transitively) is dead weight — and dead weight still counts into the
	// feature histograms and cycle estimates.
	if entry := m.Func("main"); entry != nil {
		reach := cg.ReachableFrom(entry)
		for _, f := range m.Funcs {
			if !reach[f] {
				c.fn = f
				c.warnf(CheckUnreachableFunc, nil, nil, "function is unreachable from @main")
			}
		}
	}

	for _, f := range m.Funcs {
		c.fn = f
		// ipa.infinite-recursion: the function is recursive and every path
		// from entry performs a recursive call before any return, so every
		// invocation descends again — the recursion can never bottom out.
		if cg.Recursive(f) && mustRecurse(cg, f) {
			c.warnf(CheckInfiniteRecursion, nil, nil,
				"every path from entry recurses before any return")
		}
		// ipa.pure-result-unused: the call computes a value nobody reads
		// and the callee has no effects, so the whole call is dead work.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Callee == nil || in.Ty.IsVoid() {
					continue
				}
				ce := s.Of(in.Callee)
				if ce != nil && ce.Pure() && f.UseCount(in) == 0 {
					c.warnf(CheckPureResultUnused, b, in,
						"result of call to pure @%s is never used", in.Callee.Name)
				}
			}
		}
	}
	c.fn = nil

	// ipa.global-never-read: no function in the module ever loads from the
	// global. Proven only when no summary reads through an unresolvable
	// pointer — one unknown read anywhere could reach any global.
	anyUnknownRead := false
	read := make(map[*ir.Global]bool)
	for _, f := range m.Funcs {
		e := s.Of(f)
		anyUnknownRead = anyUnknownRead || e.ReadsUnknown || e.ReadsParams
		for g := range e.ReadsGlobals {
			read[g] = true
		}
	}
	if !anyUnknownRead {
		for _, g := range m.Globals {
			if !read[g] {
				c.warnf(CheckGlobalNeverRead, nil, nil, "global @%s is never read", g.Name)
			}
		}
	}
}

// mustRecurse reports whether every execution of f that reaches a return
// must first execute a call inside f's own call-graph component. Blocks are
// explored from the entry; a block whose in-component call precedes any
// return "blocks" the walk — execution past that point has already
// recursed. If no return is reachable through unblocked blocks, every
// invocation recurses.
func mustRecurse(cg *CallGraph, f *ir.Func) bool {
	n := cg.ByFunc[f]
	if n == nil || len(f.Blocks) == 0 {
		return false
	}
	inComp := func(callee *ir.Func) bool {
		cn := cg.ByFunc[callee]
		return cn != nil && cn.SCC == n.SCC
	}
	seen := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		blocked := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet {
				return false // a return precedes any recursive call
			}
			if in.Op == ir.OpCall && in.Callee != nil && inComp(in.Callee) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, succ := range b.Succs() {
			if !seen[succ] {
				seen[succ] = true
				work = append(work, succ)
			}
		}
	}
	return true
}
