package analysis

import (
	"fmt"
	"sort"
	"sync"

	"autophase/internal/ir"
)

// Effects is the externally observable behavior summary of one function:
// which memory outside its own frame it may read or write, whether it
// prints, whether it may trap, and whether it may fail to terminate. Reads
// and writes of the function's own allocas are deliberately invisible —
// they cannot be observed by any caller.
type Effects struct {
	Fn *ir.Func

	// ReadsGlobals / WritesGlobals are the module globals the function (or
	// anything it transitively calls) may load from / store to.
	ReadsGlobals  map[*ir.Global]bool
	WritesGlobals map[*ir.Global]bool

	// ReadsParams / WritesParams report accesses to caller-owned memory
	// reached through a pointer-typed formal parameter.
	ReadsParams  bool
	WritesParams bool

	// ReadsUnknown / WritesUnknown report accesses through pointers whose
	// object could not be resolved; they make the summary maximally
	// conservative on that side.
	ReadsUnknown  bool
	WritesUnknown bool

	// Prints reports any OpPrint (an I/O side effect).
	Prints bool

	// MayPanic reports that executing the function may trap. Its triggers
	// mirror the NoTrap attribute contract in internal/passes exactly:
	// a div/rem whose divisor is not a provably non-zero constant, or a
	// call to a may-panic (or unknown) callee.
	MayPanic bool

	// MayNotTerminate reports that the function may run forever: it sits
	// in a recursive call-graph component, contains a loop without a
	// closed-form finite trip count, or calls such a function.
	MayNotTerminate bool
}

// ReadsMemory reports whether the function may read memory visible to a
// caller (globals, caller objects via pointer params, or unknown).
func (e *Effects) ReadsMemory() bool {
	return len(e.ReadsGlobals) > 0 || e.ReadsParams || e.ReadsUnknown
}

// WritesMemory reports whether the function may write memory visible to a
// caller.
func (e *Effects) WritesMemory() bool {
	return len(e.WritesGlobals) > 0 || e.WritesParams || e.WritesUnknown
}

// Pure reports that a call to the function can be deleted when its result
// is unused: no visible writes, no I/O, no trap, guaranteed termination.
func (e *Effects) Pure() bool {
	return !e.WritesMemory() && !e.Prints && !e.MayPanic && !e.MayNotTerminate
}

// String renders the summary compactly, for diagnostics and tests.
func (e *Effects) String() string {
	s := "{"
	if n := sortedGlobalNames(e.ReadsGlobals); len(n) > 0 {
		s += fmt.Sprintf("reads=%v ", n)
	}
	if n := sortedGlobalNames(e.WritesGlobals); len(n) > 0 {
		s += fmt.Sprintf("writes=%v ", n)
	}
	for _, f := range []struct {
		on   bool
		name string
	}{
		{e.ReadsParams, "readsParams"}, {e.WritesParams, "writesParams"},
		{e.ReadsUnknown, "readsUnknown"}, {e.WritesUnknown, "writesUnknown"},
		{e.Prints, "prints"}, {e.MayPanic, "mayPanic"},
		{e.MayNotTerminate, "mayNotTerminate"},
	} {
		if f.on {
			s += f.name + " "
		}
	}
	if len(s) > 1 {
		s = s[:len(s)-1]
	}
	return s + "}"
}

func sortedGlobalNames(gs map[*ir.Global]bool) []string {
	var names []string
	for g := range gs {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}

func (e *Effects) equal(o *Effects) bool {
	if o == nil {
		return false
	}
	if len(e.ReadsGlobals) != len(o.ReadsGlobals) || len(e.WritesGlobals) != len(o.WritesGlobals) {
		return false
	}
	for g := range e.ReadsGlobals {
		if !o.ReadsGlobals[g] {
			return false
		}
	}
	for g := range e.WritesGlobals {
		if !o.WritesGlobals[g] {
			return false
		}
	}
	return e.ReadsParams == o.ReadsParams && e.WritesParams == o.WritesParams &&
		e.ReadsUnknown == o.ReadsUnknown && e.WritesUnknown == o.WritesUnknown &&
		e.Prints == o.Prints && e.MayPanic == o.MayPanic &&
		e.MayNotTerminate == o.MayNotTerminate
}

func (e *Effects) clone() *Effects {
	c := *e
	c.ReadsGlobals = make(map[*ir.Global]bool, len(e.ReadsGlobals))
	for g := range e.ReadsGlobals {
		c.ReadsGlobals[g] = true
	}
	c.WritesGlobals = make(map[*ir.Global]bool, len(e.WritesGlobals))
	for g := range e.WritesGlobals {
		c.WritesGlobals[g] = true
	}
	return &c
}

// Summaries holds the per-function effect summaries of one module instance
// together with the call graph they were computed over. The structure is
// pointer-rich (it references the module's *ir.Func/*ir.Global values
// directly), so it must not outlive pass mutations of the module — use
// ModuleEffects for a fingerprint-keyed, reuse-safe view.
type Summaries struct {
	CG     *CallGraph
	byFunc map[*ir.Func]*Effects
}

// Of returns f's summary, or nil for a function outside the module.
func (s *Summaries) Of(f *ir.Func) *Effects { return s.byFunc[f] }

// ComputeEffects computes effect summaries for every function in m,
// bottom-up over the call-graph SCC DAG with a fixpoint inside each
// recursive component.
func ComputeEffects(m *ir.Module) *Summaries {
	cg := ComputeCallGraph(m)
	s := &Summaries{CG: cg, byFunc: make(map[*ir.Func]*Effects, len(m.Funcs))}

	// Base effects: everything except call propagation. These never change
	// across fixpoint rounds, so compute them once per function.
	base := make(map[*ir.Func]*Effects, len(m.Funcs))
	for _, n := range cg.Nodes {
		base[n.Fn] = baseEffects(n.Fn)
		s.byFunc[n.Fn] = base[n.Fn].clone()
	}

	// SCCs are emitted callees-first, so by the time a component is
	// processed every summary it depends on outside the component is final.
	// Inside a component the merge is monotone (bits and sets only grow),
	// so iterating to a fixpoint terminates.
	for _, scc := range cg.SCCs {
		recursive := len(scc) > 1 || scc[0].SelfLoop
		if recursive {
			for _, n := range scc {
				s.byFunc[n.Fn].MayNotTerminate = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				e := base[n.Fn].clone()
				e.MayNotTerminate = e.MayNotTerminate || recursive
				al := ComputeAliases(n.Fn)
				for _, site := range n.Sites {
					mergeCall(e, s, al, site)
				}
				if !e.equal(s.byFunc[n.Fn]) {
					s.byFunc[n.Fn] = e
					changed = true
				}
			}
		}
	}
	return s
}

// baseEffects scans f's own instructions, ignoring calls (the fixpoint
// adds those) and classifying every memory access by its alias roots.
func baseEffects(f *ir.Func) *Effects {
	e := &Effects{
		Fn:            f,
		ReadsGlobals:  make(map[*ir.Global]bool),
		WritesGlobals: make(map[*ir.Global]bool),
	}
	al := ComputeAliases(f)
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			classifyAccess(e, al.RootsOf(in.Args[0]), false)
		case ir.OpStore:
			classifyAccess(e, al.RootsOf(in.Args[1]), true)
		case ir.OpMemset:
			classifyAccess(e, al.RootsOf(in.Args[0]), true)
		case ir.OpPrint:
			e.Prints = true
		case ir.OpSDiv, ir.OpSRem:
			// Mirrors deriveAttrs' NoTrap trigger bit for bit.
			if c, ok := ir.IsConst(in.Args[1]); !ok || c == 0 {
				e.MayPanic = true
			}
		}
	})
	// A loop without a provably finite trip count may spin forever.
	scev := ComputeSCEV(f)
	for _, l := range scev.Loops() {
		if t := scev.TripsOf(l); t == nil || t.Kind != TripFinite {
			e.MayNotTerminate = true
			break
		}
	}
	return e
}

// classifyAccess folds one memory access's root set into the summary.
// Alloca roots are the function's own frame and stay invisible; a param
// root through a non-pointer formal means the callee manufactured an
// address from an integer, which we cannot attribute to any object.
func classifyAccess(e *Effects, roots []Root, write bool) {
	if len(roots) == 0 {
		// Unresolvable (e.g. a phi cycle of undefs): stay conservative.
		e.setUnknown(write)
		return
	}
	for _, r := range roots {
		switch r.Kind {
		case RootAlloca:
			// Frame-local: invisible to callers.
		case RootGlobal:
			if write {
				e.WritesGlobals[r.Global] = true
			} else {
				e.ReadsGlobals[r.Global] = true
			}
		case RootParam:
			if r.Param.Ty.IsPtr() {
				if write {
					e.WritesParams = true
				} else {
					e.ReadsParams = true
				}
			} else {
				e.setUnknown(write)
			}
		default: // RootUndef, RootUnknown
			e.setUnknown(write)
		}
	}
}

func (e *Effects) setUnknown(write bool) {
	if write {
		e.WritesUnknown = true
	} else {
		e.ReadsUnknown = true
	}
}

// mergeCall folds the callee's summary into the caller's at one call site,
// rebinding the callee's param-mediated accesses to the actual arguments'
// roots in the caller.
func mergeCall(e *Effects, s *Summaries, al *Aliases, site *ir.Instr) {
	ce := s.byFunc[site.Callee]
	if ce == nil {
		// nil or detached callee: assume the worst on every axis, exactly
		// as deriveAttrs surrenders all three attributes.
		e.ReadsUnknown, e.WritesUnknown = true, true
		e.Prints, e.MayPanic, e.MayNotTerminate = true, true, true
		return
	}
	for g := range ce.ReadsGlobals {
		e.ReadsGlobals[g] = true
	}
	for g := range ce.WritesGlobals {
		e.WritesGlobals[g] = true
	}
	e.ReadsUnknown = e.ReadsUnknown || ce.ReadsUnknown
	e.WritesUnknown = e.WritesUnknown || ce.WritesUnknown
	e.Prints = e.Prints || ce.Prints
	e.MayPanic = e.MayPanic || ce.MayPanic
	e.MayNotTerminate = e.MayNotTerminate || ce.MayNotTerminate
	if ce.ReadsParams || ce.WritesParams {
		for _, a := range site.Args {
			if a.Type() == nil || !a.Type().IsPtr() {
				continue
			}
			if ce.ReadsParams {
				classifyAccess(e, al.RootsOf(a), false)
			}
			if ce.WritesParams {
				classifyAccess(e, al.RootsOf(a), true)
			}
		}
	}
}

// CallPreserves reports whether executing the call site leaves the value
// stored at ptr intact — the memory-dependence query that lets available
// loads survive calls to summarized-pure (or merely non-clobbering)
// callees. al must be the caller's alias analysis.
func (s *Summaries) CallPreserves(al *Aliases, site *ir.Instr, ptr ir.Value) bool {
	if site.Op != ir.OpCall || site.Callee == nil {
		return false
	}
	ce := s.byFunc[site.Callee]
	if ce == nil {
		return false
	}
	if !ce.WritesMemory() {
		return true
	}
	if ce.WritesUnknown {
		return false
	}
	// Objects the callee may write: its global write set, plus — when it
	// writes through pointer formals — everything the pointer arguments at
	// this site can address.
	var written []Root
	for g := range ce.WritesGlobals {
		written = append(written, Root{Kind: RootGlobal, Global: g})
	}
	if ce.WritesParams {
		for _, a := range site.Args {
			if a.Type() != nil && a.Type().IsPtr() {
				written = mergeRoots(written, al.RootsOf(a))
			}
		}
	}
	for _, w := range written {
		if w.Kind == RootUnknown || w.Kind == RootUndef {
			return false
		}
	}
	rs := al.RootsOf(ptr)
	if len(rs) == 0 {
		return false
	}
	for _, r := range rs {
		switch r.Kind {
		case RootUnknown, RootUndef:
			return false
		}
		if containsRoot(written, r) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Pointer-free, fingerprint-keyed summary view.
//
// Effects/Summaries hold *ir.Func and *ir.Global pointers, which differ
// between structurally identical module instances (COW clones), so they
// cannot be cached across modules. FuncEffects re-keys everything by name,
// making the summary a pure function of the module fingerprint.

// FuncEffects is the pointer-free form of one function's Effects.
type FuncEffects struct {
	ReadsGlobals    []string // sorted global names
	WritesGlobals   []string // sorted global names
	ReadsParams     bool
	WritesParams    bool
	ReadsUnknown    bool
	WritesUnknown   bool
	Prints          bool
	MayPanic        bool
	MayNotTerminate bool
	Recursive       bool
	FanIn           int
	FanOut          int
}

// Pure mirrors Effects.Pure on the pointer-free form.
func (fe FuncEffects) Pure() bool {
	return len(fe.WritesGlobals) == 0 && !fe.WritesParams && !fe.WritesUnknown &&
		!fe.Prints && !fe.MayPanic && !fe.MayNotTerminate
}

// ModuleSummary is the cached, module-instance-independent analysis result:
// per-function effects plus call-graph shape, keyed by function name.
type ModuleSummary struct {
	Fingerprint ir.Fingerprint
	Funcs       map[string]FuncEffects
}

// effectsCacheCap bounds the package-level summary cache. Summaries are
// small (a few strings and bools per function), so a generous cap is cheap;
// on overflow the whole cache is dropped rather than tracking LRU order.
const effectsCacheCap = 1024

var effectsCache = struct {
	sync.Mutex
	m map[ir.Fingerprint]*ModuleSummary
}{m: make(map[ir.Fingerprint]*ModuleSummary)}

// ModuleEffects returns the pointer-free effect summary of m, cached by
// m's content fingerprint. The fingerprint is recomputed on every call, so
// a module mutated in place (or a COW clone that diverged) can never be
// served a stale summary: its new fingerprint misses the cache and the
// summary is recomputed.
func ModuleEffects(m *ir.Module) *ModuleSummary {
	fp := m.Fingerprint()
	effectsCache.Lock()
	if ms, ok := effectsCache.m[fp]; ok {
		effectsCache.Unlock()
		return ms
	}
	effectsCache.Unlock()

	ms := &ModuleSummary{Fingerprint: fp, Funcs: make(map[string]FuncEffects, len(m.Funcs))}
	s := ComputeEffects(m)
	for _, n := range s.CG.Nodes {
		e := s.byFunc[n.Fn]
		ms.Funcs[n.Fn.Name] = FuncEffects{
			ReadsGlobals:    sortedGlobalNames(e.ReadsGlobals),
			WritesGlobals:   sortedGlobalNames(e.WritesGlobals),
			ReadsParams:     e.ReadsParams,
			WritesParams:    e.WritesParams,
			ReadsUnknown:    e.ReadsUnknown,
			WritesUnknown:   e.WritesUnknown,
			Prints:          e.Prints,
			MayPanic:        e.MayPanic,
			MayNotTerminate: e.MayNotTerminate,
			Recursive:       s.CG.Recursive(n.Fn),
			FanIn:           n.FanIn(),
			FanOut:          n.FanOut(),
		}
	}

	effectsCache.Lock()
	if len(effectsCache.m) >= effectsCacheCap {
		effectsCache.m = make(map[ir.Fingerprint]*ModuleSummary)
	}
	effectsCache.m[fp] = ms
	effectsCache.Unlock()
	return ms
}

// EffectsCacheLen reports the number of cached module summaries (tests).
func EffectsCacheLen() int {
	effectsCache.Lock()
	defer effectsCache.Unlock()
	return len(effectsCache.m)
}

// ResetEffectsCache drops all cached module summaries (tests).
func ResetEffectsCache() {
	effectsCache.Lock()
	defer effectsCache.Unlock()
	effectsCache.m = make(map[ir.Fingerprint]*ModuleSummary)
}

// VerifyAttrs cross-checks the optimizer-derived function attributes
// against independently computed effect summaries. Attributes are claims
// consumed by licm/gvn to speculate and deduplicate calls; an attribute
// asserting more than the effects support is a miscompile in the making,
// reported as an error under ipa.attr-overclaim.
func VerifyAttrs(m *ir.Module) Diagnostics {
	var ds Diagnostics
	s := ComputeEffects(m)
	for _, f := range m.Funcs {
		e := s.Of(f)
		if e == nil {
			continue
		}
		c := &collector{fn: f}
		if f.Attrs.ReadOnly && (e.WritesMemory() || e.Prints) {
			c.errf(CheckAttrOverclaim, nil, nil,
				"attribute readonly but effects %s show visible writes", e)
		}
		if f.Attrs.ReadNone && (e.ReadsMemory() || e.WritesMemory() || e.Prints || e.MayPanic) {
			c.errf(CheckAttrOverclaim, nil, nil,
				"attribute readnone but effects %s show memory access, I/O or a possible trap", e)
		}
		if f.Attrs.NoTrap && e.MayPanic {
			c.errf(CheckAttrOverclaim, nil, nil,
				"attribute notrap but effects %s show a possible trap", e)
		}
		ds = append(ds, c.diags...)
	}
	return ds
}
