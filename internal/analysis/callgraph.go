package analysis

import "autophase/internal/ir"

// This file is the interprocedural substrate: a direct call graph over the
// module's functions with Tarjan SCC condensation. Calls in this IR are
// always direct (an OpCall carries its *ir.Func callee), so the graph is
// exact, not a may-call approximation; a nil callee (broken IR) is recorded
// as an unknown edge on the node and makes every consumer conservative.

// CGNode is one function's node in the call graph.
type CGNode struct {
	Fn      *ir.Func
	Callees []*CGNode   // unique direct callees, in first-call order
	Callers []*CGNode   // unique direct callers, in discovery order
	Sites   []*ir.Instr // every OpCall instruction inside Fn
	// SCC is the index of the strongly connected component the node belongs
	// to in CallGraph.SCCs. Components are numbered callees-first: every
	// call edge leaving component i targets a component j < i (or i itself).
	SCC int
	// SelfLoop reports a direct self-call (recursion invisible to SCC size).
	SelfLoop bool
	// UnknownCallee reports a call site with a nil callee in Fn.
	UnknownCallee bool
}

// FanOut is the number of distinct functions Fn calls.
func (n *CGNode) FanOut() int { return len(n.Callees) }

// FanIn is the number of distinct functions calling Fn.
func (n *CGNode) FanIn() int { return len(n.Callers) }

// CallGraph is the module's direct call graph plus its SCC condensation.
type CallGraph struct {
	Nodes  []*CGNode // one per module function, in module order
	ByFunc map[*ir.Func]*CGNode
	// SCCs lists the strongly connected components in callees-first
	// (reverse topological) order: processing SCCs[0], SCCs[1], ... visits
	// every callee before any of its callers outside the component.
	SCCs [][]*CGNode
}

// ComputeCallGraph builds the call graph of m.
func ComputeCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{ByFunc: make(map[*ir.Func]*CGNode, len(m.Funcs))}
	for _, f := range m.Funcs {
		n := &CGNode{Fn: f, SCC: -1}
		cg.Nodes = append(cg.Nodes, n)
		cg.ByFunc[f] = n
	}
	for _, n := range cg.Nodes {
		seen := make(map[*CGNode]bool)
		n.Fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			if in.Op != ir.OpCall {
				return
			}
			n.Sites = append(n.Sites, in)
			if in.Callee == nil {
				n.UnknownCallee = true
				return
			}
			c := cg.ByFunc[in.Callee]
			if c == nil {
				// Detached callee (the verifier flags it); treat as unknown.
				n.UnknownCallee = true
				return
			}
			if c == n {
				n.SelfLoop = true
			}
			if !seen[c] {
				seen[c] = true
				n.Callees = append(n.Callees, c)
				c.Callers = append(c.Callers, n)
			}
		})
	}
	cg.condense()
	return cg
}

// condense runs Tarjan's SCC algorithm (iterative, so deep call chains
// cannot overflow the Go stack). Tarjan emits components callees-first,
// which is exactly the bottom-up summary order.
func (cg *CallGraph) condense() {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	next := 0

	type frame struct {
		n  *CGNode
		ci int // next callee index to visit
	}
	for _, root := range cg.Nodes {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.ci == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			recursed := false
			for fr.ci < len(n.Callees) {
				c := n.Callees[fr.ci]
				fr.ci++
				if _, seen := index[c]; !seen {
					work = append(work, frame{n: c})
					recursed = true
					break
				}
				if onStack[c] && index[c] < low[n] {
					low[n] = index[c]
				}
			}
			if recursed {
				continue
			}
			if low[n] == index[n] {
				var comp []*CGNode
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					top.SCC = len(cg.SCCs)
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				cg.SCCs = append(cg.SCCs, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
		}
	}
}

// Recursive reports whether f can (transitively) invoke itself: it sits in
// a multi-node SCC or calls itself directly.
func (cg *CallGraph) Recursive(f *ir.Func) bool {
	n := cg.ByFunc[f]
	if n == nil {
		return false
	}
	return n.SelfLoop || len(cg.SCCs[n.SCC]) > 1
}

// ReachableFrom returns the set of functions reachable from root through
// call edges, root included. A nil root yields an empty set.
func (cg *CallGraph) ReachableFrom(root *ir.Func) map[*ir.Func]bool {
	out := make(map[*ir.Func]bool)
	start := cg.ByFunc[root]
	if start == nil {
		return out
	}
	work := []*CGNode{start}
	out[root] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range n.Callees {
			if !out[c.Fn] {
				out[c.Fn] = true
				work = append(work, c)
			}
		}
	}
	return out
}
