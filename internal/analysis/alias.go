package analysis

import "autophase/internal/ir"

// RootKind classifies the memory object a pointer ultimately addresses.
type RootKind int

// Pointer root kinds.
const (
	RootAlloca  RootKind = iota // a stack object (OpAlloca result)
	RootGlobal                  // a module global
	RootParam                   // a pointer formal parameter (caller-owned object)
	RootUndef                   // an undef pointer (only legal in dead code)
	RootUnknown                 // anything else (e.g. a pointer-valued call)
)

// Root identifies one memory object a pointer may address. At most one of
// the object fields is set, matching Kind.
type Root struct {
	Kind   RootKind
	Alloca *ir.Instr
	Global *ir.Global
	Param  *ir.Param
}

// Aliases is a flow-insensitive, address-taken style alias analysis over
// allocas, globals and GEP chains: every pointer value is resolved to the
// set of memory objects it can address by chasing GEPs, casts, phis and
// selects to their roots. Two pointers may alias iff their root sets
// intersect (field-insensitively — GEP offsets are not distinguished).
type Aliases struct {
	fn    *ir.Func
	roots map[ir.Value][]Root
}

// ComputeAliases resolves every pointer-typed value in f to its root set.
func ComputeAliases(f *ir.Func) *Aliases {
	al := &Aliases{fn: f, roots: make(map[ir.Value][]Root)}
	return al
}

// RootsOf returns the memory objects v may address. Results are memoized;
// cyclic phi chains resolve to the union of their non-cyclic inputs.
func (al *Aliases) RootsOf(v ir.Value) []Root {
	return al.resolve(v, make(map[ir.Value]bool))
}

func (al *Aliases) resolve(v ir.Value, visiting map[ir.Value]bool) []Root {
	if rs, ok := al.roots[v]; ok {
		return rs
	}
	if visiting[v] {
		return nil // phi cycle: contributes nothing beyond the other inputs
	}
	visiting[v] = true
	var rs []Root
	switch x := v.(type) {
	case *ir.Global:
		rs = []Root{{Kind: RootGlobal, Global: x}}
	case *ir.Param:
		rs = []Root{{Kind: RootParam, Param: x}}
	case *ir.Undef:
		rs = []Root{{Kind: RootUndef}}
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			rs = []Root{{Kind: RootAlloca, Alloca: x}}
		case ir.OpGEP, ir.OpBitCast:
			rs = al.resolve(x.Args[0], visiting)
		case ir.OpPhi, ir.OpSelect:
			args := x.Args
			if x.Op == ir.OpSelect {
				args = x.Args[1:] // skip the condition
			}
			for _, a := range args {
				rs = mergeRoots(rs, al.resolve(a, visiting))
			}
		default:
			rs = []Root{{Kind: RootUnknown}}
		}
	default:
		rs = []Root{{Kind: RootUnknown}}
	}
	delete(visiting, v)
	al.roots[v] = rs
	return rs
}

func mergeRoots(a, b []Root) []Root {
	for _, r := range b {
		if !containsRoot(a, r) {
			a = append(a, r)
		}
	}
	return a
}

func containsRoot(rs []Root, r Root) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// MayAlias reports whether pointers p and q can address the same object.
// Unknown roots conservatively alias everything.
func (al *Aliases) MayAlias(p, q ir.Value) bool {
	rp, rq := al.RootsOf(p), al.RootsOf(q)
	for _, a := range rp {
		if a.Kind == RootUnknown {
			return true
		}
		for _, b := range rq {
			if b.Kind == RootUnknown || a == b {
				return true
			}
		}
	}
	return len(rp) == 0 || len(rq) == 0
}

// KnownObject reports whether every root of v is a concrete alloca, global
// or pointer parameter — the property the sanitizer's memory check
// enforces for the address operand of loads, stores and memsets.
func (al *Aliases) KnownObject(v ir.Value) bool {
	rs := al.RootsOf(v)
	if len(rs) == 0 {
		return false
	}
	for _, r := range rs {
		switch r.Kind {
		case RootAlloca, RootGlobal, RootParam:
		default:
			return false
		}
	}
	return true
}

// addrOperand returns the pointer operand of a memory instruction, or nil
// when in does not access memory through a pointer.
func addrOperand(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpLoad, ir.OpMemset:
		return in.Args[0]
	case ir.OpStore:
		return in.Args[1]
	}
	return nil
}
