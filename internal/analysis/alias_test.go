package analysis_test

import (
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

func TestUseDefChains(t *testing.T) {
	f, a, tt, e, p := diamond(t)
	ud := analysis.ComputeUseDef(f)
	// a is used by cond (icmp), t (mul), e (add) and ret: 4 slots.
	if n := ud.NumUses(a); n != 4 {
		t.Errorf("NumUses(a) = %d, want 4", n)
	}
	// t and e are consumed only by the phi.
	if u := ud.SingleUser(tt); u != p {
		t.Errorf("SingleUser(t) = %v, want the phi", u)
	}
	if u := ud.SingleUser(e); u != p {
		t.Errorf("SingleUser(e) = %v, want the phi", u)
	}
	// p is consumed only by print.
	if u := ud.SingleUser(p); u == nil || u.Op != ir.OpPrint {
		t.Errorf("SingleUser(p) not the print")
	}
	// Params are tracked too.
	if n := ud.NumUses(f.Params[0]); n != 1 {
		t.Errorf("NumUses(x) = %d, want 1", n)
	}
	if ud.DefOf(a) != a {
		t.Errorf("DefOf(instr) should be the instruction itself")
	}
	if ud.DefOf(f.Params[0]) != nil {
		t.Errorf("DefOf(param) should be nil")
	}
}

func TestAliasRoots(t *testing.T) {
	// Two allocas, one global, a GEP chain, and a phi merging two pointers.
	m := ir.NewModule("alias")
	g := m.NewGlobal("tab", ir.ArrayOf(ir.I32, 8), nil, false)
	f := m.NewFunc("main", ir.I32)
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	p1 := b.Alloca(ir.ArrayOf(ir.I32, 4))
	p2 := b.Alloca(ir.I32)
	g1 := b.GEP(p1, ir.ConstInt(ir.I32, 2))
	g2 := b.GEP(g1, ir.ConstInt(ir.I32, 1))
	c := b.ICmp(ir.CmpSLT, ir.ConstInt(ir.I32, 0), ir.ConstInt(ir.I32, 1))
	b.CondBr(c, left, right)
	b.SetInsert(left)
	b.Br(join)
	b.SetInsert(right)
	b.Br(join)
	b.SetInsert(join)
	merged := b.Phi(p1.Type())
	merged.SetPhiIncoming(left, g2)
	merged.SetPhiIncoming(right, g)
	v := b.Load(merged)
	b.Store(v, p2)
	b.Ret(v)
	if err := m.Verify(); err != nil {
		t.Fatalf("fixture verify: %v", err)
	}

	al := analysis.ComputeAliases(f)
	// The GEP chain roots in p1 only.
	rs := al.RootsOf(g2)
	if len(rs) != 1 || rs[0].Kind != analysis.RootAlloca || rs[0].Alloca != p1 {
		t.Errorf("RootsOf(gep chain) = %v, want {alloca p1}", rs)
	}
	// The phi merges the alloca and the global.
	mr := al.RootsOf(merged)
	if len(mr) != 2 {
		t.Errorf("RootsOf(phi) = %v, want two roots", mr)
	}
	if !al.MayAlias(merged, p1) {
		t.Errorf("phi should may-alias p1")
	}
	if !al.MayAlias(merged, g) {
		t.Errorf("phi should may-alias the global")
	}
	if al.MayAlias(p1, p2) {
		t.Errorf("distinct allocas must not alias")
	}
	if al.MayAlias(p2, g) {
		t.Errorf("alloca and global must not alias")
	}
	if !al.KnownObject(merged) || !al.KnownObject(g2) {
		t.Errorf("known objects misclassified")
	}
	// An undef pointer is not a known object.
	u := &ir.Undef{Ty: ir.PointerTo(ir.I32)}
	if al.KnownObject(u) {
		t.Errorf("undef pointer classified as known object")
	}
}
