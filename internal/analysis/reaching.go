package analysis

import "autophase/internal/ir"

// Reaching holds the reaching-definitions solution: which instruction
// definitions reach each block boundary. In SSA each value has exactly one
// definition, so a def "reaches" a point iff there is a def-clear path from
// its definition — which makes the analysis an independent cross-check of
// the dominance property the verifier enforces.
type Reaching struct {
	fn *ir.Func
	// In[b] is the set of defs reaching b's entry; Out[b] its exit.
	In, Out map[*ir.Block]Set[*ir.Instr]
}

// ComputeReaching solves forward reaching definitions over f.
func ComputeReaching(f *ir.Func) *Reaching {
	gen := make(map[*ir.Block]Set[*ir.Instr], len(f.Blocks))
	for _, b := range f.Blocks {
		g := NewSet[*ir.Instr]()
		for _, in := range b.Instrs {
			if producesValue(in) {
				g.Add(in)
			}
		}
		gen[b] = g
	}
	res := Solve(f, Problem[*ir.Instr]{
		Dir:  Forward,
		Meet: Union,
		Transfer: func(b *ir.Block, in Set[*ir.Instr]) Set[*ir.Instr] {
			in.Union(gen[b])
			return in
		},
	})
	return &Reaching{fn: f, In: res.In, Out: res.Out}
}

// producesValue reports whether the instruction defines an SSA value other
// code could reference.
func producesValue(in *ir.Instr) bool {
	if in.IsTerminator() {
		return false
	}
	switch in.Op {
	case ir.OpStore, ir.OpMemset, ir.OpPrint:
		return false
	}
	return true
}

// ReachesUse reports whether def's definition reaches the use site at
// instruction use (for phis, the use site is the end of the incoming
// predecessor edge rather than the phi itself).
func (r *Reaching) ReachesUse(def *ir.Instr, use *ir.Instr) bool {
	ub := use.Parent()
	if ub == nil {
		return false
	}
	if use.Op == ir.OpPhi {
		for i, a := range use.Args {
			if a != ir.Value(def) {
				continue
			}
			pred := use.Blocks[i]
			out := r.Out[pred]
			if out == nil || !out.Has(def) {
				return false
			}
		}
		return true
	}
	if def.Parent() == ub {
		// Same block: def must precede use textually.
		for _, in := range ub.Instrs {
			if in == def {
				return true
			}
			if in == use {
				return false
			}
		}
		return false
	}
	in := r.In[ub]
	return in != nil && in.Has(def)
}
