package analysis

import "autophase/internal/ir"

// Liveness holds the per-block live sets of a function: a value is live at
// a point when some path from that point reaches a use before any redefinition
// (SSA values have a single definition, so "before redefinition" is vacuous).
// The domain is SSA values: instruction results and function parameters.
type Liveness struct {
	fn *ir.Func
	// LiveIn[b] is the set of values live at b's entry; LiveOut[b] at its
	// exit (after the terminator).
	LiveIn  map[*ir.Block]Set[ir.Value]
	LiveOut map[*ir.Block]Set[ir.Value]
}

// trackedValue reports whether v belongs in the liveness domain (constants,
// globals and undef are always available and never tracked).
func trackedValue(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}

// blockUseDef computes the local upward-exposed uses and definitions of b.
// Phi uses are not upward-exposed in the phi's own block: they are live-out
// of the corresponding predecessor instead, which uses() accounts for by
// scanning successors' phis.
func blockUseDef(b *ir.Block) (use, def Set[ir.Value]) {
	use, def = NewSet[ir.Value](), NewSet[ir.Value]()
	for _, in := range b.Instrs {
		if in.Op != ir.OpPhi {
			for _, a := range in.Args {
				if trackedValue(a) && !def.Has(a) {
					use.Add(a)
				}
			}
		}
		def.Add(in)
	}
	return use, def
}

// ComputeLiveness solves backward liveness over f.
func ComputeLiveness(f *ir.Func) *Liveness {
	use := make(map[*ir.Block]Set[ir.Value], len(f.Blocks))
	def := make(map[*ir.Block]Set[ir.Value], len(f.Blocks))
	for _, b := range f.Blocks {
		use[b], def[b] = blockUseDef(b)
	}
	// Phi operands flow in along edges: an incoming value is live at the
	// end of its predecessor, not at the phi block's entry.
	phiOut := make(map[*ir.Block]Set[ir.Value], len(f.Blocks))
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			for i, a := range phi.Args {
				if !trackedValue(a) {
					continue
				}
				pred := phi.Blocks[i]
				if phiOut[pred] == nil {
					phiOut[pred] = NewSet[ir.Value]()
				}
				phiOut[pred].Add(a)
			}
		}
	}
	res := Solve(f, Problem[ir.Value]{
		Dir:  Backward,
		Meet: Union,
		Transfer: func(b *ir.Block, out Set[ir.Value]) Set[ir.Value] {
			// live-in = use ∪ phi-edge-uses ∪ (live-out − def)
			in := out
			for v := range def[b] {
				in.Remove(v)
			}
			in.Union(use[b])
			if po := phiOut[b]; po != nil {
				// Values feeding a successor phi are live-out of b; if b
				// defines them they are killed above, so re-adding here only
				// keeps ones defined elsewhere... but a phi may consume b's
				// own def at b's end, which is not a live-in of b.
				for v := range po {
					if !def[b].Has(v) {
						in.Add(v)
					}
				}
			}
			return in
		},
	})
	lv := &Liveness{fn: f,
		LiveIn:  make(map[*ir.Block]Set[ir.Value], len(res.In)),
		LiveOut: make(map[*ir.Block]Set[ir.Value], len(res.In)),
	}
	// Backward Result: In feeds Transfer (block exit), Out is block entry.
	for b, s := range res.In {
		lv.LiveOut[b] = s
	}
	for b, s := range res.Out {
		lv.LiveIn[b] = s
	}
	// Fold successor-phi uses into LiveOut for presentation: they are live
	// on the edge, which the conventional per-block view counts as live-out
	// of the predecessor.
	for b, po := range phiOut {
		if lv.LiveOut[b] == nil {
			lv.LiveOut[b] = NewSet[ir.Value]()
		}
		lv.LiveOut[b].Union(po)
	}
	return lv
}

// LiveAt reports whether v is live immediately before instruction at.
// It walks from at to the block end consuming local uses.
func (lv *Liveness) LiveAt(v ir.Value, at *ir.Instr) bool {
	b := at.Parent()
	if b == nil || !trackedValue(v) {
		return false
	}
	seen := false
	for _, in := range b.Instrs {
		if in == at {
			seen = true
		}
		if !seen || in.Op == ir.OpPhi {
			continue
		}
		for _, a := range in.Args {
			if a == v {
				return true
			}
		}
	}
	out := lv.LiveOut[b]
	return out != nil && out.Has(v)
}

// DeadDefs returns the instruction results that are defined but never live
// after their definition point — candidates for dead-code elimination (side
// effecting instructions are excluded).
func (lv *Liveness) DeadDefs() []*ir.Instr {
	ud := ComputeUseDef(lv.fn)
	var dead []*ir.Instr
	for _, b := range lv.fn.Blocks {
		for _, in := range b.Instrs {
			if in.IsTerminator() || in.HasSideEffects() {
				continue
			}
			if len(ud.UsesOf(in)) == 0 {
				dead = append(dead, in)
			}
		}
	}
	return dead
}
