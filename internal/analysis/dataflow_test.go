package analysis_test

import (
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// diamond builds
//
//	entry: a = add(x, 1); cond = icmp slt a, 10; br cond, then, else
//	then:  t = mul(a, 2); br join
//	else:  e = add(a, 3); br join
//	join:  p = phi [t, then], [e, else]; print p; ret a
//
// returning the function and the named instructions.
func diamond(t *testing.T) (f *ir.Func, a, tt, e, p *ir.Instr) {
	t.Helper()
	m := ir.NewModule("diamond")
	f = m.NewFunc("main", ir.I32, ir.I32)
	x := f.Params[0]
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	a = b.Add(x, ir.ConstInt(ir.I32, 1))
	cond := b.ICmp(ir.CmpSLT, a, ir.ConstInt(ir.I32, 10))
	b.CondBr(cond, then, els)
	b.SetInsert(then)
	tt = b.Mul(a, ir.ConstInt(ir.I32, 2))
	b.Br(join)
	b.SetInsert(els)
	e = b.Add(a, ir.ConstInt(ir.I32, 3))
	b.Br(join)
	b.SetInsert(join)
	p = b.Phi(ir.I32)
	p.SetPhiIncoming(then, tt)
	p.SetPhiIncoming(els, e)
	b.Print(p)
	b.Ret(a)
	if err := m.Verify(); err != nil {
		t.Fatalf("fixture verify: %v", err)
	}
	return f, a, tt, e, p
}

func blockNamed(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestLivenessDiamond(t *testing.T) {
	f, a, tt, e, p := diamond(t)
	lv := analysis.ComputeLiveness(f)
	entry := blockNamed(f, "entry")
	then := blockNamed(f, "then")
	els := blockNamed(f, "else")
	join := blockNamed(f, "join")

	// a is used in then, else and join(ret): live-out of entry, live-in of
	// all three successors paths.
	if !lv.LiveOut[entry].Has(a) {
		t.Errorf("a not live-out of entry")
	}
	if !lv.LiveIn[then].Has(a) || !lv.LiveIn[els].Has(a) || !lv.LiveIn[join].Has(a) {
		t.Errorf("a not live-in of then/else/join")
	}
	// t feeds the phi along the then edge: live-out of then, but NOT
	// live-in of join (phi uses are edge uses) and not live anywhere else.
	if !lv.LiveOut[then].Has(tt) {
		t.Errorf("t not live-out of then")
	}
	if lv.LiveIn[join].Has(tt) {
		t.Errorf("t wrongly live-in of join (phi uses are edge uses)")
	}
	if lv.LiveIn[then].Has(tt) {
		t.Errorf("t live-in of its own defining block")
	}
	if lv.LiveOut[els].Has(tt) {
		t.Errorf("t live-out of else")
	}
	// e symmetric.
	if !lv.LiveOut[els].Has(e) || lv.LiveIn[join].Has(e) {
		t.Errorf("e liveness wrong")
	}
	// p is consumed inside join: not live-out of join.
	if lv.LiveOut[join].Has(p) {
		t.Errorf("p live-out of exit block")
	}
	// Params: x is only used in entry, so not live-in of join.
	x := f.Params[0]
	if lv.LiveIn[join].Has(x) {
		t.Errorf("x live past its last use")
	}
	if !lv.LiveIn[entry].Has(x) {
		t.Errorf("x not live-in of entry")
	}
	if len(lv.DeadDefs()) != 0 {
		t.Errorf("unexpected dead defs: %v", lv.DeadDefs())
	}
}

func TestLivenessLoop(t *testing.T) {
	// entry: br loop
	// loop:  i = phi [0, entry], [inc, loop]; inc = add i, 1;
	//        c = icmp slt inc, 10; br c, loop, exit
	// exit:  print inc; ret 0
	m := ir.NewModule("loop")
	f := m.NewFunc("main", ir.I32)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	b.Br(loop)
	b.SetInsert(loop)
	i := b.Phi(ir.I32)
	inc := b.Add(i, ir.ConstInt(ir.I32, 1))
	c := b.ICmp(ir.CmpSLT, inc, ir.ConstInt(ir.I32, 10))
	i.SetPhiIncoming(entry, ir.ConstInt(ir.I32, 0))
	i.SetPhiIncoming(loop, inc)
	b.CondBr(c, loop, exit)
	b.SetInsert(exit)
	b.Print(inc)
	b.Ret(ir.ConstInt(ir.I32, 0))
	if err := m.Verify(); err != nil {
		t.Fatalf("fixture verify: %v", err)
	}
	lv := analysis.ComputeLiveness(f)
	// inc flows around the back edge (phi use) and into exit: live-out of
	// loop on both counts.
	if !lv.LiveOut[loop].Has(inc) {
		t.Errorf("inc not live-out of loop")
	}
	if !lv.LiveIn[exit].Has(inc) {
		t.Errorf("inc not live-in of exit")
	}
	// i is consumed by the add only: not live into exit.
	if lv.LiveIn[exit].Has(i) {
		t.Errorf("i wrongly live-in of exit")
	}
}

func TestReachingDiamond(t *testing.T) {
	f, a, tt, e, p := diamond(t)
	rd := analysis.ComputeReaching(f)
	join := blockNamed(f, "join")
	then := blockNamed(f, "then")
	// a reaches everywhere; t and e reach join's entry via their arms.
	for _, def := range []*ir.Instr{a, tt, e} {
		if !rd.In[join].Has(def) {
			t.Errorf("%s does not reach join entry", def.Ref())
		}
	}
	// t does not reach the else arm.
	els := blockNamed(f, "else")
	if rd.In[els].Has(tt) {
		t.Errorf("t reaches else")
	}
	// Every real use passes ReachesUse.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, arg := range in.Args {
				if def, ok := arg.(*ir.Instr); ok {
					if !rd.ReachesUse(def, in) {
						t.Errorf("ReachesUse(%s, %s in %s) = false", def.Ref(), in.Op, b.Label())
					}
				}
			}
		}
	}
	_ = p
	_ = then
}

func TestAvailExpr(t *testing.T) {
	// entry: s = add(x, y); c = icmp; br c, l, r
	// l:     s1 = add(x, y)   <- redundant (available + dominated)
	// r:     d = sub(x, y); br join
	// join:  s2 = add(x, y)   <- redundant; d2 = sub(x, y) <- NOT (r arm only)
	m := ir.NewModule("avail")
	f := m.NewFunc("main", ir.I32, ir.I32, ir.I32)
	x, y := f.Params[0], f.Params[1]
	entry := f.NewBlock("entry")
	l := f.NewBlock("l")
	r := f.NewBlock("r")
	join := f.NewBlock("join")
	b := ir.NewBuilder()
	b.SetInsert(entry)
	s := b.Add(x, y)
	c := b.ICmp(ir.CmpSLT, s, ir.ConstInt(ir.I32, 10))
	b.CondBr(c, l, r)
	b.SetInsert(l)
	s1 := b.Add(x, y)
	b.Br(join)
	b.SetInsert(r)
	d := b.Sub(x, y)
	b.Br(join)
	b.SetInsert(join)
	s2 := b.Add(y, x) // commuted: must share a key with add(x, y)
	d2 := b.Sub(x, y)
	sum := b.Add(s2, d2)
	b.Ret(sum)
	_ = d
	if err := m.Verify(); err != nil {
		t.Fatalf("fixture verify: %v", err)
	}
	ae := analysis.ComputeAvailExpr(f)
	addKey := analysis.ExprKey(s)
	if k2 := analysis.ExprKey(s2); k2 != addKey {
		t.Errorf("commuted add keys differ: %q vs %q", addKey, k2)
	}
	if !ae.AvailableAt(addKey, join) {
		t.Errorf("add(x,y) not available at join")
	}
	subKey := analysis.ExprKey(d)
	if ae.AvailableAt(subKey, join) {
		t.Errorf("sub(x,y) available at join despite the l arm")
	}
	red := ae.Redundant()
	want := map[*ir.Instr]bool{s1: true, s2: true}
	for _, in := range red {
		if !want[in] {
			t.Errorf("unexpected redundant instr %s in %s", in.Ref(), in.Parent().Label())
		}
		delete(want, in)
	}
	for in := range want {
		t.Errorf("missed redundant instr %s", in.Ref())
	}
}
