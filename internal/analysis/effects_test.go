package analysis_test

import (
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// mutualFixture: main -> even <-> odd, plus an uncalled helper.
func mutualFixture() *ir.Module {
	m := ir.NewModule("mutual")
	even := m.NewFunc("even", ir.I32, ir.I32)
	odd := m.NewFunc("odd", ir.I32, ir.I32)
	b := ir.NewBuilder()

	buildHalf := func(f, other *ir.Func, base int64) {
		entry := f.NewBlock("entry")
		done := f.NewBlock("base")
		rec := f.NewBlock("rec")
		b.SetInsert(entry)
		c := b.ICmp(ir.CmpEQ, f.Params[0], ir.ConstInt(ir.I32, 0))
		b.CondBr(c, done, rec)
		b.SetInsert(done)
		b.Ret(ir.ConstInt(ir.I32, base))
		b.SetInsert(rec)
		n1 := b.Sub(f.Params[0], ir.ConstInt(ir.I32, 1))
		b.Ret(b.Call(other, n1))
	}
	buildHalf(even, odd, 1)
	buildHalf(odd, even, 0)

	loner := m.NewFunc("loner", ir.I32)
	b.SetInsert(loner.NewBlock("entry"))
	b.Ret(ir.ConstInt(ir.I32, 9))

	main := m.NewFunc("main", ir.I32)
	b.SetInsert(main.NewBlock("entry"))
	b.Ret(b.Call(even, ir.ConstInt(ir.I32, 8)))
	return m
}

func TestCallGraphStructure(t *testing.T) {
	m := mutualFixture()
	cg := analysis.ComputeCallGraph(m)

	even, odd, main := m.Func("even"), m.Func("odd"), m.Func("main")
	if len(cg.Nodes) != len(m.Funcs) {
		t.Fatalf("got %d nodes, want %d", len(cg.Nodes), len(m.Funcs))
	}
	if !cg.Recursive(even) || !cg.Recursive(odd) {
		t.Error("even/odd form a recursive component")
	}
	if cg.Recursive(main) || cg.Recursive(m.Func("loner")) {
		t.Error("main and loner are not recursive")
	}
	ne, nm := cg.ByFunc[even], cg.ByFunc[main]
	if ne.SCC != cg.ByFunc[odd].SCC {
		t.Error("even and odd must share an SCC")
	}
	if len(cg.SCCs[ne.SCC]) != 2 {
		t.Errorf("even/odd SCC size = %d, want 2", len(cg.SCCs[ne.SCC]))
	}
	// SCCs are ordered callees-first: even/odd's component precedes main's.
	if ne.SCC >= nm.SCC {
		t.Errorf("callee SCC %d not before caller SCC %d", ne.SCC, nm.SCC)
	}
	if nm.FanOut() != 1 || ne.FanIn() != 2 { // called by odd and main
		t.Errorf("fan-out(main)=%d fan-in(even)=%d, want 1 and 2", nm.FanOut(), ne.FanIn())
	}
	reach := cg.ReachableFrom(main)
	if !reach[even] || !reach[odd] || !reach[main] {
		t.Error("even, odd and main are reachable from main")
	}
	if reach[m.Func("loner")] {
		t.Error("loner must not be reachable from main")
	}
}

// effectsFixture covers the summary lattice: a pure helper, global
// readers/writers, a pointer-param writer, a possible trap and an
// infinitely recursive helper.
func effectsFixture() (*ir.Module, *ir.Global) {
	m := ir.NewModule("eff")
	g := m.NewGlobal("g", ir.ArrayOf(ir.I32, 4), nil, false)
	b := ir.NewBuilder()

	square := m.NewFunc("square", ir.I32, ir.I32)
	b.SetInsert(square.NewBlock("entry"))
	b.Ret(b.Mul(square.Params[0], square.Params[0]))

	getg := m.NewFunc("getg", ir.I32)
	b.SetInsert(getg.NewBlock("entry"))
	b.Ret(b.Load(b.GEP(g, ir.ConstInt(ir.I32, 0))))

	setg := m.NewFunc("setg", ir.I32, ir.I32)
	b.SetInsert(setg.NewBlock("entry"))
	b.Store(setg.Params[0], b.GEP(g, ir.ConstInt(ir.I32, 1)))
	b.Ret(ir.ConstInt(ir.I32, 0))

	sink := m.NewFunc("sink", ir.I32, ir.PointerTo(ir.I32), ir.I32)
	b.SetInsert(sink.NewBlock("entry"))
	b.Store(sink.Params[1], sink.Params[0])
	b.Ret(ir.ConstInt(ir.I32, 0))

	div := m.NewFunc("div", ir.I32, ir.I32, ir.I32)
	b.SetInsert(div.NewBlock("entry"))
	b.Ret(b.SDiv(div.Params[0], div.Params[1]))

	spin := m.NewFunc("spin", ir.I32)
	b.SetInsert(spin.NewBlock("entry"))
	b.Ret(b.Call(spin))

	main := m.NewFunc("main", ir.I32)
	b.SetInsert(main.NewBlock("entry"))
	buf := b.Alloca(ir.ArrayOf(ir.I32, 2))
	b.Call(sink, b.GEP(buf, ir.ConstInt(ir.I32, 0)), ir.ConstInt(ir.I32, 5))
	s := b.Call(square, ir.ConstInt(ir.I32, 3))
	b.Call(setg, s)
	b.Ret(b.Call(getg))
	return m, g
}

func TestEffectsSummaries(t *testing.T) {
	m, g := effectsFixture()
	s := analysis.ComputeEffects(m)

	sq := s.Of(m.Func("square"))
	if !sq.Pure() || sq.ReadsMemory() || sq.WritesMemory() {
		t.Errorf("square must be pure, got %s", sq)
	}
	ge := s.Of(m.Func("getg"))
	if !ge.ReadsGlobals[g] || ge.WritesMemory() || !ge.Pure() {
		t.Errorf("getg must read @g and nothing else, got %s", ge)
	}
	se := s.Of(m.Func("setg"))
	if !se.WritesGlobals[g] || se.Pure() {
		t.Errorf("setg must write @g, got %s", se)
	}
	sk := s.Of(m.Func("sink"))
	if !sk.WritesParams || sk.WritesUnknown || len(sk.WritesGlobals) != 0 {
		t.Errorf("sink writes only through its pointer param, got %s", sk)
	}
	de := s.Of(m.Func("div"))
	if !de.MayPanic || de.WritesMemory() {
		t.Errorf("div may trap on a zero divisor, got %s", de)
	}
	sp := s.Of(m.Func("spin"))
	if !sp.MayNotTerminate {
		t.Errorf("spin is infinitely recursive, got %s", sp)
	}
	// main inherits: setg's global write, getg's global read. sink's
	// param-mediated write lands in main's own alloca, which is invisible
	// to main's callers — but the conservative merge may keep WritesParams
	// only if main itself has pointer params (it has none).
	me := s.Of(m.Func("main"))
	if !me.WritesGlobals[g] || !me.ReadsGlobals[g] {
		t.Errorf("main must inherit the @g access from its callees, got %s", me)
	}
	if me.MayPanic || me.MayNotTerminate {
		t.Errorf("main calls no trapping or diverging function, got %s", me)
	}
}

// TestAvailLoadsRefinement: a call to a function with no visible writes
// preserves available loads only under summaries; the summary-free
// solution kills them (the pre-interprocedural behavior).
func TestAvailLoadsRefinement(t *testing.T) {
	m := ir.NewModule("avail")
	g := m.NewGlobal("g", ir.ArrayOf(ir.I32, 4), nil, false)
	b := ir.NewBuilder()

	id := m.NewFunc("id", ir.I32, ir.I32)
	b.SetInsert(id.NewBlock("entry"))
	b.Ret(id.Params[0])

	wr := m.NewFunc("wr", ir.I32)
	b.SetInsert(wr.NewBlock("entry"))
	b.Store(ir.ConstInt(ir.I32, 7), b.GEP(g, ir.ConstInt(ir.I32, 0)))
	b.Ret(ir.ConstInt(ir.I32, 0))

	main := m.NewFunc("main", ir.I32)
	entry := main.NewBlock("entry")
	mid := main.NewBlock("mid")
	last := main.NewBlock("last")
	b.SetInsert(entry)
	gp := b.GEP(g, ir.ConstInt(ir.I32, 0))
	ld := b.Load(gp)
	b.Call(id, ld)
	b.Br(mid)
	b.SetInsert(mid)
	b.Call(wr)
	b.Br(last)
	b.SetInsert(last)
	ld2 := b.Load(gp)
	b.Ret(ld2)

	key := analysis.LoadKey(ld)
	s := analysis.ComputeEffects(m)
	base := analysis.ComputeAvailLoads(main, nil)
	aware := analysis.ComputeAvailLoads(main, s)

	// After the pure call (entry -> mid): only the summary-aware solution
	// keeps the load.
	if base.AvailableAt(key, mid) {
		t.Error("summary-free analysis must kill the load at the @id call")
	}
	if !aware.AvailableAt(key, mid) {
		t.Error("summaries must preserve the load across the @id call (no visible writes)")
	}
	// After @wr (mid -> last): both must kill it — @wr writes @g.
	if base.AvailableAt(key, last) || aware.AvailableAt(key, last) {
		t.Error("the @wr call writes @g and must kill the load in both solutions")
	}
}

func TestIPAChecks(t *testing.T) {
	m := ir.NewModule("ipalint")
	g := m.NewGlobal("wo", ir.ArrayOf(ir.I32, 2), nil, false)
	b := ir.NewBuilder()

	dead := m.NewFunc("dead", ir.I32)
	b.SetInsert(dead.NewBlock("entry"))
	b.Ret(ir.ConstInt(ir.I32, 1))

	square := m.NewFunc("square", ir.I32, ir.I32)
	b.SetInsert(square.NewBlock("entry"))
	b.Ret(b.Mul(square.Params[0], square.Params[0]))

	spin := m.NewFunc("spin", ir.I32)
	b.SetInsert(spin.NewBlock("entry"))
	b.Ret(b.Call(spin))

	main := m.NewFunc("main", ir.I32)
	b.SetInsert(main.NewBlock("entry"))
	b.Call(square, ir.ConstInt(ir.I32, 3)) // result unused
	b.Call(spin)
	b.Store(ir.ConstInt(ir.I32, 1), b.GEP(g, ir.ConstInt(ir.I32, 0)))
	b.Ret(ir.ConstInt(ir.I32, 0))

	ds := analysis.VerifyAll(m)
	if ds.HasErrors() {
		t.Fatalf("fixture must be structurally clean:\n%s", ds.Errors())
	}
	for _, check := range []string{
		analysis.CheckUnreachableFunc,
		analysis.CheckInfiniteRecursion,
		analysis.CheckPureResultUnused,
		analysis.CheckGlobalNeverRead,
	} {
		found := ds.ByCheck(check)
		if len(found) == 0 {
			t.Errorf("expected a %s diagnostic", check)
			continue
		}
		for _, d := range found {
			if d.Sev != analysis.Warning {
				t.Errorf("%s must be Warning severity, got %s", check, d.Sev)
			}
		}
	}
}

func TestVerifyAttrsOverclaim(t *testing.T) {
	m, _ := effectsFixture()
	if ds := analysis.VerifyAttrs(m); len(ds.Errors()) != 0 {
		t.Fatalf("no attributes set, no overclaim possible:\n%s", ds)
	}
	m.Func("setg").Attrs.ReadNone = true
	m.Func("div").Attrs.NoTrap = true
	ds := analysis.VerifyAttrs(m)
	if got := len(ds.ByCheck(analysis.CheckAttrOverclaim)); got != 2 {
		t.Fatalf("want 2 %s errors (setg readnone, div notrap), got %d:\n%s",
			analysis.CheckAttrOverclaim, got, ds)
	}
	if !ds.HasErrors() {
		t.Error("attr overclaims are Error severity")
	}
}

// TestModuleEffectsCache: summaries are keyed by module fingerprint, so a
// mutated callee can never be served a stale summary.
func TestModuleEffectsCache(t *testing.T) {
	analysis.ResetEffectsCache()
	m, g := effectsFixture()

	s1 := analysis.ModuleEffects(m)
	if !s1.Funcs["square"].Pure() {
		t.Fatalf("square must summarize pure, got %+v", s1.Funcs["square"])
	}
	if s2 := analysis.ModuleEffects(m); s2 != s1 {
		t.Error("unchanged module must hit the cache (same summary instance)")
	}
	if analysis.EffectsCacheLen() != 1 {
		t.Errorf("cache holds %d summaries, want 1", analysis.EffectsCacheLen())
	}

	// Mutate the callee in place: square now writes @g.
	sq := m.Func("square")
	entry := sq.Entry()
	ret := entry.Term()
	entry.Remove(ret)
	b := ir.NewBuilder()
	b.SetInsert(entry)
	b.Store(ir.ConstInt(ir.I32, 1), b.GEP(g, ir.ConstInt(ir.I32, 2)))
	entry.Append(ret)

	s3 := analysis.ModuleEffects(m)
	if s3 == s1 || s3.Fingerprint == s1.Fingerprint {
		t.Fatal("mutated module must miss the cache under a new fingerprint")
	}
	if s3.Funcs["square"].Pure() {
		t.Error("mutated square writes @g and must no longer be pure")
	}
	if got := s3.Funcs["square"].WritesGlobals; len(got) != 1 || got[0] != "g" {
		t.Errorf("square WritesGlobals = %v, want [g]", got)
	}
	// The caller's transitive summary must see the new write too.
	found := false
	for _, n := range s3.Funcs["main"].WritesGlobals {
		if n == "g" {
			found = true
		}
	}
	if !found {
		t.Error("main's summary must inherit square's new @g write")
	}
	if analysis.EffectsCacheLen() != 2 {
		t.Errorf("cache holds %d summaries, want 2", analysis.EffectsCacheLen())
	}
	analysis.ResetEffectsCache()
}

// TestAvailLoadsRefinementSweep is the differential guarantee over the real
// corpus: on every benchmark under every pipeline, the summary-aware
// available-load facts contain the summary-free facts block for block, and
// somewhere in the corpus the containment is strict.
func TestAvailLoadsRefinementSweep(t *testing.T) {
	preludes := map[string][]int{
		"mem2reg":       {38},
		"canonicalized": {38, 31, 30, 29, 23, 30},
		"o3":            passes.O3Sequence,
	}
	strict := 0
	for _, name := range progen.BenchmarkNames {
		for pname, seq := range preludes {
			m := progen.Benchmark(name)
			passes.Apply(m, seq)
			s := analysis.ComputeEffects(m)
			for _, f := range m.Funcs {
				if len(f.Blocks) == 0 {
					continue
				}
				base := analysis.ComputeAvailLoads(f, nil)
				aware := analysis.ComputeAvailLoads(f, s)
				for _, b := range f.Blocks {
					for key := range base.In[b] {
						if !aware.In[b].Has(key) {
							t.Fatalf("%s/%s @%s/%s: summary-aware facts lost %q present without summaries",
								name, pname, f.Name, b.Label(), key)
						}
					}
					if len(aware.In[b]) > len(base.In[b]) {
						strict++
					}
				}
			}
		}
	}
	if strict == 0 {
		t.Fatal("summaries refined nothing anywhere in the corpus; the interprocedural layer is inert")
	}
	t.Logf("summary-aware facts strictly larger on %d blocks across the corpus", strict)
}
