package analysis_test

import (
	"math/rand"
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// TestVerifyAllCleanOnCorpus runs VerifyAll over the nine benchmarks and a
// set of random programs, both raw and after random pass sequences: correct
// passes must never trip the collect-all verifier or the dataflow layer
// (no false positives — the sanitizer is only useful if a firing check
// really means miscompilation).
func TestVerifyAllCleanOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for _, name := range progen.BenchmarkNames {
		m := progen.Benchmark(name)
		if ds := analysis.VerifyAll(m).Errors(); len(ds) > 0 {
			t.Fatalf("%s raw: %v", name, ds)
		}
		for trial := 0; trial < trials; trial++ {
			n := 5 + rng.Intn(40)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = rng.Intn(passes.NumActions)
			}
			c := m.Clone()
			passes.Apply(c, seq)
			if ds := analysis.VerifyAll(c).Errors(); len(ds) > 0 {
				t.Errorf("%s seq %v:\n%s", name, seq, ds)
			}
		}
	}
	seed := int64(4000)
	progs := 6
	if testing.Short() {
		progs = 2
	}
	for p := 0; p < progs; p++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		seed = used + 1
		for trial := 0; trial < trials; trial++ {
			n := 5 + rng.Intn(40)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = rng.Intn(passes.NumActions)
			}
			c := m.Clone()
			passes.Apply(c, seq)
			if ds := analysis.VerifyAll(c).Errors(); len(ds) > 0 {
				t.Errorf("rand %d seq %v:\n%s", used, seq, ds)
			}
		}
	}
}
