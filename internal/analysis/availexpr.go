package analysis

import (
	"fmt"
	"strings"

	"autophase/internal/ir"
)

// AvailExpr holds the available-expressions solution: the set of pure
// expression keys computed on every path reaching a block boundary, with no
// intervening redefinition of their operands (vacuous in SSA). It is the
// must-analysis companion to GVN/early-cse: an expression available at a
// block entry can be reused instead of recomputed.
type AvailExpr struct {
	fn *ir.Func
	// In[b] is the set of expression keys available at b's entry; Out[b]
	// at its exit.
	In, Out map[*ir.Block]Set[string]
	// DefsOf maps an expression key to the instructions computing it.
	DefsOf map[string][]*ir.Instr
}

// ExprKey canonicalizes a pure instruction into a structural key, or ""
// when the instruction is not a pure expression (memory, control, calls,
// phis). Commutative binary operations sort their operands so a+b and b+a
// share a key.
func ExprKey(in *ir.Instr) string {
	pure := in.Op.IsBinary() || in.Op.IsCast() ||
		in.Op == ir.OpICmp || in.Op == ir.OpSelect || in.Op == ir.OpGEP
	if !pure {
		return ""
	}
	ops := make([]string, len(in.Args))
	for i, a := range in.Args {
		ops[i] = operandKey(a)
	}
	if in.Op.IsCommutative() && len(ops) == 2 && ops[0] > ops[1] {
		ops[0], ops[1] = ops[1], ops[0]
	}
	key := in.Op.String()
	if in.Op == ir.OpICmp {
		key += "." + in.Pred.String()
	}
	if in.Op.IsCast() && in.Ty != nil {
		key += "->" + in.Ty.String()
	}
	return key + "(" + strings.Join(ops, ",") + ")"
}

// operandKey names an operand in a way that is stable across instruction
// renumbering: instructions are keyed by pointer identity.
func operandKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Const:
		return x.Ref()
	case *ir.Instr:
		return fmt.Sprintf("i%p", x)
	case *ir.Param:
		return fmt.Sprintf("p%p", x)
	case *ir.Global:
		return x.Ref()
	case *ir.Undef:
		return "undef"
	}
	return fmt.Sprintf("v%p", v)
}

// ComputeAvailExpr solves forward available expressions over f.
func ComputeAvailExpr(f *ir.Func) *AvailExpr {
	defs := make(map[string][]*ir.Instr)
	gen := make(map[*ir.Block]Set[string], len(f.Blocks))
	universe := NewSet[string]()
	for _, b := range f.Blocks {
		g := NewSet[string]()
		for _, in := range b.Instrs {
			if key := ExprKey(in); key != "" {
				g.Add(key)
				universe.Add(key)
				defs[key] = append(defs[key], in)
			}
		}
		gen[b] = g
	}
	res := Solve(f, Problem[string]{
		Dir:  Forward,
		Meet: Intersect,
		Init: universe,
		Transfer: func(b *ir.Block, in Set[string]) Set[string] {
			in.Union(gen[b])
			return in
		},
	})
	return &AvailExpr{fn: f, In: res.In, Out: res.Out, DefsOf: defs}
}

// AvailableAt reports whether the expression key is available at b's entry.
func (ae *AvailExpr) AvailableAt(key string, b *ir.Block) bool {
	in := ae.In[b]
	return in != nil && in.Has(key)
}

// Redundant returns the instructions whose expression is already available
// at their block entry and also computed by an earlier instruction in the
// same block or a dominating block — the candidates GVN would eliminate.
func (ae *AvailExpr) Redundant() []*ir.Instr {
	dt := ir.NewDomTree(ae.fn)
	var out []*ir.Instr
	for _, b := range ae.fn.Blocks {
		seen := NewSet[string]()
		for _, in := range b.Instrs {
			key := ExprKey(in)
			if key == "" {
				continue
			}
			if seen.Has(key) {
				out = append(out, in)
			} else if ae.AvailableAt(key, b) && hasDominatingDef(dt, ae.DefsOf[key], in) {
				out = append(out, in)
			}
			seen.Add(key)
		}
	}
	return out
}

func hasDominatingDef(dt *ir.DomTree, defs []*ir.Instr, use *ir.Instr) bool {
	for _, d := range defs {
		if d == use || d.Parent() == nil {
			continue
		}
		if dt.StrictlyDominates(d.Parent(), use.Parent()) {
			return true
		}
	}
	return false
}
