package analysis

import (
	"fmt"
	"strings"

	"autophase/internal/ir"
)

// AvailExpr holds the available-expressions solution: the set of pure
// expression keys computed on every path reaching a block boundary, with no
// intervening redefinition of their operands (vacuous in SSA). It is the
// must-analysis companion to GVN/early-cse: an expression available at a
// block entry can be reused instead of recomputed.
type AvailExpr struct {
	fn *ir.Func
	// In[b] is the set of expression keys available at b's entry; Out[b]
	// at its exit.
	In, Out map[*ir.Block]Set[string]
	// DefsOf maps an expression key to the instructions computing it.
	DefsOf map[string][]*ir.Instr
}

// ExprKey canonicalizes a pure instruction into a structural key, or ""
// when the instruction is not a pure expression (memory, control, calls,
// phis). Commutative binary operations sort their operands so a+b and b+a
// share a key.
func ExprKey(in *ir.Instr) string {
	pure := in.Op.IsBinary() || in.Op.IsCast() ||
		in.Op == ir.OpICmp || in.Op == ir.OpSelect || in.Op == ir.OpGEP
	if !pure {
		return ""
	}
	ops := make([]string, len(in.Args))
	for i, a := range in.Args {
		ops[i] = operandKey(a)
	}
	if in.Op.IsCommutative() && len(ops) == 2 && ops[0] > ops[1] {
		ops[0], ops[1] = ops[1], ops[0]
	}
	key := in.Op.String()
	if in.Op == ir.OpICmp {
		key += "." + in.Pred.String()
	}
	if in.Op.IsCast() && in.Ty != nil {
		key += "->" + in.Ty.String()
	}
	return key + "(" + strings.Join(ops, ",") + ")"
}

// operandKey names an operand in a way that is stable across instruction
// renumbering: instructions are keyed by pointer identity.
func operandKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Const:
		return x.Ref()
	case *ir.Instr:
		return fmt.Sprintf("i%p", x)
	case *ir.Param:
		return fmt.Sprintf("p%p", x)
	case *ir.Global:
		return x.Ref()
	case *ir.Undef:
		return "undef"
	}
	return fmt.Sprintf("v%p", v)
}

// ComputeAvailExpr solves forward available expressions over f.
func ComputeAvailExpr(f *ir.Func) *AvailExpr {
	defs := make(map[string][]*ir.Instr)
	gen := make(map[*ir.Block]Set[string], len(f.Blocks))
	universe := NewSet[string]()
	for _, b := range f.Blocks {
		g := NewSet[string]()
		for _, in := range b.Instrs {
			if key := ExprKey(in); key != "" {
				g.Add(key)
				universe.Add(key)
				defs[key] = append(defs[key], in)
			}
		}
		gen[b] = g
	}
	res := Solve(f, Problem[string]{
		Dir:  Forward,
		Meet: Intersect,
		Init: universe,
		Transfer: func(b *ir.Block, in Set[string]) Set[string] {
			in.Union(gen[b])
			return in
		},
	})
	return &AvailExpr{fn: f, In: res.In, Out: res.Out, DefsOf: defs}
}

// AvailableAt reports whether the expression key is available at b's entry.
func (ae *AvailExpr) AvailableAt(key string, b *ir.Block) bool {
	in := ae.In[b]
	return in != nil && in.Has(key)
}

// Redundant returns the instructions whose expression is already available
// at their block entry and also computed by an earlier instruction in the
// same block or a dominating block — the candidates GVN would eliminate.
func (ae *AvailExpr) Redundant() []*ir.Instr {
	dt := ir.NewDomTree(ae.fn)
	var out []*ir.Instr
	for _, b := range ae.fn.Blocks {
		seen := NewSet[string]()
		for _, in := range b.Instrs {
			key := ExprKey(in)
			if key == "" {
				continue
			}
			if seen.Has(key) {
				out = append(out, in)
			} else if ae.AvailableAt(key, b) && hasDominatingDef(dt, ae.DefsOf[key], in) {
				out = append(out, in)
			}
			seen.Add(key)
		}
	}
	return out
}

func hasDominatingDef(dt *ir.DomTree, defs []*ir.Instr, use *ir.Instr) bool {
	for _, d := range defs {
		if d == use || d.Parent() == nil {
			continue
		}
		if dt.StrictlyDominates(d.Parent(), use.Parent()) {
			return true
		}
	}
	return false
}

// AvailLoads is the memory-dependence companion to AvailExpr: the set of
// loaded locations whose value is still in a register on every path
// reaching a block boundary. A location dies at a may-aliasing store or
// memset — and at a call, unless effect summaries prove the callee
// preserves it. Built without summaries (s == nil) every call kills
// everything, which is exactly the pre-interprocedural behavior; the
// summary-aware solution is therefore always a superset (a refinement) of
// the summary-free one.
type AvailLoads struct {
	fn      *ir.Func
	In, Out map[*ir.Block]Set[string]
	// PtrOf maps a load key back to the pointer value it loads from.
	PtrOf map[string]ir.Value
}

// LoadKey canonicalizes a load by its pointer operand (pointer identity,
// like operandKey), or returns "" for non-loads.
func LoadKey(in *ir.Instr) string {
	if in.Op != ir.OpLoad {
		return ""
	}
	return "load(" + operandKey(in.Args[0]) + ")"
}

// ComputeAvailLoads solves forward available loads over f. s may be nil
// (no interprocedural information) or the module's effect summaries, in
// which case calls only kill the locations their callee may actually write.
func ComputeAvailLoads(f *ir.Func, s *Summaries) *AvailLoads {
	al := ComputeAliases(f)
	universe := NewSet[string]()
	ptrOf := make(map[string]ir.Value)
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if key := LoadKey(in); key != "" {
			universe.Add(key)
			ptrOf[key] = in.Args[0]
		}
	})
	// The transfer re-simulates the block's memory timeline against the
	// incoming set: loads generate their key, clobbers sweep the keys whose
	// pointer they may touch. Kills depend on the in-flight set, so there
	// is no precomputed gen/kill pair — the scan is the transfer.
	kill := func(avail Set[string], clobbers func(ir.Value) bool) {
		for key := range avail {
			if clobbers(ptrOf[key]) {
				avail.Remove(key)
			}
		}
	}
	res := Solve(f, Problem[string]{
		Dir:  Forward,
		Meet: Intersect,
		Init: universe,
		Transfer: func(b *ir.Block, in Set[string]) Set[string] {
			for _, i := range b.Instrs {
				switch i.Op {
				case ir.OpLoad:
					in.Add(LoadKey(i))
				case ir.OpStore, ir.OpMemset:
					addr := addrOperand(i)
					kill(in, func(p ir.Value) bool { return al.MayAlias(p, addr) })
				case ir.OpCall:
					if s == nil {
						kill(in, func(ir.Value) bool { return true })
					} else {
						kill(in, func(p ir.Value) bool { return !s.CallPreserves(al, i, p) })
					}
				}
			}
			return in
		},
	})
	return &AvailLoads{fn: f, In: res.In, Out: res.Out, PtrOf: ptrOf}
}

// AvailableAt reports whether the load key is available at b's entry.
func (av *AvailLoads) AvailableAt(key string, b *ir.Block) bool {
	in := av.In[b]
	return in != nil && in.Has(key)
}
