package analysis

import "autophase/internal/ir"

// Set is the dataflow lattice element: a finite set of facts of type T.
type Set[T comparable] map[T]struct{}

// NewSet builds a set from the given elements.
func NewSet[T comparable](xs ...T) Set[T] {
	s := make(Set[T], len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set[T]) Has(x T) bool { _, ok := s[x]; return ok }

// Add inserts x.
func (s Set[T]) Add(x T) { s[x] = struct{}{} }

// Remove deletes x.
func (s Set[T]) Remove(x T) { delete(s, x) }

// Clone returns an independent copy.
func (s Set[T]) Clone() Set[T] {
	out := make(Set[T], len(s))
	for x := range s {
		out[x] = struct{}{}
	}
	return out
}

// Equal reports set equality.
func (s Set[T]) Equal(o Set[T]) bool {
	if len(s) != len(o) {
		return false
	}
	for x := range s {
		if _, ok := o[x]; !ok {
			return false
		}
	}
	return true
}

// Union folds o into s, reporting whether s grew.
func (s Set[T]) Union(o Set[T]) bool {
	grew := false
	for x := range o {
		if _, ok := s[x]; !ok {
			s[x] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Intersect removes the elements of s not present in o.
func (s Set[T]) Intersect(o Set[T]) {
	for x := range s {
		if _, ok := o[x]; !ok {
			delete(s, x)
		}
	}
}

// Propagate sweeps transfer over f's blocks in reverse postorder until no
// sweep reports a change. It is the chaotic-iteration companion to Solve for
// analyses whose state lives outside per-block fact sets (e.g. the
// per-value interval map of the range analysis); transfer must be monotone
// for the iteration to terminate.
func Propagate(f *ir.Func, transfer func(b *ir.Block) bool) {
	if len(f.Blocks) == 0 {
		return
	}
	order := ir.NewDomTree(f).RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if transfer(b) {
				changed = true
			}
		}
	}
}

// Direction orients a dataflow problem.
type Direction int

// Dataflow directions.
const (
	Forward  Direction = iota // facts flow from entry along CFG edges
	Backward                  // facts flow from exits against CFG edges
)

// MeetKind selects the confluence operator.
type MeetKind int

// Meet operators.
const (
	Union     MeetKind = iota // may-analyses (liveness, reaching defs)
	Intersect                 // must-analyses (available expressions)
)

// Problem is a monotone dataflow problem over per-block fact sets. The
// solver iterates Transfer to a fixed point with a worklist.
type Problem[T comparable] struct {
	Dir  Direction
	Meet MeetKind
	// Boundary is the fact set at the entry block (Forward) or at every
	// exit block (Backward). nil means the empty set.
	Boundary Set[T]
	// Init seeds the in-flow of interior blocks before any meet. For
	// Union problems it is normally nil (empty set, the lattice bottom);
	// for Intersect problems it must be the universe.
	Init Set[T]
	// Transfer maps the block's in-flow to its out-flow (with respect to
	// Dir: for Backward problems "in-flow" is the set at block exit). It
	// must not retain or mutate the argument.
	Transfer func(b *ir.Block, in Set[T]) Set[T]
}

// Result holds the fixed point: for Forward problems In is the set at block
// entry and Out at block exit; for Backward problems In is the set at block
// exit and Out at block entry (i.e. In always feeds Transfer).
type Result[T comparable] struct {
	In  map[*ir.Block]Set[T]
	Out map[*ir.Block]Set[T]
}

// Solve runs the worklist algorithm over f's reachable blocks and returns
// the fixed point. Iteration order is reverse postorder for forward
// problems and postorder for backward ones, so typical problems converge in
// a handful of sweeps.
func Solve[T comparable](f *ir.Func, p Problem[T]) Result[T] {
	res := Result[T]{In: make(map[*ir.Block]Set[T]), Out: make(map[*ir.Block]Set[T])}
	if len(f.Blocks) == 0 {
		return res
	}
	dt := ir.NewDomTree(f)
	order := append([]*ir.Block(nil), dt.RPO()...)
	if p.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	pos := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	boundary := func() Set[T] {
		if p.Boundary == nil {
			return NewSet[T]()
		}
		return p.Boundary.Clone()
	}
	seeded := func() Set[T] {
		if p.Init == nil {
			return NewSet[T]()
		}
		return p.Init.Clone()
	}
	// edges returns the blocks whose Out feeds b's In, and the blocks whose
	// In b's Out feeds, under the problem direction.
	flowIn := func(b *ir.Block) []*ir.Block {
		if p.Dir == Forward {
			var preds []*ir.Block
			for _, pb := range b.Preds() {
				if _, ok := pos[pb]; ok {
					preds = append(preds, pb)
				}
			}
			return preds
		}
		return b.Succs()
	}
	flowOut := func(b *ir.Block) []*ir.Block {
		if p.Dir == Forward {
			return b.Succs()
		}
		var preds []*ir.Block
		for _, pb := range b.Preds() {
			if _, ok := pos[pb]; ok {
				preds = append(preds, pb)
			}
		}
		return preds
	}
	isBoundary := func(b *ir.Block) bool {
		if p.Dir == Forward {
			return b == f.Entry()
		}
		return len(b.Succs()) == 0
	}

	inWork := make([]bool, len(order))
	work := make([]int, 0, len(order))
	for i := range order {
		work = append(work, i)
		inWork[i] = true
	}
	// Pop lowest index first: a cheap priority queue that follows the
	// chosen iteration order.
	pop := func() *ir.Block {
		best := -1
		for i, w := range work {
			if best < 0 || w < work[best] {
				best = i
			}
		}
		b := order[work[best]]
		inWork[work[best]] = false
		work = append(work[:best], work[best+1:]...)
		return b
	}

	for len(work) > 0 {
		b := pop()
		var in Set[T]
		srcs := flowIn(b)
		switch {
		case isBoundary(b) && p.Dir == Forward:
			in = boundary()
		case len(srcs) == 0:
			// Backward exit blocks, or forward blocks whose only preds are
			// unreachable.
			in = boundary()
		default:
			first := true
			for _, s := range srcs {
				out := res.Out[s]
				if out == nil {
					// Unprocessed source: contributes Init (universe for
					// must-problems, empty for may-problems).
					out = seeded()
				}
				if first {
					in = out.Clone()
					first = false
					continue
				}
				if p.Meet == Union {
					in.Union(out)
				} else {
					in.Intersect(out)
				}
			}
		}
		res.In[b] = in
		out := p.Transfer(b, in.Clone())
		old := res.Out[b]
		if old != nil && old.Equal(out) {
			continue
		}
		res.Out[b] = out
		for _, d := range flowOut(b) {
			if i, ok := pos[d]; ok && !inWork[i] {
				work = append(work, i)
				inWork[i] = true
			}
		}
	}
	return res
}
