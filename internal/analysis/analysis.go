// Package analysis is the IR static-analysis layer: a reusable
// forward/backward dataflow engine (worklist solver parameterized by
// transfer function and meet operator) with concrete analyses — liveness,
// reaching definitions, available expressions, use-def/def-use chains and a
// flow-insensitive alias analysis over allocas/GEPs/globals — plus a
// structured diagnostic engine.
//
// The diagnostics replace the first-error-only ir.Verify with a collect-all
// VerifyAll whose results carry a severity, a stable check ID and a precise
// function/block/instruction location. The pass sanitizer in
// internal/passes runs VerifyAll plus the dataflow consistency checks after
// every pass, standing in for the paper's logic-simulation validation at
// the granularity of individual transformations.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"autophase/internal/ir"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order of badness.
const (
	// Info diagnostics are observations (statistics, notes), never failures.
	Info Severity = iota
	// Warning marks suspicious but not provably broken IR (e.g. a memory
	// op whose pointer roots in undef inside reachable code).
	Warning
	// Error marks IR that violates a structural or dataflow invariant; a
	// module with Error diagnostics is miscompiled.
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is one finding: a check ID, a severity and a location. The
// location narrows left to right; Block and Instr may be empty for
// module- or function-level findings.
type Diagnostic struct {
	Sev   Severity
	Check string // stable check ID, e.g. "verify.dominance"
	Func  string // function name, without the @
	Block string // block label within Func
	Instr string // instruction rendering (opcode or ref) within Block
	Msg   string
}

// String renders the diagnostic as "severity [check] @fn/block: msg".
func (d Diagnostic) String() string {
	loc := "@" + d.Func
	if d.Func == "" {
		loc = "<module>"
	}
	if d.Block != "" {
		loc += "/" + d.Block
	}
	if d.Instr != "" {
		loc += "/" + d.Instr
	}
	return fmt.Sprintf("%s [%s] %s: %s", d.Sev, d.Check, loc, d.Msg)
}

// Diagnostics is an ordered collection of findings.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic has Error severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Sev >= Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity findings.
func (ds Diagnostics) Errors() Diagnostics { return ds.filter(Error) }

// Warnings returns only the Warning-severity findings.
func (ds Diagnostics) Warnings() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Sev == Warning {
			out = append(out, d)
		}
	}
	return out
}

func (ds Diagnostics) filter(min Severity) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Sev >= min {
			out = append(out, d)
		}
	}
	return out
}

// ByCheck returns the findings with the given check ID.
func (ds Diagnostics) ByCheck(id string) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Check == id {
			out = append(out, d)
		}
	}
	return out
}

// Checks returns the distinct check IDs present, sorted.
func (ds Diagnostics) Checks() []string {
	seen := make(map[string]bool)
	for _, d := range ds {
		seen[d.Check] = true
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// String renders the findings one per line, most severe first (stable
// within a severity).
func (ds Diagnostics) String() string {
	ordered := append(Diagnostics(nil), ds...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Sev > ordered[j].Sev })
	var sb strings.Builder
	for _, d := range ordered {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// collector accumulates diagnostics with a current function context.
type collector struct {
	fn    *ir.Func
	diags Diagnostics
}

func (c *collector) add(sev Severity, check string, b *ir.Block, in *ir.Instr, format string, args ...any) {
	d := Diagnostic{Sev: sev, Check: check, Msg: fmt.Sprintf(format, args...)}
	if c.fn != nil {
		d.Func = c.fn.Name
	}
	if b != nil {
		d.Block = b.Label()
	}
	if in != nil {
		d.Instr = in.Op.String()
	}
	c.diags = append(c.diags, d)
}

func (c *collector) errf(check string, b *ir.Block, in *ir.Instr, format string, args ...any) {
	c.add(Error, check, b, in, format, args...)
}

func (c *collector) warnf(check string, b *ir.Block, in *ir.Instr, format string, args ...any) {
	c.add(Warning, check, b, in, format, args...)
}
