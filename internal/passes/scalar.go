package passes

import "autophase/internal/ir"

// instCombine is the peephole combiner: algebraic identities, constant
// folding, cast collapsing and canonicalization, iterated to a fixed point.
func instCombine(f *ir.Func) bool {
	changed := false
	for {
		once := foldConstants(f)
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
				switch v, st := combineOne(f, in); st {
				case combineReplaced:
					f.ReplaceAllUses(in, v)
					b.Remove(in)
					once = true
				case combineMutated:
					once = true
				}
			}
		}
		if removeTriviallyDead(f) {
			once = true
		}
		if !once {
			return changed
		}
		changed = true
	}
}

type combineStatus int

const (
	combineNone combineStatus = iota
	combineReplaced
	combineMutated
)

// combineOne returns a simpler replacement value for in (combineReplaced),
// or rewrites it in place (combineMutated).
func combineOne(f *ir.Func, in *ir.Instr) (ir.Value, combineStatus) {
	// Canonicalize: constants to the right of commutative ops. The swap is a
	// mutation in its own right and must be reported even when no folding
	// rule fires afterwards.
	canon := false
	if in.Op.IsBinary() && in.Op.IsCommutative() {
		if _, lc := ir.IsConst(in.Args[0]); lc {
			if _, rc := ir.IsConst(in.Args[1]); !rc {
				in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
				canon = true
			}
		}
	}
	v, st := combineRules(f, in)
	if st == combineNone && canon {
		return nil, combineMutated
	}
	return v, st
}

// combineRules holds the per-opcode rewrite rules; combineOne wraps it with
// the commutative canonicalization.
func combineRules(f *ir.Func, in *ir.Instr) (ir.Value, combineStatus) {
	x := func() ir.Value { return in.Args[0] }
	zero := func() ir.Value { return ir.ConstInt(in.Ty, 0) }

	switch in.Op {
	case ir.OpAdd:
		if ir.IsConstVal(in.Args[1], 0) {
			return x(), combineReplaced
		}
		// (y + c1) + c2 -> y + (c1+c2)
		if c2, ok := ir.IsConst(in.Args[1]); ok {
			if inner, ok := in.Args[0].(*ir.Instr); ok && inner.Op == ir.OpAdd && inner.Ty.Equal(in.Ty) {
				if c1, ok := ir.IsConst(inner.Args[1]); ok {
					in.Args[0] = inner.Args[0]
					in.Args[1] = ir.ConstInt(in.Ty, c1+c2)
					return nil, combineMutated
				}
			}
		}
	case ir.OpSub:
		if ir.IsConstVal(in.Args[1], 0) {
			return x(), combineReplaced
		}
		if in.Args[0] == in.Args[1] {
			return zero(), combineReplaced
		}
	case ir.OpMul:
		if ir.IsConstVal(in.Args[1], 1) {
			return x(), combineReplaced
		}
		if ir.IsConstVal(in.Args[1], 0) {
			return zero(), combineReplaced
		}
		// x * 2^k -> x << k (the scheduler treats constant shifts as free
		// wiring, so this is a genuine HLS win).
		if c, ok := ir.IsConst(in.Args[1]); ok && c > 1 && c&(c-1) == 0 {
			k := int64(0)
			for v := c; v > 1; v >>= 1 {
				k++
			}
			in.Op = ir.OpShl
			in.Args[1] = ir.ConstInt(in.Ty, k)
			return nil, combineMutated
		}
	case ir.OpSDiv:
		if ir.IsConstVal(in.Args[1], 1) {
			return x(), combineReplaced
		}
	case ir.OpSRem:
		if ir.IsConstVal(in.Args[1], 1) {
			return zero(), combineReplaced
		}
	case ir.OpAnd:
		if ir.IsConstVal(in.Args[1], 0) {
			return zero(), combineReplaced
		}
		if in.Args[0] == in.Args[1] {
			return x(), combineReplaced
		}
		if c, ok := ir.IsConst(in.Args[1]); ok && in.Ty.IsInt() &&
			uint64(c)&in.Ty.Mask() == in.Ty.Mask() {
			return x(), combineReplaced
		}
	case ir.OpOr:
		if ir.IsConstVal(in.Args[1], 0) {
			return x(), combineReplaced
		}
		if in.Args[0] == in.Args[1] {
			return x(), combineReplaced
		}
	case ir.OpXor:
		if ir.IsConstVal(in.Args[1], 0) {
			return x(), combineReplaced
		}
		if in.Args[0] == in.Args[1] {
			return zero(), combineReplaced
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if ir.IsConstVal(in.Args[1], 0) {
			return x(), combineReplaced
		}
	case ir.OpICmp:
		if in.Args[0] == in.Args[1] {
			switch in.Pred {
			case ir.CmpEQ, ir.CmpSLE, ir.CmpSGE, ir.CmpULE, ir.CmpUGE:
				return ir.ConstInt(ir.I1, 1), combineReplaced
			default:
				return ir.ConstInt(ir.I1, 0), combineReplaced
			}
		}
	case ir.OpSelect:
		if in.Args[1] == in.Args[2] {
			return in.Args[1], combineReplaced
		}
	case ir.OpGEP:
		if ir.IsConstVal(in.Args[1], 0) {
			return in.Args[0], combineReplaced
		}
		// gep(gep(p, a), b) -> gep(p, a+b) when a and b are constants.
		if inner, ok := in.Args[0].(*ir.Instr); ok && inner.Op == ir.OpGEP {
			a, aok := ir.IsConst(inner.Args[1])
			b, bok := ir.IsConst(in.Args[1])
			if aok && bok {
				in.Args[0] = inner.Args[0]
				in.Args[1] = ir.ConstInt(ir.I64, a+b)
				return nil, combineMutated
			}
		}
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpBitCast:
		if in.Ty.Equal(in.Args[0].Type()) && in.Op != ir.OpTrunc {
			return x(), combineReplaced
		}
		// zext(zext x) and sext(sext x) collapse to one wider cast.
		if inner, ok := in.Args[0].(*ir.Instr); ok && inner.Op == in.Op &&
			(in.Op == ir.OpZExt || in.Op == ir.OpSExt) {
			in.Args[0] = inner.Args[0]
			return nil, combineMutated
		}
	case ir.OpPhi:
		// Phi whose incomings are all the same value (ignoring self-loops)
		// is that value; equal constants count as the same value.
		var uniq ir.Value
		ok := true
		for _, a := range in.Args {
			if a == in {
				continue
			}
			if uniq == nil {
				uniq = a
			} else if uniq != a && !sameConst(uniq, a) {
				ok = false
				break
			}
		}
		if ok && uniq != nil {
			if _, isInstr := uniq.(*ir.Instr); !isInstr || phiReplacementSafe(f, in, uniq) {
				return uniq, combineReplaced
			}
		}
	}
	return nil, combineNone
}

// sameConst reports whether two values are equal integer constants of the
// same type.
func sameConst(a, b ir.Value) bool {
	ca, aok := a.(*ir.Const)
	cb, bok := b.(*ir.Const)
	return aok && bok && ca.Val == cb.Val && ca.Ty.Equal(cb.Ty)
}

// phiReplacementSafe checks the dominance condition for folding a
// same-incoming phi: the value must dominate the phi's block.
func phiReplacementSafe(f *ir.Func, phi *ir.Instr, v ir.Value) bool {
	def, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	dt := ir.NewDomTree(f)
	return dt.StrictlyDominates(def.Parent(), phi.Parent())
}

// reassociate flattens single-use chains of one associative operator,
// gathers the constant leaves into a single folded constant, and rebuilds
// the tree with the constant last — exposing redundancy for CSE/GVN and
// loop-invariant subtrees for LICM.
func reassociate(f *ir.Func) bool {
	changed := false
	uses := buildUseCounts(f)
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if !in.Op.IsAssociative() || !in.Op.IsBinary() {
				continue
			}
			// Only rebuild at chain roots (avoid rewriting interior nodes).
			if isChainInterior(in, uses) {
				continue
			}
			leaves := flattenChain(in, in.Op, uses, b)
			if len(leaves) < 3 {
				continue
			}
			var consts []int64
			var vals []ir.Value
			for _, l := range leaves {
				if c, ok := ir.IsConst(l); ok {
					consts = append(consts, c)
				} else {
					vals = append(vals, l)
				}
			}
			if len(consts) < 2 {
				continue
			}
			acc := consts[0]
			for _, c := range consts[1:] {
				acc = ir.EvalBinary(in.Op, in.Ty, acc, c)
			}
			cv := ir.ConstInt(in.Ty, acc)
			// Rebuild: ((v0 op v1) op v2 ...) op c
			var tree ir.Value
			if len(vals) == 0 {
				tree = cv
			} else {
				tree = vals[0]
				for _, v := range vals[1:] {
					n := &ir.Instr{Op: in.Op, Ty: in.Ty, Args: []ir.Value{tree, v}}
					b.InsertBefore(n, in)
					tree = n
				}
				n := &ir.Instr{Op: in.Op, Ty: in.Ty, Args: []ir.Value{tree, cv}}
				b.InsertBefore(n, in)
				tree = n
			}
			f.ReplaceAllUses(in, tree)
			b.Remove(in)
			changed = true
			uses = buildUseCounts(f)
		}
	}
	if changed {
		removeTriviallyDead(f)
		foldConstants(f)
	}
	return changed
}

func isChainInterior(in *ir.Instr, uses map[ir.Value]int) bool {
	if uses[in] != 1 {
		return false
	}
	u := in.Parent().Parent().Uses(in)
	return len(u) == 1 && u[0].Op == in.Op && u[0].Parent() == in.Parent()
}

// flattenChain collects the leaves of the same-op single-use tree rooted at
// in, restricted to instructions in block b.
func flattenChain(in *ir.Instr, op ir.Op, uses map[ir.Value]int, b *ir.Block) []ir.Value {
	var leaves []ir.Value
	var walk func(v ir.Value)
	walk = func(v ir.Value) {
		if n, ok := v.(*ir.Instr); ok && n.Op == op && n.Parent() == b && (n == in || uses[n] == 1) {
			walk(n.Args[0])
			walk(n.Args[1])
			return
		}
		leaves = append(leaves, v)
	}
	walk(in)
	return leaves
}
