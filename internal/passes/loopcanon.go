package passes

import "autophase/internal/ir"

// loopSimplify canonicalizes every natural loop: a dedicated preheader, a
// single latch block, and dedicated exits whose predecessors are all inside
// the loop — the form the other loop passes require (LLVM's -loop-simplify).
func loopSimplify(f *ir.Func) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, l := range loopsOf(f) {
			if insertPreheader(f, l) {
				changed, again = true, true
				break
			}
			if mergeLatches(f, l) {
				changed, again = true, true
				break
			}
			if dedicateExits(f, l) {
				changed, again = true, true
				break
			}
		}
	}
	return changed
}

// insertPreheader gives l a dedicated preheader when it lacks one.
func insertPreheader(f *ir.Func, l *ir.Loop) bool {
	if l.Preheader() != nil {
		return false
	}
	h := l.Header
	var outside []*ir.Block
	for _, p := range h.Preds() {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return false // dead loop header (unreachable); leave alone
	}
	ph := &ir.Block{Name: h.Name + ".ph"}
	f.AddBlockAfter(ph, outsidePos(f, outside))
	ph.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{h}})
	// Header phis: merge the outside incomings into a phi in the preheader
	// (or forward directly when there is only one outside pred).
	for _, phi := range h.Phis() {
		if len(outside) == 1 {
			if v, ok := phi.PhiIncoming(outside[0]); ok {
				phi.RemovePhiIncoming(outside[0])
				phi.SetPhiIncoming(ph, v)
			}
			continue
		}
		np := &ir.Instr{Op: ir.OpPhi, Ty: phi.Ty}
		for _, ob := range outside {
			v, ok := phi.PhiIncoming(ob)
			if !ok {
				v = &ir.Undef{Ty: phi.Ty}
			}
			np.SetPhiIncoming(ob, v)
			phi.RemovePhiIncoming(ob)
		}
		ph.Prepend(np)
		phi.SetPhiIncoming(ph, np)
	}
	for _, ob := range outside {
		ob.Term().ReplaceTarget(h, ph)
	}
	return true
}

func outsidePos(f *ir.Func, outside []*ir.Block) *ir.Block {
	best := outside[0]
	bi := best.Index()
	for _, b := range outside[1:] {
		if i := b.Index(); i > bi {
			best, bi = b, i
		}
	}
	return best
}

// mergeLatches funnels multiple latch edges through a single backedge block.
func mergeLatches(f *ir.Func, l *ir.Loop) bool {
	if len(l.Latches) <= 1 {
		return false
	}
	h := l.Header
	be := &ir.Block{Name: h.Name + ".backedge"}
	f.AddBlockAfter(be, l.Latches[len(l.Latches)-1])
	be.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{h}})
	for _, phi := range h.Phis() {
		np := &ir.Instr{Op: ir.OpPhi, Ty: phi.Ty}
		for _, lt := range l.Latches {
			v, ok := phi.PhiIncoming(lt)
			if !ok {
				v = &ir.Undef{Ty: phi.Ty}
			}
			np.SetPhiIncoming(lt, v)
			phi.RemovePhiIncoming(lt)
		}
		be.Prepend(np)
		phi.SetPhiIncoming(be, np)
	}
	for _, lt := range l.Latches {
		lt.Term().ReplaceTarget(h, be)
	}
	return true
}

// dedicateExits splits edges leaving the loop that land in blocks which also
// have predecessors outside the loop.
func dedicateExits(f *ir.Func, l *ir.Loop) bool {
	changed := false
	for _, e := range l.Exits() {
		mixed := false
		for _, p := range e.Preds() {
			if !l.Contains(p) {
				mixed = true
			}
		}
		if !mixed {
			continue
		}
		for _, p := range e.Preds() {
			if l.Contains(p) {
				ir.SplitEdge(f, p, e, e.Name+".loopexit")
				changed = true
			}
		}
		if changed {
			return true
		}
	}
	return false
}

// lcssa inserts single-incoming phis in exit blocks for loop-defined values
// used outside the loop, putting the function in loop-closed SSA form.
func lcssa(f *ir.Func) bool {
	changed := false
	for _, l := range loopsOf(f) {
		inLoop := make(map[*ir.Block]bool)
		for _, b := range l.Body {
			inLoop[b] = true
		}
		for _, b := range l.Body {
			for _, in := range b.Instrs {
				if in.Ty.IsVoid() {
					continue
				}
				var outsideUses []*ir.Instr
				for _, u := range f.Uses(in) {
					if !inLoop[u.Parent()] {
						outsideUses = append(outsideUses, u)
					}
				}
				if len(outsideUses) == 0 {
					continue
				}
				// Group uses per exit block they are reached through; only
				// the simple case of uses in single-pred exit blocks is
				// rewritten (loop-simplify gives dedicated exits).
				for _, e := range l.Exits() {
					preds := e.Preds()
					if len(preds) != 1 || !inLoop[preds[0]] {
						continue
					}
					var usesHere []*ir.Instr
					for _, u := range outsideUses {
						if u.Parent() == e && u.Op != ir.OpPhi {
							usesHere = append(usesHere, u)
						}
					}
					if len(usesHere) == 0 {
						continue
					}
					phi := &ir.Instr{Op: ir.OpPhi, Ty: in.Ty}
					phi.SetPhiIncoming(preds[0], in)
					e.Prepend(phi)
					for _, u := range usesHere {
						u.ReplaceUses(in, phi)
					}
					changed = true
				}
			}
		}
	}
	return changed
}

// loopRotate converts canonical while-loops into do-while form: the header's
// exit test is duplicated into the preheader (guard) and the latch, removing
// one block — one FSM state — from every iteration, which is why the paper's
// forests single it out as the most impactful pass.
func loopRotate(f *ir.Func) bool {
	changed := loopSimplify(f)
	for again := true; again; {
		again = false
		for _, l := range loopsOf(f) {
			if rotateOne(f, l) {
				changed, again = true, true
				break
			}
		}
	}
	return changed
}

func rotateOne(f *ir.Func, l *ir.Loop) bool {
	h := l.Header
	ph := l.Preheader()
	latch := l.SingleLatch()
	if ph == nil || latch == nil || latch == h {
		return false
	}
	t := h.Term()
	if t == nil || !t.IsConditionalBr() {
		return false // already rotated or not an exiting header
	}
	var bodyIdx int
	switch {
	case l.Contains(t.Blocks[0]) && !l.Contains(t.Blocks[1]):
		bodyIdx = 0
	case !l.Contains(t.Blocks[0]) && l.Contains(t.Blocks[1]):
		bodyIdx = 1
	default:
		return false
	}
	body := t.Blocks[bodyIdx]
	exit := t.Blocks[1-bodyIdx]
	if body == h || exit == h {
		return false
	}
	// The latch must re-enter the header unconditionally (canonical form).
	lt := latch.Term()
	if lt == nil || lt.Op != ir.OpBr || len(lt.Blocks) != 1 {
		return false
	}
	// Structural guards keeping the rewiring exact.
	if len(body.Phis()) > 0 || len(exit.Phis()) > 0 {
		return false
	}
	if len(exit.Preds()) != 1 || exit.NumPredEdges() != 1 {
		return false
	}
	if len(body.Preds()) != 1 {
		return false
	}
	// Header layout: phis followed by the pure condition chain and the
	// branch. Any side effect in the header blocks rotation.
	phis := h.Phis()
	condChain := h.Instrs[len(phis) : len(h.Instrs)-1]
	inChain := make(map[*ir.Instr]bool, len(condChain))
	for _, in := range condChain {
		inChain[in] = true
	}
	// A phi whose latch incoming is computed in the header would need an
	// extra carried value after rotation; bail out (increments live in the
	// body or latch in canonical loops).
	for _, phi := range phis {
		if vl, ok := phi.PhiIncoming(latch); ok {
			if d, isI := vl.(*ir.Instr); isI && inChain[d] {
				return false
			}
		}
	}
	for _, in := range condChain {
		if in.HasSideEffects() || in.Op == ir.OpLoad || in.Op == ir.OpCall ||
			in.Op == ir.OpAlloca || in.Op == ir.OpMemset {
			return false
		}
	}

	// Clone the condition chain with a substitution of header phis.
	cloneChain := func(sub map[ir.Value]ir.Value, dst *ir.Block) ir.Value {
		for _, in := range condChain {
			ni := &ir.Instr{Op: in.Op, Ty: in.Ty, Pred: in.Pred, Callee: in.Callee,
				AllocTy: in.AllocTy, Cases: append([]int64(nil), in.Cases...)}
			for _, a := range in.Args {
				if r, ok := sub[a]; ok {
					ni.Args = append(ni.Args, r)
				} else {
					ni.Args = append(ni.Args, a)
				}
			}
			dst.InsertBeforeTerm(ni)
			sub[in] = ni
		}
		cond := t.Args[0]
		if r, ok := sub[cond]; ok {
			return r
		}
		return cond
	}

	// Guard in the preheader.
	subP := make(map[ir.Value]ir.Value)
	for _, phi := range phis {
		if v, ok := phi.PhiIncoming(ph); ok {
			subP[phi] = v
		}
	}
	pht := ph.Term()
	ph.Remove(pht)
	condP := cloneChain(subP, ph)
	// A fresh dedicated preheader keeps the loop in loop-simplify form
	// after rotation (the guard block has two successors).
	np := &ir.Block{Name: h.Name + ".rot.ph"}
	f.AddBlockAfter(np, ph)
	np.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{body}})
	brP := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{condP}}
	if bodyIdx == 0 {
		brP.Blocks = []*ir.Block{np, exit}
	} else {
		brP.Blocks = []*ir.Block{exit, np}
	}
	ph.Append(brP)

	// Latch test replaces the unconditional backedge.
	subL := make(map[ir.Value]ir.Value)
	for _, phi := range phis {
		if v, ok := phi.PhiIncoming(latch); ok {
			subL[phi] = v
		}
	}
	latch.Remove(lt)
	condL := cloneChain(subL, latch)
	brL := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{condL}}
	if bodyIdx == 0 {
		brL.Blocks = []*ir.Block{body, exit}
	} else {
		brL.Blocks = []*ir.Block{exit, body}
	}
	latch.Append(brL)

	// Move the header phis to the new loop header (body), re-keyed to the
	// new incoming edges.
	for i := len(phis) - 1; i >= 0; i-- {
		phi := phis[i]
		vp, _ := phi.PhiIncoming(ph)
		vl, _ := phi.PhiIncoming(latch)
		h.Remove(phi)
		phi.Blocks = nil
		phi.Args = nil
		phi.SetPhiIncoming(np, vp)
		phi.SetPhiIncoming(latch, vl)
		body.Prepend(phi)
	}

	// Values from the old header used in or after the exit: build merge
	// phis in the exit block (its preds are now exactly ph and latch).
	oldDefs := inChain
	// Rewrite outside uses of cond-chain values and phis: phis moved to the
	// body stay valid for in-loop uses, but outside uses need merges of the
	// per-edge exit values.
	inLoopAfter := make(map[*ir.Block]bool)
	for _, b := range l.Body {
		if b != h {
			inLoopAfter[b] = true
		}
	}
	merges := make(map[*ir.Instr]*ir.Instr)
	mergeAtExit := func(def *ir.Instr, pv, lv ir.Value) *ir.Instr {
		if mp, ok := merges[def]; ok {
			return mp
		}
		mp := &ir.Instr{Op: ir.OpPhi, Ty: def.Type()}
		mp.SetPhiIncoming(ph, pv)
		mp.SetPhiIncoming(latch, lv)
		exit.Prepend(mp)
		merges[def] = mp
		return mp
	}
	isMerge := func(in *ir.Instr) bool {
		for _, mp := range merges {
			if mp == in {
				return true
			}
		}
		return false
	}
	for _, b := range f.Blocks {
		if inLoopAfter[b] || b == h || b == ph || b == np || b == latch {
			continue
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if isMerge(in) {
				continue // the merge phis themselves read loop values by design
			}
			for ai, a := range in.Args {
				def, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				if !oldDefs[def] && !isHeaderPhi(def, phis) {
					continue
				}
				in.Args[ai] = mergeAtExit(def, subP[def], subL[def])
			}
		}
	}
	// In-loop (non-header) uses of cond-chain values: the value for
	// iteration n now arrives from the guard (n = 1) or the latch clone of
	// iteration n-1, so in-loop uses read a merge phi at the new loop head.
	for _, b := range f.Blocks {
		if !inLoopAfter[b] {
			continue
		}
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				def, ok := a.(*ir.Instr)
				if !ok || !oldDefs[def] {
					continue
				}
				mp := &ir.Instr{Op: ir.OpPhi, Ty: a.Type()}
				mp.SetPhiIncoming(np, subP[def])
				mp.SetPhiIncoming(latch, subL[def])
				body.Prepend(mp)
				in.Args[ai] = mp
			}
		}
	}

	// The old header is now bypassed; remove it.
	for _, in := range append([]*ir.Instr(nil), h.Instrs...) {
		h.Remove(in)
	}
	h.Append(&ir.Instr{Op: ir.OpUnreachable, Ty: ir.Void})
	f.RemoveBlock(h)
	return true
}

func isHeaderPhi(in *ir.Instr, phis []*ir.Instr) bool {
	for _, p := range phis {
		if p == in {
			return true
		}
	}
	return false
}
