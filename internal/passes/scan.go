package passes

import "autophase/internal/ir"

// No-op prescans. Each predicate here is paired with a pass in ByIndex and
// must be sound: returning false guarantees the pass would report no change
// (and perform no mutation) on that function/module. A scan that is merely
// "probably a no-op" is a correctness bug, because the engine reuses the
// input module for runs reported unchanged. Scans are read-only so they are
// safe on functions still borrowed by a copy-on-write module.

// scanNever marks passes that are unconditional no-ops in this IR
// (lowerinvoke, loweratomic: there are no invokes or atomics to lower).
func scanNever(*ir.Func) bool { return false }

func anyInstr(f *ir.Func, pred func(*ir.Instr) bool) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if pred(in) {
				return true
			}
		}
	}
	return false
}

// hasAlloca gates mem2reg, scalarrepl and scalarrepl-ssa: every rewrite in
// those passes starts from an alloca.
func hasAlloca(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpAlloca })
}

// hasStore gates memcpyopt, whose only rewrites start from store
// instructions (forming memsets or forwarding stored values).
func hasStore(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpStore })
}

// hasStoreOrMemset gates dse: everything it deletes is a store, a memset,
// or an address computation feeding only deleted stores.
func hasStoreOrMemset(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool {
		return in.Op == ir.OpStore || in.Op == ir.OpMemset
	})
}

// hasSwitch gates lowerswitch.
func hasSwitch(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpSwitch })
}

// hasBranchWeight gates lower-expect, which only clears branch weights.
func hasBranchWeight(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool { return in.BranchWeight != 0 })
}

// hasSelfCall gates tailcallelim, which only rewrites directly
// self-recursive tail calls.
func hasSelfCall(f *ir.Func) bool {
	return anyInstr(f, func(in *ir.Instr) bool {
		return in.Op == ir.OpCall && in.Callee == f
	})
}

// hasCriticalEdge gates break-crit-edges, which changes the function
// exactly when a critical edge exists.
func hasCriticalEdge(f *ir.Func) bool { return len(ir.CriticalEdges(f)) > 0 }

// hasUnreachableBlock gates prune-eh, which (on this exception-free IR)
// only removes entry-unreachable blocks.
func hasUnreachableBlock(f *ir.Func) bool {
	return len(f.ReachableBlocks()) < len(f.Blocks)
}

// scanStrip: -strip changes a module iff some function is not yet marked
// Stripped (marking alone is a change).
func scanStrip(m *ir.Module) bool {
	for _, f := range m.Funcs {
		if !f.Attrs.Stripped {
			return true
		}
	}
	return false
}

// scanNamedBlocks: -strip-nondebug changes a module iff a named block
// remains.
func scanNamedBlocks(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.Name != "" {
				return true
			}
		}
	}
	return false
}

// scanAnyCall gates the inliners: no call sites, nothing to inline (the
// trailing dead-code sweep in -inline runs only after an inlining).
func scanAnyCall(m *ir.Module) bool {
	for _, f := range m.Funcs {
		if anyInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpCall }) {
			return true
		}
	}
	return false
}

// scanConstMerge: merging needs at least two read-only globals.
func scanConstMerge(m *ir.Module) bool {
	n := 0
	for _, g := range m.Globals {
		if g.ReadOnly {
			if n++; n >= 2 {
				return true
			}
		}
	}
	return false
}

// scanDeadArgElim: the pass only drops parameters of non-main functions.
func scanDeadArgElim(m *ir.Module) bool {
	for _, f := range m.Funcs {
		if f.Name != "main" && len(f.Params) > 0 {
			return true
		}
	}
	return false
}

// scanFunctionAttrs simulates the functionattrs fixpoint without writing:
// it reports whether any function's derived attributes differ from its
// current ones. The simulation reads callee attributes through a shadow map
// so multi-step propagation is modelled exactly like the real run.
type attrTriple struct{ ro, rn, nt bool }

func scanFunctionAttrs(m *ir.Module) bool {
	shadow := make(map[*ir.Func]attrTriple, len(m.Funcs))
	for _, f := range m.Funcs {
		shadow[f] = attrTriple{f.Attrs.ReadOnly, f.Attrs.ReadNone, f.Attrs.NoTrap}
	}
	diff := false
	for again := true; again; {
		again = false
		for _, f := range m.Funcs {
			ro, rn, nt := deriveAttrsShadow(f, shadow)
			if cur := shadow[f]; ro != cur.ro || rn != cur.rn || nt != cur.nt {
				shadow[f] = attrTriple{ro, rn, nt}
				diff, again = true, true
			}
		}
	}
	return diff
}

// deriveAttrsShadow mirrors deriveAttrs but reads callee attributes from
// the shadow map instead of the functions themselves.
func deriveAttrsShadow(f *ir.Func, shadow map[*ir.Func]attrTriple) (readOnly, readNone, noTrap bool) {
	readOnly, readNone, noTrap = true, true, true
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpMemset, ir.OpPrint:
				readOnly, readNone = false, false
			case ir.OpLoad:
				readNone = false
			case ir.OpAlloca:
			case ir.OpCall:
				if in.Callee == nil {
					return false, false, false
				}
				ca, ok := shadow[in.Callee]
				if !ok {
					ca = attrTriple{in.Callee.Attrs.ReadOnly, in.Callee.Attrs.ReadNone, in.Callee.Attrs.NoTrap}
				}
				if !ca.ro && !ca.rn {
					readOnly, readNone = false, false
				}
				if !ca.rn {
					readNone = false
				}
				if !ca.nt {
					noTrap = false
				}
			case ir.OpSDiv, ir.OpSRem:
				if c, ok := ir.IsConst(in.Args[1]); !ok || c == 0 {
					noTrap = false
				}
			}
		}
	}
	readNone = readNone && noTrap
	return readOnly, readNone, noTrap
}
