package passes

import "autophase/internal/ir"

// buildUseCounts returns a map from value to the number of operand slots
// referencing it within f.
func buildUseCounts(f *ir.Func) map[ir.Value]int {
	uses := make(map[ir.Value]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				uses[a]++
			}
		}
	}
	return uses
}

// removeTriviallyDead iteratively deletes instructions whose results are
// unused and that have no side effects. Returns whether anything was
// removed. This is the cheap DCE sweep many passes run as a clean-up.
func removeTriviallyDead(f *ir.Func) bool {
	changed := false
	for {
		uses := buildUseCounts(f)
		removed := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.IsTerminator() || in.HasSideEffects() {
					continue
				}
				if in.Ty.IsVoid() {
					continue
				}
				if uses[in] == 0 {
					b.Remove(in)
					removed = true
				}
			}
		}
		if !removed {
			return changed
		}
		changed = true
	}
}

// foldConstants replaces constant-operand instructions with their folded
// constants across f. Returns whether anything changed.
func foldConstants(f *ir.Func) bool {
	changed := false
	for {
		again := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				c, ok := ir.FoldInstr(in)
				if !ok {
					continue
				}
				f.ReplaceAllUses(in, c)
				b.Remove(in)
				again = true
			}
		}
		if !again {
			return changed
		}
		changed = true
	}
}

// removeUnreachableBlocks deletes blocks not reachable from entry and fixes
// phis in their successors. Returns whether anything changed.
func removeUnreachableBlocks(f *ir.Func) bool {
	reach := f.ReachableBlocks()
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return false
	}
	for _, b := range dead {
		// Drop instructions so dangling uses become undef via replacement.
		for _, in := range b.Instrs {
			if !in.Ty.IsVoid() {
				f.ReplaceAllUses(in, &ir.Undef{Ty: in.Ty})
			}
		}
		f.RemoveBlock(b)
	}
	return true
}

// loopsOf computes the natural loops of f with a fresh dominator tree,
// innermost-first ordering for transformation safety.
func loopsOf(f *ir.Func) []*ir.Loop {
	dt := ir.NewDomTree(f)
	loops := ir.FindLoops(f, dt)
	// Innermost first: sort by descending depth (stable insertion).
	out := make([]*ir.Loop, 0, len(loops))
	for d := maxDepth(loops); d >= 1; d-- {
		for _, l := range loops {
			if l.Depth == d {
				out = append(out, l)
			}
		}
	}
	return out
}

func maxDepth(loops []*ir.Loop) int {
	m := 0
	for _, l := range loops {
		if l.Depth > m {
			m = l.Depth
		}
	}
	return m
}

// isLoopInvariant reports whether v is computed outside loop l (constants,
// params, globals are always invariant).
func isLoopInvariant(v ir.Value, l *ir.Loop) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	return !l.Contains(in.Parent())
}

// vnKey is a structural hash key for pure instructions, used by the
// CSE/GVN family. Constant operands are canonicalized by (width, value) so
// two equal constants number identically; other values use identity.
type vnKey struct {
	op     ir.Op
	pred   ir.CmpPred
	ty     string
	a0, a1 any
	a2     any
	callee *ir.Func
}

// constKey is the canonical form of a constant operand.
type constKey struct {
	bits int
	val  int64
}

// canonVal maps an operand to its value-numbering representation.
func canonVal(v ir.Value) any {
	if c, ok := v.(*ir.Const); ok {
		bits := 64
		if c.Ty.IsInt() {
			bits = c.Ty.Bits
		}
		return constKey{bits, c.Val}
	}
	return v
}

func numberable(in *ir.Instr) bool {
	switch {
	case in.Op.IsBinary(), in.Op == ir.OpICmp, in.Op == ir.OpSelect,
		in.Op == ir.OpGEP, in.Op.IsCast():
		return true
	case in.Op == ir.OpCall:
		return in.Callee != nil && in.Callee.Attrs.ReadNone && len(in.Args) <= 3 && !in.Ty.IsVoid()
	}
	return false
}

func keyOf(in *ir.Instr) vnKey {
	k := vnKey{op: in.Op, pred: in.Pred, ty: in.Ty.String(), callee: in.Callee}
	args := in.Args
	// Canonicalize commutative operand order before keying.
	if in.Op.IsCommutative() && len(args) == 2 && lessValue(args[1], args[0]) {
		args = []ir.Value{args[1], args[0]}
	}
	if len(args) > 0 {
		k.a0 = canonVal(args[0])
	}
	if len(args) > 1 {
		k.a1 = canonVal(args[1])
	}
	if len(args) > 2 {
		k.a2 = canonVal(args[2])
	}
	return k
}

// lessValue imposes a deterministic order on values for commutative
// canonicalization: constants order by value; other values by Ref string.
func lessValue(a, b ir.Value) bool {
	ca, aok := ir.IsConst(a)
	cb, bok := ir.IsConst(b)
	if aok && bok {
		return ca < cb
	}
	if aok != bok {
		return aok // constants first
	}
	return a.Ref() < b.Ref()
}

// singleStoreAlloca reports whether the alloca's address is only used
// directly by loads and stores (no GEP/bitcast/call escapes), i.e. it is
// promotable by mem2reg.
func promotableAlloca(f *ir.Func, al *ir.Instr) bool {
	if al.AllocTy.Kind == ir.ArrayKind {
		return false
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if a != al {
					continue
				}
				switch {
				case in.Op == ir.OpLoad:
				case in.Op == ir.OpStore && ai == 1:
					// address operand only; storing the pointer escapes it
				default:
					return false
				}
			}
		}
	}
	return true
}
