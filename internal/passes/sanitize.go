package passes

import (
	"fmt"
	"strings"

	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// SanitizerReport describes one detected miscompilation: the offending
// pass, the full and delta-minimized failing sequences, the IR immediately
// before and after the offending pass in the minimized repro, and the
// diagnostics that fired. It is the artifact a pass author debugs from —
// the smallest pipeline that still corrupts the module.
type SanitizerReport struct {
	Pass      string   // name of the pass whose output failed
	Index     int      // position of that pass in Sequence
	Sequence  []string // the sequence as attempted (up to and including Pass)
	Minimized []string // minimal subsequence that still fails
	Before    string   // IR entering the offending pass (minimized repro)
	After     string   // IR leaving the offending pass (minimized repro)
	Diags     analysis.Diagnostics
}

// String renders the report: offending pass, minimized sequence,
// diagnostics and the before/after IR dumps.
func (r *SanitizerReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sanitizer: pass %s (position %d of %d) broke the module\n",
		r.Pass, r.Index+1, len(r.Sequence))
	fmt.Fprintf(&sb, "minimized failing sequence (%d passes): %s\n",
		len(r.Minimized), strings.Join(r.Minimized, " "))
	sb.WriteString("diagnostics:\n")
	sb.WriteString(r.Diags.Errors().String())
	sb.WriteString("--- IR before offending pass ---\n")
	sb.WriteString(r.Before)
	sb.WriteString("--- IR after offending pass ---\n")
	sb.WriteString(r.After)
	return sb.String()
}

// Sanitize applies the pass list to a clone of orig, running the
// collect-all verifier and dataflow consistency checks after every pass.
// On the first failure it delta-minimizes the failing prefix against a
// fresh clone and returns the report; nil means the whole pipeline is
// clean. orig is never mutated.
func Sanitize(orig *ir.Module, ps []Pass) *SanitizerReport {
	idx, _, _, _ := runChecked(orig, ps)
	if idx < 0 {
		return nil
	}
	return buildReport(orig, ps[:idx+1])
}

// runChecked applies ps to a clone of orig, checking after each pass.
// It returns the index of the first pass whose output fails (-1 if clean)
// along with the before/after IR of that pass and the diagnostics.
func runChecked(orig *ir.Module, ps []Pass) (failIdx int, before, after string, diags analysis.Diagnostics) {
	m := orig.Clone()
	for i, p := range ps {
		b := m.String()
		p.Run(m)
		ds := analysis.VerifyAll(m)
		// The interprocedural attr check catches passes that stamp stronger
		// function attributes than the effect summaries support — a class of
		// miscompilation the per-function verifier cannot see.
		for _, d := range analysis.VerifyAttrs(m).Errors() {
			ds = append(ds, d)
		}
		if ds.HasErrors() {
			return i, b, m.String(), ds
		}
	}
	return -1, "", "", nil
}

// buildReport minimizes the failing sequence (whose last pass is the
// offender) and assembles the report from the minimized repro.
func buildReport(orig *ir.Module, failing []Pass) *SanitizerReport {
	min := minimizeSequence(orig, failing)
	idx, before, after, diags := runChecked(orig, min)
	if idx < 0 {
		// Minimization invariant violated (should not happen); fall back to
		// the unminimized sequence.
		min = failing
		idx, before, after, diags = runChecked(orig, min)
	}
	rep := &SanitizerReport{
		Pass:      failing[len(failing)-1].Name(),
		Index:     len(failing) - 1,
		Sequence:  passNames(failing),
		Minimized: passNames(min[:idx+1]),
		Before:    before,
		After:     after,
		Diags:     diags,
	}
	return rep
}

// minimizeSequence ddmin-style reduces ps to a subsequence that still fails
// the checks: first by halving chunks, then by removing single passes until
// no single removal keeps the failure.
func minimizeSequence(orig *ir.Module, ps []Pass) []Pass {
	fails := func(seq []Pass) bool {
		idx, _, _, _ := runChecked(orig, seq)
		return idx >= 0
	}
	cur := append([]Pass(nil), ps...)
	// Chunked removal: drop halves, then quarters, ...
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]Pass(nil), cur[:start]...), cur[start+chunk:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				// Re-test the same start: the next chunk shifted in.
			} else {
				start += chunk
			}
		}
	}
	return cur
}

func passNames(ps []Pass) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

// passesOf materializes Table 1 indices into Pass values, stopping at the
// -terminate sentinel exactly like Apply.
func passesOf(sequence []int) []Pass {
	var out []Pass
	for _, idx := range sequence {
		if idx == TerminateIndex {
			break
		}
		out = append(out, ByIndex(idx))
	}
	return out
}

// SanitizeSequence is Sanitize over Table 1 indices.
func SanitizeSequence(orig *ir.Module, sequence []int) *SanitizerReport {
	return Sanitize(orig, passesOf(sequence))
}
