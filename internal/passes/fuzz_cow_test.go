package passes_test

import (
	"testing"

	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// FuzzCloneCOW cross-checks the copy-on-write pipeline against the deep
// clone it replaces: for fuzzer-chosen pass orderings, RunSequence on a COW
// clone must print the same IR and hash to the same fingerprint as
// Clone+Apply, the base module must come back byte-identical, and a run
// reported unchanged must return the base itself at the base's fingerprint
// — the equality contract the two-level compile cache relies on.
func FuzzCloneCOW(f *testing.F) {
	f.Add(int64(1), []byte{38, 31, 30})        // mem2reg, simplifycfg, instcombine
	f.Add(int64(0), []byte{2, 44, 2})          // all no-ops: base reuse path
	f.Add(int64(7), []byte{25, 42, 19, 35})    // inline, deadargelim, functionattrs, tailcallelim
	f.Add(int64(-9), []byte{3, 4, 34, 9, 22})  // strip, strip-nondebug, lower-expect, globaldce, constmerge
	f.Add(int64(13), []byte{43, 7, 32, 28, 6}) // sroa, gvn, dse, adce, globalopt
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		var base *ir.Module
		if seed%4 == 0 {
			bs := progen.Benchmarks()
			base = bs[int(uint64(seed)%uint64(len(bs)))].Clone()
		} else {
			base = progen.Generate(seed, progen.DefaultGen)
		}
		seq := make([]int, 0, len(raw))
		for _, b := range raw {
			idx := int(b) % passes.NumActions
			if idx == passes.TerminateIndex {
				continue
			}
			seq = append(seq, idx)
		}

		baseFP := base.Fingerprint()
		basePrint := base.String()

		deep := base.Clone()
		deepChanged := passes.Apply(deep, seq)

		got, changed := passes.RunSequence(base, seq)

		if base.String() != basePrint {
			t.Fatal("RunSequence mutated the base module")
		}
		if base.Fingerprint() != baseFP {
			t.Fatal("RunSequence changed the base fingerprint")
		}
		if changed != deepChanged {
			t.Fatalf("changed=%v via COW, %v via deep clone (seq %v)", changed, deepChanged, seq)
		}
		if !changed && got != base {
			t.Fatal("unchanged run did not return the base module itself")
		}
		if gp, dp := got.String(), deep.String(); gp != dp {
			t.Fatalf("COW and deep-clone results diverge for seq %v:\n--- cow ---\n%s\n--- deep ---\n%s",
				seq, gp, dp)
		}
		gf, df := got.Fingerprint(), deep.Fingerprint()
		if gf != df {
			t.Fatalf("print-equal modules hash differently: %s vs %s (seq %v)", gf, df, seq)
		}
		if !changed && gf != baseFP {
			t.Fatalf("no-op run fingerprint %s != base %s", gf, baseFP)
		}
	})
}
