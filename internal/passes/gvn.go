package passes

import "autophase/internal/ir"

// earlyCSE performs a dominator-tree-scoped common-subexpression
// elimination sweep with same-block store-to-load forwarding — the cheap
// clean-up LLVM schedules early and often.
func earlyCSE(f *ir.Func) bool {
	changed := domCSE(f)
	if blockLoadForward(f) {
		changed = true
	}
	if removeTriviallyDead(f) {
		changed = true
	}
	return changed
}

// gvn is global value numbering: the dominator-scoped CSE iterated to a
// fixed point together with load forwarding, additionally value-numbering
// pure (readnone) calls — which is what lets a hoisted or repeated call to
// a pure function (the paper's mag() example) collapse to one.
func gvn(f *ir.Func) bool {
	changed := false
	for {
		once := domCSE(f)
		if blockLoadForward(f) {
			once = true
		}
		if removeTriviallyDead(f) {
			once = true
		}
		if !once {
			return changed
		}
		changed = true
	}
}

// domCSE walks the dominator tree keeping a scoped table of available pure
// expressions; an instruction equal to an available one is replaced by it.
func domCSE(f *ir.Func) bool {
	dt := ir.NewDomTree(f)
	reach := f.ReachableBlocks()
	children := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		if id := dt.IDom(b); id != nil {
			children[id] = append(children[id], b)
		}
	}
	avail := make(map[vnKey]*ir.Instr)
	changed := false
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		var added []vnKey
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if !numberable(in) {
				continue
			}
			k := keyOf(in)
			if leader, ok := avail[k]; ok {
				f.ReplaceAllUses(in, leader)
				b.Remove(in)
				changed = true
				continue
			}
			avail[k] = in
			added = append(added, k)
		}
		for _, c := range children[b] {
			walk(c)
		}
		for _, k := range added {
			delete(avail, k)
		}
	}
	if e := f.Entry(); e != nil {
		walk(e)
	}
	return changed
}

// blockLoadForward eliminates redundant loads within a block: a load from
// pointer p can reuse the value of an earlier load or store to p when no
// store, call or memset intervenes.
func blockLoadForward(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[ir.Value]ir.Value) // pointer -> known content
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpLoad:
				p := in.Args[0]
				if v, ok := avail[p]; ok && v.Type().Equal(in.Ty) {
					f.ReplaceAllUses(in, v)
					b.Remove(in)
					changed = true
					continue
				}
				avail[p] = in
			case ir.OpStore:
				// A store invalidates every pointer (conservative aliasing)
				// but makes its own pointer's content known.
				for k := range avail {
					delete(avail, k)
				}
				avail[in.Args[1]] = in.Args[0]
			case ir.OpMemset:
				for k := range avail {
					delete(avail, k)
				}
			case ir.OpCall:
				if in.Callee == nil || !in.Callee.Attrs.ReadNone && !in.Callee.Attrs.ReadOnly {
					for k := range avail {
						delete(avail, k)
					}
				}
			}
		}
	}
	return changed
}
