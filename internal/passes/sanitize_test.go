package passes_test

import (
	"strings"
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// byName materializes a built-in Table 1 pass, panicking on typos so test
// pipelines stay terse.
func byName(name string) passes.Pass {
	p, err := passes.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// buggyDCE is a deliberately miscompiling pass variant: a "dead code
// eliminator" that deletes the first value-producing instruction it sees
// without checking for uses, leaving detached-value operands behind.
type buggyDCE struct{}

func (buggyDCE) Name() string { return "-buggy-dce" }

func (buggyDCE) Run(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.IsTerminator() || in.Op == ir.OpPhi {
					continue
				}
				if len(f.Uses(in)) > 0 {
					b.Remove(in)
					return true
				}
			}
		}
	}
	return false
}

// buggyCFG drops one phi incoming entry, breaking phi/pred agreement.
type buggyCFG struct{}

func (buggyCFG) Name() string { return "-buggy-simplifycfg" }

func (buggyCFG) Run(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				if len(phi.Blocks) > 1 {
					phi.RemovePhiIncoming(phi.Blocks[0])
					return true
				}
			}
		}
	}
	return false
}

// spyPass records whether it ran.
type spyPass struct{ runs *int }

func (spyPass) Name() string          { return "-spy" }
func (s spyPass) Run(*ir.Module) bool { (*s.runs)++; return false }

// TestManagerVerifyEachHalts is the regression test for the VerifyEach fix:
// a verifier failure must stop the pipeline instead of continuing to
// mutate (and re-verify) a corrupted module.
func TestManagerVerifyEachHalts(t *testing.T) {
	m := progen.Benchmark("matmul")
	runs := 0
	pm := passes.NewManager()
	pm.VerifyEach = true
	pm.ApplyPasses(m, []passes.Pass{
		byName("-mem2reg"),
		buggyDCE{},
		spyPass{&runs},
	})
	after, err := pm.FirstVerifyError()
	if err == nil {
		t.Fatal("verifier failure not recorded")
	}
	if after != "-buggy-dce" {
		t.Errorf("failure attributed to %q, want -buggy-dce", after)
	}
	if runs != 0 {
		t.Errorf("pipeline kept running after verifier failure: spy ran %d times", runs)
	}
}

// TestSanitizerFlagsBuggyPass is the mutation test of the acceptance
// criteria: seed a miscompiling pass variant in a realistic pipeline and
// assert the sanitizer detects it, attributes it, delta-minimizes the
// failing sequence and dumps before/after IR.
func TestSanitizerFlagsBuggyPass(t *testing.T) {
	cases := []struct {
		name  string
		bug   passes.Pass
		check string
	}{
		{"dce drops live def", buggyDCE{}, analysis.CheckDetachedValue},
		{"cfg drops phi incoming", buggyCFG{}, analysis.CheckPhiMissing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := progen.Benchmark("gsm")
			seq := []passes.Pass{
				byName("-mem2reg"),
				byName("-instcombine"),
				byName("-simplifycfg"),
				tc.bug,
				byName("-gvn"),
				byName("-adce"),
			}
			pm := passes.NewManager()
			pm.Sanitize = true
			pm.ApplyPasses(m, seq)
			rep := pm.SanitizerReport()
			if rep == nil {
				t.Fatal("sanitizer did not flag the buggy pass")
			}
			if rep.Pass != tc.bug.Name() {
				t.Errorf("offender = %q, want %q", rep.Pass, tc.bug.Name())
			}
			// The pipeline must have halted at the offender: -gvn and -adce
			// never ran.
			if got := len(rep.Sequence); got != 4 {
				t.Errorf("sequence ran %d passes, want halt at 4", got)
			}
			// Minimization must keep the offender and drop most of the
			// healthy prefix.
			if len(rep.Minimized) == 0 ||
				rep.Minimized[len(rep.Minimized)-1] != tc.bug.Name() {
				t.Errorf("minimized %v does not end with the offender", rep.Minimized)
			}
			if len(rep.Minimized) >= len(rep.Sequence) {
				t.Errorf("minimization did not shrink: %d -> %d passes",
					len(rep.Sequence), len(rep.Minimized))
			}
			if len(rep.Diags.ByCheck(tc.check)) == 0 {
				t.Errorf("expected check %s, got %v", tc.check, rep.Diags.Checks())
			}
			if rep.Before == "" || rep.After == "" || rep.Before == rep.After {
				t.Errorf("before/after IR dumps missing or identical")
			}
			if !strings.Contains(rep.String(), tc.bug.Name()) {
				t.Errorf("report rendering does not name the offender")
			}
		})
	}
}

// TestSanitizeMinimalRepro checks the standalone Sanitize entry point: the
// minimized repro must itself fail, and clean pipelines must return nil.
func TestSanitizeMinimalRepro(t *testing.T) {
	m := progen.Benchmark("qsort")
	rep := passes.Sanitize(m, []passes.Pass{
		byName("-mem2reg"),
		buggyCFG{},
	})
	if rep == nil {
		t.Fatal("no report for buggy pipeline")
	}
	// Replaying the minimized sequence reproduces the failure.
	var min []passes.Pass
	for _, name := range rep.Minimized {
		if name == "-buggy-simplifycfg" {
			min = append(min, buggyCFG{})
			continue
		}
		min = append(min, byName(name))
	}
	if rep2 := passes.Sanitize(m, min); rep2 == nil {
		t.Error("minimized sequence does not reproduce the failure")
	}
	// A clean pipeline yields no report, and never mutates its input.
	before := m.String()
	if rep := passes.SanitizeSequence(m, passes.O3Sequence); rep != nil {
		t.Errorf("O3 pipeline flagged:\n%s", rep)
	}
	if m.String() != before {
		t.Error("Sanitize mutated its input module")
	}
}
