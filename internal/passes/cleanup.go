package passes

import "autophase/internal/ir"

// adce is aggressive dead-code elimination: start from observable roots
// (side effects and terminators) and mark transitively; everything unmarked
// dies. Unlike the trivial sweep it removes dead phi cycles.
func adce(f *ir.Func) bool {
	live := make(map[*ir.Instr]bool)
	var wl []*ir.Instr
	mark := func(in *ir.Instr) {
		if in != nil && !live[in] {
			live[in] = true
			wl = append(wl, in)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.IsTerminator() || in.HasSideEffects() {
				mark(in)
			}
		}
	}
	for len(wl) > 0 {
		in := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok {
				mark(d)
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if live[in] {
				continue
			}
			// Dead values may still appear as operands of other dead
			// instructions being removed in the same sweep; replacing with
			// undef keeps intermediate states well-formed.
			if !in.Ty.IsVoid() {
				f.ReplaceAllUses(in, &ir.Undef{Ty: in.Ty})
			}
			b.Remove(in)
			changed = true
		}
	}
	return changed
}

// strip removes local value names (like LLVM's -strip it does not affect
// generated code, only symbol information).
func strip(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.Attrs.Stripped {
			continue
		}
		f.Attrs.Stripped = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Name != "" {
					in.Name = ""
					changed = true
				}
			}
		}
		changed = true
	}
	return changed
}

// stripNonDebug strips non-debug symbol information; in this IR that is
// block names.
func stripNonDebug(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.Name != "" {
				b.Name = ""
				changed = true
			}
		}
	}
	return changed
}

// lowerExpect drops branch-probability hints (the __builtin_expect
// metadata), exactly as LLVM's -lower-expect leaves only the plain branch.
func lowerExpect(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.BranchWeight != 0 {
				in.BranchWeight = 0
				changed = true
			}
		}
	}
	return changed
}

// lowerInvoke lowers invoke instructions; this IR has no exceptions, so
// like LLVM on invoke-free code the pass is a no-op.
func lowerInvoke(*ir.Func) bool { return false }

// lowerAtomic lowers atomics to their non-atomic form; this IR has no
// atomics, so the pass is a no-op.
func lowerAtomic(*ir.Func) bool { return false }

// globalOpt folds loads of read-only global data addressed by constant
// indices and deletes globals that are never referenced.
func globalOpt(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
				if in.Op != ir.OpLoad {
					continue
				}
				g, idx, ok := constGlobalAddr(in.Args[0])
				if !ok || !g.ReadOnly || globalEverStored(m, g) {
					continue
				}
				if idx < 0 || idx >= int64(g.NumElems()) {
					continue
				}
				var v int64
				if idx < int64(len(g.Init)) {
					v = g.Init[idx]
				}
				f.ReplaceAllUses(in, ir.ConstInt(in.Ty, in.Ty.TruncVal(v)))
				b.Remove(in)
				changed = true
			}
		}
	}
	if removeDeadGlobals(m) {
		changed = true
	}
	return changed
}

// constGlobalAddr matches @g or gep(@g, C).
func constGlobalAddr(v ir.Value) (*ir.Global, int64, bool) {
	if g, ok := v.(*ir.Global); ok {
		return g, 0, true
	}
	in, ok := v.(*ir.Instr)
	if !ok || in.Op != ir.OpGEP {
		return nil, 0, false
	}
	g, ok := in.Args[0].(*ir.Global)
	if !ok {
		return nil, 0, false
	}
	c, ok := ir.IsConst(in.Args[1])
	if !ok {
		return nil, 0, false
	}
	return g, c, true
}

// globalEverStored reports whether any instruction may write to g.
func globalEverStored(m *ir.Module, g *ir.Global) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStore:
					if addrRootsAt(in.Args[1], g) || in.Args[0] == ir.Value(g) {
						return true
					}
				case ir.OpMemset:
					if addrRootsAt(in.Args[0], g) {
						return true
					}
				case ir.OpCall:
					// Writes inside callees are found when scanning them.
				}
			}
		}
	}
	return false
}

func addrRootsAt(v ir.Value, g *ir.Global) bool {
	for {
		if v == ir.Value(g) {
			return true
		}
		in, ok := v.(*ir.Instr)
		if !ok {
			return false
		}
		switch in.Op {
		case ir.OpGEP, ir.OpBitCast:
			v = in.Args[0]
		default:
			// A pointer produced by phi/select could alias anything;
			// be conservative.
			return in.Op == ir.OpPhi || in.Op == ir.OpSelect
		}
	}
}

func removeDeadGlobals(m *ir.Module) bool {
	used := make(map[*ir.Global]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					if g, ok := a.(*ir.Global); ok {
						used[g] = true
					}
				}
			}
		}
	}
	changed := false
	for _, g := range append([]*ir.Global(nil), m.Globals...) {
		if !used[g] {
			m.RemoveGlobal(g)
			changed = true
		}
	}
	return changed
}

// globalDCE deletes functions that can never be reached from main and
// globals that are never referenced.
func globalDCE(m *ir.Module) bool {
	reach := make(map[*ir.Func]bool)
	var wl []*ir.Func
	if main := m.Func("main"); main != nil {
		reach[main] = true
		wl = append(wl, main)
	}
	for len(wl) > 0 {
		f := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && !reach[in.Callee] {
					reach[in.Callee] = true
					wl = append(wl, in.Callee)
				}
			}
		}
	}
	changed := false
	if len(reach) > 0 {
		for _, f := range append([]*ir.Func(nil), m.Funcs...) {
			if !reach[f] {
				m.RemoveFunc(f)
				changed = true
			}
		}
	}
	if removeDeadGlobals(m) {
		changed = true
	}
	return changed
}

// constMerge merges identical read-only globals into one, shrinking the
// ROM footprint (LLVM's -constmerge).
func constMerge(m *ir.Module) bool {
	changed := false
	for i := 0; i < len(m.Globals); i++ {
		a := m.Globals[i]
		if !a.ReadOnly {
			continue
		}
		for j := i + 1; j < len(m.Globals); j++ {
			b := m.Globals[j]
			if !b.ReadOnly || !a.Elem.Equal(b.Elem) || !sameInit(a.Init, b.Init) {
				continue
			}
			for _, f := range m.Funcs {
				f.ReplaceAllUses(b, a)
			}
			m.RemoveGlobal(b)
			j--
			changed = true
		}
	}
	return changed
}

func sameInit(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deadArgElim removes parameters a function never reads, shrinking every
// call site with it.
func deadArgElim(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.Name == "main" {
			continue
		}
		for pi := len(f.Params) - 1; pi >= 0; pi-- {
			p := f.Params[pi]
			if f.UseCount(p) > 0 {
				continue
			}
			f.Params = append(f.Params[:pi], f.Params[pi+1:]...)
			for i := pi; i < len(f.Params); i++ {
				f.Params[i].Index = i
			}
			for _, s := range callSites(m, f) {
				if pi < len(s.Args) {
					s.Args = append(s.Args[:pi], s.Args[pi+1:]...)
				}
			}
			changed = true
		}
	}
	return changed
}

// functionAttrs derives ReadOnly/ReadNone bottom-up over the call graph;
// ReadNone additionally requires freedom from trapping operations so that
// callers (licm, gvn) may speculate and deduplicate the call — this is the
// pass that certifies the paper's mag() example for hoisting.
func functionAttrs(m *ir.Module) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, f := range m.Funcs {
			ro, rn, nt := deriveAttrs(f)
			if ro != f.Attrs.ReadOnly || rn != f.Attrs.ReadNone || nt != f.Attrs.NoTrap {
				f.Attrs.ReadOnly = ro
				f.Attrs.ReadNone = rn
				f.Attrs.NoTrap = nt
				changed, again = true, true
			}
		}
	}
	return changed
}

func deriveAttrs(f *ir.Func) (readOnly, readNone, noTrap bool) {
	readOnly, readNone, noTrap = true, true, true
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpMemset, ir.OpPrint:
				readOnly, readNone = false, false
			case ir.OpLoad:
				readNone = false
			case ir.OpAlloca:
				// Local memory is invisible outside; loads from it are
				// covered by the OpLoad case.
			case ir.OpCall:
				if in.Callee == nil {
					return false, false, false
				}
				if !in.Callee.Attrs.ReadOnly && !in.Callee.Attrs.ReadNone {
					readOnly, readNone = false, false
				}
				if !in.Callee.Attrs.ReadNone {
					readNone = false
				}
				if !in.Callee.Attrs.NoTrap {
					noTrap = false
				}
			case ir.OpSDiv, ir.OpSRem:
				// A potentially trapping division makes the function unsafe
				// to speculate.
				if c, ok := ir.IsConst(in.Args[1]); !ok || c == 0 {
					noTrap = false
				}
			}
		}
	}
	// ReadNone retains its speculation contract: pure AND trap-free.
	readNone = readNone && noTrap
	return readOnly, readNone, noTrap
}
