package passes

import "autophase/internal/ir"

// Lattice values for SCCP.
type latState uint8

const (
	latUndef latState = iota // no information yet (bottom)
	latConst                 // known constant
	latOver                  // overdefined (top)
)

type latVal struct {
	state latState
	c     int64
}

// sccp is sparse conditional constant propagation: it tracks constants and
// block reachability simultaneously, so constants flowing around
// never-taken branches are still discovered. Discovered constants replace
// their instructions; branch conditions become constants that -simplifycfg
// subsequently folds (the classic sccp → simplifycfg phase interaction).
func sccp(f *ir.Func) bool {
	lat := make(map[ir.Value]latVal)
	execEdge := make(map[[2]*ir.Block]bool)
	execBlock := make(map[*ir.Block]bool)

	valOf := func(v ir.Value) latVal {
		switch x := v.(type) {
		case *ir.Const:
			return latVal{latConst, x.Val}
		case *ir.Undef:
			// This IR defines undef as zero (the interpreter zero-fills), so
			// the lattice must agree — LLVM's any-value undef would let SCCP
			// fold a phi to a value the program never computes.
			return latVal{latConst, 0}
		case *ir.Param, *ir.Global:
			return latVal{latOver, 0}
		default:
			return lat[v]
		}
	}

	var blockWL []*ir.Block
	var instrWL []*ir.Instr

	markEdge := func(from, to *ir.Block) {
		e := [2]*ir.Block{from, to}
		if execEdge[e] {
			return
		}
		execEdge[e] = true
		if !execBlock[to] {
			execBlock[to] = true
			blockWL = append(blockWL, to)
		} else {
			// New edge into an executed block: phis must re-evaluate.
			for _, phi := range to.Phis() {
				instrWL = append(instrWL, phi)
			}
		}
	}

	raise := func(in *ir.Instr, nv latVal) {
		old := lat[in]
		if old.state == nv.state && (nv.state != latConst || old.c == nv.c) {
			return
		}
		// Monotonic: undef -> const -> over.
		if old.state == latOver {
			return
		}
		if old.state == latConst && nv.state == latConst && old.c != nv.c {
			nv = latVal{latOver, 0}
		}
		lat[in] = nv
		for _, u := range f.Uses(in) {
			instrWL = append(instrWL, u)
		}
	}

	visit := func(in *ir.Instr) {
		b := in.Parent()
		if !execBlock[b] {
			return
		}
		switch {
		case in.Op == ir.OpPhi:
			res := latVal{latUndef, 0}
			for i, a := range in.Args {
				if !execEdge[[2]*ir.Block{in.Blocks[i], b}] {
					continue
				}
				av := valOf(a)
				switch {
				case av.state == latUndef:
				case res.state == latUndef:
					res = av
				case av.state == latOver || (res.state == latConst && av.state == latConst && av.c != res.c):
					res = latVal{latOver, 0}
				}
			}
			raise(in, res)
		case in.Op.IsBinary(), in.Op == ir.OpICmp, in.Op.IsCast(), in.Op == ir.OpSelect:
			args := make([]latVal, len(in.Args))
			anyOver, anyUndef := false, false
			for i, a := range in.Args {
				args[i] = valOf(a)
				anyOver = anyOver || args[i].state == latOver
				anyUndef = anyUndef || args[i].state == latUndef
			}
			switch {
			case anyUndef:
				// keep undef (optimistic)
			case anyOver:
				// Select with a constant condition can still be constant.
				if in.Op == ir.OpSelect && args[0].state == latConst {
					pick := args[2]
					if args[0].c != 0 {
						pick = args[1]
					}
					raise(in, pick)
					return
				}
				raise(in, latVal{latOver, 0})
			default:
				tmp := &ir.Instr{Op: in.Op, Ty: in.Ty, Pred: in.Pred}
				for i := range in.Args {
					tmp.Args = append(tmp.Args, ir.ConstInt(in.Args[i].Type(), args[i].c))
				}
				if c, ok := ir.FoldInstr(tmp); ok {
					raise(in, latVal{latConst, c.Val})
				} else {
					raise(in, latVal{latOver, 0})
				}
			}
		case in.Op == ir.OpBr:
			if len(in.Blocks) == 1 {
				markEdge(b, in.Blocks[0])
				return
			}
			cv := valOf(in.Args[0])
			switch cv.state {
			case latConst:
				if cv.c != 0 {
					markEdge(b, in.Blocks[0])
				} else {
					markEdge(b, in.Blocks[1])
				}
			case latOver:
				markEdge(b, in.Blocks[0])
				markEdge(b, in.Blocks[1])
			}
		case in.Op == ir.OpSwitch:
			cv := valOf(in.Args[0])
			switch cv.state {
			case latConst:
				dest := in.Blocks[0]
				for i, c := range in.Cases {
					if c == cv.c {
						dest = in.Blocks[i+1]
						break
					}
				}
				markEdge(b, dest)
			case latOver:
				for _, t := range in.Blocks {
					markEdge(b, t)
				}
			}
		default:
			// Loads, calls, allocas, geps: overdefined.
			if !in.Ty.IsVoid() {
				raise(in, latVal{latOver, 0})
			}
		}
	}

	execBlock[f.Entry()] = true
	blockWL = append(blockWL, f.Entry())
	for len(blockWL) > 0 || len(instrWL) > 0 {
		if len(blockWL) > 0 {
			b := blockWL[len(blockWL)-1]
			blockWL = blockWL[:len(blockWL)-1]
			for _, in := range b.Instrs {
				visit(in)
			}
			continue
		}
		in := instrWL[len(instrWL)-1]
		instrWL = instrWL[:len(instrWL)-1]
		visit(in)
	}

	// Materialize discovered constants.
	changed := false
	for _, b := range f.Blocks {
		if !execBlock[b] {
			continue
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			lv := lat[in]
			if lv.state != latConst || in.Ty.IsVoid() || in.HasSideEffects() {
				continue
			}
			f.ReplaceAllUses(in, ir.ConstInt(in.Ty, lv.c))
			b.Remove(in)
			changed = true
		}
	}
	if removeTriviallyDead(f) {
		changed = true
	}
	return changed
}

// ipsccp extends sccp interprocedurally: parameters that receive the same
// constant from every call site become that constant, and functions that
// always return one constant have their call results folded.
func ipsccp(m *ir.Module) bool {
	changed := false
	for {
		once := false
		for _, f := range m.Funcs {
			if f.Name == "main" {
				continue // invoked externally
			}
			sites := callSites(m, f)
			if len(sites) == 0 {
				continue
			}
			for pi, p := range f.Params {
				c, ok := commonConstArg(sites, pi)
				if !ok {
					continue
				}
				if f.UseCount(p) == 0 {
					continue
				}
				f.ReplaceAllUses(p, ir.ConstInt(p.Ty, c))
				once = true
			}
		}
		// Fold constant returns into call sites.
		for _, f := range m.Funcs {
			c, ok := constantReturn(f)
			if !ok {
				continue
			}
			for _, g := range m.Funcs {
				for _, b := range g.Blocks {
					for _, in := range b.Instrs {
						if in.Op == ir.OpCall && in.Callee == f && !in.Ty.IsVoid() {
							if g.UseCount(in) > 0 {
								g.ReplaceAllUses(in, ir.ConstInt(in.Ty, c))
								once = true
							}
						}
					}
				}
			}
		}
		for _, f := range m.Funcs {
			if foldConstants(f) {
				once = true
			}
		}
		if !once {
			break
		}
		changed = true
	}
	return changed
}

func callSites(m *ir.Module, f *ir.Func) []*ir.Instr {
	var sites []*ir.Instr
	for _, g := range m.Funcs {
		for _, b := range g.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee == f {
					sites = append(sites, in)
				}
			}
		}
	}
	return sites
}

func commonConstArg(sites []*ir.Instr, pi int) (int64, bool) {
	var c int64
	have := false
	for _, s := range sites {
		if pi >= len(s.Args) {
			return 0, false
		}
		v, ok := ir.IsConst(s.Args[pi])
		if !ok {
			return 0, false
		}
		if have && v != c {
			return 0, false
		}
		c, have = v, true
	}
	return c, have
}

// constantReturn reports whether every return of f yields the same constant.
func constantReturn(f *ir.Func) (int64, bool) {
	var c int64
	have := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		if len(t.Args) == 0 {
			return 0, false
		}
		v, ok := ir.IsConst(t.Args[0])
		if !ok {
			return 0, false
		}
		if have && v != c {
			return 0, false
		}
		c, have = v, true
	}
	return c, have
}

// correlatedPropagation exploits branch conditions: on the true edge of
// `br (icmp eq x, c)` (and the false edge of ne), x is known to be c, so
// dominated uses are rewritten to the constant.
func correlatedPropagation(f *ir.Func) bool {
	changed := false
	dt := ir.NewDomTree(f)
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		cmp, ok := t.Args[0].(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp {
			continue
		}
		c, isC := ir.IsConst(cmp.Args[1])
		if !isC {
			continue
		}
		x := cmp.Args[0]
		var target *ir.Block
		switch cmp.Pred {
		case ir.CmpEQ:
			target = t.Blocks[0]
		case ir.CmpNE:
			target = t.Blocks[1]
		default:
			continue
		}
		if target == t.Blocks[0] && target == t.Blocks[1] {
			continue
		}
		// The rewrite is valid in blocks dominated by the edge; requiring
		// target's only pred edge to be this one makes block dominance by
		// target equivalent to edge dominance.
		if target.NumPredEdges() != 1 {
			continue
		}
		cv := ir.ConstInt(x.Type(), c)
		for _, ub := range f.Blocks {
			if !dt.Dominates(target, ub) {
				continue
			}
			for _, in := range ub.Instrs {
				if in.Op == ir.OpPhi {
					continue
				}
				for i, a := range in.Args {
					if a == x {
						in.Args[i] = cv
						changed = true
					}
				}
			}
		}
	}
	if changed {
		foldConstants(f)
		removeTriviallyDead(f)
	}
	return changed
}
