package passes_test

import (
	"testing"

	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// TestRegistryMatchesTable1 pins the pass registry to the paper's Table 1:
// exact names at exact indices.
func TestRegistryMatchesTable1(t *testing.T) {
	want := map[int]string{
		0: "-correlated-propagation", 1: "-scalarrepl", 2: "-lowerinvoke",
		3: "-strip", 4: "-strip-nondebug", 5: "-sccp", 6: "-globalopt",
		7: "-gvn", 8: "-jump-threading", 9: "-globaldce", 10: "-loop-unswitch",
		11: "-scalarrepl-ssa", 12: "-loop-reduce", 13: "-break-crit-edges",
		14: "-loop-deletion", 15: "-reassociate", 16: "-lcssa",
		17: "-codegenprepare", 18: "-memcpyopt", 19: "-functionattrs",
		20: "-loop-idiom", 21: "-lowerswitch", 22: "-constmerge",
		23: "-loop-rotate", 24: "-partial-inliner", 25: "-inline",
		26: "-early-cse", 27: "-indvars", 28: "-adce", 29: "-loop-simplify",
		30: "-instcombine", 31: "-simplifycfg", 32: "-dse", 33: "-loop-unroll",
		34: "-lower-expect", 35: "-tailcallelim", 36: "-licm", 37: "-sink",
		38: "-mem2reg", 39: "-prune-eh", 40: "-functionattrs", 41: "-ipsccp",
		42: "-deadargelim", 43: "-sroa", 44: "-loweratomic", 45: "-terminate",
	}
	if passes.NumPasses != 46 || passes.NumActions != 45 || passes.TerminateIndex != 45 {
		t.Fatal("registry constants drifted from Table 1")
	}
	for i := 0; i < passes.NumPasses; i++ {
		if passes.Table1Names[i] != want[i] {
			t.Errorf("index %d: %q, want %q", i, passes.Table1Names[i], want[i])
		}
		p := passes.ByIndex(i)
		if i == 19 || i == 40 {
			// The paper lists -functionattrs twice; both indices must
			// resolve to it.
			if p.Name() != "-functionattrs" {
				t.Errorf("index %d should be -functionattrs", i)
			}
			continue
		}
		if p.Name() != want[i] {
			t.Errorf("ByIndex(%d).Name() = %q, want %q", i, p.Name(), want[i])
		}
	}
}

// TestByNameRoundTrip resolves every flag name back to a runnable pass.
func TestByNameRoundTrip(t *testing.T) {
	for i, name := range passes.Table1Names {
		p, err := passes.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if i != 40 && p.Name() != name {
			t.Fatalf("round trip %q -> %q", name, p.Name())
		}
		// Dashless form works too.
		if _, err := passes.ByName(name[1:]); err != nil {
			t.Fatalf("dashless %q: %v", name[1:], err)
		}
	}
	if _, err := passes.ByName("-no-such-pass"); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

// TestTerminateIsIdentity: the sentinel must not touch the module and must
// stop Apply early.
func TestTerminateIsIdentity(t *testing.T) {
	m := progen.Benchmark("adpcm")
	before := m.String()
	if passes.ByIndex(passes.TerminateIndex).Run(m) {
		t.Fatal("-terminate claimed to change the module")
	}
	if m.String() != before {
		t.Fatal("-terminate changed the module")
	}
	// Apply must stop at the sentinel: the mem2reg after it never runs.
	m2 := progen.Benchmark("adpcm")
	passes.Apply(m2, []int{passes.TerminateIndex, 38})
	if m2.String() != before {
		t.Fatal("Apply ran passes after -terminate")
	}
	_ = ir.Void
}

// TestManagerInstrumentation checks the instrumented runner records runs,
// changes and verifier health.
func TestManagerInstrumentation(t *testing.T) {
	m := progen.Benchmark("sha")
	pm := passes.NewManager()
	pm.VerifyEach = true
	changed := pm.Apply(m, []int{38, 31, 38, 45, 30}) // second mem2reg is a no-op; 45 stops
	if !changed {
		t.Fatal("pipeline reported no change")
	}
	stats := pm.Stats()
	byName := map[string]passes.RunStats{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if st := byName["-mem2reg"]; st.Runs != 2 || st.Changed != 1 {
		t.Fatalf("mem2reg stats: %+v", st)
	}
	if _, ok := byName["-instcombine"]; ok {
		t.Fatal("pass after -terminate must not run")
	}
	if after, err := pm.FirstVerifyError(); err != nil {
		t.Fatalf("verifier failed after %s: %v", after, err)
	}
	if rep := pm.Report(); len(rep) < 40 {
		t.Fatalf("report too short: %q", rep)
	}
}
