package passes

import "autophase/internal/ir"

// Inlining thresholds, in the spirit of LLVM's -inline-threshold.
const (
	inlineCalleeMax = 90   // max callee size (instructions)
	inlineGrowthMax = 1200 // stop growing a caller beyond this
)

// inline substitutes small callee bodies at their call sites. Inlining
// removes the call/return FSM handshake and exposes the callee's body to
// the caller's loop passes — and, as the paper's Figures 2–3 show, whether
// it runs before or after -licm decides between Θ(n) and Θ(n²).
func inline(m *ir.Module) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, f := range m.Funcs {
			if f.NumInstrs() > inlineGrowthMax {
				continue
			}
			for _, b := range f.Blocks {
				var call *ir.Instr
				for _, in := range b.Instrs {
					if in.Op == ir.OpCall && inlinable(in.Callee, f) {
						call = in
						break
					}
				}
				if call == nil {
					continue
				}
				inlineCall(f, call)
				changed, again = true, true
				break
			}
			if again {
				break
			}
		}
	}
	if changed {
		// Inlining may leave now-uncalled functions; they stay for
		// -globaldce to collect (pass interplay, as in LLVM).
		for _, f := range m.Funcs {
			removeTriviallyDead(f)
		}
	}
	return changed
}

func inlinable(callee, caller *ir.Func) bool {
	if callee == nil || callee == caller || callee.Attrs.NoInline {
		return false
	}
	if callee.NumInstrs() > inlineCalleeMax {
		return false
	}
	// Directly self-recursive callees cannot be fully substituted.
	for _, b := range callee.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == callee {
				return false
			}
		}
	}
	return true
}

// inlineCall splices callee's body into f at the call site.
func inlineCall(f *ir.Func, call *ir.Instr) {
	callee := call.Callee
	b := call.Parent()

	// Split b at the call: b keeps everything before; cont gets the rest.
	cont := &ir.Block{Name: b.Name + ".cont"}
	f.AddBlockAfter(cont, b)
	idx := -1
	for i, in := range b.Instrs {
		if in == call {
			idx = i
			break
		}
	}
	after := append([]*ir.Instr(nil), b.Instrs[idx+1:]...)
	for _, in := range after {
		b.Remove(in)
		cont.Append(in)
	}
	b.Remove(call)
	// Successor phis now see cont as the predecessor.
	for _, s := range cont.Succs() {
		for _, phi := range s.Phis() {
			for i, pb := range phi.Blocks {
				if pb == b {
					phi.Blocks[i] = cont
				}
			}
		}
	}

	// Clone the callee body.
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	pos := b
	for _, cb := range callee.Blocks {
		nb := &ir.Block{Name: callee.Name + "." + cb.Name}
		f.AddBlockAfter(nb, pos)
		pos = nb
		bmap[cb] = nb
	}
	imap := make(map[*ir.Instr]*ir.Instr)
	retPhi := &ir.Instr{Op: ir.OpPhi, Ty: callee.Ret}
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		for _, in := range cb.Instrs {
			if in.Op == ir.OpRet {
				br := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{cont}}
				nb.Append(br)
				if len(in.Args) == 1 {
					retPhi.SetPhiIncoming(nb, in.Args[0]) // remapped below
				}
				continue
			}
			ni := &ir.Instr{Op: in.Op, Ty: in.Ty, Name: in.Name, Pred: in.Pred,
				Callee: in.Callee, AllocTy: in.AllocTy, BranchWeight: in.BranchWeight,
				Cases: append([]int64(nil), in.Cases...)}
			for _, tb := range in.Blocks {
				ni.Blocks = append(ni.Blocks, bmap[tb])
			}
			ni.Args = append([]ir.Value(nil), in.Args...)
			imap[in] = ni
			nb.Append(ni)
		}
	}
	remap := func(v ir.Value) ir.Value {
		switch x := v.(type) {
		case *ir.Instr:
			if ni, ok := imap[x]; ok {
				return ni
			}
			return &ir.Undef{Ty: x.Ty}
		case *ir.Param:
			if x.Parent == callee {
				return call.Args[x.Index]
			}
		}
		return v
	}
	for _, cb := range callee.Blocks {
		for _, in := range cb.Instrs {
			ni, ok := imap[in]
			if !ok {
				continue
			}
			for ai := range ni.Args {
				ni.Args[ai] = remap(ni.Args[ai])
			}
		}
	}
	for i, a := range retPhi.Args {
		retPhi.Args[i] = remap(a)
	}

	// Enter the inlined body.
	b.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{bmap[callee.Entry()]}})

	// Return value plumbing.
	if !callee.Ret.IsVoid() && len(retPhi.Args) > 0 {
		var rv ir.Value = retPhi
		if len(retPhi.Args) == 1 {
			rv = retPhi.Args[0]
		} else {
			cont.Prepend(retPhi)
		}
		f.ReplaceAllUses(call, rv)
	} else if !call.Ty.IsVoid() {
		f.ReplaceAllUses(call, &ir.Undef{Ty: call.Ty})
	}
}

// partialInliner inlines only trivially small (single-block) callees — a
// reduced stand-in for LLVM's outline-the-cold-path partial inliner that
// still changes the inlining/licm phase interplay.
func partialInliner(m *ir.Module) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				var call *ir.Instr
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall || !inlinable(in.Callee, f) {
						continue
					}
					if len(in.Callee.Blocks) != 1 {
						continue
					}
					call = in
					break
				}
				if call == nil {
					continue
				}
				inlineCall(f, call)
				changed, again = true, true
				break
			}
			if again {
				break
			}
		}
	}
	return changed
}

// tailCallElim rewrites a directly self-recursive tail call into a branch
// back to the function entry, turning recursion into a loop (Table 1's
// -tailcallelim).
func tailCallElim(f *ir.Func) bool {
	// Find tail sites: `r = call @f(args); ret r` or `call @f(...); ret`.
	type site struct {
		call *ir.Instr
		ret  *ir.Instr
	}
	var sites []site
	for _, b := range f.Blocks {
		n := len(b.Instrs)
		if n < 2 {
			continue
		}
		ret := b.Instrs[n-1]
		call := b.Instrs[n-2]
		if ret.Op != ir.OpRet || call.Op != ir.OpCall || call.Callee != f {
			continue
		}
		if len(ret.Args) == 1 && ret.Args[0] != ir.Value(call) {
			continue
		}
		sites = append(sites, site{call, ret})
	}
	if len(sites) == 0 {
		return false
	}
	// New entry that only branches to the old entry; params become phis.
	oldEntry := f.Entry()
	ne := &ir.Block{Name: "tce.entry"}
	f.PrependBlock(ne)
	ne.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{oldEntry}})

	phis := make([]*ir.Instr, len(f.Params))
	for i, p := range f.Params {
		phi := &ir.Instr{Op: ir.OpPhi, Ty: p.Ty}
		phi.SetPhiIncoming(ne, p)
		phis[i] = phi
	}
	// Replace param uses before inserting the phis (so the phi's own
	// incoming keeps the raw param).
	for i, p := range f.Params {
		f.ReplaceAllUses(p, phis[i])
	}
	for i := len(phis) - 1; i >= 0; i-- {
		oldEntry.Prepend(phis[i])
	}
	for _, s := range sites {
		b := s.call.Parent()
		for i, phi := range phis {
			phi.SetPhiIncoming(b, s.call.Args[i])
		}
		b.Remove(s.ret)
		b.Remove(s.call)
		b.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{oldEntry}})
	}
	return true
}

// pruneEH has no exceptions to prune in this IR; like its LLVM namesake on
// exception-free code it still removes unreachable blocks.
func pruneEH(f *ir.Func) bool {
	return removeUnreachableBlocks(f)
}
