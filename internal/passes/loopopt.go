package passes

import (
	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// ivInfo describes an affine induction variable: phi = [init, preheader],
// [phi + step, latch] with constant init and step.
type ivInfo struct {
	phi    *ir.Instr
	next   *ir.Instr // the add feeding the backedge (nil when not affine)
	init   int64
	step   int64
	affine bool // init and step constant
}

// analyzeIVs inspects the phis of the block carrying the loop-carried values
// (l.Header) given the canonical preheader and latch.
func analyzeIVs(l *ir.Loop, ph, latch *ir.Block) []ivInfo {
	var ivs []ivInfo
	for _, phi := range l.Header.Phis() {
		info := ivInfo{phi: phi}
		vp, okP := phi.PhiIncoming(ph)
		vl, okL := phi.PhiIncoming(latch)
		if !okP || !okL {
			continue
		}
		if c, ok := ir.IsConst(vp); ok {
			info.init = c
			if add, isI := vl.(*ir.Instr); isI && add.Op == ir.OpAdd && l.Contains(add.Parent()) {
				var stepV ir.Value
				switch {
				case add.Args[0] == phi:
					stepV = add.Args[1]
				case add.Args[1] == phi:
					stepV = add.Args[0]
				}
				if stepV != nil {
					if sc, ok := ir.IsConst(stepV); ok {
						info.next = add
						info.step = sc
						info.affine = true
					}
				}
			}
		}
		ivs = append(ivs, info)
	}
	return ivs
}

// exitTest describes a rotated loop's latch-exit condition icmp(pred, X, C)
// where X is an affine IV's phi or next value.
type exitTest struct {
	iv       ivInfo
	onNext   bool // test is applied to iv.next rather than the phi
	pred     ir.CmpPred
	bound    int64
	bits     int
	exitWhen bool // branch leaves the loop when the condition equals this
}

// latchExitTest matches the canonical rotated-loop exit in latch:
// `br (icmp pred X, C), a, b` with exactly one target outside the loop.
func latchExitTest(l *ir.Loop, latch *ir.Block, ivs []ivInfo) (exitTest, bool) {
	t := latch.Term()
	if t == nil || !t.IsConditionalBr() {
		return exitTest{}, false
	}
	in0, in1 := l.Contains(t.Blocks[0]), l.Contains(t.Blocks[1])
	if in0 == in1 {
		return exitTest{}, false
	}
	cmp, ok := t.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return exitTest{}, false
	}
	c, ok := ir.IsConst(cmp.Args[1])
	if !ok {
		return exitTest{}, false
	}
	for _, iv := range ivs {
		if !iv.affine {
			continue
		}
		et := exitTest{iv: iv, pred: cmp.Pred, bound: c, exitWhen: !in0}
		if t := cmp.Args[0].Type(); t.IsInt() {
			et.bits = t.Bits
		} else {
			et.bits = 64
		}
		switch cmp.Args[0] {
		case ir.Value(iv.phi):
			et.onNext = false
			return et, true
		case ir.Value(iv.next):
			et.onNext = true
			return et, true
		}
	}
	return exitTest{}, false
}

// tripCountSimLimit caps the exit-test simulation fallback used when the
// closed form does not apply. All trip-count queries share this single
// bound (callers with tighter thresholds, e.g. the unroller, apply their
// own on top of the returned count).
const tripCountSimLimit = 1 << 16

// tripCount returns the rotated (do-while) loop's number of body
// executions. The count comes from the SCEV closed form in O(1) when one
// exists; otherwise it falls back to simulating the exit test, capped at
// tripCountSimLimit iterations.
func (et exitTest) tripCount() (int64, bool) {
	n, kind := analysis.ExitCount(et.iv.init, et.iv.step, et.bound, et.bits, et.pred, et.onNext, et.exitWhen)
	switch kind {
	case analysis.TripFinite:
		return n, true
	case analysis.TripInfinite:
		return 0, false
	}
	return et.simTripCount(tripCountSimLimit)
}

// simTripCount simulates the exit test for up to max body executions — the
// pre-SCEV implementation, kept as the fallback and as the differential
// oracle for the closed form.
func (et exitTest) simTripCount(max int64) (int64, bool) {
	ty := ir.IntType(et.bits)
	cur := ty.TruncVal(et.iv.init)
	for n := int64(1); n <= max; n++ {
		next := ir.EvalBinary(ir.OpAdd, ty, cur, et.iv.step)
		x := cur
		if et.onNext {
			x = next
		}
		if et.pred.Eval(x, et.bound, et.bits) == et.exitWhen {
			return n, true
		}
		cur = next
	}
	return 0, false
}

// ivValueAtExit returns the value an affine IV's phi (and next) hold when a
// rotated loop with trip count n exits.
func ivValueAtExit(iv ivInfo, n int64, ty *ir.Type) (phiVal, nextVal int64) {
	phiVal = ty.TruncVal(iv.init + (n-1)*iv.step)
	nextVal = ty.TruncVal(iv.init + n*iv.step)
	return
}

// licm hoists loop-invariant computation into the preheader: pure
// arithmetic always; loads and readonly/readnone calls when the loop body
// is free of writes — this is what moves the paper's mag() call out of the
// normalization loop once functionattrs has proven it pure.
func licm(f *ir.Func) bool {
	// Loop passes require canonical loops; LLVM's pass manager schedules
	// -loop-simplify implicitly, and so do we.
	changed := loopSimplify(f)
	for _, l := range loopsOf(f) {
		ph := l.Preheader()
		if ph == nil {
			continue
		}
		lw := analyzeLoopWrites(l)
		for again := true; again; {
			again = false
			for _, b := range l.Body {
				for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
					if !hoistable(in, l, lw) {
						continue
					}
					inv := true
					for _, a := range in.Args {
						if !isLoopInvariant(a, l) {
							inv = false
							break
						}
					}
					if !inv {
						continue
					}
					b.Remove(in)
					ph.InsertBeforeTerm(in)
					again, changed = true, true
				}
			}
		}
	}
	return changed
}

// loopWrites summarizes a loop body's memory effects for hoisting
// decisions: whether anything writes, and the set of written address roots
// (globals and allocas; nil roots with unknown=true means any address may
// be written).
type loopWrites struct {
	any     bool
	unknown bool
	roots   map[ir.Value]bool
}

func analyzeLoopWrites(l *ir.Loop) loopWrites {
	lw := loopWrites{roots: make(map[ir.Value]bool)}
	addRoot := func(ptr ir.Value) {
		if r, ok := addrRoot(ptr); ok {
			lw.roots[r] = true
		} else {
			lw.unknown = true
		}
	}
	for _, b := range l.Body {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				lw.any = true
				addRoot(in.Args[1])
			case ir.OpMemset:
				lw.any = true
				addRoot(in.Args[0])
			case ir.OpCall:
				if in.Callee == nil || (!in.Callee.Attrs.ReadNone && !in.Callee.Attrs.ReadOnly) {
					lw.any = true
					lw.unknown = true
				}
			}
		}
	}
	return lw
}

// addrRoot walks gep/bitcast chains to the underlying object.
func addrRoot(v ir.Value) (ir.Value, bool) {
	for {
		switch x := v.(type) {
		case *ir.Global:
			return x, true
		case *ir.Instr:
			switch x.Op {
			case ir.OpAlloca:
				return x, true
			case ir.OpGEP, ir.OpBitCast:
				v = x.Args[0]
			default:
				return nil, false
			}
		default:
			return nil, false
		}
	}
}

// calleeReadRoots returns the set of globals f (transitively) loads from;
// ok=false when a load's root cannot be identified. Callees cannot observe
// the caller's allocas (calls pass integer values only), so globals are the
// whole aliasing surface.
func calleeReadRoots(f *ir.Func, seen map[*ir.Func]bool) (map[*ir.Global]bool, bool) {
	if seen[f] {
		return map[*ir.Global]bool{}, true
	}
	seen[f] = true
	roots := make(map[*ir.Global]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				r, ok := addrRoot(in.Args[0])
				if !ok {
					return nil, false
				}
				if g, isG := r.(*ir.Global); isG {
					roots[g] = true
				}
			case ir.OpCall:
				if in.Callee == nil {
					return nil, false
				}
				sub, ok := calleeReadRoots(in.Callee, seen)
				if !ok {
					return nil, false
				}
				for g := range sub {
					roots[g] = true
				}
			}
		}
	}
	return roots, true
}

// hoistable reports whether the instruction may move to the preheader,
// where it executes unconditionally (so it must be safe to speculate).
func hoistable(in *ir.Instr, l *ir.Loop, lw loopWrites) bool {
	switch {
	case in.Op.IsBinary():
		// Speculating a division needs a known-nonzero divisor.
		if in.Op == ir.OpSDiv || in.Op == ir.OpSRem {
			c, ok := ir.IsConst(in.Args[1])
			return ok && c != 0
		}
		return true
	case in.Op == ir.OpICmp, in.Op == ir.OpSelect, in.Op.IsCast(), in.Op == ir.OpGEP:
		return true
	case in.Op == ir.OpLoad:
		// Safe when nothing in the loop writes memory: the loaded value is
		// the same every iteration, and the program's own execution proves
		// dereferenceability only if the load always ran — we additionally
		// require the load's block to be the header or the single latch to
		// avoid speculating a guarded load.
		if lw.any {
			return false
		}
		b := in.Parent()
		return b == l.Header || (len(l.Latches) == 1 && b == l.Latches[0])
	case in.Op == ir.OpCall:
		callee := in.Callee
		if callee == nil || !callee.Attrs.NoTrap {
			return false
		}
		if callee.Attrs.ReadNone {
			return true
		}
		// ReadOnly calls hoist when the loop's writes cannot touch what the
		// callee reads (the paper's mag() example once -functionattrs has
		// certified the callee).
		if !callee.Attrs.ReadOnly || lw.unknown {
			return false
		}
		reads, ok := calleeReadRoots(callee, map[*ir.Func]bool{})
		if !ok {
			return false
		}
		for g := range reads {
			if lw.roots[ir.Value(g)] {
				return false
			}
		}
		return true
	}
	return false
}

// loopDeletion removes loops that compute nothing observable: no stores,
// calls or prints, no values used outside, and a provably finite trip
// count. indvars' exit-value rewriting is what typically makes a loop's
// results dead and exposes it to this pass.
func loopDeletion(f *ir.Func) bool {
	changed := loopSimplify(f)
	for again := true; again; {
		again = false
		for _, l := range loopsOf(f) {
			ph := l.Preheader()
			latch := l.SingleLatch()
			if ph == nil || latch == nil {
				continue
			}
			exits := l.Exits()
			if len(exits) != 1 {
				continue
			}
			pure := true
			for _, b := range l.Body {
				for _, in := range b.Instrs {
					switch in.Op {
					case ir.OpStore, ir.OpMemset, ir.OpPrint, ir.OpCall:
						pure = false
					case ir.OpSDiv, ir.OpSRem:
						if c, ok := ir.IsConst(in.Args[1]); !ok || c == 0 {
							pure = false
						}
					}
				}
			}
			if !pure {
				continue
			}
			usedOutside := false
			inLoop := make(map[*ir.Block]bool)
			for _, b := range l.Body {
				inLoop[b] = true
			}
			for _, b := range l.Body {
				for _, in := range b.Instrs {
					if in.Ty.IsVoid() {
						continue
					}
					for _, u := range f.Uses(in) {
						if !inLoop[u.Parent()] {
							usedOutside = true
						}
					}
				}
			}
			if usedOutside {
				continue
			}
			// Termination: a computable trip count proves it; the latch
			// must be the only exiting block for the test to be exact.
			if ex := l.ExitingBlocks(); len(ex) != 1 || ex[0] != latch {
				continue
			}
			ivs := analyzeIVs(l, ph, latch)
			et, ok := latchExitTest(l, latch, ivs)
			if !ok {
				continue
			}
			if _, ok := et.tripCount(); !ok {
				continue
			}
			// Retarget the preheader straight to the exit. Exit phis that
			// merged a value carried out through the latch now receive that
			// value (a non-loop value, per the used-outside check) along
			// the preheader edge instead.
			exit := exits[0]
			for _, phi := range exit.Phis() {
				for _, pb := range append([]*ir.Block(nil), phi.Blocks...) {
					if l.Contains(pb) {
						if v, ok := phi.PhiIncoming(pb); ok {
							phi.RemovePhiIncoming(pb)
							phi.SetPhiIncoming(ph, v)
						}
					}
				}
			}
			ph.Term().ReplaceTarget(l.Header, exit)
			// The loop blocks are now unreachable.
			removeUnreachableBlocks(f)
			changed, again = true, true
			break
		}
	}
	return changed
}

// indvars canonicalizes induction variables; its observable work here is
// exit-value rewriting: uses of an affine IV outside a loop with computable
// trip count are replaced by the closed-form final value, breaking the
// dependence on the loop (and often leaving it dead for -loop-deletion).
func indvars(f *ir.Func) bool {
	changed := loopSimplify(f)
	for _, l := range loopsOf(f) {
		ph := l.Preheader()
		latch := l.SingleLatch()
		if ph == nil || latch == nil {
			continue
		}
		if ex := l.ExitingBlocks(); len(ex) != 1 || ex[0] != latch {
			continue
		}
		ivs := analyzeIVs(l, ph, latch)
		et, ok := latchExitTest(l, latch, ivs)
		if !ok {
			continue
		}
		n, ok := et.tripCount()
		if !ok {
			continue
		}
		inLoop := make(map[*ir.Block]bool)
		for _, b := range l.Body {
			inLoop[b] = true
		}
		// The latch is the only exiting block, so any use of an IV outside
		// the loop — direct, or carried through exit phis and forwarding
		// blocks — observes exactly the value at loop exit.
		rewrite := func(old ir.Value, ty *ir.Type, exitVal int64) {
			cv := ir.ConstInt(ty, exitVal)
			for _, u := range f.Uses(old) {
				if inLoop[u.Parent()] {
					continue
				}
				u.ReplaceUses(old, cv)
				changed = true
			}
		}
		for _, iv := range ivs {
			if !iv.affine {
				continue
			}
			phiV, nextV := ivValueAtExit(iv, n, iv.phi.Ty)
			rewrite(iv.phi, iv.phi.Ty, phiV)
			if iv.next != nil {
				rewrite(iv.next, iv.next.Ty, nextV)
			}
		}
	}
	if changed {
		foldConstants(f)
		removeTriviallyDead(f)
	}
	return changed
}

// loopIdiom recognizes memset loops — a rotated counted loop whose body
// only stores one invariant value through a unit-stride address — and
// replaces them with the burst memset intrinsic the HLS backend maps to a
// streaming write engine.
func loopIdiom(f *ir.Func) bool {
	changed := loopSimplify(f)
	for again := true; again; {
		again = false
		for _, l := range loopsOf(f) {
			if idiomOne(f, l) {
				changed, again = true, true
				break
			}
		}
	}
	return changed
}

func idiomOne(f *ir.Func, l *ir.Loop) bool {
	ph := l.Preheader()
	latch := l.SingleLatch()
	if ph == nil || latch == nil {
		return false
	}
	// Single-block rotated loop: header == latch.
	if l.Header != latch || len(l.Body) != 1 {
		return false
	}
	ivs := analyzeIVs(l, ph, latch)
	et, ok := latchExitTest(l, latch, ivs)
	if !ok || !et.iv.affine || et.iv.step != 1 {
		return false
	}
	n, ok := et.tripCount()
	if !ok {
		return false
	}
	// Body must be exactly: phi(s), gep(base, iv), store val -> gep,
	// iv.next, icmp, br.
	var store, gep *ir.Instr
	for _, in := range latch.Instrs {
		switch in.Op {
		case ir.OpPhi:
			if in != et.iv.phi {
				return false // extra loop-carried state
			}
		case ir.OpGEP:
			if gep != nil {
				return false
			}
			gep = in
		case ir.OpStore:
			if store != nil {
				return false
			}
			store = in
		case ir.OpAdd:
			if in != et.iv.next {
				return false
			}
		case ir.OpICmp, ir.OpBr:
		default:
			return false
		}
	}
	if store == nil || gep == nil {
		return false
	}
	if gep.Args[0] == nil || !isLoopInvariant(gep.Args[0], l) || gep.Args[1] != ir.Value(et.iv.phi) {
		return false
	}
	if store.Args[1] != ir.Value(gep) || !isLoopInvariant(store.Args[0], l) {
		return false
	}
	// No outside uses of loop values.
	for _, in := range latch.Instrs {
		if in.Ty.IsVoid() {
			continue
		}
		for _, u := range f.Uses(in) {
			if u.Parent() != latch {
				return false
			}
		}
	}
	exits := l.Exits()
	if len(exits) != 1 {
		return false
	}
	// Build: base' = gep(base, init); memset(base', val, n); br exit.
	t := ph.Term()
	base := gep.Args[0]
	if et.iv.init != 0 {
		ng := &ir.Instr{Op: ir.OpGEP, Ty: base.Type(),
			Args: []ir.Value{base, ir.ConstInt(ir.I64, et.iv.init)}}
		ph.InsertBefore(ng, t)
		base = ng
	}
	ms := &ir.Instr{Op: ir.OpMemset, Ty: ir.Void,
		Args: []ir.Value{base, store.Args[0], ir.ConstInt(ir.I64, n)}}
	ph.InsertBefore(ms, t)
	t.ReplaceTarget(l.Header, exits[0])
	removeUnreachableBlocks(f)
	return true
}

// loopReduce is strength reduction: multiplications of an affine IV by a
// loop-invariant constant become a second accumulator IV updated by
// addition — trading the multiplier's long delay for an adder.
func loopReduce(f *ir.Func) bool {
	changed := loopSimplify(f)
	for _, l := range loopsOf(f) {
		ph := l.Preheader()
		latch := l.SingleLatch()
		if ph == nil || latch == nil {
			continue
		}
		ivs := analyzeIVs(l, ph, latch)
		for _, iv := range ivs {
			if !iv.affine {
				continue
			}
			for _, u := range append([]*ir.Instr(nil), f.Uses(iv.phi)...) {
				if u.Op != ir.OpMul || !l.Contains(u.Parent()) {
					continue
				}
				var k int64
				var ok bool
				switch {
				case u.Args[0] == ir.Value(iv.phi):
					k, ok = ir.IsConst(u.Args[1])
				case u.Args[1] == ir.Value(iv.phi):
					k, ok = ir.IsConst(u.Args[0])
				}
				if !ok {
					continue
				}
				// acc = phi [init*k, ph], [acc + step*k, latch]
				acc := &ir.Instr{Op: ir.OpPhi, Ty: u.Ty}
				accNext := &ir.Instr{Op: ir.OpAdd, Ty: u.Ty,
					Args: []ir.Value{acc, ir.ConstInt(u.Ty, iv.step*k)}}
				acc.SetPhiIncoming(ph, ir.ConstInt(u.Ty, iv.init*k))
				acc.SetPhiIncoming(latch, accNext)
				l.Header.Prepend(acc)
				latch.InsertBeforeTerm(accNext)
				f.ReplaceAllUses(u, acc)
				u.Parent().Remove(u)
				changed = true
			}
		}
	}
	if changed {
		removeTriviallyDead(f)
	}
	return changed
}

// loopUnswitch hoists a loop-invariant conditional out of the loop by
// cloning the loop body for each side of the branch, so each version runs
// branch-free. Guarded to loops whose values never escape.
func loopUnswitch(f *ir.Func) bool {
	loopSimplify(f)
	for _, l := range loopsOf(f) {
		if unswitchOne(f, l) {
			return true // one unswitch per run (exponential growth guard)
		}
	}
	return false
}

func unswitchOne(f *ir.Func, l *ir.Loop) bool {
	ph := l.Preheader()
	if ph == nil || len(l.Body) > 24 {
		return false
	}
	// Find an invariant conditional branch inside the loop.
	var swb *ir.Block
	var cond ir.Value
	for _, b := range l.Body {
		t := b.Term()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		if l.Contains(t.Blocks[0]) && l.Contains(t.Blocks[1]) &&
			isLoopInvariant(t.Args[0], l) {
			if _, isConst := ir.IsConst(t.Args[0]); isConst {
				continue // simplifycfg's job
			}
			swb, cond = b, t.Args[0]
			break
		}
	}
	if swb == nil {
		return false
	}
	// Loop values must not escape, and exits must be phi-free, so cloning
	// requires no fix-ups beyond the CFG itself.
	inLoop := make(map[*ir.Block]bool)
	for _, b := range l.Body {
		inLoop[b] = true
	}
	for _, b := range l.Body {
		for _, in := range b.Instrs {
			if in.Ty.IsVoid() {
				continue
			}
			for _, u := range f.Uses(in) {
				if !inLoop[u.Parent()] {
					return false
				}
			}
		}
	}
	for _, e := range l.Exits() {
		if len(e.Phis()) > 0 {
			return false
		}
	}
	// Clone the loop body.
	bmap := make(map[*ir.Block]*ir.Block, len(l.Body))
	imap := make(map[*ir.Instr]*ir.Instr)
	for _, b := range l.Body {
		nb := &ir.Block{Name: b.Name + ".us"}
		f.AddBlockAfter(nb, l.Body[len(l.Body)-1])
		bmap[b] = nb
	}
	for _, b := range l.Body {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &ir.Instr{Op: in.Op, Ty: in.Ty, Pred: in.Pred, Callee: in.Callee,
				AllocTy: in.AllocTy, BranchWeight: in.BranchWeight,
				Cases: append([]int64(nil), in.Cases...)}
			for _, tb := range in.Blocks {
				if ntb, ok := bmap[tb]; ok {
					ni.Blocks = append(ni.Blocks, ntb)
				} else {
					ni.Blocks = append(ni.Blocks, tb)
				}
			}
			ni.Args = make([]ir.Value, len(in.Args))
			copy(ni.Args, in.Args)
			imap[in] = ni
			nb.Append(ni)
		}
	}
	for _, b := range l.Body {
		for _, in := range b.Instrs {
			ni := imap[in]
			for ai, a := range ni.Args {
				if d, ok := a.(*ir.Instr); ok {
					if nd, ok := imap[d]; ok {
						ni.Args[ai] = nd
					}
				}
			}
		}
	}
	// Specialize: original takes the true side, clone the false side.
	origT := swb.Term()
	tTrue, tFalse := origT.Blocks[0], origT.Blocks[1]
	swb.Remove(origT)
	if tFalse != tTrue {
		for _, phi := range tFalse.Phis() {
			phi.RemovePhiIncoming(swb)
		}
	}
	swb.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{tTrue}})

	cswb := bmap[swb]
	cT := cswb.Term()
	cTrue := cT.Blocks[0]
	cFalseT := cT.Blocks[1]
	cswb.Remove(cT)
	if cTrue != cFalseT {
		for _, phi := range cTrue.Phis() {
			phi.RemovePhiIncoming(cswb)
		}
	}
	cswb.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{cFalseT}})

	// Branch on the invariant condition in the preheader.
	pt := ph.Term()
	ph.Remove(pt)
	ph.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{cond},
		Blocks: []*ir.Block{l.Header, bmap[l.Header]}})
	// Dead halves of each specialized loop disappear here.
	removeUnreachableBlocks(f)
	return true
}
