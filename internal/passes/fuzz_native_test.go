package passes_test

import (
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// FuzzApplyVerify drives fuzzer-chosen pass orderings over random (and
// benchmark) programs and checks every intermediate module stays
// verifiable — the invariant the pass sanitizer enforces during training.
// Byte i of the input selects the i-th pass to run.
func FuzzApplyVerify(f *testing.F) {
	f.Add(int64(1), []byte{38, 31, 30})     // mem2reg, simplifycfg, instcombine
	f.Add(int64(7), []byte{38, 7, 28, 32})  // mem2reg, gvn, adce, dse
	f.Add(int64(42), []byte{43, 26, 8, 0})  // sroa, early-cse, jump-threading, corr-prop
	f.Add(int64(-3), []byte{5, 23, 36, 33}) // sccp, loop-rotate, licm, loop-unroll
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 24 {
			raw = raw[:24] // keep individual executions fast
		}
		var m *ir.Module
		if seed%4 == 0 {
			bs := progen.Benchmarks()
			m = bs[int(uint64(seed)%uint64(len(bs)))].Clone()
		} else {
			m = progen.Generate(seed, progen.DefaultGen)
		}
		seq := make([]int, 0, len(raw))
		for _, b := range raw {
			idx := int(b) % passes.NumActions
			if idx == passes.TerminateIndex {
				continue // termination is uninteresting for invariant fuzzing
			}
			seq = append(seq, idx)
		}
		if rep := passes.SanitizeSequence(m, seq); rep != nil {
			t.Fatalf("pass pipeline corrupted the module:\n%s", rep)
		}
		// The sanitizer works on a clone; also apply for real and run the
		// collect-all verifier to cover the non-sanitized path.
		passes.Apply(m, seq)
		if ds := analysis.VerifyAll(m); ds.HasErrors() {
			t.Fatalf("VerifyAll after Apply:\n%s", ds)
		}
	})
}
