package passes_test

import (
	"fmt"

	"autophase/internal/hls"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// Example demonstrates why ordering matters: the same three passes in two
// orders give different circuits.
func Example() {
	orderA := []int{38, 23, 33} // mem2reg, loop-rotate, loop-unroll
	orderB := []int{33, 23, 38} // the reverse: unroll first finds no rotated loop

	prof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	cycles := func(seq []int) int64 {
		m := progen.Benchmark("matmul")
		passes.Apply(m, seq)
		rep, err := prof.Profile(m)
		if err != nil {
			panic(err)
		}
		return rep.Cycles
	}
	fmt.Println("rotate-then-unroll beats unroll-then-rotate:", cycles(orderA) < cycles(orderB))
	// Output:
	// rotate-then-unroll beats unroll-then-rotate: true
}

// ExampleByName resolves Table 1 flag names to runnable passes.
func ExampleByName() {
	p, err := passes.ByName("-mem2reg")
	if err != nil {
		panic(err)
	}
	m := progen.Benchmark("gsm")
	fmt.Println("changed:", p.Run(m))
	fmt.Println("verifies:", m.Verify() == nil)
	// Output:
	// changed: true
	// verifies: true
}
