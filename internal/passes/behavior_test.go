package passes_test

import (
	"testing"

	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// countOp counts instructions with the given opcode across the module.
func countOp(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func apply(t *testing.T, m *ir.Module, names ...string) {
	t.Helper()
	for _, n := range names {
		p, err := passes.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(m)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after %v: %v", names, err)
	}
}

func cyclesOf(t *testing.T, m *ir.Module) int64 {
	t.Helper()
	rep, err := behaviorProfiler.Profile(m)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Cycles
}

// behaviorProfiler pins the interpreter so pass-behavior assertions measure
// the reference engine, not whichever backend the auto cascade picks.
var behaviorProfiler = hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})

// TestMem2RegPromotesScalars: after mem2reg, the -O0-shaped benchmarks keep
// only their array allocas; scalar loads/stores disappear.
func TestMem2RegPromotesScalars(t *testing.T) {
	m := progen.Benchmark("gsm")
	loads0 := countOp(m, ir.OpLoad)
	apply(t, m, "mem2reg")
	if got := countOp(m, ir.OpLoad); got >= loads0/2 {
		t.Fatalf("mem2reg barely reduced loads: %d -> %d", loads0, got)
	}
	// Scalar allocas must be gone; array allocas remain.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAlloca && in.AllocTy.Kind != ir.ArrayKind {
					t.Fatalf("scalar alloca %s survived mem2reg", in.Ref())
				}
			}
		}
	}
	if countOp(m, ir.OpPhi) == 0 {
		t.Fatal("mem2reg inserted no phis on a loopy program")
	}
}

// TestSroaSplitsConstIndexedArrays: a fixed-index array becomes scalars.
func TestSroaSplitsConstIndexedArrays(t *testing.T) {
	m := ir.NewModule("sroa")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	arr := b.Alloca(ir.ArrayOf(ir.I32, 4))
	for i := int64(0); i < 4; i++ {
		b.Store(ir.ConstInt(ir.I32, i*3), b.GEP(arr, ir.ConstInt(ir.I32, i)))
	}
	v := b.Add(b.Load(b.GEP(arr, ir.ConstInt(ir.I32, 1))),
		b.Load(b.GEP(arr, ir.ConstInt(ir.I32, 3))))
	b.Print(v)
	b.Ret(v)

	res0, _ := interp.Run(m.Clone(), interp.DefaultLimits)
	apply(t, m, "sroa", "instcombine")
	res1, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || res0.Exit != res1.Exit {
		t.Fatalf("sroa broke semantics: %v vs %v (%v)", res0.Exit, res1.Exit, err)
	}
	if n := countOp(m, ir.OpAlloca); n != 0 {
		t.Fatalf("%d allocas survived sroa on a fully const-indexed array", n)
	}
	if n := countOp(m, ir.OpGEP); n != 0 {
		t.Fatalf("%d geps survived sroa", n)
	}
}

// TestSCCPFoldsConditionals: a branch on a constant-foldable condition
// disappears after sccp + simplifycfg.
func TestSCCPThenSimplifyCFG(t *testing.T) {
	m := ir.NewModule("sccp")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	dead := f.NewBlock("dead")
	live := f.NewBlock("live")
	b.SetInsert(entry)
	x := b.Add(ir.ConstInt(ir.I32, 2), ir.ConstInt(ir.I32, 2))
	cond := b.ICmp(ir.CmpEQ, x, ir.ConstInt(ir.I32, 5))
	b.CondBr(cond, dead, live)
	b.SetInsert(dead)
	b.Ret(ir.ConstInt(ir.I32, 111))
	b.SetInsert(live)
	b.Ret(ir.ConstInt(ir.I32, 222))

	apply(t, m, "sccp", "simplifycfg")
	if len(m.Func("main").Blocks) != 1 {
		t.Fatalf("dead branch not removed: %d blocks remain", len(m.Func("main").Blocks))
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 222 {
		t.Fatalf("wrong survivor: %d", res.Exit)
	}
}

// TestLoopRotateEnablesUnroll: unroll alone does nothing on a while-loop;
// after rotation (and mem2reg) the counted loop fully unrolls — the
// paper's flagship pass-ordering dependency.
func TestLoopRotateEnablesUnroll(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("ru")
		fe := progen.NewFE(m)
		fe.Begin("main", ir.I32)
		fe.Var("acc", 0)
		fe.For("i", 0, 8, 1, func(iv func() ir.Value) {
			fe.Set("acc", fe.Add(fe.V("acc"), iv()))
		})
		fe.Print(fe.V("acc"))
		fe.Ret(fe.V("acc"))
		return m
	}
	// Without rotate: loop remains.
	m1 := build()
	apply(t, m1, "mem2reg", "loop-unroll")
	if countOp(m1, ir.OpPhi) == 0 {
		t.Fatal("unroll should not fire on an unrotated while loop")
	}
	// With rotate first: fully unrolled, loop structure gone.
	m2 := build()
	apply(t, m2, "mem2reg", "loop-rotate", "loop-unroll", "instcombine", "simplifycfg")
	dt := ir.NewDomTree(m2.Func("main"))
	if loops := ir.FindLoops(m2.Func("main"), dt); len(loops) != 0 {
		t.Fatalf("loop survived rotate+unroll: %d loops", len(loops))
	}
	res, err := interp.Run(m2, interp.DefaultLimits)
	if err != nil || res.Exit != 28 { // 0+1+...+7
		t.Fatalf("unrolled result wrong: %v %v", res.Exit, err)
	}
	if c1, c2 := cyclesOf(t, m1), cyclesOf(t, m2); c2 >= c1 {
		t.Fatalf("unrolling did not reduce cycles: %d -> %d", c1, c2)
	}
}

// TestLICMRequiresFunctionAttrs: the mag()-style hoist fires only once
// functionattrs has certified the callee.
func TestLICMRequiresFunctionAttrs(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("licm")
		fe := progen.NewFE(m)
		helper := fe.Begin("pure", ir.I32, "x")
		fe.Ret(fe.Mul(fe.V("x"), fe.V("x")))
		fe.Begin("main", ir.I32)
		fe.Var("acc", 0)
		fe.For("i", 0, 10, 1, func(iv func() ir.Value) {
			fe.Set("acc", fe.Add(fe.V("acc"), fe.Call(helper, fe.C(7))))
		})
		fe.Print(fe.V("acc"))
		fe.Ret(fe.V("acc"))
		return m
	}
	inLoop := func(m *ir.Module) bool {
		f := m.Func("main")
		dt := ir.NewDomTree(f)
		for _, l := range ir.FindLoops(f, dt) {
			for _, b := range l.Body {
				for _, in := range b.Instrs {
					if in.Op == ir.OpCall {
						return true
					}
				}
			}
		}
		return false
	}
	m1 := build()
	apply(t, m1, "mem2reg", "loop-simplify", "licm")
	if !inLoop(m1) {
		t.Fatal("licm hoisted an uncertified call")
	}
	m2 := build()
	apply(t, m2, "mem2reg", "loop-simplify", "functionattrs", "licm")
	if inLoop(m2) {
		t.Fatal("licm failed to hoist a certified pure call")
	}
}

// TestInlineEliminatesCalls: small callees disappear; globaldce collects
// the corpse.
func TestInlineThenGlobalDCE(t *testing.T) {
	m := progen.Benchmark("blowfish") // calls F() 16x24 times
	if countOp(m, ir.OpCall) == 0 {
		t.Fatal("benchmark has no calls")
	}
	apply(t, m, "inline")
	if countOp(m, ir.OpCall) != 0 {
		t.Fatalf("%d calls survived inlining", countOp(m, ir.OpCall))
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("expected F to linger until globaldce, have %d funcs", len(m.Funcs))
	}
	apply(t, m, "globaldce")
	if len(m.Funcs) != 1 {
		t.Fatalf("globaldce kept %d functions", len(m.Funcs))
	}
}

// TestTailCallElim turns self-recursion into a loop.
func TestTailCallElim(t *testing.T) {
	m := ir.NewModule("tce")
	fe := progen.NewFE(m)
	f := fe.Begin("count", ir.I32, "n")
	fe.If(fe.Cmp(ir.CmpSLE, fe.V("n"), fe.C(0)), func() {
		fe.Ret(fe.C(0))
	}, nil)
	r := fe.Call(f, fe.Sub(fe.V("n"), fe.C(1)))
	fe.Ret(r)
	fe.Begin("main", ir.I32)
	fe.Print(fe.Call(f, fe.C(100)))
	fe.Ret(fe.C(0))

	// Depth 100 > a depth-16 limit: recursion traps, the loop version runs.
	lim := interp.Limits{MaxSteps: 1 << 20, MaxDepth: 16, MaxCells: 1 << 16}
	if _, err := interp.Run(m.Clone(), lim); err == nil {
		t.Fatal("expected depth exhaustion before tailcallelim")
	}
	// The final `ret (call ...)` must be in tail position: our FE puts the
	// call and ret in the same block already.
	apply(t, m, "tailcallelim")
	res, err := interp.Run(m, lim)
	if err != nil || res.Exit != 0 {
		t.Fatalf("tailcallelim result: %v %v", res.Exit, err)
	}
	// No self-calls remain.
	cf := m.Func("count")
	for _, b := range cf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == cf {
				t.Fatal("self-recursive call survived")
			}
		}
	}
}

// TestDSEKillsOverwrittenStores.
func TestDSEKillsOverwrittenStores(t *testing.T) {
	m := ir.NewModule("dse")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	al := b.Alloca(ir.I32)
	b.Store(ir.ConstInt(ir.I32, 1), al)
	b.Store(ir.ConstInt(ir.I32, 2), al) // kills the first
	v := b.Load(al)
	b.Ret(v)
	apply(t, m, "dse")
	if n := countOp(m, ir.OpStore); n != 1 {
		t.Fatalf("dse left %d stores, want 1", n)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 2 {
		t.Fatalf("dse broke the surviving store: %d", res.Exit)
	}
}

// TestLoopIdiomFormsMemset: a zero-fill loop becomes the burst intrinsic
// after canonicalization.
func TestLoopIdiomFormsMemset(t *testing.T) {
	m := ir.NewModule("idiom")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("buf", 32)
	fe.For("i", 0, 32, 1, func(iv func() ir.Value) {
		fe.Put("buf", iv(), fe.C(0))
	})
	fe.Var("acc", 7)
	fe.For("k", 0, 32, 1, func(kv func() ir.Value) {
		fe.Set("acc", fe.Add(fe.V("acc"), fe.Get("buf", kv())))
	})
	fe.Print(fe.V("acc"))
	fe.Ret(fe.V("acc"))

	before := cyclesOf(t, m.Clone())
	apply(t, m, "mem2reg", "loop-rotate", "simplifycfg", "loop-idiom")
	if countOp(m, ir.OpMemset) == 0 {
		t.Fatal("loop-idiom did not form a memset")
	}
	after := cyclesOf(t, m)
	if after >= before {
		t.Fatalf("memset burst did not pay off: %d -> %d", before, after)
	}
	res, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || res.Exit != 7 {
		t.Fatalf("idiom broke semantics: %v %v", res.Exit, err)
	}
}

// TestIndvarsEnablesLoopDeletion: exit-value rewriting makes a pure loop
// dead, then loop-deletion removes it.
func TestIndvarsEnablesLoopDeletion(t *testing.T) {
	m := ir.NewModule("ldel")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.For("i", 0, 50, 1, func(iv func() ir.Value) {})
	fe.Print(fe.V("i")) // uses only the final IV value
	fe.Ret(fe.C(0))

	apply(t, m, "mem2reg", "loop-rotate", "indvars", "loop-deletion", "simplifycfg")
	f := m.Func("main")
	dt := ir.NewDomTree(f)
	if loops := ir.FindLoops(f, dt); len(loops) != 0 {
		t.Fatalf("pure loop survived indvars+deletion")
	}
	res, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || len(res.Trace) != 1 || res.Trace[0] != 50 {
		t.Fatalf("exit value wrong after deletion: %v %v", res.Trace, err)
	}
}

// TestLoopReduceRemovesMuls: strength reduction trades a loop multiply for
// an add, which is cheaper in the delay model.
func TestLoopReduceRemovesMuls(t *testing.T) {
	m := ir.NewModule("lsr")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Arr("a", 64)
	fe.Var("acc", 0)
	fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
		fe.Put("a", fe.And(fe.Mul(iv(), fe.C(3)), fe.C(63)), iv())
	})
	fe.Print(fe.V("acc"))
	fe.Ret(fe.C(0))

	apply(t, m, "mem2reg", "loop-simplify")
	muls := countOp(m, ir.OpMul)
	apply(t, m, "loop-reduce")
	if got := countOp(m, ir.OpMul); got >= muls {
		t.Fatalf("loop-reduce removed no multiplies: %d -> %d", muls, got)
	}
}

// TestGVNDeduplicatesPureCalls: two identical calls to a readnone function
// collapse after functionattrs+gvn.
func TestGVNDeduplicatesPureCalls(t *testing.T) {
	m := ir.NewModule("gvncall")
	fe := progen.NewFE(m)
	h := fe.Begin("pure", ir.I32, "x")
	fe.Ret(fe.Add(fe.Mul(fe.V("x"), fe.V("x")), fe.C(1)))
	fe.Begin("main", ir.I32)
	a := fe.Call(h, fe.C(6))
	b := fe.Call(h, fe.C(6))
	fe.Print(fe.Add(a, b))
	fe.Ret(fe.C(0))

	apply(t, m, "mem2reg", "functionattrs", "gvn")
	if n := countOp(m, ir.OpCall); n != 1 {
		t.Fatalf("gvn left %d duplicate pure calls", n)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Trace[0] != 74 { // 2*(36+1)
		t.Fatalf("wrong value after call CSE: %v", res.Trace)
	}
}

// TestLowerSwitchRemovesSwitches.
func TestLowerSwitch(t *testing.T) {
	m := progen.Benchmark("sha") // has a round-function switch
	if countOp(m, ir.OpSwitch) == 0 {
		t.Skip("benchmark lost its switch")
	}
	apply(t, m, "lowerswitch")
	if countOp(m, ir.OpSwitch) != 0 {
		t.Fatal("switches survived lowerswitch")
	}
}

// TestStripClearsNames.
func TestStripClearsNames(t *testing.T) {
	m := progen.Benchmark("adpcm")
	apply(t, m, "strip")
	for _, f := range m.Funcs {
		if !f.Attrs.Stripped {
			t.Fatal("strip did not mark functions")
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Name != "" {
					t.Fatal("instruction name survived strip")
				}
			}
		}
	}
	// -strip must not change performance.
	m2 := progen.Benchmark("adpcm")
	if cyclesOf(t, m) != cyclesOf(t, m2) {
		t.Fatal("strip changed the cycle count")
	}
}

// TestBreakCritEdgesMakesFeature17Zero: after the pass, the critical-edge
// feature must read zero.
func TestBreakCritEdges(t *testing.T) {
	m := progen.Benchmark("dhrystone")
	apply(t, m, "break-crit-edges")
	for _, f := range m.Funcs {
		if ce := ir.CriticalEdges(f); len(ce) != 0 {
			t.Fatalf("%s still has %d critical edges", f.Name, len(ce))
		}
	}
}

// TestDeadArgElim drops unused parameters interprocedurally.
func TestDeadArgElim(t *testing.T) {
	m := ir.NewModule("dae")
	fe := progen.NewFE(m)
	h := fe.Begin("f", ir.I32, "used", "unused")
	fe.Ret(fe.V("used"))
	fe.Begin("main", ir.I32)
	fe.Print(fe.Call(h, fe.C(5), fe.C(99)))
	fe.Ret(fe.C(0))

	// The -O0 param spill keeps "unused" alive via its alloca store; clean
	// first, as a real pipeline would.
	apply(t, m, "mem2reg", "deadargelim")
	if got := len(m.Func("f").Params); got != 1 {
		t.Fatalf("deadargelim kept %d params", got)
	}
	res, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || res.Trace[0] != 5 {
		t.Fatalf("call broken after deadargelim: %v %v", res.Trace, err)
	}
}

// TestUnswitchHoistsInvariantBranch: the loop-invariant conditional moves
// to the preheader, cutting per-iteration branching.
func TestUnswitch(t *testing.T) {
	m := ir.NewModule("unsw")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Var("mode", 3)
	fe.Arr("buf", 64)
	fe.For("i", 0, 64, 1, func(iv func() ir.Value) {
		fe.If(fe.Cmp(ir.CmpSGT, fe.V("mode"), fe.C(1)), func() {
			fe.Put("buf", iv(), iv())
		}, func() {
			fe.Put("buf", iv(), fe.C(0))
		})
	})
	fe.Var("acc", 0)
	fe.For("k", 0, 64, 1, func(kv func() ir.Value) {
		fe.Set("acc", fe.Add(fe.V("acc"), fe.Get("buf", kv())))
	})
	fe.Print(fe.V("acc"))
	fe.Ret(fe.C(0))

	want, _ := interp.Run(m.Clone(), interp.DefaultLimits)
	before := cyclesOf(t, m.Clone())
	// mode is a promoted constant-ish value; after mem2reg it is a plain
	// value defined outside the loop -> invariant condition.
	apply(t, m, "mem2reg", "loop-simplify", "loop-unswitch", "sccp", "simplifycfg")
	got, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || got.Trace[0] != want.Trace[0] {
		t.Fatalf("unswitch broke semantics: %v vs %v (%v)", got.Trace, want.Trace, err)
	}
	after := cyclesOf(t, m)
	if after >= before {
		t.Fatalf("unswitch (with const folding) did not help: %d -> %d", before, after)
	}
}
