// Package passes implements the 46 LLVM transform passes of the paper's
// Table 1 over the project's IR, plus the pass manager and the -O0/-O3
// reference pipelines the evaluation compares against.
//
// Each pass performs the transformation its LLVM namesake is known for, at
// the fidelity the phase-ordering problem needs: passes enable and disable
// one another (mem2reg unlocks the scalar optimizations, loop-rotate enables
// loop-unroll, functionattrs enables licm/gvn call hoisting), which is what
// makes ordering matter.
package passes

import (
	"errors"
	"fmt"
	"runtime/debug"

	"autophase/internal/faults"
	"autophase/internal/ir"
)

// Pass is a module transformation.
type Pass interface {
	// Name returns the LLVM-style flag name, e.g. "-mem2reg".
	Name() string
	// Run applies the pass, reporting whether anything changed. The report
	// is a contract, not a hint: Run must return true whenever it mutated
	// the module, because the engine reuses the input module (and its
	// fingerprint) outright for runs reported unchanged.
	Run(m *ir.Module) bool
}

// funcPass adapts a per-function transformation into a Pass. The optional
// scan is a read-only no-op predicate: scan(f)==false guarantees run(f)
// would return false without mutating f, letting Run skip the function —
// and, on copy-on-write modules, skip the scratch clone — entirely.
type funcPass struct {
	name string
	run  func(*ir.Func) bool
	scan func(*ir.Func) bool
}

func (p funcPass) Name() string { return p.name }

func (p funcPass) Run(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		if p.scan != nil && !p.scan(f) {
			continue
		}
		if m.RunOwned(f, p.run) {
			changed = true
		}
	}
	return changed
}

// modPass adapts a whole-module transformation into a Pass. Module passes
// walk and rewrite arbitrary functions, so on a copy-on-write module the
// whole module is materialized first — unless the optional read-only scan
// proves the run would be a no-op.
type modPass struct {
	name string
	run  func(*ir.Module) bool
	scan func(*ir.Module) bool
}

func (p modPass) Name() string { return p.name }

func (p modPass) Run(m *ir.Module) bool {
	if p.scan != nil && !p.scan(m) {
		return false
	}
	m.MaterializeAll()
	return p.run(m)
}

// NumPasses is the number of Table 1 entries (indices 0–45; index 45,
// -terminate, is the episode-ending sentinel).
const NumPasses = 46

// NumActions is K, the number of selectable transform passes in the RL
// action space (§5.1). Index 45 (-terminate) is excluded.
const NumActions = 45

// TerminateIndex is the sentinel pass index ending an episode.
const TerminateIndex = 45

// Table1Names lists the pass flag names by paper index.
var Table1Names = [NumPasses]string{
	0: "-correlated-propagation", 1: "-scalarrepl", 2: "-lowerinvoke",
	3: "-strip", 4: "-strip-nondebug", 5: "-sccp", 6: "-globalopt",
	7: "-gvn", 8: "-jump-threading", 9: "-globaldce", 10: "-loop-unswitch",
	11: "-scalarrepl-ssa", 12: "-loop-reduce", 13: "-break-crit-edges",
	14: "-loop-deletion", 15: "-reassociate", 16: "-lcssa",
	17: "-codegenprepare", 18: "-memcpyopt", 19: "-functionattrs",
	20: "-loop-idiom", 21: "-lowerswitch", 22: "-constmerge",
	23: "-loop-rotate", 24: "-partial-inliner", 25: "-inline",
	26: "-early-cse", 27: "-indvars", 28: "-adce", 29: "-loop-simplify",
	30: "-instcombine", 31: "-simplifycfg", 32: "-dse", 33: "-loop-unroll",
	34: "-lower-expect", 35: "-tailcallelim", 36: "-licm", 37: "-sink",
	38: "-mem2reg", 39: "-prune-eh", 40: "-functionattrs", 41: "-ipsccp",
	42: "-deadargelim", 43: "-sroa", 44: "-loweratomic", 45: "-terminate",
}

// ByIndex constructs the pass at the given Table 1 index. -terminate is the
// identity. Passes whose no-op condition is decidable by a cheap read-only
// scan carry one (see scan.go); every scan must be sound — scan false means
// the pass provably would not change the module.
func ByIndex(i int) Pass {
	switch i {
	case 0:
		return funcPass{name: "-correlated-propagation", run: correlatedPropagation}
	case 1:
		return funcPass{name: "-scalarrepl", run: scalarRepl, scan: hasAlloca}
	case 2:
		return funcPass{name: "-lowerinvoke", run: lowerInvoke, scan: scanNever}
	case 3:
		return modPass{name: "-strip", run: strip, scan: scanStrip}
	case 4:
		return modPass{name: "-strip-nondebug", run: stripNonDebug, scan: scanNamedBlocks}
	case 5:
		return funcPass{name: "-sccp", run: sccp}
	case 6:
		return modPass{name: "-globalopt", run: globalOpt}
	case 7:
		return funcPass{name: "-gvn", run: gvn}
	case 8:
		return funcPass{name: "-jump-threading", run: jumpThreading}
	case 9:
		return modPass{name: "-globaldce", run: globalDCE}
	case 10:
		return funcPass{name: "-loop-unswitch", run: loopUnswitch}
	case 11:
		return funcPass{name: "-scalarrepl-ssa", run: scalarReplSSA, scan: hasAlloca}
	case 12:
		return funcPass{name: "-loop-reduce", run: loopReduce}
	case 13:
		return funcPass{name: "-break-crit-edges", run: breakCritEdges, scan: hasCriticalEdge}
	case 14:
		return funcPass{name: "-loop-deletion", run: loopDeletion}
	case 15:
		return funcPass{name: "-reassociate", run: reassociate}
	case 16:
		return funcPass{name: "-lcssa", run: lcssa}
	case 17:
		return funcPass{name: "-codegenprepare", run: codegenPrepare}
	case 18:
		return funcPass{name: "-memcpyopt", run: memcpyOpt, scan: hasStore}
	case 19, 40:
		return modPass{name: "-functionattrs", run: functionAttrs, scan: scanFunctionAttrs}
	case 20:
		return funcPass{name: "-loop-idiom", run: loopIdiom}
	case 21:
		return funcPass{name: "-lowerswitch", run: lowerSwitch, scan: hasSwitch}
	case 22:
		return modPass{name: "-constmerge", run: constMerge, scan: scanConstMerge}
	case 23:
		return funcPass{name: "-loop-rotate", run: loopRotate}
	case 24:
		return modPass{name: "-partial-inliner", run: partialInliner, scan: scanAnyCall}
	case 25:
		return modPass{name: "-inline", run: inline, scan: scanAnyCall}
	case 26:
		return funcPass{name: "-early-cse", run: earlyCSE}
	case 27:
		return funcPass{name: "-indvars", run: indvars}
	case 28:
		return funcPass{name: "-adce", run: adce}
	case 29:
		return funcPass{name: "-loop-simplify", run: loopSimplify}
	case 30:
		return funcPass{name: "-instcombine", run: instCombine}
	case 31:
		return funcPass{name: "-simplifycfg", run: simplifyCFG}
	case 32:
		return funcPass{name: "-dse", run: dse, scan: hasStoreOrMemset}
	case 33:
		return funcPass{name: "-loop-unroll", run: loopUnroll}
	case 34:
		return funcPass{name: "-lower-expect", run: lowerExpect, scan: hasBranchWeight}
	case 35:
		return funcPass{name: "-tailcallelim", run: tailCallElim, scan: hasSelfCall}
	case 36:
		return funcPass{name: "-licm", run: licm}
	case 37:
		return funcPass{name: "-sink", run: sink}
	case 38:
		return funcPass{name: "-mem2reg", run: mem2reg, scan: hasAlloca}
	case 39:
		return funcPass{name: "-prune-eh", run: pruneEH, scan: hasUnreachableBlock}
	case 41:
		return modPass{name: "-ipsccp", run: ipsccp}
	case 42:
		return modPass{name: "-deadargelim", run: deadArgElim, scan: scanDeadArgElim}
	case 43:
		return funcPass{name: "-sroa", run: sroa}
	case 44:
		return funcPass{name: "-loweratomic", run: lowerAtomic, scan: scanNever}
	case 45:
		return modPass{name: "-terminate", run: func(*ir.Module) bool { return false },
			scan: func(*ir.Module) bool { return false }}
	default:
		panic(fmt.Sprintf("passes: invalid index %d", i))
	}
}

// ErrInvalidPass reports a pass index outside Table 1. Callers handing
// externally supplied sequences to the engine (CLI flags, crash bundles,
// agent files) must validate through CheckSeq and surface this error; the
// panic inside ByIndex remains as an internal invariant only, behind the
// evaluation engine's containment boundary.
var ErrInvalidPass = errors.New("passes: invalid pass index")

// CheckIndex validates one Table 1 pass index.
func CheckIndex(i int) error {
	if i < 0 || i >= NumPasses {
		return fmt.Errorf("%w: %d (valid range 0..%d)", ErrInvalidPass, i, NumPasses-1)
	}
	return nil
}

// CheckSeq validates every index of a pass sequence.
func CheckSeq(seq []int) error {
	for _, i := range seq {
		if err := CheckIndex(i); err != nil {
			return err
		}
	}
	return nil
}

// ByName constructs a pass from its flag name (with or without the dash).
func ByName(name string) (Pass, error) {
	if name == "" {
		return nil, fmt.Errorf("passes: empty name")
	}
	if name[0] != '-' {
		name = "-" + name
	}
	for i, n := range Table1Names {
		if n == name {
			return ByIndex(i), nil
		}
	}
	return nil, fmt.Errorf("passes: unknown pass %q", name)
}

// PassPanic is the panic value Apply re-throws when a pass run panics: the
// original value plus the attribution (which pass, at which position, with
// what stack) the containment layer needs to build a typed fault and a
// replayable crash bundle. It still unwinds as a panic — passes stay
// panic-on-bug by contract — but any recover boundary above can tell
// exactly which pass died without instrumenting the pipeline itself.
type PassPanic struct {
	Index int    // Table 1 index of the faulting pass
	Pos   int    // position within the applied sequence
	Name  string // flag name of the pass
	Val   any    // the original panic value
	Stack []byte // stack captured at the point of the panic
}

func (pp *PassPanic) Error() string {
	return fmt.Sprintf("passes: panic in %s (index %d, position %d): %v", pp.Name, pp.Index, pp.Pos, pp.Val)
}

// Apply runs the pass sequence (by Table 1 index) over the module, stopping
// early at a -terminate sentinel. It reports whether any pass changed the
// module. A panicking pass unwinds as a *PassPanic.
func Apply(m *ir.Module, sequence []int) bool {
	changed := false
	for pos, idx := range sequence {
		if idx == TerminateIndex {
			break
		}
		if runAttributed(m, idx, pos) {
			changed = true
		}
	}
	return changed
}

// runAttributed runs one pass, wrapping any panic (organic or injected)
// into a *PassPanic carrying the pass identity.
func runAttributed(m *ir.Module, idx, pos int) (changed bool) {
	defer func() {
		if v := recover(); v != nil {
			if pp, ok := v.(*PassPanic); ok {
				panic(pp) // already attributed (nested Apply)
			}
			panic(&PassPanic{Index: idx, Pos: pos, Name: Table1Names[idx],
				Val: v, Stack: debug.Stack()})
		}
	}()
	if faults.Hit(faults.PassPanic) {
		panic(fmt.Errorf("%w: pass %s", faults.ErrInjected, Table1Names[idx]))
	}
	return ByIndex(idx).Run(m)
}

// RunSequence applies the sequence to a copy-on-write clone of base,
// returning the resulting module and whether any pass changed it. When
// nothing changed the returned module IS base — callers sharing modules
// through a cache reuse the parent's entry (and its fingerprint) without
// paying for a clone or a re-hash. When something changed, the result is
// sealed (no instruction references a function replaced during the run) and
// base is untouched.
func RunSequence(base *ir.Module, sequence []int) (*ir.Module, bool) {
	m := base.CloneCOW()
	if !Apply(m, sequence) {
		return base, false
	}
	m.Seal()
	return m, true
}

// O3Sequence is the reference -O3 pipeline: a hand-picked ordering in the
// spirit of LLVM's level-3 pass schedule, used as the evaluation baseline.
var O3Sequence = []int{
	38, // -mem2reg
	31, // -simplifycfg
	5,  // -sccp
	26, // -early-cse
	30, // -instcombine
	25, // -inline
	19, // -functionattrs
	43, // -sroa
	26, // -early-cse
	8,  // -jump-threading
	0,  // -correlated-propagation
	31, // -simplifycfg
	30, // -instcombine
	35, // -tailcallelim
	15, // -reassociate
	29, // -loop-simplify
	16, // -lcssa
	23, // -loop-rotate
	36, // -licm
	10, // -loop-unswitch
	30, // -instcombine
	27, // -indvars
	20, // -loop-idiom
	14, // -loop-deletion
	33, // -loop-unroll
	7,  // -gvn
	18, // -memcpyopt
	5,  // -sccp
	30, // -instcombine
	32, // -dse
	28, // -adce
	31, // -simplifycfg
	30, // -instcombine
	6,  // -globalopt
	9,  // -globaldce
	22, // -constmerge
	42, // -deadargelim
	12, // -loop-reduce
	17, // -codegenprepare
}

// ApplyO3 clones nothing; it runs the -O3 pipeline in place.
func ApplyO3(m *ir.Module) { Apply(m, O3Sequence) }
