// Package passes implements the 46 LLVM transform passes of the paper's
// Table 1 over the project's IR, plus the pass manager and the -O0/-O3
// reference pipelines the evaluation compares against.
//
// Each pass performs the transformation its LLVM namesake is known for, at
// the fidelity the phase-ordering problem needs: passes enable and disable
// one another (mem2reg unlocks the scalar optimizations, loop-rotate enables
// loop-unroll, functionattrs enables licm/gvn call hoisting), which is what
// makes ordering matter.
package passes

import (
	"fmt"

	"autophase/internal/ir"
)

// Pass is a module transformation.
type Pass interface {
	// Name returns the LLVM-style flag name, e.g. "-mem2reg".
	Name() string
	// Run applies the pass, reporting whether anything changed.
	Run(m *ir.Module) bool
}

// funcPass adapts a per-function transformation into a Pass.
type funcPass struct {
	name string
	run  func(*ir.Func) bool
}

func (p funcPass) Name() string { return p.name }

func (p funcPass) Run(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		if p.run(f) {
			changed = true
		}
	}
	return changed
}

// modPass adapts a whole-module transformation into a Pass.
type modPass struct {
	name string
	run  func(*ir.Module) bool
}

func (p modPass) Name() string { return p.name }

func (p modPass) Run(m *ir.Module) bool { return p.run(m) }

// NumPasses is the number of Table 1 entries (indices 0–45; index 45,
// -terminate, is the episode-ending sentinel).
const NumPasses = 46

// NumActions is K, the number of selectable transform passes in the RL
// action space (§5.1). Index 45 (-terminate) is excluded.
const NumActions = 45

// TerminateIndex is the sentinel pass index ending an episode.
const TerminateIndex = 45

// Table1Names lists the pass flag names by paper index.
var Table1Names = [NumPasses]string{
	0: "-correlated-propagation", 1: "-scalarrepl", 2: "-lowerinvoke",
	3: "-strip", 4: "-strip-nondebug", 5: "-sccp", 6: "-globalopt",
	7: "-gvn", 8: "-jump-threading", 9: "-globaldce", 10: "-loop-unswitch",
	11: "-scalarrepl-ssa", 12: "-loop-reduce", 13: "-break-crit-edges",
	14: "-loop-deletion", 15: "-reassociate", 16: "-lcssa",
	17: "-codegenprepare", 18: "-memcpyopt", 19: "-functionattrs",
	20: "-loop-idiom", 21: "-lowerswitch", 22: "-constmerge",
	23: "-loop-rotate", 24: "-partial-inliner", 25: "-inline",
	26: "-early-cse", 27: "-indvars", 28: "-adce", 29: "-loop-simplify",
	30: "-instcombine", 31: "-simplifycfg", 32: "-dse", 33: "-loop-unroll",
	34: "-lower-expect", 35: "-tailcallelim", 36: "-licm", 37: "-sink",
	38: "-mem2reg", 39: "-prune-eh", 40: "-functionattrs", 41: "-ipsccp",
	42: "-deadargelim", 43: "-sroa", 44: "-loweratomic", 45: "-terminate",
}

// ByIndex constructs the pass at the given Table 1 index. -terminate is the
// identity.
func ByIndex(i int) Pass {
	switch i {
	case 0:
		return funcPass{"-correlated-propagation", correlatedPropagation}
	case 1:
		return funcPass{"-scalarrepl", scalarRepl}
	case 2:
		return funcPass{"-lowerinvoke", lowerInvoke}
	case 3:
		return modPass{"-strip", strip}
	case 4:
		return modPass{"-strip-nondebug", stripNonDebug}
	case 5:
		return funcPass{"-sccp", sccp}
	case 6:
		return modPass{"-globalopt", globalOpt}
	case 7:
		return funcPass{"-gvn", gvn}
	case 8:
		return funcPass{"-jump-threading", jumpThreading}
	case 9:
		return modPass{"-globaldce", globalDCE}
	case 10:
		return funcPass{"-loop-unswitch", loopUnswitch}
	case 11:
		return funcPass{"-scalarrepl-ssa", scalarReplSSA}
	case 12:
		return funcPass{"-loop-reduce", loopReduce}
	case 13:
		return funcPass{"-break-crit-edges", breakCritEdges}
	case 14:
		return funcPass{"-loop-deletion", loopDeletion}
	case 15:
		return funcPass{"-reassociate", reassociate}
	case 16:
		return funcPass{"-lcssa", lcssa}
	case 17:
		return funcPass{"-codegenprepare", codegenPrepare}
	case 18:
		return funcPass{"-memcpyopt", memcpyOpt}
	case 19, 40:
		return modPass{"-functionattrs", functionAttrs}
	case 20:
		return funcPass{"-loop-idiom", loopIdiom}
	case 21:
		return funcPass{"-lowerswitch", lowerSwitch}
	case 22:
		return modPass{"-constmerge", constMerge}
	case 23:
		return funcPass{"-loop-rotate", loopRotate}
	case 24:
		return modPass{"-partial-inliner", partialInliner}
	case 25:
		return modPass{"-inline", inline}
	case 26:
		return funcPass{"-early-cse", earlyCSE}
	case 27:
		return funcPass{"-indvars", indvars}
	case 28:
		return funcPass{"-adce", adce}
	case 29:
		return funcPass{"-loop-simplify", loopSimplify}
	case 30:
		return funcPass{"-instcombine", instCombine}
	case 31:
		return funcPass{"-simplifycfg", simplifyCFG}
	case 32:
		return funcPass{"-dse", dse}
	case 33:
		return funcPass{"-loop-unroll", loopUnroll}
	case 34:
		return funcPass{"-lower-expect", lowerExpect}
	case 35:
		return funcPass{"-tailcallelim", tailCallElim}
	case 36:
		return funcPass{"-licm", licm}
	case 37:
		return funcPass{"-sink", sink}
	case 38:
		return funcPass{"-mem2reg", mem2reg}
	case 39:
		return funcPass{"-prune-eh", pruneEH}
	case 41:
		return modPass{"-ipsccp", ipsccp}
	case 42:
		return modPass{"-deadargelim", deadArgElim}
	case 43:
		return funcPass{"-sroa", sroa}
	case 44:
		return funcPass{"-loweratomic", lowerAtomic}
	case 45:
		return modPass{"-terminate", func(*ir.Module) bool { return false }}
	default:
		panic(fmt.Sprintf("passes: invalid index %d", i))
	}
}

// ByName constructs a pass from its flag name (with or without the dash).
func ByName(name string) (Pass, error) {
	if name == "" {
		return nil, fmt.Errorf("passes: empty name")
	}
	if name[0] != '-' {
		name = "-" + name
	}
	for i, n := range Table1Names {
		if n == name {
			return ByIndex(i), nil
		}
	}
	return nil, fmt.Errorf("passes: unknown pass %q", name)
}

// Apply runs the pass sequence (by Table 1 index) over the module, stopping
// early at a -terminate sentinel. It reports whether any pass changed the
// module.
func Apply(m *ir.Module, sequence []int) bool {
	changed := false
	for _, idx := range sequence {
		if idx == TerminateIndex {
			break
		}
		if ByIndex(idx).Run(m) {
			changed = true
		}
	}
	return changed
}

// O3Sequence is the reference -O3 pipeline: a hand-picked ordering in the
// spirit of LLVM's level-3 pass schedule, used as the evaluation baseline.
var O3Sequence = []int{
	38, // -mem2reg
	31, // -simplifycfg
	5,  // -sccp
	26, // -early-cse
	30, // -instcombine
	25, // -inline
	19, // -functionattrs
	43, // -sroa
	26, // -early-cse
	8,  // -jump-threading
	0,  // -correlated-propagation
	31, // -simplifycfg
	30, // -instcombine
	35, // -tailcallelim
	15, // -reassociate
	29, // -loop-simplify
	16, // -lcssa
	23, // -loop-rotate
	36, // -licm
	10, // -loop-unswitch
	30, // -instcombine
	27, // -indvars
	20, // -loop-idiom
	14, // -loop-deletion
	33, // -loop-unroll
	7,  // -gvn
	18, // -memcpyopt
	5,  // -sccp
	30, // -instcombine
	32, // -dse
	28, // -adce
	31, // -simplifycfg
	30, // -instcombine
	6,  // -globalopt
	9,  // -globaldce
	22, // -constmerge
	42, // -deadargelim
	12, // -loop-reduce
	17, // -codegenprepare
}

// ApplyO3 clones nothing; it runs the -O3 pipeline in place.
func ApplyO3(m *ir.Module) { Apply(m, O3Sequence) }
