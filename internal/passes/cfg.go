package passes

import "autophase/internal/ir"

// simplifyCFG folds constant branches, removes unreachable blocks, merges
// straight-line block pairs, skips empty forwarding blocks and collapses
// conditional branches with identical targets — fewer basic blocks means
// fewer FSM state transitions in the synthesized circuit.
func simplifyCFG(f *ir.Func) bool {
	changed := false
	for simplifyCFGOnce(f) {
		changed = true
	}
	return changed
}

func simplifyCFGOnce(f *ir.Func) bool {
	changed := false

	// 1. Fold constant conditional branches and constant switches.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch {
		case t.IsConditionalBr():
			if c, ok := ir.IsConst(t.Args[0]); ok {
				taken, dropped := t.Blocks[0], t.Blocks[1]
				if c == 0 {
					taken, dropped = dropped, taken
				}
				if dropped != taken {
					for _, phi := range dropped.Phis() {
						phi.RemovePhiIncoming(b)
					}
				}
				b.Remove(t)
				nb := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{taken}}
				b.Append(nb)
				changed = true
			} else if t.Blocks[0] == t.Blocks[1] {
				dest := t.Blocks[0]
				b.Remove(t)
				b.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{dest}})
				changed = true
			}
		case t.Op == ir.OpSwitch:
			if c, ok := ir.IsConst(t.Args[0]); ok {
				dest := t.Blocks[0]
				for i, cv := range t.Cases {
					if cv == c {
						dest = t.Blocks[i+1]
						break
					}
				}
				for _, tb := range t.Blocks {
					if tb != dest {
						for _, phi := range tb.Phis() {
							phi.RemovePhiIncoming(b)
						}
					}
				}
				b.Remove(t)
				b.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{dest}})
				changed = true
			}
		}
	}

	if removeUnreachableBlocks(f) {
		changed = true
	}

	// 2. Merge b -> s when b's only successor is s and s's only predecessor
	// is b.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr || len(t.Blocks) != 1 {
			continue
		}
		s := t.Blocks[0]
		if s == b || s == f.Entry() {
			continue
		}
		if len(s.Preds()) != 1 || s.NumPredEdges() != 1 {
			continue
		}
		// Resolve s's phis: single pred means each phi is its sole incoming.
		for _, phi := range append([]*ir.Instr(nil), s.Phis()...) {
			v, ok := phi.PhiIncoming(b)
			if !ok {
				v = &ir.Undef{Ty: phi.Ty}
			}
			f.ReplaceAllUses(phi, v)
			s.Remove(phi)
		}
		b.Remove(t)
		for _, in := range append([]*ir.Instr(nil), s.Instrs...) {
			s.Remove(in)
			b.Append(in)
		}
		// Successors of s now see b as predecessor.
		for _, ss := range b.Succs() {
			for _, phi := range ss.Phis() {
				for i, pb := range phi.Blocks {
					if pb == s {
						phi.Blocks[i] = b
					}
				}
			}
		}
		f.RemoveBlock(s)
		changed = true
		break // block list mutated; restart via outer loop
	}

	// 3. Skip empty forwarding blocks: pred -> empty -> dest becomes
	// pred -> dest, when dest's phis can absorb the edge.
	for _, b := range f.Blocks {
		if !b.IsEmptyForward() || b == f.Entry() {
			continue
		}
		dest := b.Term().Blocks[0]
		if dest == b {
			continue
		}
		preds := b.Preds()
		if len(preds) == 0 {
			continue
		}
		ok := true
		for _, p := range preds {
			// Don't create duplicate phi-pred entries: if p already reaches
			// dest, the phis in dest would need to merge two edges from p
			// with possibly different values.
			if _, dup := phiHasIncoming(dest, p); dup && len(dest.Phis()) > 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range preds {
			p.Term().ReplaceTarget(b, dest)
			for _, phi := range dest.Phis() {
				v, _ := phi.PhiIncoming(b)
				if v == nil {
					v = &ir.Undef{Ty: phi.Ty}
				}
				phi.SetPhiIncoming(p, v)
			}
		}
		for _, phi := range dest.Phis() {
			phi.RemovePhiIncoming(b)
		}
		f.RemoveBlock(b)
		changed = true
		break
	}

	return changed
}

func phiHasIncoming(b *ir.Block, pred *ir.Block) (ir.Value, bool) {
	for _, s := range pred.Succs() {
		if s == b {
			return nil, true
		}
	}
	return nil, false
}

// jumpThreading forwards branches through blocks whose condition is a phi of
// constants: a predecessor contributing a constant condition can jump
// directly to the decided target, skipping one FSM state per execution.
func jumpThreading(f *ir.Func) bool {
	changed := false
	for {
		once := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || !t.IsConditionalBr() {
				continue
			}
			phi, ok := t.Args[0].(*ir.Instr)
			if !ok || phi.Op != ir.OpPhi || phi.Parent() != b {
				continue
			}
			// Threading is only sound when the block does no other work the
			// predecessor would skip.
			if len(b.Instrs) != len(b.Phis())+1 {
				continue
			}
			// Other phis in b would need per-edge forwarding; keep simple.
			if len(b.Phis()) != 1 {
				continue
			}
			for i, pb := range phi.Blocks {
				c, isC := ir.IsConst(phi.Args[i])
				if !isC {
					continue
				}
				dest := t.Blocks[0]
				if c == 0 {
					dest = t.Blocks[1]
				}
				if dest == b {
					continue
				}
				// Avoid duplicate-edge phi trouble in dest.
				if _, dup := phiHasIncoming(dest, pb); dup && len(dest.Phis()) > 0 {
					continue
				}
				cVal := phi.Args[i]
				pb.Term().ReplaceTarget(b, dest)
				phi.RemovePhiIncoming(pb)
				for _, dphi := range dest.Phis() {
					if v, ok := dphi.PhiIncoming(b); ok {
						if v == phi {
							// The threaded edge carries the phi's constant.
							v = cVal
						}
						dphi.SetPhiIncoming(pb, v)
					} else {
						dphi.SetPhiIncoming(pb, &ir.Undef{Ty: dphi.Ty})
					}
				}
				once = true
				changed = true
				break
			}
			if once {
				break
			}
		}
		if !once {
			break
		}
		// Threading may leave b unreachable or with a single incoming.
		removeUnreachableBlocks(f)
		// A phi with one incoming left folds to that value when the block
		// really has a single predecessor.
		for _, b := range f.Blocks {
			if len(b.Preds()) != 1 {
				continue
			}
			for _, phi := range append([]*ir.Instr(nil), b.Phis()...) {
				if len(phi.Args) == 1 {
					f.ReplaceAllUses(phi, phi.Args[0])
					b.Remove(phi)
				}
			}
		}
	}
	return changed
}

// breakCritEdges splits every critical edge by inserting a forwarding block,
// the canonical enabling transform for sinking and phi placement.
func breakCritEdges(f *ir.Func) bool {
	edges := ir.CriticalEdges(f)
	for i, e := range edges {
		ir.SplitEdge(f, e[0], e[1], "crit"+itoa(i))
	}
	return len(edges) > 0
}

// lowerSwitch rewrites switch terminators into chains of conditional
// branches, as LLVM's -lowerswitch does for targets without jump tables.
// Switches whose targets carry phis or repeat blocks are left alone (our
// front-ends emit phi-free case targets).
func lowerSwitch(f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		t := b.Term()
		if t == nil || t.Op != ir.OpSwitch {
			continue
		}
		seen := make(map[*ir.Block]bool)
		ok := true
		for _, tb := range t.Blocks {
			if seen[tb] || len(tb.Phis()) > 0 {
				ok = false
				break
			}
			seen[tb] = true
		}
		if !ok {
			continue
		}
		v := t.Args[0]
		def := t.Blocks[0]
		cases := t.Cases
		targets := append([]*ir.Block(nil), t.Blocks[1:]...)
		b.Remove(t)
		cur := b
		for i, cv := range cases {
			cmp := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.CmpEQ,
				Args: []ir.Value{v, ir.ConstInt(v.Type(), cv)}}
			cur.Append(cmp)
			var next *ir.Block
			if i == len(cases)-1 {
				next = def
			} else {
				next = &ir.Block{Name: "swcase" + itoa(i)}
				f.AddBlockAfter(next, cur)
			}
			cur.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{cmp},
				Blocks: []*ir.Block{targets[i], next}})
			cur = next
		}
		if len(cases) == 0 {
			cur.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{def}})
		}
		changed = true
	}
	return changed
}

// codegenPrepare sinks address computations (GEPs) and compares into the
// blocks where they are used, shortening live ranges before scheduling.
func codegenPrepare(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Op != ir.OpGEP && in.Op != ir.OpICmp {
				continue
			}
			uses := f.Uses(in)
			if len(uses) != 1 {
				continue
			}
			u := uses[0]
			ub := u.Parent()
			if ub == b || u.Op == ir.OpPhi {
				continue
			}
			// Move in to just before its single use.
			b.Remove(in)
			ub.InsertBefore(in, u)
			changed = true
		}
	}
	return changed
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
