package passes

import "autophase/internal/ir"

// dse is dead-store elimination: a store overwritten by a later store to
// the same pointer with no possible intervening read dies, and every store
// to a non-escaping alloca that is never loaded dies with the alloca.
func dse(f *ir.Func) bool {
	changed := false
	// Same-block overwritten stores.
	for _, b := range f.Blocks {
		var pending = make(map[ir.Value]*ir.Instr) // ptr -> earlier store
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpStore:
				if prev, ok := pending[in.Args[1]]; ok {
					b.Remove(prev)
					changed = true
				}
				pending[in.Args[1]] = in
			case ir.OpLoad, ir.OpCall, ir.OpMemset, ir.OpPrint:
				// Any read or unknown effect may observe pending stores.
				pending = make(map[ir.Value]*ir.Instr)
			}
		}
	}
	// Write-only allocas: stores into them are unobservable.
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Op != ir.OpAlloca {
				continue
			}
			if !writeOnlyAlloca(f, in) {
				continue
			}
			for _, u := range f.Uses(in) {
				switch u.Op {
				case ir.OpStore:
					u.Parent().Remove(u)
					changed = true
				case ir.OpGEP:
					for _, gu := range f.Uses(u) {
						if gu.Op == ir.OpStore {
							gu.Parent().Remove(gu)
							changed = true
						}
					}
					if f.UseCount(u) == 0 {
						u.Parent().Remove(u)
						changed = true
					}
				case ir.OpMemset:
					u.Parent().Remove(u)
					changed = true
				}
			}
			if f.UseCount(in) == 0 {
				b.Remove(in)
				changed = true
			}
		}
	}
	return changed
}

// writeOnlyAlloca reports whether the alloca is only ever written: its
// address flows only into store addresses, memset destinations and GEPs
// with the same property.
func writeOnlyAlloca(f *ir.Func, al *ir.Instr) bool {
	var check func(ptr *ir.Instr) bool
	check = func(ptr *ir.Instr) bool {
		for _, u := range f.Uses(ptr) {
			switch u.Op {
			case ir.OpStore:
				if u.Args[0] == ptr {
					return false // pointer value stored: escapes
				}
			case ir.OpMemset:
				if u.Args[0] != ptr || u.Args[1] == ptr || u.Args[2] == ptr {
					return false
				}
			case ir.OpGEP:
				if u.Args[0] != ptr || !check(u) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return check(al)
}

// memcpyOpt removes no-op round trips: storing back a value just loaded
// from the same pointer with no intervening write.
func memcpyOpt(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		lastWrite := make(map[ir.Value]int)
		for idx, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpStore:
				if ld, ok := in.Args[0].(*ir.Instr); ok && ld.Op == ir.OpLoad &&
					ld.Parent() == b && ld.Args[0] == in.Args[1] {
					if noWriteBetween(b, ld, in) {
						b.Remove(in)
						changed = true
						continue
					}
				}
				lastWrite[in.Args[1]] = idx
			}
		}
	}
	return changed
}

func noWriteBetween(b *ir.Block, from, to *ir.Instr) bool {
	active := false
	for _, in := range b.Instrs {
		if in == from {
			active = true
			continue
		}
		if in == to {
			return true
		}
		if !active {
			continue
		}
		switch in.Op {
		case ir.OpStore, ir.OpCall, ir.OpMemset:
			return false
		}
	}
	return false
}

// sink moves pure instructions into the single successor block that
// contains all their uses, so branches that skip the block skip the work —
// reducing the executed FSM states on the untaken path.
func sink(f *ir.Func) bool {
	changed := false
	for {
		once := false
		for _, b := range f.Blocks {
			succs := b.Succs()
			if len(succs) < 2 {
				continue
			}
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.IsTerminator() || in.HasSideEffects() || in.Ty.IsVoid() ||
					in.Op == ir.OpPhi || in.Op == ir.OpAlloca || in.Op == ir.OpLoad {
					continue
				}
				uses := f.Uses(in)
				if len(uses) == 0 {
					continue
				}
				// All uses must live in exactly one successor subtree; we
				// require them literally inside one successor block with a
				// single pred edge (so dominance still holds).
				var dest *ir.Block
				ok := true
				for _, u := range uses {
					if u.Op == ir.OpPhi {
						ok = false
						break
					}
					ub := u.Parent()
					if dest == nil {
						dest = ub
					} else if dest != ub {
						ok = false
						break
					}
				}
				if !ok || dest == nil || dest == b {
					continue
				}
				isSucc := false
				for _, s := range succs {
					if s == dest {
						isSucc = true
					}
				}
				if !isSucc || dest.NumPredEdges() != 1 {
					continue
				}
				b.Remove(in)
				pos := dest.FirstNonPhi()
				if pos == nil {
					dest.Append(in)
				} else {
					dest.InsertBefore(in, pos)
				}
				once = true
				changed = true
			}
		}
		if !once {
			return changed
		}
	}
}

// scalarRepl is scalar replacement of aggregates: an array alloca whose
// accesses all use constant indices is split into one scalar alloca per
// element, which mem2reg can then promote.
func scalarRepl(f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		for _, al := range append([]*ir.Instr(nil), b.Instrs...) {
			if al.Op != ir.OpAlloca || al.AllocTy.Kind != ir.ArrayKind {
				continue
			}
			if al.AllocTy.Len > 64 {
				continue // SROA thresholds: don't explode huge arrays
			}
			idxs, ok := constIndexAccesses(f, al)
			if !ok {
				continue
			}
			elemTy := al.AllocTy.Elem
			scalars := make(map[int64]*ir.Instr)
			for _, ix := range idxs {
				s := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PointerTo(elemTy), AllocTy: elemTy}
				b.InsertBefore(s, al)
				scalars[ix] = s
			}
			// Rewrite GEPs to the scalar allocas; direct uses are index 0.
			for _, u := range append([]*ir.Instr(nil), f.Uses(al)...) {
				switch u.Op {
				case ir.OpGEP:
					c, _ := ir.IsConst(u.Args[1])
					f.ReplaceAllUses(u, scalars[c])
					u.Parent().Remove(u)
				case ir.OpLoad:
					u.Args[0] = scalars[0]
				case ir.OpStore:
					u.Args[1] = scalars[0]
				}
			}
			b.Remove(al)
			changed = true
		}
	}
	return changed
}

// constIndexAccesses returns the set of constant indices used to access the
// array alloca, or ok=false when any access is dynamic or escaping.
func constIndexAccesses(f *ir.Func, al *ir.Instr) ([]int64, bool) {
	seen := make(map[int64]bool)
	n := int64(al.AllocTy.Len)
	for _, u := range f.Uses(al) {
		switch u.Op {
		case ir.OpGEP:
			c, ok := ir.IsConst(u.Args[1])
			if !ok || c < 0 || c >= n {
				return nil, false
			}
			for _, gu := range f.Uses(u) {
				switch gu.Op {
				case ir.OpLoad:
				case ir.OpStore:
					if gu.Args[0] == u {
						return nil, false // address escapes into memory
					}
				default:
					return nil, false
				}
			}
			seen[c] = true
		case ir.OpLoad:
			seen[0] = true
		case ir.OpStore:
			if u.Args[0] == al {
				return nil, false
			}
			seen[0] = true
		default:
			return nil, false
		}
	}
	if len(seen) == 0 {
		return nil, false
	}
	var idxs []int64
	for i := int64(0); i < n; i++ {
		if seen[i] {
			idxs = append(idxs, i)
		}
	}
	// Index 0 must exist for direct (non-GEP) rewrites.
	if !seen[0] {
		idxs = append([]int64{0}, idxs...)
	}
	return idxs, true
}

// scalarReplSSA is -scalarrepl-ssa: scalar replacement immediately followed
// by SSA promotion of the resulting scalars.
func scalarReplSSA(f *ir.Func) bool {
	a := scalarRepl(f)
	b := mem2reg(f)
	return a || b
}

// sroa is the modern scalar-replacement pass: aggregate splitting, SSA
// promotion and a dead-code sweep in one.
func sroa(f *ir.Func) bool {
	a := scalarRepl(f)
	b := mem2reg(f)
	c := removeTriviallyDead(f)
	return a || b || c
}
