package passes_test

import (
	"fmt"
	"testing"

	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
)

// TestInstCombineIdentities drives the peephole table: each case builds
// main(x) { return expr(x) }, runs -instcombine, and requires both the
// expected op-count reduction and unchanged semantics on a range of inputs.
func TestInstCombineIdentities(t *testing.T) {
	type builderFn func(b *ir.Builder, x ir.Value) ir.Value
	c := func(v int64) ir.Value { return ir.ConstInt(ir.I32, v) }
	cases := []struct {
		name     string
		build    builderFn
		survives ir.Op // an opcode that must be gone afterwards
	}{
		{"add-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Add(x, c(0)) }, ir.OpAdd},
		{"zero-add", func(b *ir.Builder, x ir.Value) ir.Value { return b.Add(c(0), x) }, ir.OpAdd},
		{"sub-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Sub(x, c(0)) }, ir.OpSub},
		{"sub-self", func(b *ir.Builder, x ir.Value) ir.Value { return b.Sub(x, x) }, ir.OpSub},
		{"mul-one", func(b *ir.Builder, x ir.Value) ir.Value { return b.Mul(x, c(1)) }, ir.OpMul},
		{"mul-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Mul(x, c(0)) }, ir.OpMul},
		{"mul-pow2", func(b *ir.Builder, x ir.Value) ir.Value { return b.Mul(x, c(8)) }, ir.OpMul},
		{"div-one", func(b *ir.Builder, x ir.Value) ir.Value { return b.SDiv(x, c(1)) }, ir.OpSDiv},
		{"rem-one", func(b *ir.Builder, x ir.Value) ir.Value { return b.SRem(x, c(1)) }, ir.OpSRem},
		{"and-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.And(x, c(0)) }, ir.OpAnd},
		{"and-self", func(b *ir.Builder, x ir.Value) ir.Value { return b.And(x, x) }, ir.OpAnd},
		{"and-ones", func(b *ir.Builder, x ir.Value) ir.Value { return b.And(x, c(-1)) }, ir.OpAnd},
		{"or-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Or(x, c(0)) }, ir.OpOr},
		{"or-self", func(b *ir.Builder, x ir.Value) ir.Value { return b.Or(x, x) }, ir.OpOr},
		{"xor-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Xor(x, c(0)) }, ir.OpXor},
		{"xor-self", func(b *ir.Builder, x ir.Value) ir.Value { return b.Xor(x, x) }, ir.OpXor},
		{"shl-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.Shl(x, c(0)) }, ir.OpShl},
		{"lshr-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.LShr(x, c(0)) }, ir.OpLShr},
		{"ashr-zero", func(b *ir.Builder, x ir.Value) ir.Value { return b.AShr(x, c(0)) }, ir.OpAShr},
		{"cmp-self-eq", func(b *ir.Builder, x ir.Value) ir.Value {
			return b.ZExt(b.ICmp(ir.CmpEQ, x, x), ir.I32)
		}, ir.OpICmp},
		{"cmp-self-lt", func(b *ir.Builder, x ir.Value) ir.Value {
			return b.ZExt(b.ICmp(ir.CmpSLT, x, x), ir.I32)
		}, ir.OpICmp},
		{"select-same", func(b *ir.Builder, x ir.Value) ir.Value {
			return b.Select(b.ICmp(ir.CmpSGT, x, c(0)), x, x)
		}, ir.OpSelect},
		{"add-const-chain", func(b *ir.Builder, x ir.Value) ir.Value {
			return b.Add(b.Add(x, c(5)), c(7))
		}, 0 /* unchecked: adds shrink 2 -> 1 */},
	}
	inputs := []int64{0, 1, -1, 7, -128, 1 << 20}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			build := func() *ir.Module {
				m := ir.NewModule("ic")
				f := m.NewFunc("main", ir.I32, ir.I32)
				b := ir.NewBuilder()
				b.SetInsert(f.NewBlock("entry"))
				v := tc.build(b, f.Params[0])
				b.Print(v)
				b.Ret(v)
				return m
			}
			m := build()
			// Semantics: compare main(x) across inputs via a wrapper that
			// fixes the argument (the runtime passes zeros to main, so
			// embed the input as a constant instead).
			for _, in := range inputs {
				orig := moduleWithArg(tc.build, in)
				want, errW := interp.Run(orig, interp.DefaultLimits)
				opt := moduleWithArg(tc.build, in)
				pass, _ := passes.ByName("instcombine")
				pass.Run(opt)
				if err := opt.Verify(); err != nil {
					t.Fatalf("input %d: verify: %v", in, err)
				}
				got, errG := interp.Run(opt, interp.DefaultLimits)
				if (errW == nil) != (errG == nil) || (errW == nil && want.Exit != got.Exit) {
					t.Fatalf("input %d: semantics changed: %v/%v vs %v/%v",
						in, want.Exit, errW, got.Exit, errG)
				}
			}
			// Structure: the target opcode disappears.
			pass, _ := passes.ByName("instcombine")
			pass.Run(m)
			if tc.survives != 0 && countOp(m, tc.survives) != 0 {
				t.Fatalf("%s: %v survived instcombine:\n%s", tc.name, tc.survives, m.String())
			}
		})
	}
	// The constant-chain case halves its adds.
	m := moduleWithArg(func(b *ir.Builder, x ir.Value) ir.Value {
		return b.Add(b.Add(x, ir.ConstInt(ir.I32, 5)), ir.ConstInt(ir.I32, 7))
	}, 3)
	pass, _ := passes.ByName("instcombine")
	pass.Run(m)
	if n := countOp(m, ir.OpAdd); n > 1 {
		t.Fatalf("constant add chain not merged: %d adds", n)
	}
}

// moduleWithArg builds main() { v = expr(<const arg>); print v; ret v }.
func moduleWithArg(build func(b *ir.Builder, x ir.Value) ir.Value, arg int64) *ir.Module {
	m := ir.NewModule(fmt.Sprintf("ic%d", arg))
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	// Route the argument through an alloca so instcombine sees a
	// non-constant operand (a raw constant would just fold).
	al := b.Alloca(ir.I32)
	b.Store(ir.ConstInt(ir.I32, arg), al)
	x := b.Load(al)
	v := build(b, x)
	b.Print(v)
	b.Ret(v)
	return m
}
