package passes

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

import (
	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// RunStats accumulates per-pass instrumentation across Manager.Apply calls.
type RunStats struct {
	Name     string
	Runs     int
	Changed  int // runs that modified the module
	Duration time.Duration
}

// Manager is an instrumented pass runner: it executes sequences like Apply
// but records how often each pass ran, how often it changed the module, and
// how long it took — what `opt -time-passes` reports in LLVM.
type Manager struct {
	stats map[string]*RunStats
	// VerifyEach, when set, runs the module verifier after every pass and
	// halts the pipeline on the first failure (a debugging aid for new
	// passes): continuing to mutate a module that already violates the IR
	// invariants would only pile unrelated corruption on top of the bug.
	VerifyEach bool
	// Sanitize, when set, upgrades VerifyEach into the full pass-sanitizer
	// mode: after every pass the collect-all verifier and the dataflow
	// consistency checks of internal/analysis run, and on failure the
	// pipeline halts with a SanitizerReport carrying the delta-minimized
	// failing sequence and before/after IR dumps.
	Sanitize  bool
	firstErr  error
	errAfter  string
	sanReport *SanitizerReport
}

// NewManager returns an empty instrumented runner.
func NewManager() *Manager {
	return &Manager{stats: make(map[string]*RunStats)}
}

// Apply runs the sequence (Table 1 indices, stopping at -terminate),
// recording statistics. It reports whether anything changed.
func (pm *Manager) Apply(m *ir.Module, sequence []int) bool {
	return pm.ApplyPasses(m, passesOf(sequence))
}

// ApplyPasses is Apply over materialized passes (the form the sanitizer
// mutation tests inject deliberately buggy pass variants through).
func (pm *Manager) ApplyPasses(m *ir.Module, ps []Pass) bool {
	var orig *ir.Module
	var applied []Pass
	if pm.Sanitize || pm.VerifyEach {
		// The verifiers renumber instruction ids in place, which must never
		// happen to functions still borrowed by a copy-on-write module.
		m.MaterializeAll()
	}
	if pm.Sanitize && pm.sanReport == nil {
		// The sanitizer replays the failing prefix against the pristine
		// input to minimize it, so keep a copy before the first mutation.
		orig = m.Clone()
	}
	changed := false
	for _, p := range ps {
		st := pm.stats[p.Name()]
		if st == nil {
			st = &RunStats{Name: p.Name()}
			pm.stats[p.Name()] = st
		}
		//contractvet:allow nondeterminism -- RunStats.Duration is observability only; it never feeds rewards or IR
		t0 := time.Now()
		ch := p.Run(m)
		//contractvet:allow nondeterminism -- observability only, as above
		st.Duration += time.Since(t0)
		st.Runs++
		if ch {
			st.Changed++
			changed = true
		}
		if orig != nil {
			applied = append(applied, p)
			if ds := analysis.VerifyAll(m); ds.HasErrors() {
				pm.sanReport = buildReport(orig, applied)
				pm.firstErr = fmt.Errorf("sanitizer: %d diagnostics after %s", len(ds.Errors()), p.Name())
				pm.errAfter = p.Name()
				break // halt: the module is miscompiled
			}
			continue
		}
		if pm.VerifyEach && pm.firstErr == nil {
			if err := m.Verify(); err != nil {
				pm.firstErr = err
				pm.errAfter = p.Name()
				break // halt: applying more passes to a broken module only compounds the damage
			}
		}
	}
	return changed
}

// FirstVerifyError reports the first verifier failure observed under
// VerifyEach or Sanitize, with the pass that preceded it.
func (pm *Manager) FirstVerifyError() (string, error) { return pm.errAfter, pm.firstErr }

// SanitizerReport returns the report of the first sanitizer failure, or nil
// when every checked pass output was clean (or Sanitize was off).
func (pm *Manager) SanitizerReport() *SanitizerReport { return pm.sanReport }

// Stats returns the accumulated records, most time-consuming first.
func (pm *Manager) Stats() []RunStats {
	out := make([]RunStats, 0, len(pm.stats))
	for _, st := range pm.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Report renders the statistics as an aligned table.
func (pm *Manager) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %6s %8s %12s\n", "pass", "runs", "changed", "time")
	for _, st := range pm.Stats() {
		fmt.Fprintf(&sb, "%-24s %6d %8d %12s\n", st.Name, st.Runs, st.Changed, st.Duration.Round(time.Microsecond))
	}
	return sb.String()
}
