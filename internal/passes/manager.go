package passes

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

import "autophase/internal/ir"

// RunStats accumulates per-pass instrumentation across Manager.Apply calls.
type RunStats struct {
	Name     string
	Runs     int
	Changed  int // runs that modified the module
	Duration time.Duration
}

// Manager is an instrumented pass runner: it executes sequences like Apply
// but records how often each pass ran, how often it changed the module, and
// how long it took — what `opt -time-passes` reports in LLVM.
type Manager struct {
	stats map[string]*RunStats
	// VerifyEach, when set, runs the module verifier after every pass and
	// records the first failure (a debugging aid for new passes).
	VerifyEach bool
	firstErr   error
	errAfter   string
}

// NewManager returns an empty instrumented runner.
func NewManager() *Manager {
	return &Manager{stats: make(map[string]*RunStats)}
}

// Apply runs the sequence (Table 1 indices, stopping at -terminate),
// recording statistics. It reports whether anything changed.
func (pm *Manager) Apply(m *ir.Module, sequence []int) bool {
	changed := false
	for _, idx := range sequence {
		if idx == TerminateIndex {
			break
		}
		p := ByIndex(idx)
		st := pm.stats[p.Name()]
		if st == nil {
			st = &RunStats{Name: p.Name()}
			pm.stats[p.Name()] = st
		}
		t0 := time.Now()
		ch := p.Run(m)
		st.Duration += time.Since(t0)
		st.Runs++
		if ch {
			st.Changed++
			changed = true
		}
		if pm.VerifyEach && pm.firstErr == nil {
			if err := m.Verify(); err != nil {
				pm.firstErr = err
				pm.errAfter = p.Name()
			}
		}
	}
	return changed
}

// FirstVerifyError reports the first verifier failure observed under
// VerifyEach, with the pass that preceded it.
func (pm *Manager) FirstVerifyError() (string, error) { return pm.errAfter, pm.firstErr }

// Stats returns the accumulated records, most time-consuming first.
func (pm *Manager) Stats() []RunStats {
	out := make([]RunStats, 0, len(pm.stats))
	for _, st := range pm.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Report renders the statistics as an aligned table.
func (pm *Manager) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %6s %8s %12s\n", "pass", "runs", "changed", "time")
	for _, st := range pm.Stats() {
		fmt.Fprintf(&sb, "%-24s %6d %8d %12s\n", st.Name, st.Runs, st.Changed, st.Duration.Round(time.Microsecond))
	}
	return sb.String()
}
