package passes_test

import (
	"fmt"
	"math/rand"
	"testing"

	"autophase/internal/interp"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// stressLimits leave headroom over the generation filter's limits: passes
// may legitimately add a few interpreter steps (phi evaluations).
var stressLimits = interp.Limits{MaxSteps: 16_000_000, MaxDepth: 256, MaxCells: 1 << 22}

// TestStressFuzz hammers pass composition with long random orderings over
// dozens of random programs and all nine benchmarks — the operating regime
// of the RL agent.
func TestStressFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy fuzz")
	}
	rng := rand.New(rand.NewSource(99))
	seed := int64(1000)
	fails := 0
	for p := 0; p < 30; p++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		seed = used + 1
		base, err := interp.Run(m, interp.DefaultLimits)
		if err != nil {
			t.Fatalf("seed %d base: %v", used, err)
		}
		want := fmt.Sprintf("%d %v", base.Exit, base.Trace)
		for trial := 0; trial < 6; trial++ {
			n := 5 + rng.Intn(40)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = rng.Intn(passes.NumActions)
			}
			c := m.Clone()
			passes.Apply(c, seq)
			if err := c.Verify(); err != nil {
				t.Errorf("seed %d seq %v verify: %v", used, seq, err)
				fails++
				continue
			}
			res, err := interp.Run(c, stressLimits)
			if err != nil {
				t.Errorf("seed %d seq %v run: %v", used, seq, err)
				fails++
				continue
			}
			got := fmt.Sprintf("%d %v", res.Exit, res.Trace)
			if got != want {
				t.Errorf("seed %d seq %v semantics changed", used, seq)
				fails++
			}
			if fails > 4 {
				t.Fatal("too many failures")
			}
		}
	}
	for _, name := range progen.BenchmarkNames {
		m := progen.Benchmark(name)
		base, _ := interp.Run(m, interp.DefaultLimits)
		want := fmt.Sprintf("%d %v", base.Exit, base.Trace)
		for trial := 0; trial < 10; trial++ {
			n := 5 + rng.Intn(45)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = rng.Intn(passes.NumActions)
			}
			c := m.Clone()
			passes.Apply(c, seq)
			if err := c.Verify(); err != nil {
				t.Errorf("%s seq %v verify: %v", name, seq, err)
				fails++
				continue
			}
			res, err := interp.Run(c, stressLimits)
			if err != nil {
				t.Errorf("%s seq %v run: %v", name, seq, err)
				fails++
				continue
			}
			got := fmt.Sprintf("%d %v", res.Exit, res.Trace)
			if got != want {
				t.Errorf("%s seq %v semantics changed", name, seq)
				fails++
			}
			if fails > 4 {
				t.Fatal("too many failures")
			}
		}
	}
}
