package passes

import "autophase/internal/ir"

// Unroll thresholds, in the spirit of LLVM's -unroll-threshold.
const (
	maxUnrollTrips  = 32  // full unroll only for trip counts up to this
	maxUnrolledSize = 320 // and only when copies × body size stays below this
)

// loopUnroll fully unrolls rotated counted loops with small constant trip
// counts. It requires do-while (latch-exiting) form with a computable trip
// count — which is exactly why the paper's agents learn to schedule
// -loop-rotate before -loop-unroll.
func loopUnroll(f *ir.Func) bool {
	changed := loopSimplify(f)
	for again := true; again; {
		again = false
		for _, l := range loopsOf(f) {
			if unrollOne(f, l) {
				changed, again = true, true
				break
			}
		}
	}
	return changed
}

func unrollOne(f *ir.Func, l *ir.Loop) bool {
	ph := l.Preheader()
	latch := l.SingleLatch()
	if ph == nil || latch == nil {
		return false
	}
	// Only the latch may leave the loop, and it must carry the counted test.
	if ex := l.ExitingBlocks(); len(ex) != 1 || ex[0] != latch {
		return false
	}
	ivs := analyzeIVs(l, ph, latch)
	et, ok := latchExitTest(l, latch, ivs)
	if !ok {
		return false
	}
	n64, ok := et.tripCount()
	if !ok || n64 > maxUnrollTrips {
		return false
	}
	n := int(n64)
	size := 0
	for _, b := range l.Body {
		size += len(b.Instrs)
	}
	if n*size > maxUnrolledSize {
		return false
	}
	// Inner loops inside this body would need loop-structure surgery; only
	// unroll innermost loops.
	for _, other := range loopsOf(f) {
		if other.Parent == l {
			return false
		}
	}
	exits := l.Exits()
	if len(exits) != 1 {
		return false
	}
	exit := exits[0]

	h := l.Header
	phis := h.Phis()
	// Every header phi needs preheader and latch incomings (canonical).
	type carried struct {
		phi     *ir.Instr
		initVal ir.Value
		nextVal ir.Value
	}
	var cs []carried
	for _, phi := range phis {
		vp, okP := phi.PhiIncoming(ph)
		vl, okL := phi.PhiIncoming(latch)
		if !okP || !okL {
			return false
		}
		cs = append(cs, carried{phi, vp, vl})
	}

	inLoop := make(map[*ir.Block]bool, len(l.Body))
	for _, b := range l.Body {
		inLoop[b] = true
	}

	// cur maps original loop values to their incarnation in the copy being
	// built; starts with phi -> preheader initial values.
	cur := make(map[ir.Value]ir.Value)
	for _, c := range cs {
		cur[c.phi] = c.initVal
	}
	subst := func(v ir.Value) ir.Value {
		if r, ok := cur[v]; ok {
			return r
		}
		return v
	}

	// lastVals[orig] = value after the final iteration, for outside uses.
	var newBlocks []*ir.Block
	insertAfter := l.Body[len(l.Body)-1]
	prevTail := ph // block whose terminator enters the next copy

	for it := 0; it < n; it++ {
		bmap := make(map[*ir.Block]*ir.Block, len(l.Body))
		for _, b := range l.Body {
			nb := &ir.Block{Name: b.Name + ".it" + itoa(it)}
			f.AddBlockAfter(nb, insertAfter)
			insertAfter = nb
			bmap[b] = nb
			newBlocks = append(newBlocks, nb)
		}
		iterMap := make(map[*ir.Instr]*ir.Instr)
		for _, b := range l.Body {
			nb := bmap[b]
			for _, in := range b.Instrs {
				if in.Op == ir.OpPhi && b == h {
					continue // header phis become direct values
				}
				ni := &ir.Instr{Op: in.Op, Ty: in.Ty, Pred: in.Pred, Callee: in.Callee,
					AllocTy: in.AllocTy, BranchWeight: in.BranchWeight,
					Cases: append([]int64(nil), in.Cases...)}
				for _, tb := range in.Blocks {
					if ntb, ok := bmap[tb]; ok {
						ni.Blocks = append(ni.Blocks, ntb)
					} else {
						ni.Blocks = append(ni.Blocks, tb)
					}
				}
				for _, a := range in.Args {
					ni.Args = append(ni.Args, a) // remapped below
				}
				iterMap[in] = ni
				nb.Append(ni)
			}
		}
		// Remap operands: loop values to this iteration's incarnation,
		// header phis to the carried-in values.
		for _, b := range l.Body {
			for _, in := range b.Instrs {
				ni, ok := iterMap[in]
				if !ok {
					continue
				}
				for ai, a := range ni.Args {
					if d, isI := a.(*ir.Instr); isI {
						if nd, ok := iterMap[d]; ok {
							ni.Args[ai] = nd
							continue
						}
						if inLoop[d.Parent()] {
							ni.Args[ai] = subst(d)
						}
					}
				}
				// Inner phis (non-header) keep their incoming-block mapping
				// through bmap; their pred set is intact inside the copy.
			}
		}
		// Wire the previous copy (or preheader) into this one.
		prevTail.Term().ReplaceTarget(prevTarget(prevTail, h, bmap[h]), bmap[h])
		// The latch copy: decide statically.
		nl := bmap[latch]
		lt := nl.Term()
		nl.Remove(lt)
		if it == n-1 {
			nl.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{exit}})
		} else {
			// Continue into the next copy: resolved next round via
			// prevTail wiring; place a temporary branch to exit that the
			// next iteration's wiring retargets to its header copy.
			nl.Append(&ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{exit}})
		}
		prevTail = nl
		// Update carried values for the next iteration / outside uses.
		next := make(map[ir.Value]ir.Value, len(cs))
		for _, c := range cs {
			nv := c.nextVal
			if d, isI := nv.(*ir.Instr); isI {
				if nd, ok := iterMap[d]; ok {
					nv = nd
				} else if inLoop[d.Parent()] {
					nv = subst(d)
				}
			}
			next[c.phi] = nv
		}
		// Record final incarnations of every loop instruction.
		for old, nw := range iterMap {
			cur[old] = nw
		}
		if it < n-1 {
			for _, c := range cs {
				cur[c.phi] = next[c.phi]
			}
		}
		// In the last copy, cur[phi] keeps the carried-in value: an outside
		// use of a header phi observes the value assigned on entry to the
		// final iteration, not the post-increment value (that one is the
		// final incarnation of the increment instruction itself).
	}

	// Outside uses of loop values (in the exit block or beyond, and in exit
	// phis keyed by the latch) now read the final incarnations.
	newSet := make(map[*ir.Block]bool, len(newBlocks))
	for _, b := range newBlocks {
		newSet[b] = true
	}
	for _, b := range f.Blocks {
		if inLoop[b] || newSet[b] {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				// The latch edge now originates at the last copy; edges via
				// dedicated .loopexit forwarding blocks are untouched.
				for i, pb := range in.Blocks {
					if pb == latch {
						in.Blocks[i] = prevTail
					}
				}
			}
			for ai, a := range in.Args {
				if d, isI := a.(*ir.Instr); isI && inLoop[d.Parent()] {
					in.Args[ai] = subst(d)
				}
			}
		}
	}

	// Detach the original loop body.
	removeUnreachableBlocks(f)
	return true
}

// prevTarget returns which successor of tail should be retargeted into the
// next copy's header: the preheader targets the original header; a copied
// latch was temporarily branched to the exit.
func prevTarget(tail *ir.Block, origHeader, _ *ir.Block) *ir.Block {
	t := tail.Term()
	for _, s := range t.Blocks {
		if s == origHeader {
			return origHeader
		}
	}
	// Copied latch: its temporary target is its single successor.
	return t.Blocks[0]
}
