package passes_test

import (
	"fmt"
	"math/rand"
	"testing"

	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// run executes a module and flattens the observable outcome.
func run(m *ir.Module) (string, error) {
	res, err := interp.Run(m, interp.DefaultLimits)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("exit=%d trace=%v", res.Exit, res.Trace), nil
}

// subjects returns the programs every pass must preserve: the nine
// benchmarks plus filtered random programs.
func subjects(t *testing.T, nRandom int) map[string]*ir.Module {
	t.Helper()
	subj := make(map[string]*ir.Module)
	for _, name := range progen.BenchmarkNames {
		subj[name] = progen.Benchmark(name)
	}
	seed := int64(7)
	for i := 0; i < nRandom; i++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		subj[fmt.Sprintf("rand%d", used)] = m
		seed = used + 1
	}
	return subj
}

// TestEveryPassPreservesSemantics is the central invariant: each of the 46
// passes, applied alone, must keep the program's observable behaviour (exit
// value and print trace) identical, and leave the module verifier-clean.
func TestEveryPassPreservesSemantics(t *testing.T) {
	subj := subjects(t, 6)
	for name, orig := range subj {
		want, err := run(orig)
		if err != nil {
			t.Fatalf("%s: baseline run failed: %v", name, err)
		}
		for pi := 0; pi < passes.NumPasses; pi++ {
			m := orig.Clone()
			p := passes.ByIndex(pi)
			p.Run(m)
			if err := m.Verify(); err != nil {
				t.Errorf("%s: pass %d %s broke the verifier: %v", name, pi, p.Name(), err)
				continue
			}
			got, err := run(m)
			if err != nil {
				t.Errorf("%s: pass %d %s made program fail: %v", name, pi, p.Name(), err)
				continue
			}
			if got != want {
				t.Errorf("%s: pass %d %s changed semantics:\n want %s\n got  %s",
					name, pi, p.Name(), want, got)
			}
		}
	}
}

// TestRandomSequencesPreserveSemantics stress-tests pass interactions:
// random pass orderings of growing length, exactly what the RL agent will
// explore.
func TestRandomSequencesPreserveSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("long sequence fuzz")
	}
	subj := subjects(t, 4)
	rng := rand.New(rand.NewSource(2020))
	for name, orig := range subj {
		want, err := run(orig)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		for trial := 0; trial < 8; trial++ {
			seqLen := 3 + rng.Intn(14)
			seq := make([]int, seqLen)
			for i := range seq {
				seq[i] = rng.Intn(passes.NumActions)
			}
			m := orig.Clone()
			passes.Apply(m, seq)
			if err := m.Verify(); err != nil {
				t.Errorf("%s: sequence %v broke verifier: %v", name, seq, err)
				continue
			}
			got, err := run(m)
			if err != nil {
				t.Errorf("%s: sequence %v made program fail: %v", name, seq, err)
				continue
			}
			if got != want {
				t.Errorf("%s: sequence %v changed semantics:\n want %s\n got  %s",
					name, seq, want, got)
			}
		}
	}
}

// TestO3PreservesAndImproves checks the -O3 pipeline keeps semantics and
// does not regress cycle counts on the benchmarks.
func TestO3PreservesAndImproves(t *testing.T) {
	for _, name := range progen.BenchmarkNames {
		orig := progen.Benchmark(name)
		want, err := run(orig)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		m := orig.Clone()
		passes.ApplyO3(m)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: -O3 broke verifier: %v", name, err)
		}
		got, err := run(m)
		if err != nil {
			t.Fatalf("%s: -O3 made program fail: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: -O3 changed semantics:\n want %s\n got  %s", name, want, got)
		}
	}
}

// TestIdempotentReruns: running the same pass twice in a row must be safe.
func TestIdempotentReruns(t *testing.T) {
	orig := progen.Benchmark("matmul")
	want, _ := run(orig)
	for pi := 0; pi < passes.NumPasses; pi++ {
		m := orig.Clone()
		p := passes.ByIndex(pi)
		p.Run(m)
		p.Run(m)
		if err := m.Verify(); err != nil {
			t.Errorf("pass %d %s not re-runnable: %v", pi, p.Name(), err)
			continue
		}
		if got, err := run(m); err != nil || got != want {
			t.Errorf("pass %d %s twice changed semantics (err=%v)", pi, p.Name(), err)
		}
	}
}
