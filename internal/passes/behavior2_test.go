package passes_test

import (
	"testing"

	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/progen"
)

// TestMemcpyOptRemovesRoundTrips: store(load p) -> p is a no-op.
func TestMemcpyOptRemovesRoundTrips(t *testing.T) {
	m := ir.NewModule("mco")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	al := b.Alloca(ir.I32)
	b.Store(ir.ConstInt(ir.I32, 9), al)
	v := b.Load(al)
	b.Store(v, al) // round trip
	b.Ret(b.Load(al))
	stores0 := countOp(m, ir.OpStore)
	apply(t, m, "memcpyopt")
	if got := countOp(m, ir.OpStore); got != stores0-1 {
		t.Fatalf("memcpyopt stores: %d -> %d", stores0, got)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 9 {
		t.Fatalf("exit %d", res.Exit)
	}
}

// TestSinkMovesWorkOffTheColdPath: a pure computation used only in one
// branch arm moves into it.
func TestSinkMovesWorkOffTheColdPath(t *testing.T) {
	m := ir.NewModule("sink")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	hot := f.NewBlock("hot")
	cold := f.NewBlock("cold")
	b.SetInsert(entry)
	expensive := b.Mul(f.Params[0], f.Params[0])
	cond := b.ICmp(ir.CmpSGT, f.Params[0], ir.ConstInt(ir.I32, 0))
	b.CondBr(cond, hot, cold)
	b.SetInsert(hot)
	b.Ret(ir.ConstInt(ir.I32, 1))
	b.SetInsert(cold)
	b.Ret(expensive)

	apply(t, m, "sink")
	// The mul must now live in the cold block.
	foundInCold := false
	for _, in := range m.Func("main").Blocks[2].Instrs {
		if in.Op == ir.OpMul {
			foundInCold = true
		}
	}
	if !foundInCold {
		t.Fatal("sink left the multiply on the shared path")
	}
}

// TestCorrelatedPropagation: on the eq-true edge, the compared value is the
// constant.
func TestCorrelatedPropagation(t *testing.T) {
	m := ir.NewModule("corr")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	eq := f.NewBlock("eq")
	ne := f.NewBlock("ne")
	b.SetInsert(entry)
	cond := b.ICmp(ir.CmpEQ, f.Params[0], ir.ConstInt(ir.I32, 7))
	b.CondBr(cond, eq, ne)
	b.SetInsert(eq)
	// x is known to be 7 here; x+1 should fold to 8 after the pass.
	b.Ret(b.Add(f.Params[0], ir.ConstInt(ir.I32, 1)))
	b.SetInsert(ne)
	b.Ret(ir.ConstInt(ir.I32, 0))

	apply(t, m, "correlated-propagation")
	ret := m.Func("main").Blocks[1].Term()
	if c, ok := ir.IsConst(ret.Args[0]); !ok || c != 8 {
		t.Fatalf("eq-edge use not propagated: ret %v", ret.Args[0].Ref())
	}
}

// TestConstMergeDeduplicatesROMs.
func TestConstMergeDeduplicatesROMs(t *testing.T) {
	m := ir.NewModule("cm")
	g1 := m.NewGlobal("a", ir.ArrayOf(ir.I32, 3), []int64{1, 2, 3}, true)
	g2 := m.NewGlobal("b", ir.ArrayOf(ir.I32, 3), []int64{1, 2, 3}, true)
	g3 := m.NewGlobal("c", ir.ArrayOf(ir.I32, 3), []int64{9, 9, 9}, true)
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	v := b.Add(b.Load(b.GEP(g1, ir.ConstInt(ir.I32, 0))),
		b.Add(b.Load(b.GEP(g2, ir.ConstInt(ir.I32, 1))),
			b.Load(b.GEP(g3, ir.ConstInt(ir.I32, 2)))))
	b.Ret(v)
	apply(t, m, "constmerge")
	if len(m.Globals) != 2 {
		t.Fatalf("constmerge left %d globals, want 2", len(m.Globals))
	}
	res, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || res.Exit != 1+2+9 {
		t.Fatalf("semantics after merge: %v %v", res.Exit, err)
	}
}

// TestGlobalOptFoldsROMLoads: constant-index loads from read-only globals
// become constants.
func TestGlobalOptFoldsROMLoads(t *testing.T) {
	m := ir.NewModule("go")
	g := m.NewGlobal("rom", ir.ArrayOf(ir.I32, 4), []int64{5, 6, 7, 8}, true)
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	v := b.Load(b.GEP(g, ir.ConstInt(ir.I32, 2)))
	b.Ret(v)
	apply(t, m, "globalopt", "instcombine", "globaldce")
	if countOp(m, ir.OpLoad) != 0 {
		t.Fatal("globalopt left the ROM load")
	}
	if len(m.Globals) != 0 {
		t.Fatal("unreferenced ROM not collected")
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 7 {
		t.Fatalf("exit %d", res.Exit)
	}
}

// TestIPSCCPPropagatesConstArgs: a parameter receiving the same constant
// from all call sites becomes that constant.
func TestIPSCCPPropagatesConstArgs(t *testing.T) {
	m := ir.NewModule("ipsccp")
	fe := progen.NewFE(m)
	h := fe.Begin("h", ir.I32, "k")
	fe.Ret(fe.Mul(fe.V("k"), fe.C(3)))
	fe.Begin("main", ir.I32)
	a := fe.Call(h, fe.C(5))
	bv := fe.Call(h, fe.C(5))
	fe.Print(fe.Add(a, bv))
	fe.Ret(fe.C(0))

	apply(t, m, "mem2reg", "ipsccp", "sccp")
	// The callee's return should be the constant 15 now.
	c, ok := constantReturnOf(m.Func("h"))
	if !ok || c != 15 {
		t.Fatalf("callee not specialized: %v %v", c, ok)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Trace[0] != 30 {
		t.Fatalf("trace %v", res.Trace)
	}
}

func constantReturnOf(f *ir.Func) (int64, bool) {
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
			return ir.IsConst(t.Args[0])
		}
	}
	return 0, false
}

// TestReassociateFoldsConstantChains: (x+1)+2)+3 becomes x+6.
func TestReassociateFoldsConstantChains(t *testing.T) {
	m := ir.NewModule("re")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	v := b.Add(b.Add(b.Add(f.Params[0], ir.ConstInt(ir.I32, 1)),
		ir.ConstInt(ir.I32, 2)), ir.ConstInt(ir.I32, 3))
	b.Ret(v)
	apply(t, m, "reassociate")
	if n := countOp(m, ir.OpAdd); n != 1 {
		t.Fatalf("reassociate left %d adds, want 1", n)
	}
}

// TestJumpThreadingSkipsDecidedBlocks: a phi-of-constants condition lets
// predecessors jump straight to their targets.
func TestJumpThreading(t *testing.T) {
	m := ir.NewModule("jt")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	check := f.NewBlock("check")
	yes := f.NewBlock("yes")
	no := f.NewBlock("no")

	b.SetInsert(entry)
	c0 := b.ICmp(ir.CmpSGT, f.Params[0], ir.ConstInt(ir.I32, 0))
	b.CondBr(c0, left, right)
	b.SetInsert(left)
	b.Br(check)
	b.SetInsert(right)
	b.Br(check)
	b.SetInsert(check)
	phi := b.Phi(ir.I1)
	phi.SetPhiIncoming(left, ir.ConstInt(ir.I1, 1))
	phi.SetPhiIncoming(right, ir.ConstInt(ir.I1, 0))
	b.CondBr(phi, yes, no)
	b.SetInsert(yes)
	b.Ret(ir.ConstInt(ir.I32, 100))
	b.SetInsert(no)
	b.Ret(ir.ConstInt(ir.I32, 200))

	before, _ := interp.Run(m.Clone(), interp.DefaultLimits)
	apply(t, m, "jump-threading", "simplifycfg")
	after, err := interp.Run(m, interp.DefaultLimits)
	if err != nil || before.Exit != after.Exit {
		t.Fatalf("threading broke semantics: %v vs %v (%v)", before.Exit, after.Exit, err)
	}
	// The check block (and its phi) must be gone.
	if countOp(m, ir.OpPhi) != 0 {
		t.Fatal("jump-threading left the deciding phi")
	}
}

// TestLCSSAInsertsExitPhis.
func TestLCSSAInsertsExitPhis(t *testing.T) {
	m := ir.NewModule("lcssa")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Var("acc", 0)
	fe.For("i", 0, 5, 1, func(iv func() ir.Value) {
		fe.Set("acc", fe.Add(fe.V("acc"), iv()))
	})
	fe.Ret(fe.V("acc"))
	apply(t, m, "mem2reg")
	phis0 := countOp(m, ir.OpPhi)
	apply(t, m, "loop-simplify", "lcssa")
	if got := countOp(m, ir.OpPhi); got <= phis0 {
		t.Fatalf("lcssa inserted no exit phis: %d -> %d", phis0, got)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 10 {
		t.Fatalf("exit %d", res.Exit)
	}
}

// TestPartialInlinerOnlySingleBlockCallees.
func TestPartialInliner(t *testing.T) {
	m := ir.NewModule("pi")
	fe := progen.NewFE(m)
	small := fe.Begin("small", ir.I32, "x")
	fe.Ret(fe.Add(fe.V("x"), fe.C(1)))
	big := fe.Begin("big", ir.I32, "x")
	fe.If(fe.Cmp(ir.CmpSGT, fe.V("x"), fe.C(0)), func() {
		fe.Set("x", fe.Mul(fe.V("x"), fe.C(2)))
	}, nil)
	fe.Ret(fe.V("x"))
	fe.Begin("main", ir.I32)
	fe.Print(fe.Add(fe.Call(small, fe.C(1)), fe.Call(big, fe.C(2))))
	fe.Ret(fe.C(0))

	// small has one block only after promotion? It has allocas+entry: one
	// block. big has branches: multiple blocks.
	apply(t, m, "partial-inliner")
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee.Name == "small" {
				t.Fatal("partial inliner skipped the single-block callee")
			}
		}
	}
	callsBig := 0
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee.Name == "big" {
				callsBig++
			}
		}
	}
	if callsBig != 1 {
		t.Fatalf("partial inliner touched the multi-block callee: %d calls", callsBig)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Trace[0] != 2+4 {
		t.Fatalf("trace %v", res.Trace)
	}
}

// TestCodegenPrepareSinksAddressMath: a GEP with a single use in another
// block moves next to that use.
func TestCodegenPrepareSinksAddressMath(t *testing.T) {
	m := ir.NewModule("cgp")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	use := f.NewBlock("use")
	skip := f.NewBlock("skip")
	b.SetInsert(entry)
	arr := b.Alloca(ir.ArrayOf(ir.I32, 8))
	gep := b.GEP(arr, ir.ConstInt(ir.I32, 3))
	cond := b.ICmp(ir.CmpSGT, f.Params[0], ir.ConstInt(ir.I32, 0))
	b.CondBr(cond, use, skip)
	b.SetInsert(use)
	b.Ret(b.Load(gep))
	b.SetInsert(skip)
	b.Ret(ir.ConstInt(ir.I32, 0))

	apply(t, m, "codegenprepare")
	inUse := false
	for _, in := range m.Func("main").Blocks[1].Instrs {
		if in.Op == ir.OpGEP {
			inUse = true
		}
	}
	if !inUse {
		t.Fatal("codegenprepare did not sink the GEP to its use")
	}
}

// TestAdceRemovesDeadPhiCycles: two phis feeding only each other die under
// adce even though their use counts are non-zero.
func TestAdceRemovesDeadPhiCycles(t *testing.T) {
	m := ir.NewModule("adce")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Var("dead", 1)
	fe.Var("live", 0)
	fe.For("i", 0, 6, 1, func(iv func() ir.Value) {
		fe.Set("dead", fe.Add(fe.V("dead"), fe.V("dead"))) // self-feeding
		fe.Set("live", fe.Add(fe.V("live"), iv()))
	})
	fe.Ret(fe.V("live"))
	apply(t, m, "mem2reg")
	adds0 := countOp(m, ir.OpAdd)
	apply(t, m, "adce")
	if got := countOp(m, ir.OpAdd); got >= adds0 {
		t.Fatalf("adce removed nothing: %d -> %d adds", adds0, got)
	}
	res, _ := interp.Run(m, interp.DefaultLimits)
	if res.Exit != 15 {
		t.Fatalf("exit %d", res.Exit)
	}
}

// TestLoopUnswitchSplitsOnInvariantBranch (structure-level check on a
// hand-built loop; the cycle-level check lives in behavior_test.go).
func TestLoopUnswitchStructure(t *testing.T) {
	m := ir.NewModule("unsw2")
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32, "mode")
	fe.Arr("a", 16)
	fe.For("i", 0, 16, 1, func(iv func() ir.Value) {
		fe.If(fe.Cmp(ir.CmpSGT, fe.V("mode"), fe.C(0)), func() {
			fe.Put("a", iv(), iv())
		}, func() {
			fe.Put("a", iv(), fe.C(0))
		})
	})
	fe.Var("s", 0)
	fe.For("k", 0, 16, 1, func(kv func() ir.Value) {
		fe.Set("s", fe.Add(fe.V("s"), fe.Get("a", kv())))
	})
	fe.Ret(fe.V("s"))

	// licm must hoist the invariant compare out of the loop before
	// unswitch can see an invariant branch condition — the enabling
	// dependency LLVM's pipeline encodes by running licm first.
	apply(t, m, "mem2reg", "licm")
	blocks0 := len(m.Func("main").Blocks)
	apply(t, m, "loop-unswitch")
	if got := len(m.Func("main").Blocks); got <= blocks0 {
		t.Fatalf("unswitch cloned nothing: %d -> %d blocks", blocks0, got)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
