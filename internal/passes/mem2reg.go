package passes

import "autophase/internal/ir"

// mem2reg promotes scalar allocas whose address does not escape into SSA
// registers, inserting phi nodes at iterated dominance frontiers — the
// classic enabling pass without which the scalar optimizations see only
// loads and stores.
func mem2reg(f *ir.Func) bool {
	var allocas []*ir.Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpAlloca && promotableAlloca(f, in) {
			allocas = append(allocas, in)
		}
	}
	// Allocas outside the entry block are also promotable if they dominate
	// all their uses; keep to entry-block allocas (the common case our
	// frontends produce) for safety.
	if len(allocas) == 0 {
		return false
	}

	dt := ir.NewDomTree(f)
	df := dt.Frontier()
	reach := f.ReachableBlocks()

	type phiInfo struct {
		phi    *ir.Instr
		alloca *ir.Instr
	}
	var phis []phiInfo

	for _, al := range allocas {
		// Blocks containing stores to al.
		var defBlocks []*ir.Block
		seen := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1] == al && !seen[b] {
					seen[b] = true
					defBlocks = append(defBlocks, b)
				}
			}
		}
		// Iterated dominance frontier.
		placed := make(map[*ir.Block]bool)
		work := append([]*ir.Block(nil), defBlocks...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] || !reach[fb] {
					continue
				}
				placed[fb] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: al.Ty.Elem}
				fb.Prepend(phi)
				phis = append(phis, phiInfo{phi, al})
				work = append(work, fb)
			}
		}
	}

	// Renaming walk over the dominator tree.
	phiAlloca := make(map[*ir.Instr]*ir.Instr, len(phis))
	for _, pi := range phis {
		phiAlloca[pi.phi] = pi.alloca
	}
	isPromoted := make(map[*ir.Instr]bool, len(allocas))
	for _, al := range allocas {
		isPromoted[al] = true
	}

	// Children lists for the dominator tree walk.
	children := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		if id := dt.IDom(b); id != nil {
			children[id] = append(children[id], b)
		}
	}

	type stackFrame struct {
		block *ir.Block
		saved map[*ir.Instr]ir.Value
	}
	cur := make(map[*ir.Instr]ir.Value, len(allocas)) // alloca -> current value

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		saved := make(map[*ir.Instr]ir.Value, len(cur))
		for k, v := range cur {
			saved[k] = v
		}
		// Phis at block head define new current values.
		for _, in := range b.Phis() {
			if al, ok := phiAlloca[in]; ok {
				cur[al] = in
			}
		}
		// Rewrite loads, record stores.
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpLoad:
				if al, ok := in.Args[0].(*ir.Instr); ok && isPromoted[al] {
					v := cur[al]
					if v == nil {
						v = &ir.Undef{Ty: in.Ty}
					}
					f.ReplaceAllUses(in, v)
					b.Remove(in)
				}
			case ir.OpStore:
				if al, ok := in.Args[1].(*ir.Instr); ok && isPromoted[al] {
					cur[al] = in.Args[0]
					b.Remove(in)
				}
			}
		}
		// Fill successor phi incomings.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				if al, ok := phiAlloca[phi]; ok {
					v := cur[al]
					if v == nil {
						v = &ir.Undef{Ty: phi.Ty}
					}
					phi.SetPhiIncoming(b, v)
				}
			}
		}
		for _, c := range children[b] {
			walk(c)
		}
		cur = saved
	}
	walk(f.Entry())

	// Remove the promoted allocas.
	for _, al := range allocas {
		al.Parent().Remove(al)
	}
	// Phis in blocks with duplicate-edge preds: ensure each pred has an
	// incoming (verifier requires exactly the pred set).
	for _, pi := range phis {
		b := pi.phi.Parent()
		for _, p := range b.Preds() {
			if _, ok := pi.phi.PhiIncoming(p); !ok {
				pi.phi.SetPhiIncoming(p, &ir.Undef{Ty: pi.phi.Ty})
			}
		}
	}
	return true
}
