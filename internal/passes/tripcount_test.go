package passes

import (
	"testing"

	"autophase/internal/progen"
)

// TestTripCountMatchesSimulation feeds every exit test recognizable in the
// bundled benchmarks — under several pass preludes that put loops into
// rotated form — through both the SCEV closed form (tripCount) and the old
// bounded simulation (simTripCount) and requires identical answers. This is
// the fixture-level guarantee that switching the loop passes to SCEV
// changed their cost, not their behaviour.
func TestTripCountMatchesSimulation(t *testing.T) {
	preludes := map[string][]int{
		"raw":           nil,
		"mem2reg":       {38},
		"rotated":       {38, 29, 23},
		"canonicalized": {38, 31, 30, 29, 23, 30},
	}
	checked := 0
	for _, name := range progen.BenchmarkNames {
		for pname, seq := range preludes {
			m := progen.Benchmark(name)
			Apply(m, seq)
			for _, f := range m.Funcs {
				for _, l := range loopsOf(f) {
					ph := l.Preheader()
					latch := l.SingleLatch()
					if ph == nil || latch == nil {
						continue
					}
					if ex := l.ExitingBlocks(); len(ex) != 1 || ex[0] != latch {
						continue
					}
					et, ok := latchExitTest(l, latch, analyzeIVs(l, ph, latch))
					if !ok {
						continue
					}
					checked++
					sn, sok := et.tripCount()
					rn, rok := et.simTripCount(1 << 20)
					// The closed form may legitimately exceed the old
					// simulation cap; within the cap both must agree exactly.
					if sok && sn <= 1<<20 {
						if !rok || rn != sn {
							t.Errorf("%s/%s %s: SCEV trip count %d, simulation (%d, %v)",
								name, pname, f.Name, sn, rn, rok)
						}
					} else if !sok && rok {
						t.Errorf("%s/%s %s: SCEV found no trip count, simulation found %d",
							name, pname, f.Name, rn)
					}
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d exit tests exercised; fixtures no longer produce rotated counted loops", checked)
	}
}
