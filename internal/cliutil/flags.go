// Package cliutil holds the flag-validation helpers shared by the
// autophase, experiments and loadgen CLIs, so every binary rejects
// meaningless values (negative worker counts, negative deadlines) with the
// same clear usage error instead of silently clamping or ignoring them.
package cliutil

import (
	"fmt"
	"time"
)

// MinInt rejects v < min with a usage-shaped error naming the flag.
func MinInt(flag string, v, min int) error {
	if v < min {
		return fmt.Errorf("-%s must be >= %d (got %d)", flag, min, v)
	}
	return nil
}

// MinInt64 is MinInt for 64-bit flags (byte budgets).
func MinInt64(flag string, v, min int64) error {
	if v < min {
		return fmt.Errorf("-%s must be >= %d (got %d)", flag, min, v)
	}
	return nil
}

// NonNegDuration rejects negative durations; zero stays legal as the
// conventional "disabled" value (-deadline 0 = unbounded).
func NonNegDuration(flag string, v time.Duration) error {
	if v < 0 {
		return fmt.Errorf("-%s must not be negative (got %s; 0 disables it)", flag, v)
	}
	return nil
}

// PosDuration rejects durations <= 0 for flags where "disabled" is
// meaningless (drain timeouts, poll intervals).
func PosDuration(flag string, v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive (got %s)", flag, v)
	}
	return nil
}

// PosFloat rejects rates <= 0.
func PosFloat(flag string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive (got %g)", flag, v)
	}
	return nil
}

// FirstErr returns the first non-nil error, so a CLI can validate every
// flag in one expression and report the earliest failure.
func FirstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
