// Package features implements the paper's IR feature extractor: the 56
// static program features of Table 2, indexed exactly as the paper indexes
// them (the random-forest heat maps of Figures 5–6 and the RL observation
// space both use these indices).
package features

import (
	"fmt"

	"autophase/internal/faults"
	"autophase/internal/ir"
)

// NumFeatures is the dimensionality of the feature vector (Table 2).
const NumFeatures = 56

// TotalInstructions is the index of "Number of instructions (of all types)",
// the denominator of the paper's normalization technique 2 (§5.3).
const TotalInstructions = 51

// Names lists the 56 feature descriptions by index, matching Table 2.
var Names = [NumFeatures]string{
	0:  "Number of BB where total args for phi nodes > 5",
	1:  "Number of BB where total args for phi nodes is [1,5]",
	2:  "Number of BB's with 1 predecessor",
	3:  "Number of BB's with 1 predecessor and 1 successor",
	4:  "Number of BB's with 1 predecessor and 2 successors",
	5:  "Number of BB's with 1 successor",
	6:  "Number of BB's with 2 predecessors",
	7:  "Number of BB's with 2 predecessors and 1 successor",
	8:  "Number of BB's with 2 predecessors and successors",
	9:  "Number of BB's with 2 successors",
	10: "Number of BB's with >2 predecessors",
	11: "Number of BB's with Phi node # in range (0,3]",
	12: "Number of BB's with more than 3 Phi nodes",
	13: "Number of BB's with no Phi nodes",
	14: "Number of Phi-nodes at beginning of BB",
	15: "Number of branches",
	16: "Number of calls that return an int",
	17: "Number of critical edges",
	18: "Number of edges",
	19: "Number of occurrences of 32-bit integer constants",
	20: "Number of occurrences of 64-bit integer constants",
	21: "Number of occurrences of constant 0",
	22: "Number of occurrences of constant 1",
	23: "Number of unconditional branches",
	24: "Number of Binary operations with a constant operand",
	25: "Number of AShr insts",
	26: "Number of Add insts",
	27: "Number of Alloca insts",
	28: "Number of And insts",
	29: "Number of BB's with instructions between [15,500]",
	30: "Number of BB's with less than 15 instructions",
	31: "Number of BitCast insts",
	32: "Number of Br insts",
	33: "Number of Call insts",
	34: "Number of GetElementPtr insts",
	35: "Number of ICmp insts",
	36: "Number of LShr insts",
	37: "Number of Load insts",
	38: "Number of Mul insts",
	39: "Number of Or insts",
	40: "Number of PHI insts",
	41: "Number of Ret insts",
	42: "Number of SExt insts",
	43: "Number of Select insts",
	44: "Number of Shl insts",
	45: "Number of Store insts",
	46: "Number of Sub insts",
	47: "Number of Trunc insts",
	48: "Number of Xor insts",
	49: "Number of ZExt insts",
	50: "Number of basic blocks",
	51: "Number of instructions (of all types)",
	52: "Number of memory instructions",
	53: "Number of non-external functions",
	54: "Total arguments to Phi nodes",
	55: "Number of Unary operations",
}

// Extract computes the 56-feature vector over every function in the module.
func Extract(m *ir.Module) []int64 {
	if faults.Hit(faults.FeaturePanic) {
		panic(fmt.Errorf("%w: feature extraction", faults.ErrInjected))
	}
	f := make([]int64, NumFeatures)
	for _, fn := range m.Funcs {
		extractFunc(fn, f)
		f[53]++ // non-external function (all our functions have bodies)
	}
	return f
}

func extractFunc(fn *ir.Func, f []int64) {
	f[17] += int64(len(ir.CriticalEdges(fn)))
	for _, b := range fn.Blocks {
		f[50]++
		preds := len(b.Preds())
		succs := len(b.Succs())
		f[18] += int64(succs) // CFG edges, counted at their source

		switch {
		case preds == 1:
			f[2]++
		case preds == 2:
			f[6]++
		case preds > 2:
			f[10]++
		}
		if succs == 1 {
			f[5]++
		}
		if succs == 2 {
			f[9]++
		}
		if preds == 1 && succs == 1 {
			f[3]++
		}
		if preds == 1 && succs == 2 {
			f[4]++
		}
		if preds == 2 && succs == 1 {
			f[7]++
		}
		if preds == 2 && succs == 2 {
			f[8]++
		}

		phis := b.Phis()
		phiArgs := 0
		for _, p := range phis {
			phiArgs += len(p.Args)
		}
		switch {
		case phiArgs > 5:
			f[0]++
		case phiArgs >= 1:
			f[1]++
		}
		switch {
		case len(phis) == 0:
			f[13]++
		case len(phis) <= 3:
			f[11]++
		default:
			f[12]++
		}
		f[14] += int64(len(phis))
		f[54] += int64(phiArgs)

		n := len(b.Instrs)
		if n < 15 {
			f[30]++
		} else if n <= 500 {
			f[29]++
		}

		for _, in := range b.Instrs {
			f[51]++
			for _, a := range in.Args {
				if c, ok := a.(*ir.Const); ok {
					if c.Ty.IsInt() {
						switch c.Ty.Bits {
						case 32:
							f[19]++
						case 64:
							f[20]++
						}
					}
					switch c.Val {
					case 0:
						f[21]++
					case 1:
						f[22]++
					}
				}
			}
			if in.Op.IsBinary() {
				if _, ok := ir.IsConst(in.Args[0]); ok {
					f[24]++
				} else if _, ok := ir.IsConst(in.Args[1]); ok {
					f[24]++
				}
			}
			switch in.Op {
			case ir.OpAShr:
				f[25]++
			case ir.OpAdd:
				f[26]++
			case ir.OpAlloca:
				f[27]++
				f[52]++
			case ir.OpAnd:
				f[28]++
			case ir.OpBitCast:
				f[31]++
				f[55]++
			case ir.OpBr:
				f[32]++
				if in.IsConditionalBr() {
					f[15]++
				} else {
					f[23]++
				}
			case ir.OpCall:
				f[33]++
				if in.Ty.IsInt() {
					f[16]++
				}
			case ir.OpGEP:
				f[34]++
				f[52]++
			case ir.OpICmp:
				f[35]++
			case ir.OpLShr:
				f[36]++
			case ir.OpLoad:
				f[37]++
				f[52]++
			case ir.OpMul:
				f[38]++
			case ir.OpOr:
				f[39]++
			case ir.OpPhi:
				f[40]++
			case ir.OpRet:
				f[41]++
			case ir.OpSExt:
				f[42]++
				f[55]++
			case ir.OpSelect:
				f[43]++
			case ir.OpShl:
				f[44]++
			case ir.OpStore:
				f[45]++
				f[52]++
			case ir.OpSub:
				f[46]++
			case ir.OpTrunc:
				f[47]++
				f[55]++
			case ir.OpXor:
				f[48]++
			case ir.OpZExt:
				f[49]++
				f[55]++
			case ir.OpMemset:
				f[52]++
			}
		}
	}
}
