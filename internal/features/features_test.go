package features

import (
	"testing"
	"testing/quick"

	"autophase/internal/ir"
)

// handBuilt constructs a module with exactly known feature counts.
func handBuilt() *ir.Module {
	m := ir.NewModule("feat")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	join := f.NewBlock("join")

	b.SetInsert(entry)
	al := b.Alloca(ir.I32)
	b.Store(ir.ConstInt(ir.I32, 0), al)
	x := b.Load(al)
	add := b.Add(x, ir.ConstInt(ir.I32, 1)) // binary op with const operand
	cond := b.ICmp(ir.CmpSLT, add, ir.ConstInt(ir.I32, 10))
	b.CondBr(cond, thenB, elseB)

	b.SetInsert(thenB)
	tv := b.Mul(add, add)
	b.Br(join)

	b.SetInsert(elseB)
	ev := b.Xor(add, ir.ConstInt(ir.I32, -1))
	b.Br(join)

	b.SetInsert(join)
	phi := b.Phi(ir.I32)
	phi.SetPhiIncoming(thenB, tv)
	phi.SetPhiIncoming(elseB, ev)
	b.Ret(phi)
	return m
}

func TestFeatureIndexTable(t *testing.T) {
	f := Extract(handBuilt())
	if len(f) != NumFeatures {
		t.Fatalf("vector length %d", len(f))
	}
	check := func(idx int, want int64) {
		t.Helper()
		if f[idx] != want {
			t.Errorf("feature %d (%s) = %d, want %d", idx, Names[idx], f[idx], want)
		}
	}
	check(27, 1) // allocas
	check(26, 1) // adds
	check(38, 1) // muls
	check(48, 1) // xors
	check(35, 1) // icmps
	check(37, 1) // loads
	check(45, 1) // stores
	check(40, 1) // phis
	check(41, 1) // rets
	check(32, 3) // br instructions total
	check(15, 1) // conditional branches
	check(23, 2) // unconditional branches
	check(50, 4) // basic blocks
	check(53, 1) // non-external functions
	check(14, 1) // phi nodes at head of blocks
	check(54, 2) // phi args total
	check(13, 3) // blocks with no phis
	check(11, 1) // blocks with 1..3 phis
	check(24, 2) // binary ops with const operand (add, xor)
	check(9, 1)  // blocks with 2 successors
	check(6, 1)  // blocks with 2 predecessors (join)
	check(7, 0)  // blocks with 2 preds and 1 succ: join ends in ret (0 succs)
}

func TestEdgesAndCriticalEdges(t *testing.T) {
	f := Extract(handBuilt())
	// entry->then, entry->else, then->join, else->join.
	if f[18] != 4 {
		t.Fatalf("edges = %d, want 4", f[18])
	}
	if f[17] != 0 {
		t.Fatalf("critical edges = %d, want 0", f[17])
	}
}

func TestConstantOccurrences(t *testing.T) {
	f := Extract(handBuilt())
	// 32-bit consts: 0 (store), 1 (add), 10 (icmp), -1 (xor).
	if f[19] != 4 {
		t.Fatalf("32-bit constant occurrences = %d, want 4", f[19])
	}
	if f[21] != 1 { // constant 0
		t.Fatalf("const-0 occurrences = %d", f[21])
	}
	if f[22] != 1 { // constant 1
		t.Fatalf("const-1 occurrences = %d", f[22])
	}
}

func TestTotalInstructionsDominates(t *testing.T) {
	// Property: feature 51 (total instructions) is at least the sum of any
	// single opcode-count feature, and all features are non-negative.
	f := func(seed int64) bool {
		m := handBuilt()
		v := Extract(m)
		for _, x := range v {
			if x < 0 {
				return false
			}
		}
		opcodeFeatures := []int{25, 26, 27, 28, 31, 32, 33, 34, 35, 36, 37,
			38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49}
		var sum int64
		for _, i := range opcodeFeatures {
			sum += v[i]
		}
		return v[TotalInstructions] >= sum && v[TotalInstructions] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a := Extract(handBuilt())
	b := Extract(handBuilt())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs across runs", i)
		}
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Fatalf("feature %d has no name", i)
		}
	}
}
