package features

import (
	"sync"

	"autophase/internal/ir"
)

// Memo caches feature vectors by IR fingerprint. Extraction is a pure
// function of the module structure, and the fingerprint is a structural
// hash, so IR-equal modules — however many distinct pass sequences reach
// them — share one extraction. The zero value is ready to use; all methods
// are safe for concurrent callers. Returned slices are shared and must be
// treated as immutable.
type Memo struct {
	mu sync.RWMutex
	m  map[ir.Fingerprint][]int64
}

// Get returns the memoized vector for fp, or nil.
func (mo *Memo) Get(fp ir.Fingerprint) []int64 {
	mo.mu.RLock()
	defer mo.mu.RUnlock()
	return mo.m[fp]
}

// Extract returns the feature vector of m, memoized under fp: the first
// call per fingerprint extracts, later calls return the stored vector.
func (mo *Memo) Extract(m *ir.Module, fp ir.Fingerprint) []int64 {
	if f := mo.Get(fp); f != nil {
		return f
	}
	f := Extract(m)
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if prev, ok := mo.m[fp]; ok {
		return prev // lost the race; keep the published vector
	}
	if mo.m == nil {
		mo.m = make(map[ir.Fingerprint][]int64)
	}
	mo.m[fp] = f
	return f
}

// ExtractGraph returns the graph feature block of m, memoized under fp
// exactly like Extract — ExtractGraph is equally a pure function of the
// module structure. Use a separate Memo instance from the 56-feature one:
// the two vectors share the fingerprint key space but not their contents.
func (mo *Memo) ExtractGraph(m *ir.Module, fp ir.Fingerprint) []int64 {
	if f := mo.Get(fp); f != nil {
		return f
	}
	f := ExtractGraph(m)
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if prev, ok := mo.m[fp]; ok {
		return prev
	}
	if mo.m == nil {
		mo.m = make(map[ir.Fingerprint][]int64)
	}
	mo.m[fp] = f
	return f
}

// Put publishes a vector computed elsewhere — a persistent artifact store
// restoring a previous process's extraction — under fp. The first
// published vector for a fingerprint wins (extraction is pure, so any
// copy is the right one); the winning vector is returned and must be
// treated as immutable, exactly like Extract's.
func (mo *Memo) Put(fp ir.Fingerprint, f []int64) []int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if prev, ok := mo.m[fp]; ok {
		return prev
	}
	if mo.m == nil {
		mo.m = make(map[ir.Fingerprint][]int64)
	}
	mo.m[fp] = f
	return f
}

// Reset drops every memoized vector.
func (mo *Memo) Reset() {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	mo.m = nil
}

// Len reports the number of distinct fingerprints memoized.
func (mo *Memo) Len() int {
	mo.mu.RLock()
	defer mo.mu.RUnlock()
	return len(mo.m)
}
