package features

import (
	"autophase/internal/analysis"
	"autophase/internal/ir"
)

// This file is the structural (graph) feature block: CFG shape, loop
// nesting, call-graph topology and effect-summary aggregates that the flat
// 56-feature histogram cannot see. It is strictly opt-in — the default
// observation stays the paper's 56 features bit for bit — and extends the
// vector for cross-program generalization experiments.

// NumGraphFeatures is the dimensionality of the graph feature block.
const NumGraphFeatures = 20

// GraphNames lists the graph feature descriptions by index.
var GraphNames = [NumGraphFeatures]string{
	0:  "Number of CFG nodes (basic blocks)",
	1:  "Number of CFG edges",
	2:  "Number of CFG back edges (target dominates source)",
	3:  "Number of natural loops",
	4:  "Maximum loop-nest depth",
	5:  "Number of loops at depth 1",
	6:  "Number of loops at depth 2",
	7:  "Number of loops at depth >= 3",
	8:  "Number of call-graph edges (distinct caller-callee pairs)",
	9:  "Number of call sites",
	10: "Maximum call-graph fan-in",
	11: "Maximum call-graph fan-out",
	12: "Number of call-graph SCCs",
	13: "Size of the largest call-graph SCC",
	14: "Number of recursive functions",
	15: "Number of functions unreachable from main",
	16: "Number of summarized-pure functions",
	17: "Number of functions with no visible memory writes",
	18: "Number of functions that may trap",
	19: "Number of globals some function may write",
}

// ExtractGraph computes the graph feature block over the module. Like
// Extract it is a pure function of the IR, so results may be memoized by
// module fingerprint.
func ExtractGraph(m *ir.Module) []int64 {
	g := make([]int64, NumGraphFeatures)
	for _, fn := range m.Funcs {
		if len(fn.Blocks) == 0 {
			continue
		}
		dt := ir.NewDomTree(fn)
		g[0] += int64(len(fn.Blocks))
		for _, b := range fn.Blocks {
			for _, s := range b.Succs() {
				g[1]++
				if dt.Dominates(s, b) {
					g[2]++
				}
			}
		}
		for _, l := range ir.FindLoops(fn, dt) {
			g[3]++
			if int64(l.Depth) > g[4] {
				g[4] = int64(l.Depth)
			}
			switch {
			case l.Depth == 1:
				g[5]++
			case l.Depth == 2:
				g[6]++
			default:
				g[7]++
			}
		}
	}

	s := analysis.ComputeEffects(m)
	cg := s.CG
	for _, n := range cg.Nodes {
		g[8] += int64(n.FanOut())
		g[9] += int64(len(n.Sites))
		if int64(n.FanIn()) > g[10] {
			g[10] = int64(n.FanIn())
		}
		if int64(n.FanOut()) > g[11] {
			g[11] = int64(n.FanOut())
		}
		if cg.Recursive(n.Fn) {
			g[14]++
		}
		e := s.Of(n.Fn)
		if e.Pure() {
			g[16]++
		}
		if !e.WritesMemory() && !e.Prints {
			g[17]++
		}
		if e.MayPanic {
			g[18]++
		}
	}
	g[12] = int64(len(cg.SCCs))
	for _, scc := range cg.SCCs {
		if int64(len(scc)) > g[13] {
			g[13] = int64(len(scc))
		}
	}
	if entry := m.Func("main"); entry != nil {
		reach := cg.ReachableFrom(entry)
		for _, fn := range m.Funcs {
			if !reach[fn] {
				g[15]++
			}
		}
	}
	written := make(map[*ir.Global]bool)
	anyUnknown := false
	for _, fn := range m.Funcs {
		e := s.Of(fn)
		anyUnknown = anyUnknown || e.WritesUnknown
		for gl := range e.WritesGlobals {
			written[gl] = true
		}
	}
	if anyUnknown {
		g[19] = int64(len(m.Globals)) // any global could be the target
	} else {
		g[19] = int64(len(written))
	}
	return g
}
