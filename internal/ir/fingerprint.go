package ir

import (
	"fmt"
	"math/bits"
)

// Fingerprint is a 128-bit structural hash of a module. It is canonical in
// the sense the compile cache needs: order-independent over local value
// names (instruction, block, parameter and global names do not contribute;
// -strip and -strip-nondebug leave everything they touch at a distinct
// fingerprint only through the Stripped attribute bit), and order-dependent
// over everything that determines profiles, features and future pass
// behaviour — function names (interp resolves "main" by name), signatures
// and attributes, block order, instruction order, opcodes, types, operand
// identity (positional, not nominal), branch targets, switch cases and
// global data.
//
// Two sequences whose IRs share a fingerprint share one profiler sample, so
// a collision would silently alias their results. The hash is a 128-bit
// FNV-1a variant (word-at-a-time), making accidental collisions vanishingly
// unlikely; the fuzz cross-check in internal/passes exercises the equality
// contract against full ir.Print equality.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether fp is the zero fingerprint (never produced by
// Module.Fingerprint, which hashes at least the offset basis).
func (fp Fingerprint) IsZero() bool { return fp.Hi == 0 && fp.Lo == 0 }

// String renders the fingerprint as 32 hex digits.
func (fp Fingerprint) String() string { return fmt.Sprintf("%016x%016x", fp.Hi, fp.Lo) }

// FNV-128 offset basis and prime (2^88 + 2^8 + 0x3b).
const (
	fnvBasisHi = 0x6c62272e07bb0142
	fnvBasisLo = 0x62b821756295c58d
	fnvPrimeLo = 0x3b
)

// fpHasher is the streaming 128-bit accumulator: xor a word into the low
// half, multiply the 128-bit state by the FNV-128 prime.
type fpHasher struct {
	hi, lo uint64
}

func (h *fpHasher) word(x uint64) {
	lo := h.lo ^ x
	hi := h.hi
	// (hi,lo) * (2^88 + 2^8 + 0x3b) mod 2^128.
	mHi, mLo := bits.Mul64(lo, fnvPrimeLo)
	mHi += hi * fnvPrimeLo
	var c uint64
	mLo, c = bits.Add64(mLo, lo<<8, 0)
	mHi, _ = bits.Add64(mHi, hi<<8|lo>>56, c)
	mHi += lo << 24 // (hi,lo)<<88: only lo<<24 survives in the high half
	h.hi, h.lo = mHi, mLo
}

func (h *fpHasher) str(s string) {
	h.word(uint64(len(s)))
	var acc uint64
	n := 0
	for i := 0; i < len(s); i++ {
		acc = acc<<8 | uint64(s[i])
		if n++; n == 8 {
			h.word(acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		h.word(acc)
	}
}

func (h *fpHasher) typ(t *Type) {
	if t == nil {
		h.word(^uint64(0))
		return
	}
	h.word(uint64(t.Kind)<<32 | uint64(uint32(t.Bits)))
	switch t.Kind {
	case PtrKind:
		h.typ(t.Elem)
	case ArrayKind:
		h.word(uint64(t.Len))
		h.typ(t.Elem)
	}
}

// Operand tags; distinct from any Op or TypeKind ranges only by position in
// the stream, which the length-prefixed layout makes unambiguous.
const (
	fpTagNil = iota
	fpTagConst
	fpTagParam
	fpTagInstr
	fpTagGlobal
	fpTagUndef
	fpTagForeign // operand from outside the function (ill-formed IR)
	fpNone       = ^uint64(0)
)

// Fingerprint computes the module's structural fingerprint in one streaming
// sweep (no intermediate serialization). Safe to call concurrently on a
// module that is not being mutated.
func (m *Module) Fingerprint() Fingerprint {
	h := fpHasher{hi: fnvBasisHi, lo: fnvBasisLo}
	gidx := make(map[*Global]uint64, len(m.Globals))
	fidx := make(map[*Func]uint64, len(m.Funcs))
	for i, g := range m.Globals {
		gidx[g] = uint64(i)
	}
	for i, f := range m.Funcs {
		fidx[f] = uint64(i)
	}

	h.word(uint64(len(m.Funcs))<<32 | uint64(len(m.Globals)))
	for _, g := range m.Globals {
		// Global names are symbol information only; identity is positional.
		h.typ(g.Elem)
		ro := uint64(0)
		if g.ReadOnly {
			ro = 1
		}
		h.word(ro<<32 | uint64(len(g.Init)))
		for _, v := range g.Init {
			h.word(uint64(v))
		}
	}

	for _, f := range m.Funcs {
		h.str(f.Name) // semantic: "main" lookup and call-graph identity
		h.word(attrsBits(f.Attrs))
		h.typ(f.Ret)
		h.word(uint64(len(f.Params)))
		for _, p := range f.Params {
			h.typ(p.Ty)
		}
		hashFuncBody(&h, f, fidx, gidx)
	}
	return Fingerprint{Hi: h.hi, Lo: h.lo}
}

func attrsBits(a FuncAttrs) uint64 {
	var b uint64
	if a.ReadOnly {
		b |= 1
	}
	if a.ReadNone {
		b |= 2
	}
	if a.NoTrap {
		b |= 4
	}
	if a.NoInline {
		b |= 8
	}
	if a.Stripped {
		b |= 16
	}
	return b
}

func hashFuncBody(h *fpHasher, f *Func, fidx map[*Func]uint64, gidx map[*Global]uint64) {
	bidx := make(map[*Block]uint64, len(f.Blocks))
	iidx := make(map[*Instr]uint64)
	n := uint64(0)
	for i, b := range f.Blocks {
		bidx[b] = uint64(i)
		for _, in := range b.Instrs {
			iidx[in] = n
			n++
		}
	}
	h.word(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.word(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			h.word(uint64(in.Op)<<32 | uint64(in.Pred)<<8)
			h.typ(in.Ty)
			if in.Op == OpAlloca {
				h.typ(in.AllocTy)
			}
			h.word(uint64(int64(in.BranchWeight)))
			if in.Callee != nil {
				if ci, ok := fidx[in.Callee]; ok {
					h.word(ci)
				} else {
					// Callee outside the module: fall back to its name so
					// the stream stays deterministic.
					h.str(in.Callee.Name)
				}
			} else {
				h.word(fpNone)
			}
			h.word(uint64(len(in.Blocks)))
			for _, t := range in.Blocks {
				h.word(bidx[t])
			}
			h.word(uint64(len(in.Cases)))
			for _, c := range in.Cases {
				h.word(uint64(c))
			}
			h.word(uint64(len(in.Args)))
			for _, a := range in.Args {
				hashOperand(h, a, f, iidx, gidx)
			}
		}
	}
}

func hashOperand(h *fpHasher, v Value, f *Func, iidx map[*Instr]uint64, gidx map[*Global]uint64) {
	switch x := v.(type) {
	case nil:
		h.word(fpTagNil)
	case *Const:
		h.word(fpTagConst)
		h.typ(x.Ty)
		h.word(uint64(x.Val))
	case *Param:
		if x.Parent == f {
			h.word(fpTagParam)
			h.word(uint64(x.Index))
		} else {
			h.word(fpTagForeign)
			h.word(uint64(x.Index))
		}
	case *Instr:
		if i, ok := iidx[x]; ok {
			h.word(fpTagInstr)
			h.word(i)
		} else {
			h.word(fpTagForeign)
			h.word(uint64(x.Op))
		}
	case *Global:
		h.word(fpTagGlobal)
		h.word(gidx[x])
	case *Undef:
		h.word(fpTagUndef)
		h.typ(x.Ty)
	default:
		h.word(fpTagForeign)
	}
}
