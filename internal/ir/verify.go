package ir

import "fmt"

// Verify checks module-level structural invariants, standing in for LLVM's
// verifier and for the paper's "validate by logic simulation" step together
// with the interpreter equivalence tests. It returns the first violation
// found.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("function @%s: %w", f.Name, err)
		}
		// Calls must target functions still present in the module, and
		// operands must not reference another function's parameters.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					if p, ok := a.(*Param); ok && p.Parent != f {
						owner := "<detached>"
						if p.Parent != nil {
							owner = "@" + p.Parent.Name
						}
						return fmt.Errorf("function @%s: %s uses parameter %s of foreign function %s",
							f.Name, in.Op, p.Ref(), owner)
					}
				}
				if in.Op == OpCall {
					if in.Callee == nil {
						return fmt.Errorf("function @%s: call with nil callee", f.Name)
					}
					if m.Func(in.Callee.Name) != in.Callee {
						return fmt.Errorf("function @%s: call to detached function @%s", f.Name, in.Callee.Name)
					}
					if len(in.Args) != len(in.Callee.Params) {
						return fmt.Errorf("function @%s: call to @%s with %d args, want %d",
							f.Name, in.Callee.Name, len(in.Args), len(in.Callee.Params))
					}
				}
			}
		}
	}
	return nil
}

// Verify checks function-level invariants: block termination, operand
// presence and dominance, and phi/predecessor consistency.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	// The entry block has no predecessors, so it can never legally hold a
	// phi (even a zero-incoming one, which the phi/pred matching below
	// would otherwise accept).
	if len(f.Entry().Phis()) > 0 {
		return fmt.Errorf("block %s: phi in entry block", blockLabel(f.Entry()))
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", blockLabel(b))
		}
		for i, in := range b.Instrs {
			if in.parent != b {
				return fmt.Errorf("block %s: instruction %s has wrong parent", blockLabel(b), in.Op)
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %s: terminator misplacement at %d (%s)", blockLabel(b), i, in.Op)
			}
			if in.Op == OpPhi && i > 0 && b.Instrs[i-1].Op != OpPhi {
				return fmt.Errorf("block %s: phi not at block head", blockLabel(b))
			}
			for ai, a := range in.Args {
				if a == nil {
					return fmt.Errorf("block %s: %s operand %d is nil", blockLabel(b), in.Op, ai)
				}
				if def, ok := a.(*Instr); ok {
					if def.parent == nil || !inFunc[def.parent] {
						return fmt.Errorf("block %s: %s uses detached value %s", blockLabel(b), in.Op, def.Ref())
					}
				}
			}
			for _, t := range in.Blocks {
				if t == nil {
					return fmt.Errorf("block %s: %s has nil target", blockLabel(b), in.Op)
				}
				if !inFunc[t] {
					return fmt.Errorf("block %s: %s targets detached block %s", blockLabel(b), in.Op, blockLabel(t))
				}
			}
			switch in.Op {
			case OpPhi:
				if len(in.Args) != len(in.Blocks) {
					return fmt.Errorf("block %s: phi arg/block mismatch", blockLabel(b))
				}
			case OpBr:
				if len(in.Blocks) == 2 && len(in.Args) != 1 {
					return fmt.Errorf("block %s: conditional br without condition", blockLabel(b))
				}
			case OpSwitch:
				if len(in.Blocks) != len(in.Cases)+1 {
					return fmt.Errorf("block %s: switch case/target mismatch", blockLabel(b))
				}
			}
		}
	}
	// Phi incoming sets must exactly match predecessors (for reachable
	// blocks).
	reach := f.ReachableBlocks()
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		preds := b.Preds()
		predSet := make(map[*Block]bool, len(preds))
		for _, p := range preds {
			predSet[p] = true
		}
		for _, phi := range b.Phis() {
			seen := make(map[*Block]bool)
			for _, pb := range phi.Blocks {
				if seen[pb] {
					return fmt.Errorf("block %s: phi has duplicate incoming block %s", blockLabel(b), blockLabel(pb))
				}
				seen[pb] = true
				if !predSet[pb] {
					return fmt.Errorf("block %s: phi incoming from non-pred %s", blockLabel(b), blockLabel(pb))
				}
			}
			for _, p := range preds {
				if !seen[p] {
					return fmt.Errorf("block %s: phi missing incoming for pred %s", blockLabel(b), blockLabel(p))
				}
			}
		}
	}
	// SSA dominance for reachable uses.
	dt := NewDomTree(f)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if !dt.DominatesInstr(a, in) {
					return fmt.Errorf("block %s: use of %s in %s does not satisfy dominance",
						blockLabel(b), a.Ref(), in.Op)
				}
			}
		}
	}
	return nil
}
