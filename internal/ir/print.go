package ir

import (
	"fmt"
	"strings"
)

// String renders the module in LLVM-like textual form; Parse reads it back.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		ro := "global"
		if g.ReadOnly {
			ro = "constant"
		}
		fmt.Fprintf(&sb, "@%s = %s %s %v\n", g.Name, ro, g.Elem, g.Init)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// labelsOf assigns a unique textual label to every block (named blocks keep
// their name, deduplicated with a numeric suffix; unnamed blocks get bbN).
func labelsOf(f *Func) map[*Block]string {
	labels := make(map[*Block]string, len(f.Blocks))
	used := make(map[string]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		base := b.Name
		if base == "" {
			base = fmt.Sprintf("bb%d", i)
		}
		label := base
		for n := 1; used[label]; n++ {
			label = fmt.Sprintf("%s.%d", base, n)
		}
		used[label] = true
		labels[b] = label
	}
	return labels
}

// String renders the function in LLVM-like textual form.
func (f *Func) String() string {
	f.Renumber()
	labels := labelsOf(f)
	var sb strings.Builder
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, fmt.Sprintf("%s %%%s", p.Ty, p.Name))
	}
	attrs := ""
	if f.Attrs.ReadNone {
		attrs = " readnone"
	} else if f.Attrs.ReadOnly {
		attrs = " readonly"
	}
	if f.Attrs.NoTrap {
		attrs += " notrap"
	}
	if f.Attrs.NoInline {
		attrs += " noinline"
	}
	fmt.Fprintf(&sb, "define %s @%s(%s)%s {\n", f.Ret, f.Name, strings.Join(ps, ", "), attrs)
	for i, b := range f.Blocks {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s:\n", labels[b])
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.instrString(labels))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Label renders a block reference outside of a full function print
// (verifier errors, analysis diagnostics, debug output).
func (b *Block) Label() string { return blockLabel(b) }

// blockLabel renders a block reference outside of a full function print
// (verifier errors, debug output).
func blockLabel(b *Block) string {
	if b == nil {
		return "<nilblock>"
	}
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("bb%d", b.Index())
}

func labelIn(labels map[*Block]string, b *Block) string {
	if labels != nil {
		if l, ok := labels[b]; ok {
			return l
		}
	}
	return blockLabel(b)
}

func (in *Instr) instrString(labels map[*Block]string) string {
	refs := func() string {
		var parts []string
		for _, a := range in.Args {
			if a == nil {
				parts = append(parts, "<nil>")
				continue
			}
			parts = append(parts, a.Ref())
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return fmt.Sprintf("ret %s %s", in.Args[0].Type(), in.Args[0].Ref())
	case OpBr:
		if len(in.Blocks) == 1 {
			return fmt.Sprintf("br label %%%s", labelIn(labels, in.Blocks[0]))
		}
		return fmt.Sprintf("br i1 %s, label %%%s, label %%%s",
			in.Args[0].Ref(), labelIn(labels, in.Blocks[0]), labelIn(labels, in.Blocks[1]))
	case OpSwitch:
		var cs []string
		for i, v := range in.Cases {
			cs = append(cs, fmt.Sprintf("%d: label %%%s", v, labelIn(labels, in.Blocks[i+1])))
		}
		return fmt.Sprintf("switch %s %s, label %%%s [%s]",
			in.Args[0].Type(), in.Args[0].Ref(), labelIn(labels, in.Blocks[0]), strings.Join(cs, ", "))
	case OpUnreachable:
		return "unreachable"
	case OpStore:
		return fmt.Sprintf("store %s %s, %s %s",
			in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Type(), in.Args[1].Ref())
	case OpMemset:
		return fmt.Sprintf("memset(%s)", refs())
	case OpPrint:
		return fmt.Sprintf("print(%s)", refs())
	case OpPhi:
		var inc []string
		for i, a := range in.Args {
			r := "<nil>"
			if a != nil {
				r = a.Ref()
			}
			inc = append(inc, fmt.Sprintf("[ %s, %%%s ]", r, labelIn(labels, in.Blocks[i])))
		}
		return fmt.Sprintf("%s = phi %s %s", in.Ref(), in.Ty, strings.Join(inc, ", "))
	case OpICmp:
		return fmt.Sprintf("%s = icmp %s %s %s, %s",
			in.Ref(), in.Pred, in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Ref())
	case OpAlloca:
		return fmt.Sprintf("%s = alloca %s", in.Ref(), in.AllocTy)
	case OpLoad:
		return fmt.Sprintf("%s = load %s, %s %s", in.Ref(), in.Ty, in.Args[0].Type(), in.Args[0].Ref())
	case OpGEP:
		return fmt.Sprintf("%s = getelementptr %s %s, %s",
			in.Ref(), in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Ref())
	case OpCall:
		callee := "<nilfn>"
		if in.Callee != nil {
			callee = in.Callee.Name
		}
		if in.Ty.IsVoid() {
			return fmt.Sprintf("call void @%s(%s)", callee, refs())
		}
		return fmt.Sprintf("%s = call %s @%s(%s)", in.Ref(), in.Ty, callee, refs())
	case OpTrunc, OpZExt, OpSExt, OpBitCast:
		return fmt.Sprintf("%s = %s %s %s to %s",
			in.Ref(), in.Op, in.Args[0].Type(), in.Args[0].Ref(), in.Ty)
	case OpSelect:
		return fmt.Sprintf("%s = select i1 %s, %s %s, %s %s",
			in.Ref(), in.Args[0].Ref(), in.Args[1].Type(), in.Args[1].Ref(),
			in.Args[2].Type(), in.Args[2].Ref())
	default:
		return fmt.Sprintf("%s = %s %s %s, %s", in.Ref(), in.Op, in.Ty,
			in.Args[0].Ref(), in.Args[1].Ref())
	}
}
