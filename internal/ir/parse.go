package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Module.String back into a
// module, enabling file-based workflows (saving generated programs,
// diffing pass pipelines) and the printer/parser round-trip tests.
func Parse(src string) (*Module, error) {
	p := &parser{m: NewModule("parsed")}
	lines := strings.Split(src, "\n")

	// Pre-scan: function signatures (calls may reference later functions)
	// and globals.
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "; module "):
			p.m.Name = strings.TrimPrefix(line, "; module ")
		case strings.HasPrefix(line, "@"):
			if err := p.parseGlobal(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		case strings.HasPrefix(line, "define "):
			if err := p.parseSignature(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		}
	}

	// Body pass.
	var cur *funcParse
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
		case strings.HasPrefix(line, "@"):
		case strings.HasPrefix(line, "define "):
			name, err := definedName(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			cur = p.fns[name]
			cur.scanBlocks(lines[ln+1:])
		case line == "}":
			if cur != nil {
				if err := cur.resolve(); err != nil {
					return nil, fmt.Errorf("function @%s: %w", cur.f.Name, err)
				}
			}
			cur = nil
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: label outside function", ln+1)
			}
			cur.enterBlock(strings.TrimSuffix(line, ":"))
		default:
			if cur == nil {
				return nil, fmt.Errorf("line %d: instruction outside function", ln+1)
			}
			if err := cur.parseInstr(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		}
	}
	return p.m, nil
}

type parser struct {
	m   *Module
	fns map[string]*funcParse
}

type pendingOp struct {
	in   *Instr
	refs []string // textual operands, resolved after all defs exist
	tys  []*Type  // expected type per operand (for constants/undef)
}

type funcParse struct {
	p      *parser
	f      *Func
	blocks map[string]*Block
	defs   map[string]*Instr
	cur    *Block
	pend   []pendingOp
}

func (p *parser) parseGlobal(line string) error {
	// @name = global|constant TYPE [v1 v2 ...]
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return fmt.Errorf("bad global %q", line)
	}
	name := strings.TrimPrefix(line[:eq], "@")
	rest := line[eq+3:]
	readonly := false
	switch {
	case strings.HasPrefix(rest, "constant "):
		readonly = true
		rest = strings.TrimPrefix(rest, "constant ")
	case strings.HasPrefix(rest, "global "):
		rest = strings.TrimPrefix(rest, "global ")
	default:
		return fmt.Errorf("bad global kind in %q", line)
	}
	lb := strings.LastIndex(rest, "[")
	if lb < 0 {
		return fmt.Errorf("missing init in %q", line)
	}
	// The element type itself may be an array type containing '[', so take
	// the final bracket group as the initializer.
	tyStr := strings.TrimSpace(rest[:lb])
	initStr := strings.Trim(rest[lb:], "[] ")
	ty, err := parseType(tyStr)
	if err != nil {
		return err
	}
	var init []int64
	if initStr != "" {
		for _, tok := range strings.Fields(initStr) {
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return fmt.Errorf("bad init value %q", tok)
			}
			init = append(init, v)
		}
	}
	p.m.NewGlobal(name, ty, init, readonly)
	return nil
}

func definedName(line string) (string, error) {
	at := strings.Index(line, "@")
	if at < 0 {
		return "", fmt.Errorf("bad define %q", line)
	}
	par := strings.Index(line[at:], "(")
	if par < 0 {
		return "", fmt.Errorf("bad define %q", line)
	}
	return line[at+1 : at+par], nil
}

func (p *parser) parseSignature(line string) error {
	// define RET @name(TY %p0, TY %p1) [attrs] {
	body := strings.TrimPrefix(line, "define ")
	at := strings.Index(body, "@")
	if at < 0 {
		return fmt.Errorf("bad define %q", line)
	}
	ret, err := parseType(strings.TrimSpace(body[:at]))
	if err != nil {
		return err
	}
	open := strings.Index(body, "(")
	close := strings.LastIndex(body, ")")
	if open < 0 || close < open {
		return fmt.Errorf("bad define %q", line)
	}
	name := body[at+1 : open]
	var ptys []*Type
	var pnames []string
	params := strings.TrimSpace(body[open+1 : close])
	if params != "" {
		for _, ps := range strings.Split(params, ",") {
			fields := strings.Fields(strings.TrimSpace(ps))
			if len(fields) != 2 {
				return fmt.Errorf("bad param %q", ps)
			}
			ty, err := parseType(fields[0])
			if err != nil {
				return err
			}
			ptys = append(ptys, ty)
			pnames = append(pnames, strings.TrimPrefix(fields[1], "%"))
		}
	}
	f := p.m.NewFunc(name, ret, ptys...)
	for i, pn := range pnames {
		f.Params[i].Name = pn
	}
	attrs := strings.TrimSuffix(strings.TrimSpace(body[close+1:]), "{")
	for _, a := range strings.Fields(attrs) {
		switch a {
		case "readnone":
			f.Attrs.ReadNone = true
		case "readonly":
			f.Attrs.ReadOnly = true
		case "notrap":
			f.Attrs.NoTrap = true
		case "noinline":
			f.Attrs.NoInline = true
		}
	}
	if p.fns == nil {
		p.fns = make(map[string]*funcParse)
	}
	p.fns[name] = &funcParse{
		p: p, f: f,
		blocks: make(map[string]*Block),
		defs:   make(map[string]*Instr),
	}
	return nil
}

// scanBlocks pre-creates the function's blocks so branches can forward-
// reference labels.
func (fp *funcParse) scanBlocks(rest []string) {
	for _, raw := range rest {
		line := strings.TrimSpace(raw)
		if line == "}" {
			return
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			label := strings.TrimSuffix(line, ":")
			fp.blocks[label] = fp.f.NewBlock(label)
		}
	}
}

func (fp *funcParse) enterBlock(label string) {
	fp.cur = fp.blocks[label]
}

// parseType parses i1..i64, T*, and [N x T].
func parseType(s string) (*Type, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "void":
		return Void, nil
	case strings.HasSuffix(s, "*"):
		elem, err := parseType(strings.TrimSuffix(s, "*"))
		if err != nil {
			return nil, err
		}
		return PointerTo(elem), nil
	case strings.HasPrefix(s, "["):
		inner := strings.Trim(s, "[]")
		parts := strings.SplitN(inner, " x ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad array type %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		elem, err := parseType(parts[1])
		if err != nil {
			return nil, err
		}
		return ArrayOf(elem, n), nil
	case strings.HasPrefix(s, "i"):
		bits, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("bad type %q", s)
		}
		return IntType(bits), nil
	}
	return nil, fmt.Errorf("bad type %q", s)
}

var predByName = map[string]CmpPred{
	"eq": CmpEQ, "ne": CmpNE, "slt": CmpSLT, "sle": CmpSLE, "sgt": CmpSGT,
	"sge": CmpSGE, "ult": CmpULT, "ule": CmpULE, "ugt": CmpUGT, "uge": CmpUGE,
}

var opByName = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "sdiv": OpSDiv, "srem": OpSRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "lshr": OpLShr,
	"ashr": OpAShr,
}

// parseInstr parses one instruction line into fp.cur.
func (fp *funcParse) parseInstr(line string) error {
	if fp.cur == nil {
		return fmt.Errorf("instruction before first label: %q", line)
	}
	var def string
	body := line
	if i := strings.Index(line, " = "); i > 0 && strings.HasPrefix(line, "%") {
		def = strings.TrimPrefix(line[:i], "%")
		body = line[i+3:]
	}
	in, refs, tys, err := fp.parseBody(body)
	if err != nil {
		return fmt.Errorf("%q: %w", line, err)
	}
	if def != "" {
		// Numeric defs stay unnamed (they regenerate on print).
		if _, err := strconv.Atoi(def); err != nil {
			in.Name = def
		}
		fp.defs[def] = in
	}
	fp.cur.Append(in)
	fp.pend = append(fp.pend, pendingOp{in, refs, tys})
	return nil
}

// parseBody decodes the opcode-specific syntax, returning unresolved
// operand refs with their expected types.
func (fp *funcParse) parseBody(body string) (*Instr, []string, []*Type, error) {
	word := body
	if i := strings.IndexByte(body, ' '); i > 0 {
		word = body[:i]
	}
	if i := strings.IndexByte(word, '('); i > 0 {
		word = word[:i]
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, word))
	switch {
	case word == "ret":
		if rest == "void" {
			return &Instr{Op: OpRet, Ty: Void}, nil, nil, nil
		}
		ty, ref, err := tyRef(rest)
		if err != nil {
			return nil, nil, nil, err
		}
		return &Instr{Op: OpRet, Ty: Void}, []string{ref}, []*Type{ty}, nil
	case word == "br":
		if strings.HasPrefix(rest, "label ") {
			lbl := strings.TrimPrefix(strings.TrimPrefix(rest, "label "), "%")
			b := fp.blocks[lbl]
			if b == nil {
				return nil, nil, nil, fmt.Errorf("unknown label %q", lbl)
			}
			return &Instr{Op: OpBr, Ty: Void, Blocks: []*Block{b}}, nil, nil, nil
		}
		// br i1 %c, label %a, label %b
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return nil, nil, nil, fmt.Errorf("bad br")
		}
		_, cref, err := tyRef(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		t1 := fp.blocks[labelRef(parts[1])]
		t2 := fp.blocks[labelRef(parts[2])]
		if t1 == nil || t2 == nil {
			return nil, nil, nil, fmt.Errorf("bad br targets")
		}
		return &Instr{Op: OpBr, Ty: Void, Blocks: []*Block{t1, t2}},
			[]string{cref}, []*Type{I1}, nil
	case word == "switch":
		// switch TY %v, label %def [c: label %a, ...]
		lb := strings.Index(rest, "[")
		head := strings.TrimSpace(strings.TrimSuffix(rest[:lb], " "))
		caseStr := strings.Trim(rest[lb:], "[]")
		hp := strings.SplitN(head, ",", 2)
		ty, vref, err := tyRef(strings.TrimSpace(hp[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		def := fp.blocks[labelRef(hp[1])]
		in := &Instr{Op: OpSwitch, Ty: Void, Blocks: []*Block{def}}
		if strings.TrimSpace(caseStr) != "" {
			for _, cs := range strings.Split(caseStr, ",") {
				cp := strings.SplitN(cs, ":", 2)
				v, err := strconv.ParseInt(strings.TrimSpace(cp[0]), 10, 64)
				if err != nil {
					return nil, nil, nil, err
				}
				tb := fp.blocks[labelRef(cp[1])]
				if tb == nil {
					return nil, nil, nil, fmt.Errorf("bad switch target")
				}
				in.Cases = append(in.Cases, v)
				in.Blocks = append(in.Blocks, tb)
			}
		}
		return in, []string{vref}, []*Type{ty}, nil
	case word == "unreachable":
		return &Instr{Op: OpUnreachable, Ty: Void}, nil, nil, nil
	case word == "store":
		parts := strings.SplitN(rest, ",", 2)
		vt, vref, err := tyRef(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		pt, pref, err := tyRef(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, nil, nil, err
		}
		return &Instr{Op: OpStore, Ty: Void}, []string{vref, pref}, []*Type{vt, pt}, nil
	case word == "print":
		arg := strings.Trim(strings.TrimPrefix(body, "print"), "() ")
		return &Instr{Op: OpPrint, Ty: Void}, []string{arg}, []*Type{I64}, nil
	case word == "memset":
		argStr := strings.Trim(strings.TrimPrefix(body, "memset"), "() ")
		args := splitRefs(argStr)
		if len(args) != 3 {
			return nil, nil, nil, fmt.Errorf("bad memset")
		}
		return &Instr{Op: OpMemset, Ty: Void}, args, []*Type{nil, I64, I64}, nil
	case word == "call":
		return fp.parseCall(Void, rest)
	case word == "phi":
		// phi TY [ v, %b ], ...
		sp := strings.IndexByte(rest, ' ')
		ty, err := parseType(rest[:sp])
		if err != nil {
			return nil, nil, nil, err
		}
		in := &Instr{Op: OpPhi, Ty: ty}
		var refs []string
		var tys []*Type
		for _, grp := range strings.Split(rest[sp+1:], "],") {
			grp = strings.Trim(grp, "[] ")
			cp := strings.SplitN(grp, ",", 2)
			if len(cp) != 2 {
				return nil, nil, nil, fmt.Errorf("bad phi incoming %q", grp)
			}
			b := fp.blocks[strings.TrimPrefix(strings.TrimSpace(cp[1]), "%")]
			if b == nil {
				return nil, nil, nil, fmt.Errorf("bad phi block %q", cp[1])
			}
			in.Blocks = append(in.Blocks, b)
			refs = append(refs, strings.TrimSpace(cp[0]))
			tys = append(tys, ty)
		}
		return in, refs, tys, nil
	case word == "icmp":
		// icmp PRED TY a, b
		fields := strings.SplitN(rest, " ", 3)
		pred, ok := predByName[fields[0]]
		if !ok {
			return nil, nil, nil, fmt.Errorf("bad predicate %q", fields[0])
		}
		ty, err := parseType(fields[1])
		if err != nil {
			return nil, nil, nil, err
		}
		ab := splitRefs(fields[2])
		if len(ab) != 2 {
			return nil, nil, nil, fmt.Errorf("bad icmp operands")
		}
		return &Instr{Op: OpICmp, Ty: I1, Pred: pred}, ab, []*Type{ty, ty}, nil
	case word == "alloca":
		ty, err := parseType(rest)
		if err != nil {
			return nil, nil, nil, err
		}
		elem := ty
		if ty.Kind == ArrayKind {
			elem = ty.Elem
		}
		return &Instr{Op: OpAlloca, Ty: PointerTo(elem), AllocTy: ty}, nil, nil, nil
	case word == "load":
		// load TY, PTRTY %p
		parts := strings.SplitN(rest, ",", 2)
		ty, err := parseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		pt, pref, err := tyRef(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, nil, nil, err
		}
		return &Instr{Op: OpLoad, Ty: ty}, []string{pref}, []*Type{pt}, nil
	case word == "getelementptr":
		// getelementptr PTRTY %base, idx
		parts := strings.SplitN(rest, ",", 2)
		bt, bref, err := tyRef(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		return &Instr{Op: OpGEP, Ty: bt},
			[]string{bref, strings.TrimSpace(parts[1])}, []*Type{bt, I64}, nil
	case word == "select":
		// select i1 c, TY a, TY b
		parts := strings.SplitN(rest, ",", 3)
		_, cref, err := tyRef(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, nil, err
		}
		t1, aref, err := tyRef(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, nil, nil, err
		}
		t2, bref, err := tyRef(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, nil, nil, err
		}
		return &Instr{Op: OpSelect, Ty: t1},
			[]string{cref, aref, bref}, []*Type{I1, t1, t2}, nil
	case word == "trunc" || word == "zext" || word == "sext" || word == "bitcast":
		// OP TY %v to TY2
		toIdx := strings.LastIndex(rest, " to ")
		if toIdx < 0 {
			return nil, nil, nil, fmt.Errorf("bad cast")
		}
		fromTy, ref, err := tyRef(strings.TrimSpace(rest[:toIdx]))
		if err != nil {
			return nil, nil, nil, err
		}
		toTy, err := parseType(rest[toIdx+4:])
		if err != nil {
			return nil, nil, nil, err
		}
		ops := map[string]Op{"trunc": OpTrunc, "zext": OpZExt, "sext": OpSExt, "bitcast": OpBitCast}
		return &Instr{Op: ops[word], Ty: toTy}, []string{ref}, []*Type{fromTy}, nil
	default:
		if op, ok := opByName[word]; ok {
			// OP TY a, b
			sp := strings.IndexByte(rest, ' ')
			ty, err := parseType(rest[:sp])
			if err != nil {
				return nil, nil, nil, err
			}
			ab := splitRefs(rest[sp+1:])
			if len(ab) != 2 {
				return nil, nil, nil, fmt.Errorf("bad binary operands")
			}
			return &Instr{Op: op, Ty: ty}, ab, []*Type{ty, ty}, nil
		}
	}
	// Typed call: "%x = call TY @f(...)" arrives as word=="call" above only
	// for void; the valued form has body "call TY @f(...)".
	if strings.HasPrefix(body, "call ") {
		return fp.parseCall(nil, strings.TrimPrefix(body, "call "))
	}
	return nil, nil, nil, fmt.Errorf("unknown instruction %q", word)
}

func (fp *funcParse) parseCall(voidTy *Type, rest string) (*Instr, []string, []*Type, error) {
	// [TY] @callee(args)
	at := strings.Index(rest, "@")
	if at < 0 {
		return nil, nil, nil, fmt.Errorf("bad call %q", rest)
	}
	ty := voidTy
	if tyStr := strings.TrimSpace(rest[:at]); tyStr != "" {
		var err error
		ty, err = parseType(tyStr)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	open := strings.Index(rest, "(")
	callee := rest[at+1 : open]
	cf := fp.p.fns[callee]
	if cf == nil {
		return nil, nil, nil, fmt.Errorf("unknown callee @%s", callee)
	}
	if ty == nil {
		ty = cf.f.Ret
	}
	argStr := strings.Trim(rest[open:], "() ")
	args := splitRefs(argStr)
	tys := make([]*Type, len(args))
	for i := range args {
		if i < len(cf.f.Params) {
			tys[i] = cf.f.Params[i].Ty
		} else {
			tys[i] = I64
		}
	}
	return &Instr{Op: OpCall, Ty: ty, Callee: cf.f}, args, tys, nil
}

// tyRef splits "TY %ref" / "TY 42".
func tyRef(s string) (*Type, string, error) {
	sp := strings.LastIndexByte(s, ' ')
	if sp < 0 {
		return nil, "", fmt.Errorf("expected type and ref in %q", s)
	}
	ty, err := parseType(s[:sp])
	if err != nil {
		return nil, "", err
	}
	return ty, strings.TrimSpace(s[sp+1:]), nil
}

func labelRef(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "label ")
	return strings.TrimPrefix(s, "%")
}

func splitRefs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// resolve rewrites textual operands into values once every definition in
// the function exists.
func (fp *funcParse) resolve() error {
	lookup := func(ref string, ty *Type) (Value, error) {
		switch {
		case ref == "undef":
			return &Undef{Ty: ty}, nil
		case strings.HasPrefix(ref, "@"):
			g := fp.p.m.Global(strings.TrimPrefix(ref, "@"))
			if g == nil {
				return nil, fmt.Errorf("unknown global %s", ref)
			}
			return g, nil
		case strings.HasPrefix(ref, "%"):
			name := strings.TrimPrefix(ref, "%")
			if in, ok := fp.defs[name]; ok {
				return in, nil
			}
			for _, p := range fp.f.Params {
				if p.Name == name {
					return p, nil
				}
			}
			return nil, fmt.Errorf("unknown value %s", ref)
		default:
			v, err := strconv.ParseInt(ref, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad operand %q", ref)
			}
			if ty == nil || !ty.IsInt() {
				ty = I64
			}
			return ConstInt(ty, v), nil
		}
	}
	for _, pe := range fp.pend {
		for i, ref := range pe.refs {
			v, err := lookup(ref, pe.tys[i])
			if err != nil {
				return err
			}
			pe.in.Args = append(pe.in.Args, v)
		}
	}
	return nil
}
