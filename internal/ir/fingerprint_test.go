package ir_test

import (
	"testing"

	"autophase/internal/ir"
	"autophase/internal/progen"
)

// renameEverything rewrites every local value, block, parameter and global
// name in place — the symbol information the fingerprint must ignore.
func renameEverything(m *ir.Module) {
	for gi, g := range m.Globals {
		g.Name = g.Name + "_renamed"
		_ = gi
	}
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			p.Name = "p_" + p.Name
		}
		for bi, b := range f.Blocks {
			b.Name = "bb_renamed"
			_ = bi
			for _, in := range b.Instrs {
				in.Name = "v_" + in.Name
			}
		}
	}
}

func TestFingerprintIgnoresValueNames(t *testing.T) {
	for _, b := range progen.Benchmarks() {
		m := b.Clone()
		before := m.Fingerprint()
		renameEverything(m)
		if after := m.Fingerprint(); after != before {
			t.Fatalf("%s: renaming locals changed the fingerprint: %s -> %s",
				m.Name, before, after)
		}
	}
}

func TestFingerprintCloneAndDeterminism(t *testing.T) {
	for _, b := range progen.Benchmarks() {
		m := b.Clone()
		fp := m.Fingerprint()
		if fp.IsZero() {
			t.Fatalf("%s: zero fingerprint", m.Name)
		}
		if again := m.Fingerprint(); again != fp {
			t.Fatalf("%s: fingerprint not deterministic: %s vs %s", m.Name, fp, again)
		}
		if cfp := m.Clone().Fingerprint(); cfp != fp {
			t.Fatalf("%s: clone fingerprint %s != original %s", m.Name, cfp, fp)
		}
	}
	seen := make(map[ir.Fingerprint]string)
	for _, b := range progen.Benchmarks() {
		fp := b.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("benchmarks %s and %s share fingerprint %s", prev, b.Name, fp)
		}
		seen[fp] = b.Name
	}
}

// buildTiny returns a two-function module with a call, a branch and a
// global — one of each structural element the sensitivity probes mutate.
func buildTiny() *ir.Module {
	m := ir.NewModule("tiny")
	g := m.NewGlobal("tab", ir.ArrayOf(ir.I32, 4), []int64{1, 2, 3, 4}, true)
	callee := m.NewFunc("helper", ir.I32, ir.I32)
	cb := callee.NewBlock("entry")
	add := cb.Append(&ir.Instr{Op: ir.OpAdd, Ty: ir.I32,
		Args: []ir.Value{callee.Params[0], ir.ConstInt(ir.I32, 7)}})
	cb.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{add}})

	main := m.NewFunc("main", ir.I32)
	b0 := main.NewBlock("entry")
	b1 := main.NewBlock("exit")
	c := b0.Append(&ir.Instr{Op: ir.OpCall, Ty: ir.I32, Callee: callee,
		Args: []ir.Value{ir.ConstInt(ir.I32, 5)}})
	gep := b0.Append(&ir.Instr{Op: ir.OpGEP, Ty: ir.PointerTo(ir.I32),
		Args: []ir.Value{g, ir.ConstInt(ir.I32, 1)}})
	ld := b0.Append(&ir.Instr{Op: ir.OpLoad, Ty: ir.I32, Args: []ir.Value{gep}})
	b0.Append(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{b1}})
	sum := b1.Append(&ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Args: []ir.Value{c, ld}})
	b1.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{sum}})
	return m
}

func TestFingerprintSensitivity(t *testing.T) {
	base := buildTiny().Fingerprint()
	mutations := []struct {
		name string
		mut  func(*ir.Module)
	}{
		{"func name", func(m *ir.Module) { m.Funcs[0].Name = "helper2" }},
		{"stripped attr", func(m *ir.Module) { m.Funcs[0].Attrs.Stripped = true }},
		{"readonly attr", func(m *ir.Module) { m.Funcs[0].Attrs.ReadOnly = true }},
		{"const value", func(m *ir.Module) {
			in := m.Funcs[0].Blocks[0].Instrs[0]
			in.Args[1] = ir.ConstInt(ir.I32, 8)
		}},
		{"global init", func(m *ir.Module) { m.Globals[0].Init[2] = 99 }},
		{"global readonly", func(m *ir.Module) { m.Globals[0].ReadOnly = false }},
		{"opcode", func(m *ir.Module) { m.Funcs[0].Blocks[0].Instrs[0].Op = ir.OpSub }},
		{"instr order", func(m *ir.Module) {
			ins := m.Funcs[1].Blocks[0].Instrs
			ins[1], ins[2] = ins[2], ins[1]
		}},
		{"branch weight", func(m *ir.Module) {
			m.Funcs[1].Blocks[0].Term().BranchWeight = 3
		}},
		{"drop instr", func(m *ir.Module) {
			b := m.Funcs[1].Blocks[1]
			b.Remove(b.Instrs[0])
		}},
	}
	seen := map[ir.Fingerprint]string{base: "base"}
	for _, mu := range mutations {
		m := buildTiny()
		mu.mut(m)
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collided with %q (fingerprint %s)", mu.name, prev, fp)
		}
		seen[fp] = mu.name
	}
}

func BenchmarkFingerprint(b *testing.B) {
	bs := progen.Benchmarks()
	var total int
	for _, m := range bs {
		total += m.NumInstrs()
	}
	b.ReportMetric(float64(total), "instrs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range bs {
			if m.Fingerprint().IsZero() {
				b.Fatal("zero fingerprint")
			}
		}
	}
}
