package ir_test

import (
	"testing"

	"autophase/internal/ir"
	"autophase/internal/progen"
)

func TestCloneCOWSharesEverythingInitially(t *testing.T) {
	parent := progen.Benchmark("gsm")
	before := parent.String()
	fp := parent.Fingerprint()

	m := parent.Clone()
	cow := m.CloneCOW()
	for i, f := range cow.Funcs {
		if f != m.Funcs[i] {
			t.Fatalf("func %d not shared by pointer", i)
		}
		if !cow.IsShared(f) {
			t.Fatalf("func %s not marked shared", f.Name)
		}
	}
	for i, g := range cow.Globals {
		if g != m.Globals[i] {
			t.Fatalf("global %d not shared by pointer", i)
		}
	}
	if got := cow.Fingerprint(); got != fp {
		t.Fatalf("COW fingerprint %s != parent %s", got, fp)
	}
	if parent.String() != before {
		t.Fatal("cloning mutated the parent")
	}
}

func TestRunOwnedInstallsOnlyOnChange(t *testing.T) {
	m := progen.Benchmark("matmul")
	cow := m.CloneCOW()
	target := cow.Funcs[0]

	// A no-op run must not take ownership (no clone installed).
	if changed := cow.RunOwned(target, func(f *ir.Func) bool { return false }); changed {
		t.Fatal("no-op run reported change")
	}
	if !cow.IsShared(target) {
		t.Fatal("no-op run took ownership")
	}
	if cow.Funcs[0] != target {
		t.Fatal("no-op run replaced the function")
	}

	// A mutating run must install an owned clone and leave the parent alone.
	parentBefore := m.String()
	var owned *ir.Func
	changed := cow.RunOwned(target, func(f *ir.Func) bool {
		owned = f
		b := f.Blocks[0]
		b.Prepend(&ir.Instr{Op: ir.OpAlloca, Ty: ir.PointerTo(ir.I32), AllocTy: ir.I32})
		return true
	})
	if !changed {
		t.Fatal("mutating run reported no change")
	}
	if owned == target {
		t.Fatal("mutating run worked on the shared function itself")
	}
	if cow.Funcs[0] != owned || cow.IsShared(owned) {
		t.Fatal("owned clone not installed")
	}
	if m.String() != parentBefore {
		t.Fatal("mutating the COW module changed the parent")
	}
	if cow.Fingerprint() == m.Fingerprint() {
		t.Fatal("mutation did not change the fingerprint")
	}
}

// TestSealReroutesStaleCallees replaces a callee through RunOwned and checks
// Seal leaves no instruction referencing a function outside the module.
func TestSealReroutesStaleCallees(t *testing.T) {
	for _, name := range progen.BenchmarkNames {
		m := progen.Benchmark(name)
		cow := m.CloneCOW()
		replaced := 0
		for _, f := range append([]*ir.Func(nil), cow.Funcs...) {
			if f.Name == "main" {
				continue
			}
			if cow.RunOwned(f, func(nf *ir.Func) bool {
				nf.Blocks[0].Prepend(&ir.Instr{Op: ir.OpAlloca,
					Ty: ir.PointerTo(ir.I32), AllocTy: ir.I32})
				return true
			}) {
				replaced++
			}
		}
		if replaced == 0 {
			continue // single-function benchmark; nothing to reroute
		}
		cow.Seal()
		in := make(map[*ir.Func]bool, len(cow.Funcs))
		for _, f := range cow.Funcs {
			in[f] = true
		}
		for _, f := range cow.Funcs {
			for _, b := range f.Blocks {
				for _, i := range b.Instrs {
					if i.Callee != nil && !in[i.Callee] {
						t.Fatalf("%s: %s calls a function no longer in the module", name, f.Name)
					}
				}
			}
		}
	}
}

func TestMaterializeAllBehavesLikeDeepClone(t *testing.T) {
	m := progen.Benchmark("qsort")
	want := m.String()

	cow := m.CloneCOW()
	cow.MaterializeAll()
	for _, f := range cow.Funcs {
		if cow.IsShared(f) {
			t.Fatalf("%s still shared after MaterializeAll", f.Name)
		}
	}
	if got := cow.String(); got != want {
		t.Fatalf("materialized module prints differently:\n%s", got)
	}
	// Mutating the materialized module must not leak into the parent.
	cow.Funcs[0].Blocks[0].Prepend(&ir.Instr{Op: ir.OpAlloca,
		Ty: ir.PointerTo(ir.I32), AllocTy: ir.I32})
	if m.String() != want {
		t.Fatal("mutation after MaterializeAll reached the parent")
	}
}
