package ir

// Builder provides a convenient API for constructing IR, used by the random
// program generator and the hand-built benchmarks.
type Builder struct {
	fn  *Func
	blk *Block
	n   int
}

// NewBuilder returns a builder with no insertion point.
func NewBuilder() *Builder { return &Builder{} }

// SetInsert positions the builder at the end of block b.
func (bld *Builder) SetInsert(b *Block) {
	bld.blk = b
	bld.fn = b.parent
}

// Block returns the current insertion block.
func (bld *Builder) Block() *Block { return bld.blk }

func (bld *Builder) emit(in *Instr) *Instr {
	bld.blk.Append(in)
	return in
}

// Binary emits a two-operand arithmetic/bitwise instruction.
func (bld *Builder) Binary(op Op, a, b Value) *Instr {
	return bld.emit(&Instr{Op: op, Ty: a.Type(), Args: []Value{a, b}})
}

// Add emits an add.
func (bld *Builder) Add(a, b Value) *Instr { return bld.Binary(OpAdd, a, b) }

// Sub emits a sub.
func (bld *Builder) Sub(a, b Value) *Instr { return bld.Binary(OpSub, a, b) }

// Mul emits a mul.
func (bld *Builder) Mul(a, b Value) *Instr { return bld.Binary(OpMul, a, b) }

// SDiv emits a signed division.
func (bld *Builder) SDiv(a, b Value) *Instr { return bld.Binary(OpSDiv, a, b) }

// SRem emits a signed remainder.
func (bld *Builder) SRem(a, b Value) *Instr { return bld.Binary(OpSRem, a, b) }

// And emits a bitwise and.
func (bld *Builder) And(a, b Value) *Instr { return bld.Binary(OpAnd, a, b) }

// Or emits a bitwise or.
func (bld *Builder) Or(a, b Value) *Instr { return bld.Binary(OpOr, a, b) }

// Xor emits a bitwise xor.
func (bld *Builder) Xor(a, b Value) *Instr { return bld.Binary(OpXor, a, b) }

// Shl emits a left shift.
func (bld *Builder) Shl(a, b Value) *Instr { return bld.Binary(OpShl, a, b) }

// LShr emits a logical right shift.
func (bld *Builder) LShr(a, b Value) *Instr { return bld.Binary(OpLShr, a, b) }

// AShr emits an arithmetic right shift.
func (bld *Builder) AShr(a, b Value) *Instr { return bld.Binary(OpAShr, a, b) }

// ICmp emits an integer comparison producing an i1.
func (bld *Builder) ICmp(p CmpPred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpICmp, Ty: I1, Pred: p, Args: []Value{a, b}})
}

// Select emits cond ? t : f.
func (bld *Builder) Select(cond, t, f Value) *Instr {
	return bld.emit(&Instr{Op: OpSelect, Ty: t.Type(), Args: []Value{cond, t, f}})
}

// Phi emits an (initially empty) phi of the given type.
func (bld *Builder) Phi(ty *Type) *Instr {
	return bld.emit(&Instr{Op: OpPhi, Ty: ty})
}

// Alloca emits a stack allocation of ty, yielding a pointer value. Arrays
// allocate ty.Len cells; scalars one cell.
func (bld *Builder) Alloca(ty *Type) *Instr {
	elem := ty
	if ty.Kind == ArrayKind {
		elem = ty.Elem
	}
	return bld.emit(&Instr{Op: OpAlloca, Ty: PointerTo(elem), AllocTy: ty})
}

// Load emits a load through ptr.
func (bld *Builder) Load(ptr Value) *Instr {
	return bld.emit(&Instr{Op: OpLoad, Ty: ptr.Type().Elem, Args: []Value{ptr}})
}

// Store emits a store of val through ptr.
func (bld *Builder) Store(val, ptr Value) *Instr {
	return bld.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{val, ptr}})
}

// GEP emits an element-address computation ptr + idx.
func (bld *Builder) GEP(ptr, idx Value) *Instr {
	return bld.emit(&Instr{Op: OpGEP, Ty: ptr.Type(), Args: []Value{ptr, idx}})
}

// Memset emits the loop-idiom intrinsic memset(ptr, val, n).
func (bld *Builder) Memset(ptr, val, n Value) *Instr {
	return bld.emit(&Instr{Op: OpMemset, Ty: Void, Args: []Value{ptr, val, n}})
}

// Cast emits a trunc/zext/sext/bitcast to the destination type.
func (bld *Builder) Cast(op Op, v Value, to *Type) *Instr {
	return bld.emit(&Instr{Op: op, Ty: to, Args: []Value{v}})
}

// Trunc emits a truncation.
func (bld *Builder) Trunc(v Value, to *Type) *Instr { return bld.Cast(OpTrunc, v, to) }

// ZExt emits a zero extension.
func (bld *Builder) ZExt(v Value, to *Type) *Instr { return bld.Cast(OpZExt, v, to) }

// SExt emits a sign extension.
func (bld *Builder) SExt(v Value, to *Type) *Instr { return bld.Cast(OpSExt, v, to) }

// BitCast emits a bitcast (pointer reinterpretation).
func (bld *Builder) BitCast(v Value, to *Type) *Instr { return bld.Cast(OpBitCast, v, to) }

// Call emits a call to callee.
func (bld *Builder) Call(callee *Func, args ...Value) *Instr {
	return bld.emit(&Instr{Op: OpCall, Ty: callee.Ret, Callee: callee, Args: args})
}

// Print emits the observable-output intrinsic.
func (bld *Builder) Print(v Value) *Instr {
	return bld.emit(&Instr{Op: OpPrint, Ty: Void, Args: []Value{v}})
}

// Ret emits a return (v may be nil for void).
func (bld *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bld.emit(in)
}

// Br emits an unconditional branch.
func (bld *Builder) Br(dest *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{dest}})
}

// CondBr emits a conditional branch.
func (bld *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Switch emits a switch over v; cases pairs values with targets.
func (bld *Builder) Switch(v Value, def *Block, vals []int64, targets []*Block) *Instr {
	blocks := append([]*Block{def}, targets...)
	return bld.emit(&Instr{Op: OpSwitch, Ty: Void, Args: []Value{v}, Blocks: blocks, Cases: vals})
}

// Unreachable emits an unreachable terminator.
func (bld *Builder) Unreachable() *Instr {
	return bld.emit(&Instr{Op: OpUnreachable, Ty: Void})
}
