package ir

// EvalBinary computes a binary integer operation over 64-bit values and
// truncates the result to ty's width with two's-complement semantics. It is
// the single evaluation rule shared by the interpreter, SCCP and the
// constant folders, so they cannot disagree. Division by zero saturates to
// 0 here (the interpreter traps instead; folders must not fold a division
// whose divisor may be zero).
func EvalBinary(op Op, ty *Type, a, b int64) int64 {
	var r int64
	switch op {
	case OpAdd:
		r = a + b
	case OpSub:
		r = a - b
	case OpMul:
		r = a * b
	case OpSDiv:
		if b == 0 || (a == minOf(ty) && b == -1) {
			return 0
		}
		r = a / b
	case OpSRem:
		if b == 0 || (a == minOf(ty) && b == -1) {
			return 0
		}
		r = a % b
	case OpAnd:
		r = a & b
	case OpOr:
		r = a | b
	case OpXor:
		r = a ^ b
	case OpShl:
		r = a << shiftAmt(ty, b)
	case OpLShr:
		r = int64((uint64(a) & ty.Mask()) >> shiftAmt(ty, b))
	case OpAShr:
		r = ty.TruncVal(a) >> shiftAmt(ty, b)
	default:
		return 0
	}
	return ty.TruncVal(r)
}

func minOf(ty *Type) int64 {
	if !ty.IsInt() || ty.Bits >= 64 {
		return -1 << 63
	}
	return -(int64(1) << uint(ty.Bits-1))
}

// shiftAmt clamps the shift amount modulo the bit width, mirroring hardware
// shifters (LLVM leaves over-shift as poison; a fixed modulo rule keeps the
// interpreter and folders consistent).
func shiftAmt(ty *Type, b int64) uint {
	bits := 64
	if ty.IsInt() && ty.Bits > 0 {
		bits = ty.Bits
	}
	return uint(uint64(b) % uint64(bits))
}

// EvalCast computes a cast of v from fromTy to toTy.
func EvalCast(op Op, fromTy, toTy *Type, v int64) int64 {
	switch op {
	case OpTrunc:
		return toTy.TruncVal(v)
	case OpZExt:
		return int64(uint64(v) & fromTy.Mask())
	case OpSExt:
		return fromTy.TruncVal(v)
	case OpBitCast:
		return v
	}
	return v
}

// FoldInstr attempts to constant-fold in when all value operands are
// constants, returning the folded constant.
func FoldInstr(in *Instr) (*Const, bool) {
	cv := make([]int64, len(in.Args))
	for i, a := range in.Args {
		c, ok := IsConst(a)
		if !ok {
			return nil, false
		}
		cv[i] = c
	}
	switch {
	case in.Op.IsBinary():
		if (in.Op == OpSDiv || in.Op == OpSRem) && cv[1] == 0 {
			return nil, false // would trap; leave for the interpreter
		}
		return ConstInt(in.Ty, EvalBinary(in.Op, in.Ty, cv[0], cv[1])), true
	case in.Op == OpICmp:
		bits := 64
		if t := in.Args[0].Type(); t.IsInt() {
			bits = t.Bits
		}
		if in.Pred.Eval(cv[0], cv[1], bits) {
			return ConstInt(I1, 1), true
		}
		return ConstInt(I1, 0), true
	case in.Op.IsCast():
		return ConstInt(in.Ty, EvalCast(in.Op, in.Args[0].Type(), in.Ty, cv[0])), true
	case in.Op == OpSelect:
		if cv[0] != 0 {
			return ConstInt(in.Ty, cv[1]), true
		}
		return ConstInt(in.Ty, cv[2]), true
	}
	return nil, false
}
