// Package ir implements a compact LLVM-like intermediate representation used
// by the AutoPhase reproduction: typed integer SSA values, basic blocks,
// functions with allocas/loads/stores/phis, and the control-flow analyses
// (dominators, natural loops, critical edges) the transform passes need.
//
// The representation intentionally mirrors the subset of LLVM IR that the
// paper's 56 program features (Table 2) and 46 transform passes (Table 1)
// are defined over.
package ir

import "fmt"

// TypeKind discriminates the small set of first-class types.
type TypeKind uint8

// The type kinds supported by the IR.
const (
	VoidKind TypeKind = iota
	IntKind
	PtrKind
	ArrayKind
)

// Type describes a value type. Types are structural: two Types with the same
// shape are interchangeable, and the package interns the common scalar types.
type Type struct {
	Kind TypeKind
	Bits int   // IntKind: bit width (1, 8, 16, 32, 64)
	Elem *Type // PtrKind: pointee; ArrayKind: element
	Len  int   // ArrayKind: number of elements
}

// Interned scalar types.
var (
	Void = &Type{Kind: VoidKind}
	I1   = &Type{Kind: IntKind, Bits: 1}
	I8   = &Type{Kind: IntKind, Bits: 8}
	I16  = &Type{Kind: IntKind, Bits: 16}
	I32  = &Type{Kind: IntKind, Bits: 32}
	I64  = &Type{Kind: IntKind, Bits: 64}
)

// IntType returns the interned integer type of the given width.
func IntType(bits int) *Type {
	switch bits {
	case 1:
		return I1
	case 8:
		return I8
	case 16:
		return I16
	case 32:
		return I32
	case 64:
		return I64
	default:
		return &Type{Kind: IntKind, Bits: bits}
	}
}

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: PtrKind, Elem: elem} }

// ArrayOf returns an array type of n elements of elem.
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: ArrayKind, Elem: elem, Len: n}
}

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == IntKind }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == PtrKind }

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t == nil || t.Kind == VoidKind }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case VoidKind:
		return true
	case IntKind:
		return t.Bits == o.Bits
	case PtrKind:
		return t.Elem.Equal(o.Elem)
	case ArrayKind:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return false
}

// String renders the type in LLVM-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "void"
	}
	switch t.Kind {
	case VoidKind:
		return "void"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case PtrKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem.String())
	}
	return "?"
}

// Mask returns the bit mask for an integer type, e.g. 0xFF for i8.
func (t *Type) Mask() uint64 {
	if !t.IsInt() {
		return ^uint64(0)
	}
	if t.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(t.Bits)) - 1
}

// MinVal returns the smallest value TruncVal can produce for t
// (the most negative canonical value of the width).
func (t *Type) MinVal() int64 {
	if !t.IsInt() || t.Bits >= 64 {
		return -1 << 63
	}
	return -(int64(1) << uint(t.Bits-1))
}

// MaxVal returns the largest value TruncVal can produce for t.
func (t *Type) MaxVal() int64 {
	if !t.IsInt() || t.Bits >= 64 {
		return 1<<63 - 1
	}
	return int64(1)<<uint(t.Bits-1) - 1
}

// TruncVal truncates v to the width of the integer type t and sign-extends
// the result back to 64 bits, matching two's-complement wraparound.
func (t *Type) TruncVal(v int64) int64 {
	if !t.IsInt() || t.Bits >= 64 {
		return v
	}
	u := uint64(v) & t.Mask()
	sign := uint64(1) << uint(t.Bits-1)
	if u&sign != 0 {
		u |= ^t.Mask()
	}
	return int64(u)
}
