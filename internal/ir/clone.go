package ir

// Clone deep-copies the module. Search algorithms evaluate each candidate
// pass sequence on a fresh clone of the original program.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := nm.NewGlobal(g.Name, g.Elem, append([]int64(nil), g.Init...), g.ReadOnly)
		gmap[g] = ng
	}
	fmap := make(map[*Func]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := &Func{Name: f.Name, Ret: f.Ret, Attrs: f.Attrs, module: nm}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{Name: p.Name, Ty: p.Ty, Parent: nf, Index: p.Index})
		}
		nm.Funcs = append(nm.Funcs, nf)
		fmap[f] = nf
	}
	for _, f := range m.Funcs {
		cloneFuncInto(f, fmap[f], fmap, gmap)
	}
	return nm
}

// CloneFunc deep-copies a single function into the same module under a new
// name (used by -loop-unswitch style cloning and the partial inliner).
func CloneFunc(f *Func, newName string) *Func {
	m := f.module
	nf := &Func{Name: newName, Ret: f.Ret, Attrs: f.Attrs, module: m}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, &Param{Name: p.Name, Ty: p.Ty, Parent: nf, Index: p.Index})
	}
	m.Funcs = append(m.Funcs, nf)
	fmap := map[*Func]*Func{f: nf}
	cloneFuncInto(f, nf, fmap, nil)
	// Self-recursive calls should target the clone; other callees unchanged.
	return nf
}

func cloneFuncInto(f, nf *Func, fmap map[*Func]*Func, gmap map[*Global]*Global) {
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := nf.NewBlock(b.Name)
		bmap[b] = nb
	}
	imap := make(map[*Instr]*Instr)
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Ty: in.Ty, Name: in.Name, Pred: in.Pred,
				AllocTy: in.AllocTy, BranchWeight: in.BranchWeight,
				Cases: append([]int64(nil), in.Cases...),
			}
			if in.Callee != nil {
				if nc, ok := fmap[in.Callee]; ok {
					ni.Callee = nc
				} else {
					ni.Callee = in.Callee
				}
			}
			for _, t := range in.Blocks {
				ni.Blocks = append(ni.Blocks, bmap[t])
			}
			ni.Args = make([]Value, len(in.Args))
			imap[in] = ni
			nb.Append(ni)
		}
	}
	// Second sweep: remap operands now that every instruction exists.
	remap := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			if ni, ok := imap[x]; ok {
				return ni
			}
			return &Undef{Ty: x.Ty}
		case *Param:
			if x.Parent == f {
				return nf.Params[x.Index]
			}
			return x
		case *Global:
			if gmap != nil {
				if ng, ok := gmap[x]; ok {
					return ng
				}
			}
			return x
		default:
			return v
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			for i, a := range in.Args {
				ni.Args[i] = remap(a)
			}
		}
	}
}
