package ir

import "fmt"

// FuncAttrs carries the interprocedural attributes the -functionattrs pass
// derives and that enabling passes (licm, early-cse, gvn) consume.
type FuncAttrs struct {
	ReadOnly bool // does not write memory
	ReadNone bool // does not read or write memory (pure)
	NoTrap   bool // free of potentially trapping operations (speculatable)
	NoInline bool // inliner must skip this function
	Stripped bool // -strip has removed local value names
}

// Func is a function: an ordered list of basic blocks, the first of which is
// the entry block.
type Func struct {
	Name   string
	Params []*Param
	Ret    *Type
	Blocks []*Block
	Attrs  FuncAttrs

	module *Module
	nextID int
}

// Module returns the containing module.
func (f *Func) Module() *Module { return f.module }

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a fresh block with the given name.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddBlockAfter inserts block nb immediately after pos in the block list.
func (f *Func) AddBlockAfter(nb *Block, pos *Block) {
	nb.parent = f
	for i, b := range f.Blocks {
		if b == pos {
			f.Blocks = append(f.Blocks, nil)
			copy(f.Blocks[i+2:], f.Blocks[i+1:])
			f.Blocks[i+1] = nb
			return
		}
	}
	f.Blocks = append(f.Blocks, nb)
}

// RemoveBlock detaches b from the function, dropping phi entries in
// successors that referenced it.
func (f *Func) RemoveBlock(b *Block) {
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			phi.RemovePhiIncoming(b)
		}
	}
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// Renumber assigns stable sequential ids to all instructions, used for
// printing and value-numbering.
func (f *Func) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.id = id
			id++
		}
	}
	f.nextID = id
}

// NumInstrs counts the instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInstr invokes fn for every instruction in block order.
func (f *Func) ForEachInstr(fn func(*Block, *Instr)) {
	for _, b := range f.Blocks {
		// Copy: fn may mutate the instruction list.
		instrs := append([]*Instr(nil), b.Instrs...)
		for _, in := range instrs {
			fn(b, in)
		}
	}
}

// ReplaceAllUses rewrites every operand use of old with new across the
// function.
func (f *Func) ReplaceAllUses(old, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ReplaceUses(old, new)
		}
	}
}

// UseCount returns the number of operand slots referencing v.
func (f *Func) UseCount(v Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					n++
				}
			}
		}
	}
	return n
}

// Uses returns every instruction referencing v as an operand.
func (f *Func) Uses(v Value) []*Instr {
	var uses []*Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					uses = append(uses, in)
					break
				}
			}
		}
	}
	return uses
}

// ReachableBlocks returns the set of blocks reachable from entry.
func (f *Func) ReachableBlocks() map[*Block]bool {
	reach := make(map[*Block]bool, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return reach
	}
	stack := []*Block{f.Entry()}
	reach[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// Module is a set of functions and globals; the unit the pass manager and
// the HLS backend operate on.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	// cow tracks copy-on-write state for modules created by CloneCOW: which
	// functions are still borrowed from the parent module (and must not be
	// mutated), and which parent functions have been replaced by owned
	// clones. nil on wholly-owned modules.
	cow *cowState
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// NewFunc appends a function with the given signature.
func (m *Module) NewFunc(name string, ret *Type, params ...*Type) *Func {
	f := &Func{Name: name, Ret: ret, module: m}
	for i, pt := range params {
		f.Params = append(f.Params, &Param{Name: fmt.Sprintf("arg%d", i), Ty: pt, Parent: f, Index: i})
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NewGlobal appends a global with initializer data.
func (m *Module) NewGlobal(name string, elem *Type, init []int64, readonly bool) *Global {
	g := &Global{Name: name, Elem: elem, Init: init, ReadOnly: readonly}
	m.Globals = append(m.Globals, g)
	return g
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// RemoveFunc detaches function f from the module.
func (m *Module) RemoveFunc(f *Func) {
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// RemoveGlobal detaches global g from the module.
func (m *Module) RemoveGlobal(g *Global) {
	for i, x := range m.Globals {
		if x == g {
			m.Globals = append(m.Globals[:i], m.Globals[i+1:]...)
			return
		}
	}
}

// NumInstrs counts instructions across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// PrependBlock inserts b as the new entry block and adopts it into f.
func (f *Func) PrependBlock(b *Block) {
	b.parent = f
	f.Blocks = append([]*Block{b}, f.Blocks...)
}
