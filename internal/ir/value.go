package ir

import "fmt"

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, and instructions themselves.
type Value interface {
	// Type returns the value's type.
	Type() *Type
	// Ref renders the operand reference form (e.g. "%v3", "42", "@tab").
	Ref() string
}

// Const is an integer constant of a particular type.
type Const struct {
	Ty  *Type
	Val int64
}

// ConstInt returns a constant of the given integer type, truncated to the
// type's width.
func ConstInt(ty *Type, v int64) *Const { return &Const{Ty: ty, Val: ty.TruncVal(v)} }

// Type implements Value.
func (c *Const) Type() *Type { return c.Ty }

// Ref implements Value.
func (c *Const) Ref() string { return fmt.Sprintf("%d", c.Val) }

// IsConst reports whether v is an integer constant, returning its value.
func IsConst(v Value) (int64, bool) {
	c, ok := v.(*Const)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

// IsConstVal reports whether v is the integer constant k.
func IsConstVal(v Value, k int64) bool {
	c, ok := IsConst(v)
	return ok && c == k
}

// Param is a formal function parameter.
type Param struct {
	Name   string
	Ty     *Type
	Parent *Func
	Index  int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Ty }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Name }

// Global is a module-level array (or scalar) with optional constant
// initializer data. Its value is the address of the storage, so its type is
// a pointer to Elem.
type Global struct {
	Name     string
	Elem     *Type   // the allocated type (array or scalar int)
	Init     []int64 // initial element values (len 1 for scalar); nil = zero
	ReadOnly bool    // constant data (enables globalopt folding)
}

// Type implements Value; a global evaluates to the address of its storage.
// Array globals decay to a pointer to their element type, exactly like
// array allocas (the GEP/load/store type discipline is element-wise).
func (g *Global) Type() *Type {
	if g.Elem.Kind == ArrayKind {
		return PointerTo(g.Elem.Elem)
	}
	return PointerTo(g.Elem)
}

// Ref implements Value.
func (g *Global) Ref() string { return "@" + g.Name }

// NumElems returns the number of scalar cells the global occupies.
func (g *Global) NumElems() int {
	if g.Elem.Kind == ArrayKind {
		return g.Elem.Len
	}
	return 1
}

// Undef is an undefined value of a given type, produced e.g. when deleting
// instructions whose results are still (dead-)referenced, mirroring LLVM's
// undef.
type Undef struct{ Ty *Type }

// Type implements Value.
func (u *Undef) Type() *Type { return u.Ty }

// Ref implements Value.
func (u *Undef) Ref() string { return "undef" }
