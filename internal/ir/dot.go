package ir

import (
	"fmt"
	"strings"
)

// DotCFG renders the function's control-flow graph in GraphViz dot syntax,
// annotating each block with its instruction count and loop headers with a
// double border — the standard compiler-debugging visualization.
func DotCFG(f *Func) string {
	dt := NewDomTree(f)
	loops := FindLoops(f, dt)
	isHeader := make(map[*Block]bool)
	depth := make(map[*Block]int)
	for _, l := range loops {
		isHeader[l.Header] = true
		for _, b := range l.Body {
			if l.Depth > depth[b] {
				depth[b] = l.Depth
			}
		}
	}
	labels := labelsOf(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", f.Name)
	for _, b := range f.Blocks {
		attrs := fmt.Sprintf("label=\"%s\\n%d instrs\"", labels[b], len(b.Instrs))
		if isHeader[b] {
			attrs += ", peripheries=2"
		}
		if d := depth[b]; d > 0 {
			attrs += fmt.Sprintf(", style=filled, fillcolor=\"gray%d\"", 95-8*min(d, 5))
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", labels[b], attrs)
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i, s := range t.Targets() {
			edge := ""
			if t.IsConditionalBr() {
				if i == 0 {
					edge = " [label=\"T\"]"
				} else {
					edge = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", labels[b], labels[s], edge)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
