package ir

import (
	"strings"
	"testing"
)

func TestParseRoundTripDiamond(t *testing.T) {
	m, _ := diamond()
	s1 := m.String()
	m2, err := Parse(s1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("parsed module fails verify: %v", err)
	}
	s2 := m2.String()
	if s1 != s2 {
		t.Fatalf("round trip not stable:\n--- printed\n%s\n--- reparsed\n%s", s1, s2)
	}
}

func TestParseRoundTripLoop(t *testing.T) {
	m, _ := buildLoop()
	s1 := m.String()
	m2, err := Parse(s1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s2 := m2.String(); s1 != s2 {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", s1, s2)
	}
}

func TestParseGlobalsAndCalls(t *testing.T) {
	src := `; module gtest
@tab = constant [4 x i32] [10 20 30 40]
@cell = global i32 [7]
define i32 @helper(i32 %x) readnone notrap {
entry:
  %0 = mul i32 %x, %x
  ret i32 %0
}

define i32 @main() {
entry:
  %p = getelementptr i32* @tab, 2
  %v = load i32, i32* %p
  %h = call i32 @helper(%v)
  print(%h)
  ret i32 %h
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	g := m.Global("tab")
	if g == nil || !g.ReadOnly || g.NumElems() != 4 || g.Init[2] != 30 {
		t.Fatalf("global tab wrong: %+v", g)
	}
	h := m.Func("helper")
	if h == nil || !h.Attrs.ReadNone || !h.Attrs.NoTrap {
		t.Fatal("helper attrs lost")
	}
	// Reparse of the print must be stable too.
	s := m.String()
	m2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.String() != s {
		t.Fatal("second round trip unstable")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"define i32 @f() {\nentry:\n  %x = frobnicate i32 1, 2\n}",
		"define i32 @f() {\nentry:\n  br label %nosuch\n}",
		"define i32 @f() {\nentry:\n  %x = add i32 %missing, 1\n  ret i32 %x\n}",
		"@g = wobble i32 [1]",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted garbage:\n%s", src)
		}
	}
}

func TestParsePhiAndSwitch(t *testing.T) {
	src := `define i32 @main() {
entry:
  switch i32 2, label %def [1: label %a, 2: label %b]

a:
  br label %join

b:
  br label %join

def:
  br label %join

join:
  %x = phi i32 [ 10, %a ], [ 20, %b ], [ 30, %def ]
  ret i32 %x
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(m.String(), "switch i32 2") {
		t.Fatal("switch lost")
	}
	s := m.String()
	m2, err := Parse(s)
	if err != nil || m2.String() != s {
		t.Fatalf("round trip unstable: %v", err)
	}
}
