package ir

// Loop is a natural loop discovered from a back edge: Header dominates every
// block in Body, and Latches branch back to Header.
type Loop struct {
	Header  *Block
	Body    []*Block // includes Header
	Latches []*Block // blocks with an edge Body -> Header
	Parent  *Loop    // enclosing loop, if any
	Depth   int      // nesting depth, 1 = outermost
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *Block) bool {
	for _, x := range l.Body {
		if x == b {
			return true
		}
	}
	return false
}

// Exits returns the blocks outside the loop that are branched to from
// inside it.
func (l *Loop) Exits() []*Block {
	var exits []*Block
	seen := make(map[*Block]bool)
	for _, b := range l.Body {
		for _, s := range b.Succs() {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

// ExitingBlocks returns the in-loop blocks with an edge leaving the loop.
func (l *Loop) ExitingBlocks() []*Block {
	var ex []*Block
	for _, b := range l.Body {
		for _, s := range b.Succs() {
			if !l.Contains(s) {
				ex = append(ex, b)
				break
			}
		}
	}
	return ex
}

// Preheader returns the unique out-of-loop predecessor of the header whose
// only successor is the header, or nil if the loop has not been simplified.
func (l *Loop) Preheader() *Block {
	var outside []*Block
	for _, p := range l.Header.Preds() {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		return nil
	}
	p := outside[0]
	if len(p.Succs()) != 1 {
		return nil
	}
	return p
}

// SingleLatch returns the latch when the loop has exactly one, else nil.
func (l *Loop) SingleLatch() *Block {
	if len(l.Latches) == 1 {
		return l.Latches[0]
	}
	return nil
}

// FindLoops discovers the natural loops of f using dominator-based back-edge
// detection, merging loops that share a header and linking nesting parents.
// Loops are returned innermost-last within each nest, outermost headers in
// block order.
func FindLoops(f *Func, dt *DomTree) []*Loop {
	byHeader := make(map[*Block]*Loop)
	var headers []*Block
	for _, b := range dt.RPO() {
		for _, s := range b.Succs() {
			if dt.Dominates(s, b) {
				// Back edge b -> s.
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{Header: s}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.Latches = append(l.Latches, b)
			}
		}
	}
	// Populate bodies: reverse reachability from latches without passing
	// through the header.
	for _, h := range headers {
		l := byHeader[h]
		inBody := map[*Block]bool{h: true}
		var stack []*Block
		for _, latch := range l.Latches {
			if !inBody[latch] {
				inBody[latch] = true
				stack = append(stack, latch)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds() {
				if !inBody[p] {
					inBody[p] = true
					stack = append(stack, p)
				}
			}
		}
		// Keep function block order for determinism.
		for _, b := range f.Blocks {
			if inBody[b] {
				l.Body = append(l.Body, b)
			}
		}
	}
	// Nesting: loop A is nested in B if B != A and B contains A's header.
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	for _, l := range loops {
		var best *Loop
		for _, o := range loops {
			if o == l || !o.Contains(l.Header) {
				continue
			}
			if best == nil || len(o.Body) < len(best.Body) {
				best = o
			}
		}
		l.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// CriticalEdges returns the critical edges of f: edges whose source has
// multiple successors and whose destination has multiple predecessor edges.
func CriticalEdges(f *Func) [][2]*Block {
	var edges [][2]*Block
	for _, b := range f.Blocks {
		succs := b.Succs()
		if len(succs) < 2 {
			continue
		}
		for _, s := range succs {
			if s.NumPredEdges() > 1 {
				edges = append(edges, [2]*Block{b, s})
			}
		}
	}
	return edges
}

// SplitEdge inserts a fresh block on the edge from -> to, rewriting the
// branch target and any phis in to. It returns the new block.
func SplitEdge(f *Func, from, to *Block, name string) *Block {
	nb := &Block{Name: name, parent: f}
	f.AddBlockAfter(nb, from)
	nb.Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{to}})
	from.Term().ReplaceTarget(to, nb)
	for _, phi := range to.Phis() {
		for i, pb := range phi.Blocks {
			if pb == from {
				phi.Blocks[i] = nb
			}
		}
	}
	return nb
}
