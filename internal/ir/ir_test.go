package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeBasics(t *testing.T) {
	if I32.String() != "i32" || !I32.IsInt() || I32.IsPtr() {
		t.Fatal("i32 type misbehaves")
	}
	p := PointerTo(I32)
	if !p.IsPtr() || p.String() != "i32*" || !p.Elem.Equal(I32) {
		t.Fatal("pointer type misbehaves")
	}
	a := ArrayOf(I16, 8)
	if a.String() != "[8 x i16]" || a.Len != 8 {
		t.Fatal("array type misbehaves")
	}
	if !ArrayOf(I16, 8).Equal(a) || ArrayOf(I16, 9).Equal(a) {
		t.Fatal("structural equality broken")
	}
	if IntType(32) != I32 || IntType(1) != I1 {
		t.Fatal("interning broken")
	}
}

func TestTruncVal(t *testing.T) {
	cases := []struct {
		ty   *Type
		in   int64
		want int64
	}{
		{I8, 255, -1},
		{I8, 128, -128},
		{I8, 127, 127},
		{I16, 1 << 20, 0},
		{I32, 1 << 31, -(1 << 31)},
		{I1, 3, -1}, // i1: bit set => -1 in two's complement
		{I64, -5, -5},
	}
	for _, c := range cases {
		if got := c.ty.TruncVal(c.in); got != c.want {
			t.Errorf("TruncVal(%s, %d) = %d, want %d", c.ty, c.in, got, c.want)
		}
	}
}

// TestEvalBinaryMatchesInt32 checks the shared evaluation rule against Go's
// native int32 arithmetic for every wrapping operator.
func TestEvalBinaryMatchesInt32(t *testing.T) {
	f := func(a, b int32) bool {
		av, bv := int64(a), int64(b)
		if EvalBinary(OpAdd, I32, av, bv) != int64(a+b) {
			return false
		}
		if EvalBinary(OpSub, I32, av, bv) != int64(a-b) {
			return false
		}
		if EvalBinary(OpMul, I32, av, bv) != int64(a*b) {
			return false
		}
		if EvalBinary(OpAnd, I32, av, bv) != int64(a&b) {
			return false
		}
		if EvalBinary(OpOr, I32, av, bv) != int64(a|b) {
			return false
		}
		if EvalBinary(OpXor, I32, av, bv) != int64(a^b) {
			return false
		}
		sh := uint(b) % 32
		if EvalBinary(OpShl, I32, av, bv) != int64(a<<sh) {
			return false
		}
		if EvalBinary(OpLShr, I32, av, bv) != int64(int32(uint32(a)>>sh)) {
			return false
		}
		if EvalBinary(OpAShr, I32, av, bv) != int64(a>>sh) {
			return false
		}
		if b != 0 && !(a == -1<<31 && b == -1) {
			if EvalBinary(OpSDiv, I32, av, bv) != int64(a/b) {
				return false
			}
			if EvalBinary(OpSRem, I32, av, bv) != int64(a%b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	for p := CmpEQ; p <= CmpUGE; p++ {
		inv := p.Invert()
		sw := p.Swap()
		for _, ab := range [][2]int64{{1, 2}, {2, 1}, {3, 3}, {-1, 1}, {-5, -5}} {
			a, b := ab[0], ab[1]
			if p.Eval(a, b, 32) == inv.Eval(a, b, 32) {
				t.Fatalf("%v invert broken for (%d,%d)", p, a, b)
			}
			if p.Eval(a, b, 32) != sw.Eval(b, a, 32) {
				t.Fatalf("%v swap broken for (%d,%d)", p, a, b)
			}
		}
	}
	// Unsigned predicates compare bit patterns.
	if !CmpULT.Eval(1, -1, 32) {
		t.Fatal("1 should be ULT 0xffffffff")
	}
	if CmpULT.Eval(-1, 1, 32) {
		t.Fatal("0xffffffff is not ULT 1")
	}
}

// diamond builds:  entry -> (then|else) -> join -> ret phi
func diamond() (*Module, *Func) {
	m := NewModule("test")
	f := m.NewFunc("main", I32, I32)
	b := NewBuilder()
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	join := f.NewBlock("join")

	b.SetInsert(entry)
	cond := b.ICmp(CmpSGT, f.Params[0], ConstInt(I32, 0))
	b.CondBr(cond, thenB, elseB)

	b.SetInsert(thenB)
	tv := b.Add(f.Params[0], ConstInt(I32, 1))
	b.Br(join)

	b.SetInsert(elseB)
	ev := b.Sub(f.Params[0], ConstInt(I32, 1))
	b.Br(join)

	b.SetInsert(join)
	phi := b.Phi(I32)
	phi.SetPhiIncoming(thenB, tv)
	phi.SetPhiIncoming(elseB, ev)
	b.Ret(phi)
	return m, f
}

func TestDominators(t *testing.T) {
	_, f := diamond()
	dt := NewDomTree(f)
	entry, thenB, elseB, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if !dt.Dominates(entry, join) || !dt.Dominates(entry, thenB) {
		t.Fatal("entry must dominate everything")
	}
	if dt.Dominates(thenB, join) || dt.Dominates(elseB, join) {
		t.Fatal("branch arms must not dominate the join")
	}
	if dt.IDom(join) != entry {
		t.Fatalf("idom(join) = %v, want entry", blockLabel(dt.IDom(join)))
	}
	df := dt.Frontier()
	foundJoin := false
	for _, fb := range df[thenB] {
		if fb == join {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatal("join must be in then's dominance frontier")
	}
}

func buildLoop() (*Module, *Func) {
	m := NewModule("loop")
	f := m.NewFunc("main", I32)
	b := NewBuilder()
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b.SetInsert(entry)
	b.Br(header)

	b.SetInsert(header)
	iv := b.Phi(I32)
	cond := b.ICmp(CmpSLT, iv, ConstInt(I32, 10))
	b.CondBr(cond, body, exit)

	b.SetInsert(body)
	next := b.Add(iv, ConstInt(I32, 1))
	b.Br(header)

	iv.SetPhiIncoming(entry, ConstInt(I32, 0))
	iv.SetPhiIncoming(body, next)

	b.SetInsert(exit)
	b.Ret(iv)
	return m, f
}

func TestLoopDetection(t *testing.T) {
	m, f := buildLoop()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	dt := NewDomTree(f)
	loops := FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "header" {
		t.Fatalf("header = %s", l.Header.Name)
	}
	if len(l.Body) != 2 { // header + body
		t.Fatalf("body size %d", len(l.Body))
	}
	if ph := l.Preheader(); ph == nil || ph.Name != "entry" {
		t.Fatal("preheader should be entry")
	}
	if lt := l.SingleLatch(); lt == nil || lt.Name != "body" {
		t.Fatal("latch should be body")
	}
	if ex := l.Exits(); len(ex) != 1 || ex[0].Name != "exit" {
		t.Fatalf("exits: %v", ex)
	}
}

func TestCriticalEdges(t *testing.T) {
	_, f := buildLoop()
	// header -> exit is critical only if exit has multiple pred edges; here
	// exit has one pred, so no critical edges exist.
	if ce := CriticalEdges(f); len(ce) != 0 {
		t.Fatalf("unexpected critical edges: %d", len(ce))
	}
	// Make one: body conditionally branches to header or exit.
	body := f.Blocks[2]
	exit := f.Blocks[3]
	header := f.Blocks[1]
	body.Remove(body.Term())
	b := NewBuilder()
	b.SetInsert(body)
	c := b.ICmp(CmpEQ, ConstInt(I32, 0), ConstInt(I32, 0))
	b.CondBr(c, header, exit)
	ce := CriticalEdges(f)
	// header->exit, body->header and body->exit are all now critical.
	if len(ce) != 3 {
		t.Fatalf("critical edges = %d, want 3", len(ce))
	}
	n := len(f.Blocks)
	SplitEdge(f, ce[0][0], ce[0][1], "split")
	if len(f.Blocks) != n+1 {
		t.Fatal("SplitEdge did not insert a block")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after split: %v", err)
	}
}

func TestVerifierCatchesBrokenIR(t *testing.T) {
	// Unterminated block.
	m := NewModule("bad")
	f := m.NewFunc("main", I32)
	f.NewBlock("entry")
	if err := m.Verify(); err == nil {
		t.Fatal("verifier accepted empty block")
	}
	// Phi with wrong preds.
	m2, f2 := diamond()
	phi := f2.Blocks[3].Phis()[0]
	phi.RemovePhiIncoming(f2.Blocks[1])
	if err := m2.Verify(); err == nil {
		t.Fatal("verifier accepted phi missing an incoming")
	}
	// Use does not dominate.
	m3, f3 := diamond()
	thenVal := f3.Blocks[1].Instrs[0]
	ret := f3.Blocks[3].Term()
	ret.Args[0] = thenVal
	if err := m3.Verify(); err == nil || !strings.Contains(err.Error(), "dominance") {
		t.Fatalf("verifier accepted dominance violation: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := buildLoop()
	c := m.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	if m.String() != c.String() {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	cf := c.Func("main")
	cf.Blocks[2].Remove(cf.Blocks[2].Instrs[0])
	if m.String() == c.String() {
		t.Fatal("clone shares structure with original")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestUseTracking(t *testing.T) {
	_, f := diamond()
	p0 := f.Params[0]
	if n := f.UseCount(p0); n != 3 {
		t.Fatalf("param used %d times, want 3", n)
	}
	uses := f.Uses(p0)
	if len(uses) != 3 {
		t.Fatalf("Uses returned %d", len(uses))
	}
	f.ReplaceAllUses(p0, ConstInt(I32, 7))
	if n := f.UseCount(p0); n != 0 {
		t.Fatalf("after replace, %d uses remain", n)
	}
}

func TestFoldInstr(t *testing.T) {
	add := &Instr{Op: OpAdd, Ty: I32, Args: []Value{ConstInt(I32, 3), ConstInt(I32, 4)}}
	if c, ok := FoldInstr(add); !ok || c.Val != 7 {
		t.Fatal("add fold failed")
	}
	div := &Instr{Op: OpSDiv, Ty: I32, Args: []Value{ConstInt(I32, 3), ConstInt(I32, 0)}}
	if _, ok := FoldInstr(div); ok {
		t.Fatal("folded a trapping division")
	}
	cmp := &Instr{Op: OpICmp, Ty: I1, Pred: CmpSLT, Args: []Value{ConstInt(I32, -1), ConstInt(I32, 1)}}
	if c, ok := FoldInstr(cmp); !ok || c.Val == 0 {
		// i1 true is the non-zero 1-bit pattern (-1 in two's complement).
		t.Fatal("icmp fold failed")
	}
	sel := &Instr{Op: OpSelect, Ty: I32, Args: []Value{ConstInt(I1, 0), ConstInt(I32, 5), ConstInt(I32, 9)}}
	if c, ok := FoldInstr(sel); !ok || c.Val != 9 {
		t.Fatal("select fold failed")
	}
	zext := &Instr{Op: OpZExt, Ty: I32, Args: []Value{ConstInt(I8, -1)}}
	if c, ok := FoldInstr(zext); !ok || c.Val != 255 {
		t.Fatalf("zext fold: %v", zext)
	}
}

func TestPrinterRoundable(t *testing.T) {
	m, _ := diamond()
	s := m.String()
	for _, want := range []string{"define i32 @main", "icmp sgt", "phi i32", "ret i32"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestDotCFG(t *testing.T) {
	_, f := buildLoop()
	dot := DotCFG(f)
	for _, want := range []string{"digraph", "header", "peripheries=2", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Conditional edges labelled.
	if !strings.Contains(dot, `label="T"`) || !strings.Contains(dot, `label="F"`) {
		t.Fatal("conditional edges unlabelled")
	}
}
