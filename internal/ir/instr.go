package ir

import "fmt"

// Op enumerates the instruction opcodes. The set mirrors the LLVM subset
// that the paper's feature extractor (Table 2) counts.
type Op uint8

// Instruction opcodes.
const (
	// Binary integer arithmetic.
	OpAdd Op = iota
	OpSub
	OpMul
	OpSDiv
	OpSRem
	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	// Comparison and selection.
	OpICmp
	OpSelect
	OpPhi
	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP
	OpMemset // loop-idiom intrinsic: memset(ptr, val, len)
	// Casts.
	OpTrunc
	OpZExt
	OpSExt
	OpBitCast
	// Calls and terminators.
	OpCall
	OpPrint // observable output intrinsic (used for semantic equivalence)
	OpRet
	OpBr
	OpSwitch
	OpUnreachable
	numOps
)

var opNames = [numOps]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr", OpICmp: "icmp", OpSelect: "select", OpPhi: "phi",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpMemset: "memset", OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpBitCast: "bitcast", OpCall: "call", OpPrint: "print", OpRet: "ret",
	OpBr: "br", OpSwitch: "switch", OpUnreachable: "unreachable",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether the op is a two-operand integer operation.
func (o Op) IsBinary() bool { return o <= OpAShr }

// IsCommutative reports whether the binary op commutes.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// IsAssociative reports whether the binary op associates (used by
// -reassociate).
func (o Op) IsAssociative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// IsCast reports whether the op is a cast.
func (o Op) IsCast() bool {
	switch o {
	case OpTrunc, OpZExt, OpSExt, OpBitCast:
		return true
	}
	return false
}

// IsTerminator reports whether the op terminates a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpRet, OpBr, OpSwitch, OpUnreachable:
		return true
	}
	return false
}

// CmpPred is an icmp predicate.
type CmpPred uint8

// Signed/unsigned comparison predicates (unsigned ones compare the
// zero-extended bit patterns, as in LLVM).
const (
	CmpEQ CmpPred = iota
	CmpNE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
)

var predNames = []string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}

// String returns the predicate mnemonic.
func (p CmpPred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "?"
}

// Invert returns the logical negation of the predicate.
func (p CmpPred) Invert() CmpPred {
	switch p {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpSLT:
		return CmpSGE
	case CmpSLE:
		return CmpSGT
	case CmpSGT:
		return CmpSLE
	case CmpSGE:
		return CmpSLT
	case CmpULT:
		return CmpUGE
	case CmpULE:
		return CmpUGT
	case CmpUGT:
		return CmpULE
	case CmpUGE:
		return CmpULT
	}
	return p
}

// Swap returns the predicate with operand order reversed (a p b == b Swap(p) a).
func (p CmpPred) Swap() CmpPred {
	switch p {
	case CmpSLT:
		return CmpSGT
	case CmpSLE:
		return CmpSGE
	case CmpSGT:
		return CmpSLT
	case CmpSGE:
		return CmpSLE
	case CmpULT:
		return CmpUGT
	case CmpULE:
		return CmpUGE
	case CmpUGT:
		return CmpULT
	case CmpUGE:
		return CmpULE
	}
	return p
}

// Eval evaluates the predicate over two (sign-extended) integers of the
// given width.
func (p CmpPred) Eval(a, b int64, bits int) bool {
	mask := ^uint64(0)
	if bits < 64 {
		mask = (uint64(1) << uint(bits)) - 1
	}
	ua, ub := uint64(a)&mask, uint64(b)&mask
	switch p {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpSLT:
		return a < b
	case CmpSLE:
		return a <= b
	case CmpSGT:
		return a > b
	case CmpSGE:
		return a >= b
	case CmpULT:
		return ua < ub
	case CmpULE:
		return ua <= ub
	case CmpUGT:
		return ua > ub
	case CmpUGE:
		return ua >= ub
	}
	return false
}

// Instr is a single IR instruction. Operand layout by opcode:
//
//	binary ops:  Args = [lhs, rhs]
//	icmp:        Args = [lhs, rhs], Pred set; result type i1
//	select:      Args = [cond, tval, fval]
//	phi:         Args = incoming values, Blocks = incoming blocks (parallel)
//	alloca:      AllocTy set; result is pointer to AllocTy
//	load:        Args = [ptr]
//	store:       Args = [val, ptr]
//	gep:         Args = [base, index]; result has base's pointer type
//	memset:      Args = [ptr, val, len]
//	casts:       Args = [v]; Ty is destination type
//	call:        Args = actual arguments, Callee set
//	print:       Args = [v]
//	ret:         Args = [v] or empty
//	br:          unconditional: Blocks = [dest]; conditional: Args = [cond], Blocks = [then, else]
//	switch:      Args = [v], Blocks = [default, case0, ...], Cases = [v0, ...]
type Instr struct {
	Op      Op
	Ty      *Type // result type; Void for non-value instructions
	Name    string
	Args    []Value
	Pred    CmpPred
	Callee  *Func
	Blocks  []*Block
	Cases   []int64
	AllocTy *Type
	// BranchWeight is -lower-expect metadata: >0 means the true edge of a
	// conditional branch is expected (stripped by the lower-expect pass).
	BranchWeight int

	parent *Block
	id     int // stable per-function numbering assigned by Func.renumber
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ref implements Value.
func (in *Instr) Ref() string {
	if in.Name != "" {
		return "%" + in.Name
	}
	// Unnamed values print as pure numeric locals (LLVM style), which can
	// never collide with user-provided identifiers.
	return fmt.Sprintf("%%%d", in.id)
}

// Parent returns the containing basic block (nil if detached).
func (in *Instr) Parent() *Block { return in.parent }

// IsTerminator reports whether the instruction terminates its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// IsConditionalBr reports whether the instruction is a conditional branch.
func (in *Instr) IsConditionalBr() bool { return in.Op == OpBr && len(in.Blocks) == 2 }

// HasSideEffects reports whether removing the instruction (when its result
// is unused) could change observable behaviour.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStore, OpMemset, OpPrint, OpRet, OpBr, OpSwitch, OpUnreachable:
		return true
	case OpSDiv, OpSRem:
		// Division can trap on zero; keep unless the divisor is a non-zero
		// constant.
		if c, ok := IsConst(in.Args[1]); ok && c != 0 {
			return false
		}
		return true
	case OpCall:
		if in.Callee != nil && in.Callee.Attrs.ReadNone {
			return false
		}
		return true
	case OpLoad:
		// Loads are removable when dead: our IR has no volatile loads.
		return false
	}
	return false
}

// Targets returns the successor blocks of a terminator (nil otherwise).
func (in *Instr) Targets() []*Block {
	if !in.IsTerminator() {
		return nil
	}
	return in.Blocks
}

// ReplaceTarget rewrites every successor edge from old to new.
func (in *Instr) ReplaceTarget(old, new *Block) {
	for i, b := range in.Blocks {
		if b == old {
			in.Blocks[i] = new
		}
	}
}

// PhiIncoming returns the incoming value for predecessor pred of a phi.
func (in *Instr) PhiIncoming(pred *Block) (Value, bool) {
	for i, b := range in.Blocks {
		if b == pred {
			return in.Args[i], true
		}
	}
	return nil, false
}

// SetPhiIncoming sets (or adds) the incoming value for predecessor pred.
func (in *Instr) SetPhiIncoming(pred *Block, v Value) {
	for i, b := range in.Blocks {
		if b == pred {
			in.Args[i] = v
			return
		}
	}
	in.Blocks = append(in.Blocks, pred)
	in.Args = append(in.Args, v)
}

// RemovePhiIncoming deletes the incoming entry for pred, if present.
func (in *Instr) RemovePhiIncoming(pred *Block) {
	for i, b := range in.Blocks {
		if b == pred {
			in.Blocks = append(in.Blocks[:i], in.Blocks[i+1:]...)
			in.Args = append(in.Args[:i], in.Args[i+1:]...)
			return
		}
	}
}

// ReplaceUses rewrites every operand equal to old with new.
func (in *Instr) ReplaceUses(old, new Value) {
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
		}
	}
}
