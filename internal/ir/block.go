package ir

// Block is a basic block: a straight-line instruction sequence ending in
// exactly one terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	parent *Func
}

// Parent returns the containing function.
func (b *Block) Parent() *Func { return b.parent }

// Term returns the block terminator, or nil if the block is unterminated
// (only legal mid-construction).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets()
}

// Preds returns the predecessor blocks, in function block order.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, p := range b.parent.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				preds = append(preds, p)
				break
			}
		}
	}
	return preds
}

// NumPredEdges counts incoming CFG edges (a predecessor with two edges to b,
// e.g. a conditional branch with both targets b, counts twice).
func (b *Block) NumPredEdges() int {
	n := 0
	for _, p := range b.parent.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				n++
			}
		}
	}
	return n
}

// Append adds an instruction at the end of the block and claims ownership.
func (b *Block) Append(in *Instr) *Instr {
	in.parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in immediately before pos (which must be in b).
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	for i, x := range b.Instrs {
		if x == pos {
			in.parent = b
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			return
		}
	}
	b.Append(in)
}

// InsertBeforeTerm inserts in just before the terminator (or appends when
// the block is unterminated).
func (b *Block) InsertBeforeTerm(in *Instr) {
	if t := b.Term(); t != nil {
		b.InsertBefore(in, t)
		return
	}
	b.Append(in)
}

// Remove detaches instruction in from the block.
func (b *Block) Remove(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.parent = nil
			return
		}
	}
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// FirstNonPhi returns the first non-phi instruction (nil for an empty block).
func (b *Block) FirstNonPhi() *Instr {
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			return in
		}
	}
	return nil
}

// Index returns b's position in the parent function's block list, or -1.
func (b *Block) Index() int {
	for i, x := range b.parent.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}

// IsEmptyForward reports whether the block contains only an unconditional
// branch (a pure forwarding block).
func (b *Block) IsEmptyForward() bool {
	return len(b.Instrs) == 1 && b.Instrs[0].Op == OpBr && len(b.Instrs[0].Blocks) == 1
}

// Prepend inserts an instruction at the head of the block (used for phi
// insertion by SSA construction).
func (b *Block) Prepend(in *Instr) {
	in.parent = b
	b.Instrs = append([]*Instr{in}, b.Instrs...)
}
