package ir

// Copy-on-write module cloning. A CloneCOW module starts by borrowing every
// function and global from its parent; passes materialize (deep-copy) only
// the functions they actually rewrite, via RunOwned or Materialize. Borrowed
// functions must never be mutated — the parent is typically a published,
// immutable cache entry read concurrently by other compiles. Globals are
// borrowed forever: no pass mutates a *Global in place (they are only
// removed from, or referenced by, the module), which keeps global sharing
// free.
//
// The invariant a consumer (profiler, feature extractor, printer) needs is
// that no instruction reachable from the module references a function that
// was replaced in it. Owned functions are fixed up eagerly on every
// replacement; still-borrowed functions that call a replaced function are
// materialized by Seal, which pass pipelines run once at the end.

type cowState struct {
	shared map[*Func]bool  // borrowed from the parent; must not be mutated
	remap  map[*Func]*Func // parent function -> owned replacement
}

// CloneCOW returns a copy-on-write clone of m: a new module sharing every
// *Func and *Global with m. The parent must not be mutated afterwards (the
// compile cache's published-modules-are-immutable contract). Fingerprints of
// the clone and parent are equal until a pass changes the clone.
func (m *Module) CloneCOW() *Module {
	nm := &Module{
		Name:    m.Name,
		Funcs:   append([]*Func(nil), m.Funcs...),
		Globals: append([]*Global(nil), m.Globals...),
	}
	shared := make(map[*Func]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		shared[f] = true
	}
	nm.cow = &cowState{shared: shared}
	return nm
}

// IsShared reports whether f is still borrowed from the parent module and
// must not be mutated through m.
func (m *Module) IsShared(f *Func) bool { return m.cow != nil && m.cow.shared[f] }

// cowClone deep-copies the borrowed function f for m, rerouting calls
// through every replacement recorded so far (including f itself, so direct
// recursion targets the clone).
func (m *Module) cowClone(f *Func) *Func {
	nf := &Func{Name: f.Name, Ret: f.Ret, Attrs: f.Attrs, module: m}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, &Param{Name: p.Name, Ty: p.Ty, Parent: nf, Index: p.Index})
	}
	fmap := make(map[*Func]*Func, len(m.cow.remap)+1)
	for o, n := range m.cow.remap {
		fmap[o] = n
	}
	fmap[f] = nf
	cloneFuncInto(f, nf, fmap, nil)
	return nf
}

// install replaces borrowed old with owned nf in the function list, records
// the remapping, and reroutes calls to old inside every already-owned
// function (they may have been cloned before old was replaced).
func (m *Module) install(old, nf *Func) {
	for i, x := range m.Funcs {
		if x == old {
			m.Funcs[i] = nf
			break
		}
	}
	delete(m.cow.shared, old)
	if m.cow.remap == nil {
		m.cow.remap = make(map[*Func]*Func)
	}
	m.cow.remap[old] = nf
	for _, g := range m.Funcs {
		if g == nf || m.cow.shared[g] {
			continue
		}
		for _, b := range g.Blocks {
			for _, in := range b.Instrs {
				if in.Callee == old {
					in.Callee = nf
				}
			}
		}
	}
}

// Materialize ensures f is owned by m, deep-copying it if it is still
// borrowed, and returns the owned function (f itself when already owned).
func (m *Module) Materialize(f *Func) *Func {
	if !m.IsShared(f) {
		return f
	}
	nf := m.cowClone(f)
	m.install(f, nf)
	return nf
}

// MaterializeAll takes ownership of every function, after which the module
// behaves exactly like a deep clone (module passes that walk or rewrite
// arbitrary functions run on a fully materialized module).
func (m *Module) MaterializeAll() {
	if m.cow == nil {
		return
	}
	for _, f := range append([]*Func(nil), m.Funcs...) {
		m.Materialize(f)
	}
	m.cow = nil
}

// RunOwned applies fn to f with copy-on-write semantics: an owned f is
// transformed in place; a borrowed f is transformed on a scratch deep copy
// that is installed only when fn reports a change, leaving the parent
// untouched and the clone cost unpaid for no-op runs. fn must return true
// whenever it mutated the function (the pass changed-reporting contract).
func (m *Module) RunOwned(f *Func, fn func(*Func) bool) bool {
	if !m.IsShared(f) {
		return fn(f)
	}
	nf := m.cowClone(f)
	if !fn(nf) {
		return false
	}
	m.install(f, nf)
	return true
}

// Seal restores the no-dangling-callee invariant after a pass pipeline:
// every still-borrowed function that calls a replaced function is
// materialized (which reroutes the call), repeating until settled. Cheap
// when nothing was replaced. Idempotent.
func (m *Module) Seal() {
	if m.cow == nil || len(m.cow.remap) == 0 {
		return
	}
	for again := true; again; {
		again = false
		for _, f := range m.Funcs {
			if !m.cow.shared[f] || !m.refsReplaced(f) {
				continue
			}
			m.Materialize(f)
			again = true
		}
	}
}

// refsReplaced reports whether f calls a function that was replaced in m.
func (m *Module) refsReplaced(f *Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Callee == nil {
				continue
			}
			if _, ok := m.cow.remap[in.Callee]; ok {
				return true
			}
		}
	}
	return false
}
