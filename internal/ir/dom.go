package ir

// DomTree is a dominator tree over a function's reachable blocks, computed
// with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *Func
	order []*Block          // reverse postorder
	rpo   map[*Block]int    // block -> reverse postorder index
	idom  map[*Block]*Block // immediate dominators (entry maps to itself)
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *Func) *DomTree {
	dt := &DomTree{fn: f, rpo: make(map[*Block]int), idom: make(map[*Block]*Block)}
	if len(f.Blocks) == 0 {
		return dt
	}
	// Postorder DFS from entry.
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	// Reverse postorder.
	for i := len(post) - 1; i >= 0; i-- {
		dt.rpo[post[i]] = len(dt.order)
		dt.order = append(dt.order, post[i])
	}

	entry := f.Entry()
	dt.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range dt.order {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds() {
				if _, ok := dt.idom[p]; !ok {
					continue // not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = dt.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if dt.idom[b] != newIdom {
				dt.idom[b] = newIdom
				changed = true
			}
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for dt.rpo[a] > dt.rpo[b] {
			a = dt.idom[a]
		}
		for dt.rpo[b] > dt.rpo[a] {
			b = dt.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (nil for the entry block or
// unreachable blocks).
func (dt *DomTree) IDom(b *Block) *Block {
	d := dt.idom[b]
	if d == b {
		return nil
	}
	return d
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if _, ok := dt.idom[b]; !ok {
		return false // unreachable
	}
	for {
		if a == b {
			return true
		}
		next := dt.idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// StrictlyDominates reports whether a dominates b and a != b.
func (dt *DomTree) StrictlyDominates(a, b *Block) bool {
	return a != b && dt.Dominates(a, b)
}

// DominatesInstr reports whether the definition point of value v dominates
// instruction use at (ub, ui index). Constants, params, globals and undef
// dominate everything.
func (dt *DomTree) DominatesInstr(v Value, use *Instr) bool {
	def, ok := v.(*Instr)
	if !ok {
		return true
	}
	db, ub := def.Parent(), use.Parent()
	if db == nil || ub == nil {
		return false
	}
	if use.Op == OpPhi {
		// A phi use must dominate the end of the corresponding predecessor.
		for i, a := range use.Args {
			if a == v {
				pred := use.Blocks[i]
				if !dt.Dominates(db, pred) {
					return false
				}
				if db == pred && !instrPrecedesEnd(def, pred) {
					return false
				}
			}
		}
		return true
	}
	if db != ub {
		return dt.StrictlyDominates(db, ub)
	}
	// Same block: def must come before use.
	for _, in := range db.Instrs {
		if in == def {
			return true
		}
		if in == use {
			return false
		}
	}
	return false
}

func instrPrecedesEnd(def *Instr, b *Block) bool {
	for _, in := range b.Instrs {
		if in == def {
			return true
		}
	}
	return false
}

// Frontier computes the dominance frontier of every reachable block
// (Cooper–Harvey–Kennedy style), used by mem2reg's phi placement.
func (dt *DomTree) Frontier() map[*Block][]*Block {
	df := make(map[*Block][]*Block)
	add := func(b, f *Block) {
		for _, x := range df[b] {
			if x == f {
				return
			}
		}
		df[b] = append(df[b], f)
	}
	for _, b := range dt.order {
		preds := b.Preds()
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if _, ok := dt.idom[p]; !ok {
				continue
			}
			runner := p
			for runner != dt.idom[b] && runner != nil {
				add(runner, b)
				if runner == dt.idom[runner] {
					break
				}
				runner = dt.idom[runner]
			}
		}
	}
	return df
}

// RPO returns the reachable blocks in reverse postorder.
func (dt *DomTree) RPO() []*Block { return dt.order }
