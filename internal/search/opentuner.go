package search

import (
	"math"
	"math/rand"
)

// OpenTuner reproduces OpenTuner's default search strategy: an AUC-bandit
// meta-technique directing an ensemble of six sub-techniques — particle
// swarm optimization and a genetic algorithm, each under three crossover
// settings (§6.1 of the paper). Each round the bandit picks the technique
// with the best exploitation/exploration score, asks it for o.Batch
// candidates (one when the objective is scalar), scores them as one batch,
// and credits the technique for every candidate that improves the
// incumbent. The bandit is inherently sequential — each pick depends on
// all previous outcomes — so batching trades a slightly staler bandit
// state (proposals within a round don't see each other's wins) for
// worker-pool parallelism; at Batch<=1 behaviour is exactly the paper's.
func OpenTuner(o *Objective, rng *rand.Rand, budget int) Result {
	techs := []technique{
		newPSO(o, rng, OnePoint),
		newPSO(o, rng, TwoPoint),
		newPSO(o, rng, Uniform),
		newGATech(o, rng, OnePoint),
		newGATech(o, rng, TwoPoint),
		newGATech(o, rng, Uniform),
	}
	const window = 50
	type use struct {
		tech int
		win  bool
	}
	var history []use
	const c = 0.4 // exploration constant

	uses := make([]int, len(techs))
	_, best := o.Best()
	hasBest := false

	for o.Samples() < budget {
		// AUC-bandit scores over a sliding window.
		pick := rng.Intn(len(techs))
		if len(history) >= len(techs) {
			bestScore := math.Inf(-1)
			for ti := range techs {
				wins, n := 0, 0
				for _, u := range history {
					if u.tech == ti {
						n++
						if u.win {
							wins++
						}
					}
				}
				var score float64
				if n == 0 {
					score = math.Inf(1)
				} else {
					auc := float64(wins) / float64(n)
					score = auc + c*math.Sqrt(2*math.Log(float64(len(history)))/float64(n))
				}
				if score > bestScore {
					bestScore = score
					pick = ti
				}
			}
		}
		k := o.batchSize()
		if rem := budget - o.Samples(); k > rem {
			k = rem
		}
		cands := make([][]int, k)
		for i := range cands {
			cands[i] = techs[pick].propose()
		}
		outs := o.EvaluateBatch(cands)
		for i, out := range outs {
			techs[pick].report(cands[i], out.Val, out.Ok)
			uses[pick]++
			win := out.Ok && (!hasBest || out.Val < best)
			if win {
				best = out.Val
				hasBest = true
			}
			history = append(history, use{pick, win})
			if len(history) > window {
				history = history[1:]
			}
		}
	}
	return o.result()
}

// technique is one sub-search inside the ensemble.
type technique interface {
	propose() []int
	report(seq []int, val int64, ok bool)
}

// psoTech is integer particle swarm optimization: particles carry continuous
// positions/velocities per gene, snapped to valid pass indices, with a
// crossover-style recombination against the global best (the "crossover
// setting" OpenTuner varies).
type psoTech struct {
	o        *Objective
	rng      *rand.Rand
	op       CrossoverOp
	pos      [][]float64
	vel      [][]float64
	pbest    [][]int
	pbestVal []int64
	gbest    []int
	gbestVal int64
	cur      int
	pending  []int // particle index per outstanding proposal, FIFO
}

func newPSO(o *Objective, rng *rand.Rand, op CrossoverOp) *psoTech {
	const particles = 8
	p := &psoTech{o: o, rng: rng, op: op, gbestVal: math.MaxInt64}
	for i := 0; i < particles; i++ {
		pos := make([]float64, o.N)
		vel := make([]float64, o.N)
		for j := range pos {
			pos[j] = rng.Float64() * float64(o.K)
			vel[j] = rng.NormFloat64()
		}
		p.pos = append(p.pos, pos)
		p.vel = append(p.vel, vel)
		p.pbest = append(p.pbest, nil)
		p.pbestVal = append(p.pbestVal, math.MaxInt64)
	}
	return p
}

func (p *psoTech) snap(pos []float64) []int {
	seq := make([]int, len(pos))
	for i, v := range pos {
		k := int(v)
		if k < 0 {
			k = 0
		}
		if k >= p.o.K {
			k = p.o.K - 1
		}
		seq[i] = k
	}
	return seq
}

func (p *psoTech) propose() []int {
	i := p.cur
	p.cur = (p.cur + 1) % len(p.pos)
	p.pending = append(p.pending, i)
	const w, c1, c2 = 0.7, 1.4, 1.4
	for j := range p.pos[i] {
		var pb, gb float64
		if p.pbest[i] != nil {
			pb = float64(p.pbest[i][j])
		} else {
			pb = p.pos[i][j]
		}
		if p.gbest != nil {
			gb = float64(p.gbest[j])
		} else {
			gb = p.pos[i][j]
		}
		p.vel[i][j] = w*p.vel[i][j] +
			c1*p.rng.Float64()*(pb-p.pos[i][j]) +
			c2*p.rng.Float64()*(gb-p.pos[i][j])
		p.pos[i][j] += p.vel[i][j]
		if p.pos[i][j] < 0 {
			p.pos[i][j] = 0
			p.vel[i][j] = -p.vel[i][j] / 2
		}
		if p.pos[i][j] > float64(p.o.K)-1e-9 {
			p.pos[i][j] = float64(p.o.K) - 1e-9
			p.vel[i][j] = -p.vel[i][j] / 2
		}
	}
	seq := p.snap(p.pos[i])
	// Crossover against the global best, per the technique's setting.
	if p.gbest != nil {
		a, _ := crossover(p.rng, p.op, seq, p.gbest)
		seq = a
	}
	return seq
}

// report consumes the oldest outstanding proposal: batched rounds report
// results in proposal order, so a FIFO keeps the particle pairing exact.
func (p *psoTech) report(seq []int, val int64, ok bool) {
	if len(p.pending) == 0 {
		return
	}
	i := p.pending[0]
	p.pending = p.pending[1:]
	if !ok {
		return
	}
	if val < p.pbestVal[i] {
		p.pbestVal[i] = val
		p.pbest[i] = append([]int(nil), seq...)
	}
	if val < p.gbestVal {
		p.gbestVal = val
		p.gbest = append([]int(nil), seq...)
	}
}

// gaTech is a steady-state GA usable one proposal at a time.
type gaTech struct {
	o    *Objective
	rng  *rand.Rand
	op   CrossoverOp
	pop  [][]int
	vals []int64
}

func newGATech(o *Objective, rng *rand.Rand, op CrossoverOp) *gaTech {
	g := &gaTech{o: o, rng: rng, op: op}
	for i := 0; i < 12; i++ {
		seq := make([]int, o.N)
		for j := range seq {
			seq[j] = rng.Intn(o.K)
		}
		g.pop = append(g.pop, seq)
		g.vals = append(g.vals, math.MaxInt64)
	}
	return g
}

func (g *gaTech) pickParent() []int {
	a, b := g.rng.Intn(len(g.pop)), g.rng.Intn(len(g.pop))
	if g.vals[a] <= g.vals[b] {
		return g.pop[a]
	}
	return g.pop[b]
}

func (g *gaTech) propose() []int {
	c1, _ := crossover(g.rng, g.op, g.pickParent(), g.pickParent())
	for i := range c1 {
		if g.rng.Float64() < 0.08 {
			c1[i] = g.rng.Intn(g.o.K)
		}
	}
	return c1
}

func (g *gaTech) report(seq []int, val int64, ok bool) {
	if !ok {
		return
	}
	// Replace the worst member when the candidate beats it.
	worst, wv := 0, int64(math.MinInt64)
	for i, v := range g.vals {
		if v > wv {
			worst, wv = i, v
		}
	}
	if val < wv {
		g.pop[worst] = append([]int(nil), seq...)
		g.vals[worst] = val
	}
}
