package search

import (
	"math/rand"
	"testing"
)

// toyObjective rewards matching a hidden target prefix: cycles = 1000 -
// 10*(matching genes) + small noise-free structure; also rewards pass 7 at
// position 0 heavily, giving greedy something to find.
func toyObjective(k, n int) *Objective {
	target := make([]int, n)
	for i := range target {
		target[i] = (i*3 + 1) % k
	}
	o := &Objective{K: k, N: n}
	o.Eval = func(seq []int) (int64, bool) {
		c := int64(1000)
		for i := 0; i < len(seq) && i < n; i++ {
			if seq[i] == target[i] {
				c -= 10
			}
		}
		if len(seq) > 0 && seq[0] == target[0] {
			c -= 50
		}
		return c, true
	}
	return o
}

func TestRandomRespectsBudget(t *testing.T) {
	o := toyObjective(10, 8)
	res := Random(o, rand.New(rand.NewSource(1)), 200)
	if res.Samples != 200 {
		t.Fatalf("samples = %d, want 200", res.Samples)
	}
	if res.Cycles >= 1000 {
		t.Fatalf("random found nothing: %d", res.Cycles)
	}
}

func TestGreedyFindsStrongFirstGene(t *testing.T) {
	o := toyObjective(10, 8)
	res := Greedy(o, 2000)
	if len(res.Seq) == 0 || res.Seq[0] != 1 { // target[0] = 1
		t.Fatalf("greedy missed the dominant insertion: %v", res.Seq)
	}
	if res.Samples > 2000 {
		t.Fatalf("budget exceeded: %d", res.Samples)
	}
}

func TestGeneticImproves(t *testing.T) {
	o := toyObjective(10, 8)
	rng := rand.New(rand.NewSource(2))
	res := Genetic(o, rng, DefaultGA(), 1500)
	if res.Cycles > 920 {
		t.Fatalf("GA barely improved: %d", res.Cycles)
	}
	if res.Samples > 1500 {
		t.Fatalf("budget exceeded: %d", res.Samples)
	}
}

func TestOpenTunerImproves(t *testing.T) {
	o := toyObjective(10, 8)
	rng := rand.New(rand.NewSource(3))
	res := OpenTuner(o, rng, 1500)
	if res.Cycles > 920 {
		t.Fatalf("OpenTuner barely improved: %d", res.Cycles)
	}
	if res.Samples > 1500 {
		t.Fatalf("budget exceeded: %d", res.Samples)
	}
}

func TestCrossoverShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := []int{1, 1, 1, 1, 1, 1}
	b := []int{2, 2, 2, 2, 2, 2}
	for _, op := range []CrossoverOp{OnePoint, TwoPoint, Uniform} {
		ca, cb := crossover(rng, op, a, b)
		if len(ca) != 6 || len(cb) != 6 {
			t.Fatalf("op %v changed length", op)
		}
		for i := range ca {
			if ca[i]+cb[i] != 3 {
				t.Fatalf("op %v lost genes: %v %v", op, ca, cb)
			}
		}
	}
	// Parents must be untouched.
	for i := range a {
		if a[i] != 1 || b[i] != 2 {
			t.Fatal("crossover mutated parents")
		}
	}
}

func TestObjectiveTracksIncumbent(t *testing.T) {
	o := toyObjective(10, 4)
	o.Evaluate([]int{0, 0, 0, 0})
	v1 := o.bestVal
	o.Evaluate([]int{1, 4, 7, 0}) // matches target prefix
	seq, v2 := o.Best()
	if v2 >= v1 {
		t.Fatalf("incumbent not updated: %d -> %d", v1, v2)
	}
	if seq[0] != 1 {
		t.Fatalf("incumbent sequence wrong: %v", seq)
	}
	if o.Samples() != 2 {
		t.Fatalf("samples = %d", o.Samples())
	}
}

func TestOpenTunerCreditsWinners(t *testing.T) {
	// An objective where only full-length low-value sequences win: the
	// bandit must still respect the global budget and return an incumbent.
	o := toyObjective(8, 6)
	rng := rand.New(rand.NewSource(9))
	res := OpenTuner(o, rng, 400)
	if res.Samples != 400 {
		t.Fatalf("samples %d", res.Samples)
	}
	if len(res.Seq) != 6 {
		t.Fatalf("incumbent has wrong length: %v", res.Seq)
	}
}

func TestGreedyStopsWhenNoImprovement(t *testing.T) {
	// Constant objective: greedy should terminate after one fruitless
	// insertion round rather than exhausting the budget.
	o := &Objective{K: 5, N: 10, Eval: func([]int) (int64, bool) { return 100, true }}
	res := Greedy(o, 100000)
	if res.Samples > 5*11+1 {
		t.Fatalf("greedy wasted samples on a flat objective: %d", res.Samples)
	}
}

func TestObjectiveRejectedCandidates(t *testing.T) {
	// Failing evaluations must not become the incumbent.
	calls := 0
	o := &Objective{K: 3, N: 2, Eval: func(seq []int) (int64, bool) {
		calls++
		if len(seq) > 0 && seq[0] == 0 {
			return 1, false // looks great but invalid
		}
		return 50, true
	}}
	o.Evaluate([]int{0, 0})
	o.Evaluate([]int{1, 1})
	seq, v := o.Best()
	if v != 50 || seq[0] != 1 {
		t.Fatalf("invalid candidate became incumbent: %v %d", seq, v)
	}
}
