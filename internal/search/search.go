// Package search implements the black-box phase-ordering baselines the
// paper compares against: random search, the greedy insertion algorithm of
// Huang et al. 2013, a DEAP-style genetic algorithm, and an OpenTuner-style
// AUC-bandit ensemble over particle-swarm and genetic sub-techniques.
//
// All algorithms optimize the same objective: a pass sequence (integer
// vector over Table 1 indices) is compiled and profiled, and the estimated
// cycle count is minimized. Every profiler invocation counts as one sample,
// matching the paper's samples-per-program axis.
package search

import (
	"math"
	"math/rand"
)

// Objective evaluates candidate pass sequences.
type Objective struct {
	// Eval compiles a clone of the program with the sequence and returns
	// the estimated cycle count.
	Eval func(seq []int) (int64, bool)
	// K is the number of selectable passes.
	K int
	// N is the maximum sequence length.
	N int

	samples int
	bestSeq []int
	bestVal int64
	hasBest bool
}

// Evaluate scores a sequence, tracking sample count and the incumbent.
func (o *Objective) Evaluate(seq []int) (int64, bool) {
	o.samples++
	v, ok := o.Eval(seq)
	if !ok {
		return math.MaxInt64, false
	}
	if !o.hasBest || v < o.bestVal {
		o.bestVal = v
		o.bestSeq = append([]int(nil), seq...)
		o.hasBest = true
	}
	return v, true
}

// Samples returns the number of objective evaluations so far.
func (o *Objective) Samples() int { return o.samples }

// Best returns the incumbent sequence and its value.
func (o *Objective) Best() ([]int, int64) { return o.bestSeq, o.bestVal }

// Result reports a finished search.
type Result struct {
	Seq     []int
	Cycles  int64
	Samples int
}

func (o *Objective) result() Result {
	seq, v := o.Best()
	return Result{Seq: seq, Cycles: v, Samples: o.Samples()}
}

// Random generates `budget` random sequences of full length N at once, as
// the paper's `random` baseline does, and returns the best.
func Random(o *Objective, rng *rand.Rand, budget int) Result {
	for s := 0; s < budget; s++ {
		seq := make([]int, o.N)
		for i := range seq {
			seq[i] = rng.Intn(o.K)
		}
		o.Evaluate(seq)
	}
	return o.result()
}

// Greedy is the insertion algorithm of Huang et al. 2013: repeatedly insert
// the (pass, position) pair that lowers the cycle count the most into the
// current sequence, stopping when no insertion helps or the budget runs
// out.
func Greedy(o *Objective, budget int) Result {
	var cur []int
	curVal, ok := o.Evaluate(cur)
	if !ok {
		curVal = math.MaxInt64
	}
	for len(cur) < o.N && o.Samples() < budget {
		bestVal := curVal
		var bestSeq []int
		for p := 0; p < o.K && o.Samples() < budget; p++ {
			for pos := 0; pos <= len(cur) && o.Samples() < budget; pos++ {
				trial := make([]int, 0, len(cur)+1)
				trial = append(trial, cur[:pos]...)
				trial = append(trial, p)
				trial = append(trial, cur[pos:]...)
				v, ok := o.Evaluate(trial)
				if ok && v < bestVal {
					bestVal = v
					bestSeq = trial
				}
			}
		}
		if bestSeq == nil {
			break
		}
		cur, curVal = bestSeq, bestVal
	}
	return o.result()
}

// GAConfig tunes the genetic algorithm.
type GAConfig struct {
	Population int
	Tournament int
	CxProb     float64
	MutProb    float64
	MutIndProb float64 // per-gene mutation probability
	Crossover  CrossoverOp
}

// CrossoverOp selects the recombination operator (OpenTuner's ensemble
// uses GA and PSO each under three different crossover settings).
type CrossoverOp int

// Crossover operators.
const (
	OnePoint CrossoverOp = iota
	TwoPoint
	Uniform
)

// DefaultGA mirrors DEAP's basic integer GA.
func DefaultGA() GAConfig {
	return GAConfig{Population: 24, Tournament: 3, CxProb: 0.9, MutProb: 0.3, MutIndProb: 0.1, Crossover: TwoPoint}
}

func crossover(rng *rand.Rand, op CrossoverOp, a, b []int) ([]int, []int) {
	n := len(a)
	ca := append([]int(nil), a...)
	cb := append([]int(nil), b...)
	switch op {
	case OnePoint:
		if n > 1 {
			p := 1 + rng.Intn(n-1)
			for i := p; i < n; i++ {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	case TwoPoint:
		if n > 2 {
			p := 1 + rng.Intn(n-2)
			q := p + 1 + rng.Intn(n-p-1)
			for i := p; i < q; i++ {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	case Uniform:
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	}
	return ca, cb
}

// Genetic runs the DEAP-style GA until the sample budget is exhausted.
func Genetic(o *Objective, rng *rand.Rand, cfg GAConfig, budget int) Result {
	type indiv struct {
		seq []int
		val int64
	}
	newInd := func() indiv {
		seq := make([]int, o.N)
		for i := range seq {
			seq[i] = rng.Intn(o.K)
		}
		return indiv{seq: seq}
	}
	evalInd := func(ind *indiv) bool {
		v, ok := o.Evaluate(ind.seq)
		ind.val = v
		return ok
	}
	pop := make([]indiv, cfg.Population)
	for i := range pop {
		pop[i] = newInd()
		if o.Samples() >= budget {
			break
		}
		evalInd(&pop[i])
	}
	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < cfg.Tournament; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.val < best.val {
				best = c
			}
		}
		return best
	}
	for o.Samples() < budget {
		var next []indiv
		for len(next) < cfg.Population {
			p1, p2 := tournament(), tournament()
			c1 := append([]int(nil), p1.seq...)
			c2 := append([]int(nil), p2.seq...)
			if rng.Float64() < cfg.CxProb {
				c1, c2 = crossover(rng, cfg.Crossover, c1, c2)
			}
			for _, c := range [][]int{c1, c2} {
				if rng.Float64() < cfg.MutProb {
					for i := range c {
						if rng.Float64() < cfg.MutIndProb {
							c[i] = rng.Intn(o.K)
						}
					}
				}
			}
			next = append(next, indiv{seq: c1}, indiv{seq: c2})
		}
		for i := range next {
			if o.Samples() >= budget {
				next = next[:i]
				break
			}
			evalInd(&next[i])
		}
		if len(next) == 0 {
			break
		}
		pop = next
	}
	return o.result()
}
