// Package search implements the black-box phase-ordering baselines the
// paper compares against: random search, the greedy insertion algorithm of
// Huang et al. 2013, a DEAP-style genetic algorithm, and an OpenTuner-style
// AUC-bandit ensemble over particle-swarm and genetic sub-techniques.
//
// All algorithms optimize the same objective: a pass sequence (integer
// vector over Table 1 indices) is compiled and profiled, and the estimated
// cycle count is minimized. Every profiler invocation counts as one sample,
// matching the paper's samples-per-program axis.
package search

import (
	"math"
	"math/rand"
)

// Objective evaluates candidate pass sequences.
type Objective struct {
	// Eval compiles a clone of the program with the sequence and returns
	// the estimated cycle count. Optional when EvalBatch is set.
	Eval func(seq []int) (int64, bool)
	// EvalBatch scores many candidates at once (typically through
	// core.Evaluator's worker pool). Optional: when nil, EvaluateBatch
	// falls back to scalar Eval calls; when set, scalar Evaluate becomes a
	// one-element batch.
	EvalBatch func(seqs [][]int) []EvalOutcome
	// Batch hints how many candidates the backend can usefully score
	// concurrently (the -workers knob). Sequential algorithms with
	// batchable inner loops (OpenTuner's bandit rounds) propose this many
	// per round; 0 or 1 means scalar.
	Batch int
	// K is the number of selectable passes.
	K int
	// N is the maximum sequence length.
	N int

	samples int
	bestSeq []int
	bestVal int64
	hasBest bool
}

// EvalOutcome is one batched evaluation verdict. A failed compile reports
// Ok=false with Val forced to math.MaxInt64, mirroring scalar Evaluate.
type EvalOutcome struct {
	Val int64
	Ok  bool
}

// Evaluate scores a sequence, tracking sample count and the incumbent.
func (o *Objective) Evaluate(seq []int) (int64, bool) {
	if o.Eval == nil && o.EvalBatch != nil {
		r := o.EvaluateBatch([][]int{seq})[0]
		return r.Val, r.Ok
	}
	o.samples++
	v, ok := o.Eval(seq)
	if !ok {
		return math.MaxInt64, false
	}
	if !o.hasBest || v < o.bestVal {
		o.bestVal = v
		o.bestSeq = append([]int(nil), seq...)
		o.hasBest = true
	}
	return v, true
}

// EvaluateBatch scores candidates in submission order: the sample counter
// and the incumbent update exactly as len(seqs) scalar Evaluate calls
// would, so a search algorithm that generates its candidates before
// scoring them is bit-identical at any worker count.
func (o *Objective) EvaluateBatch(seqs [][]int) []EvalOutcome {
	if len(seqs) == 0 {
		return nil
	}
	var outs []EvalOutcome
	if o.EvalBatch != nil {
		outs = o.EvalBatch(seqs)
	} else {
		outs = make([]EvalOutcome, len(seqs))
		for i, s := range seqs {
			v, ok := o.Eval(s)
			outs[i] = EvalOutcome{Val: v, Ok: ok}
		}
	}
	for i := range outs {
		o.samples++
		if !outs[i].Ok {
			outs[i].Val = math.MaxInt64
			continue
		}
		if !o.hasBest || outs[i].Val < o.bestVal {
			o.bestVal = outs[i].Val
			o.bestSeq = append([]int(nil), seqs[i]...)
			o.hasBest = true
		}
	}
	return outs
}

// batchSize is the per-round proposal count for sequential algorithms.
func (o *Objective) batchSize() int {
	if o.Batch > 1 {
		return o.Batch
	}
	return 1
}

// Samples returns the number of objective evaluations so far.
func (o *Objective) Samples() int { return o.samples }

// Best returns the incumbent sequence and its value.
func (o *Objective) Best() ([]int, int64) { return o.bestSeq, o.bestVal }

// Result reports a finished search.
type Result struct {
	Seq     []int
	Cycles  int64
	Samples int
}

func (o *Objective) result() Result {
	seq, v := o.Best()
	return Result{Seq: seq, Cycles: v, Samples: o.Samples()}
}

// Random generates `budget` random sequences of full length N at once, as
// the paper's `random` baseline does, and returns the best. Candidates are
// drawn from rng in order and scored in worker-pool-sized chunks, so the
// result is identical at any worker count.
func Random(o *Objective, rng *rand.Rand, budget int) Result {
	const chunk = 128
	for s := 0; s < budget; {
		n := budget - s
		if n > chunk {
			n = chunk
		}
		seqs := make([][]int, n)
		for j := range seqs {
			seq := make([]int, o.N)
			for i := range seq {
				seq[i] = rng.Intn(o.K)
			}
			seqs[j] = seq
		}
		o.EvaluateBatch(seqs)
		s += n
	}
	return o.result()
}

// Greedy is the insertion algorithm of Huang et al. 2013: repeatedly insert
// the (pass, position) pair that lowers the cycle count the most into the
// current sequence, stopping when no insertion helps or the budget runs
// out.
func Greedy(o *Objective, budget int) Result {
	var cur []int
	curVal, ok := o.Evaluate(cur)
	if !ok {
		curVal = math.MaxInt64
	}
	for len(cur) < o.N && o.Samples() < budget {
		bestVal := curVal
		var bestSeq []int
		for p := 0; p < o.K && o.Samples() < budget; p++ {
			for pos := 0; pos <= len(cur) && o.Samples() < budget; pos++ {
				trial := make([]int, 0, len(cur)+1)
				trial = append(trial, cur[:pos]...)
				trial = append(trial, p)
				trial = append(trial, cur[pos:]...)
				v, ok := o.Evaluate(trial)
				if ok && v < bestVal {
					bestVal = v
					bestSeq = trial
				}
			}
		}
		if bestSeq == nil {
			break
		}
		cur, curVal = bestSeq, bestVal
	}
	return o.result()
}

// GAConfig tunes the genetic algorithm.
type GAConfig struct {
	Population int
	Tournament int
	CxProb     float64
	MutProb    float64
	MutIndProb float64 // per-gene mutation probability
	Crossover  CrossoverOp
}

// CrossoverOp selects the recombination operator (OpenTuner's ensemble
// uses GA and PSO each under three different crossover settings).
type CrossoverOp int

// Crossover operators.
const (
	OnePoint CrossoverOp = iota
	TwoPoint
	Uniform
)

// DefaultGA mirrors DEAP's basic integer GA.
func DefaultGA() GAConfig {
	return GAConfig{Population: 24, Tournament: 3, CxProb: 0.9, MutProb: 0.3, MutIndProb: 0.1, Crossover: TwoPoint}
}

func crossover(rng *rand.Rand, op CrossoverOp, a, b []int) ([]int, []int) {
	n := len(a)
	ca := append([]int(nil), a...)
	cb := append([]int(nil), b...)
	switch op {
	case OnePoint:
		if n > 1 {
			p := 1 + rng.Intn(n-1)
			for i := p; i < n; i++ {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	case TwoPoint:
		if n > 2 {
			p := 1 + rng.Intn(n-2)
			q := p + 1 + rng.Intn(n-p-1)
			for i := p; i < q; i++ {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	case Uniform:
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ca[i], cb[i] = cb[i], ca[i]
			}
		}
	}
	return ca, cb
}

// Genetic runs the DEAP-style GA until the sample budget is exhausted.
func Genetic(o *Objective, rng *rand.Rand, cfg GAConfig, budget int) Result {
	type indiv struct {
		seq []int
		val int64
	}
	newInd := func() indiv {
		seq := make([]int, o.N)
		for i := range seq {
			seq[i] = rng.Intn(o.K)
		}
		return indiv{seq: seq}
	}
	// evalPop scores the individuals as one batch, truncating to whatever
	// budget remains; batch order matches the sequential evaluation order.
	evalPop := func(inds []indiv) []indiv {
		if m := budget - o.Samples(); len(inds) > m {
			if m < 0 {
				m = 0
			}
			inds = inds[:m]
		}
		if len(inds) == 0 {
			return inds
		}
		seqs := make([][]int, len(inds))
		for i := range inds {
			seqs[i] = inds[i].seq
		}
		outs := o.EvaluateBatch(seqs)
		for i := range inds {
			inds[i].val = outs[i].Val
		}
		return inds
	}
	pop := make([]indiv, cfg.Population)
	for i := range pop {
		pop[i] = newInd()
	}
	if scored := evalPop(pop); len(scored) < len(pop) {
		pop = pop[:len(scored)]
	}
	if len(pop) == 0 {
		return o.result()
	}
	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < cfg.Tournament; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.val < best.val {
				best = c
			}
		}
		return best
	}
	for o.Samples() < budget {
		var next []indiv
		for len(next) < cfg.Population {
			p1, p2 := tournament(), tournament()
			c1 := append([]int(nil), p1.seq...)
			c2 := append([]int(nil), p2.seq...)
			if rng.Float64() < cfg.CxProb {
				c1, c2 = crossover(rng, cfg.Crossover, c1, c2)
			}
			for _, c := range [][]int{c1, c2} {
				if rng.Float64() < cfg.MutProb {
					for i := range c {
						if rng.Float64() < cfg.MutIndProb {
							c[i] = rng.Intn(o.K)
						}
					}
				}
			}
			next = append(next, indiv{seq: c1}, indiv{seq: c2})
		}
		next = evalPop(next)
		if len(next) == 0 {
			break
		}
		pop = next
	}
	return o.result()
}
