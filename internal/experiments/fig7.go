package experiments

import (
	"autophase/internal/core"
	"autophase/internal/passes"
	"autophase/internal/rl"
	"autophase/internal/search"
)

// AlgoResult is one bar (plus its samples-per-program dot) of Figure 7 or
// Figure 9.
type AlgoResult struct {
	Algo              string
	PerProgram        map[string]float64 // fractional improvement over -O3
	Mean              float64
	SamplesPerProgram float64
}

// Fig7Algorithms lists the Figure 7 x-axis in the paper's order.
var Fig7Algorithms = []string{
	"-O0", "-O3", "RL-PPO1", "RL-PPO2", "RL-A3C", "Greedy",
	"RL-PPO3", "OpenTuner", "RL-ES", "Genetic-DEAP", "random",
}

// Fig7 reproduces the §6.1 per-program comparison: every algorithm
// optimizes each of the nine benchmarks independently (unnormalized
// features, pass length N); the score is the best cycle count the
// algorithm's profiler samples discovered.
func Fig7(programs []*core.Program, sc Scale) []AlgoResult {
	var out []AlgoResult
	for _, algo := range Fig7Algorithms {
		res := AlgoResult{Algo: algo, PerProgram: make(map[string]float64)}
		var totalSamples float64
		for _, p := range programs {
			p.ResetSamples(true)
			best := RunFig7Algo(algo, p, sc)
			res.PerProgram[p.Name] = p.SpeedupOverO3(best)
			if algo == "-O0" || algo == "-O3" {
				totalSamples++
			} else {
				totalSamples += float64(p.Samples())
			}
		}
		res.Mean = meanImprovement(res.PerProgram)
		res.SamplesPerProgram = totalSamples / float64(len(programs))
		out = append(out, res)
	}
	return out
}

// RunFig7Algo runs one algorithm on one program and returns the best cycle
// count it discovered.
func RunFig7Algo(algo string, p *core.Program, sc Scale) int64 {
	switch algo {
	case "-O0":
		return p.O0Cycles
	case "-O3":
		return p.O3Cycles
	case "RL-PPO1": // PPO explorer with zeroed rewards (control).
		cfg := ppoCfg(sc)
		cfg.ZeroRewards = true
		env := core.NewPhaseEnv(p, envCfg(core.ObsFeatures, sc))
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, sc.RLSteps, nil)
	case "RL-PPO2": // PPO on the applied-pass histogram.
		cfg := ppoCfg(sc)
		env := core.NewPhaseEnv(p, envCfg(core.ObsHistogram, sc))
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, sc.RLSteps, nil)
	case "RL-A3C": // A3C on program features.
		cfg := rl.DefaultA3C()
		cfg.Workers = 2
		cfg.Hidden = sc.Hidden
		cfg.LR = sc.LR
		cfg.EntCoef = 0.02
		proto := core.NewPhaseEnv(p, envCfg(core.ObsFeatures, sc))
		agent := rl.NewA3C(cfg, proto.ObsSize(), proto.ActionDims())
		agent.Train(func(w int) rl.Env {
			return core.NewPhaseEnv(p, envCfg(core.ObsFeatures, sc))
		}, sc.RLSteps, nil)
	case "Greedy":
		obj := objective(p, sc)
		search.Greedy(obj, sc.GreedyBudget)
	case "RL-PPO3": // multiple passes per action (§5.2).
		cfg := ppoCfg(sc)
		cfg.RolloutSteps = min(128, sc.PPO3Steps)
		slots := sc.EpisodeLen
		// Slots start at K/2 (§5.2); the episode must be long enough for a
		// slot to drift to any pass index.
		steps := sc.EpisodeLen + passes.NumActions/2 + 3
		env := core.NewMultiPhaseEnv(p, envCfg(core.ObsBoth, sc), slots, steps)
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, sc.PPO3Steps, nil)
	case "OpenTuner":
		obj := objective(p, sc)
		search.OpenTuner(obj, rng(hash(p.Name)+2), sc.OTBudget)
	case "RL-ES":
		cfg := rl.DefaultES()
		cfg.Population = 8
		cfg.Sigma = 0.12
		cfg.Hidden = sc.Hidden
		cfg.LR = 0.08
		cfg.Workers = sc.workers()
		// One environment per worker: perturbations spread across them
		// through the sharded compile cache (candidate i on env i%w).
		envs := make([]rl.Env, sc.workers())
		for i := range envs {
			envs[i] = core.NewPhaseEnv(p, envCfg(core.ObsFeatures, sc))
		}
		agent := rl.NewES(cfg, envs[0].ObsSize(), envs[0].ActionDims())
		agent.Train(envs, sc.ESSteps, nil)
	case "Genetic-DEAP":
		obj := objective(p, sc)
		search.Genetic(obj, rng(hash(p.Name)+3), search.DefaultGA(), sc.GABudget)
	case "random":
		obj := objective(p, sc)
		search.Random(obj, rng(hash(p.Name)+4), sc.RandBudget)
	}
	best, _ := p.BestCycles()
	return best
}

// ppoCfg instantiates the scale's PPO hyperparameters.
func ppoCfg(sc Scale) rl.PPOConfig {
	cfg := rl.DefaultPPO()
	cfg.Hidden = sc.Hidden
	cfg.LR = sc.LR
	cfg.RolloutSteps = min(128, sc.RLSteps)
	return cfg
}

func envCfg(obs core.ObsKind, sc Scale) core.EnvConfig {
	cfg := core.DefaultEnv()
	cfg.Obs = obs
	cfg.EpisodeLen = sc.EpisodeLen
	cfg.Engine = sc.Engine
	return cfg
}

// objective adapts a Program to the black-box search interface through the
// batch evaluation engine (sc.workers() concurrent compiles).
func objective(p *core.Program, sc Scale) *search.Objective {
	return core.NewEvaluator(p, sc.workers()).Objective(sc.EpisodeLen)
}

func hash(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
