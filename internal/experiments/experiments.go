// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §6): the Figure 5/6 importance heat maps, Table 3's
// algorithm configurations, Figure 7's per-program comparison, Figure 8's
// generalization learning curves and Figure 9's zero-shot transfer
// comparison. cmd/experiments renders them; the root bench_test.go wraps
// them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"autophase/internal/core"
	"autophase/internal/hls"
	"autophase/internal/ir"
	"autophase/internal/progen"
)

// Scale sets the evaluation budgets. Full reproduces the paper's sample
// budgets; Quick shrinks everything so the whole evaluation runs in
// minutes on a laptop (relative comparisons, not absolute numbers, are the
// target — see EXPERIMENTS.md).
type Scale struct {
	Name string

	// Figure 7 per-program budgets.
	RLSteps      int // env steps for PPO1/PPO2/A3C/ES per program
	EpisodeLen   int // pass-sequence length N (45 in the paper)
	GreedyBudget int
	PPO3Steps    int
	OTBudget     int
	ESSteps      int
	GABudget     int
	RandBudget   int

	// Generalization (Figures 8/9, §6.2).
	TrainPrograms  int // 100 in the paper
	GenRLSteps     int // training steps for the generalization nets
	TransferBudget int // black-box search budget over the training set
	TestRandom     int // extra random test programs (12,874 in the paper)

	// Importance analysis (Figures 5/6).
	TupleEpisodes int // random-exploration episodes per program
	TupleLen      int

	// Filtered space sizes (§4).
	KeepFeatures int
	KeepPasses   int

	// Network size and learning rate for the deep-RL agents. The paper
	// uses 256×256; the quick scale shrinks it for wall-clock.
	Hidden []int
	LR     float64

	// Workers is the evaluation parallelism (the -workers CLI knob): batch
	// scoring in the black-box baselines, ES perturbation evaluation and
	// tuple collection all fan out this wide. 0 means one worker per
	// available CPU; Quick pins 1 so recorded trajectories stay bit-stable
	// across machines.
	Workers int

	// Engine pins the profiler backend for every environment the
	// experiments build (the -engine CLI knob); the zero value
	// hls.EngineAuto keeps the static → VM → interpreter cascade. Results
	// are bit-identical across engines, so this only moves wall-clock.
	Engine hls.Engine
}

// workers resolves the Scale's worker count (0 = all CPUs).
func (sc Scale) workers() int {
	if sc.Workers > 0 {
		return sc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Quick is the scaled-down default used by the benchmarks.
func Quick() Scale {
	return Scale{
		Name:         "quick",
		RLSteps:      3200,
		EpisodeLen:   18,
		GreedyBudget: 1100, PPO3Steps: 1800, OTBudget: 1300,
		ESSteps: 3200, GABudget: 1600, RandBudget: 1800,
		TrainPrograms: 10, GenRLSteps: 6000, TransferBudget: 150, TestRandom: 60,
		TupleEpisodes: 16, TupleLen: 14,
		KeepFeatures: 24, KeepPasses: 16,
		Hidden: []int{64, 64}, LR: 1e-3,
		Workers: 1,
	}
}

// Full mirrors the paper's budgets (Figure 7's dots): 88 RL samples
// translate to a few thousand env steps, greedy 2484, OpenTuner 4000,
// ES 4384, GA 6789, random 8400 samples per program, 100 training programs.
func Full() Scale {
	return Scale{
		Name:         "full",
		RLSteps:      3960,
		EpisodeLen:   45,
		GreedyBudget: 2484, PPO3Steps: 3510, OTBudget: 4000,
		ESSteps: 4384, GABudget: 6789, RandBudget: 8400,
		TrainPrograms: 100, GenRLSteps: 20000, TransferBudget: 600, TestRandom: 1000,
		TupleEpisodes: 12, TupleLen: 45,
		KeepFeatures: 24, KeepPasses: 16,
		Hidden: []int{256, 256}, LR: 5e-4,
	}
}

// BenchmarkPrograms wraps the nine real benchmarks.
func BenchmarkPrograms() ([]*core.Program, error) {
	var ps []*core.Program
	for _, name := range progen.BenchmarkNames {
		p, err := core.NewProgram(name, progen.Benchmark(name))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// RandomPrograms generates n filtered random programs starting at seed.
func RandomPrograms(n int, seed int64) ([]*core.Program, error) {
	var ps []*core.Program
	for i := 0; i < n; i++ {
		m, used := progen.GenerateFiltered(seed, progen.DefaultGen)
		seed = used + 1
		p, err := core.NewProgram(fmt.Sprintf("rand%d", used), m)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// meanImprovement aggregates per-program improvements as the geometric
// mean of the speedup ratios (1+improvement) — the standard aggregation
// for ratio data, robust to a single program with an outsized win.
func meanImprovement(per map[string]float64) float64 {
	if len(per) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range per {
		r := 1 + v
		if r < 1e-6 {
			r = 1e-6
		}
		logSum += math.Log(r)
	}
	return math.Exp(logSum/float64(len(per))) - 1
}

// rng returns a deterministic source per experiment component.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// benchmarkModule builds one named benchmark module (test helper seam).
func benchmarkModule(name string) *ir.Module { return progen.Benchmark(name) }
