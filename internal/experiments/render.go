package experiments

import (
	"fmt"
	"sort"
	"strings"

	"autophase/internal/core"
	"autophase/internal/features"
	"autophase/internal/passes"
)

// RenderAlgoResults formats a Figure 7/9-style table.
func RenderAlgoResults(title string, rows []AlgoResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-18s %14s %18s\n", "algorithm", "improvement", "samples/program")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %13.1f%% %18.1f\n", r.Algo, r.Mean*100, r.SamplesPerProgram)
	}
	return sb.String()
}

// RenderPerProgram formats the per-benchmark breakdown of one result set.
func RenderPerProgram(rows []AlgoResult) string {
	if len(rows) == 0 {
		return ""
	}
	var names []string
	for n := range rows[0].PerProgram {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s", "algorithm")
	for _, n := range names {
		fmt.Fprintf(&sb, " %9s", n)
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s", r.Algo)
		for _, n := range names {
			fmt.Fprintf(&sb, " %8.1f%%", r.PerProgram[n]*100)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderCurves formats Figure 8 learning curves as aligned columns.
func RenderCurves(curves map[string][]CurvePoint) string {
	var names []string
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("Figure 8: episode reward mean vs. step\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "# %s\n", n)
		for _, pt := range curves[n] {
			fmt.Fprintf(&sb, "%8d %12.3f\n", pt.Step, pt.RewardMean)
		}
	}
	return sb.String()
}

// RenderHeatMap renders an importance matrix as an ASCII heat map with the
// paper's orientation: one row per pass, one column per feature (Figure 5)
// or per previously-applied pass (Figure 6).
func RenderHeatMap(title string, rows [][]float64) string {
	shades := []byte(" .:-=+*#%@")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (rows: pass index; columns: input index; darker = more important)\n", title)
	maxv := 0.0
	for _, row := range rows {
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
	}
	if maxv == 0 {
		maxv = 1
	}
	for pi, row := range rows {
		fmt.Fprintf(&sb, "%2d |", pi)
		for _, v := range row {
			idx := int(v / maxv * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// HeatMapCSV renders an importance matrix as CSV for external plotting.
func HeatMapCSV(rows [][]float64) string {
	var sb strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%.6f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderTable3 prints the paper's Table 3: the observation and action
// spaces of the five deep-RL configurations.
func RenderTable3() string {
	type row struct{ name, algo, obs, act string }
	rows := []row{
		{"RL-PPO1", "PPO", "Program Features", "Single-Action"},
		{"RL-PPO2", "PPO", "Action History", "Single-Action"},
		{"RL-PPO3", "PPO", "Action History + Program Features", "Multiple-Action"},
		{"RL-A3C", "A3C", "Program Features", "Single-Action"},
		{"RL-ES", "ES", "Program Features", "Single-Action"},
	}
	var sb strings.Builder
	sb.WriteString("Table 3: observation and action spaces of the deep RL algorithms\n")
	fmt.Fprintf(&sb, "%-10s %-6s %-36s %-16s\n", "config", "algo", "observation space", "action space")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-6s %-36s %-16s\n", r.name, r.algo, r.obs, r.act)
	}
	return sb.String()
}

// RenderImportanceSummary lists the top features and passes by aggregate
// importance, with their Table 1/2 names — the textual counterpart of the
// paper's §4 discussion.
func RenderImportanceSummary(imp *core.Importance, nFeat, nPass int) string {
	var sb strings.Builder
	sb.WriteString("Top program features by importance (Figure 5 aggregate):\n")
	for _, fi := range imp.TopFeatures(nFeat) {
		fmt.Fprintf(&sb, "  f%-3d %s\n", fi, features.Names[fi])
	}
	sb.WriteString("Top previously-applied passes by importance (Figure 6 aggregate):\n")
	for _, pi := range imp.TopPasses(nPass) {
		fmt.Fprintf(&sb, "  p%-3d %s\n", pi, passes.Table1Names[pi])
	}
	return sb.String()
}
