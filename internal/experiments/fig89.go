package experiments

import (
	"autophase/internal/core"
	"autophase/internal/forest"
	"autophase/internal/rl"
	"autophase/internal/search"
)

// CurvePoint is one point of a Figure 8 learning curve.
type CurvePoint struct {
	Step       int
	RewardMean float64
}

// GenSetting names one §6.2 training configuration.
type GenSetting struct {
	Name string
	Cfg  core.EnvConfig
}

// GenSettings builds the three Figure 8 configurations from an importance
// analysis: original-norm2 (all features/passes, technique 2),
// filtered-norm1 (§4-filtered spaces, technique 1) and filtered-norm2.
func GenSettings(imp *core.Importance, sc Scale) []GenSetting {
	feats := imp.TopFeatures(sc.KeepFeatures)
	pass := imp.TopPasses(sc.KeepPasses)
	base := core.EnvConfig{Obs: core.ObsBoth, EpisodeLen: sc.EpisodeLen, RewardLog: true, Engine: sc.Engine}

	orig := base
	orig.Norm = core.NormTotal

	f1 := base
	f1.Norm = core.NormLog
	f1.FeatureMask = feats
	f1.ActionList = pass

	f2 := base
	f2.Norm = core.NormTotal
	f2.FeatureMask = feats
	f2.ActionList = pass

	return []GenSetting{
		{"original-norm2", orig},
		{"filtered-norm1", f1},
		{"filtered-norm2", f2},
	}
}

// TrainGeneralizer trains one PPO agent across all training programs under
// the setting, recording the episode-reward-mean curve (Figure 8). It
// returns the agent for later inference (Figure 9).
func TrainGeneralizer(train []*core.Program, set GenSetting, sc Scale, seed int64) (*rl.PPO, []CurvePoint) {
	envs := make([]rl.Env, len(train))
	for i, p := range train {
		envs[i] = core.NewPhaseEnv(p, set.Cfg)
	}
	cfg := rl.DefaultPPO()
	cfg.Seed = seed
	if sc.Hidden != nil {
		cfg.Hidden = sc.Hidden
	}
	if sc.LR > 0 {
		cfg.LR = sc.LR
	}
	agent := rl.NewPPO(cfg, envs[0].ObsSize(), envs[0].ActionDims())
	var curve []CurvePoint
	agent.Train(envs, sc.GenRLSteps, func(st rl.Stats) {
		curve = append(curve, CurvePoint{Step: st.TotalSteps, RewardMean: st.EpisodeRewardMean})
	})
	return agent, curve
}

// Fig8 reproduces the learning-curve comparison: the same PPO recipe under
// the three normalization/filtering settings. Higher curves mean faster
// circuits discovered per episode.
func Fig8(train []*core.Program, imp *core.Importance, sc Scale) map[string][]CurvePoint {
	out := make(map[string][]CurvePoint)
	for i, set := range GenSettings(imp, sc) {
		for _, p := range train {
			p.ResetSamples(true)
		}
		_, curve := TrainGeneralizer(train, set, sc, int64(100+i))
		out[set.Name] = curve
	}
	return out
}

// Fig9Algorithms lists the Figure 9 x-axis in the paper's order.
var Fig9Algorithms = []string{
	"-O0", "-O3", "Genetic-DEAP", "OpenTuner", "Greedy",
	"RL-filtered-norm1", "RL-filtered-norm2",
}

// Fig9 reproduces the zero-shot generalization comparison (§6.2): the
// black-box algorithms search one pass sequence minimizing the aggregate
// cycles of the training programs and transfer it verbatim; the deep-RL
// agents train on the same programs and run one greedy inference rollout
// per unseen test program. Every algorithm pays exactly one profiler
// sample per test program.
func Fig9(train, test []*core.Program, imp *core.Importance, sc Scale) []AlgoResult {
	var out []AlgoResult
	settings := GenSettings(imp, sc)

	transfer := func(name string, seqFor func() []int) AlgoResult {
		res := AlgoResult{Algo: name, PerProgram: make(map[string]float64), SamplesPerProgram: 1}
		seq := seqFor()
		for _, p := range test {
			p.ResetSamples(true)
			c, _, ok := p.Compile(seq)
			if !ok {
				c = p.O0Cycles
			}
			res.PerProgram[p.Name] = p.SpeedupOverO3(c)
		}
		res.Mean = meanImprovement(res.PerProgram)
		return res
	}

	aggObjective := func() *search.Objective {
		return &search.Objective{
			K: 45, N: sc.EpisodeLen,
			Eval: func(seq []int) (int64, bool) {
				var total int64
				for _, p := range train {
					c, _, ok := p.Compile(seq)
					if !ok {
						return 0, false
					}
					total += c
				}
				return total, true
			},
		}
	}

	for _, algo := range Fig9Algorithms {
		switch algo {
		case "-O0":
			res := AlgoResult{Algo: algo, PerProgram: make(map[string]float64), SamplesPerProgram: 1}
			for _, p := range test {
				res.PerProgram[p.Name] = p.SpeedupOverO3(p.O0Cycles)
			}
			res.Mean = meanImprovement(res.PerProgram)
			out = append(out, res)
		case "-O3":
			res := AlgoResult{Algo: algo, PerProgram: make(map[string]float64), SamplesPerProgram: 1}
			for _, p := range test {
				res.PerProgram[p.Name] = 0
			}
			out = append(out, res)
		case "Genetic-DEAP":
			out = append(out, transfer(algo, func() []int {
				r := search.Genetic(aggObjective(), rng(11), search.DefaultGA(), sc.TransferBudget)
				return r.Seq
			}))
		case "OpenTuner":
			out = append(out, transfer(algo, func() []int {
				r := search.OpenTuner(aggObjective(), rng(12), sc.TransferBudget)
				return r.Seq
			}))
		case "Greedy":
			out = append(out, transfer(algo, func() []int {
				r := search.Greedy(aggObjective(), sc.TransferBudget)
				return r.Seq
			}))
		case "RL-filtered-norm1", "RL-filtered-norm2":
			set := settings[1]
			if algo == "RL-filtered-norm2" {
				set = settings[2]
			}
			agent, _ := TrainGeneralizer(train, set, sc, hash(algo))
			res := AlgoResult{Algo: algo, PerProgram: make(map[string]float64), SamplesPerProgram: 1}
			for _, p := range test {
				p.ResetSamples(true)
				_, c, ok := core.InferGreedy(p, set.Cfg, func(obs []float64) int {
					return agent.Act(obs, true)[0]
				})
				if !ok {
					c = p.O0Cycles
				}
				res.PerProgram[p.Name] = p.SpeedupOverO3(c)
			}
			res.Mean = meanImprovement(res.PerProgram)
			out = append(out, res)
		}
	}
	return out
}

// RandomGeneralization evaluates a trained agent on n unseen random
// programs (§6.2's 12,874-program experiment, scaled) and returns the mean
// improvement over -O3.
func RandomGeneralization(agent *rl.PPO, cfg core.EnvConfig, n int, seed int64) (float64, error) {
	test, err := RandomPrograms(n, seed)
	if err != nil {
		return 0, err
	}
	per := make(map[string]float64, len(test))
	for _, p := range test {
		_, c, ok := core.InferGreedy(p, cfg, func(obs []float64) int {
			return agent.Act(obs, true)[0]
		})
		if !ok {
			c = p.O0Cycles
		}
		per[p.Name] = p.SpeedupOverO3(c)
	}
	return meanImprovement(per), nil
}

// Importance collects exploration tuples over the training programs and
// runs the §4 random-forest analysis feeding Figures 5 and 6.
func Importance(train []*core.Program, sc Scale, seed int64) *core.Importance {
	tuples := core.CollectTuplesParallel(train, sc.TupleEpisodes, sc.TupleLen, rng(seed), sc.workers())
	cfg := forest.DefaultConfig
	cfg.Trees = 16
	cfg.Seed = seed
	return core.AnalyzeImportance(tuples, cfg)
}
