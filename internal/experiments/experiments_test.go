package experiments

import (
	"testing"

	"autophase/internal/core"
	"autophase/internal/passes"
)

// tinyScale keeps unit tests fast; the benchmarks use Quick/Full.
func tinyScale() Scale {
	sc := Quick()
	sc.RLSteps = 90
	sc.EpisodeLen = 8
	sc.GreedyBudget = 60
	sc.PPO3Steps = 60
	sc.OTBudget = 80
	sc.ESSteps = 100
	sc.GABudget = 120
	sc.RandBudget = 140
	sc.TrainPrograms = 3
	sc.GenRLSteps = 300
	sc.TransferBudget = 30
	sc.TestRandom = 4
	sc.TupleEpisodes = 2
	sc.TupleLen = 8
	return sc
}

func twoPrograms(t *testing.T) []*core.Program {
	t.Helper()
	var ps []*core.Program
	for _, n := range []string{"mpeg2", "sha"} {
		p, err := core.NewProgram(n, benchmarkModule(n))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestFig7AllAlgorithmsRun(t *testing.T) {
	sc := tinyScale()
	rows := Fig7(twoPrograms(t), sc)
	if len(rows) != len(Fig7Algorithms) {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]AlgoResult{}
	for _, r := range rows {
		byName[r.Algo] = r
		if len(r.PerProgram) != 2 {
			t.Fatalf("%s: missing per-program results", r.Algo)
		}
	}
	if byName["-O3"].Mean != 0 {
		t.Fatalf("-O3 improvement must be 0, got %f", byName["-O3"].Mean)
	}
	if byName["-O0"].Mean >= 0 {
		t.Fatalf("-O0 should be worse than -O3, got %f", byName["-O0"].Mean)
	}
	// Search algorithms must never be negative: the empty sequence is in
	// their search space... (they may not evaluate it, but the incumbent
	// accounting uses best-seen, which is at worst the first candidate).
	for _, algo := range []string{"Greedy", "random", "OpenTuner", "Genetic-DEAP"} {
		if byName[algo].SamplesPerProgram <= 1 {
			t.Fatalf("%s consumed no samples", algo)
		}
	}
}

func TestFig89Pipeline(t *testing.T) {
	sc := tinyScale()
	train, err := RandomPrograms(sc.TrainPrograms, 700)
	if err != nil {
		t.Fatal(err)
	}
	imp := Importance(train, sc, 1)
	if len(imp.FeatureByPass) != passes.NumActions {
		t.Fatal("importance shape")
	}
	curves := Fig8(train, imp, sc)
	for _, name := range []string{"original-norm2", "filtered-norm1", "filtered-norm2"} {
		if len(curves[name]) == 0 {
			t.Fatalf("no curve for %s", name)
		}
	}
	test := twoPrograms(t)
	rows := Fig9(train, test, imp, sc)
	if len(rows) != len(Fig9Algorithms) {
		t.Fatalf("fig9 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.SamplesPerProgram != 1 {
			t.Fatalf("%s: zero-shot transfer must cost 1 sample/program, got %f",
				r.Algo, r.SamplesPerProgram)
		}
	}
}

func TestRenderers(t *testing.T) {
	rows := []AlgoResult{{Algo: "x", Mean: 0.1, SamplesPerProgram: 3,
		PerProgram: map[string]float64{"a": 0.1}}}
	if s := RenderAlgoResults("t", rows); len(s) == 0 {
		t.Fatal("empty render")
	}
	if s := RenderPerProgram(rows); len(s) == 0 {
		t.Fatal("empty per-program render")
	}
	if s := RenderTable3(); len(s) < 100 {
		t.Fatal("table 3 too short")
	}
	hm := [][]float64{{0, 0.5}, {1, 0}}
	if s := RenderHeatMap("h", hm); len(s) == 0 {
		t.Fatal("empty heat map")
	}
	if s := HeatMapCSV(hm); s != "0.000000,0.500000\n1.000000,0.000000\n" {
		t.Fatalf("csv: %q", s)
	}
}

func TestMeanImprovementGeometric(t *testing.T) {
	// One 4x win and one 4x loss must cancel to ~0 under the geometric
	// mean; an arithmetic mean would report +137%.
	per := map[string]float64{"w": 3.0, "l": -0.75}
	if m := meanImprovement(per); m > 1e-9 || m < -1e-9 {
		t.Fatalf("geometric mean not ratio-symmetric: %f", m)
	}
	// A catastrophic failure cannot drive the mean to -100%.
	per = map[string]float64{"a": 0.1, "b": -1.0}
	if m := meanImprovement(per); m <= -1 {
		t.Fatalf("mean collapsed: %f", m)
	}
	if meanImprovement(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
