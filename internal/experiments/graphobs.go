package experiments

import "autophase/internal/core"

// GraphObsResult is one arm of the structural-observation ablation: the
// same PPO recipe with and without the graph feature block appended to the
// observation vector.
type GraphObsResult struct {
	Name       string
	ObsSize    int
	Final      float64 // final episode-reward mean of the training curve
	Mean       float64 // mean zero-shot improvement over -O3 on the test set
	PerProgram map[string]float64
}

// GraphObsAB trains two generalizers that differ only in
// core.EnvConfig.GraphObs and evaluates both zero-shot on the test
// programs. Same seed, normalization and budget — any gap between the arms
// is attributable to the extra call-graph/CFG structure in the observation.
func GraphObsAB(train, test []*core.Program, sc Scale) []GraphObsResult {
	base := core.EnvConfig{Obs: core.ObsBoth, Norm: core.NormTotal, EpisodeLen: sc.EpisodeLen, RewardLog: true, Engine: sc.Engine}
	graph := base
	graph.GraphObs = true
	arms := []GenSetting{
		{Name: "flat-56", Cfg: base},
		{Name: "flat-56+graph", Cfg: graph},
	}

	var out []GraphObsResult
	for _, set := range arms {
		for _, p := range train {
			p.ResetSamples(true)
		}
		agent, curve := TrainGeneralizer(train, set, sc, 4242)
		res := GraphObsResult{
			Name:       set.Name,
			ObsSize:    core.NewPhaseEnv(train[0], set.Cfg).ObsSize(),
			PerProgram: make(map[string]float64, len(test)),
		}
		if len(curve) > 0 {
			res.Final = curve[len(curve)-1].RewardMean
		}
		for _, p := range test {
			p.ResetSamples(true)
			_, c, ok := core.InferGreedy(p, set.Cfg, func(obs []float64) int {
				return agent.Act(obs, true)[0]
			})
			if !ok {
				c = p.O0Cycles
			}
			res.PerProgram[p.Name] = p.SpeedupOverO3(c)
		}
		res.Mean = meanImprovement(res.PerProgram)
		out = append(out, res)
	}
	return out
}
