package hls

import (
	"math"

	"autophase/internal/ir"
)

// BlockSchedule is the scheduling result for one basic block.
type BlockSchedule struct {
	Block  *ir.Block
	States int // FSM states (cycles) the block occupies per execution
}

// FuncSchedule is the scheduling result for one function.
type FuncSchedule struct {
	Func    *ir.Func
	Blocks  map[*ir.Block]*BlockSchedule
	States  int // total FSM states across blocks
	AreaLUT int // rough functional-unit area estimate
}

// ModuleSchedule holds the schedule of every function in a module.
type ModuleSchedule struct {
	Config Config
	Funcs  map[*ir.Func]*FuncSchedule
}

// Schedule runs the operation-chaining list scheduler on every block of
// every function in the module.
func Schedule(m *ir.Module, cfg Config) *ModuleSchedule {
	ms := &ModuleSchedule{Config: cfg, Funcs: make(map[*ir.Func]*FuncSchedule, len(m.Funcs))}
	for _, f := range m.Funcs {
		fs := &FuncSchedule{Func: f, Blocks: make(map[*ir.Block]*BlockSchedule, len(f.Blocks))}
		for _, b := range f.Blocks {
			bs := scheduleBlock(b, cfg)
			fs.Blocks[b] = bs
			fs.States += bs.States
		}
		fs.AreaLUT = funcArea(f)
		ms.Funcs[f] = fs
	}
	return ms
}

const eps = 1e-9

// scheduleBlock performs ASAP list scheduling with operation chaining under
// the frequency constraint and memory-port/divider resource limits. The
// returned state count is the number of FSM states (cycles) one execution of
// the block takes.
func scheduleBlock(b *ir.Block, cfg Config) *BlockSchedule {
	budget := cfg.CycleNs()
	finish := make(map[*ir.Instr]float64, len(b.Instrs))
	memUse := make(map[int]int)
	divUse := make(map[int]int)

	// Memory/side-effect ordering: barriers (stores, calls, memsets,
	// prints) keep program order among themselves and with loads.
	var lastBarrierEnd float64
	var loadsSinceBarrier []float64

	makespan := 0.0
	for _, in := range b.Instrs {
		t := timing(in)
		ready := 0.0
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok && d.Parent() == b {
				if f, ok := finish[d]; ok && f > ready {
					ready = f
				}
			}
		}
		if t.memPort || t.barrier {
			if lastBarrierEnd > ready {
				ready = lastBarrierEnd
			}
		}
		if t.barrier {
			for _, lf := range loadsSinceBarrier {
				if lf > ready {
					ready = lf
				}
			}
		}

		var end float64
		switch {
		case t.stateOnly:
			// Occupies a dedicated state (e.g. a call handing off to the
			// callee FSM).
			c := cycleCeil(ready, budget)
			end = float64(c+1) * budget
		case t.latency > 0:
			c := cycleCeil(ready, budget)
			if t.memPort {
				for memUse[c] >= cfg.MemPorts {
					c++
				}
				memUse[c]++
			}
			if t.divider {
				for divUse[c] >= cfg.Dividers {
					c++
				}
				divUse[c]++
			}
			end = float64(c+t.latency) * budget
		default:
			start := ready
			frac := start - math.Floor(start/budget+eps)*budget
			if frac+t.delayNs > budget+eps {
				start = math.Ceil(start/budget-eps) * budget
			}
			end = start + t.delayNs
		}
		finish[in] = end
		if end > makespan {
			makespan = end
		}
		if t.barrier {
			lastBarrierEnd = end
			loadsSinceBarrier = loadsSinceBarrier[:0]
		} else if in.Op == ir.OpLoad {
			loadsSinceBarrier = append(loadsSinceBarrier, end)
		}
	}
	states := int(math.Ceil(makespan/budget - eps))
	if states < 1 {
		states = 1
	}
	return &BlockSchedule{Block: b, States: states}
}

func cycleCeil(t, budget float64) int {
	return int(math.Ceil(t/budget - eps))
}

// funcArea sums rough LUT costs of the function's operations, modelling the
// fully spatial binding LegUp defaults to.
func funcArea(f *ir.Func) int {
	area := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			area += timing(in).areaLUTs
		}
		// FSM/state register overhead per block.
		area += 4
	}
	return area
}

// Area returns the whole-module area estimate in LUTs.
func (ms *ModuleSchedule) Area() int {
	a := 0
	for _, fs := range ms.Funcs {
		a += fs.AreaLUT
	}
	return a
}

// StatesOf returns the FSM state count of block b (1 if unscheduled).
func (ms *ModuleSchedule) StatesOf(b *ir.Block) int {
	if fs, ok := ms.Funcs[b.Parent()]; ok {
		if bs, ok := fs.Blocks[b]; ok {
			return bs.States
		}
	}
	return 1
}
